(* Benchmark harness: regenerates every experiment table (E1-E12, one per
   table/claim in the paper — see DESIGN.md section 4) and then runs a
   bechamel microbenchmark suite over the core algorithmic kernels. *)

module B = Beyond_nash

(* [-j N] picks the domain budget for the experiment tables and the
   parallel kernels; results are bit-identical for every N. [--json FILE]
   additionally dumps the bechamel OLS estimates and the serial/parallel
   wall-clock rows as JSON (the perf-trajectory artifact, e.g.
   BENCH_2.json). [--quick] skips the experiment tables and shrinks the
   bechamel quota — the CI smoke configuration. *)
let jobs =
  let rec scan = function
    | "-j" :: n :: _ | "--jobs" :: n :: _ -> int_of_string n
    | _ :: rest -> scan rest
    | [] -> B.Pool.default_jobs ()
  in
  scan (Array.to_list Sys.argv)

let json_file =
  let rec scan = function
    | "--json" :: f :: _ -> Some f
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let quick = Array.exists (String.equal "--quick") Sys.argv

(* Identify the tree that produced a BENCH_*.json so artifacts are
   comparable across PRs: `git describe` (falling back to the bare
   commit hash), "-dirty" when the worktree is modified, "unknown"
   outside a repository. *)
let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, line when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let experiments () = Bn_experiments.Experiments.run_all ~jobs ()

(* {1 Bechamel microbenchmarks} *)

open Bechamel
open Toolkit

let bench_nash_support_enum =
  Test.make ~name:"nash/support-enum-3x3"
    (Staged.stage (fun () -> ignore (B.Nash.support_enumeration_2p B.Games.roshambo)))

let bench_zero_sum_lp =
  Test.make ~name:"zero-sum/lp-value-3x3"
    (Staged.stage (fun () -> ignore (B.Zero_sum.value B.Games.roshambo)))

let bench_robust_check =
  let g = B.Games.coordination_01 5 in
  let prof = B.Mixed.pure_profile g (Array.make 5 0) in
  Test.make ~name:"robust/2-resilience-n5"
    (Staged.stage (fun () -> ignore (B.Robust.is_k_resilient g prof ~k:2)))

(* Serial vs. parallel rows for the same kernel, so BENCH json tracks the
   multicore speedup alongside the serial baseline. The bargaining all-stay
   profile IS 3-resilient, so the check enumerates every coalition and
   deviation — no early exit — which is the workload worth parallelizing.
   (On a single-core box the parallel row only measures pool overhead.) *)
let robust_speedup_game = B.Games.bargaining 8
let robust_speedup_prof = B.Mixed.pure_profile robust_speedup_game (Array.make 8 0)

let bench_robust_serial =
  Test.make ~name:"robust/3-resilience-n8-serial"
    (Staged.stage (fun () ->
         ignore (B.Robust.is_k_resilient robust_speedup_game robust_speedup_prof ~k:3)))

let bench_robust_parallel =
  Test.make ~name:"robust/3-resilience-n8-parallel"
    (Staged.stage (fun () ->
         ignore (B.Robust.is_k_resilient ~jobs robust_speedup_game robust_speedup_prof ~k:3)))

let bench_shamir =
  let rng = B.Prng.create 1 in
  Test.make ~name:"crypto/shamir-share-n7"
    (Staged.stage (fun () -> ignore (B.Shamir.share rng ~secret:12345 ~threshold:2 ~n:7)))

let bench_berlekamp_welch =
  let rng = B.Prng.create 2 in
  let shares = B.Shamir.share rng ~secret:999 ~threshold:2 ~n:9 in
  let corrupted =
    List.mapi
      (fun i s -> if i < 2 then { s with B.Shamir.y = B.Field.add s.B.Shamir.y 5 } else s)
      shares
  in
  Test.make ~name:"crypto/berlekamp-welch-n9-e2"
    (Staged.stage (fun () ->
         ignore (B.Shamir.robust_reconstruct ~degree:2 ~max_errors:2 corrupted)))

let bench_eig =
  Test.make ~name:"byzantine/eig-n7-t2"
    (Staged.stage (fun () ->
         ignore (B.Eig.run ~n:7 ~t:2 ~values:[| 1; 0; 1; 1; 0; 0; 1 |] ~default:0 ())))

let bench_miller_rabin =
  Test.make ~name:"machine/miller-rabin-2^31-1"
    (Staged.stage (fun () -> ignore (B.Primality.is_prime 2147483647)))

let bench_frpd_equilibrium =
  let spec =
    { B.Frpd.stage = B.Repeated.pd_paper; horizon = 10; delta = 0.9; memory_cost = 0.05 }
  in
  let space = B.Frpd.paper_space ~horizon:10 in
  Test.make ~name:"repeated/frpd-equilibrium-check"
    (Staged.stage (fun () ->
         ignore (B.Frpd.is_equilibrium ~space spec B.Automaton.tit_for_tat)))

let bench_awareness_gne =
  Test.make ~name:"awareness/fig1-pure-gne"
    (Staged.stage (fun () -> ignore (B.Aware_examples.generalized_equilibria ~p:0.25)))

let bench_correlated_lp =
  Test.make ~name:"correlated/max-welfare-chicken"
    (Staged.stage (fun () -> ignore (B.Correlated.max_welfare B.Games.chicken)))

let bench_rationalizable =
  Test.make ~name:"rationalizable/pd"
    (Staged.stage (fun () -> ignore (B.Rationalizable.rationalizable B.Games.prisoners_dilemma)))

let bench_phase_king =
  Test.make ~name:"byzantine/phase-king-n9-t2"
    (Staged.stage (fun () ->
         ignore (B.Phase_king.run ~n:9 ~t:2 ~values:[| 1; 0; 1; 1; 0; 0; 1; 0; 1 |] ())))

let bench_replicator =
  Test.make ~name:"learning/replicator-500-rounds"
    (Staged.stage (fun () ->
         ignore (B.Learning.replicator ~rounds:500 B.Games.prisoners_dilemma)))

let bench_fictitious_play =
  Test.make ~name:"learning/fictitious-play-500-rounds"
    (Staged.stage (fun () ->
         ignore (B.Learning.fictitious_play ~rounds:500 B.Games.matching_pennies)))

(* The value LP of a fixed 8×8 zero-sum game (v free as v⁺ − v⁻): 10
   variables, 8 inequality rows plus one equality, so both simplex phases
   run on every call. *)
let bench_revised_simplex =
  let n = 8 in
  let payoff i j = float_of_int ((((i * 37) + (j * 11) + ((i * j) mod 13)) mod 17) - 8) in
  let constraints =
    List.init n (fun j ->
        B.Simplex.ge
          (Array.init (n + 2) (fun k ->
               if k < n then payoff k j else if k = n then -1.0 else 1.0))
          0.0)
    @ [ B.Simplex.eq (Array.init (n + 2) (fun k -> if k < n then 1.0 else 0.0)) 1.0 ]
  in
  let objective = Array.init (n + 2) (fun k -> if k = n then 1.0 else if k = n + 1 then -1.0 else 0.0) in
  Test.make ~name:"lp/revised-simplex-8x8"
    (Staged.stage (fun () -> ignore (B.Simplex.solve { B.Simplex.objective; constraints })))

(* The explorer sharded over the work-stealing pool map: 100 seeded
   schedules (invariant checks + shrinking of each violation), the report
   byte-identical at any -j. *)
let bench_explore_sharded =
  let pool = B.Pool.create ~domains:jobs () in
  Test.make ~name:"explore/sharded-100-schedules"
    (Staged.stage (fun () ->
         ignore (Bn_experiments.Fault_sweep.explore_eig_n3t1 ~pool ~seed:42 ~trials:100 ())))

(* Schedule exploration end-to-end: 20 seeded fault schedules against EIG
   at n = 3t, invariant checking plus greedy shrinking of the violations
   it finds (roughly two thirds of the schedules violate). *)
let bench_fault_explore =
  Test.make ~name:"faults/explore-eig-n3-t1-20"
    (Staged.stage (fun () ->
         ignore (Bn_experiments.Fault_sweep.explore_eig_n3t1 ~seed:42 ~trials:20 ())))

(* The mediator sweep's smallest impossibility cell, end-to-end: 10 seeded
   schedules against the asynchronous cheap-talk protocol at n = 4(k+t),
   including invariant checks and shrinking of every violation found. *)
let bench_mediator_sweep =
  Test.make ~name:"mediator/async-sweep-quick"
    (Staged.stage (fun () ->
         ignore (Bn_experiments.Mediator_sweep.explore_async_n4k1t0 ~seed:42 ~trials:10 ())))

let microbenches =
  Test.make_grouped ~name:"beyond_nash" ~fmt:"%s %s"
    [
      bench_nash_support_enum;
      bench_zero_sum_lp;
      bench_robust_check;
      bench_robust_serial;
      bench_robust_parallel;
      bench_shamir;
      bench_berlekamp_welch;
      bench_eig;
      bench_miller_rabin;
      bench_frpd_equilibrium;
      bench_awareness_gne;
      bench_correlated_lp;
      bench_rationalizable;
      bench_phase_king;
      bench_replicator;
      bench_fictitious_play;
      bench_revised_simplex;
      bench_explore_sharded;
      bench_fault_explore;
      bench_mediator_sweep;
    ]

(* Per-sample ns/run distribution for one benchmark: each of bechamel's
   raw measurements divided by its run count. Gives the run count and
   the spread (p50/p99/stddev) that the OLS point estimate hides. *)
let sample_stats raw name =
  match Hashtbl.find_opt raw name with
  | None -> None
  | Some (b : Benchmark.t) -> (
    let label = Measure.label Instance.monotonic_clock in
    let samples =
      List.filter_map
        (fun m ->
          let r = Measurement_raw.run m in
          if r > 0.0 then Some (Measurement_raw.get ~label m /. r) else None)
        (Array.to_list b.lr)
    in
    match List.sort compare samples with
    | [] -> None
    | sorted ->
      let n = List.length sorted in
      let arr = Array.of_list sorted in
      let pct q =
        arr.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))
      in
      let mean = List.fold_left ( +. ) 0.0 sorted /. float_of_int n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) *. (x -. mean))) 0.0 sorted
        /. float_of_int n
      in
      Some (b.stats.samples, pct 0.5, pct 0.99, sqrt var))

let pp_ns est =
  if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
  else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
  else Printf.sprintf "%.1f ns" est

(* Runs the suite, prints the table and returns
   [(name, ns_per_run, (runs, p50, p99, stddev) option)] rows (only rows
   with a usable OLS estimate) for the JSON dump. *)
let run_microbenches () =
  print_endline "######## microbenchmarks (bechamel; time per run) ########\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = Time.second (if quick then 0.05 else 0.25) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let raw = Benchmark.all cfg instances microbenches in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = B.Tbl.sorted_bindings results in
  let tab =
    B.Tab.create ~title:"core kernels" [ "benchmark"; "time/run"; "runs"; "p50"; "p99" ]
  in
  let estimates =
    List.filter_map
      (fun (name, ols) ->
        let est =
          match Analyze.OLS.estimates ols with Some [ est ] -> Some est | Some _ | None -> None
        in
        let stats = sample_stats raw name in
        let cell = match est with Some est -> pp_ns est | None -> "n/a" in
        let scell f = match stats with Some s -> f s | None -> "n/a" in
        B.Tab.add_row tab
          [
            name; cell;
            scell (fun (runs, _, _, _) -> string_of_int runs);
            scell (fun (_, p50, _, _) -> pp_ns p50);
            scell (fun (_, _, p99, _) -> pp_ns p99);
          ];
        Option.map (fun est -> (name, est, stats)) est)
      rows
  in
  B.Tab.print tab;
  estimates

(* Wall-clock serial-vs-parallel comparison of the robustness kernel: the
   headline number for the Pool fast path (bechamel's per-run OLS rows
   above feed BENCH json; this table is the human-readable speedup). *)
let run_speedup_table () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let tab =
    B.Tab.create ~title:"robustness kernel: serial vs parallel"
      [ "kernel"; "serial"; Printf.sprintf "parallel (-j %d)" jobs; "speedup"; "agree" ]
  in
  let serial_r, serial_t =
    wall (fun () -> B.Robust.is_k_resilient robust_speedup_game robust_speedup_prof ~k:3)
  in
  let par_r, par_t =
    wall (fun () -> B.Robust.is_k_resilient ~jobs robust_speedup_game robust_speedup_prof ~k:3)
  in
  B.Tab.add_row tab
    [
      "robust/3-resilience-n8";
      Printf.sprintf "%.1f ms" (serial_t *. 1e3);
      Printf.sprintf "%.1f ms" (par_t *. 1e3);
      Printf.sprintf "%.2fx" (serial_t /. par_t);
      string_of_bool (serial_r = par_r);
    ];
  B.Tab.print tab;
  [
    ("robust/3-resilience-n8", "serial", 1, serial_t);
    ("robust/3-resilience-n8", "parallel", jobs, par_t);
  ]

(* Wall-clock rows for the SoA engines at paper scale: one batched sweep
   of 10^6 scrip agents and 10^6 routed queries over 10^6 Gnutella
   users. The workload is identical under --quick — the CI regression
   gate compares exactly these rows against the committed BENCH_8.json.
   (bechamel's 0.25 s quota is too small for multi-hundred-ms runs, so
   these are plain wall-clock measurements like the speedup table.) *)
let run_soa_table () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let n = 1_000_000 in
  let pool = B.Pool.create ~domains:jobs () in
  let params = { (B.Scrip.default_params ~n) with B.Scrip.rounds = 0 } in
  let t =
    B.Scrip_soa.create ~shards:64 ~seed:42 ~params
      ~kind_of:(fun _ -> B.Scrip.Standard 5)
      ~money_per_agent:2.5 ()
  in
  B.Scrip_soa.step ~pool t;
  let steps = 3 in
  let scrip_t = wall (fun () -> for _ = 1 to steps do B.Scrip_soa.step ~pool t done) /. float_of_int steps in
  let gp = { (B.Gnutella.default_params ~users:n) with B.Gnutella.queries = n } in
  let gnut_t = wall (fun () -> ignore (B.Gnutella_soa.simulate ~jobs ~shards:64 (B.Prng.create 7) gp)) in
  let tab =
    B.Tab.create ~title:"SoA engines at n = 10^6" [ "kernel"; "wall"; "throughput" ]
  in
  B.Tab.add_row tab
    [
      "scrip/soa-1e6-step";
      Printf.sprintf "%.1f ms" (scrip_t *. 1e3);
      Printf.sprintf "%.1f M agent-requests/s" (float_of_int n /. scrip_t /. 1e6);
    ];
  B.Tab.add_row tab
    [
      "p2p/gnutella-1e6-step";
      Printf.sprintf "%.1f ms" (gnut_t *. 1e3);
      Printf.sprintf "%.1f M queries/s" (float_of_int n /. gnut_t /. 1e6);
    ];
  B.Tab.print tab;
  [
    ("scrip/soa-1e6-step", (if jobs = 1 then "serial" else "parallel"), jobs, scrip_t);
    ("p2p/gnutella-1e6-step", (if jobs = 1 then "serial" else "parallel"), jobs, gnut_t);
  ]

(* Wall-clock for the full-tree lint pass, so BENCH json tracks how much
   the determinism gate costs as the tree grows. Lint is serial by
   design (one pass, deterministic report order), hence a single row. *)
let run_lint_table () =
  match Bn_lint.Lint.find_root () with
  | None ->
    print_endline "lint: no dune-project above the benchmark runner; skipping";
    []
  | Some root ->
    let t0 = Unix.gettimeofday () in
    let report = Bn_lint.Lint.run ~root in
    let t = Unix.gettimeofday () -. t0 in
    (* The whole-program half alone — call-graph construction plus the
       effect fixpoint over the already-parsed tree — so the JSON tracks
       the cost of the cross-file analyses separately from parsing. *)
    let libs, mls = Bn_lint.Lint.parse_mls ~root in
    let t1 = Unix.gettimeofday () in
    let graph = Bn_lint.Callgraph.build ~libs mls in
    let _effects = Bn_lint.Effects.infer graph in
    let te = Unix.gettimeofday () -. t1 in
    let tab = B.Tab.create ~title:"static analysis" [ "pass"; "files"; "wall" ] in
    B.Tab.add_row tab
      [
        "lint/full-tree";
        string_of_int report.files_scanned;
        Printf.sprintf "%.1f ms" (t *. 1e3);
      ];
    B.Tab.add_row tab
      [
        "lint/effects-full-tree";
        string_of_int (List.length mls);
        Printf.sprintf "%.1f ms" (te *. 1e3);
      ];
    B.Tab.print tab;
    [ ("lint/full-tree", "serial", 1, t); ("lint/effects-full-tree", "serial", 1, te) ]

(* {1 JSON perf artifact} *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json file ~wall ~micro =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"beyond-nash-bench/2\",\n";
  p "  \"git\": \"%s\",\n" (json_escape (git_describe ()));
  p "  \"jobs\": %d,\n" jobs;
  p "  \"microbench\": [\n";
  List.iteri
    (fun i (name, ns, stats) ->
      let spread =
        match stats with
        | Some (runs, p50, p99, stddev) ->
          Printf.sprintf ", \"runs\": %d, \"p50_ns\": %.3f, \"p99_ns\": %.3f, \"stddev_ns\": %.3f"
            runs p50 p99 stddev
        | None -> ""
      in
      p "    { \"name\": \"%s\", \"ns_per_run\": %.3f%s }%s\n" (json_escape name) ns spread
        (if i = List.length micro - 1 then "" else ","))
    micro;
  p "  ],\n";
  p "  \"wallclock\": [\n";
  List.iteri
    (fun i (name, mode, j, seconds) ->
      p "    { \"name\": \"%s\", \"mode\": \"%s\", \"jobs\": %d, \"seconds\": %.6f }%s\n"
        (json_escape name) mode j seconds
        (if i = List.length wall - 1 then "" else ","))
    wall;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

let () =
  if not quick then experiments ();
  let wall = run_speedup_table () @ run_soa_table () @ run_lint_table () in
  let micro = run_microbenches () in
  Option.iter (fun file -> write_json file ~wall ~micro) json_file
