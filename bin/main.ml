(* Command-line interface: run the paper-reproduction experiments and small
   interactive analyses. *)

module B = Beyond_nash
open Cmdliner

let list_cmd =
  let run () =
    List.iter
      (fun (name, title, _) -> Printf.printf "%-4s %s\n" name title)
      Bn_experiments.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiments (E1-E17).") Term.(const run $ const ())

let jobs_arg =
  Arg.(
    value
    & opt int (B.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run parallel loops on $(docv) domains (default: the hardware's \
           recommended domain count). Output is bit-identical for every $(docv).")

(* Observability flags, shared by `exp`, `all` and the fault-injection
   default command. Without any of them the process output is
   byte-identical to the uninstrumented CLI: counters tick silently,
   spans are not even recorded. *)
let obs_args =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record spans (experiments, Pool chunks, Robust searches, Sync_net rounds, \
             Explore schedules, fault instants) and write Chrome trace-event JSON to \
             $(docv) — load it in chrome://tracing or Perfetto.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a flat JSON metrics snapshot to $(docv). Its \"counters\" section is \
             deterministic: byte-identical for any -j and across same-seed reruns.")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "obs-summary" ]
          ~doc:"Print a human observability summary (span tree, top counters) after the run.")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Print one stderr line per completed experiment (name, wall ms, span count).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print a span-tree profile after the run: calls, inclusive and exclusive \
             (self) wall ms per span path, plus per-region GC deltas (allocated words, \
             major/minor collections).")
  in
  let folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write a collapsed-stack profile (one `a;b;c microseconds' line per span \
             path) to $(docv) — pipe through flamegraph.pl for an SVG flame graph.")
  in
  Term.(
    const (fun trace metrics summary progress profile folded ->
        (trace, metrics, summary, progress, profile, folded))
    $ trace $ metrics $ summary $ progress $ profile $ folded)

let with_obs (trace, metrics, summary, progress, profile, folded) f =
  if trace <> None || summary || profile || folded <> None then B.Obs.set_tracing true;
  (* Wall-clock sketches piggyback on any observability request; with no
     flags they stay off so the uninstrumented CLI keeps its speed. *)
  if trace <> None || metrics <> None || summary || profile || folded <> None then
    B.Obs.set_timing true;
  if profile then B.Obs.set_gc_probes true;
  B.Obs.set_progress progress;
  let r = f () in
  let write file contents =
    let oc = open_out file in
    output_string oc contents;
    close_out oc;
    Printf.eprintf "wrote %s\n%!" file
  in
  Option.iter (fun file -> write file (B.Obs.Export.chrome_trace ())) trace;
  Option.iter (fun file -> write file (B.Obs.Export.metrics_json ())) metrics;
  Option.iter (fun file -> write file (B.Obs.Profile.folded ())) folded;
  if summary then print_string (B.Obs.summary ());
  if profile then print_string (B.Obs.Profile.table ());
  r

let exp_cmd =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (e.g. E3).") in
  let run id jobs obs =
    with_obs obs (fun () ->
        match Bn_experiments.Experiments.render ~jobs id with
        | Some transcript ->
          print_string transcript;
          `Ok ()
        | None -> `Error (false, Printf.sprintf "unknown experiment %S; try `list`" id))
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run one experiment.") Term.(ret (const run $ id $ jobs_arg $ obs_args))

let all_cmd =
  let run jobs obs = with_obs obs (fun () -> Bn_experiments.Experiments.run_all ~jobs ()) in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (same output as bench/main.exe minus microbenches).")
    Term.(const run $ jobs_arg $ obs_args)

let classify_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Number of players.") in
  let k = Arg.(required & pos 1 (some int) None & info [] ~docv:"K" ~doc:"Coalition bound.") in
  let t = Arg.(required & pos 2 (some int) None & info [] ~docv:"T" ~doc:"Fault bound.") in
  let broadcast = Arg.(value & flag & info [ "broadcast" ] ~doc:"Broadcast channels available.") in
  let crypto = Arg.(value & flag & info [ "crypto" ] ~doc:"Cryptography + bounded players.") in
  let pki = Arg.(value & flag & info [ "pki" ] ~doc:"Public-key infrastructure.") in
  let punishment = Arg.(value & flag & info [ "punishment" ] ~doc:"A (k+t)-punishment strategy exists.") in
  let utilities = Arg.(value & flag & info [ "utilities" ] ~doc:"Utilities are known to the protocol.") in
  let run n k t broadcast crypto pki punishment utilities_known =
    let a = { B.Feasibility.utilities_known; punishment; broadcast; crypto; pki } in
    match B.Feasibility.classify ~n ~k ~t a with
    | v ->
      Printf.printf "%s\n" (B.Feasibility.describe v);
      (match v with
      | B.Feasibility.Implementable { bullet; _ } | B.Feasibility.Impossible { bullet; _ } ->
        Printf.printf "  via: %s\n" (B.Feasibility.bullet_text bullet))
    | exception Invalid_argument msg -> Printf.printf "error: %s\n" msg
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a mediator-implementation regime (the ADGH bullets).")
    Term.(const run $ n $ k $ t $ broadcast $ crypto $ pki $ punishment $ utilities)

let solve_cmd =
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"BIMATRIX" ~doc:"Game, e.g. \"3,3 0,5 | 5,0 1,1\" (rows |, cells space, payoffs comma).")
  in
  let run spec =
    match B.Parse.bimatrix_opt spec with
    | None -> `Error (false, "could not parse the bimatrix; example: \"3,3 0,5 | 5,0 1,1\"")
    | Some g ->
      Format.printf "game:@.%a@." B.Normal_form.pp g;
      let pure = B.Nash.pure_equilibria g in
      List.iter
        (fun p -> Printf.printf "pure Nash equilibrium: (row %d, col %d)\n" p.(0) p.(1))
        pure;
      List.iter
        (fun prof -> Format.printf "equilibrium: %a@." B.Mixed.pp_profile prof)
        (B.Nash.support_enumeration_2p g);
      (match B.Correlated.max_welfare g with
      | Some (_, w) -> Printf.printf "max-welfare correlated equilibrium value: %.4f\n" w
      | None -> ());
      let surviving = B.Rationalizable.rationalizable g in
      Printf.printf "rationalizable actions: rows {%s}, cols {%s}\n"
        (String.concat "," (List.map string_of_int surviving.(0)))
        (String.concat "," (List.map string_of_int surviving.(1)));
      `Ok ()
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a 2-player bimatrix game (Nash, correlated, rationalizability).")
    Term.(ret (const run $ spec))

(* Fault injection / schedule exploration, exposed as top-level options so
   `main.exe --explore 200 --seed 42` replays are copy-pasteable from the
   explorer's transcripts. Output is byte-identical across runs and for
   any -j. *)
let explore_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "explore" ] ~docv:"N"
        ~doc:
          "Run the fault-schedule exploration sweep: $(docv) seeded random fault \
           schedules per protocol config, checking agreement/validity invariants and \
           shrinking every violation to a minimal counterexample.")

let faults_arg =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:"Inject one seeded random fault schedule into EIG and show its effect.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Base seed for --explore/--faults; trial $(i,i) draws from split stream $(i,i).")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Restrict --explore to the small (CI smoke) config subset.")

let mediator_sweep_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mediator-sweep" ] ~docv:"N"
        ~doc:
          "Run the asynchronous-mediator regime sweep: classify the (n,k,t) grid \
           (synchronous bullets and the asynchronous $(b,n > 4(k+t)) threshold), \
           cross-check with the k-resilient sequential-equilibrium checker, and \
           explore $(docv) seeded schedules per cell — zero violations expected on \
           the possibility side, a shrunk replayable counterexample on the \
           impossibility side.")

let e17_arg =
  Arg.(
    value & flag
    & info [ "e17" ]
        ~doc:
          "Run the million-agent SoA sweep (experiment E17): scrip steady-state \
           goodness of fit, the mixed hoarder/altruist population, Gnutella free \
           riding at scale, and the best-response cutoff ladder. Combine with \
           --scrip-n to raise the population ceiling.")

let scrip_n_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "scrip-n" ] ~docv:"N"
        ~doc:
          "With --e17, the largest population size to run (default 100000; the \
           paper-scale run uses 1000000). Ladder sizes are the powers of ten up to \
           $(docv).")

let sweep_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sweep-json" ] ~docv:"FILE"
        ~doc:
          "With --mediator-sweep, also write the sweep as a JSON artifact \
           (schema mediator-sweep/1) to $(docv).")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:
          "Run every experiment (E1-E17), like the `all' subcommand; as a top-level \
           flag so it combines with --profile/--folded/--metrics in one invocation.")

let default_term =
  let run all explore faults seed quick mediator sweep_json e17 scrip_n jobs obs =
    match (all, explore, faults, mediator, e17) with
    | false, None, false, None, false -> `Help (`Pager, None)
    | _ ->
      with_obs obs (fun () ->
          if all then Bn_experiments.Experiments.run_all ~jobs ();
          if faults then Bn_experiments.Fault_sweep.demo ~seed ();
          Option.iter
            (fun trials -> Bn_experiments.Fault_sweep.render ~jobs ~quick ~trials ~seed ())
            explore;
          Option.iter
            (fun trials ->
              Bn_experiments.Mediator_sweep.render ~jobs ~trials ~seed ();
              Option.iter
                (fun file ->
                  let oc = open_out file in
                  output_string oc (Bn_experiments.Mediator_sweep.sweep_json ~jobs ~trials ~seed ());
                  close_out oc;
                  Printf.eprintf "wrote %s\n%!" file)
                sweep_json)
            mediator;
          if e17 then
            Bn_experiments.Scrip_sweep.render ~jobs ?n_max:scrip_n ~seed ();
          `Ok ())
  in
  Term.(
    ret
      (const run $ all_arg $ explore_arg $ faults_arg $ seed_arg $ quick_arg $ mediator_sweep_arg
     $ sweep_json_arg $ e17_arg $ scrip_n_arg $ jobs_arg $ obs_args))

let main =
  let doc = "Reproduction of Halpern's `Beyond Nash Equilibrium' (PODC 2008)." in
  Cmd.group
    (Cmd.info "beyond-nash" ~version:"1.0.0" ~doc)
    ~default:default_term
    [ list_cmd; exp_cmd; all_cmd; classify_cmd; solve_cmd ]

let () = exit (Cmd.eval main)
