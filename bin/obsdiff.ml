(* obsdiff — compare two metrics/bench JSON artifacts and exit nonzero
   on regression. Zero dependencies beyond Bn_obs (no cmdliner): this
   binary is the CI gate and must stay trivially relocatable.

   usage: obsdiff [options] REF.json NEW.json
     --threshold X   fail timing rows whose new/ref ratio exceeds X (default 2.0)
     --rows A,B,...  compare only rows whose name contains one of these
                     substrings; each spec must match (missing = fail)
     --json FILE     also write the obsdiff/1 verdict JSON to FILE
     --quiet         suppress the human verdict on stdout *)

module Obsdiff = Bn_obs.Obsdiff

let usage () =
  prerr_endline
    "usage: obsdiff [--threshold X] [--rows A,B,...] [--json FILE] [--quiet] REF.json NEW.json";
  exit 2

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error msg ->
    Printf.eprintf "obsdiff: %s\n" msg;
    exit 2

let () =
  let threshold = ref 2.0 in
  let rows = ref [] in
  let json_out = ref None in
  let quiet = ref false in
  let positional = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: x :: rest ->
      (match float_of_string_opt x with
      | Some t when t > 0.0 -> threshold := t
      | _ -> usage ());
      parse rest
    | "--rows" :: x :: rest ->
      rows := !rows @ List.filter (fun s -> s <> "") (String.split_on_char ',' x);
      parse rest
    | "--json" :: x :: rest ->
      json_out := Some x;
      parse rest
    | "--quiet" :: rest ->
      quiet := true;
      parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "obsdiff: unknown option %s\n" arg;
      usage ()
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let ref_name, new_name =
    match List.rev !positional with [ a; b ] -> (a, b) | _ -> usage ()
  in
  match
    Obsdiff.diff ~threshold:!threshold ~rows:!rows (read_file ref_name) (read_file new_name)
  with
  | Error msg ->
    Printf.eprintf "obsdiff: %s\n" msg;
    exit 2
  | Ok report ->
    Option.iter
      (fun path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Obsdiff.verdict_json ~ref_name ~new_name report)))
      !json_out;
    if not !quiet then print_string (Obsdiff.render ~ref_name ~new_name report);
    exit (if Obsdiff.ok report then 0 else 1)
