(* bn-lint driver: run the determinism/purity static-analysis pass over
   the repo and report findings (human on stdout, optionally --json FILE,
   --callgraph-json FILE and --effects FILE for the whole-program views).
   Exit status: 0 clean, 1 unsuppressed findings, 2 usage/setup error. *)

module Lint = Bn_lint.Lint

let () =
  let root = ref None in
  let json = ref None in
  let callgraph = ref None in
  let effects = ref None in
  let quiet = ref false in
  let show_rules = ref false in
  let spec =
    [
      ("--root", Arg.String (fun d -> root := Some d), "DIR Tree to lint (default: nearest ancestor with dune-project)");
      ("--json", Arg.String (fun f -> json := Some f), "FILE Also write the machine-readable report to FILE");
      ("--callgraph-json", Arg.String (fun f -> callgraph := Some f), "FILE Write the bn-callgraph/1 export to FILE");
      ("--effects", Arg.String (fun f -> effects := Some f), "FILE Write the bn-effects/1 inferred-signature export to FILE");
      ("--quiet", Arg.Set quiet, " Print only the summary line");
      ("--rules", Arg.Set show_rules, " List the rules and exit");
    ]
  in
  let usage =
    "lint.exe [--root DIR] [--json FILE] [--callgraph-json FILE] [--effects FILE] [--quiet] \
     [--rules]"
  in
  Arg.parse spec (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a))) usage;
  if !show_rules then begin
    print_string (Lint.rules_table ());
    exit 0
  end;
  let root =
    match !root with
    | Some d -> d
    | None -> (
      match Lint.find_root () with
      | Some d -> d
      | None ->
        prerr_endline "lint: no dune-project found above the current directory (use --root)";
        exit 2)
  in
  let report =
    match Lint.run ~root with
    | report -> report
    | exception Lint.Invalid_root d ->
      Printf.eprintf "lint: root %S does not exist or is not a directory\n" d;
      exit 2
  in
  let write_to file contents =
    let oc = open_out file in
    output_string oc contents;
    close_out oc
  in
  Option.iter (fun file -> write_to file (Lint.to_json report)) !json;
  Option.iter (fun file -> write_to file (Lint.callgraph_json report)) !callgraph;
  Option.iter (fun file -> write_to file (Lint.effects_json report)) !effects;
  let output = Lint.render_human report in
  print_string
    (if !quiet then
       match String.rindex_opt (String.trim output) '\n' with
       | Some i -> String.sub output (i + 1) (String.length output - i - 1)
       | None -> output
     else output);
  exit (if Lint.unsuppressed report = [] then 0 else 1)
