(* bn-lint driver: run the determinism/purity static-analysis pass over
   the repo and report findings (human on stdout, optionally --json FILE).
   Exit status: 0 clean, 1 unsuppressed findings, 2 usage/setup error. *)

module Lint = Bn_lint.Lint

let () =
  let root = ref None in
  let json = ref None in
  let quiet = ref false in
  let show_rules = ref false in
  let spec =
    [
      ("--root", Arg.String (fun d -> root := Some d), "DIR Tree to lint (default: nearest ancestor with dune-project)");
      ("--json", Arg.String (fun f -> json := Some f), "FILE Also write the machine-readable report to FILE");
      ("--quiet", Arg.Set quiet, " Print only the summary line");
      ("--rules", Arg.Set show_rules, " List the rules and exit");
    ]
  in
  let usage = "lint.exe [--root DIR] [--json FILE] [--quiet] [--rules]" in
  Arg.parse spec (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a))) usage;
  if !show_rules then begin
    print_string (Lint.rules_table ());
    exit 0
  end;
  let root =
    match !root with
    | Some d -> d
    | None -> (
      match Lint.find_root () with
      | Some d -> d
      | None ->
        prerr_endline "lint: no dune-project found above the current directory (use --root)";
        exit 2)
  in
  let report = Lint.run ~root in
  Option.iter
    (fun file ->
      let oc = open_out file in
      output_string oc (Lint.to_json report);
      close_out oc)
    !json;
  let output = Lint.render_human report in
  print_string
    (if !quiet then
       match String.rindex_opt (String.trim output) '\n' with
       | Some i -> String.sub output (i + 1) (String.length output - i - 1)
       | None -> output
     else output);
  exit (if Lint.unsuppressed report = [] then 0 else 1)
