lib/experiments/exp_e5.ml: Array Beyond_nash List Printf String
