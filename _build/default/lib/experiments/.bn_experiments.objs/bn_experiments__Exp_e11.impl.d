lib/experiments/exp_e11.ml: Array Beyond_nash List
