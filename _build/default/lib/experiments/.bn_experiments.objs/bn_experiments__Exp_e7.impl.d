lib/experiments/exp_e7.ml: Beyond_nash List Printf
