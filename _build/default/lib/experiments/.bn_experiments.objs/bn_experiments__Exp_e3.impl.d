lib/experiments/exp_e3.ml: Beyond_nash List Printf
