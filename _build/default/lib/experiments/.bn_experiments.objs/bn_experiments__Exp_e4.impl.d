lib/experiments/exp_e4.ml: Array Beyond_nash List Printf
