lib/experiments/exp_e9.ml: Array Beyond_nash List Printf String
