lib/experiments/exp_e13.ml: Array Beyond_nash List Printf String
