lib/experiments/exp_e12.ml: Beyond_nash List Printf
