lib/experiments/exp_e14.ml: Beyond_nash List Printf String
