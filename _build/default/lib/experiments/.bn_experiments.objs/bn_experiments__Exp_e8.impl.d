lib/experiments/exp_e8.ml: Array Beyond_nash List Printf String
