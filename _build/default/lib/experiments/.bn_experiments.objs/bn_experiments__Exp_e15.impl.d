lib/experiments/exp_e15.ml: Array Beyond_nash List Printf
