lib/experiments/exp_e1.ml: Array Beyond_nash List Printf String
