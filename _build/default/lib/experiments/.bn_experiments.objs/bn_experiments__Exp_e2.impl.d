lib/experiments/exp_e2.ml: Array Beyond_nash List Printf String
