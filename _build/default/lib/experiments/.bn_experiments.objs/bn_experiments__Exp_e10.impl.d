lib/experiments/exp_e10.ml: Array Beyond_nash List Printf String
