lib/experiments/exp_e6.ml: Array Beyond_nash List Printf
