(** E13 (extension) — the value of a mediator: correlated equilibria beyond
    the Nash hull.

    §2's mediators are correlation devices. In chicken, the welfare-optimal
    correlated equilibrium strictly beats every Nash equilibrium — the
    quantitative reason implementing mediators by cheap talk (E5) is worth
    the trouble. *)

module B = Beyond_nash

let name = "E13"
let title = "mediator value: correlated equilibrium vs Nash (chicken)"

let run () =
  let g = B.Games.chicken in
  let tab = B.Tab.create ~title [ "solution"; "distribution"; "welfare (u1+u2)" ] in
  let show_dist d =
    String.concat " "
      (List.map
         (fun (s, p) ->
           Printf.sprintf "%s%s:%.2f"
             (String.sub (B.Normal_form.action_name g 0 s.(0)) 0 1)
             (String.sub (B.Normal_form.action_name g 1 s.(1)) 0 1)
             p)
         (B.Dist.to_list d))
  in
  List.iter
    (fun prof ->
      let welfare =
        B.Mixed.expected_payoff g prof 0 +. B.Mixed.expected_payoff g prof 1
      in
      B.Tab.add_row tab
        [ "Nash"; show_dist (B.Correlated.of_mixed g prof); B.Tab.fmt_float welfare ])
    (B.Nash.support_enumeration_2p g);
  (match B.Correlated.max_welfare g with
  | Some (d, welfare) ->
    B.Tab.add_row tab [ "correlated (max welfare)"; show_dist d; B.Tab.fmt_float welfare ];
    assert (B.Correlated.is_correlated_equilibrium g d)
  | None -> B.Tab.add_row tab [ "correlated"; "LP failed"; "-" ]);
  (match B.Correlated.max_player g ~player:0 with
  | Some (d, v) ->
    B.Tab.add_row tab
      [ "correlated (max player 1)"; show_dist d; Printf.sprintf "u1 = %s" (B.Tab.fmt_float v) ]
  | None -> ());
  B.Tab.print tab;
  (* Sunspots: what two players CAN do with public coins alone. *)
  let sunspot_w = B.Sunspot.best_sunspot_welfare g in
  let gap = B.Sunspot.mediator_gap g in
  Printf.printf
    "public randomness (commit-reveal sunspots, implementable at n=2): best welfare %s;\n\
     private-mediation gap = %s — exactly what the paper's thresholds say two players\n\
     cannot get by bare cheap talk (n = 2 <= 2k+2t for (k,t) = (1,0)).\n\n"
    (B.Tab.fmt_float sunspot_w) (B.Tab.fmt_float gap);
  let fair =
    B.Sunspot.make
      (List.filteri (fun i _ -> i < 2)
         (List.map (fun p -> (0.5, p)) (B.Nash.support_enumeration_2p g)))
  in
  let rng = B.Prng.create 13 in
  let acts, payoffs = B.Sunspot.sample_and_play rng g fair in
  Printf.printf
    "sample sunspot run (50/50 over the two pure equilibria): played (%s,%s), payoffs (%s,%s)\n\n"
    (B.Normal_form.action_name g 0 acts.(0))
    (B.Normal_form.action_name g 1 acts.(1))
    (B.Tab.fmt_float payoffs.(0)) (B.Tab.fmt_float payoffs.(1));
  print_endline
    "shape check: the welfare-maximizing correlated equilibrium exceeds every Nash\n\
     equilibrium's welfare — the payoff a mediator (or its cheap-talk implementation)\n\
     unlocks.\n"
