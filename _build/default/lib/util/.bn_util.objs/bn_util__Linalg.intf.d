lib/util/linalg.mli:
