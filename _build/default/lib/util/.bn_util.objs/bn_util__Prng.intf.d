lib/util/prng.mli:
