lib/util/dist.ml: Float List Prng
