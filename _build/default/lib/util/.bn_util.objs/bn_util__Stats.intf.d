lib/util/stats.mli:
