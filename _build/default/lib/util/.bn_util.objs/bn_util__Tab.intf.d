lib/util/tab.mli:
