lib/util/tab.ml: Array Float List Printf String
