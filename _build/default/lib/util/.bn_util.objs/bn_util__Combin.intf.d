lib/util/combin.mli:
