(** Small dense linear algebra over floats.

    Enough machinery for support-enumeration Nash solvers and least-squares
    style computations: Gaussian elimination with partial pivoting. Matrices
    are arrays of rows. *)

val solve : float array array -> float array -> float array option
(** [solve a b] solves the square system [a x = b]. [None] if (numerically)
    singular. Inputs are not mutated. *)

val mat_vec : float array array -> float array -> float array
(** Matrix-vector product. *)

val dot : float array -> float array -> float
(** Inner product of equal-length vectors. *)

val transpose : float array array -> float array array
(** Matrix transpose (rectangular allowed). *)

val identity : int -> float array array
(** Identity matrix. *)

val mat_mul : float array array -> float array array -> float array array
(** Matrix product. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Absolute-difference comparison, default [eps = 1e-9]. *)
