let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    mean (List.map (fun x -> (x -. m) *. (x -. m)) xs)

let stddev xs = sqrt (variance xs)

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let n = List.length s in
    let a = Array.of_list s in
    if n mod 2 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    if n = 1 then a.(0)
    else
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let gini xs =
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  let total = Array.fold_left ( +. ) 0.0 a in
  if n = 0 || total <= 0.0 then 0.0
  else begin
    let weighted = ref 0.0 in
    Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) a;
    ((2.0 *. !weighted) /. (float_of_int n *. total)) -. (float_of_int (n + 1) /. float_of_int n)
  end

let histogram ~bins xs =
  if bins <= 0 || xs = [] then [||]
  else begin
    let lo = List.fold_left min infinity xs in
    let hi = List.fold_left max neg_infinity xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    let place x =
      let idx = int_of_float ((x -. lo) /. width) in
      let idx = if idx >= bins then bins - 1 else if idx < 0 then 0 else idx in
      counts.(idx) <- counts.(idx) + 1
    in
    List.iter place xs;
    Array.init bins (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))
  end
