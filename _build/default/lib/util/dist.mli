(** Finite discrete probability distributions.

    A distribution is a normalized association list from values to strictly
    positive probabilities. Equal values are merged by the smart
    constructors, so distributions over comparable values have a canonical
    support. This is the common currency between the game, Bayesian,
    mediator and awareness libraries. *)

type 'a t
(** A finite distribution over ['a]. *)

val return : 'a -> 'a t
(** Point mass. *)

val of_list : ('a * float) list -> 'a t
(** Normalizes weights (they must be non-negative, with positive total) and
    merges duplicate values using structural equality.
    @raise Invalid_argument on an empty or all-zero list, or a negative
    weight. *)

val uniform : 'a list -> 'a t
(** Uniform over a non-empty list (duplicates merged). *)

val bernoulli : float -> bool t
(** [bernoulli p] puts mass [p] on [true]. *)

val support : 'a t -> 'a list
(** Values with positive probability. *)

val mass : 'a t -> 'a -> float
(** Probability of a value (0 if outside the support). *)

val to_list : 'a t -> ('a * float) list
(** Underlying (value, probability) pairs; probabilities sum to 1. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Push-forward; merges collisions. *)

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Monadic composition of stochastic kernels. *)

val product : 'a t -> 'b t -> ('a * 'b) t
(** Independent product. *)

val product_list : 'a t list -> 'a list t
(** Independent product of a list of distributions. *)

val expect : ('a -> float) -> 'a t -> float
(** Expectation of a real-valued function. *)

val sample : Prng.t -> 'a t -> 'a
(** Draw one value. *)

val tv_distance : 'a t -> 'a t -> float
(** Total-variation distance: half the L1 distance between mass functions. *)

val filter : ('a -> bool) -> 'a t -> 'a t option
(** Conditioning; [None] if the event has probability 0. *)

val is_uniform : ?eps:float -> 'a t -> bool
(** Whether all support points carry (nearly) equal mass. *)
