let dot u v =
  if Array.length u <> Array.length v then invalid_arg "Linalg.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let mat_vec a v = Array.map (fun row -> dot row v) a

let transpose a =
  let rows = Array.length a in
  if rows = 0 then [||]
  else
    let cols = Array.length a.(0) in
    Array.init cols (fun j -> Array.init rows (fun i -> a.(i).(j)))

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let mat_mul a b =
  let bt = transpose b in
  Array.map (fun row -> Array.map (fun col -> dot row col) bt) a

let approx_equal ?(eps = 1e-9) x y = Float.abs (x -. y) <= eps

(* Gaussian elimination with partial pivoting on an augmented copy. *)
let solve a b =
  let n = Array.length a in
  if n = 0 then Some [||]
  else begin
    if Array.length b <> n then invalid_arg "Linalg.solve: size mismatch";
    let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
    let singular = ref false in
    (try
       for col = 0 to n - 1 do
         (* Pick the pivot row with the largest magnitude in this column. *)
         let pivot = ref col in
         for r = col + 1 to n - 1 do
           if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
         done;
         if Float.abs m.(!pivot).(col) < 1e-12 then begin
           singular := true;
           raise Exit
         end;
         let tmp = m.(col) in
         m.(col) <- m.(!pivot);
         m.(!pivot) <- tmp;
         for r = col + 1 to n - 1 do
           let factor = m.(r).(col) /. m.(col).(col) in
           for c = col to n do
             m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
           done
         done
       done
     with Exit -> ());
    if !singular then None
    else begin
      let x = Array.make n 0.0 in
      for i = n - 1 downto 0 do
        let s = ref m.(i).(n) in
        for j = i + 1 to n - 1 do
          s := !s -. (m.(i).(j) *. x.(j))
        done;
        x.(i) <- !s /. m.(i).(i)
      done;
      Some x
    end
  end
