(** Summary statistics for simulation outputs. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val variance : float list -> float
(** Population variance; 0 on lists of length < 2. *)

val stddev : float list -> float
(** Square root of {!variance}. *)

val median : float list -> float
(** Median (average of the two middle values for even lengths); 0 on []. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,100], nearest-rank with interpolation. *)

val gini : float list -> float
(** Gini coefficient of a list of non-negative values (inequality of the
    Gnutella sharing load); 0 on degenerate input. *)

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per bin over the data
    range. Empty array for empty input or [bins <= 0]. *)
