type 'a t = ('a * float) list

(* Merge duplicate values (structural equality) and drop zero-mass points. *)
let merge pairs =
  let add acc (x, p) =
    if p < 0.0 then invalid_arg "Dist: negative weight"
    else if p = 0.0 then acc
    else
      match List.assoc_opt x acc with
      | None -> (x, p) :: acc
      | Some q -> (x, p +. q) :: List.remove_assoc x acc
  in
  List.rev (List.fold_left add [] pairs)

let of_list pairs =
  let merged = merge pairs in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 merged in
  if merged = [] || total <= 0.0 then invalid_arg "Dist.of_list: empty support";
  List.map (fun (x, p) -> (x, p /. total)) merged

let return x = [ (x, 1.0) ]

let uniform xs =
  match xs with
  | [] -> invalid_arg "Dist.uniform: empty list"
  | _ -> of_list (List.map (fun x -> (x, 1.0)) xs)

let bernoulli p =
  if p < 0.0 || p > 1.0 then invalid_arg "Dist.bernoulli: p out of range";
  if p = 0.0 then return false
  else if p = 1.0 then return true
  else [ (true, p); (false, 1.0 -. p) ]

let support d = List.map fst d

let mass d x = match List.assoc_opt x d with None -> 0.0 | Some p -> p

let to_list d = d

let map f d = of_list (List.map (fun (x, p) -> (f x, p)) d)

let bind d f =
  of_list
    (List.concat_map (fun (x, p) -> List.map (fun (y, q) -> (y, p *. q)) (f x)) d)

let product da db =
  List.concat_map (fun (a, p) -> List.map (fun (b, q) -> ((a, b), p *. q)) db) da

let product_list ds =
  let rec go = function
    | [] -> return []
    | d :: rest ->
      let tail = go rest in
      bind d (fun x -> map (fun xs -> x :: xs) tail)
  in
  go ds

let expect f d = List.fold_left (fun acc (x, p) -> acc +. (p *. f x)) 0.0 d

let sample rng d =
  let u = Prng.float rng in
  let rec go acc = function
    | [] -> fst (List.hd (List.rev d))
    | (x, p) :: rest -> if u < acc +. p then x else go (acc +. p) rest
  in
  go 0.0 d

let tv_distance da db =
  let keys = List.sort_uniq compare (support da @ support db) in
  0.5 *. List.fold_left (fun acc k -> acc +. Float.abs (mass da k -. mass db k)) 0.0 keys

let filter pred d =
  let kept = List.filter (fun (x, _) -> pred x) d in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 kept in
  if total <= 0.0 then None else Some (List.map (fun (x, p) -> (x, p /. total)) kept)

let is_uniform ?(eps = 1e-9) d =
  match d with
  | [] -> true
  | (_, p0) :: rest -> List.for_all (fun (_, p) -> Float.abs (p -. p0) <= eps) rest
