(** Linear algebra over GF(p): Gaussian elimination.

    Used by Berlekamp–Welch decoding, which reconstructs a shared secret in
    the presence of corrupted (Byzantine) shares. *)

val solve : int array array -> int array -> int array option
(** [solve a b] returns some solution of [a x = b] over GF(p), or [None] if
    the system is inconsistent. For underdetermined systems, free variables
    are set to 0. [a] is rectangular: rows are equations. *)

val rank : int array array -> int
(** Rank of a matrix over GF(p). *)
