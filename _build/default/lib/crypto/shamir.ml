type share = { x : int; y : int }

let share rng ~secret ~threshold ~n =
  if threshold < 0 || threshold >= n then invalid_arg "Shamir.share: need 0 <= threshold < n";
  let f = Poly.random rng ~degree:threshold ~secret in
  List.init n (fun i ->
      let x = i + 1 in
      { x; y = Poly.eval f x })

let reconstruct shares =
  let points = List.map (fun { x; y } -> (x, y)) shares in
  Poly.eval (Poly.interpolate points) 0

(* Berlekamp–Welch: find monic E of degree e and Q of degree <= e + d with
   Q(x_i) = y_i * E(x_i) for all i; then f = Q / E. Unknowns: e coefficients
   of E (the top one is fixed to 1) and e + d + 1 coefficients of Q. *)
let robust_reconstruct ~degree:d ~max_errors:e shares =
  let n = List.length shares in
  if n < d + (2 * e) + 1 then None
  else if e = 0 then begin
    let f = Poly.interpolate (List.map (fun { x; y } -> (x, y)) shares) in
    if Poly.degree f <= d then Some (Poly.eval f 0) else None
  end
  else begin
    let nq = d + e + 1 in
    let nvars = e + nq in
    let row { x; y } =
      (* sum_{j<e} E_j x^j y - sum_{k<nq} Q_k x^k = -y x^e *)
      Array.init nvars (fun v ->
          if v < e then Field.mul y (Field.pow x v)
          else Field.neg (Field.pow x (v - e)))
    in
    let rhs { x; y } = Field.neg (Field.mul y (Field.pow x e)) in
    let a = Array.of_list (List.map row shares) in
    let b = Array.of_list (List.map rhs shares) in
    match Fieldmat.solve a b with
    | None -> None
    | Some sol ->
      let epoly = Array.init (e + 1) (fun j -> if j = e then 1 else sol.(j)) in
      let qpoly = Array.init nq (fun k -> sol.(e + k)) in
      let q, r = Poly.divmod qpoly epoly in
      if Poly.degree r >= 0 then None
      else begin
        (* Verify: at most e disagreements with the decoded polynomial. *)
        let errors =
          List.length (List.filter (fun { x; y } -> Poly.eval q x <> y) shares)
        in
        if errors <= e && Poly.degree q <= d then Some (Poly.eval q 0) else None
      end
  end

let verify_consistent ~degree shares =
  match shares with
  | [] -> true
  | _ ->
    let points = List.map (fun { x; y } -> (x, y)) shares in
    let f = Poly.interpolate points in
    Poly.degree f <= degree
