let p = 2147483647

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a - b + p

let mul a b = a * b mod p

let neg a = if a = 0 then 0 else p - a

let rec pow x e =
  if e = 0 then 1
  else begin
    let half = pow x (e / 2) in
    let sq = mul half half in
    if e land 1 = 1 then mul sq x else sq
  end

let inv x = if x = 0 then raise Division_by_zero else pow x (p - 2)

let div a b = mul a (inv b)

let random rng = Bn_util.Prng.int rng p

let rec random_nonzero rng =
  let x = random rng in
  if x = 0 then random_nonzero rng else x
