(* Row-reduce an augmented matrix over GF(p). Returns the reduced matrix and
   the list of pivot columns. *)
let row_reduce m ncols =
  let rows = Array.length m in
  let pivots = ref [] in
  let rank = ref 0 in
  let col = ref 0 in
  while !rank < rows && !col < ncols do
    (* find pivot *)
    let pivot = ref (-1) in
    for r = !rank to rows - 1 do
      if !pivot < 0 && m.(r).(!col) <> 0 then pivot := r
    done;
    if !pivot >= 0 then begin
      let tmp = m.(!rank) in
      m.(!rank) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let inv = Field.inv m.(!rank).(!col) in
      m.(!rank) <- Array.map (Field.mul inv) m.(!rank);
      for r = 0 to rows - 1 do
        if r <> !rank && m.(r).(!col) <> 0 then begin
          let f = m.(r).(!col) in
          m.(r) <- Array.mapi (fun j v -> Field.sub v (Field.mul f m.(!rank).(j))) m.(r)
        end
      done;
      pivots := (!rank, !col) :: !pivots;
      incr rank
    end;
    incr col
  done;
  (List.rev !pivots, !rank)

let solve a b =
  let rows = Array.length a in
  if rows = 0 then Some [||]
  else begin
    let ncols = Array.length a.(0) in
    let m = Array.init rows (fun r -> Array.append (Array.map Field.of_int a.(r)) [| Field.of_int b.(r) |]) in
    let pivots, _ = row_reduce m ncols in
    (* Inconsistent if a zero row has nonzero rhs. *)
    let consistent =
      Array.for_all
        (fun row ->
          let all_zero = ref true in
          for j = 0 to ncols - 1 do
            if row.(j) <> 0 then all_zero := false
          done;
          (not !all_zero) || row.(ncols) = 0)
        m
    in
    if not consistent then None
    else begin
      let x = Array.make ncols 0 in
      List.iter (fun (r, c) -> x.(c) <- m.(r).(ncols)) pivots;
      (* With free variables at 0, pivot rows may still involve free columns;
         recompute pivot values accounting for them (they are 0, so the
         stored rhs is already correct). *)
      Some x
    end
  end

let rank a =
  let rows = Array.length a in
  if rows = 0 then 0
  else begin
    let ncols = Array.length a.(0) in
    let m = Array.init rows (fun r -> Array.append (Array.map Field.of_int a.(r)) [| 0 |]) in
    let _, rk = row_reduce m ncols in
    rk
  end
