(** Arithmetic in the prime field GF(p) with p = 2^31 − 1.

    Elements are OCaml ints in [0, p). Products of two elements fit in 62
    bits, so native arithmetic never overflows on 64-bit platforms. This is
    the algebra underlying secret sharing and the cheap-talk mediator
    protocols. *)

val p : int
(** The modulus, 2147483647 (a Mersenne prime). *)

val of_int : int -> int
(** Canonical representative (handles negatives). *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val neg : int -> int

val pow : int -> int -> int
(** [pow x e] for [e ≥ 0], by square-and-multiply. *)

val inv : int -> int
(** Multiplicative inverse via Fermat's little theorem.
    @raise Division_by_zero on 0. *)

val div : int -> int -> int

val random : Bn_util.Prng.t -> int
(** Uniform field element. *)

val random_nonzero : Bn_util.Prng.t -> int
