lib/crypto/shamir.ml: Array Field Fieldmat List Poly
