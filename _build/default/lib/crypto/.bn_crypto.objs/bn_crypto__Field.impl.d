lib/crypto/field.ml: Bn_util
