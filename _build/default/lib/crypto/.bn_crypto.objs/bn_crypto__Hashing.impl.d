lib/crypto/hashing.ml: Array Bn_util Char Int64 List Printf String
