lib/crypto/fieldmat.ml: Array Field List
