lib/crypto/hashing.mli: Bn_util
