lib/crypto/poly.ml: Array Field List
