lib/crypto/coin_flip.mli: Bn_util
