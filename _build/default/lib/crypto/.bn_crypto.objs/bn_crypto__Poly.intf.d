lib/crypto/poly.mli: Bn_util
