lib/crypto/fieldmat.mli:
