lib/crypto/field.mli: Bn_util
