lib/crypto/coin_flip.ml: Bn_util Hashing
