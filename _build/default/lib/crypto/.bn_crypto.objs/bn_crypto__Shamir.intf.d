lib/crypto/shamir.mli: Bn_util
