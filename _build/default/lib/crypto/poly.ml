type t = int array

let degree a =
  let rec go i = if i < 0 then -1 else if a.(i) <> 0 then i else go (i - 1) in
  go (Array.length a - 1)

let eval a x =
  let acc = ref 0 in
  for i = Array.length a - 1 downto 0 do
    acc := Field.add (Field.mul !acc x) a.(i)
  done;
  !acc

let add a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      let ca = if i < Array.length a then a.(i) else 0 in
      let cb = if i < Array.length b then b.(i) else 0 in
      Field.add ca cb)

let mul a b =
  if degree a < 0 || degree b < 0 then [||]
  else begin
    let out = Array.make (Array.length a + Array.length b - 1) 0 in
    Array.iteri
      (fun i ca ->
        if ca <> 0 then
          Array.iteri
            (fun j cb -> out.(i + j) <- Field.add out.(i + j) (Field.mul ca cb))
            b)
      a;
    out
  end

let scale c a = Array.map (Field.mul c) a

let divmod a b =
  let db = degree b in
  if db < 0 then raise Division_by_zero;
  let r = Array.copy a in
  let da = degree a in
  if da < db then ([| 0 |], r)
  else begin
    let q = Array.make (da - db + 1) 0 in
    let lead_inv = Field.inv b.(db) in
    for i = da - db downto 0 do
      let coeff = Field.mul r.(i + db) lead_inv in
      q.(i) <- coeff;
      if coeff <> 0 then
        for j = 0 to db do
          r.(i + j) <- Field.sub r.(i + j) (Field.mul coeff b.(j))
        done
    done;
    (q, r)
  end

let random rng ~degree:d ~secret =
  if d < 0 then invalid_arg "Poly.random: negative degree";
  let a = Array.init (d + 1) (fun _ -> Field.random rng) in
  a.(0) <- Field.of_int secret;
  if d >= 1 && a.(d) = 0 then a.(d) <- Field.random_nonzero rng;
  a

let interpolate points =
  let xs = List.map fst points in
  if List.length (List.sort_uniq compare xs) <> List.length xs then
    invalid_arg "Poly.interpolate: duplicate x-coordinates";
  List.fold_left
    (fun acc (xi, yi) ->
      (* Lagrange basis polynomial for xi, scaled by yi. *)
      let basis =
        List.fold_left
          (fun b (xj, _) ->
            if xj = xi then b
            else begin
              let denom_inv = Field.inv (Field.sub xi xj) in
              (* b := b * (x - xj) / (xi - xj) *)
              mul b [| Field.mul (Field.neg xj) denom_inv; denom_inv |]
            end)
          [| 1 |] points
      in
      add acc (scale yi basis))
    [| 0 |] points

let equal a b =
  let d = max (degree a) (degree b) in
  let coeff c i = if i < Array.length c then c.(i) else 0 in
  let rec go i = i > d || (coeff a i = coeff b i && go (i + 1)) in
  go 0
