(** Polynomials over GF(p), coefficient order lowest-first. *)

type t = int array
(** [t.(i)] is the coefficient of x^i; the zero polynomial is [[||]] or any
    all-zero array. *)

val degree : t -> int
(** Degree; −1 for the zero polynomial. *)

val eval : t -> int -> int
(** Horner evaluation at a field element. *)

val add : t -> t -> t
val mul : t -> t -> t
val scale : int -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: [(q, r)] with [a = q·b + r], [deg r < deg b].
    @raise Division_by_zero if [b] is the zero polynomial. *)

val random : Bn_util.Prng.t -> degree:int -> secret:int -> t
(** Uniformly random polynomial of exactly the given [degree] (top
    coefficient nonzero for degree ≥ 1) with constant term [secret]. *)

val interpolate : (int * int) list -> t
(** Lagrange interpolation through distinct points.
    @raise Invalid_argument on duplicate x-coordinates. *)

val equal : t -> t -> bool
(** Equality up to trailing zeros. *)
