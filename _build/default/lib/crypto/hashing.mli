(** Toy cryptographic primitives for the simulated protocols.

    These are {e simulation-grade}: collision-resistant enough for test
    workloads and deliberately simple. The mediator results that rely on
    "cryptography and polynomially-bounded players" only need the
    {e functionality} of commitments and signatures inside the simulator —
    see DESIGN.md §3 on substitutions. *)

val hash : string -> int64
(** FNV-1a 64-bit with an extra avalanche round. *)

val hash_ints : int list -> int64
(** Hash of a list of ints with unambiguous framing. *)

(** Hash-based commitments: [commit v nonce] binds to [(v, nonce)]. *)
module Commit : sig
  type t = int64

  val commit : value:int -> nonce:int -> t
  val verify : t -> value:int -> nonce:int -> bool
end

(** Identification-based signatures backed by per-signer secrets held by the
    simulator: unforgeable by construction for in-simulation adversaries
    that do not know the signing secret. *)
module Pki : sig
  type t
  type signature = int64

  val create : Bn_util.Prng.t -> n:int -> t
  (** Fresh key pairs for players [0 … n−1]. *)

  val sign : t -> signer:int -> msg:string -> signature
  val verify : t -> signer:int -> msg:string -> signature -> bool

  val forge_attempt : Bn_util.Prng.t -> signature
  (** What an adversary without the key can do: a random tag. Verification
    succeeds with probability ≈ 2^−64. *)
end
