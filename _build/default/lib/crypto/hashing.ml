let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let avalanche z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  avalanche !h

let hash_ints ints =
  hash (String.concat "," (List.map string_of_int ints))

module Commit = struct
  type t = int64

  let commit ~value ~nonce = hash (Printf.sprintf "commit|%d|%d" value nonce)
  let verify c ~value ~nonce = Int64.equal c (commit ~value ~nonce)
end

module Pki = struct
  type t = { secrets : int64 array }
  type signature = int64

  let create rng ~n = { secrets = Array.init n (fun _ -> Bn_util.Prng.bits64 rng) }

  let sign t ~signer ~msg =
    hash (Printf.sprintf "sig|%Ld|%s" t.secrets.(signer) msg)

  let verify t ~signer ~msg s = Int64.equal s (sign t ~signer ~msg)

  let forge_attempt rng = Bn_util.Prng.bits64 rng
end
