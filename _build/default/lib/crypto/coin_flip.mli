(** Commit–reveal coin flipping (Blum).

    A fairness primitive the cheap-talk constructions lean on: two parties
    jointly produce a coin neither controls. Each commits to a random bit,
    commitments are exchanged, then openings; the coin is the XOR. A party
    that aborts after seeing the other's opening can bias the {e output
    conditioned on completion} — the residual unfairness that motivates the
    ε in the paper's ε-implementation bullets. *)

type transcript = {
  coin : int option;  (** The XOR, or [None] if a party aborted. *)
  aborted_by : int option;
  commitments_checked : bool;  (** Both openings matched their commitments. *)
}

val honest : Bn_util.Prng.t -> transcript
(** Both parties follow the protocol; always completes with a fair coin. *)

val biased_aborter : Bn_util.Prng.t -> prefer:int -> transcript
(** Party 1 opens first; party 2 aborts unless the resulting coin would be
    [prefer]. The completed-run coin is always [prefer] — exhibiting the
    bias an aborter can extract. *)

val cheater_caught : Bn_util.Prng.t -> transcript
(** Party 2 tries to open a different bit than committed; the commitment
    check fails ([commitments_checked = false], no coin). *)

val completion_bias :
  Bn_util.Prng.t -> trials:int -> prefer:int -> float * float
(** [(completion_rate, bias)] of {!biased_aborter} over [trials]: the run
    completes ≈ half the time, and conditioned on completion the coin is
    [prefer] with probability 1. *)
