module Prng = Bn_util.Prng

type transcript = {
  coin : int option;
  aborted_by : int option;
  commitments_checked : bool;
}

let fresh_party rng =
  let bit = if Prng.bool rng then 1 else 0 in
  let nonce = Prng.int rng 1_000_000_000 in
  (bit, nonce, Hashing.Commit.commit ~value:bit ~nonce)

let honest rng =
  let b1, n1, c1 = fresh_party rng in
  let b2, n2, c2 = fresh_party rng in
  let ok =
    Hashing.Commit.verify c1 ~value:b1 ~nonce:n1 && Hashing.Commit.verify c2 ~value:b2 ~nonce:n2
  in
  { coin = (if ok then Some (b1 lxor b2) else None); aborted_by = None; commitments_checked = ok }

let biased_aborter rng ~prefer =
  let b1, n1, c1 = fresh_party rng in
  let b2, n2, c2 = fresh_party rng in
  (* Party 1 opens first; party 2 now knows the coin and aborts if it
     dislikes it. *)
  let coin = b1 lxor b2 in
  if coin <> prefer then { coin = None; aborted_by = Some 2; commitments_checked = true }
  else begin
    let ok =
      Hashing.Commit.verify c1 ~value:b1 ~nonce:n1 && Hashing.Commit.verify c2 ~value:b2 ~nonce:n2
    in
    { coin = (if ok then Some coin else None); aborted_by = None; commitments_checked = ok }
  end

let cheater_caught rng =
  let b1, _n1, _c1 = fresh_party rng in
  let b2, n2, c2 = fresh_party rng in
  (* Party 2 opens the flipped bit with the old nonce: detected. *)
  let forged = 1 - b2 in
  let ok = Hashing.Commit.verify c2 ~value:forged ~nonce:n2 in
  ignore b1;
  { coin = None; aborted_by = None; commitments_checked = ok }

let completion_bias rng ~trials ~prefer =
  let completed = ref 0 and matching = ref 0 in
  for _ = 1 to trials do
    match biased_aborter rng ~prefer with
    | { coin = Some c; _ } ->
      incr completed;
      if c = prefer then incr matching
    | { coin = None; _ } -> ()
  done;
  let rate = float_of_int !completed /. float_of_int trials in
  let bias = if !completed = 0 then 0.0 else float_of_int !matching /. float_of_int !completed in
  (rate, bias)
