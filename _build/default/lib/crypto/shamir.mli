(** Shamir secret sharing over GF(p), with robust reconstruction.

    A secret [s] is shared among players 1…n by sampling a degree-[t]
    polynomial [f] with [f(0) = s] and giving player [i] the share
    [(i, f(i))]. Any [t+1] shares reconstruct; [t] shares reveal nothing.
    [robust_reconstruct] additionally tolerates corrupted shares via
    Berlekamp–Welch decoding — the mechanism that lets the cheap-talk
    mediator protocol survive Byzantine participants (paper §2). *)

type share = { x : int; y : int }

val share :
  Bn_util.Prng.t -> secret:int -> threshold:int -> n:int -> share list
(** [share rng ~secret ~threshold ~n] produces [n] shares such that any
    [threshold + 1] reconstruct the secret (polynomial degree =
    [threshold]). Requires [0 ≤ threshold < n].  *)

val reconstruct : share list -> int
(** Lagrange reconstruction assuming all shares are correct (uses all given
    shares; they must be consistent and ≥ threshold+1 of them). *)

val robust_reconstruct :
  degree:int -> max_errors:int -> share list -> int option
(** Berlekamp–Welch: reconstructs the degree-[degree] polynomial's secret
    from [n] shares of which up to [max_errors] may be arbitrarily wrong;
    requires [n ≥ degree + 2·max_errors + 1]. [None] if decoding fails
    (more errors than the bound). *)

val verify_consistent : degree:int -> share list -> bool
(** Whether the given shares all lie on one polynomial of the stated
    degree. *)
