(** The Abraham–Dolev–Gonen–Halpern characterization of when mediators can
    be implemented by cheap talk (paper §2, the nine bullets).

    [classify ~n ~k ~t assumptions] walks the thresholds in the order the
    paper states them and returns the strongest implementation the regime
    admits, or the impossibility that blocks it, together with the bullet
    it comes from. *)

type assumptions = {
  utilities_known : bool;
      (** Whether the protocol may depend on players' utility functions. *)
  punishment : bool;  (** A (k+t)-punishment strategy exists. *)
  broadcast : bool;  (** Broadcast channels are available. *)
  crypto : bool;  (** Cryptography + polynomially-bounded players. *)
  pki : bool;  (** A public-key infrastructure exists (implies crypto). *)
}

val no_assumptions : assumptions
(** Everything false: bare cheap talk with unknown utilities. *)

val all_assumptions : assumptions

type running_time =
  | Bounded  (** Fixed number of rounds, independent of utilities. *)
  | Bounded_expected  (** Bounded expectation, independent of utilities. *)
  | Finite_expected  (** Finite expectation, independent of utilities. *)
  | Utility_dependent  (** Expectation necessarily depends on utilities/ε. *)

type verdict =
  | Implementable of {
      exact : bool;  (** true = exact implementation, false = ε. *)
      running_time : running_time;
      needs : string list;  (** Assumptions the construction uses. *)
      bullet : int;  (** Which of the paper's nine bullets (1-based). *)
    }
  | Impossible of { reason : string; bullet : int }

val classify : n:int -> k:int -> t:int -> assumptions -> verdict
(** Requires [n ≥ 1], [k ≥ 1], [t ≥ 0]: a (k,t)-robust equilibrium with
    k = 0 is not an equilibrium notion ((1,0) is Nash).
    @raise Invalid_argument otherwise. *)

val describe : verdict -> string
(** One-line rendering for tables. *)

val bullet_text : int -> string
(** The paper's statement being applied (abridged). *)
