(** Byzantine agreement as a normal-form Bayesian game (paper §2).

    Player 0 is the general; its type is its initial preference (0 =
    retreat, 1 = attack), uniform prior. All players choose an action in
    {0, 1}. Utilities reward coordination and following an honest general:

    [u_i = 1{a_i = maj} + 1{maj = general's type}]

    where [maj] is the majority action (ties → 0). Coordinating on the
    general's preference yields 2 for everyone; miscoordination is costly.
    The majority aggregation makes the honest-mediated profile immune to
    minorities of faulty players — the property the cheap-talk protocol
    must preserve. *)

val game : n:int -> Bn_bayesian.Bayesian.t
(** The underlying Bayesian game for [n ≥ 3] players. *)

val mediator : n:int -> Mediated.t
(** The trivial mediator: it relays the general's reported type to everyone
    as a recommendation. *)

val majority : int array -> int
(** Majority action (ties → 0); exposed for tests. *)
