(** Sunspot (public-randomization) equilibria — what cheap talk can do
    {e without} meeting the mediator thresholds.

    With commit–reveal coin flipping ({!Bn_crypto.Coin_flip}) two players
    can jointly sample {e public} randomness and condition play on it. That
    implements exactly the convex combinations of Nash equilibria — but not
    general correlated equilibria, whose recommendations must stay private.
    The welfare gap between the best sunspot and the best correlated
    equilibrium (E13) is the quantitative value of a genuine mediator, and
    two players sit precisely in the paper's impossible regime
    (n = 2 ≤ 2k + 2t for (k,t) = (1,0)). *)

type t = {
  weights : float list;  (** Convex weights, one per equilibrium. *)
  equilibria : Bn_game.Mixed.profile list;
}

val make : (float * Bn_game.Mixed.profile) list -> t
(** Normalizes weights.
    @raise Invalid_argument on empty input or non-positive total. *)

val is_valid : ?eps:float -> Bn_game.Normal_form.t -> t -> bool
(** Every component must be a Nash equilibrium (obedience to a public
    signal is exactly Nash obedience component-wise). *)

val expected_payoffs : Bn_game.Normal_form.t -> t -> float array

val best_sunspot_welfare : Bn_game.Normal_form.t -> float
(** Max total welfare over Nash equilibria (the best convex combination is
    a vertex), via {!Bn_game.Nash.support_enumeration_2p}. *)

val mediator_gap : Bn_game.Normal_form.t -> float
(** Welfare of the best correlated equilibrium minus
    {!best_sunspot_welfare}: how much payoff requires {e private}
    mediation. Non-negative. *)

val sample_and_play :
  Bn_util.Prng.t -> Bn_game.Normal_form.t -> t -> int array * float array
(** One run: commit-reveal coins pick the component (public), both players
    then sample their (possibly mixed) component strategies; returns the
    realized action profile and payoffs. *)
