module Dist = Bn_util.Dist
module Bayesian = Bn_bayesian.Bayesian

type t = {
  base : Bayesian.t;
  mediate : int array -> int array Dist.t;
}

type deviation = {
  report : int -> int;
  act : int -> int -> int;
}

let honest_deviation = { report = Fun.id; act = (fun _ rec_ -> rec_) }

let utilities_under t deviators =
  let n = Bayesian.n_players t.base in
  let dev i = match List.assoc_opt i deviators with Some d -> d | None -> honest_deviation in
  let total = Array.make n 0.0 in
  List.iter
    (fun (types, p_ty) ->
      let reported = Array.init n (fun i -> (dev i).report types.(i)) in
      List.iter
        (fun (recs, p_rec) ->
          let acts = Array.init n (fun i -> (dev i).act types.(i) recs.(i)) in
          let u = Bayesian.utility t.base ~types ~acts in
          for i = 0 to n - 1 do
            total.(i) <- total.(i) +. (p_ty *. p_rec *. u.(i))
          done)
        (Dist.to_list (t.mediate reported)))
    (Dist.to_list (Bayesian.prior t.base));
  total

let honest_utilities t = utilities_under t []

let honest_outcome t =
  Dist.bind (Bayesian.prior t.base) (fun types ->
      Dist.map (fun recs -> (types, recs)) (t.mediate types))

let outcome_for_types t types = t.mediate types

(* Enumerate all functions from [0, dom) to [0, cod) as arrays. *)
let all_maps dom cod = Bn_util.Combin.profiles (Array.make dom cod)

let all_deviations t ~player =
  let ntypes = Bayesian.num_types t.base player in
  let nacts = Bayesian.num_actions t.base player in
  let reports = all_maps ntypes ntypes in
  (* act: type × recommendation → action, flattened as type*nacts + rec *)
  let acts = all_maps (ntypes * nacts) nacts in
  List.concat_map
    (fun r ->
      List.map
        (fun a ->
          {
            report = (fun ty -> r.(ty));
            act = (fun ty rec_ -> a.((ty * nacts) + rec_));
          })
        acts)
    reports

let is_truthful_equilibrium ?(eps = 1e-9) t =
  let n = Bayesian.n_players t.base in
  let base_u = honest_utilities t in
  let ok = ref true in
  for i = 0 to n - 1 do
    List.iter
      (fun d ->
        let u = utilities_under t [ (i, d) ] in
        if u.(i) > base_u.(i) +. eps then ok := false)
      (all_deviations t ~player:i)
  done;
  !ok

(* Joint deviations of a coalition: cartesian product of per-member
   deviation lists. *)
let rec joint = function
  | [] -> [ [] ]
  | (i, ds) :: rest ->
    let tails = joint rest in
    List.concat_map (fun d -> List.map (fun tail -> (i, d) :: tail) tails) ds

let check_resilience ?(eps = 1e-9) t ~k =
  let n = Bayesian.n_players t.base in
  let base_u = honest_utilities t in
  let witness = ref None in
  List.iter
    (fun coalition ->
      if !witness = None then
        let options = List.map (fun i -> (i, all_deviations t ~player:i)) coalition in
        List.iter
          (fun assignment ->
            if !witness = None then begin
              let u = utilities_under t assignment in
              if List.exists (fun i -> u.(i) > base_u.(i) +. eps) coalition then
                witness := Some (coalition, u)
            end)
          (joint options))
    (Bn_util.Combin.subsets_up_to n k);
  !witness

let check_immunity ?(eps = 1e-9) t ~t_bound =
  let n = Bayesian.n_players t.base in
  let base_u = honest_utilities t in
  let witness = ref None in
  List.iter
    (fun deviators ->
      if !witness = None then
        let options = List.map (fun i -> (i, all_deviations t ~player:i)) deviators in
        List.iter
          (fun assignment ->
            if !witness = None then begin
              let u = utilities_under t assignment in
              List.iter
                (fun i ->
                  if (not (List.mem i deviators)) && u.(i) < base_u.(i) -. eps then
                    witness := Some (deviators, i, u.(i)))
                (List.init n Fun.id)
            end)
          (joint options))
    (Bn_util.Combin.subsets_up_to n t_bound);
  !witness
