module Mixed = Bn_game.Mixed
module Nash = Bn_game.Nash
module Normal_form = Bn_game.Normal_form

type t = {
  weights : float list;
  equilibria : Mixed.profile list;
}

let make components =
  if components = [] then invalid_arg "Sunspot.make: no components";
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 components in
  if total <= 0.0 || List.exists (fun (w, _) -> w < 0.0) components then
    invalid_arg "Sunspot.make: weights must be non-negative with positive sum";
  {
    weights = List.map (fun (w, _) -> w /. total) components;
    equilibria = List.map snd components;
  }

let is_valid ?eps g t = List.for_all (Nash.is_nash ?eps g) t.equilibria

let expected_payoffs g t =
  let n = Normal_form.n_players g in
  let acc = Array.make n 0.0 in
  List.iter2
    (fun w prof ->
      for i = 0 to n - 1 do
        acc.(i) <- acc.(i) +. (w *. Mixed.expected_payoff g prof i)
      done)
    t.weights t.equilibria;
  acc

let best_sunspot_welfare g =
  List.fold_left
    (fun acc prof ->
      let n = Normal_form.n_players g in
      let w = ref 0.0 in
      for i = 0 to n - 1 do
        w := !w +. Mixed.expected_payoff g prof i
      done;
      Float.max acc !w)
    neg_infinity (Nash.support_enumeration_2p g)

let mediator_gap g =
  match Bn_game.Correlated.max_welfare g with
  | None -> 0.0
  | Some (_, ce) -> Float.max 0.0 (ce -. best_sunspot_welfare g)

let sample_and_play rng g t =
  (* Public randomness via commit-reveal coin flips: enough fair bits to
     sample the component index by inverse transform over dyadic
     refinement. *)
  let coin () =
    match Bn_crypto.Coin_flip.honest rng with
    | { Bn_crypto.Coin_flip.coin = Some c; _ } -> c
    | { Bn_crypto.Coin_flip.coin = None; _ } -> 0
  in
  let u =
    (* 20 public coin flips give a uniform dyadic in [0,1). *)
    let x = ref 0.0 and scale = ref 0.5 in
    for _ = 1 to 20 do
      if coin () = 1 then x := !x +. !scale;
      scale := !scale /. 2.0
    done;
    !x
  in
  let rec pick weights eqs acc =
    match (weights, eqs) with
    | [ _ ], [ e ] -> e
    | w :: ws, e :: es -> if u < acc +. w then e else pick ws es (acc +. w)
    | _ -> invalid_arg "Sunspot.sample_and_play: mismatched components"
  in
  let component = pick t.weights t.equilibria 0.0 in
  let actions =
    Array.mapi
      (fun i strat ->
        let d = Bn_util.Dist.of_list (Array.to_list (Array.mapi (fun a p -> (a, p)) strat)) in
        ignore i;
        Bn_util.Dist.sample rng d)
      component
  in
  (actions, Normal_form.payoff_vector g actions)
