lib/mediator/feasibility.mli:
