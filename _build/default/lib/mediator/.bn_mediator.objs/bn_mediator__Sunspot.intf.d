lib/mediator/sunspot.mli: Bn_game Bn_util
