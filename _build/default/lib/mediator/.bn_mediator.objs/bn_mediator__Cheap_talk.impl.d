lib/mediator/cheap_talk.ml: Array Ba_game Bn_byzantine Bn_crypto Bn_dist_sim Bn_util Fun List Mediated Option
