lib/mediator/feasibility.ml: Printf String
