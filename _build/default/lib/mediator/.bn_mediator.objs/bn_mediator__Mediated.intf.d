lib/mediator/mediated.mli: Bn_bayesian Bn_util
