lib/mediator/rational_ss.ml: Array Bn_crypto Bn_util
