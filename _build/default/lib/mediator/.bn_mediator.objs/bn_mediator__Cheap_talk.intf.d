lib/mediator/cheap_talk.mli: Bn_util
