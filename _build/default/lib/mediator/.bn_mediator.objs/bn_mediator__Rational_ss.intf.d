lib/mediator/rational_ss.mli: Bn_util
