lib/mediator/mediated.ml: Array Bn_bayesian Bn_util Fun List
