lib/mediator/ba_game.mli: Bn_bayesian Mediated
