lib/mediator/ba_game.ml: Array Bn_bayesian Bn_util Mediated Printf
