lib/mediator/sunspot.ml: Array Bn_crypto Bn_game Bn_util Float List
