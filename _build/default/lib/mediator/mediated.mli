(** Bayesian games extended with a mediator (trusted third party).

    A mediator collects reported types and returns (possibly randomized)
    private action recommendations. The {e mediated game} is the extension
    of the underlying Bayesian game where each player chooses how to report
    and whether to obey; the honest strategy reports truthfully and obeys.

    A cheap-talk protocol {e implements} the mediator if it induces the
    same distribution over underlying actions for every type vector
    (paper §2); {!Cheap_talk} provides such implementations, and this
    module provides the mediator side plus robustness checks of the honest
    profile against coalitions of misreporting/disobeying players. *)

type t = {
  base : Bn_bayesian.Bayesian.t;
  mediate : int array -> int array Bn_util.Dist.t;
      (** Reported type profile → distribution over recommended action
          profiles. *)
}

val honest_outcome : t -> (int array * int array) Bn_util.Dist.t
(** Distribution over (type profile, action profile) when every player
    reports truthfully and obeys. *)

val honest_utilities : t -> float array
(** Ex-ante utilities of the honest profile. *)

val outcome_for_types : t -> int array -> int array Bn_util.Dist.t
(** Action distribution for a fixed type profile under honesty — the object
    a cheap-talk implementation must match. *)

(** A pure deviation for one player: how to misreport and how to act given
    its true type and the mediator's recommendation. *)
type deviation = {
  report : int -> int;  (** true type → reported type *)
  act : int -> int -> int;  (** true type → recommendation → action *)
}

val honest_deviation : deviation

val utilities_under : t -> (int * deviation) list -> float array
(** Ex-ante utilities when the listed players apply their deviations and
    everyone else is honest. *)

val is_truthful_equilibrium : ?eps:float -> t -> bool
(** No single player gains by any pure (misreport, disobey) deviation. *)

val check_resilience : ?eps:float -> t -> k:int -> (int list * float array) option
(** [None] if no coalition of ≤ k players has a joint pure deviation
    benefiting a member; otherwise a witness (coalition, utilities). *)

val check_immunity : ?eps:float -> t -> t_bound:int -> (int list * int * float) option
(** [None] if no set of ≤ [t_bound] deviators can lower a non-deviator's
    ex-ante utility; otherwise (deviators, victim, victim's utility). *)

val all_deviations : t -> player:int -> deviation list
(** Every pure deviation of [player] (exponential in type/action counts;
    intended for the small games in tests and benches). *)
