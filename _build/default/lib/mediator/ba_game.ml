module Dist = Bn_util.Dist
module Bayesian = Bn_bayesian.Bayesian

let majority acts =
  let ones = Array.fold_left ( + ) 0 acts in
  let zeros = Array.length acts - ones in
  if ones > zeros then 1 else 0

let game ~n =
  if n < 3 then invalid_arg "Ba_game.game: need n >= 3";
  let num_types = Array.init n (fun i -> if i = 0 then 2 else 1) in
  let prior = Dist.uniform [ Array.init n (fun _ -> 0); Array.init n (fun i -> if i = 0 then 1 else 0) ] in
  Bayesian.create
    ~player_names:(Array.init n (fun i -> if i = 0 then "general" else Printf.sprintf "soldier%d" i))
    ~num_types
    ~actions:(Array.make n 2)
    ~prior
    (fun ~types ~acts ->
      let maj = majority acts in
      Array.init n (fun i ->
          (if acts.(i) = maj then 1.0 else 0.0) +. if maj = types.(0) then 1.0 else 0.0))

let mediator ~n =
  let base = game ~n in
  {
    Mediated.base;
    mediate = (fun reported -> Dist.return (Array.make n reported.(0)));
  }
