(** Finite extensive-form games with chance moves and information sets.

    A game tree's decision nodes carry a player and an information-set
    label; nodes sharing a label belong to one information set and must
    offer the same move list. This is the representation that §4's
    augmented games extend with awareness levels. *)

type node =
  | Terminal of float array  (** Payoff per player. *)
  | Chance of (string * float * node) list
      (** Labelled chance edges with probabilities summing to 1. *)
  | Decision of { player : int; info : string; moves : (string * node) list }
      (** A decision node in information set [info]. *)

type t

val create : n_players:int -> node -> t
(** Validates the tree: payoff arity, chance probabilities, player indices
    in range, and consistency of move lists within each information set.
    @raise Invalid_argument on malformed trees. *)

val root : t -> node
val n_players : t -> int

val info_sets : t -> player:int -> (string * string list) list
(** Information sets of a player as (label, move names), in first-visit
    order. *)

val histories : t -> string list list
(** All maximal histories (paths to terminals) as lists of edge labels,
    including chance edges. *)

(** {1 Strategies} *)

type pure = (string * string) list
(** Pure strategy of one player: a move name per information-set label. *)

type behavioral = (string * (string * float) list) list
(** A distribution over move names per information-set label. *)

val pure_strategies : t -> player:int -> pure list
(** All pure strategies (cartesian product over the player's info sets). *)

val behavioral_of_pure : pure -> behavioral

val outcome : t -> behavioral array -> float array Bn_util.Dist.t
(** Distribution over terminal payoff vectors when each player follows its
    behavioral strategy.
    @raise Invalid_argument if a strategy omits a reached info set. *)

val expected_payoffs : t -> behavioral array -> float array
(** Expectation of {!outcome}. *)

val to_normal_form : t -> Bn_game.Normal_form.t * pure list array
(** The induced normal form: one action per pure strategy per player.
    Returns the game and the pure-strategy denotation of each action. *)

val backward_induction : t -> pure array * float array
(** Subgame-perfect equilibrium of a {e perfect-information} game (every
    information set a singleton), by backward induction; ties broken toward
    the first listed move. Returns the profile and its expected payoffs.
    @raise Invalid_argument if some information set has several nodes. *)

val is_nash : ?eps:float -> t -> behavioral array -> bool
(** Nash check through the induced normal form (exact for pure profiles;
    behavioral profiles are checked against all pure deviations, which is
    sufficient by perfect recall). *)

val to_dot : ?title:string -> t -> string
(** Graphviz rendering of the game tree: decision nodes labelled
    "player/info-set", chance nodes as diamonds with probabilities on the
    edges, terminals as payoff boxes. Paste into `dot -Tsvg`. *)
