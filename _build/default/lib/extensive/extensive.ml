module Dist = Bn_util.Dist

type node =
  | Terminal of float array
  | Chance of (string * float * node) list
  | Decision of { player : int; info : string; moves : (string * node) list }

type t = { n : int; root : node }

let create ~n_players root =
  if n_players <= 0 then invalid_arg "Extensive.create: need players";
  (* info set label -> move names, for consistency checking *)
  let seen : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let rec check = function
    | Terminal payoffs ->
      if Array.length payoffs <> n_players then
        invalid_arg "Extensive.create: payoff arity"
    | Chance edges ->
      if edges = [] then invalid_arg "Extensive.create: empty chance node";
      let total = List.fold_left (fun acc (_, p, _) -> acc +. p) 0.0 edges in
      if Float.abs (total -. 1.0) > 1e-9 then
        invalid_arg "Extensive.create: chance probabilities must sum to 1";
      List.iter (fun (_, p, child) ->
          if p < 0.0 then invalid_arg "Extensive.create: negative probability";
          check child)
        edges
    | Decision { player; info; moves } ->
      if player < 0 || player >= n_players then
        invalid_arg "Extensive.create: player out of range";
      if moves = [] then invalid_arg "Extensive.create: empty decision node";
      let names = List.map fst moves in
      (match Hashtbl.find_opt seen info with
      | None -> Hashtbl.replace seen info names
      | Some existing ->
        if existing <> names then
          invalid_arg "Extensive.create: inconsistent moves within an information set");
      List.iter (fun (_, child) -> check child) moves
  in
  check root;
  { n = n_players; root }

let root t = t.root
let n_players t = t.n

let info_sets t ~player =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let rec go = function
    | Terminal _ -> ()
    | Chance edges -> List.iter (fun (_, _, child) -> go child) edges
    | Decision { player = p; info; moves } ->
      if p = player && not (Hashtbl.mem seen info) then begin
        Hashtbl.replace seen info ();
        acc := (info, List.map fst moves) :: !acc
      end;
      List.iter (fun (_, child) -> go child) moves
  in
  go t.root;
  List.rev !acc

let histories t =
  let rec go prefix = function
    | Terminal _ -> [ List.rev prefix ]
    | Chance edges -> List.concat_map (fun (lbl, _, child) -> go (lbl :: prefix) child) edges
    | Decision { moves; _ } ->
      List.concat_map (fun (lbl, child) -> go (lbl :: prefix) child) moves
  in
  go [] t.root

type pure = (string * string) list
type behavioral = (string * (string * float) list) list

let pure_strategies t ~player =
  let sets = info_sets t ~player in
  let rec go = function
    | [] -> [ [] ]
    | (info, moves) :: rest ->
      let tails = go rest in
      List.concat_map (fun m -> List.map (fun tail -> (info, m) :: tail) tails) moves
  in
  go sets

let behavioral_of_pure pure = List.map (fun (info, move) -> (info, [ (move, 1.0) ])) pure

let outcome t strategies =
  if Array.length strategies <> t.n then invalid_arg "Extensive.outcome: profile arity";
  let rec go prob = function
    | Terminal payoffs -> [ (payoffs, prob) ]
    | Chance edges ->
      List.concat_map (fun (_, p, child) -> if p > 0.0 then go (prob *. p) child else []) edges
    | Decision { player; info; moves } -> (
      match List.assoc_opt info strategies.(player) with
      | None -> invalid_arg ("Extensive.outcome: no strategy at info set " ^ info)
      | Some dist ->
        List.concat_map
          (fun (move, p) ->
            if p <= 0.0 then []
            else
              match List.assoc_opt move moves with
              | None -> invalid_arg ("Extensive.outcome: unknown move " ^ move)
              | Some child -> go (prob *. p) child)
          dist)
  in
  Dist.of_list (go 1.0 t.root)

let expected_payoffs t strategies =
  let dist = outcome t strategies in
  let n = t.n in
  let total = Array.make n 0.0 in
  List.iter
    (fun (payoffs, p) ->
      for i = 0 to n - 1 do
        total.(i) <- total.(i) +. (p *. payoffs.(i))
      done)
    (Dist.to_list dist);
  total

let to_normal_form t =
  let strategy_lists = Array.init t.n (fun i -> Array.of_list (pure_strategies t ~player:i)) in
  let actions = Array.map Array.length strategy_lists in
  let game =
    Bn_game.Normal_form.create ~actions (fun p ->
        let strategies =
          Array.init t.n (fun i -> behavioral_of_pure strategy_lists.(i).(p.(i)))
        in
        expected_payoffs t strategies)
  in
  (game, Array.map Array.to_list strategy_lists)

let backward_induction t =
  List.iter
    (fun player ->
      let sets = info_sets t ~player in
      let count = Hashtbl.create 16 in
      let rec tally = function
        | Terminal _ -> ()
        | Chance edges -> List.iter (fun (_, _, c) -> tally c) edges
        | Decision { info; moves; player = p } ->
          if p = player then
            Hashtbl.replace count info (1 + Option.value ~default:0 (Hashtbl.find_opt count info));
          List.iter (fun (_, c) -> tally c) moves
      in
      tally t.root;
      List.iter
        (fun (info, _) ->
          if Option.value ~default:0 (Hashtbl.find_opt count info) > 1 then
            invalid_arg "Extensive.backward_induction: imperfect information")
        sets)
    (List.init t.n Fun.id);
  let choices = Array.make t.n [] in
  let rec solve = function
    | Terminal payoffs -> Array.copy payoffs
    | Chance edges ->
      let acc = Array.make t.n 0.0 in
      List.iter
        (fun (_, p, child) ->
          let v = solve child in
          for i = 0 to t.n - 1 do
            acc.(i) <- acc.(i) +. (p *. v.(i))
          done)
        edges;
      acc
    | Decision { player; info; moves } ->
      let values = List.map (fun (lbl, child) -> (lbl, solve child)) moves in
      let best_lbl, best_v =
        List.fold_left
          (fun (bl, bv) (lbl, v) -> if v.(player) > bv.(player) then (lbl, v) else (bl, bv))
          (List.hd values) (List.tl values)
      in
      choices.(player) <- (info, best_lbl) :: choices.(player);
      best_v
  in
  let value = solve t.root in
  (Array.map List.rev choices, value)

let is_nash ?(eps = 1e-9) t strategies =
  let base = expected_payoffs t strategies in
  let ok = ref true in
  for i = 0 to t.n - 1 do
    List.iter
      (fun pure ->
        let deviated = Array.copy strategies in
        deviated.(i) <- behavioral_of_pure pure;
        if (expected_payoffs t deviated).(i) > base.(i) +. eps then ok := false)
      (pure_strategies t ~player:i)
  done;
  !ok

let to_dot ?(title = "game") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  node [fontname=\"monospace\"];\n" title);
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "n%d" !counter
  in
  let rec go node =
    let id = fresh () in
    (match node with
    | Terminal payoffs ->
      let label =
        String.concat "," (List.map (Printf.sprintf "%g") (Array.to_list payoffs))
      in
      Buffer.add_string buf (Printf.sprintf "  %s [shape=box,label=\"(%s)\"];\n" id label)
    | Chance edges ->
      Buffer.add_string buf (Printf.sprintf "  %s [shape=diamond,label=\"chance\"];\n" id);
      List.iter
        (fun (lbl, p, child) ->
          let cid = go child in
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s [label=\"%s (%.2f)\"];\n" id cid lbl p))
        edges
    | Decision { player; info; moves } ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=ellipse,label=\"P%d/%s\"];\n" id (player + 1) info);
      List.iter
        (fun (lbl, child) ->
          let cid = go child in
          Buffer.add_string buf (Printf.sprintf "  %s -> %s [label=%S];\n" id cid lbl))
        moves);
    id
  in
  ignore (go t.root);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
