lib/extensive/canned.ml: Extensive List Printf
