lib/extensive/extensive.mli: Bn_game Bn_util
