lib/extensive/canned.mli: Extensive
