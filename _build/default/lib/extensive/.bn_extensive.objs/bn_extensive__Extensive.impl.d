lib/extensive/extensive.ml: Array Bn_game Bn_util Buffer Float Fun Hashtbl List Option Printf String
