open Extensive

let centipede ~rounds =
  if rounds < 1 then invalid_arg "Canned.centipede: rounds >= 1";
  let rec node i =
    if i = rounds then begin
      let v = float_of_int (rounds + 1) in
      Terminal [| v; v |]
    end
    else begin
      let mover = i mod 2 in
      let take_mover = float_of_int (2 + i) and take_other = float_of_int i in
      let payoffs =
        if mover = 0 then [| take_mover; take_other |] else [| take_other; take_mover |]
      in
      Decision
        {
          player = mover;
          info = Printf.sprintf "node%d" i;
          moves = [ ("take", Terminal payoffs); ("pass", node (i + 1)) ];
        }
    end
  in
  create ~n_players:2 (node 0)

let ultimatum ~pie =
  if pie < 1 then invalid_arg "Canned.ultimatum: pie >= 1";
  let respond k =
    Decision
      {
        player = 1;
        info = Printf.sprintf "offer%d" k;
        moves =
          [
            ("accept", Terminal [| float_of_int (pie - k); float_of_int k |]);
            ("reject", Terminal [| 0.0; 0.0 |]);
          ];
      }
  in
  create ~n_players:2
    (Decision
       {
         player = 0;
         info = "proposer";
         moves = List.init (pie + 1) (fun k -> (Printf.sprintf "offer-%d" k, respond k));
       })

let trust ~multiplier =
  if multiplier < 2 then invalid_arg "Canned.trust: multiplier >= 2";
  let m = float_of_int multiplier in
  create ~n_players:2
    (Decision
       {
         player = 0;
         info = "investor";
         moves =
           [
             ("keep", Terminal [| 1.0; 1.0 |]);
             ( "invest",
               Decision
                 {
                   player = 1;
                   info = "trustee";
                   moves =
                     [
                       ("share", Terminal [| m /. 2.0; (m /. 2.0) +. 1.0 |]);
                       ("grab", Terminal [| 0.0; m +. 1.0 |]);
                     ];
                 } );
           ];
       })

let take_the_money = centipede ~rounds:2
