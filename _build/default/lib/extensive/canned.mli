(** Canned extensive-form games.

    The classic backward-induction showcases the paper's §1 alludes to when
    it calls the always-defect equilibrium of repeated prisoner's dilemma
    "neither normatively nor descriptively reasonable": centipede, the
    ultimatum game and the trust game all have subgame-perfect outcomes that
    people reliably do not play. *)

val centipede : rounds:int -> Extensive.t
(** Alternating Take/Pass over a growing pot. At node [i] (0-based, mover
    alternates starting with player 0) taking splits the pot favourably for
    the mover: [(2 + i, i)] to (mover, other); passing grows the pot. After
    [rounds] passes the game ends at [(rounds + 1, rounds + 1)]. Backward
    induction takes immediately; cooperation would make both far better
    off — the repeated-PD paradox in one tree. Requires [rounds ≥ 1]. *)

val ultimatum : pie:int -> Extensive.t
(** Proposer offers [k ∈ 0..pie] to the responder, who accepts ([(pie − k,
    k)]) or rejects ([(0, 0)]) at a separate information set per offer.
    Subgame perfection offers 0; humans do not. Requires [pie ≥ 1]. *)

val trust : multiplier:int -> Extensive.t
(** Investor keeps 1 (payoffs (1,1)) or invests; the investment grows to
    [multiplier] and the trustee shares ((multiplier/2, multiplier/2 + 1))
    or keeps ((0, multiplier + 1)). Backward induction: keep, so no
    investment. Requires [multiplier ≥ 2]. *)

val take_the_money : Extensive.t
(** The 2-round centipede — small enough for exhaustive tests. *)
