(** Finitely repeated 2×2 games played by automata. *)

type stage = {
  payoffs : float array array array;
      (** [payoffs.(a1).(a2)] = payoff vector (player 1, player 2). *)
  action_names : string array;
}

val pd_paper : stage
(** The paper's §3 prisoner's dilemma table: (3,3) / (−5,5) / (5,−5) /
    (−3,−3). *)

val pd_classic : stage
(** Axelrod payoffs: R=3, S=0, T=5, P=1. *)

type play = {
  actions : (int * int) list;  (** Round-by-round action pairs. *)
  total : float * float;  (** Discounted totals (δ^1 r_1 + … + δ^N r_N). *)
}

val play :
  ?delta:float -> stage -> rounds:int -> Automaton.t -> Automaton.t -> play
(** Deterministic play of two automata. [delta] defaults to 1 (no
    discounting). Discounting follows the paper: round m is weighted
    δ^m. *)

val noisy_play :
  Bn_util.Prng.t -> noise:float -> ?delta:float -> stage -> rounds:int ->
  Automaton.t -> Automaton.t -> play
(** Like {!play}, but each realized action is flipped independently with
    probability [noise] (trembles). Both automata observe and react to the
    {e noisy} actions — the setting where unforgiving strategies like Grim
    collapse and reciprocators suffer echo feuds. *)

val discounted_payoffs :
  ?delta:float -> stage -> rounds:int -> Automaton.t -> Automaton.t -> float * float

val cooperation_rate : play -> float
(** Fraction of (player, round) choices that were action 0. *)
