(** Finite automata playing repeated 2-action games (Rubinstein 1986,
    paper §3).

    A machine is a Moore automaton: each state outputs an action
    (0 = cooperate, 1 = defect for prisoner's dilemma) and transitions on
    the {e opponent's} action. The number of states is the machine's
    complexity — the measure Rubinstein charges for and that Example 3.2
    charges as memory cost. *)

type t = {
  name : string;
  start : int;
  output : int array;  (** [output.(s)] = action in state [s]. *)
  next : int array array;  (** [next.(s).(opp_action)] = successor. *)
}

val size : t -> int
(** Number of states — the complexity. *)

val validate : t -> unit
(** @raise Invalid_argument on out-of-range outputs/transitions. *)

val step : t -> state:int -> opp:int -> int
(** Successor state. *)

val action : t -> state:int -> int

(** {1 The classic zoo} *)

val all_c : t
val all_d : t
val tit_for_tat : t

val grim : t
(** Cooperate until the opponent defects once; then defect forever. *)

val pavlov : t
(** Win-stay lose-shift. *)

val alternator : t

val tft_defect_last : horizon:int -> t
(** Tit-for-tat that defects in round [horizon]: the best response to
    tit-for-tat in finitely repeated prisoner's dilemma. It must count
    rounds, so it needs ~2·[horizon] states — the memory the Example 3.2
    equilibrium argument charges for. *)

val defect_from : round:int -> horizon:int -> t
(** Cooperates as tit-for-tat until [round], then defects forever (a
    family of backward-induction deviations). *)
