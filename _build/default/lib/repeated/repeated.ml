type stage = {
  payoffs : float array array array;
  action_names : string array;
}

let pd_paper =
  {
    payoffs =
      [|
        [| [| 3.0; 3.0 |]; [| -5.0; 5.0 |] |];
        [| [| 5.0; -5.0 |]; [| -3.0; -3.0 |] |];
      |];
    action_names = [| "C"; "D" |];
  }

let pd_classic =
  {
    payoffs =
      [|
        [| [| 3.0; 3.0 |]; [| 0.0; 5.0 |] |];
        [| [| 5.0; 0.0 |]; [| 1.0; 1.0 |] |];
      |];
    action_names = [| "C"; "D" |];
  }

type play = {
  actions : (int * int) list;
  total : float * float;
}

(* Shared engine: [tremble] flips each realized action with the given
   probability; both automata observe (and react to) the noisy actions. *)
let play_core ~delta ~tremble stage ~rounds m1 m2 =
  Automaton.validate m1;
  Automaton.validate m2;
  let flip a =
    match tremble with
    | Some (rng, noise) when Bn_util.Prng.float rng < noise -> 1 - a
    | Some _ | None -> a
  in
  let actions = ref [] in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  let s1 = ref m1.Automaton.start and s2 = ref m2.Automaton.start in
  let weight = ref delta in
  for _ = 1 to rounds do
    let a1 = flip (Automaton.action m1 ~state:!s1) in
    let a2 = flip (Automaton.action m2 ~state:!s2) in
    actions := (a1, a2) :: !actions;
    let p = stage.payoffs.(a1).(a2) in
    t1 := !t1 +. (!weight *. p.(0));
    t2 := !t2 +. (!weight *. p.(1));
    let next1 = Automaton.step m1 ~state:!s1 ~opp:a2 in
    let next2 = Automaton.step m2 ~state:!s2 ~opp:a1 in
    s1 := next1;
    s2 := next2;
    weight := !weight *. delta
  done;
  { actions = List.rev !actions; total = (!t1, !t2) }

let play ?(delta = 1.0) stage ~rounds m1 m2 =
  play_core ~delta ~tremble:None stage ~rounds m1 m2

let noisy_play rng ~noise ?(delta = 1.0) stage ~rounds m1 m2 =
  if noise < 0.0 || noise > 1.0 then invalid_arg "Repeated.noisy_play: noise in [0,1]";
  play_core ~delta ~tremble:(Some (rng, noise)) stage ~rounds m1 m2

let discounted_payoffs ?delta stage ~rounds m1 m2 = (play ?delta stage ~rounds m1 m2).total

let cooperation_rate p =
  match p.actions with
  | [] -> 0.0
  | acts ->
    let coop =
      List.fold_left
        (fun acc (a1, a2) -> acc + (if a1 = 0 then 1 else 0) + if a2 = 0 then 1 else 0)
        0 acts
    in
    float_of_int coop /. float_of_int (2 * List.length acts)
