(** Finitely repeated prisoner's dilemma with memory costs (Example 3.2).

    Players choose automata; utility = discounted repeated-game payoff −
    [memory_cost] × (number of states). The paper's claim: for any positive
    memory cost, a sufficiently long game makes (TfT, TfT) a Nash
    equilibrium of the machine game, because the only improving deviation —
    tit-for-tat that defects in the last round — must count rounds, and the
    extra states cost more than the discounted $2 gain. *)

type spec = {
  stage : Repeated.stage;
  horizon : int;  (** N, number of rounds. *)
  delta : float;  (** Discount factor (paper: 0.5 < δ < 1). *)
  memory_cost : float;  (** Cost per automaton state. *)
}

val default_space : horizon:int -> Automaton.t list
(** AllC, AllD, Grim, TfT, Pavlov, Alternator, TfT-defect-last(horizon) and
    the Defect-from(r) family — a machine space rich enough to contain the
    backward-induction deviations. *)

val paper_space : horizon:int -> Automaton.t list
(** The space implicit in the paper's Example 3.2 argument: TfT, AllD and
    the round-counting defection machines. In the {e full} default space,
    (TfT, TfT) is never an exact equilibrium under per-state charges,
    because AllC (one state) achieves the same play against TfT with one
    state fewer — an artifact the paper's argument elides; see DESIGN.md.
    Within [paper_space] the paper's claim is exact, and it is what
    experiment E7 reproduces. *)

val utility : spec -> Automaton.t -> Automaton.t -> float
(** Player 1's machine-game utility. *)

val to_game : ?space:Automaton.t list -> spec -> Bn_game.Normal_form.t * Automaton.t array
(** Symmetric machine game over the space (payoffs = machine-game
    utilities). *)

val is_equilibrium : ?space:Automaton.t list -> spec -> Automaton.t -> bool
(** Is (m, m) a Nash equilibrium of the machine game over the space? *)

val best_response :
  ?space:Automaton.t list -> spec -> Automaton.t -> Automaton.t * float
(** Best machine in the space against a fixed opponent machine, with its
    utility. *)

val tft_threshold_cost : spec -> float
(** The closed-form bound from the paper's argument: (TfT, TfT) is an
    equilibrium (against the counting deviation) iff
    [memory_cost × (states(TfT-defect-last) − states(TfT)) ≥ 2·δ^N];
    returns the right-hand side divided by the state difference, i.e. the
    minimal memory cost. *)

val min_horizon_for_equilibrium :
  ?max_n:int -> memory_cost:float -> delta:float -> unit -> int option
(** Smallest horizon at which (TfT, TfT) becomes an equilibrium of the
    default space under the paper's PD payoffs. *)
