lib/repeated/automaton.ml: Array Printf
