lib/repeated/frpd.ml: Array Automaton Bn_game List Repeated
