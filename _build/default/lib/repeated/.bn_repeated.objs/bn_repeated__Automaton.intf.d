lib/repeated/automaton.mli:
