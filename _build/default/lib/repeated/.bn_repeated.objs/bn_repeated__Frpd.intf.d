lib/repeated/frpd.mli: Automaton Bn_game Repeated
