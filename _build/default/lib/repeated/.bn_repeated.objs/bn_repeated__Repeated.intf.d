lib/repeated/repeated.mli: Automaton Bn_util
