lib/repeated/repeated.ml: Array Automaton Bn_util List
