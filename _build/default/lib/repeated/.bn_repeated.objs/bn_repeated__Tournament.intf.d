lib/repeated/tournament.mli: Automaton Bn_util Repeated
