lib/repeated/tournament.ml: Array Automaton Bn_util List Repeated
