type spec = {
  stage : Repeated.stage;
  horizon : int;
  delta : float;
  memory_cost : float;
}

let default_space ~horizon =
  let family =
    if horizon <= 2 then []
    else
      List.filter_map
        (fun r -> if r >= 2 && r < horizon then Some (Automaton.defect_from ~round:r ~horizon) else None)
        [ 2; (horizon + 1) / 2; horizon - 1 ]
  in
  [
    Automaton.all_c;
    Automaton.all_d;
    Automaton.grim;
    Automaton.tit_for_tat;
    Automaton.pavlov;
    Automaton.alternator;
    Automaton.tft_defect_last ~horizon;
  ]
  @ family

let paper_space ~horizon =
  [
    Automaton.tit_for_tat;
    Automaton.all_d;
    Automaton.tft_defect_last ~horizon;
  ]
  @
  if horizon <= 2 then []
  else
    List.filter_map
      (fun r ->
        if r >= 2 && r < horizon then Some (Automaton.defect_from ~round:r ~horizon) else None)
      [ 2; (horizon + 1) / 2; horizon - 1 ]

let utility spec m1 m2 =
  let p1, _ = Repeated.discounted_payoffs ~delta:spec.delta spec.stage ~rounds:spec.horizon m1 m2 in
  p1 -. (spec.memory_cost *. float_of_int (Automaton.size m1))

let to_game ?space spec =
  let space = Array.of_list (match space with Some s -> s | None -> default_space ~horizon:spec.horizon) in
  let m = Array.length space in
  let names = Array.map (fun a -> a.Automaton.name) space in
  let game =
    Bn_game.Normal_form.create
      ~action_names:[| names; names |]
      ~actions:[| m; m |]
      (fun p ->
        let m1 = space.(p.(0)) and m2 = space.(p.(1)) in
        [| utility spec m1 m2; utility spec m2 m1 |])
  in
  (game, space)

let index_of space m =
  let rec go i = if i >= Array.length space then None else if space.(i).Automaton.name = m.Automaton.name then Some i else go (i + 1) in
  go 0

let is_equilibrium ?space spec m =
  let game, arr = to_game ?space spec in
  match index_of arr m with
  | None -> invalid_arg "Frpd.is_equilibrium: machine not in space"
  | Some idx -> Bn_game.Nash.is_pure_nash game [| idx; idx |]

let best_response ?space spec opponent =
  let space = match space with Some s -> s | None -> default_space ~horizon:spec.horizon in
  let best = ref None in
  List.iter
    (fun candidate ->
      let u = utility spec candidate opponent in
      match !best with
      | None -> best := Some (candidate, u)
      | Some (_, ub) -> if u > ub then best := Some (candidate, u))
    space;
  match !best with
  | Some r -> r
  | None -> invalid_arg "Frpd.best_response: empty space"

let tft_threshold_cost spec =
  let counting = Automaton.tft_defect_last ~horizon:spec.horizon in
  let extra_states = Automaton.size counting - Automaton.size Automaton.tit_for_tat in
  let gain = 2.0 *. (spec.delta ** float_of_int spec.horizon) in
  gain /. float_of_int extra_states

let min_horizon_for_equilibrium ?(max_n = 60) ~memory_cost ~delta () =
  let rec go n =
    if n > max_n then None
    else begin
      let spec = { stage = Repeated.pd_paper; horizon = n; delta; memory_cost } in
      if is_equilibrium ~space:(paper_space ~horizon:n) spec Automaton.tit_for_tat then Some n
      else go (n + 1)
    end
  in
  go 2
