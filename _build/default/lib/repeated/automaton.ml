type t = {
  name : string;
  start : int;
  output : int array;
  next : int array array;
}

let size m = Array.length m.output

let validate m =
  let n = size m in
  if n = 0 then invalid_arg "Automaton: no states";
  if m.start < 0 || m.start >= n then invalid_arg "Automaton: bad start state";
  Array.iter (fun a -> if a <> 0 && a <> 1 then invalid_arg "Automaton: bad output") m.output;
  if Array.length m.next <> n then invalid_arg "Automaton: transition arity";
  Array.iter
    (fun row ->
      if Array.length row <> 2 then invalid_arg "Automaton: need transitions for both opponent actions";
      Array.iter (fun s -> if s < 0 || s >= n then invalid_arg "Automaton: bad transition") row)
    m.next

let step m ~state ~opp = m.next.(state).(opp)
let action m ~state = m.output.(state)

let all_c = { name = "AllC"; start = 0; output = [| 0 |]; next = [| [| 0; 0 |] |] }
let all_d = { name = "AllD"; start = 0; output = [| 1 |]; next = [| [| 0; 0 |] |] }

(* State = opponent's last action. *)
let tit_for_tat =
  { name = "TfT"; start = 0; output = [| 0; 1 |]; next = [| [| 0; 1 |]; [| 0; 1 |] |] }

let grim =
  { name = "Grim"; start = 0; output = [| 0; 1 |]; next = [| [| 0; 1 |]; [| 1; 1 |] |] }

(* Pavlov: repeat own action after a good outcome (opponent cooperated),
   switch after a bad one. State = own current action. *)
let pavlov =
  { name = "Pavlov"; start = 0; output = [| 0; 1 |]; next = [| [| 0; 1 |]; [| 1; 0 |] |] }

let alternator =
  { name = "Alternator"; start = 0; output = [| 0; 1 |]; next = [| [| 1; 1 |]; [| 0; 0 |] |] }

(* States are pairs (round index r in 0..horizon-1, opponent's last action),
   encoded r*2 + last. In the final round the machine defects regardless. *)
let tft_defect_last ~horizon =
  if horizon < 2 then invalid_arg "Automaton.tft_defect_last: horizon >= 2";
  let states = 2 * horizon in
  let output =
    Array.init states (fun s ->
        let r = s / 2 and last = s mod 2 in
        if r >= horizon - 1 then 1 else if r = 0 then 0 else last)
  in
  let next =
    Array.init states (fun s ->
        let r = s / 2 in
        let r' = min (horizon - 1) (r + 1) in
        [| (r' * 2) + 0; (r' * 2) + 1 |])
  in
  { name = Printf.sprintf "TfT-last-defect(%d)" horizon; start = 0; output; next }

let defect_from ~round ~horizon =
  if round < 1 || round > horizon then invalid_arg "Automaton.defect_from: bad round";
  let states = 2 * horizon in
  let output =
    Array.init states (fun s ->
        let r = s / 2 and last = s mod 2 in
        if r >= round - 1 then 1 else if r = 0 then 0 else last)
  in
  let next =
    Array.init states (fun s ->
        let r = s / 2 in
        let r' = min (horizon - 1) (r + 1) in
        [| (r' * 2) + 0; (r' * 2) + 1 |])
  in
  { name = Printf.sprintf "Defect-from(%d/%d)" round horizon; start = 0; output; next }
