type entry = {
  automaton : Automaton.t;
  score : float;
  cooperation : float;
}

let default_field =
  [
    Automaton.all_c;
    Automaton.all_d;
    Automaton.grim;
    Automaton.tit_for_tat;
    Automaton.pavlov;
    Automaton.alternator;
  ]

let round_robin ?(delta = 1.0) ?(include_self_play = true) ?noise ~stage ~rounds field =
  let arr = Array.of_list field in
  let n = Array.length arr in
  let scores = Array.make n 0.0 in
  let coop = Array.make n [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i < j || (i = j && include_self_play) then begin
        let result =
          match noise with
          | None -> Repeated.play ~delta stage ~rounds arr.(i) arr.(j)
          | Some (rng, p) -> Repeated.noisy_play rng ~noise:p ~delta stage ~rounds arr.(i) arr.(j)
        in
        let p1, p2 = result.Repeated.total in
        scores.(i) <- scores.(i) +. p1;
        scores.(j) <- scores.(j) +. p2;
        let rate = Repeated.cooperation_rate result in
        coop.(i) <- rate :: coop.(i);
        coop.(j) <- rate :: coop.(j)
      end
    done
  done;
  let entries =
    List.init n (fun i ->
        { automaton = arr.(i); score = scores.(i); cooperation = Bn_util.Stats.mean coop.(i) })
  in
  List.sort (fun a b -> compare b.score a.score) entries

let winner = function
  | [] -> invalid_arg "Tournament.winner: empty tournament"
  | e :: _ -> e.automaton
