(** Axelrod-style round-robin tournaments (paper §3: "tit-for-tat does
    exceedingly well in FRPD tournaments"). *)

type entry = {
  automaton : Automaton.t;
  score : float;  (** Total (undiscounted by default) payoff. *)
  cooperation : float;  (** Average cooperation rate across matches. *)
}

val round_robin :
  ?delta:float -> ?include_self_play:bool -> ?noise:(Bn_util.Prng.t * float) ->
  stage:Repeated.stage -> rounds:int ->
  Automaton.t list -> entry list
(** Every pair (and optionally self-play) meets once per side; entries are
    returned sorted by descending score. With [noise], every realized
    action trembles with the given probability ({!Repeated.noisy_play}) —
    Axelrod's noisy-rematch setting, where unforgiving strategies fall in
    the ranking. *)

val default_field : Automaton.t list
(** The classic field: AllC, AllD, Grim, TfT, Pavlov, Alternator. *)

val winner : entry list -> Automaton.t
(** @raise Invalid_argument on an empty tournament. *)
