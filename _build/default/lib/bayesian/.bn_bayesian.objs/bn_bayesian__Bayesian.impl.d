lib/bayesian/bayesian.ml: Array Bn_game Bn_util Fun Hashtbl List Printf
