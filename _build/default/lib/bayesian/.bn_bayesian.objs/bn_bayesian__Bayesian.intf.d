lib/bayesian/bayesian.mli: Bn_game Bn_util
