module Dist = Bn_util.Dist

type t = {
  n : int;
  num_types : int array;
  actions : int array;
  player_names : string array;
  type_names : string array array;
  action_names : string array array;
  prior : int array Dist.t;
  u : types:int array -> acts:int array -> float array;
}

let create ?player_names ?type_names ?action_names ~num_types ~actions ~prior u =
  let n = Array.length num_types in
  if n = 0 then invalid_arg "Bayesian.create: no players";
  if Array.length actions <> n then invalid_arg "Bayesian.create: actions arity";
  Array.iter (fun k -> if k <= 0 then invalid_arg "Bayesian.create: empty type set") num_types;
  Array.iter (fun k -> if k <= 0 then invalid_arg "Bayesian.create: empty action set") actions;
  List.iter
    (fun tp ->
      if Array.length tp <> n then invalid_arg "Bayesian.create: prior profile arity";
      Array.iteri
        (fun i ty ->
          if ty < 0 || ty >= num_types.(i) then
            invalid_arg "Bayesian.create: prior type out of range")
        tp)
    (Dist.support prior);
  let player_names =
    match player_names with
    | Some names -> names
    | None -> Array.init n (fun i -> Printf.sprintf "P%d" (i + 1))
  in
  let type_names =
    match type_names with
    | Some names -> names
    | None -> Array.init n (fun i -> Array.init num_types.(i) string_of_int)
  in
  let action_names =
    match action_names with
    | Some names -> names
    | None -> Array.init n (fun i -> Array.init actions.(i) string_of_int)
  in
  { n; num_types; actions; player_names; type_names; action_names; prior; u }

let n_players t = t.n
let num_types t i = t.num_types.(i)
let num_actions t i = t.actions.(i)
let prior t = t.prior
let utility t ~types ~acts = t.u ~types ~acts

type pure_strategy = int array
type behavioral = float array array

let pure_to_behavioral t ~player s =
  Array.map (fun a -> Bn_game.Mixed.pure ~num_actions:t.actions.(player) a) s

let pure_strategies t ~player =
  let dims = Array.make t.num_types.(player) t.actions.(player) in
  Bn_util.Combin.profiles dims

(* Distribution over action profiles given a type profile. *)
let action_dist t profile types =
  let per_player =
    List.init t.n (fun i ->
        Dist.of_list (Array.to_list (Array.mapi (fun a p -> (a, p)) profile.(i).(types.(i)))))
  in
  Dist.map Array.of_list (Dist.product_list per_player)

let ex_ante_utility t profile =
  let total = Array.make t.n 0.0 in
  List.iter
    (fun (types, p_ty) ->
      List.iter
        (fun (acts, p_a) ->
          let u = t.u ~types ~acts in
          for i = 0 to t.n - 1 do
            total.(i) <- total.(i) +. (p_ty *. p_a *. u.(i))
          done)
        (Dist.to_list (action_dist t profile types)))
    (Dist.to_list t.prior);
  total

let interim_utility t profile ~player ~ptype =
  match Dist.filter (fun types -> types.(player) = ptype) t.prior with
  | None -> invalid_arg "Bayesian.interim_utility: zero-probability type"
  | Some conditional ->
    Dist.expect
      (fun types ->
        Dist.expect (fun acts -> (t.u ~types ~acts).(player)) (action_dist t profile types))
      conditional

let outcome_dist t profile =
  Dist.bind t.prior (fun types ->
      Dist.map (fun acts -> (types, acts)) (action_dist t profile types))

let positive_types t ~player =
  List.sort_uniq compare (List.map (fun tp -> tp.(player)) (Dist.support t.prior))

let is_bayes_nash ?(eps = 1e-9) t profile =
  let ok = ref true in
  for i = 0 to t.n - 1 do
    List.iter
      (fun ptype ->
        let current = interim_utility t profile ~player:i ~ptype in
        for a = 0 to t.actions.(i) - 1 do
          let deviated = Array.copy profile in
          let strat = Array.map Array.copy profile.(i) in
          strat.(ptype) <- Bn_game.Mixed.pure ~num_actions:t.actions.(i) a;
          deviated.(i) <- strat;
          if interim_utility t deviated ~player:i ~ptype > current +. eps then ok := false
        done)
      (positive_types t ~player:i)
  done;
  !ok

let pure_bayes_nash ?eps t =
  let all = Array.init t.n (fun i -> pure_strategies t ~player:i) in
  let rec combos i =
    if i = t.n then [ [] ]
    else
      let rest = combos (i + 1) in
      List.concat_map (fun s -> List.map (fun tail -> s :: tail) rest) all.(i)
  in
  List.filter_map
    (fun combo ->
      let arr = Array.of_list combo in
      let behavioral = Array.mapi (fun i s -> pure_to_behavioral t ~player:i s) arr in
      if is_bayes_nash ?eps t behavioral then Some arr else None)
    (combos 0)

let agent_form t =
  let agents =
    Array.of_list
      (List.concat_map
         (fun i -> List.map (fun ty -> (i, ty)) (positive_types t ~player:i))
         (List.init t.n Fun.id))
  in
  
  let acts = Array.map (fun (i, _) -> t.actions.(i)) agents in
  let agent_index = Hashtbl.create 16 in
  Array.iteri (fun idx key -> Hashtbl.replace agent_index key idx) agents;
  let game =
    Bn_game.Normal_form.create
      ~player_names:(Array.map (fun (i, ty) -> Printf.sprintf "%s:%s" t.player_names.(i) t.type_names.(i).(ty)) agents)
      ~actions:acts
      (fun p ->
        (* Each agent's payoff: interim utility of its (player, type) when
           all agents play their assigned pure action. *)
        Array.mapi
          (fun _idx (i, ty) ->
            match Dist.filter (fun types -> types.(i) = ty) t.prior with
            | None -> 0.0
            | Some conditional ->
              Dist.expect
                (fun types ->
                  let acts_arr =
                    Array.init t.n (fun j ->
                        match Hashtbl.find_opt agent_index (j, types.(j)) with
                        | Some aj -> p.(aj)
                        | None -> 0)
                  in
                  (t.u ~types ~acts:acts_arr).(i))
                conditional
          )
          agents)
  in
  (game, agents)
