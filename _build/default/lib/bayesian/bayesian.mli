(** Normal-form Bayesian games (paper §2).

    Each player has a finite type set with a commonly-known joint prior and
    chooses an action as a function of its type; utilities depend on the
    type profile and the action profile. This is the underlying-game format
    of the mediator characterization: in Byzantine agreement, the general's
    type is its initial preference. *)

type t

val create :
  ?player_names:string array ->
  ?type_names:string array array ->
  ?action_names:string array array ->
  num_types:int array ->
  actions:int array ->
  prior:int array Bn_util.Dist.t ->
  (types:int array -> acts:int array -> float array) ->
  t
(** [create ~num_types ~actions ~prior u]. The prior is over type profiles
    (arrays of length n with [0 ≤ tp.(i) < num_types.(i)]); [u] gives the
    payoff vector per (type profile, action profile).
    @raise Invalid_argument on arity errors or a prior whose support
    contains an out-of-range type profile. *)

val n_players : t -> int
val num_types : t -> int -> int
val num_actions : t -> int -> int
val prior : t -> int array Bn_util.Dist.t
val utility : t -> types:int array -> acts:int array -> float array

(** {1 Strategies} *)

type pure_strategy = int array
(** Action per type: [s.(theta)] is the action played with type [theta]. *)

type behavioral = float array array
(** Mixed action per type: [b.(theta)] is a distribution over actions. *)

val pure_to_behavioral : t -> player:int -> pure_strategy -> behavioral

val pure_strategies : t -> player:int -> pure_strategy list
(** All type-contingent pure strategies of a player. *)

val ex_ante_utility : t -> behavioral array -> float array
(** Expected payoffs before types are drawn. *)

val interim_utility : t -> behavioral array -> player:int -> ptype:int -> float
(** Expected payoff of [player] given its realized type, under the prior's
    conditional over other types.
    @raise Invalid_argument if the type has prior probability 0. *)

val outcome_dist :
  t -> behavioral array -> (int array * int array) Bn_util.Dist.t
(** Joint distribution over (type profile, action profile) — the object
    that cheap talk must reproduce to "implement" a mediator. *)

val is_bayes_nash : ?eps:float -> t -> behavioral array -> bool
(** Interim Bayes–Nash check: no player has a type (of positive prior
    probability) at which some action improves its conditional payoff. *)

val pure_bayes_nash : ?eps:float -> t -> pure_strategy array list
(** All pure Bayes–Nash equilibria by exhaustive enumeration. *)

val agent_form : t -> Bn_game.Normal_form.t * (int * int) array
(** The agent-form normal game: one agent per (player, type) pair with
    positive marginal probability, paid its interim utility. Returns the
    game and the (player, type) of each agent. A profile is Bayes–Nash in
    [t] iff the corresponding agent-form profile is Nash. *)
