lib/p2p/gnutella.mli: Bn_game Bn_util
