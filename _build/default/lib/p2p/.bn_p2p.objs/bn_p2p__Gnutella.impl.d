lib/p2p/gnutella.ml: Array Bn_game Bn_util Float Fun List
