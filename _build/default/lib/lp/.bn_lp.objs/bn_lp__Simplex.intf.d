lib/lp/simplex.mli:
