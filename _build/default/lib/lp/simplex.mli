(** Dense two-phase simplex solver.

    Solves {e maximize} [c·x] subject to linear constraints and [x ≥ 0].
    This is the substrate for zero-sum game values, maxmin/minmax levels and
    punishment-strategy computation in the robustness and mediator
    libraries. Sizes here are tiny (tens of variables), so a dense tableau
    with Bland's anti-cycling rule is appropriate. *)

type relation = Le | Ge | Eq
(** Direction of a constraint row. *)

type constraint_row = {
  coeffs : float array;  (** One coefficient per structural variable. *)
  relation : relation;
  rhs : float;
}

type problem = {
  objective : float array;  (** Maximized. One entry per variable. *)
  constraints : constraint_row list;
}

type outcome =
  | Optimal of { solution : float array; value : float }
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Two-phase simplex. All structural variables are implicitly ≥ 0; encode a
    free variable as the difference of two non-negative ones. *)

val maximize : float array -> constraint_row list -> outcome
(** [maximize c rows] is [solve { objective = c; constraints = rows }]. *)

val le : float array -> float -> constraint_row
val ge : float array -> float -> constraint_row
val eq : float array -> float -> constraint_row
(** Row constructors. *)
