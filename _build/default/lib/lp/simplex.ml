type relation = Le | Ge | Eq

type constraint_row = { coeffs : float array; relation : relation; rhs : float }

type problem = { objective : float array; constraints : constraint_row list }

type outcome =
  | Optimal of { solution : float array; value : float }
  | Infeasible
  | Unbounded

let le coeffs rhs = { coeffs; relation = Le; rhs }
let ge coeffs rhs = { coeffs; relation = Ge; rhs }
let eq coeffs rhs = { coeffs; relation = Eq; rhs }

let eps = 1e-9

(* Tableau layout: columns are [structural | slack/surplus | artificial | rhs].
   [basis.(r)] is the column currently basic in row [r]. Two objective rows
   are carried: phase-1 (sum of artificials) and phase-2 (the real one). *)
type tableau = {
  m : float array array; (* rows x (ncols + 1); last column is rhs *)
  basis : int array;
  nvars : int; (* structural *)
  ncols : int; (* total columns excluding rhs *)
  obj : float array; (* phase-2 objective over all columns, maximization *)
}

let build { objective; constraints } =
  let nvars = Array.length objective in
  let rows = List.length constraints in
  (* Normalize rhs to be >= 0 by flipping rows. *)
  let normalized =
    List.map
      (fun { coeffs; relation; rhs } ->
        if Array.length coeffs <> nvars then invalid_arg "Simplex: coefficient arity";
        if rhs < 0.0 then
          ( Array.map (fun c -> -.c) coeffs,
            (match relation with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (Array.copy coeffs, relation, rhs))
      constraints
  in
  let n_slack = List.length (List.filter (fun (_, r, _) -> r <> Eq) normalized) in
  let n_art =
    List.length (List.filter (fun (_, r, _) -> r = Ge || r = Eq) normalized)
  in
  let ncols = nvars + n_slack + n_art in
  let m = Array.make_matrix rows (ncols + 1) 0.0 in
  let basis = Array.make rows (-1) in
  let slack_idx = ref nvars in
  let art_idx = ref (nvars + n_slack) in
  List.iteri
    (fun r (coeffs, relation, rhs) ->
      Array.blit coeffs 0 m.(r) 0 nvars;
      m.(r).(ncols) <- rhs;
      (match relation with
      | Le ->
        m.(r).(!slack_idx) <- 1.0;
        basis.(r) <- !slack_idx;
        incr slack_idx
      | Ge ->
        m.(r).(!slack_idx) <- -1.0;
        incr slack_idx;
        m.(r).(!art_idx) <- 1.0;
        basis.(r) <- !art_idx;
        incr art_idx
      | Eq ->
        m.(r).(!art_idx) <- 1.0;
        basis.(r) <- !art_idx;
        incr art_idx))
    normalized;
  let obj = Array.make ncols 0.0 in
  Array.blit objective 0 obj 0 nvars;
  ({ m; basis; nvars; ncols; obj }, nvars + n_slack)

(* Reduced costs for maximizing [c] given the current basis. *)
let reduced_costs t c =
  let rows = Array.length t.m in
  let lambda = Array.make rows 0.0 in
  for r = 0 to rows - 1 do
    lambda.(r) <- c.(t.basis.(r))
  done;
  Array.init t.ncols (fun j ->
      let zj = ref 0.0 in
      for r = 0 to rows - 1 do
        zj := !zj +. (lambda.(r) *. t.m.(r).(j))
      done;
      c.(j) -. !zj)

let objective_value t c =
  let acc = ref 0.0 in
  Array.iteri (fun r bj -> acc := !acc +. (c.(bj) *. t.m.(r).(t.ncols))) t.basis;
  !acc

let pivot t ~row ~col =
  let rows = Array.length t.m in
  let p = t.m.(row).(col) in
  for j = 0 to t.ncols do
    t.m.(row).(j) <- t.m.(row).(j) /. p
  done;
  for r = 0 to rows - 1 do
    if r <> row && Float.abs t.m.(r).(col) > 0.0 then begin
      let f = t.m.(r).(col) in
      for j = 0 to t.ncols do
        t.m.(r).(j) <- t.m.(r).(j) -. (f *. t.m.(row).(j))
      done
    end
  done;
  t.basis.(row) <- col

(* One simplex run maximizing [c] over columns [0, limit). Bland's rule. *)
let run t c ~limit =
  let rows = Array.length t.m in
  let rec step () =
    let rc = reduced_costs t c in
    let entering = ref (-1) in
    (try
       for j = 0 to limit - 1 do
         if rc.(j) > eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to rows - 1 do
        if t.m.(r).(col) > eps then begin
          let ratio = t.m.(r).(t.ncols) /. t.m.(r).(col) in
          if
            ratio < !best_ratio -. eps
            || (Float.abs (ratio -. !best_ratio) <= eps
               && (!best_row < 0 || t.basis.(r) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := r
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t ~row:!best_row ~col;
        step ()
      end
    end
  in
  step ()

let solve problem =
  let t, non_artificial = build problem in
  let has_artificials = t.ncols > non_artificial in
  let feasible =
    if not has_artificials then true
    else begin
      (* Phase 1: maximize -(sum of artificials). *)
      let c1 = Array.make t.ncols 0.0 in
      for j = non_artificial to t.ncols - 1 do
        c1.(j) <- -1.0
      done;
      (match run t c1 ~limit:t.ncols with
      | `Unbounded -> () (* cannot happen: phase-1 objective is bounded *)
      | `Optimal -> ());
      let v1 = objective_value t c1 in
      if v1 < -.eps then false
      else begin
        (* Drive any artificial still basic (at zero) out of the basis. *)
        Array.iteri
          (fun r bj ->
            if bj >= non_artificial then begin
              let found = ref (-1) in
              for j = 0 to non_artificial - 1 do
                if !found < 0 && Float.abs t.m.(r).(j) > eps then found := j
              done;
              if !found >= 0 then pivot t ~row:r ~col:!found
            end)
          t.basis;
        true
      end
    end
  in
  if not feasible then Infeasible
  else begin
    (* Phase 2: entering variables restricted to non-artificial columns;
       any artificial left basic sits at value 0 in a redundant row. *)
    let c2 = Array.make t.ncols 0.0 in
    Array.blit t.obj 0 c2 0 (Array.length t.obj);
    for j = non_artificial to t.ncols - 1 do
      c2.(j) <- 0.0
    done;
    match run t c2 ~limit:non_artificial with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let x = Array.make t.nvars 0.0 in
      Array.iteri
        (fun r bj -> if bj < t.nvars then x.(bj) <- t.m.(r).(t.ncols))
        t.basis;
      Optimal { solution = x; value = objective_value t t.obj }
  end

let maximize objective constraints = solve { objective; constraints }
