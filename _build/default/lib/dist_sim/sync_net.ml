type dest = To of int | All

type ('s, 'm, 'o) protocol = {
  init : int -> 's;
  send : round:int -> me:int -> 's -> (dest * 'm) list;
  recv : round:int -> me:int -> 's -> (int * 'm) list -> 's;
  output : me:int -> 's -> 'o option;
}

type 'm adversary = {
  corrupted : int list;
  behave : round:int -> me:int -> inbox:(int * 'm) list -> (dest * 'm) list;
}

let silent corrupted = { corrupted; behave = (fun ~round:_ ~me:_ ~inbox:_ -> []) }

type 'o result = {
  outputs : 'o option array;
  rounds_run : int;
  messages_sent : int;
}

let run ?adversary ~n ~rounds protocol =
  if n <= 0 then invalid_arg "Sync_net.run: need processes";
  let corrupted =
    match adversary with None -> [||] | Some a -> Array.of_list a.corrupted
  in
  let is_corrupt i = Array.exists (( = ) i) corrupted in
  let states = Array.init n protocol.init in
  let inboxes = Array.make n [] in
  let messages = ref 0 in
  for round = 1 to rounds do
    let outgoing = Array.make n [] in
    for me = 0 to n - 1 do
      let traffic =
        if is_corrupt me then
          match adversary with
          | Some a -> a.behave ~round ~me ~inbox:inboxes.(me)
          | None -> []
        else protocol.send ~round ~me states.(me)
      in
      outgoing.(me) <- traffic
    done;
    let next_inboxes = Array.make n [] in
    for sender = 0 to n - 1 do
      List.iter
        (fun (dest, msg) ->
          match dest with
          | To j ->
            if j < 0 || j >= n then invalid_arg "Sync_net.run: destination out of range";
            incr messages;
            next_inboxes.(j) <- (sender, msg) :: next_inboxes.(j)
          | All ->
            messages := !messages + n;
            for j = 0 to n - 1 do
              next_inboxes.(j) <- (sender, msg) :: next_inboxes.(j)
            done)
        outgoing.(sender)
    done;
    for me = 0 to n - 1 do
      let inbox = List.sort (fun (a, _) (b, _) -> compare a b) next_inboxes.(me) in
      inboxes.(me) <- inbox;
      if not (is_corrupt me) then states.(me) <- protocol.recv ~round ~me states.(me) inbox
    done
  done;
  let outputs =
    Array.init n (fun me ->
        if is_corrupt me then None else protocol.output ~me states.(me))
  in
  { outputs; rounds_run = rounds; messages_sent = !messages }
