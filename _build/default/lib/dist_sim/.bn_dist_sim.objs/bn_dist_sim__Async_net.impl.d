lib/dist_sim/async_net.ml: Array Bn_util List
