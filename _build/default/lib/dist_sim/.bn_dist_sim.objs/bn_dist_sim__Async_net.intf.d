lib/dist_sim/async_net.mli: Bn_util
