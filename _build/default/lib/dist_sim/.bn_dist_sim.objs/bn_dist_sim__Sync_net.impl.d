lib/dist_sim/sync_net.ml: Array List
