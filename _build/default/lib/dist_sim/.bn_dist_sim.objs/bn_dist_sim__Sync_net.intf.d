lib/dist_sim/sync_net.mli:
