type concept =
  | Nash
  | Resilient of int
  | Immune of int
  | Robust of int * int

let check ?eps g profile = function
  | Nash -> Bn_game.Nash.is_nash ?eps g profile
  | Resilient k -> Bn_robust.Robust.is_k_resilient ?eps g profile ~k
  | Immune t -> Bn_robust.Robust.is_t_immune ?eps g profile ~t
  | Robust (k, t) -> Bn_robust.Robust.is_robust ?eps g profile ~k ~t

let classify ?max_k ?max_t g profile =
  if not (Bn_game.Nash.is_nash g profile) then `Not_nash
  else begin
    let n = Bn_game.Normal_form.n_players g in
    let max_k = Option.value ~default:n max_k in
    let max_t = Option.value ~default:n max_t in
    let rec best_k k =
      if k >= max_k then k
      else if Bn_robust.Robust.is_k_resilient g profile ~k:(k + 1) then best_k (k + 1)
      else k
    in
    let k = best_k 1 in
    let rec best_t t =
      if t >= max_t then t
      else if Bn_robust.Robust.is_robust g profile ~k ~t:(t + 1) then best_t (t + 1)
      else t
    in
    `Robust (k, best_t 0)
  end

let computational_nash ?eps g ~choice = Bn_machine.Machine_game.is_nash ?eps g ~choice

let generalized_nash ?eps t profile = Bn_awareness.Awareness.is_generalized_nash ?eps t profile

let pp_concept ppf = function
  | Nash -> Format.pp_print_string ppf "Nash"
  | Resilient k -> Format.fprintf ppf "%d-resilient" k
  | Immune t -> Format.fprintf ppf "%d-immune" t
  | Robust (k, t) -> Format.fprintf ppf "(%d,%d)-robust" k t
