lib/core/beyond_nash.ml: Bn_awareness Bn_bayesian Bn_byzantine Bn_crypto Bn_dist_sim Bn_extensive Bn_game Bn_lp Bn_machine Bn_mediator Bn_p2p Bn_repeated Bn_robust Bn_scrip Bn_util Solution
