lib/core/solution.ml: Bn_awareness Bn_game Bn_machine Bn_robust Format Option
