lib/core/solution.mli: Bn_awareness Bn_game Bn_machine Format
