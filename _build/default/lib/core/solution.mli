(** Unified solution-concept checker.

    One entry point per family, each subsuming Nash equilibrium as its
    degenerate case — the library's headline API: Nash is (1,0)-robust,
    classical games are machine games with free computation, and a standard
    extensive game is the canonical game with awareness. *)

type concept =
  | Nash
  | Resilient of int  (** k-resilient. *)
  | Immune of int  (** t-immune. *)
  | Robust of int * int  (** (k,t)-robust. *)

val check :
  ?eps:float -> Bn_game.Normal_form.t -> Bn_game.Mixed.profile -> concept -> bool
(** Checks a mixed profile of a normal-form game against a concept.
    [check g p Nash = check g p (Robust (1, 0))]. *)

val classify :
  ?max_k:int -> ?max_t:int -> Bn_game.Normal_form.t -> Bn_game.Mixed.profile ->
  [ `Not_nash | `Robust of int * int ]
(** The strongest (max-k, then max-t) robustness the profile satisfies,
    scanning k ≤ [max_k] and t ≤ [max_t] (defaults: number of players). *)

val computational_nash :
  ?eps:float -> Bn_machine.Machine_game.t -> choice:int array -> bool
(** Computational Nash equilibrium of a machine game (§3). *)

val generalized_nash :
  ?eps:float -> Bn_awareness.Awareness.t -> Bn_awareness.Awareness.profile -> bool
(** Generalized Nash equilibrium of a game with awareness (§4). *)

val pp_concept : Format.formatter -> concept -> unit
