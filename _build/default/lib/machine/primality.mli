(** The primality-testing game (paper Example 3.1).

    You are given an n-bit number; you may guess whether it is prime (win
    $10 / lose $10) or play safe ($1). The unique classical Nash equilibrium
    answers correctly, but once the {e cost of computing} primality is
    charged, playing safe becomes the computational equilibrium for large
    inputs.

    The decider is deterministic Miller–Rabin (polynomial time — matching
    the paper's remark that primality {e can} be decided efficiently); the
    complexity of a run is its number of modular multiplications. *)

val is_prime : int -> bool
(** Ground truth (Miller–Rabin with a deterministic base set, exact for all
    63-bit inputs). *)

val counted_is_prime : int -> bool * int
(** Result and the number of modular multiplications performed. *)

type spec = {
  bits : int;  (** Input bit-length n. *)
  cost_per_op : float;  (** Dollars per modular multiplication. *)
  samples : int;  (** Inputs sampled to build the (finite) type space. *)
  reward_correct : float;  (** Default 10. *)
  penalty_wrong : float;  (** Default 10. *)
  reward_safe : float;  (** Default 1. *)
}

val default_spec : bits:int -> cost_per_op:float -> spec

val game : Bn_util.Prng.t -> spec -> Machine_game.t
(** One-player machine game over a sampled type space of [bits]-bit odd
    numbers. Machine space: [solve] (Miller–Rabin, complexity counted),
    [safe], [guess-prime], [guess-composite]. *)

val machine_names : string array
(** Names in machine-space order: [|"solve"; "safe"; "guess-prime";
    "guess-composite"|]. *)

val equilibrium_choice : Bn_util.Prng.t -> spec -> int
(** Index of the machine that is the (unique up to ties) computational
    equilibrium of the one-player game — the utility-maximizing machine. *)

val utilities : Bn_util.Prng.t -> spec -> (string * float) list
(** Expected utility of each machine, for tables. *)

val crossover_bits :
  ?lo:int -> ?hi:int -> Bn_util.Prng.t -> cost_per_op:float -> int option
(** Smallest bit length in [lo, hi] at which [safe] overtakes [solve]. *)
