(** Computational roshambo (paper Example 3.3): a machine game with no
    computational Nash equilibrium.

    Machine space per player: the three deterministic machines (complexity
    1) and the uniform randomizer (complexity 2); utility is the zero-sum
    roshambo payoff minus the machine's complexity. Any deterministic pair
    is beaten by a counter-deviation; any randomizing machine is dominated
    by saving the randomization cost — so no pure machine profile is an
    equilibrium, even though classical roshambo has its uniform mixed
    equilibrium. *)

val game : ?extra_randomizers:bool -> unit -> Machine_game.t
(** With [extra_randomizers] (default false) two biased randomizing
    machines are added; nonexistence persists. *)

val has_equilibrium : Machine_game.t -> bool

val certificate : Machine_game.t -> (int array * int * int) list option
(** {!Machine_game.nonexistence_certificate}: for every profile, a player
    and a profitable machine switch. *)

val classical_equilibria : unit -> Bn_game.Mixed.profile list
(** Equilibria of classical (costless) roshambo — the uniform mix — for
    the contrast row in the experiment table. *)
