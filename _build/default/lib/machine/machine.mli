(** Machines: strategies with explicit computational complexity (paper §3).

    Following Halpern–Pass, a player in a computational game chooses a
    {e machine} rather than an action. A machine maps the player's type
    (its input) to a — possibly randomized — action, and carries a
    complexity function of the input. The complexity can encode running
    time, memory, number of automaton states, or a flat charge for using
    randomization (as in computational roshambo, Ex 3.3).

    The paper's Turing-machine formulation is replaced by this finite
    transducer abstraction; see DESIGN.md §3 — every example in the paper
    only inspects the machine's action distribution and its complexity on
    the realized input, both of which are preserved. *)

type t = {
  name : string;
  act : int -> int Bn_util.Dist.t;
      (** Input (the player's type) → distribution over actions; a
          deterministic machine returns point masses. *)
  complexity : int -> float;  (** Input → complexity. *)
  randomized : bool;
      (** Whether [act] ever returns a non-degenerate distribution (so
          complexity rules can charge for randomness). *)
}

val deterministic : string -> ?complexity:(int -> float) -> (int -> int) -> t
(** Deterministic machine; default complexity: constant 1. *)

val randomizing :
  string -> ?complexity:(int -> float) -> (int -> int Bn_util.Dist.t) -> t
(** Randomizing machine; default complexity: constant 2 (the Ex 3.3
    convention: randomization costs one extra unit). *)

val constant : string -> ?complexity:(int -> float) -> int -> t
(** Machine ignoring its input. *)

val pp : Format.formatter -> t -> unit
