type t = {
  name : string;
  act : int -> int Bn_util.Dist.t;
  complexity : int -> float;
  randomized : bool;
}

let deterministic name ?(complexity = fun _ -> 1.0) f =
  { name; act = (fun input -> Bn_util.Dist.return (f input)); complexity; randomized = false }

let randomizing name ?(complexity = fun _ -> 2.0) f =
  { name; act = f; complexity; randomized = true }

let constant name ?complexity a = deterministic name ?complexity (fun _ -> a)

let pp ppf m =
  Format.fprintf ppf "%s%s" m.name (if m.randomized then " (randomized)" else "")
