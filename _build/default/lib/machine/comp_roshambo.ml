module Dist = Bn_util.Dist

let payoff acts =
  let i = acts.(0) and j = acts.(1) in
  let u1 = if i = (j + 1) mod 3 then 1.0 else if j = (i + 1) mod 3 then -1.0 else 0.0 in
  [| u1; -.u1 |]

let machines ~extra_randomizers =
  let det = List.init 3 (fun a -> Machine.constant [| "rock"; "paper"; "scissors" |].(a) a) in
  let uniform =
    Machine.randomizing "uniform" (fun _ -> Dist.uniform [ 0; 1; 2 ])
  in
  let extras =
    if extra_randomizers then
      [
        Machine.randomizing "biased-rp" (fun _ -> Dist.of_list [ (0, 0.5); (1, 0.5) ]);
        Machine.randomizing "biased-ps" (fun _ -> Dist.of_list [ (1, 0.5); (2, 0.5) ]);
      ]
    else []
  in
  Array.of_list (det @ [ uniform ] @ extras)

let game ?(extra_randomizers = false) () =
  let space = machines ~extra_randomizers in
  Machine_game.simple ~machines:[| space; space |] ~base:payoff ~charge:[| 1.0; 1.0 |]

let has_equilibrium g = Machine_game.nash_equilibria g <> []

let certificate g = Machine_game.nonexistence_certificate g

let classical_equilibria () = Bn_game.Nash.support_enumeration_2p Bn_game.Games.roshambo
