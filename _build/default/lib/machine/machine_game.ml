module Dist = Bn_util.Dist

type t = {
  machines : Machine.t array array;
  num_types : int array;
  prior : int array Dist.t;
  utility :
    player:int -> types:int array -> acts:int array -> complexities:float array -> float;
}

let create ~machines ~num_types ~prior ~utility =
  let n = Array.length machines in
  if n = 0 then invalid_arg "Machine_game.create: no players";
  if Array.length num_types <> n then invalid_arg "Machine_game.create: num_types arity";
  Array.iter
    (fun space -> if Array.length space = 0 then invalid_arg "Machine_game.create: empty machine space")
    machines;
  { machines; num_types; prior; utility }

let simple ~machines ~base ~charge =
  let n = Array.length machines in
  create ~machines ~num_types:(Array.make n 1)
    ~prior:(Dist.return (Array.make n 0))
    ~utility:(fun ~player ~types:_ ~acts ~complexities ->
      (base acts).(player) -. (charge.(player) *. complexities.(player)))

let n_players t = Array.length t.machines
let machine_space t ~player = t.machines.(player)

let expected_utility t ~choice ~player =
  let n = n_players t in
  Dist.expect
    (fun types ->
      let complexities =
        Array.init n (fun i -> t.machines.(i).(choice.(i)).Machine.complexity types.(i))
      in
      let action_dists =
        List.init n (fun i -> t.machines.(i).(choice.(i)).Machine.act types.(i))
      in
      Dist.expect
        (fun acts ->
          t.utility ~player ~types ~acts:(Array.of_list acts) ~complexities)
        (Dist.product_list action_dists))
    t.prior

let best_deviation t ~choice ~player =
  let current = expected_utility t ~choice ~player in
  let best = ref None in
  Array.iteri
    (fun m _ ->
      if m <> choice.(player) then begin
        let alt = Array.copy choice in
        alt.(player) <- m;
        let u = expected_utility t ~choice:alt ~player in
        let better_than_best =
          match !best with None -> u > current +. 1e-9 | Some (_, ub) -> u > ub
        in
        if better_than_best then best := Some (m, u)
      end)
    t.machines.(player);
  !best

let is_nash ?(eps = 1e-9) t ~choice =
  let n = n_players t in
  let ok = ref true in
  for i = 0 to n - 1 do
    let current = expected_utility t ~choice ~player:i in
    match best_deviation t ~choice ~player:i with
    | Some (_, u) when u > current +. eps -> ok := false
    | Some _ | None -> ()
  done;
  !ok

let all_choices t =
  Bn_util.Combin.profiles (Array.map Array.length t.machines)

let nash_equilibria t =
  List.filter (fun choice -> is_nash t ~choice) (all_choices t)

let nonexistence_certificate t =
  let entries =
    List.map
      (fun choice ->
        let n = n_players t in
        let rec find i =
          if i >= n then None
          else
            let current = expected_utility t ~choice ~player:i in
            match best_deviation t ~choice ~player:i with
            | Some (m, u) when u > current +. 1e-9 -> Some (choice, i, m)
            | Some _ | None -> find (i + 1)
        in
        find 0)
      (all_choices t)
  in
  if List.exists (( = ) None) entries then None
  else Some (List.map Option.get entries)

let to_normal_form t =
  let actions = Array.map Array.length t.machines in
  let action_names =
    Array.map (fun space -> Array.map (fun m -> m.Machine.name) space) t.machines
  in
  Bn_game.Normal_form.create ~action_names ~actions (fun choice ->
      Array.init (n_players t) (fun i -> expected_utility t ~choice ~player:i))
