(** Computational Bayesian games and computational Nash equilibrium.

    Each player picks a machine from a finite candidate space; its type is
    the machine's input; utility depends on the type profile, action
    profile {e and the complexity profile} — so "thinking harder" can cost,
    and a player may care about others' complexities too (paper §3).

    A {e computational Nash equilibrium} is a profile of machines (a pure
    choice — randomness lives inside machines, where it can be charged such
    that no player can profitably switch to another machine in its space.
    Unlike classical finite games, such an equilibrium may not exist:
    {!Comp_roshambo} exhibits the paper's Example 3.3. *)

type t

val create :
  machines:Machine.t array array ->
  num_types:int array ->
  prior:int array Bn_util.Dist.t ->
  utility:
    (player:int ->
    types:int array ->
    acts:int array ->
    complexities:float array ->
    float) ->
  t
(** [machines.(i)] is player [i]'s machine space. The prior ranges over
    type profiles, as in {!Bn_bayesian.Bayesian}. *)

val simple :
  machines:Machine.t array array ->
  base:(int array -> float array) ->
  charge:float array ->
  t
(** Common case: one type per player (complete information), utility =
    base-game payoff of the action profile − [charge.(i)] ×
    own complexity. *)

val n_players : t -> int
val machine_space : t -> player:int -> Machine.t array

val expected_utility : t -> choice:int array -> player:int -> float
(** Exact expectation over the prior and all machines' internal
    randomization. [choice.(i)] indexes player [i]'s machine space. *)

val best_deviation : t -> choice:int array -> player:int -> (int * float) option
(** The best alternative machine for [player] and its utility, if it
    strictly improves on the current choice (by more than 1e-9). *)

val is_nash : ?eps:float -> t -> choice:int array -> bool

val nash_equilibria : t -> int array list
(** All pure machine-profile equilibria, by exhaustive search. *)

val nonexistence_certificate : t -> (int array * int * int) list option
(** If the game has {e no} computational Nash equilibrium, the full
    certificate: for every machine profile, a player and a profitable
    deviation. [None] if some equilibrium exists. *)

val to_normal_form : t -> Bn_game.Normal_form.t
(** The induced game over machine indices (payoffs = expected utilities).
    Note: a {e mixed} Nash equilibrium of this normal form is not a
    computational equilibrium — mixing over machines is free there, which
    is exactly what the complexity charges are meant to forbid. *)
