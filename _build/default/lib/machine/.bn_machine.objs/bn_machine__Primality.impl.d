lib/machine/primality.ml: Array Bn_util List Machine Machine_game
