lib/machine/comp_roshambo.mli: Bn_game Machine_game
