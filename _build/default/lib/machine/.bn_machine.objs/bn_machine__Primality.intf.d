lib/machine/primality.mli: Bn_util Machine_game
