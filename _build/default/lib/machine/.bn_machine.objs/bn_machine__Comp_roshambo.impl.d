lib/machine/comp_roshambo.ml: Array Bn_game Bn_util List Machine Machine_game
