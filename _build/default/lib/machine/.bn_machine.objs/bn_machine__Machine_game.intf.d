lib/machine/machine_game.mli: Bn_game Bn_util Machine
