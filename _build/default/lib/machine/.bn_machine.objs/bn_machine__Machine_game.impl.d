lib/machine/machine_game.ml: Array Bn_game Bn_util List Machine Option
