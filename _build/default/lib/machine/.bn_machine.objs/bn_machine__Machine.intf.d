lib/machine/machine.mli: Bn_util Format
