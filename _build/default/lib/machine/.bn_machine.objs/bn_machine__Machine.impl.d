lib/machine/machine.ml: Bn_util Format
