lib/scrip/scrip.ml: Array Bn_util Fun List
