lib/scrip/scrip.mli: Bn_util
