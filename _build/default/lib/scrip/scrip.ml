type kind = Standard of int | Hoarder | Altruist

type params = {
  n : int;
  rounds : int;
  benefit : float;
  cost : float;
}

let default_params ~n = { n; rounds = 100 * n; benefit = 1.0; cost = 0.2 }

type stats = {
  utilities : float array;
  satisfied : int;
  requests : int;
  starved : int;
  unserved : int;
  final_scrip : int array;
}

let simulate rng params ~kinds ~money_per_agent =
  let { n; rounds; benefit; cost } = params in
  if Array.length kinds <> n then invalid_arg "Scrip.simulate: kinds arity";
  let scrip = Array.make n 0 in
  let total_money = int_of_float (money_per_agent *. float_of_int n) in
  for unit = 0 to total_money - 1 do
    scrip.(unit mod n) <- scrip.(unit mod n) + 1
  done;
  let utilities = Array.make n 0.0 in
  let satisfied = ref 0 and requests = ref 0 and starved = ref 0 and unserved = ref 0 in
  for _ = 1 to rounds do
    let chooser = Bn_util.Prng.int rng n in
    let wants = match kinds.(chooser) with Hoarder -> false | Standard _ | Altruist -> true in
    if wants then begin
      incr requests;
      if scrip.(chooser) < 1 then incr starved
      else begin
        let willing =
          List.filter
            (fun i ->
              i <> chooser
              &&
              match kinds.(i) with
              | Standard k -> scrip.(i) < k
              | Hoarder | Altruist -> true)
            (List.init n Fun.id)
        in
        match willing with
        | [] -> incr unserved
        | _ ->
          let volunteer = List.nth willing (Bn_util.Prng.int rng (List.length willing)) in
          incr satisfied;
          utilities.(chooser) <- utilities.(chooser) +. benefit;
          utilities.(volunteer) <- utilities.(volunteer) -. cost;
          (match kinds.(volunteer) with
          | Altruist -> ()
          | Standard _ | Hoarder ->
            scrip.(chooser) <- scrip.(chooser) - 1;
            scrip.(volunteer) <- scrip.(volunteer) + 1)
      end
    end
  done;
  {
    utilities;
    satisfied = !satisfied;
    requests = !requests;
    starved = !starved;
    unserved = !unserved;
    final_scrip = scrip;
  }

let efficiency params stats =
  if params.rounds = 0 then 0.0
  else float_of_int stats.satisfied /. float_of_int params.rounds

let avg_utility stats ~who =
  let selected =
    List.filteri (fun i _ -> who i) (Array.to_list stats.utilities)
  in
  Bn_util.Stats.mean selected

let best_threshold rng params ~others ~money_per_agent ~candidates =
  let seed_base = Bn_util.Prng.int rng 1_000_000 in
  let evaluate candidate =
    (* Common random numbers: same seed for every candidate. *)
    let local = Bn_util.Prng.create (seed_base * 7919) in
    let kinds =
      Array.init params.n (fun i -> if i = 0 then Standard candidate else Standard others)
    in
    let stats = simulate local params ~kinds ~money_per_agent in
    stats.utilities.(0)
  in
  match candidates with
  | [] -> invalid_arg "Scrip.best_threshold: no candidates"
  | c0 :: rest ->
    List.fold_left
      (fun (bc, bu) c ->
        let u = evaluate c in
        if u > bu then (c, u) else (bc, bu))
      (c0, evaluate c0) rest

let symmetric_equilibrium rng params ~money_per_agent ~candidates =
  (* Iterate the empirical best-response map from the middle candidate until
     a fixed point or a short cycle; return the fixed point if found. *)
  let start = List.nth candidates (List.length candidates / 2) in
  let rec go k visited steps =
    if steps > 12 then None
    else begin
      let k', _ = best_threshold rng params ~others:k ~money_per_agent ~candidates in
      if k' = k then Some k
      else if List.mem k' visited then None
      else go k' (k' :: visited) (steps + 1)
    end
  in
  go start [ start ] 0
