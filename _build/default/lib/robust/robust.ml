open Bn_game

type variant = Strong | Weak

type violation = {
  coalition : int list;
  traitors : int list;
  deviation : (int * int) list;
  victim : int;
  before : float;
  after : float;
}

type verdict = Holds | Fails of violation

let pp_violation ppf v =
  let pp_set = Fmt.(list ~sep:comma int) in
  Format.fprintf ppf "C={%a} T={%a} deviation=[%s] victim=%d: %.3f -> %.3f" pp_set
    v.coalition pp_set v.traitors
    (String.concat "; " (List.map (fun (i, a) -> Printf.sprintf "%d:%d" i a) v.deviation))
    v.victim v.before v.after

(* Apply a joint pure deviation to a mixed profile. *)
let deviate g prof assignment =
  let deviated = Array.copy prof in
  List.iter
    (fun (i, a) ->
      deviated.(i) <- Mixed.pure ~num_actions:(Normal_form.num_actions g i) a)
    assignment;
  deviated

exception Found of violation

let baseline g prof = Array.init (Normal_form.n_players g) (Mixed.expected_payoff g prof)

(* Quantify over disjoint C (≤ k) and T (≤ t) and joint pure deviations by
   C ∪ T; call [test] with the deviated profile. [test] raises [Found] to
   report a violation. *)
let for_all_deviations g ~k ~t test =
  let n = Normal_form.n_players g in
  let dims = Normal_form.actions g in
  let coalitions = if k = 0 then [ [] ] else [] :: Bn_util.Combin.subsets_up_to n k in
  List.iter
    (fun coalition ->
      let rest = List.filter (fun i -> not (List.mem i coalition)) (List.init n Fun.id) in
      let rest_count = List.length rest in
      let traitor_sets =
        if t = 0 then [ [] ]
        else
          [] ::
          List.map
            (List.map (fun idx -> List.nth rest idx))
            (Bn_util.Combin.subsets_up_to rest_count (min t rest_count))
      in
      List.iter
        (fun traitors ->
          if coalition <> [] || traitors <> [] then
            let members = coalition @ traitors in
            List.iter
              (fun assignment -> test ~coalition ~traitors assignment)
              (Bn_util.Combin.joint_assignments members dims))
        traitor_sets)
    coalitions

let check_resilience ?(variant = Strong) ?(eps = 1e-9) g prof ~k =
  let base = baseline g prof in
  try
    for_all_deviations g ~k ~t:0 (fun ~coalition ~traitors:_ assignment ->
        let deviated = deviate g prof assignment in
        let gains =
          List.map
            (fun i ->
              let after = Mixed.expected_payoff g deviated i in
              (i, after, after > base.(i) +. eps))
            coalition
        in
        let blocked =
          match variant with
          | Strong -> List.exists (fun (_, _, gained) -> gained) gains
          | Weak -> gains <> [] && List.for_all (fun (_, _, gained) -> gained) gains
        in
        if blocked then begin
          let victim, after, _ = List.find (fun (_, _, gained) -> gained) gains in
          raise
            (Found
               {
                 coalition;
                 traitors = [];
                 deviation = assignment;
                 victim;
                 before = base.(victim);
                 after;
               })
        end);
    Holds
  with Found v -> Fails v

let check_immunity ?(eps = 1e-9) g prof ~t =
  let base = baseline g prof in
  let n = Normal_form.n_players g in
  try
    for_all_deviations g ~k:0 ~t (fun ~coalition:_ ~traitors assignment ->
        let deviated = deviate g prof assignment in
        List.iter
          (fun i ->
            if not (List.mem i traitors) then begin
              let after = Mixed.expected_payoff g deviated i in
              if after < base.(i) -. eps then
                raise
                  (Found
                     {
                       coalition = [];
                       traitors;
                       deviation = assignment;
                       victim = i;
                       before = base.(i);
                       after;
                     })
            end)
          (List.init n Fun.id));
    Holds
  with Found v -> Fails v

(* (k,t)-robustness combines two guarantees (ADGH):
   - resilience side: no coalition C (|C| ≤ k) profits from a joint
     deviation, even with the help of up to t arbitrarily-behaving players
     T (quantified over joint deviations by C ∪ T);
   - immunity side: deviations by up to t players alone never hurt a
     non-deviator. The immunity condition concerns only the faulty set T —
     rational players follow the equilibrium, so outsiders need no
     protection from C; this is what makes (1,0)-robustness coincide
     exactly with Nash equilibrium. *)
let check_robustness ?(variant = Strong) ?(eps = 1e-9) g prof ~k ~t =
  let base = baseline g prof in
  match check_immunity ~eps g prof ~t with
  | Fails v -> Fails v
  | Holds -> (
    try
      for_all_deviations g ~k ~t (fun ~coalition ~traitors assignment ->
          let deviated = deviate g prof assignment in
          let gains =
            List.map
              (fun i ->
                let after = Mixed.expected_payoff g deviated i in
                (i, after, after > base.(i) +. eps))
              coalition
          in
          let blocked =
            match variant with
            | Strong -> List.exists (fun (_, _, gained) -> gained) gains
            | Weak -> gains <> [] && List.for_all (fun (_, _, gained) -> gained) gains
          in
          if blocked then begin
            let victim, after, _ = List.find (fun (_, _, gained) -> gained) gains in
            raise
              (Found
                 { coalition; traitors; deviation = assignment; victim;
                   before = base.(victim); after })
          end);
      Holds
    with Found v -> Fails v)

let is_k_resilient ?variant ?eps g prof ~k =
  match check_resilience ?variant ?eps g prof ~k with Holds -> true | Fails _ -> false

let is_t_immune ?eps g prof ~t =
  match check_immunity ?eps g prof ~t with Holds -> true | Fails _ -> false

let is_robust ?variant ?eps g prof ~k ~t =
  match check_robustness ?variant ?eps g prof ~k ~t with Holds -> true | Fails _ -> false

let max_resilience ?variant ?eps g prof =
  let n = Normal_form.n_players g in
  let rec go k = if k >= n then n else if is_k_resilient ?variant ?eps g prof ~k:(k + 1) then go (k + 1) else k in
  go 0

let max_immunity ?eps g prof =
  let n = Normal_form.n_players g in
  let rec go t = if t >= n then n else if is_t_immune ?eps g prof ~t:(t + 1) then go (t + 1) else t in
  go 0

let robust_pure_equilibria ?variant ?eps g ~k ~t =
  let acc = ref [] in
  Normal_form.iter_profiles g (fun p ->
      let prof = Mixed.pure_profile g p in
      if is_robust ?variant ?eps g prof ~k ~t then acc := Array.copy p :: !acc);
  List.rev !acc

let find_punishment ?(eps = 1e-9) g ~target ~budget =
  let n = Normal_form.n_players g in
  if Array.length target <> n then invalid_arg "Robust.find_punishment: target arity";
  let qualifies rho =
    let prof = Mixed.pure_profile g rho in
    (* Every player strictly below target even at the base profile... *)
    let ok = ref true in
    (try
       (* Deviations by any ≤ budget players (they may also be punished
          players trying to escape). *)
       let check deviated =
         for i = 0 to n - 1 do
           if Mixed.expected_payoff g deviated i >= target.(i) -. eps then raise Exit
         done
       in
       check prof;
       for_all_deviations g ~k:budget ~t:0 (fun ~coalition:_ ~traitors:_ assignment ->
           check (deviate g prof assignment))
     with Exit -> ok := false);
    !ok
  in
  let result = ref None in
  (try
     Normal_form.iter_profiles g (fun p ->
         if qualifies p then begin
           result := Some (Array.copy p);
           raise Exit
         end)
   with Exit -> ());
  !result
