lib/robust/robust.ml: Array Bn_game Bn_util Fmt Format Fun List Mixed Normal_form Printf String
