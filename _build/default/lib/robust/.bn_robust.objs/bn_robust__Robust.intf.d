lib/robust/robust.mli: Bn_game Format
