(** The named games used throughout the paper and this reproduction. *)

val prisoners_dilemma : Normal_form.t
(** The paper's §3 table: C/D with payoffs (3,3), (−5,5)/(5,−5), (−3,−3).
    Note the paper's text says mutual defection gives 1 but its table
    says −3; we follow the table. *)

val prisoners_dilemma_classic : Normal_form.t
(** The standard (3,3)/(0,5)/(5,0)/(1,1) variant used by the tournament
    literature (Axelrod payoffs T=5, R=3, P=1, S=0). *)

val coordination_01 : int -> Normal_form.t
(** §2's n-player 0/1 game: everyone plays 0 ⇒ all get 1; exactly two play
    1 ⇒ those two get 2 and the rest 0; otherwise all get 0. The all-0
    profile is Nash but not 2-resilient. *)

val bargaining : int -> Normal_form.t
(** §2's bargaining game: all stay ⇒ all get 2; anyone leaves ⇒ leavers get
    1, stayers get 0. All-stay is k-resilient for every k but not
    1-immune. Action 0 = stay, action 1 = leave. *)

val roshambo : Normal_form.t
(** Rock-paper-scissors as in Ex 3.3: payoff 1 to the winner, −1 to the
    loser, 0 on ties; zero-sum with unique uniform equilibrium. *)

val matching_pennies : Normal_form.t
(** Classic 2×2 zero-sum game with a unique mixed equilibrium. *)

val battle_of_sexes : Normal_form.t
(** Two pure equilibria + one mixed: exercises multiple-equilibrium
    selection, one of the paper's §1 complaints about Nash equilibrium. *)

val stag_hunt : Normal_form.t
(** Payoff- vs risk-dominance tension. *)

val chicken : Normal_form.t
(** Anti-coordination; used in mediator examples (correlated equilibria
    outside the convex hull of Nash equilibria). *)
