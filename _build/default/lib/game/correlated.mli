(** Correlated equilibrium.

    A mediator in a complete-information game is exactly a correlation
    device: it draws a profile from a public distribution and privately
    recommends each player its component. The distribution is a correlated
    equilibrium when following recommendations is optimal. This is the
    benchmark object the §2 cheap-talk machinery implements, and it can
    achieve payoffs outside the convex hull of Nash equilibria (e.g. in
    chicken). *)

val is_correlated_equilibrium :
  ?eps:float -> Normal_form.t -> int array Bn_util.Dist.t -> bool
(** Checks the obedience constraints: for every player [i] and every
    recommended action [a] of positive probability, no deviation [a']
    improves [i]'s conditional expected payoff. *)

val max_welfare : Normal_form.t -> (int array Bn_util.Dist.t * float) option
(** The correlated equilibrium maximizing the sum of payoffs, by linear
    programming over profile distributions. [None] only on LP failure
    (cannot happen for finite games: Nash equilibria are correlated
    equilibria, so the polytope is non-empty). Returns the distribution and
    the total welfare. *)

val max_player : Normal_form.t -> player:int -> (int array Bn_util.Dist.t * float) option
(** The correlated equilibrium maximizing one player's expected payoff. *)

val of_mixed : Normal_form.t -> Mixed.profile -> int array Bn_util.Dist.t
(** The product distribution of a mixed profile — a correlated equilibrium
    whenever the profile is Nash. *)
