let split_on_any s seps =
  String.split_on_char seps s |> List.filter (fun x -> String.trim x <> "")

let bimatrix spec =
  let rows = String.split_on_char '|' spec in
  let rows = List.filter (fun r -> String.trim r <> "") rows in
  if rows = [] then invalid_arg "Parse.bimatrix: empty specification";
  let parse_cell cell =
    match String.split_on_char ',' (String.trim cell) with
    | [ u1; u2 ] -> (
      match (float_of_string_opt (String.trim u1), float_of_string_opt (String.trim u2)) with
      | Some a, Some b -> (a, b)
      | _ -> invalid_arg (Printf.sprintf "Parse.bimatrix: bad payoff pair %S" cell))
    | _ -> invalid_arg (Printf.sprintf "Parse.bimatrix: cell %S needs exactly two payoffs" cell)
  in
  let parse_row row = List.map parse_cell (split_on_any row ' ') in
  let parsed = List.map parse_row rows in
  let cols =
    match parsed with
    | [] -> 0
    | first :: rest ->
      let c = List.length first in
      if c = 0 then invalid_arg "Parse.bimatrix: empty row";
      List.iter
        (fun r -> if List.length r <> c then invalid_arg "Parse.bimatrix: ragged rows")
        rest;
      c
  in
  let a =
    Array.of_list (List.map (fun row -> Array.of_list (List.map fst row)) parsed)
  in
  let b =
    Array.of_list (List.map (fun row -> Array.of_list (List.map snd row)) parsed)
  in
  ignore cols;
  Normal_form.of_bimatrix a b

let bimatrix_opt spec =
  match bimatrix spec with
  | g -> Some g
  | exception Invalid_argument _ -> None
