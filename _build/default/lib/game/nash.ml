let best_response_value g prof ~player =
  let best = ref neg_infinity in
  for a = 0 to Normal_form.num_actions g player - 1 do
    let v = Mixed.expected_payoff_vs_pure g prof ~player ~action:a in
    if v > !best then best := v
  done;
  !best

let pure_best_responses g prof ~player =
  let best = best_response_value g prof ~player in
  let acc = ref [] in
  for a = Normal_form.num_actions g player - 1 downto 0 do
    let v = Mixed.expected_payoff_vs_pure g prof ~player ~action:a in
    if Float.abs (v -. best) <= 1e-9 then acc := a :: !acc
  done;
  !acc

let regret g prof ~player =
  let br = best_response_value g prof ~player in
  let current = Mixed.expected_payoff g prof player in
  Float.max 0.0 (br -. current)

let max_regret g prof =
  let worst = ref 0.0 in
  for i = 0 to Normal_form.n_players g - 1 do
    let r = regret g prof ~player:i in
    if r > !worst then worst := r
  done;
  !worst

let is_nash ?(eps = 1e-9) g prof = max_regret g prof <= eps

let is_pure_nash ?eps g pure_acts = is_nash ?eps g (Mixed.pure_profile g pure_acts)

let pure_equilibria ?eps g =
  let acc = ref [] in
  Normal_form.iter_profiles g (fun p -> if is_pure_nash ?eps g p then acc := Array.copy p :: !acc);
  List.rev !acc

(* Support enumeration for 2-player games: for supports (s1, s2) of equal
   size, the row player's mixture must make every column in s2 indifferent,
   and symmetrically. Solving the two linear systems and verifying the
   equilibrium conditions yields every equilibrium of a nondegenerate
   game. *)
let support_enumeration_2p ?(eps = 1e-7) g =
  if Normal_form.n_players g <> 2 then
    invalid_arg "Nash.support_enumeration_2p: two-player games only";
  let m1 = Normal_form.num_actions g 0 and m2 = Normal_form.num_actions g 1 in
  let u1 i j = Normal_form.payoff g [| i; j |] 0 in
  let u2 i j = Normal_form.payoff g [| i; j |] 1 in
  let results = ref [] in
  let add prof =
    if not (List.exists (fun p -> Mixed.equal ~eps:1e-6 p prof) !results) then
      results := prof :: !results
  in
  (* Solve for the mixture of [mixer] (over support s_mix) that makes
     [other] indifferent across s_other; unknowns: probs + common value. *)
  let solve_indifference ~payoff_other s_mix s_other =
    let k = List.length s_mix in
    let arr_mix = Array.of_list s_mix and arr_other = Array.of_list s_other in
    let nvars = k + 1 in
    let rows =
      (* one indifference equation per action of [other], plus sum-to-1 *)
      Array.init (Array.length arr_other + 1) (fun r ->
          if r < Array.length arr_other then
            Array.init nvars (fun c ->
                if c < k then payoff_other arr_mix.(c) arr_other.(r) else -1.0)
          else Array.init nvars (fun c -> if c < k then 1.0 else 0.0))
    in
    let rhs = Array.init (Array.length arr_other + 1) (fun r -> if r < Array.length arr_other then 0.0 else 1.0) in
    if Array.length rows <> nvars then None
    else
      match Bn_util.Linalg.solve rows rhs with
      | None -> None
      | Some x ->
        let probs = Array.sub x 0 k in
        if Array.exists (fun p -> p < -.eps) probs then None
        else Some (probs, x.(k))
  in
  let expand full support probs =
    let s = Array.make full 0.0 in
    List.iteri (fun idx a -> s.(a) <- Float.max 0.0 probs.(idx)) support;
    let total = Array.fold_left ( +. ) 0.0 s in
    Array.map (fun p -> p /. total) s
  in
  let subsets_1 = Bn_util.Combin.subsets_up_to m1 m1 in
  let subsets_2 = Bn_util.Combin.subsets_up_to m2 m2 in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          if List.length s1 = List.length s2 then
            (* Row mixture makes column player indifferent on s2 (payoff_other
               must be u2 as a function of (mixer's action, other's action)). *)
            match solve_indifference ~payoff_other:u2 s1 s2 with
            | None -> ()
            | Some (p1, _) -> (
              match solve_indifference ~payoff_other:(fun j i -> u1 i j) s2 s1 with
              | None -> ()
              | Some (p2, _) ->
                let prof = [| expand m1 s1 p1; expand m2 s2 p2 |] in
                if
                  Mixed.is_valid prof.(0) && Mixed.is_valid prof.(1)
                  && max_regret g prof <= eps
                then add prof))
        subsets_2)
    subsets_1;
  List.iter (fun p -> add (Mixed.pure_profile g p)) (pure_equilibria g);
  List.rev !results

let find_2p ?eps g =
  match support_enumeration_2p ?eps g with [] -> None | p :: _ -> Some p
