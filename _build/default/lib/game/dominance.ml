type mode = Strict | Weak

(* Compare actions a and b for [player] against every profile of the
   others. *)
let compare_actions g ~player a b =
  let acts = Normal_form.actions g in
  let others = Array.copy acts in
  others.(player) <- 1;
  let all_ge = ref true and some_gt = ref true and all_gt = ref true in
  some_gt := false;
  Bn_util.Combin.iter_profiles others (fun partial ->
      let p = Array.copy partial in
      p.(player) <- a;
      let ua = Normal_form.payoff g p player in
      p.(player) <- b;
      let ub = Normal_form.payoff g p player in
      if ua <= ub then all_gt := false;
      if ua < ub then all_ge := false;
      if ua > ub then some_gt := true);
  (!all_ge, !some_gt, !all_gt)

let dominates ?(mode = Strict) g ~player a b =
  if a = b then false
  else
    let all_ge, some_gt, all_gt = compare_actions g ~player a b in
    match mode with Strict -> all_gt | Weak -> all_ge && some_gt

let dominated_actions ?mode g ~player =
  let m = Normal_form.num_actions g player in
  let dominated = ref [] in
  for b = m - 1 downto 0 do
    let found = ref false in
    for a = 0 to m - 1 do
      if (not !found) && dominates ?mode g ~player a b then found := true
    done;
    if !found then dominated := b :: !dominated
  done;
  !dominated

(* Restrict a game to the given surviving actions (per player). *)
let restrict g surviving =
  let n = Normal_form.n_players g in
  let arr = Array.map Array.of_list surviving in
  let acts = Array.map Array.length arr in
  let action_names =
    Array.init n (fun i -> Array.map (Normal_form.action_name g i) arr.(i))
  in
  Normal_form.create
    ~player_names:(Array.init n (Normal_form.player_name g))
    ~action_names ~actions:acts
    (fun p ->
      let original = Array.init n (fun i -> arr.(i).(p.(i))) in
      Normal_form.payoff_vector g original)

let iterated_elimination ?(mode = Strict) g =
  let n = Normal_form.n_players g in
  let surviving = Array.init n (fun i -> List.init (Normal_form.num_actions g i) Fun.id) in
  let current = ref g in
  let changed = ref true in
  while !changed do
    changed := false;
    (* In Weak mode remove a single action per pass: the result of iterated
       weak dominance is order-dependent, so we fix the order (lowest player,
       lowest action). *)
    let removed_one = ref false in
    for i = 0 to n - 1 do
      if (not (!removed_one && mode = Weak)) && List.length surviving.(i) > 1 then begin
        match dominated_actions ~mode !current ~player:i with
        | [] -> ()
        | doomed ->
          let doomed = match mode with Strict -> doomed | Weak -> [ List.hd doomed ] in
          let keep =
            List.filteri (fun idx _ -> not (List.mem idx doomed)) surviving.(i)
          in
          if List.length keep >= 1 && List.length keep < List.length surviving.(i) then begin
            surviving.(i) <- keep;
            let local =
              Array.init n (fun j ->
                  if j = i then
                    List.filteri
                      (fun idx _ -> not (List.mem idx doomed))
                      (List.init (Normal_form.num_actions !current j) Fun.id)
                  else List.init (Normal_form.num_actions !current j) Fun.id)
            in
            current := restrict !current local;
            changed := true;
            removed_one := true
          end
      end
    done
  done;
  (!current, surviving)

let solves_by_dominance ?mode g =
  let reduced, surviving = iterated_elimination ?mode g in
  if Array.for_all (fun s -> List.length s = 1) surviving && Normal_form.n_players reduced > 0
  then Some (Array.map List.hd surviving)
  else None
