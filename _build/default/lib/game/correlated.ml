module Dist = Bn_util.Dist
module Simplex = Bn_lp.Simplex

(* Conditional obedience: given that i is recommended a (an event of
   positive probability under q), playing a must be at least as good as any
   a'. Written unconditionally: for all i, a, a':
   sum_{s : s_i = a} q(s) * (u_i(s) - u_i(a', s_{-i})) >= 0. *)

let is_correlated_equilibrium ?(eps = 1e-9) g q =
  let n = Normal_form.n_players g in
  let ok = ref true in
  for i = 0 to n - 1 do
    for a = 0 to Normal_form.num_actions g i - 1 do
      for a' = 0 to Normal_form.num_actions g i - 1 do
        if a <> a' then begin
          let lhs =
            List.fold_left
              (fun acc (s, p) ->
                if s.(i) = a then begin
                  let s' = Array.copy s in
                  s'.(i) <- a';
                  acc +. (p *. (Normal_form.payoff g s i -. Normal_form.payoff g s' i))
                end
                else acc)
              0.0 (Dist.to_list q)
          in
          if lhs < -.eps then ok := false
        end
      done
    done
  done;
  !ok

(* Solve max c·q subject to the obedience constraints, sum q = 1, q >= 0. *)
let solve_lp g objective_of_profile =
  let profiles = Array.of_list (Normal_form.profiles g) in
  let m = Array.length profiles in
  let n = Normal_form.n_players g in
  let objective = Array.map objective_of_profile profiles in
  let constraints = ref [ Simplex.eq (Array.make m 1.0) 1.0 ] in
  for i = 0 to n - 1 do
    for a = 0 to Normal_form.num_actions g i - 1 do
      for a' = 0 to Normal_form.num_actions g i - 1 do
        if a <> a' then begin
          let coeffs =
            Array.map
              (fun s ->
                if s.(i) = a then begin
                  let s' = Array.copy s in
                  s'.(i) <- a';
                  Normal_form.payoff g s i -. Normal_form.payoff g s' i
                end
                else 0.0)
              profiles
          in
          constraints := Simplex.ge coeffs 0.0 :: !constraints
        end
      done
    done
  done;
  match Simplex.maximize objective !constraints with
  | Simplex.Optimal { solution; value } ->
    let pairs =
      List.filteri (fun _ (_, p) -> p > 1e-12)
        (List.mapi (fun idx p -> (Array.copy profiles.(idx), p)) (Array.to_list solution))
    in
    (match pairs with
    | [] -> None
    | _ -> Some (Dist.of_list pairs, value))
  | Simplex.Infeasible | Simplex.Unbounded -> None

let max_welfare g =
  let n = Normal_form.n_players g in
  solve_lp g (fun s ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. Normal_form.payoff g s i
      done;
      !acc)

let max_player g ~player = solve_lp g (fun s -> Normal_form.payoff g s player)

let of_mixed g prof = Mixed.outcome_dist g prof
