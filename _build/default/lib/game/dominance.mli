(** Strategy dominance and iterated elimination.

    Used both as a classical solution concept and to preprocess games before
    the heavier robustness checks. *)

type mode = Strict | Weak

val dominates :
  ?mode:mode -> Normal_form.t -> player:int -> int -> int -> bool
(** [dominates g ~player a b] — does action [a] dominate action [b] for
    [player]? [Strict]: strictly better against every opposing profile.
    [Weak]: never worse and somewhere strictly better. *)

val dominated_actions : ?mode:mode -> Normal_form.t -> player:int -> int list
(** Actions of [player] dominated by some other currently available
    action. *)

val iterated_elimination :
  ?mode:mode -> Normal_form.t -> (Normal_form.t * int list array)
(** Iteratively deletes dominated actions (for [Weak], one action per round
    to keep the procedure well-defined) until a fixed point. Returns the
    reduced game and, per player, the surviving original action indices in
    ascending order. *)

val solves_by_dominance : ?mode:mode -> Normal_form.t -> int array option
(** If iterated elimination leaves exactly one profile, the surviving
    original profile. *)
