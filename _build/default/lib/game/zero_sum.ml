open Bn_lp

(* Maxmin mixture for the row player of matrix [a]: maximize v subject to
   (p^T a)_j >= v for every column j, p a distribution. The free value v is
   encoded as vplus - vminus. *)
let row_value a =
  let rows = Array.length a and cols = Array.length a.(0) in
  let nvars = rows + 2 in
  let objective = Array.init nvars (fun c -> if c = rows then 1.0 else if c = rows + 1 then -1.0 else 0.0) in
  let col_constraint j =
    Simplex.ge
      (Array.init nvars (fun c ->
           if c < rows then a.(c).(j) else if c = rows then -1.0 else 1.0))
      0.0
  in
  let sum_row = Simplex.eq (Array.init nvars (fun c -> if c < rows then 1.0 else 0.0)) 1.0 in
  let constraints = sum_row :: List.init cols col_constraint in
  match Simplex.maximize objective constraints with
  | Simplex.Optimal { solution; value } ->
    let p = Array.sub solution 0 rows in
    (* Clean numerical dust and renormalize. *)
    let p = Array.map (fun x -> if x < 0.0 then 0.0 else x) p in
    let total = Array.fold_left ( +. ) 0.0 p in
    Some (value, Array.map (fun x -> x /. total) p)
  | Simplex.Infeasible | Simplex.Unbounded -> None

let value g =
  if Normal_form.n_players g <> 2 || not (Normal_form.is_zero_sum g) then None
  else begin
    let m1 = Normal_form.num_actions g 0 and m2 = Normal_form.num_actions g 1 in
    let a = Array.init m1 (fun i -> Array.init m2 (fun j -> Normal_form.payoff g [| i; j |] 0)) in
    match row_value a with
    | None -> None
    | Some (v, row) -> (
      (* Column player maximizes -a^T. *)
      let at = Array.init m2 (fun j -> Array.init m1 (fun i -> -.a.(i).(j))) in
      match row_value at with
      | None -> None
      | Some (_, col) -> Some (v, row, col))
  end

let maxmin_pure g ~player =
  let acts = Normal_form.actions g in
  let others = Array.copy acts in
  others.(player) <- 1;
  let best = ref neg_infinity in
  for a = 0 to acts.(player) - 1 do
    let worst = ref infinity in
    Bn_util.Combin.iter_profiles others (fun partial ->
        let p = Array.copy partial in
        p.(player) <- a;
        let u = Normal_form.payoff g p player in
        if u < !worst then worst := u);
    if !worst > !best then best := !worst
  done;
  !best

let minmax_correlated g ~player =
  let acts = Normal_form.actions g in
  let others_dims = Array.copy acts in
  others_dims.(player) <- 1;
  let opposing = Bn_util.Combin.profiles others_dims in
  let opposing = Array.of_list opposing in
  let m = acts.(player) in
  let a =
    Array.init m (fun own ->
        Array.map
          (fun partial ->
            let p = Array.copy partial in
            p.(player) <- own;
            Normal_form.payoff g p player)
          opposing)
  in
  match row_value a with
  | Some (v, p) -> (v, p)
  | None ->
    (* The LP is always feasible and bounded for a finite matrix; fall back
       to the pure security level defensively. *)
    (maxmin_pure g ~player, Mixed.uniform m)
