(** Rationalizability (one of the §1 refinements the paper surveys).

    An action is {e never a best response} if no belief over the opponents'
    play justifies it; rationalizability iteratively deletes such actions.
    For two-player games, never-best-response coincides with strict
    dominance by a {e mixed} strategy, which we decide exactly by linear
    programming — strictly stronger than pure-strategy dominance
    ({!Dominance}). *)

val mixed_dominates : ?eps:float -> Normal_form.t -> player:int -> int -> Mixed.strategy option
(** [mixed_dominates g ~player a] returns a mixture over [player]'s other
    actions that strictly dominates action [a] against every pure opposing
    profile, if one exists (LP margin > [eps], default 1e-9). *)

val rationalizable : Normal_form.t -> int list array
(** Iterated elimination of mixed-dominated actions until a fixed point;
    returns the surviving original action indices per player. For
    two-player games this is exactly the set of rationalizable actions. *)

val is_dominance_solvable : Normal_form.t -> bool
(** Whether a single profile survives. *)
