(** Learning dynamics: fictitious play and replicator dynamics.

    These provide approximate equilibria for games beyond the reach of the
    exact solvers and a dynamic account of how equilibrium beliefs could
    arise — one of the questions the paper raises about one-shot games. *)

type trace = {
  profile : Mixed.profile;  (** Final (empirical or population) profile. *)
  rounds : int;  (** Rounds actually executed. *)
  final_regret : float;  (** {!Nash.max_regret} of [profile]. *)
}

val fictitious_play :
  ?init:int array -> rounds:int -> Normal_form.t -> trace
(** Discrete fictitious play: each round every player best-responds to the
    empirical mixture of the others' past actions (ties broken by lowest
    index). [init] is the first round's profile (default all-0). The
    returned profile is the empirical action frequency per player. *)

val replicator :
  ?init:Mixed.profile -> ?dt:float -> rounds:int -> Normal_form.t -> trace
(** Discrete-time replicator dynamics on each player's mixture; payoffs are
    shifted to keep mixtures valid. Default [init] is uniform, default [dt]
    is 0.1. *)

val best_response_iteration :
  ?init:int array -> max_rounds:int -> Normal_form.t -> int array option
(** Iterated pure best response; [Some profile] if it reaches a pure Nash
    equilibrium fixed point within [max_rounds]. *)
