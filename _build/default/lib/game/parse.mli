(** Parsing small games from text — the CLI's input format.

    Bimatrix syntax: rows separated by [|], cells by whitespace, the two
    payoffs in a cell by a comma. Example (prisoner's dilemma):

    {v 3,3 0,5 | 5,0 1,1 v} *)

val bimatrix : string -> Normal_form.t
(** @raise Invalid_argument with a human-readable message on syntax errors
    or ragged rows. *)

val bimatrix_opt : string -> Normal_form.t option
(** [None] instead of an exception. *)
