let cd = [| "C"; "D" |]

let prisoners_dilemma =
  Normal_form.create ~action_names:[| cd; cd |] ~actions:[| 2; 2 |] (fun p ->
      match (p.(0), p.(1)) with
      | 0, 0 -> [| 3.0; 3.0 |]
      | 0, 1 -> [| -5.0; 5.0 |]
      | 1, 0 -> [| 5.0; -5.0 |]
      | _ -> [| -3.0; -3.0 |])

let prisoners_dilemma_classic =
  Normal_form.create ~action_names:[| cd; cd |] ~actions:[| 2; 2 |] (fun p ->
      match (p.(0), p.(1)) with
      | 0, 0 -> [| 3.0; 3.0 |]
      | 0, 1 -> [| 0.0; 5.0 |]
      | 1, 0 -> [| 5.0; 0.0 |]
      | _ -> [| 1.0; 1.0 |])

let coordination_01 n =
  if n < 2 then invalid_arg "Games.coordination_01: need at least 2 players";
  Normal_form.create
    ~action_names:(Array.make n [| "0"; "1" |])
    ~actions:(Array.make n 2)
    (fun p ->
      let ones = Array.fold_left ( + ) 0 p in
      if ones = 0 then Array.make n 1.0
      else if ones = 2 then Array.map (fun a -> if a = 1 then 2.0 else 0.0) p
      else Array.make n 0.0)

let bargaining n =
  if n < 2 then invalid_arg "Games.bargaining: need at least 2 players";
  Normal_form.create
    ~action_names:(Array.make n [| "stay"; "leave" |])
    ~actions:(Array.make n 2)
    (fun p ->
      let leavers = Array.fold_left ( + ) 0 p in
      if leavers = 0 then Array.make n 2.0
      else Array.map (fun a -> if a = 1 then 1.0 else 0.0) p)

let rps = [| "rock"; "paper"; "scissors" |]

(* Ex 3.3 convention: i beats j when i = j ⊕ 1 (addition mod 3). *)
let roshambo =
  Normal_form.create ~action_names:[| rps; rps |] ~actions:[| 3; 3 |] (fun p ->
      let i = p.(0) and j = p.(1) in
      let u1 = if i = (j + 1) mod 3 then 1.0 else if j = (i + 1) mod 3 then -1.0 else 0.0 in
      [| u1; -.u1 |])

let hx = [| "H"; "T" |]

let matching_pennies =
  Normal_form.create ~action_names:[| hx; hx |] ~actions:[| 2; 2 |] (fun p ->
      let u1 = if p.(0) = p.(1) then 1.0 else -1.0 in
      [| u1; -.u1 |])

let battle_of_sexes =
  Normal_form.create
    ~action_names:[| [| "opera"; "football" |]; [| "opera"; "football" |] |]
    ~actions:[| 2; 2 |]
    (fun p ->
      match (p.(0), p.(1)) with
      | 0, 0 -> [| 2.0; 1.0 |]
      | 1, 1 -> [| 1.0; 2.0 |]
      | _ -> [| 0.0; 0.0 |])

let stag_hunt =
  Normal_form.create
    ~action_names:[| [| "stag"; "hare" |]; [| "stag"; "hare" |] |]
    ~actions:[| 2; 2 |]
    (fun p ->
      match (p.(0), p.(1)) with
      | 0, 0 -> [| 4.0; 4.0 |]
      | 0, 1 -> [| 0.0; 3.0 |]
      | 1, 0 -> [| 3.0; 0.0 |]
      | _ -> [| 3.0; 3.0 |])

let chicken =
  Normal_form.create
    ~action_names:[| [| "dare"; "chicken" |]; [| "dare"; "chicken" |] |]
    ~actions:[| 2; 2 |]
    (fun p ->
      match (p.(0), p.(1)) with
      | 0, 0 -> [| 0.0; 0.0 |]
      | 0, 1 -> [| 7.0; 2.0 |]
      | 1, 0 -> [| 2.0; 7.0 |]
      | _ -> [| 6.0; 6.0 |])
