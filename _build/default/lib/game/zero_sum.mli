(** Two-player zero-sum games and adversarial values.

    The zero-sum value underpins punishment strategies: the paper's
    (k+t)-punishment machinery needs, for each player, the worst payoff the
    rest of the players can force — a zero-sum game between that player and
    the (correlated) coalition of everyone else. *)

val value : Normal_form.t -> (float * Mixed.strategy * Mixed.strategy) option
(** For a two-player zero-sum game, [(v, row, col)]: the game value for the
    row player and optimal (maxmin / minmax) mixed strategies, via linear
    programming. [None] if the game is not two-player zero-sum. *)

val maxmin_pure : Normal_form.t -> player:int -> float
(** Pure security level: best over own pure actions of the worst payoff
    over all others' joint pure responses. *)

val minmax_correlated : Normal_form.t -> player:int -> float * Mixed.strategy
(** The lowest expected payoff the other players, deviating jointly and with
    correlation, can force on [player] when [player] best-responds; returns
    that value and a maxmin mixed strategy for [player]. Computed as the LP
    value of the zero-sum game between [player] (rows) and the joint action
    space of everyone else (columns). This is the punishment level used by
    the mediator feasibility analysis. *)
