type strategy = float array
type profile = strategy array

let pure ~num_actions a =
  if a < 0 || a >= num_actions then invalid_arg "Mixed.pure: action out of range";
  Array.init num_actions (fun i -> if i = a then 1.0 else 0.0)

let uniform n =
  if n <= 0 then invalid_arg "Mixed.uniform: no actions";
  Array.make n (1.0 /. float_of_int n)

let of_weights w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 || Array.exists (fun x -> x < 0.0) w then
    invalid_arg "Mixed.of_weights: invalid weights";
  Array.map (fun x -> x /. total) w

let is_valid ?(eps = 1e-6) s =
  Array.for_all (fun p -> p >= -.eps) s
  && Float.abs (Array.fold_left ( +. ) 0.0 s -. 1.0) <= eps

let pure_profile g pure_acts =
  Array.init (Normal_form.n_players g) (fun i ->
      pure ~num_actions:(Normal_form.num_actions g i) pure_acts.(i))

let uniform_profile g =
  Array.init (Normal_form.n_players g) (fun i -> uniform (Normal_form.num_actions g i))

let prob_of_profile prof p =
  let acc = ref 1.0 in
  Array.iteri (fun i a -> acc := !acc *. prof.(i).(a)) p;
  !acc

let expected_payoff g prof i =
  let acc = ref 0.0 in
  Normal_form.iter_profiles g (fun p ->
      let pr = prob_of_profile prof p in
      if pr > 0.0 then acc := !acc +. (pr *. Normal_form.payoff g p i));
  !acc

let expected_payoffs g prof =
  Array.init (Normal_form.n_players g) (expected_payoff g prof)

let expected_payoff_vs_pure g prof ~player ~action =
  let deviated = Array.copy prof in
  deviated.(player) <- pure ~num_actions:(Normal_form.num_actions g player) action;
  expected_payoff g deviated player

let support ?(eps = 1e-9) s =
  let acc = ref [] in
  Array.iteri (fun i p -> if p > eps then acc := i :: !acc) s;
  List.rev !acc

let outcome_dist g prof =
  let pairs = ref [] in
  Normal_form.iter_profiles g (fun p ->
      let pr = prob_of_profile prof p in
      if pr > 0.0 then pairs := (Array.copy p, pr) :: !pairs);
  Bn_util.Dist.of_list !pairs

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun sa sb ->
         Array.length sa = Array.length sb
         && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) sa sb)
       a b

let pp_strategy ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") s)))

let pp_profile ppf prof =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_strategy)
    (Array.to_list prof)
