lib/game/parse.mli: Normal_form
