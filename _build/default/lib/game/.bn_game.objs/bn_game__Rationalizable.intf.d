lib/game/rationalizable.mli: Mixed Normal_form
