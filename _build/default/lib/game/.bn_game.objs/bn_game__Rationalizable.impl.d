lib/game/rationalizable.ml: Array Bn_lp Bn_util Float Fun List Normal_form
