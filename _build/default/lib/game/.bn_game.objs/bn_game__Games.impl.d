lib/game/games.ml: Array Normal_form
