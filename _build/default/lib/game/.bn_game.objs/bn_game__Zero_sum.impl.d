lib/game/zero_sum.ml: Array Bn_lp Bn_util List Mixed Normal_form Simplex
