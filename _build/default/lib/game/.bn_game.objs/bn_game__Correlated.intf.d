lib/game/correlated.mli: Bn_util Mixed Normal_form
