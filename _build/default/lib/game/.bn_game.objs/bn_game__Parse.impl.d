lib/game/parse.ml: Array List Normal_form Printf String
