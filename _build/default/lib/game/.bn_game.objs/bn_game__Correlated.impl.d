lib/game/correlated.ml: Array Bn_lp Bn_util List Mixed Normal_form
