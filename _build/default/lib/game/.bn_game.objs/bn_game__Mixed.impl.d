lib/game/mixed.ml: Array Bn_util Float Format List Normal_form Printf String
