lib/game/normal_form.ml: Array Bn_util Float Format Printf String
