lib/game/learning.ml: Array Float Mixed Nash Normal_form
