lib/game/dominance.mli: Normal_form
