lib/game/zero_sum.mli: Mixed Normal_form
