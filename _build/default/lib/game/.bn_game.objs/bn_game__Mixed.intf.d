lib/game/mixed.mli: Bn_util Format Normal_form
