lib/game/learning.mli: Mixed Normal_form
