lib/game/games.mli: Normal_form
