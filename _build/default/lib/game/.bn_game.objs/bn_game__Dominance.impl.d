lib/game/dominance.ml: Array Bn_util Fun List Normal_form
