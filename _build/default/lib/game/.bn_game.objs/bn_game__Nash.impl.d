lib/game/nash.ml: Array Bn_util Float List Mixed Normal_form
