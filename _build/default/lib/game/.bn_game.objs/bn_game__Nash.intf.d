lib/game/nash.mli: Mixed Normal_form
