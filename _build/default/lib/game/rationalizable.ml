module Simplex = Bn_lp.Simplex

(* LP: find a mixture y over player's actions except [a] and a margin m,
   maximizing m subject to  sum_b y_b u(b, s) - u(a, s) >= m  for every
   opposing pure profile s, sum y = 1. Dominated iff optimal m > eps. The
   free margin is encoded as mplus - mminus. *)
let mixed_dominates ?(eps = 1e-9) g ~player a =
  let own = Normal_form.num_actions g player in
  let others = List.init own (fun b -> b) |> List.filter (fun b -> b <> a) in
  let k = List.length others in
  if k = 0 then None
  else begin
    let dims = Normal_form.actions g in
    let opposing_dims = Array.copy dims in
    opposing_dims.(player) <- 1;
    let opposing = Bn_util.Combin.profiles opposing_dims in
    let nvars = k + 2 in
    let payoff b s =
      let p = Array.copy s in
      p.(player) <- b;
      Normal_form.payoff g p player
    in
    let rows =
      List.map
        (fun s ->
          Simplex.ge
            (Array.init nvars (fun c ->
                 if c < k then payoff (List.nth others c) s -. payoff a s
                 else if c = k then -1.0
                 else 1.0))
            0.0)
        opposing
    in
    let sum_row = Simplex.eq (Array.init nvars (fun c -> if c < k then 1.0 else 0.0)) 1.0 in
    let objective = Array.init nvars (fun c -> if c = k then 1.0 else if c = k + 1 then -1.0 else 0.0) in
    match Simplex.maximize objective (sum_row :: rows) with
    | Simplex.Optimal { solution; value } when value > eps ->
      let mix = Array.make own 0.0 in
      List.iteri (fun idx b -> mix.(b) <- Float.max 0.0 solution.(idx)) others;
      let total = Array.fold_left ( +. ) 0.0 mix in
      Some (Array.map (fun x -> x /. total) mix)
    | Simplex.Optimal _ | Simplex.Infeasible | Simplex.Unbounded -> None
  end

(* Restrict the game to surviving actions, preserving original indices via
   the mapping arrays. *)
let restrict g surviving =
  let n = Normal_form.n_players g in
  let arr = Array.map Array.of_list surviving in
  Normal_form.create
    ~actions:(Array.map Array.length arr)
    (fun p ->
      let original = Array.init n (fun i -> arr.(i).(p.(i))) in
      Normal_form.payoff_vector g original)

let rationalizable g =
  let n = Normal_form.n_players g in
  let surviving = Array.init n (fun i -> List.init (Normal_form.num_actions g i) Fun.id) in
  let changed = ref true in
  while !changed do
    changed := false;
    let current = restrict g surviving in
    for i = 0 to n - 1 do
      if List.length surviving.(i) > 1 then begin
        let doomed = ref [] in
        List.iteri
          (fun local _original ->
            if mixed_dominates current ~player:i local <> None then doomed := local :: !doomed)
          surviving.(i);
        match !doomed with
        | [] -> ()
        | local :: _ ->
          (* Remove one action per pass to keep the reduction well-founded. *)
          surviving.(i) <- List.filteri (fun idx _ -> idx <> local) surviving.(i);
          changed := true
      end
    done
  done;
  surviving

let is_dominance_solvable g =
  Array.for_all (fun s -> List.length s = 1) (rationalizable g)
