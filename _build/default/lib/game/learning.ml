type trace = { profile : Mixed.profile; rounds : int; final_regret : float }

let fictitious_play ?init ~rounds g =
  let n = Normal_form.n_players g in
  let counts = Array.init n (fun i -> Array.make (Normal_form.num_actions g i) 0.0) in
  let current =
    match init with
    | Some p -> Array.copy p
    | None -> Array.make n 0
  in
  for _ = 1 to rounds do
    Array.iteri (fun i a -> counts.(i).(a) <- counts.(i).(a) +. 1.0) current;
    let empirical = Array.map Mixed.of_weights counts in
    for i = 0 to n - 1 do
      match Nash.pure_best_responses g empirical ~player:i with
      | [] -> ()
      | a :: _ -> current.(i) <- a
    done
  done;
  let profile = Array.map Mixed.of_weights counts in
  { profile; rounds; final_regret = Nash.max_regret g profile }

let replicator ?init ?(dt = 0.1) ~rounds g =
  let n = Normal_form.n_players g in
  let prof =
    match init with
    | Some p -> Array.map Array.copy p
    | None -> Array.map Array.copy (Mixed.uniform_profile g)
  in
  for _ = 1 to rounds do
    let updated =
      Array.init n (fun i ->
          let m = Normal_form.num_actions g i in
          let avg = Mixed.expected_payoff g prof i in
          let fitness =
            Array.init m (fun a -> Mixed.expected_payoff_vs_pure g prof ~player:i ~action:a)
          in
          let raw =
            Array.init m (fun a ->
                Float.max 1e-12 (prof.(i).(a) *. (1.0 +. (dt *. (fitness.(a) -. avg)))))
          in
          Mixed.of_weights raw)
    in
    Array.blit updated 0 prof 0 n
  done;
  { profile = prof; rounds; final_regret = Nash.max_regret g prof }

let best_response_iteration ?init ~max_rounds g =
  let n = Normal_form.n_players g in
  let current = match init with Some p -> Array.copy p | None -> Array.make n 0 in
  let rec go round =
    if Nash.is_pure_nash g current then Some (Array.copy current)
    else if round >= max_rounds then None
    else begin
      let moved = ref false in
      for i = 0 to n - 1 do
        if not !moved then begin
          let prof = Mixed.pure_profile g current in
          let best = Nash.best_response_value g prof ~player:i in
          let own = Mixed.expected_payoff g prof i in
          if best -. own > 1e-9 then begin
            (match Nash.pure_best_responses g prof ~player:i with
            | [] -> ()
            | a :: _ -> current.(i) <- a);
            moved := true
          end
        end
      done;
      if !moved then go (round + 1) else Some (Array.copy current)
    end
  in
  go 0
