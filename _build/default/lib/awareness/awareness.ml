module Extensive = Bn_extensive.Extensive

type t = {
  games : (string * Extensive.t) list;
  modeler : string;
  f : game:string -> info:string -> string * string;
}

let find_game t name =
  match List.assoc_opt name t.games with
  | Some g -> g
  | None -> invalid_arg ("Awareness: unknown game " ^ name)

(* All (info set, mover, move names) triples of a game. *)
let info_sets_with_players g =
  List.concat_map
    (fun player ->
      List.map (fun (info, moves) -> (info, player, moves)) (Extensive.info_sets g ~player))
    (List.init (Extensive.n_players g) Fun.id)

let create ~games ~modeler ~f =
  if not (List.mem_assoc modeler games) then
    invalid_arg "Awareness.create: modeler game not in collection";
  let t = { games; modeler; f } in
  (* Validate F on every information set of every game. *)
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun (info, _player, moves) ->
          let bg_name, binfo = f ~game:gname ~info in
          let bg = find_game t bg_name in
          let believed_sets = info_sets_with_players bg in
          match List.find_opt (fun (i, _, _) -> i = binfo) believed_sets with
          | None ->
            invalid_arg
              (Printf.sprintf "Awareness.create: F(%s,%s) -> (%s,%s) dangling" gname info
                 bg_name binfo)
          | Some (_, _, bmoves) ->
            if not (List.for_all (fun m -> List.mem m moves) bmoves) then
              invalid_arg
                (Printf.sprintf
                   "Awareness.create: believed moves at F(%s,%s) not available at the node"
                   gname info))
        (info_sets_with_players g))
    games;
  t

let games t = t.games
let modeler t = t.modeler

let required_pairs t =
  let acc = ref [] in
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun (info, player, _) ->
          let bg, _ = t.f ~game:gname ~info in
          if not (List.mem (player, bg) !acc) then acc := (player, bg) :: !acc)
        (info_sets_with_players g))
    t.games;
  List.rev !acc

type profile = ((int * string) * Extensive.behavioral) list

(* Build, for game [gname], the per-player behavioral strategies induced by
   the generalized profile through F: at info set I of player i, play
   σ_{(i, F(gname, I).game)} at information set F(gname, I).info. *)
let induced_strategies t ~game:gname profile =
  let g = find_game t gname in
  Array.init (Extensive.n_players g) (fun player ->
      List.map
        (fun (info, _moves) ->
          let bg, binfo = t.f ~game:gname ~info in
          match List.assoc_opt (player, bg) profile with
          | None ->
            invalid_arg
              (Printf.sprintf "Awareness: profile missing pair (player %d, %s)" player bg)
          | Some behavioral -> (
            match List.assoc_opt binfo behavioral with
            | Some dist -> (info, dist)
            | None ->
              invalid_arg
                (Printf.sprintf "Awareness: strategy for (%d,%s) missing info set %s" player
                   bg binfo)))
        (Extensive.info_sets g ~player))

let expected_payoffs t ~game profile =
  let g = find_game t game in
  Extensive.expected_payoffs g (induced_strategies t ~game profile)

(* Replace the entry for [pair] in the profile. *)
let override profile pair strategy = (pair, strategy) :: List.remove_assoc pair profile

(* Pure local strategies available to a pair (player, game): one move per
   information set the player owns in that game. *)
let local_pure_strategies t ~player ~game =
  let g = find_game t game in
  Extensive.pure_strategies g ~player

let is_generalized_nash ?(eps = 1e-9) t profile =
  List.for_all
    (fun (player, gname) ->
      let base = (expected_payoffs t ~game:gname profile).(player) in
      List.for_all
        (fun pure ->
          let deviated = override profile (player, gname) (Extensive.behavioral_of_pure pure) in
          (expected_payoffs t ~game:gname deviated).(player) <= base +. eps)
        (local_pure_strategies t ~player ~game:gname))
    (required_pairs t)

let pure_generalized_equilibria t =
  let pairs = required_pairs t in
  let rec assign = function
    | [] -> [ [] ]
    | (player, gname) :: rest ->
      let tails = assign rest in
      List.concat_map
        (fun pure ->
          List.map
            (fun tail -> (((player, gname), Extensive.behavioral_of_pure pure)) :: tail)
            tails)
        (local_pure_strategies t ~player ~game:gname)
  in
  List.filter (is_generalized_nash t) (assign pairs)

let canonical g =
  let name = "canonical" in
  create ~games:[ (name, g) ] ~modeler:name ~f:(fun ~game:_ ~info -> (name, info))

let embed_canonical g strategies =
  List.concat
    (List.init (Extensive.n_players g) (fun player -> [ ((player, "canonical"), strategies.(player)) ]))
