lib/awareness/awareness.ml: Array Bn_extensive Fun List Printf
