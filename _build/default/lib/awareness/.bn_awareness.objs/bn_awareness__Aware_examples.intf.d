lib/awareness/aware_examples.mli: Awareness Bn_extensive
