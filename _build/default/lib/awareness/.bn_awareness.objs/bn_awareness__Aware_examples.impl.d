lib/awareness/aware_examples.ml: Array Awareness Bn_extensive Bn_game List Printf
