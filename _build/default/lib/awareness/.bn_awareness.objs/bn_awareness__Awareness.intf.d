lib/awareness/awareness.mli: Bn_extensive
