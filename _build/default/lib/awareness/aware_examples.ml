module Extensive = Bn_extensive.Extensive
open Extensive

let a_down = [| 1.0; 1.0 |]
let b_down = [| 2.0; 2.0 |]
let b_across = [| 0.0; 0.0 |]

let b_node info moves = Decision { player = 1; info; moves }

let full_b info =
  b_node info [ ("down_B", Terminal b_down); ("across_B", Terminal b_across) ]

let unaware_b info = b_node info [ ("across_B", Terminal b_across) ]

let a_node info continuation =
  Decision
    { player = 0; info; moves = [ ("down_A", Terminal a_down); ("across_A", continuation) ] }

let underlying = create ~n_players:2 (a_node "A" (full_b "B"))

let game_a ~p =
  create ~n_players:2
    (Chance
       [
         ("aware", 1.0 -. p, a_node "A.1" (full_b "B.1"));
         ("unaware", p, a_node "A.1" (unaware_b "B.2"));
       ])

let game_b = create ~n_players:2 (a_node "A.3" (unaware_b "B.3"))

let with_awareness ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Aware_examples.with_awareness: p in [0,1]";
  let f ~game ~info =
    match (game, info) with
    | "modeler", "A" -> ("gameA", "A.1")
    | "modeler", "B" -> ("modeler", "B")
    | "gameA", "A.1" -> ("gameA", "A.1")
    | "gameA", "B.1" -> ("modeler", "B")
    | "gameA", "B.2" -> ("gameB", "B.3")
    | "gameB", "A.3" -> ("gameB", "A.3")
    | "gameB", "B.3" -> ("gameB", "B.3")
    | g, i -> invalid_arg (Printf.sprintf "Aware_examples: F undefined at (%s,%s)" g i)
  in
  Awareness.create
    ~games:[ ("modeler", underlying); ("gameA", game_a ~p); ("gameB", game_b) ]
    ~modeler:"modeler" ~f

let generalized_equilibria ~p = Awareness.pure_generalized_equilibria (with_awareness ~p)

let modeler_outcome ~p profile =
  Awareness.expected_payoffs (with_awareness ~p) ~game:"modeler" profile

let underlying_nash_profiles () =
  let game, strategies = Extensive.to_normal_form underlying in
  let move_of pure info = List.assoc info pure in
  List.filter_map
    (fun profile ->
      if Bn_game.Nash.is_pure_nash game profile then begin
        let pa = List.nth strategies.(0) profile.(0) in
        let pb = List.nth strategies.(1) profile.(1) in
        Some (move_of pa "A", move_of pb "B")
      end
      else None)
    (Bn_game.Normal_form.profiles game)

(* Awareness of unawareness: the "new technology" game. *)

let modeler_war =
  create ~n_players:2
    (Decision
       {
         player = 0;
         info = "A.war";
         moves =
           [
             ("peace", Terminal [| 1.0; 1.0 |]);
             ( "attack",
               Decision
                 {
                   player = 1;
                   info = "B.war";
                   moves =
                     [
                       ("surrender", Terminal [| 3.0; -1.0 |]);
                       ("secret_weapon", Terminal [| -4.0; 4.0 |]);
                     ];
                 } );
           ];
       })

let subjective_war ~estimate =
  create ~n_players:2
    (Decision
       {
         player = 0;
         info = "A.war";
         moves =
           [
             ("peace", Terminal [| 1.0; 1.0 |]);
             ( "attack",
               Decision
                 {
                   player = 1;
                   info = "B.war.subjective";
                   moves =
                     [
                       ("surrender", Terminal [| 3.0; -1.0 |]);
                       (* Virtual move: A knows B has *some* unknown option;
                          she evaluates the continuation at [estimate]. *)
                       ("virtual", Terminal [| estimate; 2.0 |]);
                     ];
                 } );
           ];
       })

let virtual_move_game ~estimate =
  (* The modeler's game must expose the same move names at B's node as the
     believed game, so the virtual move is modelled as a renaming: the
     modeler game's B-node offers both concrete moves, and F maps A's view
     to the subjective game where the unknown move is virtual. B itself is
     fully aware. *)
  let f ~game ~info =
    match (game, info) with
    | "modeler", "A.war" -> ("gameA", "A.war")
    | "modeler", "B.war" -> ("modeler", "B.war")
    | "gameA", "A.war" -> ("gameA", "A.war")
    | "gameA", "B.war.subjective" -> ("gameA", "B.war.subjective")
    | g, i -> invalid_arg (Printf.sprintf "virtual_move_game: F undefined at (%s,%s)" g i)
  in
  Awareness.create
    ~games:[ ("modeler", modeler_war); ("gameA", subjective_war ~estimate) ]
    ~modeler:"modeler" ~f

let virtual_attack_utility ~estimate =
  (* B (in A's subjective game) best-responds: surrender (−1) vs virtual
     (2) → virtual. So attacking yields the estimate; peace yields 1. *)
  (estimate, 1.0)
