(** Games with awareness and generalized Nash equilibrium (paper §4,
    following Halpern–Rêgo 2006).

    A game with awareness based on an underlying extensive game is a tuple
    [(G, Γ^m, F)]:

    - [G] is a set of {e augmented games} — extensive games (here with
      nature moves encoding uncertainty about awareness levels) describing
      the game from some subjective point of view;
    - [Γ^m ∈ G] is the modeler's game — the objective description;
    - [F] maps each (augmented game, information set of the mover) to the
      pair (augmented game the mover believes is being played, its
      information set there).

    A {e generalized strategy profile} assigns a behavioral strategy to
    each pair (player [i], augmented game [Γ'] that [i] may believe is the
    true game). Play at a node with information set [I] in game [Γ+] is
    given by the strategy of the pair [F(Γ+, I)] — so a player acts the
    same way wherever its subjective view is the same.

    A profile is a {e generalized Nash equilibrium} if for every pair
    [(i, Γ')] in the domain, [σ_{i,Γ'}] maximizes [i]'s expected payoff
    {e computed in Γ'} holding all other pairs fixed. Every game with
    awareness has one (Halpern–Rêgo); for the finite examples here,
    {!pure_generalized_equilibria} finds them exhaustively.

    Awareness of unawareness is modelled with {e virtual moves}: subjective
    games may contain moves leading to terminals whose payoffs encode the
    player's evaluation of the unknown continuation — no extra machinery is
    required. *)

type t

val create :
  games:(string * Bn_extensive.Extensive.t) list ->
  modeler:string ->
  f:(game:string -> info:string -> string * string) ->
  t
(** Validates: the modeler's game exists; [f] maps every (game,
    information-set) pair of a mover to an existing pair whose move list is
    a superset-compatible subset (the believed moves must all exist at the
    concrete node).
    @raise Invalid_argument on dangling references. *)

val games : t -> (string * Bn_extensive.Extensive.t) list
val modeler : t -> string

val required_pairs : t -> (int * string) list
(** All (player, believed game) pairs reachable through [F] — the domain of
    a generalized strategy profile. *)

type profile = ((int * string) * Bn_extensive.Extensive.behavioral) list
(** Generalized strategy profile, keyed by (player, game name). *)

val expected_payoffs : t -> game:string -> profile -> float array
(** Payoffs of the given augmented game when every node is played according
    to the profile entry selected by [F]. *)

val is_generalized_nash : ?eps:float -> t -> profile -> bool
(** Best-response check at every pair in {!required_pairs}. *)

val pure_generalized_equilibria : t -> profile list
(** Exhaustive search over pure generalized profiles. Exponential; for the
    small augmented games of the paper's examples. *)

val canonical : Bn_extensive.Extensive.t -> t
(** The canonical representation of a standard game as a game with
    awareness: [G = {Γ^m}], [F] the identity. A profile is a Nash
    equilibrium of the underlying game iff its obvious embedding is a
    generalized Nash equilibrium of the canonical representation
    (property-tested in the suite). *)

val embed_canonical : Bn_extensive.Extensive.t -> Bn_extensive.Extensive.behavioral array -> profile
(** The embedding used by the canonical-representation theorem. *)
