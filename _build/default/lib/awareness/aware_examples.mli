(** The paper's §4 running example (Figures 1–3) and an
    awareness-of-unawareness example with virtual moves.

    Underlying game (Figure 1): A moves [down_A] (payoffs (1,1)) or
    [across_A]; then B moves [down_B] ((2,2)) or [across_B] ((0,0)).
    (across_A, down_B) is a Nash equilibrium, but if A is unaware of
    [down_B] then a rational A plays [down_A].

    The game with awareness uses three augmented games: the modeler's game
    Γ^m, A's subjective game Γ^A (nature first decides, with probability
    [p], that B is unaware of [down_B] — Figure 2), and Γ^B, the game a
    [down_B]-unaware B believes is being played (Figure 3). *)

val underlying : Bn_extensive.Extensive.t
(** Figure 1; player 0 = A, player 1 = B. *)

val with_awareness : p:float -> Awareness.t
(** The game with awareness [(G, Γ^m, F)] of the example, where [p] is A's
    probability that B is unaware of [down_B]. Game names: ["modeler"],
    ["gameA"], ["gameB"]. *)

val generalized_equilibria : p:float -> Awareness.profile list
(** All pure generalized Nash equilibria. For p < 1/2 A plays [across_A]
    in its subjective game; for p > 1/2 A plays [down_A]. *)

val modeler_outcome : p:float -> Awareness.profile -> float array
(** Payoffs of the modeler's game under a generalized profile — what an
    omniscient observer sees happen. *)

val underlying_nash_profiles : unit -> (string * string) list
(** The pure Nash equilibria of the underlying game (Figure 1), as
    (A's move, B's move) — for the contrast row of experiment E9. *)

(** {1 Awareness of unawareness} *)

val virtual_move_game : estimate:float -> Awareness.t
(** A two-player "new technology" game. The modeler's game gives B a real
    move [secret_weapon] (payoffs (−4, 4) after A attacks). A cannot
    conceive of the move but is aware she may be unaware: her subjective
    game ["gameA"] replaces it with a {e virtual move} whose terminal
    payoff for A is her [estimate]. If [estimate] is low enough, A prefers
    peace — the paper's "this may encourage peace overtures". *)

val virtual_attack_utility : estimate:float -> float * float
(** A's subjective utilities of (attack, peace) in the virtual-move game —
    attack is optimal iff the estimate is high. *)
