lib/byzantine/dolev_strong.ml: Array Bn_crypto Bn_dist_sim Fun Hashtbl List Printf
