lib/byzantine/eig.ml: Array Bn_dist_sim Bn_util Fun Hashtbl List Option
