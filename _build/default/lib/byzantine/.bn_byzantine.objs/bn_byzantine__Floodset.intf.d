lib/byzantine/floodset.mli: Bn_dist_sim Bn_util
