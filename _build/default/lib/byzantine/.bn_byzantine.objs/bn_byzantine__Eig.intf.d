lib/byzantine/eig.mli: Bn_dist_sim Bn_util
