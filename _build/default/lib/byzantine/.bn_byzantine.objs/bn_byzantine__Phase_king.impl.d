lib/byzantine/phase_king.ml: Array Bn_dist_sim Fun List
