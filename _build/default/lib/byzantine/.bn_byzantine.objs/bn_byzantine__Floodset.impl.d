lib/byzantine/floodset.ml: Array Bn_dist_sim Bn_util Fun List
