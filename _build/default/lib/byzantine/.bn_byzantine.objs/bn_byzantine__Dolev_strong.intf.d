lib/byzantine/dolev_strong.mli: Bn_crypto Bn_dist_sim
