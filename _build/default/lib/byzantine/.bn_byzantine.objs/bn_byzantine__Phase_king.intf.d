lib/byzantine/phase_king.mli: Bn_dist_sim
