(* Backward-induction paradoxes (§1's complaint about Nash reasoning).

   The paper opens by noting that the backward-induction outcome of
   finitely repeated prisoner's dilemma is "neither normatively nor
   descriptively reasonable". The same pathology in tree form: centipede,
   ultimatum and trust. This example solves each, exhibits the
   non-credible Nash equilibria that subgame perfection kills, and prints
   a Graphviz rendering of the smallest tree.

   Run with: dune exec examples/induction_paradoxes.exe *)

module B = Beyond_nash
module E = B.Extensive
module C = B.Canned

let () =
  (* Centipede: SPE takes at once; cooperation pays both far more. *)
  let rounds = 6 in
  let centipede = C.centipede ~rounds in
  let _, spe_value = E.backward_induction centipede in
  let pass_all player =
    E.behavioral_of_pure (List.map (fun (info, _) -> (info, "pass")) (E.info_sets centipede ~player))
  in
  let coop = E.expected_payoffs centipede [| pass_all 0; pass_all 1 |] in
  Printf.printf
    "centipede(%d): backward induction gives (%.0f, %.0f); passing throughout gives (%.0f, %.0f)\n"
    rounds spe_value.(0) spe_value.(1) coop.(0) coop.(1);

  (* Ultimatum: SPE gives the responder nothing; a "reject low offers"
     threat supports a fair split as plain Nash. *)
  let pie = 10 in
  let ultimatum = C.ultimatum ~pie in
  let _, u = E.backward_induction ultimatum in
  Printf.printf "ultimatum(%d): subgame-perfect proposer keeps %.0f of %d\n" pie u.(0) pie;
  let fair_responder =
    E.behavioral_of_pure
      (List.map
         (fun (info, _) ->
           let k = int_of_string (String.sub info 5 (String.length info - 5)) in
           (info, if k >= pie / 2 then "accept" else "reject"))
         (E.info_sets ultimatum ~player:1))
  in
  let fair_proposer = E.behavioral_of_pure [ ("proposer", Printf.sprintf "offer-%d" (pie / 2)) ] in
  Printf.printf "  yet the fair-split profile is a Nash equilibrium: %b (non-credible threat)\n"
    (E.is_nash ultimatum [| fair_proposer; fair_responder |]);

  (* Trust: unravels the same way. *)
  let trust = C.trust ~multiplier:6 in
  let profile, v = E.backward_induction trust in
  Printf.printf "trust(x6): SPE is %s/%s with payoffs (%.0f, %.0f); invest+share would give (3, 4)\n"
    (List.assoc "investor" profile.(0))
    (List.assoc "trustee" profile.(1))
    v.(0) v.(1);

  (* The machinery that rescues cooperation in the paper: §3's memory
     costs (see examples/costly_computation.exe) — here, the tree itself. *)
  print_newline ();
  print_endline "Graphviz of the 2-round centipede (pipe into `dot -Tsvg`):";
  print_endline (E.to_dot ~title:"centipede2" C.take_the_money)
