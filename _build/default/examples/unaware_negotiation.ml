(* Games with awareness (§4): a licensing negotiation.

   A startup (S) can accept a buyout or push for a licensing deal. The
   incumbent (I) can then cooperate or litigate — but S may be unaware
   that I holds a patent that makes litigation devastating. We model S's
   uncertainty about its own awareness with an augmented-game collection
   and compute generalized Nash equilibria; then the virtual-move variant
   where S knows there is *something* it cannot conceive.

   Run with: dune exec examples/unaware_negotiation.exe *)

module B = Beyond_nash
module E = B.Extensive
module A = B.Awareness

(* Underlying game: S: accept -> (2,2); push -> I: cooperate (4,3) or
   litigate (-3,5). Litigation is I's best response, so an aware S accepts;
   an S unaware of litigation pushes, expecting (4,3). *)
let full_i info =
  E.Decision
    {
      player = 1;
      info;
      moves = [ ("cooperate", E.Terminal [| 4.0; 3.0 |]); ("litigate", E.Terminal [| -3.0; 5.0 |]) ];
    }

let naive_i info =
  E.Decision { player = 1; info; moves = [ ("cooperate", E.Terminal [| 4.0; 3.0 |]) ] }

let s_node info continuation =
  E.Decision
    { player = 0; info; moves = [ ("accept", E.Terminal [| 2.0; 2.0 |]); ("push", continuation) ] }

let modeler = E.create ~n_players:2 (s_node "S" (full_i "I"))
let startup_view = E.create ~n_players:2 (s_node "S.naive" (naive_i "I.naive"))

let unaware_startup =
  A.create
    ~games:[ ("modeler", modeler); ("naive", startup_view) ]
    ~modeler:"modeler"
    ~f:(fun ~game ~info ->
      match (game, info) with
      | "modeler", "S" -> ("naive", "S.naive") (* S believes the naive game *)
      | "modeler", "I" -> ("modeler", "I") (* I is fully aware *)
      | "naive", "S.naive" -> ("naive", "S.naive")
      | "naive", "I.naive" -> ("naive", "I.naive")
      | g, i -> invalid_arg (Printf.sprintf "F undefined at (%s,%s)" g i))

let top_move profile pair info =
  match List.assoc_opt pair profile with
  | Some beh -> (
    match List.assoc_opt info beh with
    | Some dist -> fst (List.hd (List.sort (fun (_, a) (_, b) -> compare b a) dist))
    | None -> "?")
  | None -> "?"

let () =
  print_endline "== unaware startup (S does not conceive of litigation) ==";
  List.iter
    (fun prof ->
      let outcome = A.expected_payoffs unaware_startup ~game:"modeler" prof in
      Printf.printf "GNE: S plays %s, I plays %s -> actual outcome (%.1f, %.1f)\n"
        (top_move prof (0, "naive") "S.naive")
        (top_move prof (1, "modeler") "I")
        outcome.(0) outcome.(1))
    (A.pure_generalized_equilibria unaware_startup);
  print_endline
    "the unaware startup pushes and gets burned: generalized equilibrium predicts the\n\
     exploitation that Nash analysis of the full game (where S would accept) misses.\n";

  (* Awareness of unawareness: S cannot conceive of the patent but knows
     incumbents usually have *some* countermove; it values that unknown
     continuation at [estimate]. *)
  print_endline "== startup aware of its unawareness (virtual move) ==";
  List.iter
    (fun estimate ->
      let subjective =
        E.create ~n_players:2
          (s_node "S.naive"
             (E.Decision
                {
                  player = 1;
                  info = "I.naive";
                  moves =
                    [
                      ("cooperate", E.Terminal [| 4.0; 3.0 |]);
                      ("virtual", E.Terminal [| estimate; 4.0 |]);
                    ];
                }))
      in
      let g =
        A.create
          ~games:[ ("modeler", modeler); ("naive", subjective) ]
          ~modeler:"modeler"
          ~f:(fun ~game ~info ->
            match (game, info) with
            | "modeler", "S" -> ("naive", "S.naive")
            | "modeler", "I" -> ("modeler", "I")
            | "naive", "S.naive" -> ("naive", "S.naive")
            | "naive", "I.naive" -> ("naive", "I.naive")
            | gm, i -> invalid_arg (Printf.sprintf "F undefined at (%s,%s)" gm i))
      in
      let moves =
        List.sort_uniq compare
          (List.map
             (fun prof -> top_move prof (0, "naive") "S.naive")
             (A.pure_generalized_equilibria g))
      in
      Printf.printf "estimate of the unknown countermove = %+.1f: S plays %s\n" estimate
        (String.concat "/" moves))
    [ -3.0; 0.0; 3.0 ];
  print_endline
    "a pessimistic estimate of the unconceived move makes S accept the buyout — awareness\n\
     of unawareness changes behaviour exactly as the paper's war example suggests."
