(* Quickstart: build a game, solve it, and ask the questions the paper says
   Nash equilibrium cannot answer — all through the public API.

   Run with: dune exec examples/quickstart.exe *)

module B = Beyond_nash

let () =
  (* 1. A classical game: prisoner's dilemma (the paper's §3 table). *)
  let pd = B.Games.prisoners_dilemma in
  Format.printf "Prisoner's dilemma:@.%a@." B.Normal_form.pp pd;
  let eqs = B.Nash.pure_equilibria pd in
  List.iter
    (fun p ->
      Printf.printf "pure Nash equilibrium: (%s, %s)\n"
        (B.Normal_form.action_name pd 0 p.(0))
        (B.Normal_form.action_name pd 1 p.(1)))
    eqs;

  (* 2. A mixed equilibrium, found by support enumeration. *)
  (match B.Nash.find_2p B.Games.battle_of_sexes with
  | Some prof ->
    Format.printf "battle of the sexes equilibrium: %a@." B.Mixed.pp_profile prof
  | None -> print_endline "no equilibrium?!");

  (* 3. Beyond Nash #1 — robustness (§2). The bargaining game's all-stay
     profile survives every coalition but shatters if one player leaves. *)
  let bargaining = B.Games.bargaining 4 in
  let stay = B.Mixed.pure_profile bargaining (Array.make 4 0) in
  (match B.Solution.classify bargaining stay with
  | `Robust (k, t) -> Printf.printf "bargaining all-stay is (%d,%d)-robust\n" k t
  | `Not_nash -> print_endline "not even Nash");

  (* 4. Beyond Nash #2 — computation (§3). Charging for complexity changes
     the equilibrium: roshambo loses its equilibrium entirely. *)
  let comp = B.Comp_roshambo.game () in
  Printf.printf "computational roshambo has an equilibrium: %b (classical: %b)\n"
    (B.Comp_roshambo.has_equilibrium comp)
    (B.Comp_roshambo.classical_equilibria () <> []);

  (* 5. Beyond Nash #3 — awareness (§4). Whether A dares to move across
     depends on its belief that B is unaware of the good reply. *)
  List.iter
    (fun p ->
      let eqs = B.Aware_examples.generalized_equilibria ~p in
      let outcome =
        List.fold_left
          (fun acc prof -> max acc (B.Aware_examples.modeler_outcome ~p prof).(0))
          neg_infinity eqs
      in
      Printf.printf "awareness example, p = %.2f: best equilibrium payoff for A = %.1f\n" p outcome)
    [ 0.25; 0.75 ]
