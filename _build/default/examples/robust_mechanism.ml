(* Designing for robustness (§2): a facility-sharing game.

   Five labs share a telescope. Each lab chooses to "follow" the published
   schedule or "grab" slots opportunistically. If everyone follows, all get
   a payoff of 3. A grabber steals observing time: it gains when few grab,
   and every grab degrades the follower's nights. We audit the cooperative
   profile with the solution concepts of the paper: Nash is not enough to
   trust the schedule — a pair of colluding labs or one malfunctioning
   queue can matter.

   Run with: dune exec examples/robust_mechanism.exe *)

module B = Beyond_nash

let n = 5

(* Payoffs: follower gets 3 - (number of grabbers); a grabber gets
   4 - 2*(number of other grabbers). With one grabber: grabber 4 (> 3),
   followers 2 — so "all follow" is NOT even Nash. Adding a penalty [fine]
   for grabbing (enforced by the consortium) repairs it; we sweep the fine
   and watch the robustness class improve. *)
let telescope ~fine =
  B.Normal_form.create
    ~action_names:(Array.make n [| "follow"; "grab" |])
    ~actions:(Array.make n 2)
    (fun p ->
      let grabbers = Array.fold_left ( + ) 0 p in
      Array.map
        (fun a ->
          if a = 0 then 3.0 -. float_of_int grabbers
          else 4.0 -. (2.0 *. float_of_int (grabbers - 1)) -. fine)
        p)

let () =
  let all_follow g = B.Mixed.pure_profile g (Array.make n 0) in
  let tab =
    B.Tab.create ~title:"telescope scheduling: robustness of all-follow vs fine"
      [ "fine"; "Nash"; "max k (resilience)"; "max t (immunity)" ]
  in
  List.iter
    (fun fine ->
      let g = telescope ~fine in
      let prof = all_follow g in
      B.Tab.add_row tab
        [
          B.Tab.fmt_float fine;
          string_of_bool (B.Nash.is_nash g prof);
          string_of_int (B.Robust.max_resilience g prof);
          string_of_int (B.Robust.max_immunity g prof);
        ])
    [ 0.0; 1.5; 3.0; 6.0 ];
  B.Tab.print tab;
  (* With fine = 3 the schedule is Nash and coalition-proof, but a single
     malfunctioning lab still hurts the others (not 1-immune): the paper's
     §2 message that equilibrium without fault tolerance is fragile. *)
  let g = telescope ~fine:3.0 in
  (match B.Robust.check_immunity g (all_follow g) ~t:1 with
  | B.Robust.Fails v -> Format.printf "immunity failure: %a@." B.Robust.pp_violation v
  | B.Robust.Holds -> print_endline "fully immune");
  (* Does the consortium at least hold a punishment strategy (needed by the
     mediator constructions when n <= 3k+3t)? *)
  let base = Array.make n 3.0 in
  match B.Robust.find_punishment g ~target:base ~budget:2 with
  | Some rho ->
    Printf.printf "punishment profile vs 2 deviators: [%s]\n"
      (String.concat ";" (List.map (fun a -> B.Normal_form.action_name g 0 a) (Array.to_list rho)))
  | None -> print_endline "no pure punishment profile exists"
