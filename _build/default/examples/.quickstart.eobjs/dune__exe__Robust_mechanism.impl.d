examples/robust_mechanism.ml: Array Beyond_nash Format List Printf String
