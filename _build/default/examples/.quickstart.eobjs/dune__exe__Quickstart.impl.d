examples/quickstart.ml: Array Beyond_nash Format List Printf
