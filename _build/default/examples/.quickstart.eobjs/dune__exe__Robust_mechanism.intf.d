examples/robust_mechanism.mli:
