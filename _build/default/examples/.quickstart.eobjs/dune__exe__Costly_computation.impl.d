examples/costly_computation.ml: Array Beyond_nash List Printf String
