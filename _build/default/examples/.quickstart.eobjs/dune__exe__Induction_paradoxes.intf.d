examples/induction_paradoxes.mli:
