examples/quickstart.mli:
