examples/induction_paradoxes.ml: Array Beyond_nash List Printf String
