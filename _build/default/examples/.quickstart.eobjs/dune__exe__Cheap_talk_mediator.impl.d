examples/cheap_talk_mediator.ml: Array Beyond_nash List Printf String
