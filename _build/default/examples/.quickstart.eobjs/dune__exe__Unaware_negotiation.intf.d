examples/unaware_negotiation.mli:
