examples/unaware_negotiation.ml: Array Beyond_nash List Printf String
