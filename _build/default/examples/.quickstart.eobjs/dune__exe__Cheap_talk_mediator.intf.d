examples/cheap_talk_mediator.mli:
