examples/costly_computation.mli:
