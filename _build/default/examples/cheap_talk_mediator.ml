(* Replacing a trusted mediator with cheap talk (§2).

   A commander (the general) wants n soldiers to coordinate an action that
   matches its preference. With a trusted mediator the protocol is trivial;
   this example checks, for the actual (n, k, t) at hand, what the ADGH
   characterization permits, then runs the EIG-based cheap-talk protocol
   and verifies it induces the mediator's exact outcome distribution — even
   against a corrupted soldier.

   Run with: dune exec examples/cheap_talk_mediator.exe *)

module B = Beyond_nash
module F = B.Feasibility

let () =
  let n = 4 and k = 1 and t = 1 in
  (* Step 1: consult the characterization. *)
  Printf.printf "regime (n=%d, k=%d, t=%d), bare cheap talk: %s\n" n k t
    (F.describe (F.classify ~n ~k ~t F.no_assumptions));
  Printf.printf "  (n > 3k+3t requires n >= %d; with PKI n > k+t suffices: %s)\n"
    ((3 * k) + (3 * t) + 1)
    (F.describe (F.classify ~n ~k ~t { F.no_assumptions with F.pki = true }));

  (* Step 2: the mediated benchmark. *)
  let med = B.Ba_game.mediator ~n in
  let honest = B.Mediated.honest_utilities med in
  Printf.printf "mediator benchmark: everyone gets %s; truthful reporting is an equilibrium: %b\n"
    (B.Tab.fmt_float honest.(0))
    (B.Mediated.is_truthful_equilibrium med);

  (* Step 3: cheap talk. For n=4, t=1 Byzantine agreement works (n > 3t),
     so the general's preference can be disseminated without the mediator. *)
  List.iter
    (fun general_type ->
      let o = B.Cheap_talk.generals_eig ~n ~t ~general_type () in
      Printf.printf
        "cheap talk, general prefers %d: actions %s, TV distance to mediator = %s (%d rounds, %d msgs)\n"
        general_type
        (String.concat ""
           (List.map
              (function Some a -> string_of_int a | None -> "x")
              (Array.to_list o.B.Cheap_talk.actions)))
        (B.Tab.fmt_float (B.Cheap_talk.tv_to_mediator ~n ~general_type o))
        o.B.Cheap_talk.rounds o.B.Cheap_talk.messages)
    [ 0; 1 ];

  (* Step 4: fault injection — soldier 3 is Byzantine and lies. *)
  let o = B.Cheap_talk.generals_eig ~corrupted:[ 3 ] ~n ~t ~general_type:1 () in
  Printf.printf "with corrupt soldier 3: TV distance still %s — the implementation is robust\n"
    (B.Tab.fmt_float (B.Cheap_talk.tv_to_mediator ~n ~general_type:1 o));

  (* Step 5: why the naive protocol is not an implementation. *)
  let naive = B.Cheap_talk.generals_naive ~delivered:[| 0; 0; 1; 1 |] ~n ~general_type:1 () in
  Printf.printf "naive echo under an equivocating general: TV distance %s — broken\n"
    (B.Tab.fmt_float (B.Cheap_talk.tv_to_mediator ~n ~general_type:1 naive));

  (* Step 6: the secret-sharing step used by the crypto regimes. *)
  let rng = B.Prng.create 2718 in
  let r = B.Cheap_talk.share_exchange rng ~n:8 ~k:1 ~t:2 ~secret:424242 ~corrupted:[ 6; 7 ] in
  Printf.printf
    "robust share exchange (n=8, k=1, t=2, two corrupted): every honest player reconstructed = %b\n"
    r.B.Cheap_talk.succeeded
