module B = Beyond_nash
module S = B.Scrip
module G = B.Gnutella

(* {1 Scrip} *)

let params n = S.default_params ~n

let all_standard n k = Array.make n (S.Standard k)

let test_money_conserved () =
  (* Without altruists, scrip only changes hands. *)
  let rng = B.Prng.create 1 in
  let n = 20 in
  let st = S.simulate rng (params n) ~kinds:(all_standard n 5) ~money_per_agent:2.0 in
  Alcotest.(check int) "total scrip conserved" 40 (Array.fold_left ( + ) 0 st.S.final_scrip)

let test_efficiency_inverted_u () =
  (* Efficiency rises with money, then crashes when everyone is above
     threshold and nobody volunteers (the KFH monetary crash). *)
  let run m =
    let rng = B.Prng.create 2 in
    S.efficiency (params 30) (S.simulate rng (params 30) ~kinds:(all_standard 30 5) ~money_per_agent:m)
  in
  let low = run 0.5 and mid = run 3.0 and crash = run 6.0 in
  Alcotest.(check bool) "more money helps" true (mid > low);
  Alcotest.(check bool) "too much money crashes" true (crash < 0.2)

let test_crash_mechanism () =
  (* At money >= threshold for everyone, no volunteers ever. *)
  let rng = B.Prng.create 3 in
  let st = S.simulate rng (params 10) ~kinds:(all_standard 10 3) ~money_per_agent:3.0 in
  Alcotest.(check int) "nothing served" 0 st.S.satisfied;
  Alcotest.(check bool) "all demand unserved" true (st.S.unserved > 0)

let test_altruists_raise_welfare () =
  let n = 20 in
  let run kinds =
    let rng = B.Prng.create 4 in
    let st = S.simulate rng (params n) ~kinds ~money_per_agent:1.0 in
    S.avg_utility st ~who:(fun i -> match kinds.(i) with S.Standard _ -> true | _ -> false)
  in
  let base = run (all_standard n 5) in
  let with_altruists =
    run (Array.init n (fun i -> if i < 3 then S.Altruist else S.Standard 5))
  in
  Alcotest.(check bool) "altruists help the rest" true (with_altruists > base)

let test_hoarders_drain_money () =
  (* Hoarders accumulate scrip and never spend: the money available to
     standard agents shrinks. *)
  let n = 20 in
  let rng = B.Prng.create 5 in
  let kinds = Array.init n (fun i -> if i < 4 then S.Hoarder else S.Standard 5) in
  let st = S.simulate rng (params n) ~kinds ~money_per_agent:2.0 in
  let hoarder_scrip = Array.fold_left ( + ) 0 (Array.sub st.S.final_scrip 0 4) in
  Alcotest.(check bool) "hoarders hold above initial share" true (hoarder_scrip > 8);
  Alcotest.(check bool) "standard agents starve more" true (st.S.starved > 0)

let test_stats_accounting () =
  let rng = B.Prng.create 6 in
  let st = S.simulate rng (params 10) ~kinds:(all_standard 10 5) ~money_per_agent:2.0 in
  Alcotest.(check int) "requests = satisfied + starved + unserved" st.S.requests
    (st.S.satisfied + st.S.starved + st.S.unserved)

let test_best_threshold_moderate () =
  (* The empirical best response is an interior threshold: not 1, since
     being broke starves you; and bounded. *)
  let rng = B.Prng.create 7 in
  let k, _ = S.best_threshold rng (params 30) ~others:5 ~money_per_agent:2.0
      ~candidates:[ 1; 2; 3; 5; 8; 12; 20 ]
  in
  Alcotest.(check bool) "interior threshold" true (k > 1 && k <= 20)

let scrip_utility_sign_property =
  QCheck.Test.make ~count:20 ~name:"scrip: benefit > cost makes utilities net positive overall"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let n = 10 in
      let rng = B.Prng.create seed in
      let st = S.simulate rng (params n) ~kinds:(all_standard n 4) ~money_per_agent:2.0 in
      (* Every served request adds benefit - cost = 0.8 > 0 to the total. *)
      let total = Array.fold_left ( +. ) 0.0 st.S.utilities in
      total >= 0.0)

(* {1 Gnutella} *)

let test_free_riding_shape () =
  let rng = B.Prng.create 8 in
  let s = G.simulate rng (G.default_params ~users:2000) in
  Alcotest.(check bool) "~70% free riders" true
    (s.G.free_rider_fraction > 0.55 && s.G.free_rider_fraction < 0.85);
  Alcotest.(check bool) "top 1% serves ~half" true
    (s.G.top1_response_share > 0.3 && s.G.top1_response_share < 0.8);
  Alcotest.(check bool) "load is concentrated" true (s.G.gini_load > 0.8)

let test_cost_increases_free_riding () =
  let run cost =
    let rng = B.Prng.create 9 in
    let p = { (G.default_params ~users:2000) with G.cost } in
    (G.simulate rng p).G.free_rider_fraction
  in
  Alcotest.(check bool) "higher cost, more free riding" true (run 2.0 > run 0.5)

let test_sharing_game_dominance () =
  Alcotest.(check bool) "free riding dominant for standard users" true
    (G.free_riding_equilibrium ~n:4 ~cost:1.0 ~download_value:5.0)

let test_sharing_game_with_kicks () =
  (* A user whose kick exceeds the cost shares in equilibrium. *)
  let kicks = [| 2.0; 0.0; 0.0 |] in
  let g = G.sharing_game ~n:3 ~cost:1.0 ~kicks ~download_value:5.0 in
  match B.Dominance.solves_by_dominance g with
  | Some profile ->
    Alcotest.(check int) "kicked user shares" 1 profile.(0);
    Alcotest.(check int) "standard user free rides" 0 profile.(1)
  | None -> Alcotest.fail "dominance-solvable with strict kicks"

let test_sharing_game_is_nash () =
  let kicks = [| 2.0; 0.0; 0.0 |] in
  let g = G.sharing_game ~n:3 ~cost:1.0 ~kicks ~download_value:5.0 in
  Alcotest.(check bool) "share/freeride/freeride is Nash" true
    (B.Nash.is_pure_nash g [| 1; 0; 0 |])

let gnutella_fraction_bounds_property =
  QCheck.Test.make ~count:10 ~name:"gnutella: fractions are probabilities"
    QCheck.(int_range 1 100)
    (fun seed ->
      let rng = B.Prng.create seed in
      let s = G.simulate rng (G.default_params ~users:500) in
      s.G.free_rider_fraction >= 0.0 && s.G.free_rider_fraction <= 1.0
      && s.G.top1_response_share >= 0.0
      && s.G.top1_response_share <= 1.0
      && s.G.top10_response_share >= s.G.top1_response_share -. 1e-9)

let suite =
  [
    Alcotest.test_case "scrip: money conserved" `Quick test_money_conserved;
    Alcotest.test_case "scrip: inverted U" `Slow test_efficiency_inverted_u;
    Alcotest.test_case "scrip: crash mechanism" `Quick test_crash_mechanism;
    Alcotest.test_case "scrip: altruists" `Slow test_altruists_raise_welfare;
    Alcotest.test_case "scrip: hoarders" `Quick test_hoarders_drain_money;
    Alcotest.test_case "scrip: accounting" `Quick test_stats_accounting;
    Alcotest.test_case "scrip: best threshold" `Slow test_best_threshold_moderate;
    QCheck_alcotest.to_alcotest scrip_utility_sign_property;
    Alcotest.test_case "gnutella: free-riding shape" `Quick test_free_riding_shape;
    Alcotest.test_case "gnutella: cost effect" `Quick test_cost_increases_free_riding;
    Alcotest.test_case "gnutella: dominance" `Quick test_sharing_game_dominance;
    Alcotest.test_case "gnutella: kicks" `Quick test_sharing_game_with_kicks;
    Alcotest.test_case "gnutella: Nash" `Quick test_sharing_game_is_nash;
    QCheck_alcotest.to_alcotest gnutella_fraction_bounds_property;
  ]
