module C = Beyond_nash
module F = C.Field
module P = C.Poly
module S = C.Shamir
module H = C.Hashing

let field_elt = QCheck.int_range 0 (F.p - 1)

(* {1 Field axioms} *)

let field_add_inverse =
  QCheck.Test.make ~count:200 ~name:"field: x + (-x) = 0" field_elt (fun x ->
      F.add x (F.neg x) = 0)

let field_mul_inverse =
  QCheck.Test.make ~count:200 ~name:"field: x * x^-1 = 1 (x != 0)" field_elt (fun x ->
      x = 0 || F.mul x (F.inv x) = 1)

let field_distributive =
  QCheck.Test.make ~count:200 ~name:"field: distributivity"
    QCheck.(triple field_elt field_elt field_elt)
    (fun (a, b, c) -> F.mul a (F.add b c) = F.add (F.mul a b) (F.mul a c))

let field_pow_matches_mul =
  QCheck.Test.make ~count:100 ~name:"field: pow 3 = x*x*x" field_elt (fun x ->
      F.pow x 3 = F.mul x (F.mul x x))

let test_field_of_int_negative () =
  Alcotest.(check int) "canonical negative" (F.p - 5) (F.of_int (-5))

let test_field_inv_zero () =
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (F.inv 0))

let test_field_fermat () =
  Alcotest.(check int) "a^(p-1) = 1" 1 (F.pow 123456789 (F.p - 1))

(* {1 Polynomials} *)

let test_poly_eval_horner () =
  (* 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38 *)
  Alcotest.(check int) "eval" 38 (P.eval [| 3; 2; 1 |] 5)

let test_poly_degree () =
  Alcotest.(check int) "zero poly" (-1) (P.degree [| 0; 0 |]);
  Alcotest.(check int) "trailing zeros" 1 (P.degree [| 1; 2; 0; 0 |])

let poly_add_eval =
  QCheck.Test.make ~count:100 ~name:"poly: eval(a+b) = eval a + eval b"
    QCheck.(triple (array_of_size (Gen.return 4) field_elt) (array_of_size (Gen.return 3) field_elt) field_elt)
    (fun (a, b, x) -> P.eval (P.add a b) x = F.add (P.eval a x) (P.eval b x))

let poly_mul_eval =
  QCheck.Test.make ~count:100 ~name:"poly: eval(a*b) = eval a * eval b"
    QCheck.(triple (array_of_size (Gen.return 3) field_elt) (array_of_size (Gen.return 3) field_elt) field_elt)
    (fun (a, b, x) -> P.eval (P.mul a b) x = F.mul (P.eval a x) (P.eval b x))

let poly_divmod_roundtrip =
  QCheck.Test.make ~count:100 ~name:"poly: a = q*b + r with deg r < deg b"
    QCheck.(pair (array_of_size (Gen.return 5) field_elt) (array_of_size (Gen.return 3) field_elt))
    (fun (a, b) ->
      if P.degree b < 0 then true
      else begin
        let q, r = P.divmod a b in
        P.degree r < P.degree b && P.equal a (P.add (P.mul q b) r)
      end)

let test_poly_interpolate_exact () =
  let f = [| 7; 0; 2 |] in
  (* 7 + 2x^2 *)
  let points = List.map (fun x -> (x, P.eval f x)) [ 1; 2; 3 ] in
  Alcotest.(check bool) "recovers" true (P.equal f (P.interpolate points))

let test_poly_interpolate_duplicate () =
  Alcotest.check_raises "duplicate x" (Invalid_argument "Poly.interpolate: duplicate x-coordinates")
    (fun () -> ignore (P.interpolate [ (1, 2); (1, 3) ]))

let poly_random_has_secret =
  QCheck.Test.make ~count:50 ~name:"poly: random polynomial has the secret at 0"
    QCheck.(pair (int_range 0 1000) (int_range 1 6))
    (fun (secret, degree) ->
      let rng = C.Prng.create (secret + (degree * 1000)) in
      let f = P.random rng ~degree ~secret in
      P.eval f 0 = F.of_int secret && P.degree f = degree)

(* {1 Shamir} *)

let shamir_roundtrip =
  QCheck.Test.make ~count:50 ~name:"shamir: any threshold+1 shares reconstruct"
    QCheck.(triple (int_range 0 100000) (int_range 1 4) (int_range 0 100))
    (fun (secret, threshold, seed) ->
      let n = threshold + 3 in
      let rng = C.Prng.create seed in
      let shares = S.share rng ~secret ~threshold ~n in
      (* take the first threshold+1 shares *)
      let subset = List.filteri (fun i _ -> i <= threshold) shares in
      S.reconstruct subset = F.of_int secret)

let test_shamir_invalid_threshold () =
  let rng = C.Prng.create 1 in
  Alcotest.check_raises "threshold >= n" (Invalid_argument "Shamir.share: need 0 <= threshold < n")
    (fun () -> ignore (S.share rng ~secret:1 ~threshold:5 ~n:5))

let test_shamir_consistency_check () =
  let rng = C.Prng.create 2 in
  let shares = S.share rng ~secret:42 ~threshold:2 ~n:6 in
  Alcotest.(check bool) "clean shares consistent" true (S.verify_consistent ~degree:2 shares);
  let corrupted =
    List.mapi (fun i s -> if i = 0 then { s with S.y = F.add s.S.y 1 } else s) shares
  in
  Alcotest.(check bool) "corruption detected" false (S.verify_consistent ~degree:2 corrupted)

let berlekamp_welch_property =
  QCheck.Test.make ~count:50 ~name:"shamir: Berlekamp-Welch corrects up to e errors"
    QCheck.(triple (int_range 0 100000) (int_range 1 2) (int_range 0 1000))
    (fun (secret, e, seed) ->
      let degree = 2 in
      let n = degree + (2 * e) + 1 in
      let rng = C.Prng.create seed in
      let shares = S.share rng ~secret ~threshold:degree ~n in
      let corrupted =
        List.mapi (fun i s -> if i < e then { s with S.y = F.add s.S.y (1 + (seed mod 97)) } else s) shares
      in
      S.robust_reconstruct ~degree ~max_errors:e corrupted = Some (F.of_int secret))

let test_bw_too_many_errors () =
  let rng = C.Prng.create 3 in
  let shares = S.share rng ~secret:99 ~threshold:2 ~n:7 in
  (* 3 errors but bound allows 2: decoding must not return a wrong value
     silently — either None or (unlikely here) the right value. *)
  let corrupted =
    List.mapi (fun i s -> if i < 3 then { s with S.y = F.add s.S.y 17 } else s) shares
  in
  match S.robust_reconstruct ~degree:2 ~max_errors:2 corrupted with
  | None -> ()
  | Some v -> Alcotest.(check int) "if it decodes, it must be right or detected" 99 v

let test_bw_insufficient_shares () =
  let rng = C.Prng.create 4 in
  let shares = S.share rng ~secret:1 ~threshold:2 ~n:4 in
  Alcotest.(check bool) "n < d + 2e + 1 refused" true
    (S.robust_reconstruct ~degree:2 ~max_errors:1 shares = None)

(* {1 Hashing, commitments, PKI} *)

let test_hash_deterministic () =
  Alcotest.(check int64) "equal inputs" (H.hash "abc") (H.hash "abc");
  Alcotest.(check bool) "different inputs" true (H.hash "abc" <> H.hash "abd")

let test_hash_ints_framing () =
  Alcotest.(check bool) "framing distinguishes [1;23] from [12;3]" true
    (H.hash_ints [ 1; 23 ] <> H.hash_ints [ 12; 3 ])

let test_commit_verify () =
  let c = H.Commit.commit ~value:42 ~nonce:777 in
  Alcotest.(check bool) "verifies" true (H.Commit.verify c ~value:42 ~nonce:777);
  Alcotest.(check bool) "wrong value" false (H.Commit.verify c ~value:43 ~nonce:777);
  Alcotest.(check bool) "wrong nonce" false (H.Commit.verify c ~value:42 ~nonce:778)

let test_pki () =
  let rng = C.Prng.create 5 in
  let pki = H.Pki.create rng ~n:3 in
  let s = H.Pki.sign pki ~signer:0 ~msg:"m" in
  Alcotest.(check bool) "verify own" true (H.Pki.verify pki ~signer:0 ~msg:"m" s);
  Alcotest.(check bool) "not other signer" false (H.Pki.verify pki ~signer:1 ~msg:"m" s);
  Alcotest.(check bool) "not other msg" false (H.Pki.verify pki ~signer:0 ~msg:"m2" s);
  Alcotest.(check bool) "forgery fails" false
    (H.Pki.verify pki ~signer:0 ~msg:"m" (H.Pki.forge_attempt rng))

(* {1 Field matrices} *)

let test_fieldmat_solve () =
  (* 2x + y = 5; x + y = 3 -> x = 2, y = 1 *)
  match C.Fieldmat.solve [| [| 2; 1 |]; [| 1; 1 |] |] [| 5; 3 |] with
  | Some x ->
    Alcotest.(check int) "x" 2 x.(0);
    Alcotest.(check int) "y" 1 x.(1)
  | None -> Alcotest.fail "solvable"

let test_fieldmat_inconsistent () =
  Alcotest.(check bool) "inconsistent" true
    (C.Fieldmat.solve [| [| 1; 1 |]; [| 1; 1 |] |] [| 1; 2 |] = None)

let test_fieldmat_rank () =
  Alcotest.(check int) "full rank" 2 (C.Fieldmat.rank [| [| 1; 0 |]; [| 0; 1 |] |]);
  Alcotest.(check int) "rank 1" 1 (C.Fieldmat.rank [| [| 1; 2 |]; [| 2; 4 |] |])

let suite =
  [
    QCheck_alcotest.to_alcotest field_add_inverse;
    QCheck_alcotest.to_alcotest field_mul_inverse;
    QCheck_alcotest.to_alcotest field_distributive;
    QCheck_alcotest.to_alcotest field_pow_matches_mul;
    Alcotest.test_case "field: of_int negative" `Quick test_field_of_int_negative;
    Alcotest.test_case "field: inv zero" `Quick test_field_inv_zero;
    Alcotest.test_case "field: Fermat" `Quick test_field_fermat;
    Alcotest.test_case "poly: eval" `Quick test_poly_eval_horner;
    Alcotest.test_case "poly: degree" `Quick test_poly_degree;
    QCheck_alcotest.to_alcotest poly_add_eval;
    QCheck_alcotest.to_alcotest poly_mul_eval;
    QCheck_alcotest.to_alcotest poly_divmod_roundtrip;
    Alcotest.test_case "poly: interpolate" `Quick test_poly_interpolate_exact;
    Alcotest.test_case "poly: duplicate x" `Quick test_poly_interpolate_duplicate;
    QCheck_alcotest.to_alcotest poly_random_has_secret;
    QCheck_alcotest.to_alcotest shamir_roundtrip;
    Alcotest.test_case "shamir: invalid threshold" `Quick test_shamir_invalid_threshold;
    Alcotest.test_case "shamir: consistency" `Quick test_shamir_consistency_check;
    QCheck_alcotest.to_alcotest berlekamp_welch_property;
    Alcotest.test_case "BW: too many errors" `Quick test_bw_too_many_errors;
    Alcotest.test_case "BW: insufficient shares" `Quick test_bw_insufficient_shares;
    Alcotest.test_case "hash: deterministic" `Quick test_hash_deterministic;
    Alcotest.test_case "hash: framing" `Quick test_hash_ints_framing;
    Alcotest.test_case "commitments" `Quick test_commit_verify;
    Alcotest.test_case "pki" `Quick test_pki;
    Alcotest.test_case "fieldmat: solve" `Quick test_fieldmat_solve;
    Alcotest.test_case "fieldmat: inconsistent" `Quick test_fieldmat_inconsistent;
    Alcotest.test_case "fieldmat: rank" `Quick test_fieldmat_rank;
  ]
