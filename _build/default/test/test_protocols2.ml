(* Tests for the second wave of protocols: Phase King, FloodSet, the
   asynchronous scheduler, and commit-reveal coin flipping. *)

module B = Beyond_nash
module PK = B.Phase_king
module FS = B.Floodset
module A = B.Async_net
module CF = B.Coin_flip

(* {1 Phase King} *)

let test_pk_no_faults () =
  let r = PK.run ~n:5 ~t:1 ~values:[| 1; 0; 1; 1; 0 |] () in
  Alcotest.(check bool) "agreement" true (PK.agreement r);
  Alcotest.(check int) "2(t+1) rounds" 4 r.B.Sync_net.rounds_run

let test_pk_validity () =
  let r = PK.run ~n:5 ~t:1 ~values:[| 1; 1; 1; 1; 1 |] () in
  Alcotest.(check bool) "validity" true (PK.validity ~honest_values:[ 1; 1; 1; 1; 1 ] r)

let test_pk_lying_adversary () =
  (* n = 5 > 4t: the liar cannot break agreement or unanimity validity. *)
  let adv = PK.lying_adversary ~corrupted:[ 4 ] ~claim:0 in
  let r = PK.run ~adversary:adv ~n:5 ~t:1 ~values:[| 1; 1; 1; 1; 0 |] () in
  Alcotest.(check bool) "agreement" true (PK.agreement r);
  Alcotest.(check bool) "validity" true (PK.validity ~honest_values:[ 1; 1; 1; 1 ] r)

let test_pk_silent_adversary () =
  let r = PK.run ~adversary:(B.Sync_net.silent [ 2 ]) ~n:5 ~t:1 ~values:[| 0; 0; 1; 0; 0 |] () in
  Alcotest.(check bool) "agreement with crash" true (PK.agreement r);
  Alcotest.(check bool) "validity with crash" true (PK.validity ~honest_values:[ 0; 0; 0; 0 ] r)

let pk_agreement_property =
  QCheck.Test.make ~count:30 ~name:"phase king: agreement for random values, n=9, t=2"
    QCheck.(pair (int_range 0 511) bool)
    (fun (bits, claim) ->
      let values = Array.init 9 (fun i -> (bits lsr i) land 1) in
      let adv = PK.lying_adversary ~corrupted:[ 7; 8 ] ~claim:(if claim then 1 else 0) in
      let r = PK.run ~adversary:adv ~n:9 ~t:2 ~values () in
      PK.agreement r)

(* {1 FloodSet} *)

let test_fs_no_faults () =
  let r = FS.run ~n:4 ~f:1 ~values:[| 3; 1; 2; 2 |] () in
  Alcotest.(check bool) "agreement" true (FS.agreement r);
  Array.iter
    (function Some v -> Alcotest.(check int) "min rule" 1 v | None -> Alcotest.fail "decided")
    r.B.Sync_net.outputs

let test_fs_crash () =
  let rng = B.Prng.create 4 in
  let values = [| 1; 2; 3; 4; 5 |] in
  for round = 1 to 2 do
    let adv = FS.crash_after ~rng ~n:5 ~corrupted:[ 0 ] ~values ~round in
    let r = FS.run ~adversary:adv ~n:5 ~f:1 ~values () in
    Alcotest.(check bool) (Printf.sprintf "agreement, crash round %d" round) true (FS.agreement r);
    Alcotest.(check bool) "validity" true (FS.validity ~all_values:(Array.to_list values) r)
  done

let test_fs_multiple_crashes () =
  let rng = B.Prng.create 5 in
  let values = [| 9; 2; 7; 4; 5; 6 |] in
  let adv = FS.crash_after ~rng ~n:6 ~corrupted:[ 0; 2 ] ~values ~round:1 in
  let r = FS.run ~adversary:adv ~n:6 ~f:2 ~values () in
  Alcotest.(check bool) "agreement with f=2" true (FS.agreement r)

(* {1 Async_net} *)

(* Echo: process 0 sends its value to 1, 1 echoes back, both decide. *)
let echo =
  {
    A.init = (fun me -> if me = 0 then (None, [ (1, 42) ]) else (None, []));
    on_message =
      (fun ~me st ~sender:_ v ->
        ignore st;
        (Some v, if me = 1 then [ (0, v) ] else []));
    decided = Fun.id;
  }

let test_async_echo () =
  let r = A.run ~n:2 ~scheduler:A.fifo echo in
  Alcotest.(check (array (option int))) "both decided 42" [| Some 42; Some 42 |] r.A.decisions;
  Alcotest.(check int) "2 deliveries" 2 r.A.steps

let test_async_random_scheduler () =
  let rng = B.Prng.create 9 in
  let r = A.run ~n:2 ~scheduler:(A.random rng) echo in
  Alcotest.(check bool) "decided" true (Array.for_all (( <> ) None) r.A.decisions)

let test_async_delayer_budget_spent () =
  (* A ticker process generates traffic; the delayer starves process 0. *)
  let ticker =
    {
      A.init =
        (fun me -> if me = 0 then (None, [ (1, 0) ]) else if me = 2 then (None, [ (2, 1) ]) else (None, []));
      on_message =
        (fun ~me st ~sender:_ v ->
          if me = 2 then (Some 1, [ (2, 1) ]) else (ignore st; (Some v, [])));
      decided = Fun.id;
    }
  in
  let budget = ref 50 in
  let r = A.run ~max_steps:500 ~n:3 ~scheduler:(A.delayer ~victim:0 ~budget) ticker in
  Alcotest.(check bool) "victim's message eventually delivered" true (r.A.decisions.(1) = Some 0);
  Alcotest.(check bool) "budget consumed" true (!budget = 0);
  Alcotest.(check bool) "steps include starvation" true (r.A.steps > 50)

let test_async_max_steps_bound () =
  (* Pure ticker never decides at process 1: run stops at max_steps. *)
  let ticker =
    {
      A.init = (fun me -> if me = 0 then (Some 0, [ (0, 0) ]) else (None, []));
      on_message = (fun ~me:_ st ~sender:_ _ -> (st, [ (0, 0) ]));
      decided = Fun.id;
    }
  in
  let r = A.run ~max_steps:100 ~n:2 ~scheduler:A.fifo ticker in
  Alcotest.(check int) "stopped at bound" 100 r.A.steps

let test_async_validation () =
  Alcotest.check_raises "bad destination"
    (Invalid_argument "Async_net.run: destination out of range") (fun () ->
      let bad =
        {
          A.init = (fun _ -> (None, [ (7, 0) ]));
          on_message = (fun ~me:_ st ~sender:_ _ -> (st, []));
          decided = Fun.id;
        }
      in
      ignore (A.run ~n:2 ~scheduler:A.fifo bad))

(* {1 Coin flipping} *)

let test_coin_honest_fair () =
  let rng = B.Prng.create 11 in
  let zeros = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    match CF.honest rng with
    | { CF.coin = Some 0; _ } -> incr zeros
    | { CF.coin = Some _; _ } -> ()
    | { CF.coin = None; _ } -> Alcotest.fail "honest run must complete"
  done;
  let freq = float_of_int !zeros /. float_of_int trials in
  Alcotest.(check bool) "fair" true (Float.abs (freq -. 0.5) < 0.03)

let test_coin_aborter_bias () =
  let rng = B.Prng.create 12 in
  let rate, bias = CF.completion_bias rng ~trials:2000 ~prefer:1 in
  Alcotest.(check bool) "completes about half the time" true (Float.abs (rate -. 0.5) < 0.05);
  Alcotest.(check (float 1e-9)) "conditioned on completion, fully biased" 1.0 bias

let test_coin_cheater_caught () =
  let rng = B.Prng.create 13 in
  for _ = 1 to 50 do
    let t = CF.cheater_caught rng in
    Alcotest.(check bool) "commitment check fails" false t.CF.commitments_checked
  done

let suite =
  [
    Alcotest.test_case "phase king: no faults" `Quick test_pk_no_faults;
    Alcotest.test_case "phase king: validity" `Quick test_pk_validity;
    Alcotest.test_case "phase king: liar" `Quick test_pk_lying_adversary;
    Alcotest.test_case "phase king: crash" `Quick test_pk_silent_adversary;
    QCheck_alcotest.to_alcotest pk_agreement_property;
    Alcotest.test_case "floodset: no faults" `Quick test_fs_no_faults;
    Alcotest.test_case "floodset: crash rounds" `Quick test_fs_crash;
    Alcotest.test_case "floodset: two crashes" `Quick test_fs_multiple_crashes;
    Alcotest.test_case "async: echo" `Quick test_async_echo;
    Alcotest.test_case "async: random scheduler" `Quick test_async_random_scheduler;
    Alcotest.test_case "async: delayer budget" `Quick test_async_delayer_budget_spent;
    Alcotest.test_case "async: max steps" `Quick test_async_max_steps_bound;
    Alcotest.test_case "async: validation" `Quick test_async_validation;
    Alcotest.test_case "coin: honest fair" `Slow test_coin_honest_fair;
    Alcotest.test_case "coin: aborter bias" `Quick test_coin_aborter_bias;
    Alcotest.test_case "coin: cheater caught" `Quick test_coin_cheater_caught;
  ]
