module B = Beyond_nash
module A = B.Awareness
module Ex = B.Aware_examples
module E = B.Extensive

let check_float = Alcotest.(check (float 1e-9))

(* Helpers: pure move of a profile entry. *)
let move_of profile pair info =
  match List.assoc_opt pair profile with
  | None -> Alcotest.failf "missing pair"
  | Some beh -> (
    match List.assoc_opt info beh with
    | Some dist -> fst (List.hd (List.sort (fun (_, a) (_, b) -> compare b a) dist))
    | None -> Alcotest.failf "missing info set %s" info)

let test_create_validates_dangling_game () =
  Alcotest.check_raises "dangling F target"
    (Invalid_argument "Awareness: unknown game nope") (fun () ->
      let g =
        E.create ~n_players:1
          (E.Decision { player = 0; info = "i"; moves = [ ("m", E.Terminal [| 0.0 |]) ] })
      in
      ignore (A.create ~games:[ ("only", g) ] ~modeler:"only" ~f:(fun ~game:_ ~info -> ("nope", info))))

let test_create_validates_modeler () =
  let g =
    E.create ~n_players:1
      (E.Decision { player = 0; info = "i"; moves = [ ("m", E.Terminal [| 0.0 |]) ] })
  in
  Alcotest.check_raises "modeler missing"
    (Invalid_argument "Awareness.create: modeler game not in collection") (fun () ->
      ignore (A.create ~games:[ ("g", g) ] ~modeler:"absent" ~f:(fun ~game ~info -> (game, info))))

let test_required_pairs () =
  let t = Ex.with_awareness ~p:0.3 in
  let pairs = A.required_pairs t in
  Alcotest.(check int) "four pairs" 4 (List.length pairs);
  List.iter
    (fun pair -> Alcotest.(check bool) "expected pair" true (List.mem pair pairs))
    [ (0, "gameA"); (1, "modeler"); (0, "gameB"); (1, "gameB") ]

(* {1 The paper's example (Figures 1-3)} *)

let test_low_p_has_across_equilibrium () =
  let eqs = Ex.generalized_equilibria ~p:0.25 in
  Alcotest.(check bool) "some GNE has A playing across_A" true
    (List.exists (fun prof -> move_of prof (0, "gameA") "A.1" = "across_A") eqs);
  (* And in such an equilibrium B (aware) plays down_B. *)
  List.iter
    (fun prof ->
      if move_of prof (0, "gameA") "A.1" = "across_A" then
        Alcotest.(check string) "B plays down" "down_B" (move_of prof (1, "modeler") "B"))
    eqs

let test_high_p_forces_down () =
  let eqs = Ex.generalized_equilibria ~p:0.75 in
  Alcotest.(check bool) "nonempty" true (eqs <> []);
  List.iter
    (fun prof ->
      Alcotest.(check string) "A plays down at high p" "down_A"
        (move_of prof (0, "gameA") "A.1"))
    eqs

let test_unaware_b_always_across () =
  List.iter
    (fun p ->
      List.iter
        (fun prof ->
          Alcotest.(check string) "unaware B has only across" "across_B"
            (move_of prof (1, "gameB") "B.3"))
        (Ex.generalized_equilibria ~p))
    [ 0.1; 0.9 ]

let test_a_in_gameb_plays_down () =
  (* If A believed the game had no down_B, she plays down_A. *)
  List.iter
    (fun prof ->
      Alcotest.(check string) "A-down in gameB" "down_A" (move_of prof (0, "gameB") "A.3"))
    (Ex.generalized_equilibria ~p:0.5)

let test_modeler_outcome_shapes () =
  (* Low p: the best GNE reaches (2,2); high p: all GNE give (1,1). *)
  let low = Ex.generalized_equilibria ~p:0.1 in
  Alcotest.(check bool) "low p can reach (2,2)" true
    (List.exists (fun prof -> (Ex.modeler_outcome ~p:0.1 prof).(0) = 2.0) low);
  let high = Ex.generalized_equilibria ~p:0.9 in
  List.iter
    (fun prof -> check_float "high p gives 1" 1.0 (Ex.modeler_outcome ~p:0.9 prof).(0))
    high

let test_underlying_nash_for_contrast () =
  let nes = Ex.underlying_nash_profiles () in
  Alcotest.(check bool) "(across, down) is a Nash equilibrium" true
    (List.mem ("across_A", "down_B") nes)

let test_expected_payoffs_in_subjective_game () =
  (* In gameA with p = 0.5 and the across-equilibrium, A's expected payoff
     is (1-p)*2 + p*0 = 1 — exactly indifferent with down_A's 1. *)
  let t = Ex.with_awareness ~p:0.5 in
  let eqs = Ex.generalized_equilibria ~p:0.5 in
  Alcotest.(check bool) "nonempty at the knife edge" true (eqs <> []);
  List.iter
    (fun prof ->
      let u = A.expected_payoffs t ~game:"gameA" prof in
      Alcotest.(check bool) "A's subjective payoff >= 1" true (u.(0) >= 1.0 -. 1e-9))
    eqs

(* {1 Canonical representation theorem} *)

let canonical_equivalence_on game =
  let c = A.canonical game in
  let nf, strategies = E.to_normal_form game in
  B.Normal_form.iter_profiles nf (fun p ->
      let behavioral =
        Array.init (E.n_players game) (fun i ->
            E.behavioral_of_pure (List.nth strategies.(i) p.(i)))
      in
      let is_ne = B.Nash.is_pure_nash nf p in
      let is_gne = A.is_generalized_nash c (A.embed_canonical game behavioral) in
      Alcotest.(check bool) "NE iff GNE of canonical representation" is_ne is_gne)

let test_canonical_theorem_fig1 () = canonical_equivalence_on Ex.underlying

let test_canonical_theorem_entry_game () =
  let entry =
    E.create ~n_players:2
      (E.Decision
         {
           player = 0;
           info = "e";
           moves =
             [
               ("out", E.Terminal [| 0.0; 2.0 |]);
               ( "enter",
                 E.Decision
                   {
                     player = 1;
                     info = "i";
                     moves = [ ("f", E.Terminal [| -1.0; -1.0 |]); ("a", E.Terminal [| 1.0; 1.0 |]) ];
                   } );
             ];
         })
  in
  canonical_equivalence_on entry

(* {1 Awareness of unawareness (virtual moves)} *)

let test_virtual_move_peace () =
  let g = Ex.virtual_move_game ~estimate:(-2.0) in
  let eqs = A.pure_generalized_equilibria g in
  Alcotest.(check bool) "equilibria exist" true (eqs <> []);
  List.iter
    (fun prof ->
      Alcotest.(check string) "low estimate: peace" "peace" (move_of prof (0, "gameA") "A.war"))
    eqs

let test_virtual_move_attack () =
  let g = Ex.virtual_move_game ~estimate:2.0 in
  List.iter
    (fun prof ->
      Alcotest.(check string) "high estimate: attack" "attack" (move_of prof (0, "gameA") "A.war"))
    (A.pure_generalized_equilibria g)

let test_virtual_utilities () =
  let attack, peace = Ex.virtual_attack_utility ~estimate:(-2.0) in
  Alcotest.(check bool) "peace preferred" true (peace > attack)

let existence_property =
  QCheck.Test.make ~count:20 ~name:"awareness: the example always has a pure GNE"
    QCheck.(float_range 0.0 1.0)
    (fun p -> Ex.generalized_equilibria ~p <> [])

let suite =
  [
    Alcotest.test_case "create: dangling F" `Quick test_create_validates_dangling_game;
    Alcotest.test_case "create: modeler check" `Quick test_create_validates_modeler;
    Alcotest.test_case "required pairs" `Quick test_required_pairs;
    Alcotest.test_case "fig1: low p across" `Quick test_low_p_has_across_equilibrium;
    Alcotest.test_case "fig1: high p down" `Quick test_high_p_forces_down;
    Alcotest.test_case "fig1: unaware B" `Quick test_unaware_b_always_across;
    Alcotest.test_case "fig1: A in gameB" `Quick test_a_in_gameb_plays_down;
    Alcotest.test_case "fig1: modeler outcomes" `Quick test_modeler_outcome_shapes;
    Alcotest.test_case "fig1: underlying Nash" `Quick test_underlying_nash_for_contrast;
    Alcotest.test_case "fig1: subjective payoffs" `Quick test_expected_payoffs_in_subjective_game;
    Alcotest.test_case "canonical theorem: fig1" `Quick test_canonical_theorem_fig1;
    Alcotest.test_case "canonical theorem: entry game" `Quick test_canonical_theorem_entry_game;
    Alcotest.test_case "virtual move: peace" `Quick test_virtual_move_peace;
    Alcotest.test_case "virtual move: attack" `Quick test_virtual_move_attack;
    Alcotest.test_case "virtual move: utilities" `Quick test_virtual_utilities;
    QCheck_alcotest.to_alcotest existence_property;
  ]
