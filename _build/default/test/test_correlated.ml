module B = Beyond_nash
module C = B.Correlated

let test_nash_is_correlated () =
  (* Every Nash equilibrium's product distribution is a correlated
     equilibrium. *)
  List.iter
    (fun g ->
      List.iter
        (fun prof ->
          Alcotest.(check bool) "Nash -> CE" true
            (C.is_correlated_equilibrium g (C.of_mixed g prof)))
        (B.Nash.support_enumeration_2p g))
    [ B.Games.chicken; B.Games.battle_of_sexes; B.Games.matching_pennies ]

let test_non_equilibrium_rejected () =
  (* Point mass on (C,C) in PD is not a correlated equilibrium. *)
  let g = B.Games.prisoners_dilemma in
  Alcotest.(check bool) "CC not CE" false
    (C.is_correlated_equilibrium g (B.Dist.return [| 0; 0 |]))

let test_chicken_max_welfare_beats_nash () =
  let g = B.Games.chicken in
  match C.max_welfare g with
  | None -> Alcotest.fail "LP should succeed"
  | Some (d, welfare) ->
    Alcotest.(check bool) "is CE" true (C.is_correlated_equilibrium g d);
    let best_nash =
      List.fold_left
        (fun acc prof ->
          max acc (B.Mixed.expected_payoff g prof 0 +. B.Mixed.expected_payoff g prof 1))
        neg_infinity
        (B.Nash.support_enumeration_2p g)
    in
    Alcotest.(check bool) "beats Nash hull" true (welfare > best_nash +. 0.5);
    (* The welfare-optimal CE of chicken avoids (dare, dare). *)
    Alcotest.(check (float 1e-6)) "no crash" 0.0 (B.Dist.mass d [| 0; 0 |])

let test_max_welfare_pd_is_dd () =
  (* PD: defect dominates, so the only CE is the point mass on (D,D). *)
  let g = B.Games.prisoners_dilemma in
  match C.max_welfare g with
  | None -> Alcotest.fail "LP should succeed"
  | Some (d, welfare) ->
    Alcotest.(check (float 1e-6)) "mass on DD" 1.0 (B.Dist.mass d [| 1; 1 |]);
    Alcotest.(check (float 1e-6)) "welfare -6" (-6.0) welfare

let test_max_player_bounds_welfare () =
  let g = B.Games.chicken in
  match (C.max_player g ~player:0, C.max_welfare g) with
  | Some (_, v0), Some (_, w) ->
    Alcotest.(check bool) "player max <= welfare max" true (v0 <= w);
    Alcotest.(check bool) "player max >= half welfare by symmetry" true (v0 >= (w /. 2.0) -. 1e-6)
  | _ -> Alcotest.fail "LPs should succeed"

let test_zero_sum_ce_value () =
  (* In matching pennies every CE gives each player the game value 0. *)
  let g = B.Games.matching_pennies in
  match C.max_player g ~player:0 with
  | None -> Alcotest.fail "LP should succeed"
  | Some (_, v) -> Alcotest.(check (float 1e-6)) "value 0" 0.0 v

let ce_polytope_property =
  QCheck.Test.make ~count:30 ~name:"correlated: max_welfare output is always a CE"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g =
        B.Normal_form.create ~actions:[| 2; 2 |] (fun p ->
            let idx = (p.(0) * 2) + p.(1) in
            [| payoffs.(idx); payoffs.(4 + idx) |])
      in
      match C.max_welfare g with
      | None -> false
      | Some (d, _) -> C.is_correlated_equilibrium ~eps:1e-5 g d)

let suite =
  [
    Alcotest.test_case "Nash product is CE" `Quick test_nash_is_correlated;
    Alcotest.test_case "non-equilibrium rejected" `Quick test_non_equilibrium_rejected;
    Alcotest.test_case "chicken: CE beats Nash hull" `Quick test_chicken_max_welfare_beats_nash;
    Alcotest.test_case "PD: only DD" `Quick test_max_welfare_pd_is_dd;
    Alcotest.test_case "player max vs welfare" `Quick test_max_player_bounds_welfare;
    Alcotest.test_case "zero-sum CE value" `Quick test_zero_sum_ce_value;
    QCheck_alcotest.to_alcotest ce_polytope_property;
  ]

let test_three_player_ce () =
  (* The 3-player coordination game: the checker and LP handle n > 2. *)
  let g = B.Games.coordination_01 3 in
  let all0 = B.Dist.return [| 0; 0; 0 |] in
  Alcotest.(check bool) "all-0 point mass is a CE" true (C.is_correlated_equilibrium g all0);
  match C.max_welfare g with
  | None -> Alcotest.fail "LP should succeed"
  | Some (d, w) ->
    Alcotest.(check bool) "is CE" true (C.is_correlated_equilibrium ~eps:1e-6 g d);
    (* The best CE lets a pair play 1 (welfare 4 > 3 of all-0). *)
    Alcotest.(check bool) "beats all-0 welfare" true (w >= 3.0 -. 1e-6)

let suite = suite @ [ Alcotest.test_case "3-player CE" `Quick test_three_player_ce ]
