module B = Beyond_nash
module C = B.Canned
module E = B.Extensive
module S = B.Sunspot

let check_float = Alcotest.(check (float 1e-9))

(* {1 Centipede} *)

let test_centipede_backward_induction () =
  (* Backward induction takes immediately, for every length. *)
  List.iter
    (fun rounds ->
      let g = C.centipede ~rounds in
      let profile, value = E.backward_induction g in
      Alcotest.(check (option string))
        (Printf.sprintf "take at the root (rounds=%d)" rounds)
        (Some "take")
        (List.assoc_opt "node0" profile.(0));
      check_float "player 0 gets 2" 2.0 value.(0);
      check_float "player 1 gets 0" 0.0 value.(1))
    [ 1; 2; 4; 6 ]

let test_centipede_cooperation_dominates_spe () =
  (* Passing to the end would give both far more than the SPE outcome. *)
  let rounds = 6 in
  let g = C.centipede ~rounds in
  let pass_all player =
    List.map (fun (info, _) -> (info, "pass")) (E.info_sets g ~player)
  in
  let u =
    E.expected_payoffs g
      [| E.behavioral_of_pure (pass_all 0); E.behavioral_of_pure (pass_all 1) |]
  in
  check_float "both get rounds+1" 7.0 u.(0);
  Alcotest.(check bool) "cooperation beats SPE" true (u.(0) > 2.0 && u.(1) > 0.0)

let test_centipede_is_spe_nash () =
  let g = C.centipede ~rounds:3 in
  let profile, _ = E.backward_induction g in
  Alcotest.(check bool) "SPE is Nash" true (E.is_nash g (Array.map E.behavioral_of_pure profile))

let test_centipede_validation () =
  Alcotest.check_raises "rounds >= 1" (Invalid_argument "Canned.centipede: rounds >= 1")
    (fun () -> ignore (C.centipede ~rounds:0))

(* {1 Ultimatum} *)

let test_ultimatum_spe_offers_zero () =
  let g = C.ultimatum ~pie:5 in
  let profile, value = E.backward_induction g in
  Alcotest.(check (option string)) "offer 0" (Some "offer-0")
    (List.assoc_opt "proposer" profile.(0));
  check_float "proposer takes it all" 5.0 value.(0);
  (* The responder accepts every offer in the SPE (indifferent at 0, ties
     break toward the first listed move, accept). *)
  List.iter
    (fun (info, _) ->
      Alcotest.(check (option string)) "accepts" (Some "accept") (List.assoc_opt info profile.(1)))
    (E.info_sets g ~player:1)

let test_ultimatum_fair_split_is_nash_not_spe () =
  (* "Reject anything below half" supports a fair split as Nash — the
     non-credible-threat equilibrium backward induction kills. *)
  let pie = 4 in
  let g = C.ultimatum ~pie in
  let responder =
    List.map
      (fun (info, _) ->
        (* info = "offerK" *)
        let k = int_of_string (String.sub info 5 (String.length info - 5)) in
        (info, if k >= pie / 2 then "accept" else "reject"))
      (E.info_sets g ~player:1)
  in
  let proposer = [ ("proposer", Printf.sprintf "offer-%d" (pie / 2)) ] in
  let profile = [| E.behavioral_of_pure proposer; E.behavioral_of_pure responder |] in
  Alcotest.(check bool) "fair split is Nash" true (E.is_nash g profile);
  let u = E.expected_payoffs g profile in
  check_float "responder gets half" 2.0 u.(1)

(* {1 Trust} *)

let test_trust_unravels () =
  let g = C.trust ~multiplier:4 in
  let profile, value = E.backward_induction g in
  Alcotest.(check (option string)) "trustee grabs" (Some "grab")
    (List.assoc_opt "trustee" profile.(1));
  Alcotest.(check (option string)) "investor keeps" (Some "keep")
    (List.assoc_opt "investor" profile.(0));
  check_float "SPE payoff 1" 1.0 value.(0)

let test_trust_cooperative_outcome_better () =
  let g = C.trust ~multiplier:4 in
  let u =
    E.expected_payoffs g
      [|
        E.behavioral_of_pure [ ("investor", "invest") ];
        E.behavioral_of_pure [ ("trustee", "share") ];
      |]
  in
  Alcotest.(check bool) "both better than SPE" true (u.(0) > 1.0 && u.(1) > 1.0)

(* {1 Sunspot} *)

let test_sunspot_validity () =
  let g = B.Games.chicken in
  let eqs = B.Nash.support_enumeration_2p g in
  let t = S.make (List.map (fun p -> (1.0, p)) eqs) in
  Alcotest.(check bool) "all-Nash sunspot valid" true (S.is_valid g t);
  let bogus = S.make [ (1.0, B.Mixed.pure_profile g [| 0; 0 |]) ] in
  Alcotest.(check bool) "non-Nash component rejected" false (S.is_valid g bogus)

let test_sunspot_payoffs_convex () =
  let g = B.Games.battle_of_sexes in
  match B.Nash.pure_equilibria g with
  | [ e1; e2 ] ->
    let t =
      S.make [ (0.5, B.Mixed.pure_profile g e1); (0.5, B.Mixed.pure_profile g e2) ]
    in
    let u = S.expected_payoffs g t in
    (* 50/50 over (2,1) and (1,2). *)
    check_float "player 0" 1.5 u.(0);
    check_float "player 1" 1.5 u.(1)
  | _ -> Alcotest.fail "BoS has two pure equilibria"

let test_mediator_gap_chicken_positive () =
  Alcotest.(check bool) "private mediation worth > 1" true
    (S.mediator_gap B.Games.chicken > 1.0)

let test_mediator_gap_pd_zero () =
  (* PD: the only CE is (D,D), which is also the only Nash — no gap. *)
  check_float "no gap in PD" 0.0 (S.mediator_gap B.Games.prisoners_dilemma)

let test_sunspot_sampling () =
  let g = B.Games.chicken in
  let eqs = B.Nash.pure_equilibria g in
  match eqs with
  | e1 :: e2 :: _ ->
    let t = S.make [ (0.5, B.Mixed.pure_profile g e1); (0.5, B.Mixed.pure_profile g e2) ] in
    let rng = B.Prng.create 3 in
    let seen = Hashtbl.create 4 in
    for _ = 1 to 200 do
      let acts, payoffs = S.sample_and_play rng g t in
      Hashtbl.replace seen (acts.(0), acts.(1)) ();
      (* Payoffs must match the realized profile. *)
      check_float "payoff consistent" (B.Normal_form.payoff g acts 0) payoffs.(0)
    done;
    Alcotest.(check bool) "both components realized" true (Hashtbl.length seen >= 2)
  | _ -> Alcotest.fail "chicken has two pure equilibria"

let sunspot_weights_normalized =
  QCheck.Test.make ~count:30 ~name:"sunspot: weights normalize"
    QCheck.(pair (float_range 0.1 5.0) (float_range 0.1 5.0))
    (fun (w1, w2) ->
      let g = B.Games.battle_of_sexes in
      match B.Nash.pure_equilibria g with
      | [ e1; e2 ] ->
        let t =
          S.make [ (w1, B.Mixed.pure_profile g e1); (w2, B.Mixed.pure_profile g e2) ]
        in
        Float.abs (List.fold_left ( +. ) 0.0 t.S.weights -. 1.0) < 1e-9
      | _ -> false)

let suite =
  [
    Alcotest.test_case "centipede: backward induction" `Quick test_centipede_backward_induction;
    Alcotest.test_case "centipede: cooperation dominates" `Quick
      test_centipede_cooperation_dominates_spe;
    Alcotest.test_case "centipede: SPE is Nash" `Quick test_centipede_is_spe_nash;
    Alcotest.test_case "centipede: validation" `Quick test_centipede_validation;
    Alcotest.test_case "ultimatum: SPE offers zero" `Quick test_ultimatum_spe_offers_zero;
    Alcotest.test_case "ultimatum: fair split Nash" `Quick test_ultimatum_fair_split_is_nash_not_spe;
    Alcotest.test_case "trust: unravels" `Quick test_trust_unravels;
    Alcotest.test_case "trust: cooperation better" `Quick test_trust_cooperative_outcome_better;
    Alcotest.test_case "sunspot: validity" `Quick test_sunspot_validity;
    Alcotest.test_case "sunspot: convex payoffs" `Quick test_sunspot_payoffs_convex;
    Alcotest.test_case "sunspot: chicken gap" `Quick test_mediator_gap_chicken_positive;
    Alcotest.test_case "sunspot: PD no gap" `Quick test_mediator_gap_pd_zero;
    Alcotest.test_case "sunspot: sampling" `Quick test_sunspot_sampling;
    QCheck_alcotest.to_alcotest sunspot_weights_normalized;
  ]
