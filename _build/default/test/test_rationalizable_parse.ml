module B = Beyond_nash
module R = B.Rationalizable
module P = B.Parse

(* {1 Rationalizability} *)

let test_pd_rationalizable () =
  let surviving = R.rationalizable B.Games.prisoners_dilemma in
  Alcotest.(check (list int)) "row: defect only" [ 1 ] surviving.(0);
  Alcotest.(check (list int)) "col: defect only" [ 1 ] surviving.(1);
  Alcotest.(check bool) "dominance solvable" true
    (R.is_dominance_solvable B.Games.prisoners_dilemma)

let test_roshambo_all_rationalizable () =
  let surviving = R.rationalizable B.Games.roshambo in
  Alcotest.(check (list int)) "all survive" [ 0; 1; 2 ] surviving.(0)

let test_mixed_dominance_beats_pure () =
  (* Classic example: the middle action is not dominated by any pure
     action, but a 50/50 mix of the outer ones dominates it. Row payoffs:
     top: 4/0, middle: 1.5/1.5, bottom: 0/4. *)
  let a = [| [| 4.0; 0.0 |]; [| 1.5; 1.5 |]; [| 0.0; 4.0 |] |] in
  let b = [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let g = B.Normal_form.of_bimatrix a b in
  Alcotest.(check bool) "no pure dominance" true
    (not (B.Dominance.dominates g ~player:0 0 1) && not (B.Dominance.dominates g ~player:0 2 1));
  match R.mixed_dominates g ~player:0 1 with
  | Some mix ->
    Alcotest.(check (float 1e-6)) "half top" 0.5 mix.(0);
    Alcotest.(check (float 1e-6)) "no middle" 0.0 mix.(1);
    Alcotest.(check (float 1e-6)) "half bottom" 0.5 mix.(2)
  | None -> Alcotest.fail "mixed dominance should be found"

let test_mixed_dominance_none_when_best_response () =
  (* In battle of the sexes every action is a best response to something. *)
  let g = B.Games.battle_of_sexes in
  Alcotest.(check bool) "no dominated action" true
    (R.mixed_dominates g ~player:0 0 = None && R.mixed_dominates g ~player:0 1 = None)

let rationalizable_contains_nash_support =
  QCheck.Test.make ~count:30 ~name:"rationalizable: contains every Nash support"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g =
        B.Normal_form.create ~actions:[| 2; 2 |] (fun p ->
            let idx = (p.(0) * 2) + p.(1) in
            [| payoffs.(idx); payoffs.(4 + idx) |])
      in
      let surviving = R.rationalizable g in
      List.for_all
        (fun prof ->
          List.for_all (fun a -> List.mem a surviving.(0)) (B.Mixed.support prof.(0))
          && List.for_all (fun a -> List.mem a surviving.(1)) (B.Mixed.support prof.(1)))
        (B.Nash.support_enumeration_2p g))

(* {1 Parse} *)

let test_parse_pd () =
  let g = P.bimatrix "3,3 0,5 | 5,0 1,1" in
  Alcotest.(check int) "2x2" 2 (B.Normal_form.num_actions g 0);
  Alcotest.(check (float 1e-9)) "payoff" 5.0 (B.Normal_form.payoff g [| 1; 0 |] 0);
  Alcotest.(check bool) "same as canonical" true
    (B.Nash.is_pure_nash g [| 1; 1 |])

let test_parse_rectangular () =
  let g = P.bimatrix "1,0 2,0 3,0 | 4,0 5,0 6,0" in
  Alcotest.(check int) "rows" 2 (B.Normal_form.num_actions g 0);
  Alcotest.(check int) "cols" 3 (B.Normal_form.num_actions g 1)

let test_parse_whitespace_and_floats () =
  let g = P.bimatrix "  1.5,-2.5   0,0 |  -1,3   2,2  " in
  Alcotest.(check (float 1e-9)) "float payoff" (-2.5) (B.Normal_form.payoff g [| 0; 0 |] 1)

let test_parse_errors () =
  Alcotest.(check bool) "ragged" true (P.bimatrix_opt "1,1 2,2 | 3,3" = None);
  Alcotest.(check bool) "bad number" true (P.bimatrix_opt "a,b" = None);
  Alcotest.(check bool) "missing payoff" true (P.bimatrix_opt "1 2 | 3 4" = None);
  Alcotest.(check bool) "empty" true (P.bimatrix_opt "" = None)

let parse_roundtrip_property =
  QCheck.Test.make ~count:50 ~name:"parse: render-free roundtrip on random 2x2 ints"
    QCheck.(array_of_size (Gen.return 8) (int_range (-9) 9))
    (fun v ->
      let spec =
        Printf.sprintf "%d,%d %d,%d | %d,%d %d,%d" v.(0) v.(4) v.(1) v.(5) v.(2) v.(6) v.(3)
          v.(7)
      in
      match P.bimatrix_opt spec with
      | None -> false
      | Some g ->
        B.Normal_form.payoff g [| 0; 0 |] 0 = float_of_int v.(0)
        && B.Normal_form.payoff g [| 1; 1 |] 1 = float_of_int v.(7))

(* {1 Scrip symmetric equilibrium} *)

let test_scrip_symmetric_equilibrium () =
  (* Long runs keep the Monte-Carlo best-response map stable enough for the
     iteration to reach a fixed point. *)
  let rng = B.Prng.create 77 in
  let params = { (B.Scrip.default_params ~n:30) with B.Scrip.rounds = 20_000 } in
  match
    B.Scrip.symmetric_equilibrium rng params ~money_per_agent:2.0
      ~candidates:[ 2; 3; 5; 8; 12 ]
  with
  | Some k -> Alcotest.(check bool) "interior equilibrium threshold" true (k >= 2 && k <= 12)
  | None -> Alcotest.fail "best-response iteration should find a fixed point here"

let suite =
  [
    Alcotest.test_case "rationalizable: PD" `Quick test_pd_rationalizable;
    Alcotest.test_case "rationalizable: roshambo" `Quick test_roshambo_all_rationalizable;
    Alcotest.test_case "rationalizable: mixed beats pure" `Quick test_mixed_dominance_beats_pure;
    Alcotest.test_case "rationalizable: best responses survive" `Quick
      test_mixed_dominance_none_when_best_response;
    QCheck_alcotest.to_alcotest rationalizable_contains_nash_support;
    Alcotest.test_case "parse: PD" `Quick test_parse_pd;
    Alcotest.test_case "parse: rectangular" `Quick test_parse_rectangular;
    Alcotest.test_case "parse: whitespace/floats" `Quick test_parse_whitespace_and_floats;
    Alcotest.test_case "parse: errors" `Quick test_parse_errors;
    QCheck_alcotest.to_alcotest parse_roundtrip_property;
    Alcotest.test_case "scrip: symmetric equilibrium" `Slow test_scrip_symmetric_equilibrium;
  ]
