module S = Beyond_nash.Simplex

let check_float = Alcotest.(check (float 1e-6))

let solve_or_fail problem =
  match S.solve problem with
  | S.Optimal { solution; value } -> (solution, value)
  | S.Infeasible -> Alcotest.fail "unexpected infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_basic_le () =
  (* max 3x + 2y st x + y <= 4, x <= 2 -> x=2, y=2, value 10 *)
  let x, v = solve_or_fail { S.objective = [| 3.0; 2.0 |]; constraints = [ S.le [| 1.0; 1.0 |] 4.0; S.le [| 1.0; 0.0 |] 2.0 ] } in
  check_float "value" 10.0 v;
  check_float "x" 2.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_with_ge () =
  (* max x st x <= 5, x >= 2 *)
  let _, v = solve_or_fail { S.objective = [| 1.0 |]; constraints = [ S.le [| 1.0 |] 5.0; S.ge [| 1.0 |] 2.0 ] } in
  check_float "value" 5.0 v

let test_minimize_via_negation () =
  (* min x st x >= 3  ==  max -x *)
  let x, v = solve_or_fail { S.objective = [| -1.0 |]; constraints = [ S.ge [| 1.0 |] 3.0 ] } in
  check_float "value" (-3.0) v;
  check_float "x" 3.0 x.(0)

let test_equality () =
  (* max x + y st x + y = 3, x <= 1 -> value 3 with x <= 1 *)
  let x, v = solve_or_fail { S.objective = [| 1.0; 1.0 |]; constraints = [ S.eq [| 1.0; 1.0 |] 3.0; S.le [| 1.0; 0.0 |] 1.0 ] } in
  check_float "value" 3.0 v;
  Alcotest.(check bool) "x within bound" true (x.(0) <= 1.0 +. 1e-9)

let test_infeasible () =
  match S.solve { S.objective = [| 1.0 |]; constraints = [ S.le [| 1.0 |] 1.0; S.ge [| 1.0 |] 2.0 ] } with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded -> Alcotest.fail "should be infeasible"

let test_unbounded () =
  match S.solve { S.objective = [| 1.0 |]; constraints = [ S.ge [| 1.0 |] 0.0 ] } with
  | S.Unbounded -> ()
  | S.Optimal _ | S.Infeasible -> Alcotest.fail "should be unbounded"

let test_negative_rhs_normalization () =
  (* x >= -1 written as -x <= 1; max -x st -x <= 1 -> 1 at x... careful:
     variables are nonneg, so max -x is 0 at x = 0. *)
  let _, v = solve_or_fail { S.objective = [| -1.0 |]; constraints = [ S.le [| -1.0 |] 1.0 ] } in
  check_float "value" 0.0 v

let test_degenerate_no_cycle () =
  (* Classic degenerate LP; Bland's rule must terminate. *)
  let problem =
    {
      S.objective = [| 10.0; -57.0; -9.0; -24.0 |];
      constraints =
        [
          S.le [| 0.5; -5.5; -2.5; 9.0 |] 0.0;
          S.le [| 0.5; -1.5; -0.5; 1.0 |] 0.0;
          S.le [| 1.0; 0.0; 0.0; 0.0 |] 1.0;
        ];
    }
  in
  let _, v = solve_or_fail problem in
  check_float "beale value" 1.0 v

let test_zero_objective () =
  let _, v = solve_or_fail { S.objective = [| 0.0; 0.0 |]; constraints = [ S.le [| 1.0; 1.0 |] 1.0 ] } in
  check_float "value" 0.0 v

let feasibility_property =
  QCheck.Test.make ~count:200 ~name:"simplex: optimal solutions are feasible"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 4)
           (pair (array_of_size (Gen.return 2) (float_range (-5.0) 5.0)) (float_range 0.0 10.0)))
        (array_of_size (Gen.return 2) (float_range (-3.0) 3.0)))
    (fun (rows, objective) ->
      let constraints = List.map (fun (c, b) -> S.le c b) rows in
      match S.solve { S.objective; constraints } with
      | S.Infeasible -> false (* all-le with b >= 0 is feasible at 0 *)
      | S.Unbounded -> true
      | S.Optimal { solution; _ } ->
        Array.for_all (fun x -> x >= -1e-7) solution
        && List.for_all
             (fun (c, b) ->
               let lhs = ref 0.0 in
               Array.iteri (fun i ci -> lhs := !lhs +. (ci *. solution.(i))) c;
               !lhs <= b +. 1e-6)
             rows)

let optimality_property =
  QCheck.Test.make ~count:200 ~name:"simplex: value >= any sampled feasible point"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 3)
           (pair (array_of_size (Gen.return 2) (float_range 0.1 5.0)) (float_range 1.0 10.0)))
        (array_of_size (Gen.return 2) (float_range 0.0 3.0)))
    (fun (rows, objective) ->
      let constraints = List.map (fun (c, b) -> S.le c b) rows in
      match S.solve { S.objective; constraints } with
      | S.Infeasible | S.Unbounded -> false (* positive coeffs: bounded, feasible *)
      | S.Optimal { value; _ } ->
        (* Candidate feasible points on a grid must not beat the optimum. *)
        let ok = ref true in
        for i = 0 to 10 do
          for j = 0 to 10 do
            let x = float_of_int i /. 2.0 and y = float_of_int j /. 2.0 in
            let feasible =
              List.for_all (fun (c, b) -> (c.(0) *. x) +. (c.(1) *. y) <= b) rows
            in
            if feasible && (objective.(0) *. x) +. (objective.(1) *. y) > value +. 1e-6 then
              ok := false
          done
        done;
        !ok)

let suite =
  [
    Alcotest.test_case "basic <=" `Quick test_basic_le;
    Alcotest.test_case "with >=" `Quick test_with_ge;
    Alcotest.test_case "minimize" `Quick test_minimize_via_negation;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
    Alcotest.test_case "degenerate (Beale)" `Quick test_degenerate_no_cycle;
    Alcotest.test_case "zero objective" `Quick test_zero_objective;
    QCheck_alcotest.to_alcotest feasibility_property;
    QCheck_alcotest.to_alcotest optimality_property;
  ]
