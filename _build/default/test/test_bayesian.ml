module B = Beyond_nash

let check_float = Alcotest.(check (float 1e-9))

(* A tiny two-player Bayesian coordination game: player 0 has two types,
   "left-lover" (0) and "right-lover" (1), each with probability 1/2;
   player 1 has one type. Coordinating on 0's favourite yields (2,1) for
   left and (3,1) for right; miscoordination yields (0,0). *)
let coordination =
  B.Bayesian.create ~num_types:[| 2; 1 |] ~actions:[| 2; 2 |]
    ~prior:(B.Dist.uniform [ [| 0; 0 |]; [| 1; 0 |] ])
    (fun ~types ~acts ->
      if acts.(0) <> acts.(1) then [| 0.0; 0.0 |]
      else if acts.(0) = types.(0) then [| (if types.(0) = 0 then 2.0 else 3.0); 1.0 |]
      else [| 0.5; 0.5 |])

let behavioral_of t = Array.mapi (fun i s -> B.Bayesian.pure_to_behavioral coordination ~player:i s) t

let test_create_validation () =
  Alcotest.check_raises "type out of range"
    (Invalid_argument "Bayesian.create: prior type out of range") (fun () ->
      ignore
        (B.Bayesian.create ~num_types:[| 1 |] ~actions:[| 2 |]
           ~prior:(B.Dist.return [| 3 |])
           (fun ~types:_ ~acts:_ -> [| 0.0 |])))

let test_pure_strategy_count () =
  Alcotest.(check int) "2 types x 2 actions = 4" 4
    (List.length (B.Bayesian.pure_strategies coordination ~player:0));
  Alcotest.(check int) "1 type x 2 actions = 2" 2
    (List.length (B.Bayesian.pure_strategies coordination ~player:1))

let test_ex_ante_utility () =
  (* 0 plays its type, 1 plays 0: coordinate only when type = 0. *)
  let prof = behavioral_of [| [| 0; 1 |]; [| 0 |] |] in
  let u = B.Bayesian.ex_ante_utility coordination prof in
  check_float "player0" 1.0 u.(0);
  (* 0.5 * 2 *)
  check_float "player1" 0.5 u.(1)

let test_interim_utility () =
  let prof = behavioral_of [| [| 0; 1 |]; [| 0 |] |] in
  check_float "type 0 interim" 2.0
    (B.Bayesian.interim_utility coordination prof ~player:0 ~ptype:0);
  check_float "type 1 interim" 0.0
    (B.Bayesian.interim_utility coordination prof ~player:0 ~ptype:1)

let test_truthful_not_nash_here () =
  (* With player 1 fixed at 0, player 0's type-1 should deviate to 0
     (0.5 > 0), so type-play is not a Bayes-Nash equilibrium. *)
  let prof = behavioral_of [| [| 0; 1 |]; [| 0 |] |] in
  Alcotest.(check bool) "not BNE" false (B.Bayesian.is_bayes_nash coordination prof)

let test_pooling_is_nash () =
  (* Both of 0's types play 0; 1 plays 0. Type 1 gets 0.5; deviating to 1
     miscoordinates for 0. Player 1: deviating to 1 yields 0. *)
  let prof = behavioral_of [| [| 0; 0 |]; [| 0 |] |] in
  Alcotest.(check bool) "pooling BNE" true (B.Bayesian.is_bayes_nash coordination prof)

let test_pure_bayes_nash_enumeration () =
  let eqs = B.Bayesian.pure_bayes_nash coordination in
  Alcotest.(check bool) "at least the pooling equilibria" true (List.length eqs >= 2);
  List.iter
    (fun e ->
      let prof = behavioral_of e in
      Alcotest.(check bool) "each is BNE" true (B.Bayesian.is_bayes_nash coordination prof))
    eqs

let test_agent_form_equivalence () =
  let game, agents = B.Bayesian.agent_form coordination in
  Alcotest.(check int) "3 agents" 3 (Array.length agents);
  (* Pooling equilibrium corresponds to all agents playing 0. *)
  Alcotest.(check bool) "agent-form Nash" true
    (B.Nash.is_pure_nash game (Array.make 3 0));
  (* The non-equilibrium from test_truthful_not_nash_here maps to agents
     (0,ty0)->0, (0,ty1)->1, (1,ty0)->0. *)
  Alcotest.(check bool) "agent-form non-Nash" false
    (B.Nash.is_pure_nash game [| 0; 1; 0 |])

let test_outcome_dist_mass () =
  let prof = behavioral_of [| [| 0; 1 |]; [| 0 |] |] in
  let d = B.Bayesian.outcome_dist coordination prof in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (B.Dist.to_list d) in
  check_float "mass 1" 1.0 total

let test_ba_game_shape () =
  let g = B.Ba_game.game ~n:4 in
  Alcotest.(check int) "4 players" 4 (B.Bayesian.n_players g);
  Alcotest.(check int) "general has 2 types" 2 (B.Bayesian.num_types g 0);
  Alcotest.(check int) "soldier has 1 type" 1 (B.Bayesian.num_types g 1)

let test_ba_majority () =
  Alcotest.(check int) "majority 1" 1 (B.Ba_game.majority [| 1; 1; 0 |]);
  Alcotest.(check int) "tie -> 0" 0 (B.Ba_game.majority [| 1; 0 |])

let interim_vs_exante_property =
  QCheck.Test.make ~count:50 ~name:"bayesian: ex-ante = prior-weighted interim"
    QCheck.(int_range 0 3)
    (fun strategy_idx ->
      let strategies = B.Bayesian.pure_strategies coordination ~player:0 in
      let s0 = List.nth strategies (strategy_idx mod List.length strategies) in
      let prof = behavioral_of [| s0; [| 0 |] |] in
      let ex_ante = (B.Bayesian.ex_ante_utility coordination prof).(0) in
      let weighted =
        0.5 *. B.Bayesian.interim_utility coordination prof ~player:0 ~ptype:0
        +. (0.5 *. B.Bayesian.interim_utility coordination prof ~player:0 ~ptype:1)
      in
      Float.abs (ex_ante -. weighted) < 1e-9)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "pure strategy count" `Quick test_pure_strategy_count;
    Alcotest.test_case "ex-ante utility" `Quick test_ex_ante_utility;
    Alcotest.test_case "interim utility" `Quick test_interim_utility;
    Alcotest.test_case "separating not BNE" `Quick test_truthful_not_nash_here;
    Alcotest.test_case "pooling is BNE" `Quick test_pooling_is_nash;
    Alcotest.test_case "pure BNE enumeration" `Quick test_pure_bayes_nash_enumeration;
    Alcotest.test_case "agent form equivalence" `Quick test_agent_form_equivalence;
    Alcotest.test_case "outcome dist mass" `Quick test_outcome_dist_mass;
    Alcotest.test_case "BA game shape" `Quick test_ba_game_shape;
    Alcotest.test_case "BA majority" `Quick test_ba_majority;
    QCheck_alcotest.to_alcotest interim_vs_exante_property;
  ]
