module B = Beyond_nash
module R = B.Rational_ss

let u = R.default_utility

let test_equilibrium_bound () =
  Alcotest.(check (float 1e-9)) "n=3 bound" 0.5 (R.honest_equilibrium_alpha u ~n:3);
  Alcotest.(check (float 1e-9)) "n=2 bound" (2.0 /. 3.0) (R.honest_equilibrium_alpha u ~n:2)

let test_deviation_gain_signs () =
  Alcotest.(check bool) "below bound: negative" true (R.deviation_gain u ~n:3 ~alpha:0.3 < 0.0);
  Alcotest.(check bool) "above bound: positive" true (R.deviation_gain u ~n:3 ~alpha:0.8 > 0.0);
  Alcotest.(check (float 1e-9)) "at bound: zero" 0.0
    (R.deviation_gain u ~n:3 ~alpha:(R.honest_equilibrium_alpha u ~n:3))

let test_one_shot_impossibility () =
  (* alpha = 1 is the deterministic protocol: always profitable to
     withhold, for any positive exclusivity. *)
  Alcotest.(check bool) "HT impossibility" true (R.deviation_gain u ~n:3 ~alpha:1.0 > 0.0)

let test_honest_run_everyone_learns () =
  let o = R.simulate (B.Prng.create 5) ~n:4 ~alpha:0.5 ~utility:u ~withholder:None ~secret:321 in
  Alcotest.(check bool) "all learn" true (Array.for_all Fun.id o.R.learned);
  Alcotest.(check bool) "not aborted" false o.R.aborted;
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "utility = learn" u.R.learn x) o.R.utilities

let test_withholder_on_fake_round_caught () =
  (* With alpha tiny the first round is almost surely fake: the deviator is
     caught, nobody learns. *)
  let o = R.simulate (B.Prng.create 7) ~n:3 ~alpha:0.0001 ~utility:u ~withholder:(Some 1) ~secret:5 in
  Alcotest.(check bool) "aborted" true o.R.aborted;
  Alcotest.(check bool) "nobody learned" true (Array.for_all not o.R.learned)

let test_withholder_expected_rounds_one () =
  (* The deviant game always ends in round 1 (learn alone or get caught). *)
  for seed = 1 to 20 do
    let o = R.simulate (B.Prng.create seed) ~n:3 ~alpha:0.5 ~utility:u ~withholder:(Some 0) ~secret:5 in
    Alcotest.(check int) "one round" 1 o.R.rounds
  done

let test_expected_rounds_geometric () =
  Alcotest.(check (float 1e-9)) "alpha 0.25 -> 4" 4.0 (R.expected_rounds ~alpha:0.25);
  let total = ref 0 in
  let trials = 2000 in
  for seed = 1 to trials do
    let o = R.simulate (B.Prng.create seed) ~n:3 ~alpha:0.25 ~utility:u ~withholder:None ~secret:1 in
    total := !total + o.R.rounds
  done;
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool) "empirical mean near 4" true (Float.abs (mean -. 4.0) < 0.4)

let test_empirical_matches_analytic () =
  let rng = B.Prng.create 42 in
  List.iter
    (fun alpha ->
      let measured = R.empirical_deviation_gain rng ~n:3 ~alpha ~utility:u ~trials:4000 in
      let analytic = R.deviation_gain u ~n:3 ~alpha in
      Alcotest.(check bool)
        (Printf.sprintf "alpha=%.2f" alpha)
        true
        (Float.abs (measured -. analytic) < 0.1))
    [ 0.2; 0.5; 0.8 ]

let test_validation () =
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Rational_ss.simulate: alpha in (0,1]") (fun () ->
      ignore (R.simulate (B.Prng.create 1) ~n:3 ~alpha:0.0 ~utility:u ~withholder:None ~secret:1));
  Alcotest.check_raises "n too small" (Invalid_argument "Rational_ss.simulate: need n >= 2")
    (fun () ->
      ignore (R.simulate (B.Prng.create 1) ~n:1 ~alpha:0.5 ~utility:u ~withholder:None ~secret:1))

let bound_monotone_in_n =
  QCheck.Test.make ~count:30 ~name:"rational-ss: equilibrium bound shrinks with n"
    QCheck.(int_range 2 20)
    (fun n -> R.honest_equilibrium_alpha u ~n:(n + 1) < R.honest_equilibrium_alpha u ~n +. 1e-12)

let suite =
  [
    Alcotest.test_case "equilibrium bound" `Quick test_equilibrium_bound;
    Alcotest.test_case "deviation gain signs" `Quick test_deviation_gain_signs;
    Alcotest.test_case "one-shot impossibility" `Quick test_one_shot_impossibility;
    Alcotest.test_case "honest run" `Quick test_honest_run_everyone_learns;
    Alcotest.test_case "withholder caught" `Quick test_withholder_on_fake_round_caught;
    Alcotest.test_case "deviant ends in round 1" `Quick test_withholder_expected_rounds_one;
    Alcotest.test_case "geometric rounds" `Slow test_expected_rounds_geometric;
    Alcotest.test_case "empirical = analytic" `Slow test_empirical_matches_analytic;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest bound_monotone_in_n;
  ]
