module B = Beyond_nash
module A = B.Automaton
module R = B.Repeated
module F = B.Frpd
module T = B.Tournament

let check_float = Alcotest.(check (float 1e-9))

(* {1 Automata} *)

let test_zoo_validates () =
  List.iter A.validate
    [ A.all_c; A.all_d; A.tit_for_tat; A.grim; A.pavlov; A.alternator;
      A.tft_defect_last ~horizon:5; A.defect_from ~round:3 ~horizon:5 ]

let test_sizes () =
  Alcotest.(check int) "AllC 1 state" 1 (A.size A.all_c);
  Alcotest.(check int) "TfT 2 states" 2 (A.size A.tit_for_tat);
  Alcotest.(check int) "counting machine 2N states" 10 (A.size (A.tft_defect_last ~horizon:5))

let test_validate_rejects () =
  Alcotest.check_raises "bad transition" (Invalid_argument "Automaton: bad transition")
    (fun () ->
      A.validate { A.name = "bad"; start = 0; output = [| 0 |]; next = [| [| 0; 5 |] |] })

(* {1 Repeated play} *)

let test_tft_vs_alld_pattern () =
  let play = R.play R.pd_classic ~rounds:4 A.tit_for_tat A.all_d in
  (* TfT: C then D forever; AllD: D always. *)
  Alcotest.(check (list (pair int int))) "trace" [ (0, 1); (1, 1); (1, 1); (1, 1) ]
    play.R.actions

let test_tft_self_play_cooperates () =
  let play = R.play R.pd_classic ~rounds:10 A.tit_for_tat A.tit_for_tat in
  check_float "full cooperation" 1.0 (R.cooperation_rate play)

let test_grim_punishes_forever () =
  let play = R.play R.pd_classic ~rounds:5 A.grim A.alternator in
  (* Alternator: C D C D C; Grim cooperates until first D (round 2), then
     defects from round 3 on. *)
  Alcotest.(check (list (pair int int))) "grim trace"
    [ (0, 0); (0, 1); (1, 0); (1, 1); (1, 0) ] play.R.actions

let test_pavlov_recovers () =
  (* Pavlov vs Pavlov after a bad start... both start C; always C. *)
  let play = R.play R.pd_classic ~rounds:6 A.pavlov A.pavlov in
  check_float "pavlov cooperates" 1.0 (R.cooperation_rate play)

let test_discounting () =
  (* AllC vs AllC with delta = 0.5: sum over 3 rounds of 3 * 0.5^m =
     3*(0.5 + 0.25 + 0.125) = 2.625. *)
  let p1, p2 = R.discounted_payoffs ~delta:0.5 R.pd_classic ~rounds:3 A.all_c A.all_c in
  check_float "discounted p1" 2.625 p1;
  check_float "discounted p2" 2.625 p2

let test_paper_payoffs () =
  let p1, p2 = R.discounted_payoffs R.pd_paper ~rounds:1 A.all_d A.all_c in
  check_float "defector gets 5" 5.0 p1;
  check_float "cooperator gets -5" (-5.0) p2

let test_counting_machine_defects_last () =
  let m = A.tft_defect_last ~horizon:4 in
  let play = R.play R.pd_classic ~rounds:4 m A.tit_for_tat in
  Alcotest.(check (list (pair int int))) "defects exactly at last round"
    [ (0, 0); (0, 0); (0, 0); (1, 0) ] play.R.actions

(* {1 FRPD (Example 3.2)} *)

let spec mu = { F.stage = R.pd_paper; horizon = 10; delta = 0.9; memory_cost = mu }

let test_tft_not_equilibrium_without_cost () =
  Alcotest.(check bool) "mu=0: not equilibrium" false
    (F.is_equilibrium ~space:(F.paper_space ~horizon:10) (spec 0.0) A.tit_for_tat)

let test_tft_equilibrium_with_cost () =
  Alcotest.(check bool) "mu=0.05: equilibrium" true
    (F.is_equilibrium ~space:(F.paper_space ~horizon:10) (spec 0.05) A.tit_for_tat)

let test_threshold_formula_matches () =
  (* The closed-form threshold: equilibrium iff mu >= threshold (against
     the counting deviation; other deviations are worse). *)
  let s = spec 0.0 in
  let threshold = F.tft_threshold_cost s in
  let below = { s with F.memory_cost = threshold *. 0.9 } in
  let above = { s with F.memory_cost = threshold *. 1.1 } in
  Alcotest.(check bool) "below threshold fails" false
    (F.is_equilibrium ~space:(F.paper_space ~horizon:10) below A.tit_for_tat);
  Alcotest.(check bool) "above threshold holds" true
    (F.is_equilibrium ~space:(F.paper_space ~horizon:10) above A.tit_for_tat)

let test_any_positive_cost_works_eventually () =
  (* The paper: for ANY positive memory cost, long enough games make TfT an
     equilibrium (gain 2δ^N vanishes). *)
  List.iter
    (fun mu ->
      match F.min_horizon_for_equilibrium ~memory_cost:mu ~delta:0.9 () with
      | Some n -> Alcotest.(check bool) (Printf.sprintf "mu=%f has a horizon" mu) true (n <= 60)
      | None -> Alcotest.failf "mu=%f: no horizon found" mu)
    [ 0.001; 0.01; 0.1 ]

let test_best_response_is_counting_machine_when_free () =
  let br, _ = F.best_response ~space:(F.paper_space ~horizon:10) (spec 0.0) A.tit_for_tat in
  Alcotest.(check string) "counting machine" "TfT-last-defect(10)" br.A.name

let test_allc_undercuts_in_full_space () =
  (* The documented artifact: in the full space, AllC (1 state) beats TfT
     against TfT under per-state charges. *)
  let br, _ = F.best_response (spec 0.05) A.tit_for_tat in
  Alcotest.(check string) "AllC undercuts" "AllC" br.A.name

let test_machine_game_symmetric () =
  let game, _ = F.to_game (spec 0.05) in
  Alcotest.(check bool) "symmetric" true (B.Normal_form.is_symmetric_2p game)

(* {1 Tournament} *)

let test_round_robin_deterministic () =
  let e1 = T.round_robin ~stage:R.pd_classic ~rounds:50 T.default_field in
  let e2 = T.round_robin ~stage:R.pd_classic ~rounds:50 T.default_field in
  Alcotest.(check (list string)) "same ranking"
    (List.map (fun e -> e.T.automaton.A.name) e1)
    (List.map (fun e -> e.T.automaton.A.name) e2)

let test_tft_among_top () =
  let entries = T.round_robin ~stage:R.pd_classic ~rounds:200 T.default_field in
  let names = List.map (fun e -> e.T.automaton.A.name) entries in
  let index_of name =
    let rec go i = function
      | [] -> Alcotest.failf "%s missing" name
      | n :: _ when n = name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 names
  in
  (* The reciprocating strategies finish above AllD and Alternator. *)
  Alcotest.(check bool) "TfT in top half" true (index_of "TfT" < 3);
  Alcotest.(check bool) "TfT beats AllD" true (index_of "TfT" < index_of "AllD");
  Alcotest.(check bool) "Grim beats AllD" true (index_of "Grim" < index_of "AllD")

let test_winner () =
  let entries = T.round_robin ~stage:R.pd_classic ~rounds:100 T.default_field in
  Alcotest.(check bool) "winner is head" true
    ((T.winner entries).A.name = (List.hd entries).T.automaton.A.name)

let test_cooperation_rates_sane () =
  let entries = T.round_robin ~stage:R.pd_classic ~rounds:100 T.default_field in
  List.iter
    (fun e ->
      Alcotest.(check bool) "rate in [0,1]" true
        (e.T.cooperation >= 0.0 && e.T.cooperation <= 1.0))
    entries

let discounted_le_undiscounted_property =
  QCheck.Test.make ~count:50 ~name:"repeated: |discounted| <= |undiscounted| for delta <= 1"
    QCheck.(pair (float_range 0.1 1.0) (int_range 1 20))
    (fun (delta, rounds) ->
      let d1, _ = R.discounted_payoffs ~delta R.pd_classic ~rounds A.tit_for_tat A.pavlov in
      let u1, _ = R.discounted_payoffs R.pd_classic ~rounds A.tit_for_tat A.pavlov in
      Float.abs d1 <= Float.abs u1 +. 1e-9)

let suite =
  [
    Alcotest.test_case "automata: zoo validates" `Quick test_zoo_validates;
    Alcotest.test_case "automata: sizes" `Quick test_sizes;
    Alcotest.test_case "automata: validation" `Quick test_validate_rejects;
    Alcotest.test_case "play: TfT vs AllD" `Quick test_tft_vs_alld_pattern;
    Alcotest.test_case "play: TfT self-play" `Quick test_tft_self_play_cooperates;
    Alcotest.test_case "play: Grim punishes" `Quick test_grim_punishes_forever;
    Alcotest.test_case "play: Pavlov" `Quick test_pavlov_recovers;
    Alcotest.test_case "play: discounting" `Quick test_discounting;
    Alcotest.test_case "play: paper payoffs" `Quick test_paper_payoffs;
    Alcotest.test_case "play: counting machine" `Quick test_counting_machine_defects_last;
    Alcotest.test_case "frpd: mu=0 not equilibrium" `Quick test_tft_not_equilibrium_without_cost;
    Alcotest.test_case "frpd: mu>threshold equilibrium" `Quick test_tft_equilibrium_with_cost;
    Alcotest.test_case "frpd: threshold formula" `Quick test_threshold_formula_matches;
    Alcotest.test_case "frpd: any positive cost works" `Slow test_any_positive_cost_works_eventually;
    Alcotest.test_case "frpd: counting machine is BR" `Quick
      test_best_response_is_counting_machine_when_free;
    Alcotest.test_case "frpd: AllC artifact" `Quick test_allc_undercuts_in_full_space;
    Alcotest.test_case "frpd: symmetric game" `Quick test_machine_game_symmetric;
    Alcotest.test_case "tournament: deterministic" `Quick test_round_robin_deterministic;
    Alcotest.test_case "tournament: TfT top half" `Quick test_tft_among_top;
    Alcotest.test_case "tournament: winner" `Quick test_winner;
    Alcotest.test_case "tournament: cooperation rates" `Quick test_cooperation_rates_sane;
    QCheck_alcotest.to_alcotest discounted_le_undiscounted_property;
  ]

(* {1 Noise} *)

let test_noisy_play_zero_noise_equals_play () =
  let rng = B.Prng.create 1 in
  let noisy = R.noisy_play rng ~noise:0.0 R.pd_classic ~rounds:20 A.tit_for_tat A.grim in
  let clean = R.play R.pd_classic ~rounds:20 A.tit_for_tat A.grim in
  Alcotest.(check bool) "identical traces" true (noisy.R.actions = clean.R.actions)

let test_noisy_play_full_noise_inverts () =
  (* noise = 1 flips every action: AllC vs AllC becomes mutual defection. *)
  let rng = B.Prng.create 2 in
  let play = R.noisy_play rng ~noise:1.0 R.pd_classic ~rounds:10 A.all_c A.all_c in
  Alcotest.(check (float 1e-9)) "no cooperation" 0.0 (R.cooperation_rate play)

let test_noisy_play_validation () =
  let rng = B.Prng.create 3 in
  Alcotest.check_raises "noise range" (Invalid_argument "Repeated.noisy_play: noise in [0,1]")
    (fun () -> ignore (R.noisy_play rng ~noise:1.5 R.pd_classic ~rounds:5 A.all_c A.all_c))

let test_noise_breaks_tft_self_play () =
  (* A single tremble sends TfT vs TfT into an echo feud: cooperation rate
     drops well below 1. *)
  let rng = B.Prng.create 4 in
  let play = R.noisy_play rng ~noise:0.05 R.pd_classic ~rounds:400 A.tit_for_tat A.tit_for_tat in
  let rate = R.cooperation_rate play in
  Alcotest.(check bool) "echo feuds" true (rate < 0.9);
  (* Pavlov recovers from trembles: strictly more cooperative than TfT here. *)
  let rng2 = B.Prng.create 4 in
  let pav = R.noisy_play rng2 ~noise:0.05 R.pd_classic ~rounds:400 A.pavlov A.pavlov in
  Alcotest.(check bool) "pavlov recovers" true (R.cooperation_rate pav > rate)

let test_noisy_tournament_runs () =
  let rng = B.Prng.create 5 in
  let entries =
    T.round_robin ~noise:(rng, 0.02) ~stage:R.pd_classic ~rounds:100 T.default_field
  in
  Alcotest.(check int) "full field" 6 (List.length entries)

let suite =
  suite
  @ [
      Alcotest.test_case "noise: zero = clean" `Quick test_noisy_play_zero_noise_equals_play;
      Alcotest.test_case "noise: full inverts" `Quick test_noisy_play_full_noise_inverts;
      Alcotest.test_case "noise: validation" `Quick test_noisy_play_validation;
      Alcotest.test_case "noise: TfT echo feuds" `Quick test_noise_breaks_tft_self_play;
      Alcotest.test_case "noise: tournament" `Quick test_noisy_tournament_runs;
    ]
