test/main.mli:
