test/test_crypto.ml: Alcotest Array Beyond_nash Gen List QCheck QCheck_alcotest
