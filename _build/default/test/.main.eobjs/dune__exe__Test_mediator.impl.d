test/test_mediator.ml: Alcotest Array Beyond_nash List Printf QCheck QCheck_alcotest
