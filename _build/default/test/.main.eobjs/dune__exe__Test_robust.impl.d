test/test_robust.ml: Alcotest Array Beyond_nash Gen List QCheck QCheck_alcotest
