test/test_scrip_p2p.ml: Alcotest Array Beyond_nash QCheck QCheck_alcotest
