test/test_rationalizable_parse.ml: Alcotest Array Beyond_nash Gen List Printf QCheck QCheck_alcotest
