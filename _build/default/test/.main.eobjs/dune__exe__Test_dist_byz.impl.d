test/test_dist_byz.ml: Alcotest Array Beyond_nash List Printf QCheck QCheck_alcotest
