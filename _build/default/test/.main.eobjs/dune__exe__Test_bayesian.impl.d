test/test_bayesian.ml: Alcotest Array Beyond_nash Float List QCheck QCheck_alcotest
