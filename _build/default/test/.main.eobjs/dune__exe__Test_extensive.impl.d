test/test_extensive.ml: Alcotest Array Beyond_nash Gen List QCheck QCheck_alcotest String
