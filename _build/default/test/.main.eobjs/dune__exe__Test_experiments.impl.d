test/test_experiments.ml: Alcotest Bn_experiments Fun List Printf Unix
