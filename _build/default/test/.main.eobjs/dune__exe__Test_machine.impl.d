test/test_machine.ml: Alcotest Array Beyond_nash Float List QCheck QCheck_alcotest
