test/test_repeated.ml: Alcotest Beyond_nash Float List Printf QCheck QCheck_alcotest
