test/test_protocols2.ml: Alcotest Array Beyond_nash Float Fun Printf QCheck QCheck_alcotest
