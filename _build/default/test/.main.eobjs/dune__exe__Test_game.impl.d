test/test_game.ml: Alcotest Array Beyond_nash Float Gen List QCheck QCheck_alcotest
