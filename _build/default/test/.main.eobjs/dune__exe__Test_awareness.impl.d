test/test_awareness.ml: Alcotest Array Beyond_nash List QCheck QCheck_alcotest
