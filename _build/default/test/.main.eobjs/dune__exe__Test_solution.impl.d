test/test_solution.ml: Alcotest Array Beyond_nash Format List
