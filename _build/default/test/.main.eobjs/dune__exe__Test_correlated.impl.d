test/test_correlated.ml: Alcotest Array Beyond_nash Gen List QCheck QCheck_alcotest
