test/test_util.ml: Alcotest Array Beyond_nash Float Fun Gen List Printf QCheck QCheck_alcotest String
