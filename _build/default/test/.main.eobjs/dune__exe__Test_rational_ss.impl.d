test/test_rational_ss.ml: Alcotest Array Beyond_nash Float Fun List Printf QCheck QCheck_alcotest
