test/test_lp.ml: Alcotest Array Beyond_nash Gen List QCheck QCheck_alcotest
