test/test_canned_sunspot.ml: Alcotest Array Beyond_nash Float Hashtbl List Printf QCheck QCheck_alcotest String
