module B = Beyond_nash
module S = B.Solution

let test_nash_equals_robust_10 () =
  List.iter
    (fun g ->
      B.Normal_form.iter_profiles g (fun p ->
          let prof = B.Mixed.pure_profile g p in
          Alcotest.(check bool) "Nash = Robust(1,0)"
            (S.check g prof S.Nash)
            (S.check g prof (S.Robust (1, 0)))))
    [ B.Games.prisoners_dilemma; B.Games.chicken; B.Games.stag_hunt ]

let test_classify_coordination () =
  let g = B.Games.coordination_01 5 in
  let all0 = B.Mixed.pure_profile g (Array.make 5 0) in
  match S.classify g all0 with
  | `Robust (k, t) ->
    Alcotest.(check int) "k = 1" 1 k;
    Alcotest.(check int) "t = 0" 0 t
  | `Not_nash -> Alcotest.fail "all-0 is Nash"

let test_classify_bargaining () =
  let g = B.Games.bargaining 4 in
  let stay = B.Mixed.pure_profile g (Array.make 4 0) in
  match S.classify g stay with
  | `Robust (k, t) ->
    Alcotest.(check int) "maximally resilient" 4 k;
    Alcotest.(check int) "not immune" 0 t
  | `Not_nash -> Alcotest.fail "all-stay is Nash"

let test_classify_not_nash () =
  let g = B.Games.prisoners_dilemma in
  let cc = B.Mixed.pure_profile g [| 0; 0 |] in
  Alcotest.(check bool) "CC not Nash" true (S.classify g cc = `Not_nash)

let test_concept_checks () =
  let g = B.Games.bargaining 3 in
  let stay = B.Mixed.pure_profile g (Array.make 3 0) in
  Alcotest.(check bool) "resilient 2" true (S.check g stay (S.Resilient 2));
  Alcotest.(check bool) "immune 1 fails" false (S.check g stay (S.Immune 1))

let test_computational_nash_bridge () =
  let g = B.Comp_roshambo.game () in
  Alcotest.(check bool) "no profile passes" true
    (List.for_all
       (fun choice -> not (S.computational_nash g ~choice))
       (B.Combin.profiles [| 4; 4 |]))

let test_generalized_nash_bridge () =
  let t = B.Aware_examples.with_awareness ~p:0.25 in
  let eqs = B.Aware_examples.generalized_equilibria ~p:0.25 in
  List.iter
    (fun prof -> Alcotest.(check bool) "bridge agrees" true (S.generalized_nash t prof))
    eqs

let test_pp_concept () =
  let render c = Format.asprintf "%a" S.pp_concept c in
  Alcotest.(check string) "nash" "Nash" (render S.Nash);
  Alcotest.(check string) "resilient" "3-resilient" (render (S.Resilient 3));
  Alcotest.(check string) "robust" "(2,1)-robust" (render (S.Robust (2, 1)))

let suite =
  [
    Alcotest.test_case "Nash = Robust(1,0)" `Quick test_nash_equals_robust_10;
    Alcotest.test_case "classify: coordination" `Quick test_classify_coordination;
    Alcotest.test_case "classify: bargaining" `Quick test_classify_bargaining;
    Alcotest.test_case "classify: not Nash" `Quick test_classify_not_nash;
    Alcotest.test_case "concept checks" `Quick test_concept_checks;
    Alcotest.test_case "computational bridge" `Quick test_computational_nash_bridge;
    Alcotest.test_case "generalized bridge" `Quick test_generalized_nash_bridge;
    Alcotest.test_case "pp concept" `Quick test_pp_concept;
  ]
