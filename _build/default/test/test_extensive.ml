module B = Beyond_nash
module E = B.Extensive

let check_float = Alcotest.(check (float 1e-9))

(* Entry game: entrant enters or stays out; incumbent fights or accommodates. *)
let entry_game =
  E.create ~n_players:2
    (E.Decision
       {
         player = 0;
         info = "entrant";
         moves =
           [
             ("out", E.Terminal [| 0.0; 2.0 |]);
             ( "enter",
               E.Decision
                 {
                   player = 1;
                   info = "incumbent";
                   moves =
                     [ ("fight", E.Terminal [| -1.0; -1.0 |]); ("accommodate", E.Terminal [| 1.0; 1.0 |]) ];
                 } );
           ];
       })

(* A game with a chance move: nature deals high/low, player guesses. *)
let guessing_game =
  E.create ~n_players:1
    (E.Chance
       [
         ( "high",
           0.7,
           E.Decision
             {
               player = 0;
               info = "guess-after-high";
               moves = [ ("say-high", E.Terminal [| 1.0 |]); ("say-low", E.Terminal [| 0.0 |]) ];
             } );
         ( "low",
           0.3,
           E.Decision
             {
               player = 0;
               info = "guess-after-low";
               moves = [ ("say-high", E.Terminal [| 0.0 |]); ("say-low", E.Terminal [| 1.0 |]) ];
             } );
       ])

(* Matching pennies in extensive form with an information set: player 1
   moves, player 2 moves without observing (same info label). *)
let hidden_mp =
  let leaf a b = E.Terminal [| (if a = b then 1.0 else -1.0); (if a = b then -1.0 else 1.0) |] in
  E.create ~n_players:2
    (E.Decision
       {
         player = 0;
         info = "p1";
         moves =
           [
             ( "H",
               E.Decision
                 { player = 1; info = "p2"; moves = [ ("h", leaf 0 0); ("t", leaf 0 1) ] } );
             ( "T",
               E.Decision
                 { player = 1; info = "p2"; moves = [ ("h", leaf 1 0); ("t", leaf 1 1) ] } );
           ];
       })

let test_validation_payoff_arity () =
  Alcotest.check_raises "payoff arity" (Invalid_argument "Extensive.create: payoff arity")
    (fun () -> ignore (E.create ~n_players:2 (E.Terminal [| 1.0 |])))

let test_validation_chance_probs () =
  Alcotest.check_raises "chance probs"
    (Invalid_argument "Extensive.create: chance probabilities must sum to 1") (fun () ->
      ignore
        (E.create ~n_players:1
           (E.Chance [ ("a", 0.4, E.Terminal [| 0.0 |]); ("b", 0.4, E.Terminal [| 1.0 |]) ])))

let test_validation_inconsistent_info_set () =
  Alcotest.check_raises "info set moves"
    (Invalid_argument "Extensive.create: inconsistent moves within an information set")
    (fun () ->
      ignore
        (E.create ~n_players:1
           (E.Chance
              [
                ( "a",
                  0.5,
                  E.Decision { player = 0; info = "i"; moves = [ ("x", E.Terminal [| 0.0 |]) ] } );
                ( "b",
                  0.5,
                  E.Decision
                    {
                      player = 0;
                      info = "i";
                      moves = [ ("x", E.Terminal [| 0.0 |]); ("y", E.Terminal [| 1.0 |]) ];
                    } );
              ])))

let test_info_sets () =
  Alcotest.(check int) "entrant sets" 1 (List.length (E.info_sets entry_game ~player:0));
  Alcotest.(check int) "p2 one info set" 1 (List.length (E.info_sets hidden_mp ~player:1))

let test_histories () =
  Alcotest.(check int) "entry histories" 3 (List.length (E.histories entry_game));
  Alcotest.(check int) "guessing histories" 4 (List.length (E.histories guessing_game))

let test_pure_strategies () =
  Alcotest.(check int) "entrant strategies" 2 (List.length (E.pure_strategies entry_game ~player:0));
  Alcotest.(check int) "guesser strategies" 4 (List.length (E.pure_strategies guessing_game ~player:0))

let test_outcome_and_payoffs () =
  let strategies =
    [| E.behavioral_of_pure [ ("entrant", "enter") ]; E.behavioral_of_pure [ ("incumbent", "accommodate") ] |]
  in
  let u = E.expected_payoffs entry_game strategies in
  check_float "entrant" 1.0 u.(0);
  check_float "incumbent" 1.0 u.(1)

let test_outcome_with_chance () =
  let perfect =
    [| E.behavioral_of_pure [ ("guess-after-high", "say-high"); ("guess-after-low", "say-low") ] |]
  in
  check_float "perfect guessing" 1.0 (E.expected_payoffs guessing_game perfect).(0);
  let always_high =
    [| E.behavioral_of_pure [ ("guess-after-high", "say-high"); ("guess-after-low", "say-high") ] |]
  in
  check_float "always high" 0.7 (E.expected_payoffs guessing_game always_high).(0)

let test_behavioral_mixing () =
  let mixed = [| [ ("p1", [ ("H", 0.5); ("T", 0.5) ]) ]; [ ("p2", [ ("h", 0.5); ("t", 0.5) ]) ] |] in
  check_float "uniform MP value" 0.0 (E.expected_payoffs hidden_mp mixed).(0)

let test_backward_induction_entry () =
  let profile, value = E.backward_induction entry_game in
  check_float "entrant value" 1.0 value.(0);
  Alcotest.(check (list (pair string string))) "incumbent accommodates"
    [ ("incumbent", "accommodate") ] profile.(1);
  Alcotest.(check (list (pair string string))) "entrant enters" [ ("entrant", "enter") ]
    profile.(0)

let test_backward_induction_rejects_imperfect_info () =
  Alcotest.check_raises "imperfect information"
    (Invalid_argument "Extensive.backward_induction: imperfect information") (fun () ->
      ignore (E.backward_induction hidden_mp))

let test_backward_induction_with_chance () =
  let profile, value = E.backward_induction guessing_game in
  check_float "value" 1.0 value.(0);
  Alcotest.(check int) "strategy covers both sets" 2 (List.length profile.(0))

let test_to_normal_form () =
  let game, strategies = E.to_normal_form entry_game in
  Alcotest.(check int) "2x2 normal form" 2 (B.Normal_form.num_actions game 0);
  Alcotest.(check int) "strategy denotations" 2 (List.length strategies.(0));
  (* The entry game has 2 pure Nash equilibria: (enter, accommodate) and
     (out, fight) — the latter non-credible, eliminated by backward
     induction. *)
  Alcotest.(check int) "2 pure NE" 2 (List.length (B.Nash.pure_equilibria game))

let test_is_nash_consistency () =
  let spe = [| E.behavioral_of_pure [ ("entrant", "enter") ]; E.behavioral_of_pure [ ("incumbent", "accommodate") ] |] in
  Alcotest.(check bool) "SPE is Nash" true (E.is_nash entry_game spe);
  let bad = [| E.behavioral_of_pure [ ("entrant", "out") ]; E.behavioral_of_pure [ ("incumbent", "accommodate") ] |] in
  Alcotest.(check bool) "out/accommodate not Nash" false (E.is_nash entry_game bad)

let backward_induction_is_nash_property =
  QCheck.Test.make ~count:50 ~name:"extensive: backward induction yields a Nash equilibrium"
    QCheck.(array_of_size (Gen.return 6) (float_range (-5.0) 5.0))
    (fun payoffs ->
      (* Random perfect-information 2-level tree. *)
      let g =
        E.create ~n_players:2
          (E.Decision
             {
               player = 0;
               info = "root";
               moves =
                 [
                   ( "l",
                     E.Decision
                       {
                         player = 1;
                         info = "after-l";
                         moves =
                           [
                             ("a", E.Terminal [| payoffs.(0); payoffs.(1) |]);
                             ("b", E.Terminal [| payoffs.(2); payoffs.(3) |]);
                           ];
                       } );
                   ("r", E.Terminal [| payoffs.(4); payoffs.(5) |]);
                 ];
             })
      in
      let profile, _ = E.backward_induction g in
      E.is_nash g (Array.map E.behavioral_of_pure profile))

let suite =
  [
    Alcotest.test_case "validation: payoff arity" `Quick test_validation_payoff_arity;
    Alcotest.test_case "validation: chance probs" `Quick test_validation_chance_probs;
    Alcotest.test_case "validation: info sets" `Quick test_validation_inconsistent_info_set;
    Alcotest.test_case "info sets" `Quick test_info_sets;
    Alcotest.test_case "histories" `Quick test_histories;
    Alcotest.test_case "pure strategies" `Quick test_pure_strategies;
    Alcotest.test_case "outcome and payoffs" `Quick test_outcome_and_payoffs;
    Alcotest.test_case "outcome with chance" `Quick test_outcome_with_chance;
    Alcotest.test_case "behavioral mixing" `Quick test_behavioral_mixing;
    Alcotest.test_case "backward induction: entry" `Quick test_backward_induction_entry;
    Alcotest.test_case "backward induction: rejects imperfect info" `Quick
      test_backward_induction_rejects_imperfect_info;
    Alcotest.test_case "backward induction: chance" `Quick test_backward_induction_with_chance;
    Alcotest.test_case "to normal form" `Quick test_to_normal_form;
    Alcotest.test_case "is_nash consistency" `Quick test_is_nash_consistency;
    QCheck_alcotest.to_alcotest backward_induction_is_nash_property;
  ]

let test_to_dot () =
  let dot = E.to_dot ~title:"entry" entry_game in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph \"entry\"");
  Alcotest.(check bool) "has decision node" true (contains dot "P1/entrant");
  Alcotest.(check bool) "has terminal" true (contains dot "shape=box");
  Alcotest.(check bool) "has move label" true (contains dot "\"enter\"")

let test_to_dot_chance () =
  let dot = E.to_dot guessing_game in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chance diamond" true (contains dot "shape=diamond");
  Alcotest.(check bool) "probability label" true (contains dot "(0.70)")

let suite =
  suite
  @ [
      Alcotest.test_case "to_dot: structure" `Quick test_to_dot;
      Alcotest.test_case "to_dot: chance" `Quick test_to_dot_chance;
    ]
