module B = Beyond_nash
let () =
  let params = { (B.Gnutella.default_params ~users:1000) with B.Gnutella.queries = 10 } in
  let st = B.Gnutella_soa.simulate ~jobs:1 ~shards:64 (B.Prng.create 1) params in
  Printf.printf "ok sharers=%d\n" st.B.Gnutella.sharers
