(* Computational games (§3): two scenarios where charging for computation
   changes what "rational" means.

   Run with: dune exec examples/costly_computation.exe *)

module B = Beyond_nash

(* Scenario 1: a data-auction sniping game. Two bidders can run an exact
   valuation model (action = true value, complexity grows with the catalog
   size) or bid a cheap heuristic. High accuracy only pays when the
   opponent is also accurate; once we charge for the model's runtime, the
   heuristic profile becomes the computational equilibrium. *)
let sniping ~catalog_bits ~cost =
  let exact =
    B.Machine.deterministic "exact-model"
      ~complexity:(fun _ -> float_of_int (catalog_bits * catalog_bits))
      (fun _ -> 1)
  in
  let heuristic = B.Machine.deterministic "heuristic" ~complexity:(fun _ -> 1.0) (fun _ -> 0) in
  let base acts =
    match (acts.(0), acts.(1)) with
    | 1, 1 -> [| 6.0; 6.0 |] (* both accurate: efficient trade *)
    | 1, 0 -> [| 7.0; 2.0 |] (* accurate bidder exploits the sloppy one *)
    | 0, 1 -> [| 2.0; 7.0 |]
    | _ -> [| 4.0; 4.0 |]
  in
  B.Machine_game.simple
    ~machines:[| [| exact; heuristic |]; [| exact; heuristic |] |]
    ~base ~charge:[| cost; cost |]

let () =
  print_endline "== scenario 1: auction with costly valuation models ==";
  List.iter
    (fun (bits, cost) ->
      let g = sniping ~catalog_bits:bits ~cost in
      let eqs = B.Machine_game.nash_equilibria g in
      let show choice =
        Printf.sprintf "(%s, %s)"
          (B.Machine_game.machine_space g ~player:0).(choice.(0)).B.Machine.name
          (B.Machine_game.machine_space g ~player:1).(choice.(1)).B.Machine.name
      in
      Printf.printf "catalog %2d bits, cost %.3f/op: equilibria = %s\n" bits cost
        (String.concat "; " (List.map show eqs)))
    [ (2, 0.01); (8, 0.01); (16, 0.02); (32, 0.01); (16, 0.0) ];

  (* Scenario 2: the paper's primality game, end to end. *)
  print_endline "\n== scenario 2: the primality game (Ex 3.1) ==";
  let rng = B.Prng.create 31415 in
  List.iter
    (fun bits ->
      let spec = B.Primality.default_spec ~bits ~cost_per_op:0.05 in
      let best = B.Primality.machine_names.(B.Primality.equilibrium_choice (B.Prng.split rng bits) spec) in
      Printf.printf "%2d-bit inputs: computational equilibrium machine = %s\n" bits best)
    [ 8; 16; 24; 32; 40 ];

  (* Scenario 3: FRPD — cooperation bought with memory costs (Ex 3.2). *)
  print_endline "\n== scenario 3: tit-for-tat as a computational equilibrium (Ex 3.2) ==";
  let delta = 0.9 in
  List.iter
    (fun mu ->
      match B.Frpd.min_horizon_for_equilibrium ~memory_cost:mu ~delta () with
      | Some horizon ->
        Printf.printf "memory cost %.3f: (TfT,TfT) is an equilibrium for all N >= %d\n" mu horizon
      | None -> Printf.printf "memory cost %.3f: no horizon <= 60\n" mu)
    [ 0.002; 0.01; 0.05 ]
