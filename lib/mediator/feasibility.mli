(** The Abraham–Dolev–Gonen–Halpern characterization of when mediators can
    be implemented by cheap talk (paper §2, the nine bullets).

    [classify ~n ~k ~t assumptions] walks the thresholds in the order the
    paper states them and returns the strongest implementation the regime
    admits, or the impossibility that blocks it, together with the bullet
    it comes from. *)

type assumptions = {
  utilities_known : bool;
      (** Whether the protocol may depend on players' utility functions. *)
  punishment : bool;  (** A (k+t)-punishment strategy exists. *)
  broadcast : bool;  (** Broadcast channels are available. *)
  crypto : bool;  (** Cryptography + polynomially-bounded players. *)
  pki : bool;  (** A public-key infrastructure exists (implies crypto). *)
}

val no_assumptions : assumptions
(** Everything false: bare cheap talk with unknown utilities. *)

val all_assumptions : assumptions

type running_time =
  | Bounded  (** Fixed number of rounds, independent of utilities. *)
  | Bounded_expected  (** Bounded expectation, independent of utilities. *)
  | Finite_expected  (** Finite expectation, independent of utilities. *)
  | Utility_dependent  (** Expectation necessarily depends on utilities/ε. *)

type verdict =
  | Implementable of {
      exact : bool;  (** true = exact implementation, false = ε. *)
      running_time : running_time;
      needs : string list;  (** Assumptions the construction uses. *)
      bullet : int;  (** Which of the paper's nine bullets (1-based). *)
    }
  | Impossible of { reason : string; bullet : int }

val classify : n:int -> k:int -> t:int -> assumptions -> verdict
(** Requires [n ≥ 1], [k ≥ 1], [t ≥ 0]: a (k,t)-robust equilibrium with
    k = 0 is not an equilibrium notion ((1,0) is Nash).
    @raise Invalid_argument otherwise. *)

val describe : verdict -> string
(** One-line rendering for tables. *)

val bullet_text : int -> string
(** The paper's statement being applied (abridged). *)

(** {1 Asynchronous cheap talk}

    The successor paper (Abraham–Dolev–Geffner–Halpern, arXiv:1806.01214)
    moves the characterization to asynchronous networks: a (k,t)-robust
    mediator is implementable by asynchronous cheap talk iff
    [n > 4(k+t)]. The executable protocol ({!Async_cheap_talk}) makes the
    two impossibility regimes distinguishable: with [3(k+t) < n ≤ 4(k+t)]
    decoding stalls only when [k+t] parties fall silent, while with
    [n ≤ 3(k+t)] it stalls even in fault-free executions. *)

type async_verdict =
  | Async_implementable  (** [n > 4(k+t)]. *)
  | Async_breaks_under_faults
      (** [3(k+t) < n ≤ 4(k+t)]: a schedule silencing [k+t] parties leaves
          fewer than [3(k+t)+1] shares, below the decoding bound. *)
  | Async_breaks_fault_free
      (** [n ≤ 3(k+t)]: even all [n] shares are too few to decode. *)

val classify_async : n:int -> k:int -> t:int -> async_verdict
(** Same domain as {!classify}.
    @raise Invalid_argument unless [n ≥ 1], [k ≥ 1], [t ≥ 0]. *)

val describe_async : async_verdict -> string
