(** Cheap-talk implementations of mediators (paper §2).

    Two constructions:

    - {!generals_eig}: implements the Byzantine-agreement mediator
      ({!Ba_game.mediator}) by unauthenticated Byzantine agreement — the
      general disseminates its type, then all players run EIG on what they
      received. For [n > 3t] this induces exactly the mediator's action
      distribution for every type, with bounded (t+2) rounds and no
      knowledge of utilities, the shape of the paper's first bullet. A
      {e naive echo} protocol is provided as the straw man that a faulty
      general breaks.

    - {!share_exchange}: the secret-reconstruction step at the core of the
      MPC-style constructions: a recommendation is Shamir-shared with
      polynomial degree [k+t] (so coalitions of size ≤ k+t learn nothing
      early) and reconstruction must tolerate [t] corrupted shares, which
      Berlekamp–Welch decoding achieves exactly when [n ≥ (k+t) + 2t + 1],
      i.e. [n > k+3t] — the threshold of the paper's seventh bullet. *)

type outcome = {
  actions : int option array;  (** Honest players' actions; [None] = corrupt. *)
  rounds : int;
  messages : int;
}

val generals_eig :
  ?corrupted:int list ->
  ?delivered:int array ->
  ?faults:Bn_byzantine.Eig.msg Bn_dist_sim.Sync_net.fault_plan ->
  n:int -> t:int -> general_type:int ->
  unit ->
  outcome
(** Round 1 the general sends its type to everyone; [delivered] overrides
    what each player received (an equivocating general); [corrupted]
    players then follow the EIG lying adversary; [faults] injects an
    environment fault plan into the EIG phase (see
    {!Bn_dist_sim.Faults}). Honest players act on the EIG decision. *)

val generals_naive :
  ?delivered:int array ->
  n:int -> general_type:int ->
  unit ->
  outcome
(** The echo protocol: everyone simply plays whatever the general sent
    them. Correct with an honest general, broken by an equivocating one. *)

val tv_to_mediator :
  n:int -> general_type:int -> outcome -> float
(** Total-variation distance between the mediator's action distribution for
    this type and the (deterministic) cheap-talk outcome, over honest
    players' actions. Corrupt players are projected out of both sides. *)

type share_exchange_result = {
  succeeded : bool;  (** Every honest player reconstructed the secret. *)
  reconstructions : int option array;
  threshold_needed : int;  (** k + 3t + 1, the decoding bound. *)
}

val share_exchange :
  Bn_util.Prng.t -> n:int -> k:int -> t:int -> secret:int ->
  corrupted:int list ->
  share_exchange_result
(** Shares [secret] with degree [k+t] among [n] players; players on
    [corrupted] broadcast corrupted shares; every honest player then runs
    robust reconstruction with [max_errors = t]. *)

val share_exchange_succeeds_theoretically : n:int -> k:int -> t:int -> bool
(** [n ≥ k + 3t + 1]. *)
