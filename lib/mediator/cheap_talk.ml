module Dist = Bn_util.Dist
module Eig = Bn_byzantine.Eig
module Sync_net = Bn_dist_sim.Sync_net
module Shamir = Bn_crypto.Shamir

type outcome = {
  actions : int option array;
  rounds : int;
  messages : int;
}

let generals_eig ?(corrupted = []) ?delivered ?faults ~n ~t ~general_type () =
  (* Round 1: dissemination. [delivered.(i)] is what player i heard from the
     general (equal to the type when the general is honest). *)
  let values =
    match delivered with
    | Some v ->
      if Array.length v <> n then invalid_arg "Cheap_talk.generals_eig: delivered arity";
      v
    | None -> Array.make n general_type
  in
  let adversary =
    match corrupted with
    | [] -> None
    | _ -> Some (Eig.lying_adversary ~n ~corrupted ~claim:(1 - general_type))
  in
  let result = Eig.run ?adversary ?faults ~n ~t ~values ~default:0 () in
  {
    actions = result.Sync_net.outputs;
    rounds = 1 + result.Sync_net.rounds_run;
    messages = n + result.Sync_net.messages_sent;
  }

let generals_naive ?delivered ~n ~general_type () =
  let values =
    match delivered with
    | Some v -> v
    | None -> Array.make n general_type
  in
  { actions = Array.init n (fun i -> Some values.(i)); rounds = 1; messages = n }

let tv_to_mediator ~n ~general_type outcome =
  let med = Ba_game.mediator ~n in
  let types = Array.init n (fun i -> if i = 0 then general_type else 0) in
  let med_dist = Mediated.outcome_for_types med types in
  (* Project both distributions onto honest players' coordinates. *)
  let honest = List.filter (fun i -> outcome.actions.(i) <> None) (List.init n Fun.id) in
  let project acts = List.map (fun i -> acts.(i)) honest in
  let med_proj = Dist.map project med_dist in
  let ct_proj =
    Dist.return (List.map (fun i -> Option.get outcome.actions.(i)) honest)
  in
  Dist.tv_distance med_proj ct_proj

type share_exchange_result = {
  succeeded : bool;
  reconstructions : int option array;
  threshold_needed : int;
}

let share_exchange rng ~n ~k ~t ~secret ~corrupted =
  let degree = k + t in
  if degree >= n then
    { succeeded = false; reconstructions = Array.make n None; threshold_needed = k + (3 * t) + 1 }
  else begin
    let shares = Array.of_list (Shamir.share rng ~secret ~threshold:degree ~n) in
    (* Corrupted players broadcast garbage shares; everyone sees the same
       (broadcast-channel) list of claimed shares. *)
    let claimed =
      Array.mapi
        (fun i s ->
          if List.mem i corrupted then { s with Shamir.y = Bn_crypto.Field.add s.Shamir.y (1 + Bn_util.Prng.int rng 1000) }
          else s)
        shares
    in
    let reconstructions =
      Array.init n (fun i ->
          if List.mem i corrupted then None
          else
            Shamir.robust_reconstruct ~degree ~max_errors:t (Array.to_list claimed))
    in
    let succeeded =
      List.for_all
        (fun i -> List.mem i corrupted || reconstructions.(i) = Some secret)
        (List.init n Fun.id)
    in
    { succeeded; reconstructions; threshold_needed = k + (3 * t) + 1 }
  end

let share_exchange_succeeds_theoretically ~n ~k ~t = n >= k + (3 * t) + 1
