type assumptions = {
  utilities_known : bool;
  punishment : bool;
  broadcast : bool;
  crypto : bool;
  pki : bool;
}

let no_assumptions =
  { utilities_known = false; punishment = false; broadcast = false; crypto = false; pki = false }

let all_assumptions =
  { utilities_known = true; punishment = true; broadcast = true; crypto = true; pki = true }

type running_time = Bounded | Bounded_expected | Finite_expected | Utility_dependent

type verdict =
  | Implementable of {
      exact : bool;
      running_time : running_time;
      needs : string list;
      bullet : int;
    }
  | Impossible of { reason : string; bullet : int }

let bullet_text = function
  | 1 -> "n > 3k+3t: exact implementation, bounded time, no utility knowledge"
  | 2 -> "n <= 3k+3t: needs utilities; even then needs a (k+t)-punishment strategy and unbounded time"
  | 3 -> "n > 2k+3t: exact implementation given punishment strategy and known utilities, finite expected time"
  | 4 -> "n <= 2k+3t: not implementable in general, even with punishment and known utilities"
  | 5 -> "n > 2k+2t + broadcast: eps-implementation, bounded expected time"
  | 6 -> "n <= 2k+2t: no eps-implementation even with broadcast; with crypto, time depends on utilities and eps"
  | 7 -> "n > k+3t + crypto: eps-implementation (time utility-dependent if n <= 2k+2t)"
  | 8 -> "n <= k+3t: no eps-implementation even with crypto and punishment"
  | 9 -> "n > k+t + crypto + PKI: eps-implementation"
  | b -> invalid_arg (Printf.sprintf "Feasibility.bullet_text: %d" b)

(* The cascade prefers exact implementations (bullets 1, 3) and falls back
   to the ε-implementations (bullets 5, 7, 9) when the exact routes lack
   their assumptions; the blocking impossibility reported is the tightest
   one for the regime. *)
let classify ~n ~k ~t a =
  if n < 1 || k < 1 || t < 0 then invalid_arg "Feasibility.classify: need n >= 1, k >= 1, t >= 0";
  let crypto = a.crypto || a.pki in
  if n > (3 * k) + (3 * t) then
    Implementable { exact = true; running_time = Bounded; needs = []; bullet = 1 }
  else if n > (2 * k) + (3 * t) && a.utilities_known && a.punishment then
    Implementable
      {
        exact = true;
        running_time = Finite_expected;
        needs = [ "known utilities"; "(k+t)-punishment" ];
        bullet = 3;
      }
  else if n > (2 * k) + (2 * t) && a.broadcast then
    Implementable
      {
        exact = false;
        running_time = Bounded_expected;
        needs = [ "broadcast channels" ];
        bullet = 5;
      }
  else if crypto && n > k + (3 * t) then
    (* Bullet 7; the expected running time is utility/ε-dependent exactly
       when n <= 2k+2t (bullet 6's second half). *)
    Implementable
      {
        exact = false;
        running_time = (if n > (2 * k) + (2 * t) then Bounded_expected else Utility_dependent);
        needs = [ "cryptography" ];
        bullet = 7;
      }
  else if a.pki && n > k + t then
    Implementable
      {
        exact = false;
        running_time = Utility_dependent;
        needs = [ "cryptography"; "PKI" ];
        bullet = 9;
      }
  else if n > (2 * k) + (3 * t) then
    Impossible
      {
        reason = "n <= 3k+3t: requires knowledge of utilities and a (k+t)-punishment strategy";
        bullet = 2;
      }
  else if n > (2 * k) + (2 * t) then
    Impossible
      { reason = "n <= 2k+3t: exact implementation impossible in general"; bullet = 4 }
  else if crypto then
    Impossible
      {
        reason =
          (if n <= k + t then "n <= k+t: too few honest-and-rational players"
           else "n <= k+3t: not eps-implementable even with cryptography and punishment");
        bullet = 8;
      }
  else
    Impossible
      { reason = "n <= 2k+2t: not eps-implementable, even with broadcast channels"; bullet = 6 }

(* {1 Asynchronous cheap talk (Abraham–Dolev–Geffner–Halpern)} *)

type async_verdict =
  | Async_implementable
  | Async_breaks_under_faults
  | Async_breaks_fault_free

let classify_async ~n ~k ~t =
  if n < 1 || k < 1 || t < 0 then
    invalid_arg "Feasibility.classify_async: need n >= 1, k >= 1, t >= 0";
  let f = k + t in
  if n > 4 * f then Async_implementable
  else if n > 3 * f then Async_breaks_under_faults
  else Async_breaks_fault_free

let describe_async = function
  | Async_implementable -> "async-implementable (n > 4(k+t))"
  | Async_breaks_under_faults ->
    "async-impossible (3(k+t) < n <= 4(k+t): k+t silent parties stall decoding)"
  | Async_breaks_fault_free -> "async-impossible (n <= 3(k+t): stalls even fault-free)"

let describe = function
  | Implementable { exact; running_time; needs; bullet } ->
    let rt =
      match running_time with
      | Bounded -> "bounded"
      | Bounded_expected -> "bounded-expected"
      | Finite_expected -> "finite-expected"
      | Utility_dependent -> "utility-dependent"
    in
    Printf.sprintf "%s (%s%s) [b%d]"
      (if exact then "implementable" else "eps-implementable")
      rt
      (if needs = [] then "" else "; needs " ^ String.concat "+" needs)
      bullet
  | Impossible { reason = _; bullet } -> Printf.sprintf "impossible [b%d]" bullet
