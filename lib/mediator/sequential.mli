(** k-resilient sequential equilibrium for communication games
    (arXiv:2309.14618, Geffner–Halpern).

    Nash checks ignore what happens off the equilibrium path, which is
    precisely where cheap-talk protocols hide non-credible threats: a
    punishment clause nobody would carry out still deters in Nash terms.
    Sequential equilibrium closes that gap — at {e every} information set,
    given beliefs obtained as the limit of small trembles, the prescribed
    continuation must be a best response; the k-resilient version asks it
    for every coalition of up to [k] players.

    {!check} verifies this per information set against the induced
    extensive game: beliefs come from an ε-perturbed profile (every move
    trembled to probability ≥ ε/m), and a {!witness} is a coalition whose
    joint pure deviation strictly improves every member conditional on
    reaching the set. The two canned games bracket the thresholds the
    mediator sweep explores: {!punishment_game} flips at [n > 2k+2t]
    (bullets 5/6 — credibility of majority punishment) and
    {!async_stall_game} at [n > 4(k+t)] (the asynchronous decoding
    bound). *)

type witness = {
  info : string;  (** The information set where the deviation pays. *)
  owner : int;  (** The player who moves there. *)
  coalition : int list;
  deviation : Bn_extensive.Extensive.pure array;  (** One plan per member. *)
  gains : (int * float) list;  (** Strict conditional gain per member. *)
}

val check :
  ?trembles:float ->
  ?tol:float ->
  Bn_extensive.Extensive.t ->
  Bn_extensive.Extensive.behavioral array ->
  k:int ->
  witness option
(** [None] iff the profile is a k-resilient sequential equilibrium: no
    coalition of ≤ [k] players has a joint pure deviation strictly
    improving every member at any information set, with beliefs derived
    from the [trembles]-perturbed profile (default [1e-3]) and strictness
    margin [tol] (default [1e-9]). The profile must cover every
    information set of every player.
    @raise Invalid_argument on [k < 1] or an incomplete profile. *)

val is_sequentially_k_resilient :
  ?trembles:float ->
  ?tol:float ->
  Bn_extensive.Extensive.t ->
  Bn_extensive.Extensive.behavioral array ->
  k:int ->
  bool

val describe : witness -> string
(** One-line rendering for tables and test failures. *)

(** {1 Canned threshold games} *)

val punishment_game :
  n:int -> k:int -> t:int -> Bn_extensive.Extensive.t * Bn_extensive.Extensive.behavioral array
(** [n]-player game: player 0 obeys or defects; player 1 (the
    representative punisher) reacts at an off-path information set.
    Punishing is personally worthwhile iff the honest majority holds
    ([n > 2k+2t]), so the (obey, punish) profile is Nash on both sides of
    the threshold but sequentially k-resilient only above it — the
    credible-punishment content of bullets 5/6.
    @raise Invalid_argument unless [n ≥ 2], [k ≥ 1], [t ≥ 0]. *)

val async_stall_game :
  n:int -> k:int -> t:int -> Bn_extensive.Extensive.t * Bn_extensive.Extensive.behavioral array
(** [n]-player game: player 0 (coalition proxy) relays its shares or
    withholds them. Above the asynchronous bound ([n > 4(k+t)]) decoding
    succeeds regardless and withholding is strictly wasteful; below it,
    withholding stalls the honest parties and pays — the (relay, abort)
    profile is a k-resilient sequential equilibrium iff
    {!Feasibility.classify_async} says [Async_implementable].
    @raise Invalid_argument unless [n ≥ 2], [k ≥ 1], [t ≥ 0]. *)
