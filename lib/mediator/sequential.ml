module E = Bn_extensive.Extensive
module Combin = Bn_util.Combin

type witness = {
  info : string;
  owner : int;
  coalition : int list;
  deviation : E.pure array;
  gains : (int * float) list;
}

(* {1 Trembling-hand machinery} *)

(* Mix every move at every information set with a uniform tremble, so every
   information set is reached with positive probability and beliefs are
   well-defined everywhere (the consistency half of sequential
   equilibrium). *)
let perturb game profile ~trembles =
  Array.mapi
    (fun p strat ->
      List.map
        (fun (info, _move_names) ->
          match List.assoc_opt info strat with
          | None -> invalid_arg ("Sequential.perturb: profile omits info set " ^ info)
          | Some dist ->
            let m = float_of_int (List.length dist) in
            ( info,
              List.map (fun (mv, pr) -> (mv, ((1.0 -. trembles) *. pr) +. (trembles /. m))) dist ))
        (E.info_sets game ~player:p))
    profile

let move_prob strat ~info ~move =
  match List.assoc_opt info strat with
  | None -> 0.0
  | Some dist -> ( match List.assoc_opt move dist with None -> 0.0 | Some p -> p)

(* Expected continuation payoffs from [node] when every player follows
   [strats]. *)
let rec value ~n node strats =
  match node with
  | E.Terminal pay -> pay
  | E.Chance edges ->
    let acc = Array.make n 0.0 in
    List.iter
      (fun (_, p, child) ->
        if p > 0.0 then
          let v = value ~n child strats in
          Array.iteri (fun i vi -> acc.(i) <- acc.(i) +. (p *. vi)) v)
      edges;
    acc
  | E.Decision { player; info; moves } ->
    let acc = Array.make n 0.0 in
    List.iter
      (fun (mv, child) ->
        let p = move_prob strats.(player) ~info ~move:mv in
        if p > 0.0 then
          let v = value ~n child strats in
          Array.iteri (fun i vi -> acc.(i) <- acc.(i) +. (p *. vi)) v)
      moves;
    acc

(* Nodes of information set [info] with their reach probabilities under the
   perturbed profile — the belief system. Descent stops at the information
   set: everything below is continuation, not belief. *)
let belief_nodes game ~perturbed ~info =
  let acc = ref [] in
  let rec walk node prob =
    if prob > 0.0 then
      match node with
      | E.Terminal _ -> ()
      | E.Chance edges -> List.iter (fun (_, p, child) -> walk child (prob *. p)) edges
      | E.Decision { player; info = i; moves } ->
        if i = info then acc := (node, prob) :: !acc
        else
          List.iter
            (fun (mv, child) -> walk child (prob *. move_prob perturbed.(player) ~info:i ~move:mv))
            moves
  in
  walk (E.root game) 1.0;
  List.rev !acc

(* Conditional expected payoffs at [info]: beliefs from the perturbed
   profile, continuation under [strats]. [None] if the set is unreachable
   even with trembles (off the tree entirely). *)
let conditional_value game ~perturbed ~info strats =
  let n = E.n_players game in
  let nodes = belief_nodes game ~perturbed ~info in
  let total = List.fold_left (fun a (_, p) -> a +. p) 0.0 nodes in
  if total <= 0.0 then None
  else
    Some
      (List.fold_left
         (fun acc (node, p) ->
           let v = value ~n node strats in
           Array.mapi (fun i a -> a +. (p /. total *. v.(i))) acc)
         (Array.make n 0.0)
         nodes)

(* {1 The k-resilient sequential check} *)

let overlay profile members deviations =
  let strats = Array.copy profile in
  List.iteri
    (fun j p -> strats.(p) <- E.behavioral_of_pure (List.nth deviations j))
    members;
  strats

let check ?(trembles = 1e-3) ?(tol = 1e-9) game profile ~k =
  if k < 1 then invalid_arg "Sequential.check: need k >= 1";
  let n = E.n_players game in
  let perturbed = perturb game profile ~trembles in
  let pures = Array.init n (fun p -> E.pure_strategies game ~player:p) in
  (* Every information set, its owner, every coalition containing the owner,
     every joint pure deviation of the coalition: the profile is a
     k-resilient sequential equilibrium iff no deviation strictly improves
     every coalition member conditional on reaching the set (beliefs held
     fixed from the trembled profile). *)
  let coalitions = Combin.subsets_up_to n k in
  let found = ref None in
  List.iter
    (fun owner ->
      List.iter
        (fun (info, _moves) ->
          if !found = None then
            match conditional_value game ~perturbed ~info profile with
            | None -> ()
            | Some base ->
              List.iter
                (fun coalition ->
                  if !found = None && List.mem owner coalition then
                    let dims =
                      Array.of_list (List.map (fun p -> List.length pures.(p)) coalition)
                    in
                    Combin.iter_profiles dims (fun choice ->
                        if !found = None then begin
                          let deviations =
                            List.mapi
                              (fun j p -> List.nth pures.(p) choice.(j))
                              coalition
                          in
                          let strats = overlay profile coalition deviations in
                          match conditional_value game ~perturbed ~info strats with
                          | None -> ()
                          | Some dev ->
                            let gains =
                              List.filter_map
                                (fun p ->
                                  if dev.(p) -. base.(p) > tol then Some (p, dev.(p) -. base.(p))
                                  else None)
                                coalition
                            in
                            if List.length gains = List.length coalition then
                              found :=
                                Some
                                  {
                                    info;
                                    owner;
                                    coalition;
                                    deviation = Array.of_list deviations;
                                    gains;
                                  }
                        end))
                coalitions)
        (E.info_sets game ~player:owner))
    (List.init n Fun.id);
  !found

let is_sequentially_k_resilient ?trembles ?tol game profile ~k =
  check ?trembles ?tol game profile ~k = None

let describe w =
  Printf.sprintf "coalition {%s} gains at info set %S (owner %d): %s"
    (String.concat "," (List.map string_of_int w.coalition))
    w.info w.owner
    (String.concat ", "
       (List.map (fun (p, g) -> Printf.sprintf "player %d +%.3f" p g) w.gains))

(* {1 Canned threshold games} *)

(* Bullet 5/6's broadcast regime as a credibility question: punishing a
   defector is personally worthwhile for the punishers only when the
   honest-and-rational majority holds, i.e. n - (k+t) > n/2 <=> n > 2k+2t.
   Below the threshold the threat is non-credible: the profile stays Nash
   (the punisher's information set is off-path) but fails the sequential
   check exactly there. Player 0 is the coalition's deviator, player 1 the
   representative punisher, players 2.. are bystanders. *)
let punishment_game ~n ~k ~t =
  if n < 2 || k < 1 || t < 0 then
    invalid_arg "Sequential.punishment_game: need n >= 2, k >= 1, t >= 0";
  let majority = 2 * (n - (k + t)) > n in
  let pay v0 v1 =
    Array.init n (fun i -> if i = 0 then v0 else if i = 1 then v1 else 0.0)
  in
  let tree =
    E.Decision
      {
        player = 0;
        info = "lead";
        moves =
          [
            ("obey", E.Terminal (Array.make n 2.0));
            ( "defect",
              E.Decision
                {
                  player = 1;
                  info = "react";
                  moves =
                    [
                      ("punish", E.Terminal (pay (-1.0) (if majority then 1.0 else -1.0)));
                      ("ignore", E.Terminal (pay 5.0 0.0));
                    ];
                } );
          ];
      }
  in
  let game = E.create ~n_players:n tree in
  let profile =
    Array.init n (fun p ->
        if p = 0 then [ ("lead", [ ("obey", 1.0); ("defect", 0.0) ]) ]
        else if p = 1 then [ ("react", [ ("punish", 1.0); ("ignore", 0.0) ]) ]
        else [])
  in
  (game, profile)

(* The asynchronous stall game: a coalition proxy (player 0) can withhold
   its relays. When n > 4(k+t) decoding succeeds from the remaining shares
   and withholding is pointless; otherwise it stalls the honest parties,
   who can only abort — the deviation the n > 4(k+t) bound exists to kill.
   Agrees with {!Feasibility.classify_async} on both sides. *)
let async_stall_game ~n ~k ~t =
  if n < 2 || k < 1 || t < 0 then
    invalid_arg "Sequential.async_stall_game: need n >= 2, k >= 1, t >= 0";
  let f = k + t in
  let decodes = n - f >= (3 * f) + 1 in
  let pay v0 rest = Array.init n (fun i -> if i = 0 then v0 else rest) in
  let tree =
    E.Decision
      {
        player = 0;
        info = "relay?";
        moves =
          [
            ("relay", E.Terminal (Array.make n 2.0));
            ( "withhold",
              if decodes then E.Terminal (pay 1.9 2.0)
              else
                E.Decision
                  {
                    player = 1;
                    info = "stalled";
                    moves =
                      [
                        ("abort", E.Terminal (pay 3.0 0.0));
                        ("wait", E.Terminal (pay 3.0 (-1.0)));
                      ];
                  } );
          ];
      }
  in
  let game = E.create ~n_players:n tree in
  let profile =
    Array.init n (fun p ->
        if p = 0 then [ ("relay?", [ ("relay", 1.0); ("withhold", 0.0) ]) ]
        else if p = 1 && not decodes then [ ("stalled", [ ("abort", 1.0); ("wait", 0.0) ]) ]
        else [])
  in
  (game, profile)
