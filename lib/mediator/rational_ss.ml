module Prng = Bn_util.Prng
module Shamir = Bn_crypto.Shamir

type utility = { learn : float; exclusivity : float }

let default_utility = { learn = 1.0; exclusivity = 0.5 }

let honest_equilibrium_alpha u ~n =
  u.learn /. (u.learn +. (float_of_int (n - 1) *. u.exclusivity))

let deviation_gain u ~n ~alpha =
  (alpha *. float_of_int (n - 1) *. u.exclusivity) -. ((1.0 -. alpha) *. u.learn)

let expected_rounds ~alpha =
  if alpha <= 0.0 then infinity else 1.0 /. alpha

type outcome = {
  rounds : int;
  learned : bool array;
  utilities : float array;
  aborted : bool;
}

let utilities_of u learned =
  let n = Array.length learned in
  let not_learned = Array.fold_left (fun acc l -> if l then acc else acc + 1) 0 learned in
  Array.init n (fun i ->
      if learned.(i) then
        u.learn +. (u.exclusivity *. float_of_int (not_learned))
      else 0.0)

let simulate rng ~n ~alpha ~utility ~withholder ~secret =
  if n < 2 then invalid_arg "Rational_ss.simulate: need n >= 2";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Rational_ss.simulate: alpha in (0,1]";
  let learned = Array.make n false in
  let max_rounds = 10_000 in
  let rec round r =
    if r > max_rounds then (r - 1, false)
    else begin
      let real = Prng.float rng < alpha in
      let this_secret = if real then secret else Bn_crypto.Field.random rng in
      (* n-out-of-n sharing: threshold n-1 needs all n shares. *)
      let shares = Array.of_list (Shamir.share rng ~secret:this_secret ~threshold:(n - 1) ~n) in
      match withholder with
      | Some w ->
        (* The withholder receives everyone else's shares and keeps its own:
           it reconstructs alone. The others detect the missing share. *)
        if real then begin
          learned.(w) <- true;
          (r, false)
        end
        else
          (* Fake round: the withholder is exposed; everyone aborts. *)
          (r, true)
      | None ->
        (* All shares exchanged; everyone reconstructs. On a real round the
           dealer's check value confirms it and the protocol ends. *)
        let all = Array.to_list shares in
        let v = Shamir.reconstruct all in
        if real && v = Bn_crypto.Field.of_int secret then begin
          Array.fill learned 0 n true;
          (r, false)
        end
        else round (r + 1)
    end
  in
  let rounds, aborted = round 1 in
  { rounds; learned; utilities = utilities_of utility learned; aborted }

let empirical_deviation_gain ?(pool = Bn_util.Pool.serial) rng ~n ~alpha ~utility ~trials =
  (* Each trial draws from its own index-split stream and lands in its own
     slot, so the estimate is bit-identical for any pool size. *)
  let gains = Array.make trials 0.0 in
  Bn_util.Pool.iter_grid pool
    (fun i ->
      let trial_rng = Prng.split rng i in
      let secret = Prng.int trial_rng 1000 in
      let honest = simulate (Prng.split trial_rng 0) ~n ~alpha ~utility ~withholder:None ~secret in
      let deviant =
        simulate (Prng.split trial_rng 1) ~n ~alpha ~utility ~withholder:(Some 0) ~secret
      in
      gains.(i) <- deviant.utilities.(0) -. honest.utilities.(0))
    (Array.init trials Fun.id);
  Array.fold_left ( +. ) 0.0 gains /. float_of_int trials
