(** Rational secret sharing (Halpern–Teague 2004; paper §2 related work).

    [m]-out-of-[m] reconstruction by {e rational} players: everyone prefers
    learning the secret, and (strictly) prefers that fewer others learn it.
    In the one-shot simultaneous-exchange game, withholding your share
    weakly dominates sending it — so no deterministic protocol with a known
    last round can work (the Halpern–Teague impossibility; the same force
    behind the paper's "cannot be implemented … with bounded running time").

    The randomized fix: rounds are {e real} with probability [alpha] (shares
    of the true secret are dealt) and {e fake} otherwise; players exchange;
    any defection on a fake round is detected when reconstruction fails to
    match the dealer's check value, and the others abort forever. A
    defector therefore gambles: with probability [alpha] it learns alone
    (gain [exclusivity]); with probability 1 − [alpha] it is caught and
    never learns (loses the learning payoff of 1). With n players the
    lone-learner bonus is [(n−1)·exclusivity], so honesty is an equilibrium
    iff [alpha ≤ learn / (learn + (n−1)·exclusivity)], and the protocol
    ends in a geometric number of rounds — finite expected, unbounded
    worst-case. *)

type utility = {
  learn : float;  (** Payoff for learning the secret (paper: 1). *)
  exclusivity : float;
      (** Extra payoff per other player who does {e not} learn. *)
}

val default_utility : utility
(** learn = 1, exclusivity = 0.5. *)

val honest_equilibrium_alpha : utility -> n:int -> float
(** The largest [alpha] for which following the protocol is a Nash
    equilibrium: [learn / (learn + (n−1)·exclusivity)]. *)

val deviation_gain : utility -> n:int -> alpha:float -> float
(** Expected gain of the withhold-always deviation over honesty (positive
    = profitable): [alpha·(n−1)·exclusivity − (1 − alpha)·learn]. *)

val expected_rounds : alpha:float -> float
(** 1 / alpha. *)

type outcome = {
  rounds : int;  (** Rounds actually played. *)
  learned : bool array;  (** Who learned the secret. *)
  utilities : float array;
  aborted : bool;  (** Whether the punish-forever abort fired. *)
}

val simulate :
  Bn_util.Prng.t -> n:int -> alpha:float -> utility:utility ->
  withholder:int option -> secret:int -> outcome
(** Runs the protocol over the Shamir substrate ({!Bn_crypto.Shamir}):
    n-out-of-n sharing per round, real with probability [alpha].
    [withholder = Some i] makes player [i] withhold every round. *)

val empirical_deviation_gain :
  ?pool:Bn_util.Pool.t ->
  Bn_util.Prng.t -> n:int -> alpha:float -> utility:utility -> trials:int -> float
(** Monte-Carlo estimate of {!deviation_gain} from simulation. Trials run
    on [pool] (default serial); trial [i] draws from [Prng.split rng i],
    so the estimate does not depend on the pool size. *)
