module Obs = Bn_obs.Obs
module A = Bn_dist_sim.Async_net
module Faults = Bn_dist_sim.Faults
module Explore = Bn_dist_sim.Explore
module Shamir = Bn_crypto.Shamir
module Field = Bn_crypto.Field
module Prng = Bn_util.Prng

(* All exploration goes through Explore (Pool.map_array, no early exit), so
   these tick deterministically in (seed, trials) at any -j. *)
let c_runs = Obs.counter "async_ct.runs"
let c_decodes = Obs.counter "async_ct.decodes"
let c_stalled = Obs.counter "async_ct.stalled"

let fault_bound ~k ~t = k + t
let decode_guaranteed ~n ~f = n - f >= (3 * f) + 1
let stall_witness_size ~n ~k ~t = max 0 (n - (3 * (k + t)))

type msg = Share of Shamir.share | Relay of Shamir.share

type state = { pool : Shamir.share list; decoded : int option }

(* The dealer's sharing polynomial is part of the protocol, not of the
   environment: deriving its randomness from the cell parameters keeps
   [system]'s runs a pure function of the schedule, which the Explore
   determinism contract requires. *)
let protocol_seed ~n ~k ~t ~general_type =
  (((n * 31) + k) * 31 + t) * 31 + general_type

let process ~n ~k ~t ~general_type =
  let f = fault_bound ~k ~t in
  if n < 2 || f >= n then
    invalid_arg "Async_cheap_talk.process: need n >= 2 and k + t < n (sharing degree bound)";
  let shares =
    Array.of_list
      (Shamir.share
         (Prng.create (protocol_seed ~n ~k ~t ~general_type))
         ~secret:general_type ~threshold:f ~n)
  in
  let wait = n - f in
  let have st (s : Shamir.share) = List.exists (fun s' -> s'.Shamir.x = s.Shamir.x) st.pool in
  let add st s =
    (* First claim per origin wins (duplicates are idempotent); decoding is
       attempted from pool size n-f on — the largest wait an asynchronous
       process may block for, since k+t parties may never speak. *)
    if have st s then st
    else
      let pool = s :: st.pool in
      if st.decoded <> None || List.length pool < wait then { st with pool }
      else
        match Shamir.robust_reconstruct ~degree:f ~max_errors:f pool with
        | Some v ->
          Obs.incr c_decodes;
          { pool; decoded = Some v }
        | None -> { st with pool }
  in
  {
    A.init =
      (fun me ->
        let st = { pool = []; decoded = None } in
        if me = 0 then (st, List.init n (fun j -> (j, Share shares.(j)))) else (st, []));
    on_message =
      (fun ~me st ~sender m ->
        ignore me;
        ignore sender;
        match m with
        | Share s ->
          if have st s then (st, []) else (add st s, List.init n (fun j -> (j, Relay s)))
        | Relay s -> (add st s, []));
    decided = (fun st -> st.decoded);
  }

let run ?max_steps ?(scheduler = A.fifo) ?faults ~n ~k ~t ~general_type () =
  Obs.incr c_runs;
  Obs.span "async_ct.run"
    ~args:(fun () -> [ ("n", Obs.I n); ("k", Obs.I k); ("t", Obs.I t) ])
  @@ fun () ->
  let r = A.run ?max_steps ?faults ~n ~scheduler (process ~n ~k ~t ~general_type) in
  if Array.exists (fun d -> d = None) r.A.decisions then Obs.incr c_stalled;
  r

(* {1 Explore integration} *)

let blames_dealer e = List.mem 0 (Faults.culprits [ e ])

let sanitize schedule = List.filter (fun e -> not (blames_dealer e)) schedule

let corrupt_share ~src ~dst:_ = function
  | Share s -> Share { s with Shamir.y = Field.add s.Shamir.y (1 + src) }
  | Relay s -> Relay { s with Shamir.y = Field.add s.Shamir.y (1 + src) }

let run_schedule ~n ~k ~t ~general_type schedule =
  let schedule = sanitize schedule in
  run
    ~scheduler:(Faults.async_scheduler schedule)
    ~faults:(Faults.async_plan ~corrupt:corrupt_share schedule)
    ~n ~k ~t ~general_type ()

let system ~n ~k ~t ~general_type =
  let f = fault_bound ~k ~t in
  let honest schedule =
    let bad = Faults.culprits (sanitize schedule) in
    List.filter (fun i -> not (List.mem i bad)) (List.init n Fun.id)
  in
  (* A schedule blaming more than k+t processes is outside the sub-Byzantine
     behaviours a (k,t)-robust protocol must absorb, so the invariants hold
     vacuously for it (the grid generators never draw one, but shrinking and
     hand-written replays go through the same checks). *)
  let vacuous schedule = List.length (Faults.culprits (sanitize schedule)) > f in
  let decided (r : int A.result) i = r.A.decisions.(i) in
  {
    Explore.run = (fun schedule -> run_schedule ~n ~k ~t ~general_type schedule);
    invariants =
      [
        ( "totality",
          fun s r -> vacuous s || List.for_all (fun i -> decided r i <> None) (honest s) );
        ( "agreement",
          fun s r ->
            vacuous s
            ||
            let vs = List.filter_map (decided r) (honest s) in
            List.for_all (fun v -> Some v = List.nth_opt vs 0) vs );
        ( "validity",
          fun s r ->
            vacuous s
            || List.for_all
                 (fun i -> match decided r i with None -> true | Some v -> v = general_type)
                 (honest s) );
      ];
  }

let explore ?pool ~seed ~trials ~gen ~n ~k ~t ~general_type () =
  Explore.explore ?pool ~seed ~trials
    ~gen:(fun rng -> sanitize (gen rng))
    (system ~n ~k ~t ~general_type)
