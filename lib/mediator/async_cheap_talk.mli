(** Asynchronous cheap-talk mediator simulation (arXiv:1806.01214).

    The synchronous constructions of §2 lean on rounds; Abraham, Dolev,
    Geffner and Halpern show that over an asynchronous network a
    (k,t)-robust mediator is implementable by cheap talk iff
    [n > 4(k+t)]. This module makes the threshold executable on
    {!Bn_dist_sim.Async_net}:

    - the dealer (process 0, the mediator's interface) Shamir-shares its
      recommendation with polynomial degree [f = k+t] and sends each party
      its share; parties relay their share to everyone;
    - a party may only wait for [n - f] shares ([f] parties may stay
      silent forever in an asynchronous network), then decodes with
      Berlekamp–Welch tolerating [f] corrupted shares, which needs at
      least [3f + 1] shares — so decoding from the waitable pool is
      guaranteed iff [n - f ≥ 3f + 1], i.e. [n > 4f].

    The two impossibility regimes are witnessed differently by {!Explore}
    schedule search ({!system}): for [3f < n ≤ 4f] a violation needs
    [n - 3f] silenced parties (the locally minimal shrunk counterexample);
    for [n ≤ 3f] the empty schedule already violates totality. There is no
    round structure anywhere: reordering, starvation and message loss come
    from {!Bn_dist_sim.Faults.async_scheduler} and
    {!Bn_dist_sim.Faults.async_plan}, and every run is deterministic in
    the schedule, so reports are bit-identical for any [-j]. *)

val fault_bound : k:int -> t:int -> int
(** [k + t] — the sharing degree and the silence/corruption budget. *)

val decode_guaranteed : n:int -> f:int -> bool
(** [n - f ≥ 3f + 1]: the waitable pool meets the Berlekamp–Welch bound.
    Equivalent to {!Bn_mediator.Feasibility.classify_async} returning
    [Async_implementable] at [f = k + t]. *)

val stall_witness_size : n:int -> k:int -> t:int -> int
(** [max 0 (n - 3(k+t))] — silences needed to stall an honest decoder,
    hence the expected size of a locally-minimal shrunk counterexample
    (0 in the fault-free-impossible regime). *)

type msg = Share of Bn_crypto.Shamir.share | Relay of Bn_crypto.Shamir.share

type state
(** Per-party protocol state (share pool + decoded value). *)

val process :
  n:int -> k:int -> t:int -> general_type:int -> (state, msg) Bn_dist_sim.Async_net.process
(** The dissemination protocol; the dealer's sharing randomness is derived
    from the cell parameters so runs are schedule-deterministic.
    @raise Invalid_argument unless [n ≥ 2] and [k + t < n]. *)

val run :
  ?max_steps:int ->
  ?scheduler:msg Bn_dist_sim.Async_net.scheduler ->
  ?faults:msg Bn_dist_sim.Async_net.fault_filter ->
  n:int -> k:int -> t:int -> general_type:int ->
  unit ->
  int Bn_dist_sim.Async_net.result
(** One simulation (default scheduler: FIFO). A decision is the decoded
    recommendation; [None] = stalled. *)

(** {1 Schedule exploration} *)

val sanitize : Bn_dist_sim.Faults.schedule -> Bn_dist_sim.Faults.schedule
(** Drops events blaming the dealer (process 0): a faulty dealer trivially
    breaks every cell, so grid schedules never blame it. *)

val run_schedule :
  n:int -> k:int -> t:int -> general_type:int ->
  Bn_dist_sim.Faults.schedule ->
  int Bn_dist_sim.Async_net.result
(** Runs the protocol under the sanitized schedule's asynchronous reading:
    {!Bn_dist_sim.Faults.async_scheduler} for starvation,
    {!Bn_dist_sim.Faults.async_plan} for loss/duplication/corruption. *)

val system :
  n:int -> k:int -> t:int -> general_type:int ->
  int Bn_dist_sim.Async_net.result Bn_dist_sim.Explore.system
(** Invariants over non-culprit parties — totality (all decide), agreement
    (same value), validity (the dealer's recommendation). Vacuous when the
    sanitized schedule blames more than [k + t] processes. *)

val explore :
  ?pool:Bn_util.Pool.t ->
  seed:int -> trials:int ->
  gen:(Bn_util.Prng.t -> Bn_dist_sim.Faults.schedule) ->
  n:int -> k:int -> t:int -> general_type:int ->
  unit ->
  Bn_dist_sim.Explore.report
(** {!Bn_dist_sim.Explore.explore} over [sanitize ∘ gen] against
    {!system}. *)
