module Pki = Bn_crypto.Hashing.Pki
module Sync_net = Bn_dist_sim.Sync_net

type chain = (int * Pki.signature) list
type msg = int * chain

type state = {
  me : int;
  t : int;
  sender : int;
  value : int;
  default : int;
  pki : Pki.t;
  accepted : (int, unit) Hashtbl.t;
  mutable to_relay : msg list;
}

let payload value = Printf.sprintf "ds|%d" value

let chain_valid st ~round (value, chain) =
  match chain with
  | [] -> false
  | (first, _) :: _ ->
    first = st.sender
    && List.length chain >= round
    && List.length (List.sort_uniq compare (List.map fst chain)) = List.length chain
    && List.for_all (fun (signer, s) -> Pki.verify st.pki ~signer ~msg:(payload value) s) chain

let protocol ~pki ~n:_ ~t ~sender ~value ~default =
  let init me =
    { me; t; sender; value; default; pki; accepted = Hashtbl.create 4; to_relay = [] }
  in
  let send ~round ~me:_ st =
    if round = 1 then begin
      if st.me = st.sender then begin
        Hashtbl.replace st.accepted st.value ();
        let s = Pki.sign st.pki ~signer:st.me ~msg:(payload st.value) in
        [ (Sync_net.All, (st.value, [ (st.me, s) ])) ]
      end
      else []
    end
    else begin
      let out = List.map (fun m -> (Sync_net.All, m)) st.to_relay in
      st.to_relay <- [];
      out
    end
  in
  let recv ~round ~me:_ st inbox =
    List.iter
      (fun (_, (v, chain)) ->
        if chain_valid st ~round (v, chain) && not (Hashtbl.mem st.accepted v) then begin
          Hashtbl.replace st.accepted v ();
          if round <= st.t && not (List.mem_assoc st.me chain) then begin
            let s = Pki.sign st.pki ~signer:st.me ~msg:(payload v) in
            st.to_relay <- (v, chain @ [ (st.me, s) ]) :: st.to_relay
          end
        end)
      inbox;
    st
  in
  let output ~me:_ st =
    match Bn_util.Tbl.sorted_keys st.accepted with
    | [ v ] -> Some v
    | _ -> Some st.default
  in
  { Sync_net.init; send; recv; output }

let run ?adversary ?faults ~pki ~n ~t ~sender ~value ~default () =
  Sync_net.run ?adversary ?faults ~n ~rounds:(t + 1) (protocol ~pki ~n ~t ~sender ~value ~default)

let equivocating_sender ~pki ~sender ~n =
  let behave ~round ~me ~inbox:_ =
    if round = 1 && me = sender then begin
      let sig0 = Pki.sign pki ~signer:sender ~msg:(payload 0) in
      let sig1 = Pki.sign pki ~signer:sender ~msg:(payload 1) in
      List.init n (fun j ->
          let v, s = if j < n / 2 then (0, sig0) else (1, sig1) in
          (Sync_net.To j, (v, [ (sender, s) ])))
    end
    else []
  in
  { Sync_net.corrupted = [ sender ]; behave }

let agreement result =
  let decided = List.filter_map Fun.id (Array.to_list result.Sync_net.outputs) in
  match decided with [] -> true | v :: rest -> List.for_all (( = ) v) rest

let validity_sender ~sender_value result =
  Array.for_all
    (function None -> true | Some d -> d = sender_value)
    result.Sync_net.outputs
