(** FloodSet consensus for crash faults.

    With at most [f] {e crash} (not Byzantine) faults, flooding the set of
    seen values for [f+1] rounds and deciding by a fixed rule (minimum, or
    default on multiplicity) solves consensus for any [f < n] — a much
    weaker fault model than Byzantine, included to make E4's fault-model
    comparison concrete (crash vs Byzantine is exactly the paper's "faulty
    or unexpected behavior" spectrum). *)

type msg = int list
(** The set of values the sender has seen. *)

type state

val protocol :
  n:int -> f:int -> values:int array ->
  (state, msg, int) Bn_dist_sim.Sync_net.protocol

val run :
  ?adversary:msg Bn_dist_sim.Sync_net.adversary ->
  ?faults:msg Bn_dist_sim.Sync_net.fault_plan ->
  n:int -> f:int -> values:int array -> unit ->
  int Bn_dist_sim.Sync_net.result
(** Runs f+1 rounds; decides min of the seen set. *)

val crash_after :
  rng:Bn_util.Prng.t -> n:int -> corrupted:int list -> values:int array ->
  round:int -> msg Bn_dist_sim.Sync_net.adversary
(** Crash adversary: corrupted processes behave honestly (flood what they
    have seen — approximated as their initial value) until [round], then
    stay silent forever. Sending to a random prefix of processes in the
    crash round models mid-broadcast failure. *)

val agreement : int Bn_dist_sim.Sync_net.result -> bool
val validity : all_values:int list -> int Bn_dist_sim.Sync_net.result -> bool
(** Every decision is someone's initial value. *)
