module Sync_net = Bn_dist_sim.Sync_net

type msg = Value of int | King of int

type state = {
  n : int;
  t : int;
  mutable value : int;
  mutable tally : int array; (* votes for 0/1 in the current phase *)
}

(* Phase p (0-based) occupies rounds 2p+1 (everyone broadcasts its value)
   and 2p+2 (the king broadcasts its own value; processes with a weak
   majority adopt the king's value). *)
let protocol ~n ~t ~values =
  let init me = { n; t; value = values.(me); tally = Array.make 2 0 } in
  let send ~round ~me st =
    if round mod 2 = 1 then [ (Sync_net.All, Value st.value) ]
    else begin
      let king = ((round / 2) - 1) mod n in
      if me = king then [ (Sync_net.All, King st.value) ] else []
    end
  in
  let recv ~round ~me:_ st inbox =
    if round mod 2 = 1 then begin
      let tally = Array.make 2 0 in
      List.iter
        (fun (_, m) ->
          match m with
          | Value v when v = 0 || v = 1 -> tally.(v) <- tally.(v) + 1
          | Value _ | King _ -> ())
        inbox;
      st.tally <- tally;
      (* Adopt the majority value; strong majorities are kept next round. *)
      st.value <- (if tally.(1) > tally.(0) then 1 else 0);
      st
    end
    else begin
      let king = ((round / 2) - 1) mod st.n in
      let king_value =
        List.fold_left
          (fun acc (sender, m) ->
            match m with King v when sender = king -> Some v | King _ | Value _ -> acc)
          None inbox
      in
      let majority_strength = max st.tally.(0) st.tally.(1) in
      (* Berman-Garay rule: keep the majority value only when its
         multiplicity exceeds n/2 + t; otherwise defer to the king. *)
      let keep = 2 * majority_strength > st.n + (2 * st.t) in
      (match king_value with
      | Some kv when not keep -> st.value <- (if kv = 0 || kv = 1 then kv else 0)
      | Some _ | None -> ());
      st
    end
  in
  let output ~me:_ st = Some st.value in
  { Sync_net.init; send; recv; output }

let run ?adversary ?faults ~n ~t ~values () =
  Sync_net.run ?adversary ?faults ~n ~rounds:(2 * (t + 1)) (protocol ~n ~t ~values)

let lying_adversary ~corrupted ~claim =
  let behave ~round ~me:_ ~inbox:_ =
    if round mod 2 = 1 then [ (Sync_net.All, Value claim) ]
    else [ (Sync_net.All, King claim) ]
  in
  { Sync_net.corrupted; behave }

let agreement result =
  let decided = List.filter_map Fun.id (Array.to_list result.Sync_net.outputs) in
  match decided with [] -> true | v :: rest -> List.for_all (( = ) v) rest

let validity ~honest_values result =
  match honest_values with
  | [] -> true
  | v :: rest ->
    if List.for_all (( = ) v) rest then
      Array.for_all (function None -> true | Some d -> d = v) result.Sync_net.outputs
    else true
