(** Phase-King Byzantine agreement (Berman–Garay–Perry).

    A polynomial-message alternative to EIG: [t+1] phases of two rounds
    each, phase [p] "ruled" by process [p]. The simple two-round variant
    implemented here tolerates [t < n/4] Byzantine faults — a deliberately
    different trade-off than EIG's [t < n/3] with exponential messages,
    used by experiment E4's message-complexity comparison. *)

type msg = Value of int | King of int

type state

val protocol :
  n:int -> t:int -> values:int array ->
  (state, msg, int) Bn_dist_sim.Sync_net.protocol

val run :
  ?adversary:msg Bn_dist_sim.Sync_net.adversary ->
  ?faults:msg Bn_dist_sim.Sync_net.fault_plan ->
  n:int -> t:int -> values:int array -> unit ->
  int Bn_dist_sim.Sync_net.result
(** Runs 2(t+1) rounds. *)

val lying_adversary : corrupted:int list -> claim:int -> msg Bn_dist_sim.Sync_net.adversary
(** Corrupted processes always report [claim] (and, as king, crown it). *)

val agreement : int Bn_dist_sim.Sync_net.result -> bool
val validity : honest_values:int list -> int Bn_dist_sim.Sync_net.result -> bool
