module Sync_net = Bn_dist_sim.Sync_net

type msg = int list

type state = { seen : int list }

let protocol ~n:_ ~f:_ ~values =
  let init me = { seen = [ values.(me) ] } in
  let send ~round:_ ~me:_ st = [ (Sync_net.All, st.seen) ] in
  let recv ~round:_ ~me:_ st inbox =
    let merged =
      List.fold_left (fun acc (_, vs) -> List.rev_append vs acc) st.seen inbox
    in
    { seen = List.sort_uniq compare merged }
  in
  let output ~me:_ st =
    match st.seen with [] -> None | v :: _ -> Some v (* sorted: min rule *)
  in
  { Sync_net.init; send; recv; output }

let run ?adversary ?faults ~n ~f ~values () =
  Sync_net.run ?adversary ?faults ~n ~rounds:(f + 1) (protocol ~n ~f ~values)

let crash_after ~rng ~n ~corrupted ~values ~round =
  let behave ~round:r ~me ~inbox:_ =
    if r < round then [ (Sync_net.All, [ values.(me) ]) ]
    else if r = round then begin
      (* Mid-broadcast crash: deliver to a random prefix only. *)
      let reached = Bn_util.Prng.int rng (n + 1) in
      List.init reached (fun j -> (Sync_net.To j, [ values.(me) ]))
    end
    else []
  in
  { Sync_net.corrupted; behave }

let agreement result =
  let decided = List.filter_map Fun.id (Array.to_list result.Sync_net.outputs) in
  match decided with [] -> true | v :: rest -> List.for_all (( = ) v) rest

let validity ~all_values result =
  Array.for_all
    (function None -> true | Some d -> List.mem d all_values)
    result.Sync_net.outputs
