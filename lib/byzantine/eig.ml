type msg = (int list * int) list

(* The claim tree lives on flat per-level arrays instead of a hashtable of
   paths: a path [j1; …; jr] (all ids in 0..n−1) is packed as the base-n
   integer ((j1·n + j2)·n + …)·n + jr, so level r is an int array of size
   n^r plus a presence bitmap. Packing preserves order — for equal-length
   paths, ascending code order IS the lexicographic order that
   [Tbl.sorted_bindings] gave the old hashtable — so the broadcast claim
   lists, and hence every message and counter downstream, are unchanged.
   Claims whose paths carry out-of-range ids (only a hand-written adversary
   could fabricate one; none in the tree does) fall back to [extra], an
   assoc list merged and re-sorted on read, preserving the old accept-all
   semantics. *)
type state = {
  n : int;
  t : int;
  default : int;
  me : int;
  levels_v : int array array; (* levels_v.(r).(code): value at packed path *)
  levels_p : Bytes.t array; (* presence bitmap, same indexing *)
  extra : (int list * int) list ref; (* out-of-range paths, newest first *)
}

(* Decode [code] at level [r] back into the path list (most significant
   digit = first relayer). *)
let decode_path n r code =
  let rec go r code acc = if r = 0 then acc else go (r - 1) (code / n) ((code mod n) :: acc) in
  go r code []

(* Does the packed level-[r] code contain digit [id]? Equivalent to
   [List.mem id path] on the decoded path, without decoding. *)
let code_mem n id r code =
  let c = ref code and found = ref false in
  for _ = 1 to r do
    if !c mod n = id then found := true;
    c := !c / n
  done;
  !found

(* Claims at level [r] whose path does not contain [me], sorted by path —
   a pure function of the tree's contents, as the broadcast message must
   be. Codes are scanned in ascending order (= lex order on fixed-length
   paths) and only the survivors are decoded. *)
let send_entries st r ~me =
  if r < 0 || r >= Array.length st.levels_v then
    List.filter
      (fun (path, _) -> List.length path = r && not (List.mem me path))
      (List.rev !(st.extra))
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  else begin
    let vals = st.levels_v.(r) and pres = st.levels_p.(r) in
    let acc = ref [] in
    for code = Bytes.length pres - 1 downto 0 do
      if Bytes.unsafe_get pres code <> '\000' && not (code_mem st.n me r code) then
        acc := (decode_path st.n r code, vals.(code)) :: !acc
    done;
    match
      List.filter
        (fun (path, _) -> List.length path = r && not (List.mem me path))
        !(st.extra)
    with
    | [] -> !acc
    | ex -> List.sort (fun (a, _) (b, _) -> compare a b) (List.rev_append ex !acc)
  end

(* Pack [path] as a base-n code, expecting exactly [expect] digits, none
   equal to [sender] and all in 0..n−1. Returns the code (≥ 0), or −1 when
   the claim must be ignored (wrong length or relayed through [sender]), or
   −2 when some id is out of range (caller re-validates and falls back to
   [extra]). Allocation-free: this runs once per received claim. *)
let rec walk_code n sender expect path code =
  match path with
  | [] -> if expect = 0 then code else -1
  | j :: rest ->
    if expect = 0 || j = sender then -1
    else if j < 0 || j >= n then -2
    else walk_code n sender (expect - 1) rest ((code * n) + j)

let protocol ~n ~t ~values ~default =
  let init me =
    let pow_n r =
      let p = ref 1 in
      for _ = 1 to r do
        p := !p * n
      done;
      !p
    in
    let levels_v = Array.init (t + 2) (fun r -> Array.make (pow_n r) 0) in
    let levels_p = Array.init (t + 2) (fun r -> Bytes.make (Array.length levels_v.(r)) '\000') in
    levels_v.(0).(0) <- values.(me);
    Bytes.set levels_p.(0) 0 '\001';
    { n; t; default; me; levels_v; levels_p; extra = ref [] }
  in
  let send ~round ~me:_ st =
    (* Broadcast all claims at level round-1 whose path doesn't contain me;
       the root claim (own value) goes out in round 1. *)
    let entries = send_entries st (round - 1) ~me:st.me in
    if entries = [] then [] else [ (Bn_dist_sim.Sync_net.All, entries) ]
  in
  let recv ~round ~me:_ st inbox =
    let max_level = st.t + 1 in
    let rec claims_loop sender = function
      | [] -> ()
      | (path, v) :: rest ->
        let code = walk_code st.n sender (round - 1) path 0 in
        if code >= 0 then begin
          (* level of the extended path = round. *)
          if round <= max_level then begin
            let ext = (code * st.n) + sender in
            if Bytes.get st.levels_p.(round) ext = '\000' then begin
              st.levels_v.(round).(ext) <- v;
              Bytes.set st.levels_p.(round) ext '\001'
            end
          end
        end
        else if
          code = -2
          && List.length path = round - 1
          && not (List.mem sender path)
        then begin
          let extended = path @ [ sender ] in
          if List.length extended <= max_level && not (List.mem_assoc extended !(st.extra))
          then st.extra := (extended, v) :: !(st.extra)
        end;
        claims_loop sender rest
    in
    List.iter (fun (sender, claims) -> claims_loop sender claims) inbox;
    st
  in
  let output ~me:_ st =
    (* Recursive majority resolution from the leaves down to the root.
       [mask] tracks the ids already on the path (n ≤ word size); children
       are visited in ascending id order, and the strict-majority winner is
       unique, so a linear scan matches the old sorted-table lookup. *)
    (* One vote buffer per depth: the recursion below fills a depth's buffer
       while the parent's is still live, so depths can't share scratch. At
       any moment at most one call per depth is active. *)
    let vote_scratch = Array.init (st.t + 2) (fun _ -> Array.make st.n 0) in
    let rec resolve code mask len =
      if len = st.t + 1 then
        if Bytes.get st.levels_p.(len) code <> '\000' then st.levels_v.(len).(code)
        else st.default
      else begin
        let votes = vote_scratch.(len) in
        let nv = ref 0 in
        for l = 0 to st.n - 1 do
          if mask land (1 lsl l) = 0 then begin
            votes.(!nv) <- resolve ((code * st.n) + l) (mask lor (1 lsl l)) (len + 1);
            incr nv
          end
        done;
        let threshold = !nv / 2 in
        let winner = ref st.default in
        let found = ref false in
        let i = ref 0 in
        while (not !found) && !i < !nv do
          let v = votes.(!i) in
          let c = ref 0 in
          for j = 0 to !nv - 1 do
            if votes.(j) = v then incr c
          done;
          if !c > threshold then begin
            winner := v;
            found := true
          end;
          incr i
        done;
        !winner
      end
    in
    if st.t = 0 then
      Some (if Bytes.get st.levels_p.(0) 0 <> '\000' then st.levels_v.(0).(0) else st.default)
    else begin
      (* The root's children are all n ids; [resolve] needs its own vote
         scratch per level, so give the root a separate buffer. *)
      let root_votes = Array.init st.n (fun l -> resolve l (1 lsl l) 1) in
      let threshold = st.n / 2 in
      let winner = ref st.default in
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < st.n do
        let v = root_votes.(!i) in
        let c = ref 0 in
        Array.iter (fun x -> if x = v then incr c) root_votes;
        if !c > threshold then begin
          winner := v;
          found := true
        end;
        incr i
      done;
      Some !winner
    end
  in
  { Bn_dist_sim.Sync_net.init; send; recv; output }

let run ?adversary ?faults ~n ~t ~values ~default () =
  Bn_dist_sim.Sync_net.run ?adversary ?faults ~n ~rounds:(t + 1) (protocol ~n ~t ~values ~default)

(* All paths of distinct ids not containing [me], of a given length, over
   processes 0..n-1. Used by adversaries to fabricate claims. *)
let paths_of_length n length =
  let rec go len acc_paths =
    if len = 0 then acc_paths
    else
      go (len - 1)
        (List.concat_map
           (fun path ->
             List.filter_map
               (fun j -> if List.mem j path then None else Some (path @ [ j ]))
               (List.init n Fun.id))
           acc_paths)
  in
  go length [ [] ]

let lying_adversary ~n ~corrupted ~claim =
  let behave ~round ~me ~inbox:_ =
    (* Claim at level round-1 that every path led to [claim]. *)
    let entries =
      List.filter_map
        (fun path -> if List.mem me path then None else Some (path, claim))
        (paths_of_length n (round - 1))
    in
    if entries = [] then [] else [ (Bn_dist_sim.Sync_net.All, entries) ]
  in
  { Bn_dist_sim.Sync_net.corrupted; behave }

let equivocating_adversary ~n ~corrupted rng =
  let behave ~round ~me ~inbox:_ =
    List.filter_map
      (fun dest ->
        let entries =
          List.filter_map
            (fun path ->
              if List.mem me path then None else Some (path, Bn_util.Prng.int rng 2))
            (paths_of_length n (round - 1))
        in
        if entries = [] then None else Some (Bn_dist_sim.Sync_net.To dest, entries))
      (List.init n Fun.id)
  in
  { Bn_dist_sim.Sync_net.corrupted; behave }

let agreement result =
  let decided = List.filter_map Fun.id (Array.to_list result.Bn_dist_sim.Sync_net.outputs) in
  match decided with [] -> true | v :: rest -> List.for_all (( = ) v) rest

let validity ~honest_values result =
  match honest_values with
  | [] -> true
  | v :: rest ->
    if List.for_all (( = ) v) rest then
      Array.for_all
        (function None -> true | Some d -> d = v)
        result.Bn_dist_sim.Sync_net.outputs
    else true
