type msg = (int list * int) list

type state = {
  n : int;
  t : int;
  default : int;
  me : int;
  (* tree: path (most recent relayer last) -> reported value *)
  tree : (int list, int) Hashtbl.t;
}

(* Paths are stored reversed-free: [j1; j2; …; jr] means j1's initial value
   as relayed by j2, …, jr in successive rounds. *)

(* Sorted by path, so the claim list (and hence the broadcast message) is a
   pure function of the tree's contents, not of bucket order. *)
let level_entries st r =
  List.filter (fun (path, _) -> List.length path = r) (Bn_util.Tbl.sorted_bindings st.tree)

let protocol ~n ~t ~values ~default =
  let init me =
    let tree = Hashtbl.create 64 in
    Hashtbl.replace tree [] values.(me);
    { n; t; default; me; tree }
  in
  let send ~round ~me:_ st =
    (* Broadcast all claims at level round-1 whose path doesn't contain me;
       the root claim (own value) goes out in round 1. *)
    let entries =
      List.filter (fun (path, _) -> not (List.mem st.me path)) (level_entries st (round - 1))
    in
    if entries = [] then [] else [ (Bn_dist_sim.Sync_net.All, entries) ]
  in
  let recv ~round ~me:_ st inbox =
    List.iter
      (fun (sender, claims) ->
        List.iter
          (fun (path, v) ->
            if List.length path = round - 1 && not (List.mem sender path) then begin
              let extended = path @ [ sender ] in
              if List.length extended <= st.t + 1 && not (Hashtbl.mem st.tree extended) then
                Hashtbl.replace st.tree extended v
            end)
          claims)
      inbox;
    st
  in
  let output ~me:_ st =
    (* Recursive majority resolution from the leaves down to the root. *)
    let rec resolve path =
      if List.length path = st.t + 1 then
        match Hashtbl.find_opt st.tree path with Some v -> v | None -> st.default
      else begin
        let children =
          List.filter (fun l -> not (List.mem l path)) (List.init st.n Fun.id)
        in
        let votes = List.map (fun l -> resolve (path @ [ l ])) children in
        let counts = Hashtbl.create 8 in
        List.iter
          (fun v -> Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
          votes;
        let threshold = List.length children / 2 in
        let winner = Bn_util.Tbl.find_first (fun _ c -> c > threshold) counts in
        match winner with Some (v, _) -> v | None -> st.default
      end
    in
    if st.t = 0 then Some (match Hashtbl.find_opt st.tree [] with Some v -> v | None -> st.default)
    else begin
      let children = List.init st.n Fun.id in
      let votes = List.map (fun l -> resolve [ l ]) children in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun v -> Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
        votes;
      let threshold = List.length children / 2 in
      let winner = Bn_util.Tbl.find_first (fun _ c -> c > threshold) counts in
      Some (match winner with Some (v, _) -> v | None -> st.default)
    end
  in
  { Bn_dist_sim.Sync_net.init; send; recv; output }

let run ?adversary ?faults ~n ~t ~values ~default () =
  Bn_dist_sim.Sync_net.run ?adversary ?faults ~n ~rounds:(t + 1) (protocol ~n ~t ~values ~default)

(* All paths of distinct ids not containing [me], of a given length, over
   processes 0..n-1. Used by adversaries to fabricate claims. *)
let paths_of_length n length =
  let rec go len acc_paths =
    if len = 0 then acc_paths
    else
      go (len - 1)
        (List.concat_map
           (fun path ->
             List.filter_map
               (fun j -> if List.mem j path then None else Some (path @ [ j ]))
               (List.init n Fun.id))
           acc_paths)
  in
  go length [ [] ]

let lying_adversary ~n ~corrupted ~claim =
  let behave ~round ~me ~inbox:_ =
    (* Claim at level round-1 that every path led to [claim]. *)
    let entries =
      List.filter_map
        (fun path -> if List.mem me path then None else Some (path, claim))
        (paths_of_length n (round - 1))
    in
    if entries = [] then [] else [ (Bn_dist_sim.Sync_net.All, entries) ]
  in
  { Bn_dist_sim.Sync_net.corrupted; behave }

let equivocating_adversary ~n ~corrupted rng =
  let behave ~round ~me ~inbox:_ =
    List.filter_map
      (fun dest ->
        let entries =
          List.filter_map
            (fun path ->
              if List.mem me path then None else Some (path, Bn_util.Prng.int rng 2))
            (paths_of_length n (round - 1))
        in
        if entries = [] then None else Some (Bn_dist_sim.Sync_net.To dest, entries))
      (List.init n Fun.id)
  in
  { Bn_dist_sim.Sync_net.corrupted; behave }

let agreement result =
  let decided = List.filter_map Fun.id (Array.to_list result.Bn_dist_sim.Sync_net.outputs) in
  match decided with [] -> true | v :: rest -> List.for_all (( = ) v) rest

let validity ~honest_values result =
  match honest_values with
  | [] -> true
  | v :: rest ->
    if List.for_all (( = ) v) rest then
      Array.for_all
        (function None -> true | Some d -> d = v)
        result.Bn_dist_sim.Sync_net.outputs
    else true
