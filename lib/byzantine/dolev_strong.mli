(** Dolev–Strong authenticated broadcast.

    With a PKI (digital signatures), a designated sender broadcasts a value
    so that all honest processes agree on {e some} value after [t+1] rounds,
    for {e any} number [t] of Byzantine faults — including regimes where
    unauthenticated agreement is impossible (n ≤ 3t). This mirrors the
    paper's last mediator bullet: with a PKI, cheap talk implements the
    mediator whenever [n > k + t].

    A value is {e accepted} at round [r] iff it arrives with a chain of [r]
    valid signatures from distinct processes starting with the sender.
    Honest processes relay newly accepted values with their own signature
    appended. After [t+1] rounds they decide the unique accepted value, or
    the default if they accepted zero or several. *)

type chain = (int * Bn_crypto.Hashing.Pki.signature) list
(** Signature chain: (signer, signature over the value), sender first. *)

type msg = int * chain
(** (value, chain). *)

type state

val protocol :
  pki:Bn_crypto.Hashing.Pki.t ->
  n:int -> t:int -> sender:int -> value:int -> default:int ->
  (state, msg, int) Bn_dist_sim.Sync_net.protocol
(** [value] is used only by the (honest) sender. *)

val run :
  ?adversary:msg Bn_dist_sim.Sync_net.adversary ->
  ?faults:msg Bn_dist_sim.Sync_net.fault_plan ->
  pki:Bn_crypto.Hashing.Pki.t ->
  n:int -> t:int -> sender:int -> value:int -> default:int -> unit ->
  int Bn_dist_sim.Sync_net.result
(** Runs for [t+1] rounds. *)

val equivocating_sender :
  pki:Bn_crypto.Hashing.Pki.t -> sender:int -> n:int -> msg Bn_dist_sim.Sync_net.adversary
(** A corrupted sender that signs 0 for the lower half of the processes and
    1 for the upper half in round 1 (then stays silent). Honest relaying
    still forces agreement. *)

val agreement : int Bn_dist_sim.Sync_net.result -> bool

val validity_sender :
  sender_value:int -> int Bn_dist_sim.Sync_net.result -> bool
(** Every decided output equals the (honest) sender's value. *)
