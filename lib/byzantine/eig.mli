(** Exponential Information Gathering (EIG) Byzantine agreement.

    The classic [t+1]-round protocol that reaches agreement among [n]
    processes despite up to [t] Byzantine faults whenever [n > 3t]
    (Pease–Shostak–Lamport; presentation follows Lynch). Each process
    maintains a tree of relayed claims indexed by paths of distinct process
    ids; after [t+1] rounds it decides by recursive majority with a default
    for ties.

    The paper (§2) uses Byzantine agreement both as the canonical
    fault-tolerance problem and as the source of the lower bounds in the
    mediator characterization (the n ≤ 3k+3t impossibility {e is} the
    t < n/3 bound). *)

type msg = (int list * int) list
(** Round-[r] payload: claims [(path, value)] with [|path| = r − 1]. *)

type state

val protocol :
  n:int -> t:int -> values:int array -> default:int ->
  (state, msg, int) Bn_dist_sim.Sync_net.protocol
(** EIG for processes with initial [values] (binary or small ints); decides
    after [t+1] rounds. *)

val run :
  ?adversary:msg Bn_dist_sim.Sync_net.adversary ->
  ?faults:msg Bn_dist_sim.Sync_net.fault_plan ->
  n:int -> t:int -> values:int array -> default:int -> unit ->
  int Bn_dist_sim.Sync_net.result
(** Convenience: run the protocol for exactly [t+1] rounds, optionally
    under an environment fault plan (see {!Bn_dist_sim.Faults}). *)

val lying_adversary : n:int -> corrupted:int list -> claim:int -> msg Bn_dist_sim.Sync_net.adversary
(** Adversary whose corrupted processes claim, at every level, that
    everyone said [claim]. Breaks validity at [n = 3t] (e.g. n=3, t=1 with
    honest values all ≠ claim) but is harmless for [n > 3t]. *)

val equivocating_adversary :
  n:int -> corrupted:int list -> Bn_util.Prng.t -> msg Bn_dist_sim.Sync_net.adversary
(** Adversary sending independently random claims to every recipient at
    every level — used for randomized robustness sweeps. *)

val agreement : int Bn_dist_sim.Sync_net.result -> bool
(** All decided (non-corrupt) outputs equal. *)

val validity : honest_values:int list -> int Bn_dist_sim.Sync_net.result -> bool
(** If all honest processes started with the same value [v], every decided
    output is [v]; vacuously true otherwise. *)
