(** Resilient, immune and robust equilibria (paper §2).

    Following Abraham–Dolev–Gonen–Halpern (2006, 2008):

    - a profile is {e k-resilient} if no coalition of at most [k] players
      has a joint deviation from which a member profits;
    - it is {e t-immune} if no deviation by at most [t] players makes any
      non-deviator worse off;
    - it is {e (k,t)-robust} if both hold simultaneously: no coalition [C]
      of at most [k] players gains from a joint deviation {e even with the
      help of} up to [t] arbitrarily-behaving players [T] (disjoint from
      [C]), and deviations by at most [t] players alone never hurt a
      non-deviator. The immunity side concerns only the faulty set — this
      is what makes (1,0)-robustness coincide exactly with Nash
      equilibrium.

    Nash equilibrium is exactly (1,0)-robustness.

    Deviations are quantified over {e pure} joint action assignments. For
    the strong ("no member gains" / "no outsider hurt") conditions this is
    exact even against correlated mixed deviations, because the relevant
    utilities are linear in the deviation distribution and extreme points
    are pure. The [Weak] resilience variant (Aumann-style: a deviation
    blocks only if {e every} member strictly gains) is exact for pure
    deviations only; this is noted in DESIGN.md. *)

type variant =
  | Strong  (** Deviation blocks if {e some} member strictly gains (ADGH). *)
  | Weak  (** Deviation blocks if {e every} member strictly gains. *)

type violation = {
  coalition : int list;  (** Rational deviators [C]. *)
  traitors : int list;  (** Faulty deviators [T] (empty for resilience). *)
  deviation : (int * int) list;  (** Joint pure deviation over [C ∪ T]. *)
  victim : int;  (** Player whose guarantee fails. *)
  before : float;  (** That player's equilibrium utility. *)
  after : float;  (** Utility under the deviation. *)
}

type verdict = Holds | Fails of violation

val pp_violation : Format.formatter -> violation -> unit

val check_resilience :
  ?variant:variant -> ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t ->
  Bn_game.Mixed.profile -> k:int -> verdict
(** Is the profile [k]-resilient? [k = 0] always holds; [k = 1] with
    [Strong] is the Nash condition.

    All checkers take [?jobs] (default 1): the outermost coalition/traitor
    enumeration is chunked over that many domains via {!Bn_util.Pool} (one
    pool per check, shared by the immunity and resilience sides of
    {!check_robustness}). The verdict — including {e which} violation is
    reported — is identical to the serial scan for every [jobs] value.

    Deviated payoffs are evaluated through the support-product kernel:
    for a pure base profile every evaluation is a single table read behind
    a stride-shifted flat index (no profile copies, no per-assignment
    allocation); for mixed base profiles the cost scales with the
    non-deviators' support sizes instead of the full action grid. *)

val check_immunity :
  ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t -> Bn_game.Mixed.profile ->
  t:int -> verdict
(** Is the profile [t]-immune? *)

val check_robustness :
  ?variant:variant -> ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t ->
  Bn_game.Mixed.profile -> k:int -> t:int -> verdict
(** Is the profile [(k,t)]-robust? Quantifies over disjoint [C], [T] and
    joint deviations by their union. *)

val is_k_resilient :
  ?variant:variant -> ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t ->
  Bn_game.Mixed.profile -> k:int -> bool

val is_t_immune :
  ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t -> Bn_game.Mixed.profile ->
  t:int -> bool

val is_robust :
  ?variant:variant -> ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t ->
  Bn_game.Mixed.profile -> k:int -> t:int -> bool

val max_resilience :
  ?variant:variant -> ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t ->
  Bn_game.Mixed.profile -> int
(** Largest [k ≤ n] such that the profile is [k]-resilient (0 if not even
    1-resilient, i.e. not Nash). *)

val max_immunity :
  ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t -> Bn_game.Mixed.profile -> int
(** Largest [t ≤ n] such that the profile is [t]-immune. [n] means immune
    to any number of deviators. *)

val robust_pure_equilibria :
  ?variant:variant -> ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t ->
  k:int -> t:int -> int array list
(** All pure profiles that are (k,t)-robust equilibria. The profile sweep
    itself is chunked over one shared pool ([?jobs] domains); each
    per-profile check runs serially inside its worker, and the result list
    is in row-major profile order for every [jobs]. *)

val find_punishment :
  ?eps:float -> ?jobs:int -> Bn_game.Normal_form.t -> target:float array ->
  budget:int -> int array option
(** A pure {e punishment profile} ρ: if everyone but at most [budget]
    players plays ρ, then {e every} player ends up strictly below its
    [target] utility (the equilibrium payoffs), no matter what the ≤
    [budget] deviators do. This is the (k+t)-punishment strategy required
    by the mediator characterization. Exhaustive search, chunked over
    [?jobs] domains with one shared pool; the answer is the first
    qualifying profile in row-major order for every [jobs]. [None] if no
    pure profile qualifies. *)
