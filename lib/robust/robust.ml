open Bn_game
module Obs = Bn_obs.Obs

(* [robust.checks] counts top-level verdict computations (check_* entry
   points), which execute unconditionally even inside parallel profile
   sweeps (Pool.map_array visits every profile): deterministic. The scan
   counters sit under Pool.find_first's early exit — how many (C, T)
   pairs and deviations get scanned before the watermark stops a worker
   depends on the domain budget — so they are Volatile. *)
let c_checks = Obs.counter "robust.checks"
let c_searches = Obs.counter ~kind:Obs.Volatile "robust.searches"
let c_pairs = Obs.counter ~kind:Obs.Volatile "robust.pairs_scanned"
let c_devs = Obs.counter ~kind:Obs.Volatile "robust.deviation_checks"
let sk_check_ns = Obs.sketch ~kind:Obs.Volatile "robust.check_ns"

type variant = Strong | Weak

type violation = {
  coalition : int list;
  traitors : int list;
  deviation : (int * int) list;
  victim : int;
  before : float;
  after : float;
}

type verdict = Holds | Fails of violation

let pp_violation ppf v =
  let pp_set = Fmt.(list ~sep:comma int) in
  Format.fprintf ppf "C={%a} T={%a} deviation=[%s] victim=%d: %.3f -> %.3f" pp_set
    v.coalition pp_set v.traitors
    (String.concat "; " (List.map (fun (i, a) -> Printf.sprintf "%d:%d" i a) v.deviation))
    v.victim v.before v.after

let baseline g prof = Array.init (Normal_form.n_players g) (Mixed.expected_payoff g prof)

(* All (C, T) pairs with disjoint C (≤ k) and T (≤ t), in the canonical
   enumeration order: coalitions outermost (smallest first, as produced by
   [Combin.subsets_up_to]), traitor sets within. *)
let coalition_traitor_pairs n ~k ~t =
  let coalitions = if k = 0 then [ [] ] else [] :: Bn_util.Combin.subsets_up_to n k in
  List.concat_map
    (fun coalition ->
      let in_coalition = Array.make n false in
      List.iter (fun i -> in_coalition.(i) <- true) coalition;
      let rest =
        Array.of_list (List.filter (fun i -> not in_coalition.(i)) (List.init n Fun.id))
      in
      let rest_count = Array.length rest in
      let traitor_sets =
        if t = 0 then [ [] ]
        else
          [] ::
          List.map
            (List.map (fun idx -> rest.(idx)))
            (Bn_util.Combin.subsets_up_to rest_count (min t rest_count))
      in
      List.filter_map
        (fun traitors ->
          if coalition = [] && traitors = [] then None else Some (coalition, traitors))
        traitor_sets)
    coalitions

let pool_of_jobs = function
  | None -> Bn_util.Pool.serial
  | Some j -> Bn_util.Pool.create ~domains:j ()

exception Stop

(* Scan every joint pure deviation by [deviators] from [prof] for the first
   assignment on which [test] fires. Two evaluation strategies:

   - pure base profile ([pure_p = Some p]): the base flat table index is
     shifted by stride deltas as the assignment odometer advances — only
     positions at or above the lowest changed coordinate are recomputed, so
     each deviated payoff is a single O(1) table read, with no profile
     copies and no per-assignment allocation;
   - mixed base profile: one copy of the profile per deviator set, whose
     deviator rows are point masses mutated in place as the odometer
     advances; each evaluation is a support-product expectation, so its
     cost scales with the non-deviators' support sizes only.

   [test] receives [payoff_after] (deviated expected payoff per player) and
   a lazy [assignment] thunk that materializes the (player, action) list
   only when a hit is reported. *)
let scan_assignments g ~dims ~prof ~pure_p ~deviators test =
  let m = Array.length deviators in
  let result = ref None in
  (* Deviation checks are counted analytically so the odometer loop stays
     untouched: a completed scan visits the full assignment product, and an
     early exit visits exactly the row-major position of the hit (+1),
     recoverable from the odometer state at the hit site. *)
  let total = ref 1 in
  for j = 0 to m - 1 do
    total := !total * dims.(deviators.(j))
  done;
  let checks = total in
  let run payoff_after sync =
    try
      Bn_util.Combin.iter_joint_assignments deviators dims (fun acts changed ->
          sync acts changed;
          let assignment () =
            Array.to_list (Array.mapi (fun j a -> (deviators.(j), a)) acts)
          in
          match test ~payoff_after ~assignment with
          | Some _ as r ->
            result := r;
            let pos = ref 0 in
            Array.iteri (fun j a -> pos := (!pos * dims.(deviators.(j))) + a) acts;
            checks := !pos + 1;
            raise Stop
          | None -> ())
    with Stop -> ()
  in
  (match pure_p with
  | Some p ->
    let base_idx = Normal_form.index_of g p in
    let idx = ref base_idx in
    (* pref.(j): flat index with deviations 0 … j applied to the base. *)
    let pref = Array.make (max m 1) base_idx in
    run
      (fun i -> 0.0 +. Normal_form.payoff_by_index g !idx i)
      (fun acts changed ->
        for j = changed to m - 1 do
          let prev = if j = 0 then base_idx else pref.(j - 1) in
          let d = deviators.(j) in
          pref.(j) <- Normal_form.shift_index g prev ~player:d ~from_:p.(d) ~to_:acts.(j)
        done;
        idx := if m = 0 then base_idx else pref.(m - 1))
  | None ->
    let deviated = Array.copy prof in
    Array.iter
      (fun d ->
        let s = Array.make (Normal_form.num_actions g d) 0.0 in
        s.(0) <- 1.0;
        deviated.(d) <- s)
      deviators;
    let cur = Array.make (max m 1) 0 in
    run
      (fun i -> Mixed.expected_payoff g deviated i)
      (fun acts changed ->
        for j = changed to m - 1 do
          if cur.(j) <> acts.(j) then begin
            let s = deviated.(deviators.(j)) in
            s.(cur.(j)) <- 0.0;
            s.(acts.(j)) <- 1.0;
            cur.(j) <- acts.(j)
          end
        done));
  (* One pair scanned, [!checks] deviations evaluated: a single batched
     flush keeps the per-pair tax to one domain-local update. *)
  Obs.add2 c_pairs 1 c_devs !checks;
  !result

(* Search over disjoint C (≤ k), T (≤ t) and joint pure deviations by
   C ∪ T for the first hit reported by [test]. The outer (C, T) pairs are
   scanned on the pool's domains; [Pool.find_first] returns the
   lowest-index hit, so the reported violation is the one the serial
   left-to-right scan would find, for any domain budget. *)
let search_deviations ~pool g prof ~k ~t test =
  Obs.incr c_searches;
  let n = Normal_form.n_players g in
  let dims = Normal_form.actions g in
  let pure_p = Mixed.pure_actions prof in
  let pairs = Array.of_list (coalition_traitor_pairs n ~k ~t) in
  Obs.span "robust.search"
    ~args:(fun () ->
      [ ("players", Obs.I n); ("k", Obs.I k); ("t", Obs.I t);
        ("pairs", Obs.I (Array.length pairs)) ])
    (fun () ->
      Bn_util.Pool.find_first pool
        (fun (coalition, traitors) ->
          let deviators = Array.of_list (coalition @ traitors) in
          scan_assignments g ~dims ~prof ~pure_p ~deviators (test ~coalition ~traitors))
        pairs)

(* Does the deviated profile give the coalition a blocking gain? Reports
   the first gaining member in coalition order (the canonical victim). *)
let blocking_gain variant ~eps base ~payoff_after coalition =
  match variant with
  | Strong ->
    List.find_map
      (fun i ->
        let after = payoff_after i in
        if after > base.(i) +. eps then Some (i, after) else None)
      coalition
  | Weak -> (
    match coalition with
    | [] -> None
    | first :: rest ->
      let after = payoff_after first in
      if
        after > base.(first) +. eps
        && List.for_all (fun i -> payoff_after i > base.(i) +. eps) rest
      then Some (first, after)
      else None)

let verdict_of = function Some v -> Fails v | None -> Holds

let resilience_violation ~variant ~eps ~pool g prof ~base ~k ~t =
  search_deviations ~pool g prof ~k ~t
    (fun ~coalition ~traitors ~payoff_after ~assignment ->
      Option.map
        (fun (victim, after) ->
          { coalition; traitors; deviation = assignment (); victim;
            before = base.(victim); after })
        (blocking_gain variant ~eps base ~payoff_after coalition))

let immunity_violation ~eps ~pool g prof ~base ~t =
  let n = Normal_form.n_players g in
  search_deviations ~pool g prof ~k:0 ~t
    (fun ~coalition:_ ~traitors ~payoff_after ~assignment ->
      let rec first_victim i =
        if i >= n then None
        else if List.mem i traitors then first_victim (i + 1)
        else
          let after = payoff_after i in
          if after < base.(i) -. eps then
            Some
              { coalition = []; traitors; deviation = assignment (); victim = i;
                before = base.(i); after }
          else first_victim (i + 1)
      in
      first_victim 0)

let check_resilience ?(variant = Strong) ?(eps = 1e-9) ?jobs g prof ~k =
  Obs.incr c_checks;
  Obs.timed sk_check_ns @@ fun () ->
  let pool = pool_of_jobs jobs in
  let base = baseline g prof in
  verdict_of (resilience_violation ~variant ~eps ~pool g prof ~base ~k ~t:0)

let check_immunity ?(eps = 1e-9) ?jobs g prof ~t =
  Obs.incr c_checks;
  Obs.timed sk_check_ns @@ fun () ->
  let pool = pool_of_jobs jobs in
  let base = baseline g prof in
  verdict_of (immunity_violation ~eps ~pool g prof ~base ~t)

(* (k,t)-robustness combines two guarantees (ADGH):
   - resilience side: no coalition C (|C| ≤ k) profits from a joint
     deviation, even with the help of up to t arbitrarily-behaving players
     T (quantified over joint deviations by C ∪ T);
   - immunity side: deviations by up to t players alone never hurt a
     non-deviator. The immunity condition concerns only the faulty set T —
     rational players follow the equilibrium, so outsiders need no
     protection from C; this is what makes (1,0)-robustness coincide
     exactly with Nash equilibrium.
   The pool and the baseline are built once and shared by both sides. *)
let check_robustness ?(variant = Strong) ?(eps = 1e-9) ?jobs g prof ~k ~t =
  Obs.incr c_checks;
  Obs.timed sk_check_ns @@ fun () ->
  let pool = pool_of_jobs jobs in
  let base = baseline g prof in
  match immunity_violation ~eps ~pool g prof ~base ~t with
  | Some v -> Fails v
  | None -> verdict_of (resilience_violation ~variant ~eps ~pool g prof ~base ~k ~t)

let is_k_resilient ?variant ?eps ?jobs g prof ~k =
  match check_resilience ?variant ?eps ?jobs g prof ~k with Holds -> true | Fails _ -> false

let is_t_immune ?eps ?jobs g prof ~t =
  match check_immunity ?eps ?jobs g prof ~t with Holds -> true | Fails _ -> false

let is_robust ?variant ?eps ?jobs g prof ~k ~t =
  match check_robustness ?variant ?eps ?jobs g prof ~k ~t with Holds -> true | Fails _ -> false

let max_resilience ?variant ?eps ?jobs g prof =
  let n = Normal_form.n_players g in
  let rec go k =
    if k >= n then n
    else if is_k_resilient ?variant ?eps ?jobs g prof ~k:(k + 1) then go (k + 1)
    else k
  in
  go 0

let max_immunity ?eps ?jobs g prof =
  let n = Normal_form.n_players g in
  let rec go t =
    if t >= n then n else if is_t_immune ?eps ?jobs g prof ~t:(t + 1) then go (t + 1) else t
  in
  go 0

let robust_pure_equilibria ?variant ?eps ?jobs g ~k ~t =
  (* One pool for the whole sweep: profiles are scanned in parallel, each
     per-profile check running serially inside its worker. The result list
     order (row-major) is preserved by [Pool.map_array]. *)
  let pool = pool_of_jobs jobs in
  let profs = Array.of_list (Normal_form.profiles g) in
  let robust =
    Bn_util.Pool.map_array pool
      (fun p -> is_robust ?variant ?eps g (Mixed.pure_profile g p) ~k ~t)
      profs
  in
  let acc = ref [] in
  Array.iteri (fun i p -> if robust.(i) then acc := p :: !acc) profs;
  List.rev !acc

let find_punishment ?(eps = 1e-9) ?jobs g ~target ~budget =
  let n = Normal_form.n_players g in
  if Array.length target <> n then invalid_arg "Robust.find_punishment: target arity";
  let pool = pool_of_jobs jobs in
  let escapes payoff_after =
    let rec go i = i < n && (payoff_after i >= target.(i) -. eps || go (i + 1)) in
    go 0
  in
  let qualifies rho =
    let prof = Mixed.pure_profile g rho in
    (* Every player strictly below target at the base profile and under
       deviations by any ≤ budget players (who may also be punished players
       trying to escape). *)
    (not (escapes (Mixed.expected_payoff g prof)))
    && Option.is_none
         (search_deviations ~pool:Bn_util.Pool.serial g prof ~k:budget ~t:0
            (fun ~coalition:_ ~traitors:_ ~payoff_after ~assignment:_ ->
              if escapes payoff_after then Some () else None))
  in
  (* The profile sweep shares the pool; [Pool.find_first] keeps the answer
     the first qualifying profile in row-major order, as the serial scan. *)
  let profs = Array.of_list (Normal_form.profiles g) in
  Bn_util.Pool.find_first pool (fun p -> if qualifies p then Some p else None) profs
