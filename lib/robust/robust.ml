open Bn_game

type variant = Strong | Weak

type violation = {
  coalition : int list;
  traitors : int list;
  deviation : (int * int) list;
  victim : int;
  before : float;
  after : float;
}

type verdict = Holds | Fails of violation

let pp_violation ppf v =
  let pp_set = Fmt.(list ~sep:comma int) in
  Format.fprintf ppf "C={%a} T={%a} deviation=[%s] victim=%d: %.3f -> %.3f" pp_set
    v.coalition pp_set v.traitors
    (String.concat "; " (List.map (fun (i, a) -> Printf.sprintf "%d:%d" i a) v.deviation))
    v.victim v.before v.after

(* Apply a joint pure deviation to a mixed profile. *)
let deviate g prof assignment =
  let deviated = Array.copy prof in
  List.iter
    (fun (i, a) ->
      deviated.(i) <- Mixed.pure ~num_actions:(Normal_form.num_actions g i) a)
    assignment;
  deviated

let baseline g prof = Array.init (Normal_form.n_players g) (Mixed.expected_payoff g prof)

(* All (C, T) pairs with disjoint C (≤ k) and T (≤ t), in the canonical
   enumeration order: coalitions outermost (smallest first, as produced by
   [Combin.subsets_up_to]), traitor sets within. *)
let coalition_traitor_pairs n ~k ~t =
  let coalitions = if k = 0 then [ [] ] else [] :: Bn_util.Combin.subsets_up_to n k in
  List.concat_map
    (fun coalition ->
      let rest = List.filter (fun i -> not (List.mem i coalition)) (List.init n Fun.id) in
      let rest_count = List.length rest in
      let traitor_sets =
        if t = 0 then [ [] ]
        else
          [] ::
          List.map
            (List.map (fun idx -> List.nth rest idx))
            (Bn_util.Combin.subsets_up_to rest_count (min t rest_count))
      in
      List.filter_map
        (fun traitors ->
          if coalition = [] && traitors = [] then None else Some (coalition, traitors))
        traitor_sets)
    coalitions

let pool_of_jobs jobs = Bn_util.Pool.create ~domains:jobs ()

(* Search over disjoint C (≤ k), T (≤ t) and joint pure deviations by
   C ∪ T for the first violation reported by [test]. The outer (C, T)
   pairs are scanned on [jobs] domains; [Pool.find_first] returns the
   lowest-index hit, so the reported violation is the one the serial
   left-to-right scan would find, for any [jobs]. *)
let search_deviations ?(jobs = 1) g ~k ~t test =
  let n = Normal_form.n_players g in
  let dims = Normal_form.actions g in
  let pairs = Array.of_list (coalition_traitor_pairs n ~k ~t) in
  Bn_util.Pool.find_first (pool_of_jobs jobs)
    (fun (coalition, traitors) ->
      List.find_map
        (fun assignment -> test ~coalition ~traitors assignment)
        (Bn_util.Combin.joint_assignments (coalition @ traitors) dims))
    pairs

(* Does the deviated profile give the coalition a blocking gain? *)
let blocking_gain variant ~eps g base deviated coalition =
  let gains =
    List.map
      (fun i ->
        let after = Mixed.expected_payoff g deviated i in
        (i, after, after > base.(i) +. eps))
      coalition
  in
  let blocked =
    match variant with
    | Strong -> List.exists (fun (_, _, gained) -> gained) gains
    | Weak -> gains <> [] && List.for_all (fun (_, _, gained) -> gained) gains
  in
  if blocked then
    let victim, after, _ = List.find (fun (_, _, gained) -> gained) gains in
    Some (victim, after)
  else None

let verdict_of = function Some v -> Fails v | None -> Holds

let check_resilience ?(variant = Strong) ?(eps = 1e-9) ?jobs g prof ~k =
  let base = baseline g prof in
  verdict_of
    (search_deviations ?jobs g ~k ~t:0 (fun ~coalition ~traitors:_ assignment ->
         let deviated = deviate g prof assignment in
         Option.map
           (fun (victim, after) ->
             { coalition; traitors = []; deviation = assignment; victim;
               before = base.(victim); after })
           (blocking_gain variant ~eps g base deviated coalition)))

let check_immunity ?(eps = 1e-9) ?jobs g prof ~t =
  let base = baseline g prof in
  let n = Normal_form.n_players g in
  verdict_of
    (search_deviations ?jobs g ~k:0 ~t (fun ~coalition:_ ~traitors assignment ->
         let deviated = deviate g prof assignment in
         List.find_map
           (fun i ->
             if List.mem i traitors then None
             else
               let after = Mixed.expected_payoff g deviated i in
               if after < base.(i) -. eps then
                 Some
                   { coalition = []; traitors; deviation = assignment; victim = i;
                     before = base.(i); after }
               else None)
           (List.init n Fun.id)))

(* (k,t)-robustness combines two guarantees (ADGH):
   - resilience side: no coalition C (|C| ≤ k) profits from a joint
     deviation, even with the help of up to t arbitrarily-behaving players
     T (quantified over joint deviations by C ∪ T);
   - immunity side: deviations by up to t players alone never hurt a
     non-deviator. The immunity condition concerns only the faulty set T —
     rational players follow the equilibrium, so outsiders need no
     protection from C; this is what makes (1,0)-robustness coincide
     exactly with Nash equilibrium. *)
let check_robustness ?(variant = Strong) ?(eps = 1e-9) ?jobs g prof ~k ~t =
  let base = baseline g prof in
  match check_immunity ~eps ?jobs g prof ~t with
  | Fails v -> Fails v
  | Holds ->
    verdict_of
      (search_deviations ?jobs g ~k ~t (fun ~coalition ~traitors assignment ->
           let deviated = deviate g prof assignment in
           Option.map
             (fun (victim, after) ->
               { coalition; traitors; deviation = assignment; victim;
                 before = base.(victim); after })
             (blocking_gain variant ~eps g base deviated coalition)))

let is_k_resilient ?variant ?eps ?jobs g prof ~k =
  match check_resilience ?variant ?eps ?jobs g prof ~k with Holds -> true | Fails _ -> false

let is_t_immune ?eps ?jobs g prof ~t =
  match check_immunity ?eps ?jobs g prof ~t with Holds -> true | Fails _ -> false

let is_robust ?variant ?eps ?jobs g prof ~k ~t =
  match check_robustness ?variant ?eps ?jobs g prof ~k ~t with Holds -> true | Fails _ -> false

let max_resilience ?variant ?eps ?jobs g prof =
  let n = Normal_form.n_players g in
  let rec go k =
    if k >= n then n
    else if is_k_resilient ?variant ?eps ?jobs g prof ~k:(k + 1) then go (k + 1)
    else k
  in
  go 0

let max_immunity ?eps ?jobs g prof =
  let n = Normal_form.n_players g in
  let rec go t =
    if t >= n then n else if is_t_immune ?eps ?jobs g prof ~t:(t + 1) then go (t + 1) else t
  in
  go 0

let robust_pure_equilibria ?variant ?eps ?jobs g ~k ~t =
  let acc = ref [] in
  Normal_form.iter_profiles g (fun p ->
      let prof = Mixed.pure_profile g p in
      if is_robust ?variant ?eps ?jobs g prof ~k ~t then acc := Array.copy p :: !acc);
  List.rev !acc

let find_punishment ?(eps = 1e-9) g ~target ~budget =
  let n = Normal_form.n_players g in
  if Array.length target <> n then invalid_arg "Robust.find_punishment: target arity";
  let escapes deviated =
    let rec go i =
      i < n && (Mixed.expected_payoff g deviated i >= target.(i) -. eps || go (i + 1))
    in
    go 0
  in
  let qualifies rho =
    let prof = Mixed.pure_profile g rho in
    (* Every player strictly below target at the base profile and under
       deviations by any ≤ budget players (who may also be punished players
       trying to escape). *)
    (not (escapes prof))
    && Option.is_none
         (search_deviations g ~k:budget ~t:0 (fun ~coalition:_ ~traitors:_ assignment ->
              if escapes (deviate g prof assignment) then Some () else None))
  in
  let result = ref None in
  (try
     Normal_form.iter_profiles g (fun p ->
         if qualifies p then begin
           result := Some (Array.copy p);
           raise Exit
         end)
   with Exit -> ());
  !result
