(** Two-phase simplex solver.

    Solves {e maximize} [c·x] subject to linear constraints and [x ≥ 0].
    This is the substrate for zero-sum game values, maxmin/minmax levels and
    punishment-strategy computation in the robustness and mediator
    libraries.

    The default {!solve} is a revised simplex: the constraint matrix is
    stored once in compressed sparse columns on a flat float64 Bigarray and
    never touched again; each pivot updates only an explicit basis inverse
    (and the basic solution) by an eta transformation, and pricing scans
    stored nonzeros only. The original dense tableau is retained as
    {!solve_dense}, whose pivoting rules the revised method mirrors; the
    QCheck suite pins their agreement on random LPs and zero-sum games. *)

type relation = Le | Ge | Eq
(** Direction of a constraint row. *)

type constraint_row = {
  coeffs : float array;  (** One coefficient per structural variable. *)
  relation : relation;
  rhs : float;
}

type problem = {
  objective : float array;  (** Maximized. One entry per variable. *)
  constraints : constraint_row list;
}

type outcome =
  | Optimal of { solution : float array; value : float }
  | Infeasible
  | Unbounded

val solve : problem -> outcome
(** Two-phase revised simplex with Bland's anti-cycling rule. All structural
    variables are implicitly ≥ 0; encode a free variable as the difference
    of two non-negative ones. *)

val solve_dense : problem -> outcome
(** Reference implementation of {!solve} on a dense two-phase tableau.
    Same pivoting rules; retained as the oracle for the sparse-vs-dense
    agreement property tests. *)

val maximize : float array -> constraint_row list -> outcome
(** [maximize c rows] is [solve { objective = c; constraints = rows }]. *)

val le : float array -> float -> constraint_row
val ge : float array -> float -> constraint_row
val eq : float array -> float -> constraint_row
(** Row constructors. *)
