type relation = Le | Ge | Eq

type constraint_row = { coeffs : float array; relation : relation; rhs : float }

type problem = { objective : float array; constraints : constraint_row list }

type outcome =
  | Optimal of { solution : float array; value : float }
  | Infeasible
  | Unbounded

let le coeffs rhs = { coeffs; relation = Le; rhs }
let ge coeffs rhs = { coeffs; relation = Ge; rhs }
let eq coeffs rhs = { coeffs; relation = Eq; rhs }

let eps = 1e-9

(* Normalize every row to rhs >= 0 by flipping; shared by both solvers so
   they see identical standard forms. *)
let normalize { objective; constraints } =
  let nvars = Array.length objective in
  let normalized =
    List.map
      (fun { coeffs; relation; rhs } ->
        if Array.length coeffs <> nvars then invalid_arg "Simplex: coefficient arity";
        if rhs < 0.0 then
          ( Array.map (fun c -> -.c) coeffs,
            (match relation with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (Array.copy coeffs, relation, rhs))
      constraints
  in
  (nvars, normalized)

(* ------------------------------------------------------------------ *)
(* Dense two-phase tableau — the original solver, retained verbatim as
   the agreement oracle ([solve_dense]) for the revised method below.  *)
(* ------------------------------------------------------------------ *)

(* Tableau layout: columns are [structural | slack/surplus | artificial | rhs].
   [basis.(r)] is the column currently basic in row [r]. Two objective rows
   are carried: phase-1 (sum of artificials) and phase-2 (the real one). *)
type tableau = {
  m : float array array; (* rows x (ncols + 1); last column is rhs *)
  basis : int array;
  nvars : int; (* structural *)
  ncols : int; (* total columns excluding rhs *)
  obj : float array; (* phase-2 objective over all columns, maximization *)
}

let build problem =
  let nvars, normalized = normalize problem in
  let rows = List.length normalized in
  let n_slack = List.length (List.filter (fun (_, r, _) -> r <> Eq) normalized) in
  let n_art =
    List.length (List.filter (fun (_, r, _) -> r = Ge || r = Eq) normalized)
  in
  let ncols = nvars + n_slack + n_art in
  let m = Array.make_matrix rows (ncols + 1) 0.0 in
  let basis = Array.make rows (-1) in
  let slack_idx = ref nvars in
  let art_idx = ref (nvars + n_slack) in
  List.iteri
    (fun r (coeffs, relation, rhs) ->
      Array.blit coeffs 0 m.(r) 0 nvars;
      m.(r).(ncols) <- rhs;
      (match relation with
      | Le ->
        m.(r).(!slack_idx) <- 1.0;
        basis.(r) <- !slack_idx;
        incr slack_idx
      | Ge ->
        m.(r).(!slack_idx) <- -1.0;
        incr slack_idx;
        m.(r).(!art_idx) <- 1.0;
        basis.(r) <- !art_idx;
        incr art_idx
      | Eq ->
        m.(r).(!art_idx) <- 1.0;
        basis.(r) <- !art_idx;
        incr art_idx))
    normalized;
  let obj = Array.make ncols 0.0 in
  Array.blit problem.objective 0 obj 0 nvars;
  ({ m; basis; nvars; ncols; obj }, nvars + n_slack)

(* Reduced costs for maximizing [c] given the current basis. *)
let reduced_costs t c =
  let rows = Array.length t.m in
  let lambda = Array.make rows 0.0 in
  for r = 0 to rows - 1 do
    lambda.(r) <- c.(t.basis.(r))
  done;
  Array.init t.ncols (fun j ->
      let zj = ref 0.0 in
      for r = 0 to rows - 1 do
        zj := !zj +. (lambda.(r) *. t.m.(r).(j))
      done;
      c.(j) -. !zj)

let objective_value t c =
  let acc = ref 0.0 in
  Array.iteri (fun r bj -> acc := !acc +. (c.(bj) *. t.m.(r).(t.ncols))) t.basis;
  !acc

let pivot t ~row ~col =
  let rows = Array.length t.m in
  let p = t.m.(row).(col) in
  for j = 0 to t.ncols do
    t.m.(row).(j) <- t.m.(row).(j) /. p
  done;
  for r = 0 to rows - 1 do
    if r <> row && Float.abs t.m.(r).(col) > 0.0 then begin
      let f = t.m.(r).(col) in
      for j = 0 to t.ncols do
        t.m.(r).(j) <- t.m.(r).(j) -. (f *. t.m.(row).(j))
      done
    end
  done;
  t.basis.(row) <- col

(* One simplex run maximizing [c] over columns [0, limit). Bland's rule. *)
let run t c ~limit =
  let rows = Array.length t.m in
  let rec step () =
    let rc = reduced_costs t c in
    let entering = ref (-1) in
    (try
       for j = 0 to limit - 1 do
         if rc.(j) > eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to rows - 1 do
        if t.m.(r).(col) > eps then begin
          let ratio = t.m.(r).(t.ncols) /. t.m.(r).(col) in
          if
            ratio < !best_ratio -. eps
            || (Float.abs (ratio -. !best_ratio) <= eps
               && (!best_row < 0 || t.basis.(r) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := r
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t ~row:!best_row ~col;
        step ()
      end
    end
  in
  step ()

let solve_dense problem =
  let t, non_artificial = build problem in
  let has_artificials = t.ncols > non_artificial in
  let feasible =
    if not has_artificials then true
    else begin
      (* Phase 1: maximize -(sum of artificials). *)
      let c1 = Array.make t.ncols 0.0 in
      for j = non_artificial to t.ncols - 1 do
        c1.(j) <- -1.0
      done;
      (match run t c1 ~limit:t.ncols with
      | `Unbounded -> () (* cannot happen: phase-1 objective is bounded *)
      | `Optimal -> ());
      let v1 = objective_value t c1 in
      if v1 < -.eps then false
      else begin
        (* Drive any artificial still basic (at zero) out of the basis. *)
        Array.iteri
          (fun r bj ->
            if bj >= non_artificial then begin
              let found = ref (-1) in
              for j = 0 to non_artificial - 1 do
                if !found < 0 && Float.abs t.m.(r).(j) > eps then found := j
              done;
              if !found >= 0 then pivot t ~row:r ~col:!found
            end)
          t.basis;
        true
      end
    end
  in
  if not feasible then Infeasible
  else begin
    (* Phase 2: entering variables restricted to non-artificial columns;
       any artificial left basic sits at value 0 in a redundant row. *)
    let c2 = Array.make t.ncols 0.0 in
    Array.blit t.obj 0 c2 0 (Array.length t.obj);
    for j = non_artificial to t.ncols - 1 do
      c2.(j) <- 0.0
    done;
    match run t c2 ~limit:non_artificial with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let x = Array.make t.nvars 0.0 in
      Array.iteri
        (fun r bj -> if bj < t.nvars then x.(bj) <- t.m.(r).(t.ncols))
        t.basis;
      Optimal { solution = x; value = objective_value t t.obj }
  end

(* ------------------------------------------------------------------ *)
(* Revised simplex — the default solver. The constraint matrix lives in
   compressed sparse columns on a flat float64 Bigarray and is never
   mutated; the only state updated per pivot is the explicit basis
   inverse (rows×rows, flat) and the basic solution, via an eta
   transformation. A pivot costs O(rows²) + one sparse column scan,
   against the dense tableau's O(rows × ncols) full-matrix sweep, and
   pricing touches only the stored nonzeros. Pivoting rules (Bland's
   entering choice, the ratio-test tie-breaks, the phase-1 drive-out
   scan) mirror the dense oracle exactly, so the two solvers walk the
   same vertex sequence up to floating-point drift; the QCheck suite
   pins agreement on random LPs and zero-sum games.                    *)
(* ------------------------------------------------------------------ *)

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Column j's entries: rows [rowi.(k)] with values [svals.{k}] for
   k in colp.(j) .. colp.(j+1)-1. *)
type sparse = {
  colp : int array;
  rowi : int array;
  svals : ba;
  s_rows : int;
  s_ncols : int;
  s_nvars : int;
  s_obj : float array; (* phase-2 objective over all columns *)
}

let build_sparse problem =
  let nvars, normalized = normalize problem in
  let rows_a = Array.of_list normalized in
  let rows = Array.length rows_a in
  let n_slack =
    Array.fold_left (fun acc (_, r, _) -> if r <> Eq then acc + 1 else acc) 0 rows_a
  in
  let n_art =
    Array.fold_left
      (fun acc (_, r, _) -> if r = Ge || r = Eq then acc + 1 else acc)
      0 rows_a
  in
  let ncols = nvars + n_slack + n_art in
  (* Gather per-column entries; prepending over ascending rows leaves each
     list in descending row order, reversed at pack time. *)
  let cols = Array.make (max ncols 1) [] in
  let basis = Array.make rows (-1) in
  let b = Array.make rows 0.0 in
  let slack_idx = ref nvars in
  let art_idx = ref (nvars + n_slack) in
  Array.iteri
    (fun r (coeffs, relation, rhs) ->
      Array.iteri (fun j c -> if c <> 0.0 then cols.(j) <- (r, c) :: cols.(j)) coeffs;
      b.(r) <- rhs;
      match relation with
      | Le ->
        cols.(!slack_idx) <- [ (r, 1.0) ];
        basis.(r) <- !slack_idx;
        incr slack_idx
      | Ge ->
        cols.(!slack_idx) <- [ (r, -1.0) ];
        incr slack_idx;
        cols.(!art_idx) <- [ (r, 1.0) ];
        basis.(r) <- !art_idx;
        incr art_idx
      | Eq ->
        cols.(!art_idx) <- [ (r, 1.0) ];
        basis.(r) <- !art_idx;
        incr art_idx)
    rows_a;
  let nnz = Array.fold_left (fun acc l -> acc + List.length l) 0 cols in
  let colp = Array.make (ncols + 1) 0 in
  let rowi = Array.make (max nnz 1) 0 in
  let svals = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max nnz 1) in
  let k = ref 0 in
  for j = 0 to ncols - 1 do
    colp.(j) <- !k;
    List.iter
      (fun (r, v) ->
        rowi.(!k) <- r;
        Bigarray.Array1.set svals !k v;
        incr k)
      (List.rev cols.(j))
  done;
  colp.(ncols) <- !k;
  let s_obj = Array.make (max ncols 1) 0.0 in
  Array.blit problem.objective 0 s_obj 0 nvars;
  ( { colp; rowi; svals; s_rows = rows; s_ncols = ncols; s_nvars = nvars; s_obj },
    nvars + n_slack,
    basis,
    b )

(* Reduced cost of column [j] given simplex multipliers [y]: a dot product
   over the column's stored nonzeros only. *)
let reduced_cost sp y c j =
  let acc = ref 0.0 in
  for k = sp.colp.(j) to sp.colp.(j + 1) - 1 do
    acc := !acc +. (Array.unsafe_get y sp.rowi.(k) *. Bigarray.Array1.unsafe_get sp.svals k)
  done;
  c.(j) -. !acc

(* d := B⁻¹ A_j (the tableau column of [j] under the current basis). *)
let direction sp binv d j =
  let rows = sp.s_rows in
  for r = 0 to rows - 1 do
    let base = r * rows in
    let acc = ref 0.0 in
    for k = sp.colp.(j) to sp.colp.(j + 1) - 1 do
      acc :=
        !acc
        +. (Bigarray.Array1.unsafe_get sp.svals k
           *. Bigarray.Array1.unsafe_get binv (base + sp.rowi.(k)))
    done;
    d.(r) <- !acc
  done

(* Row [r] of B⁻¹ A_j alone — enough to screen drive-out candidates. *)
let direction_row sp binv ~row j =
  let base = row * sp.s_rows in
  let acc = ref 0.0 in
  for k = sp.colp.(j) to sp.colp.(j + 1) - 1 do
    acc :=
      !acc
      +. (Bigarray.Array1.unsafe_get sp.svals k
         *. Bigarray.Array1.unsafe_get binv (base + sp.rowi.(k)))
  done;
  !acc

(* Apply the eta transformation for a pivot on [row] with tableau column
   [d]: premultiply B⁻¹ (and the basic solution) by E⁻¹. *)
let eta_update binv xb rows ~row d =
  let p = d.(row) in
  let pbase = row * rows in
  for r = 0 to rows - 1 do
    if r <> row then begin
      let f = d.(r) /. p in
      if f <> 0.0 then begin
        let base = r * rows in
        for j = 0 to rows - 1 do
          Bigarray.Array1.unsafe_set binv (base + j)
            (Bigarray.Array1.unsafe_get binv (base + j)
            -. (f *. Bigarray.Array1.unsafe_get binv (pbase + j)))
        done;
        xb.(r) <- xb.(r) -. (f *. xb.(row))
      end
    end
  done;
  for j = 0 to rows - 1 do
    Bigarray.Array1.unsafe_set binv (pbase + j)
      (Bigarray.Array1.unsafe_get binv (pbase + j) /. p)
  done;
  xb.(row) <- xb.(row) /. p

(* One revised-simplex run maximizing [c] over columns [0, limit), same
   entering/leaving rules as the dense [run]. *)
let run_revised sp binv basis xb c ~limit =
  let rows = sp.s_rows in
  let y = Array.make (max rows 1) 0.0 in
  let d = Array.make (max rows 1) 0.0 in
  let rec step () =
    (* y = cB^T B⁻¹. *)
    for j = 0 to rows - 1 do
      let acc = ref 0.0 in
      for r = 0 to rows - 1 do
        acc := !acc +. (c.(basis.(r)) *. Bigarray.Array1.unsafe_get binv ((r * rows) + j))
      done;
      y.(j) <- !acc
    done;
    let entering = ref (-1) in
    (try
       for j = 0 to limit - 1 do
         if reduced_cost sp y c j > eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      direction sp binv d !entering;
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to rows - 1 do
        if d.(r) > eps then begin
          let ratio = xb.(r) /. d.(r) in
          if
            ratio < !best_ratio -. eps
            || (Float.abs (ratio -. !best_ratio) <= eps
               && (!best_row < 0 || basis.(r) < basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := r
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        eta_update binv xb rows ~row:!best_row d;
        basis.(!best_row) <- !entering;
        step ()
      end
    end
  in
  step ()

let solve problem =
  let sp, non_artificial, basis, b = build_sparse problem in
  let rows = sp.s_rows in
  (* The initial basis is all unit columns (slack or artificial), so B = I
     and the basic solution is the (non-negative) rhs. *)
  let binv = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max (rows * rows) 1) in
  Bigarray.Array1.fill binv 0.0;
  for r = 0 to rows - 1 do
    Bigarray.Array1.set binv ((r * rows) + r) 1.0
  done;
  let xb = Array.copy b in
  let d = Array.make (max rows 1) 0.0 in
  let has_artificials = sp.s_ncols > non_artificial in
  let basic_value c =
    let acc = ref 0.0 in
    for r = 0 to rows - 1 do
      acc := !acc +. (c.(basis.(r)) *. xb.(r))
    done;
    !acc
  in
  let feasible =
    if not has_artificials then true
    else begin
      (* Phase 1: maximize -(sum of artificials). *)
      let c1 = Array.make sp.s_ncols 0.0 in
      for j = non_artificial to sp.s_ncols - 1 do
        c1.(j) <- -1.0
      done;
      (match run_revised sp binv basis xb c1 ~limit:sp.s_ncols with
      | `Unbounded -> () (* cannot happen: phase-1 objective is bounded *)
      | `Optimal -> ());
      if basic_value c1 < -.eps then false
      else begin
        (* Drive any artificial still basic (at zero) out of the basis. *)
        for r = 0 to rows - 1 do
          if basis.(r) >= non_artificial then begin
            let found = ref (-1) in
            for j = 0 to non_artificial - 1 do
              if !found < 0 && Float.abs (direction_row sp binv ~row:r j) > eps then
                found := j
            done;
            if !found >= 0 then begin
              direction sp binv d !found;
              eta_update binv xb rows ~row:r d;
              basis.(r) <- !found
            end
          end
        done;
        true
      end
    end
  in
  if not feasible then Infeasible
  else begin
    (* Phase 2: entering variables restricted to non-artificial columns;
       any artificial left basic sits at value 0 in a redundant row. *)
    match run_revised sp binv basis xb sp.s_obj ~limit:non_artificial with
    | `Unbounded -> Unbounded
    | `Optimal ->
      let x = Array.make sp.s_nvars 0.0 in
      for r = 0 to rows - 1 do
        if basis.(r) < sp.s_nvars then x.(basis.(r)) <- xb.(r)
      done;
      Optimal { solution = x; value = basic_value sp.s_obj }
  end

let maximize objective constraints = solve { objective; constraints }
