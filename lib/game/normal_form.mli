(** Finite n-player normal-form (strategic) games.

    A game is a set of players [0 … n−1], a finite action set per player and
    a payoff vector per pure action profile. Payoffs are materialized once at
    construction into flat [Bigarray] float64 storage — one C-layout array
    per player, indexed row-major by profile — so lookups during equilibrium
    checks are O(1) and kernels ({!Flat}) run unboxed loops over them. *)

type t

val create :
  ?player_names:string array ->
  ?action_names:string array array ->
  actions:int array ->
  (int array -> float array) ->
  t
(** [create ~actions u] builds a game with [Array.length actions] players
    where player [i] has [actions.(i)] actions and [u profile] gives the
    payoff vector (one entry per player) of a pure profile. [u] is evaluated
    once per profile at construction time.
    @raise Invalid_argument if some [actions.(i) <= 0] or [u] returns a
    vector of the wrong arity. *)

val of_bimatrix : float array array -> float array array -> t
(** Two-player game from payoff matrices [a] (row player) and [b] (column
    player); [a.(i).(j)] is the row player's payoff when row [i] meets
    column [j]. Matrices must be rectangular with equal shape. *)

val n_players : t -> int
val num_actions : t -> int -> int
val actions : t -> int array
(** A fresh copy of the action-count vector. *)

val player_name : t -> int -> string
val action_name : t -> int -> int -> string

val payoff : t -> int array -> int -> float
(** [payoff g profile i] is player [i]'s payoff at a pure profile. *)

val payoff_vector : t -> int array -> float array
(** All payoffs at a pure profile (fresh array). *)

(** {2 Index-based access}

    The payoff table is flat and row-major: a pure profile [p] lives at
    flat index [Σᵢ p.(i) · stride i]. Hot loops (deviation search,
    support-product expectation) keep a running flat index and pay one
    array read per evaluation instead of re-walking the profile. *)

val index_of : t -> int array -> int
(** Flat table index of a pure profile (row-major). *)

val table_size : t -> int
(** Number of pure profiles, [∏ᵢ num_actions i]. *)

val stride : t -> int -> int
(** [stride g i] is the flat-index weight of player [i]'s action: changing
    [i]'s action from [a] to [a'] moves the index by [(a' − a) · stride g i]. *)

val shift_index : t -> int -> player:int -> from_:int -> to_:int -> int
(** [shift_index g idx ~player ~from_ ~to_] is the flat index obtained from
    [idx] by re-pointing [player]'s coordinate from action [from_] to
    [to_] — O(1), the stride-delta update used by the deviation scanner.
    A deviation touching [m] coordinates composes [m] shifts. *)

val payoff_by_index : t -> int -> int -> float
(** [payoff_by_index g idx i] is player [i]'s payoff at the profile with
    flat index [idx] — a single table read. *)

val payoff_row : t -> int -> float array
(** The payoff vector at a flat index (fresh array — storage is
    player-major, so a profile's row is gathered, not aliased). *)

val profile_of_index : t -> int -> int array
(** Decode a flat index back into a fresh pure profile;
    inverse of {!index_of}. *)

val iter_profiles : t -> (int array -> unit) -> unit
(** Iterate all pure profiles; the array passed to the callback is reused. *)

val profiles : t -> int array list
(** All pure profiles (fresh arrays). *)

val map_payoffs : (int array -> float array -> float array) -> t -> t
(** Pointwise payoff transformation (e.g. adding computation charges). *)

val is_zero_sum : ?eps:float -> t -> bool
(** Whether payoffs sum to (nearly) zero at every profile. Stops at the
    first counterexample. *)

val is_symmetric_2p : ?eps:float -> t -> bool
(** For two-player games: whether [u1(i,j) = u2(j,i)] everywhere. Stops at
    the first counterexample. *)

(** {2 Flat kernel}

    Raw access to the payoff storage for unboxed hot loops. [table g i] is
    player [i]'s payoffs over all pure profiles, indexed by the same
    row-major flat index as {!payoff_by_index}: profile [p] lives at
    [Σⱼ p.(j) · stride g j]. The array is the game's own storage — callers
    must treat it as read-only. Use from outside the sanctioned kernel
    modules trips the [P004] lint rule. *)
module Flat : sig
  type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  val table : t -> int -> ba
end

val pp : Format.formatter -> t -> unit
(** Render a two-player game as a payoff matrix, or a summary otherwise. *)
