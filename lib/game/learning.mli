(** Learning dynamics: fictitious play and replicator dynamics.

    These provide approximate equilibria for games beyond the reach of the
    exact solvers and a dynamic account of how equilibrium beliefs could
    arise — one of the questions the paper raises about one-shot games.

    Both dynamics run on the flat payoff kernel ({!Normal_form.Flat}) with
    incremental expected utilities: a player's deviation-EU vector is only
    recomputed on rounds where some opponent's mixture coordinate actually
    changed (bitwise), so converged phases cost a comparison per player per
    round. Results are bitwise-identical to the retained references
    {!fictitious_play_naive} and {!replicator_naive}, which the QCheck
    agreement suite pins. *)

type trace = {
  profile : Mixed.profile;  (** Final (empirical or population) profile. *)
  rounds : int;  (** Rounds actually executed (< requested on early stop). *)
  final_regret : float;  (** {!Nash.max_regret} of [profile]. *)
}

val fictitious_play :
  ?init:int array -> ?tol:float -> rounds:int -> Normal_form.t -> trace
(** Discrete fictitious play: each round every player best-responds to the
    empirical mixture of the others' past actions (ties broken by lowest
    index). [init] is the first round's profile (default all-0). The
    returned profile is the empirical action frequency per player.
    With [tol], stops after the first round whose empirical profile has
    {!Nash.max_regret} below [tol]; [trace.rounds] reports the rounds
    actually executed. *)

val replicator :
  ?init:Mixed.profile -> ?dt:float -> ?tol:float -> rounds:int -> Normal_form.t -> trace
(** Discrete-time replicator dynamics on each player's mixture; payoffs are
    shifted to keep mixtures valid. Default [init] is uniform, default [dt]
    is 0.1. With [tol], stops after the first round whose profile has
    {!Nash.max_regret} below [tol] (a replicator fixed point — e.g. an
    interior equilibrium start — stops on round 1). *)

val fictitious_play_naive : ?init:int array -> rounds:int -> Normal_form.t -> trace
(** Reference implementation of {!fictitious_play}: full per-round
    re-evaluation through {!Mixed} and {!Nash.pure_best_responses}.
    Bitwise-identical traces; retained as the QCheck oracle. *)

val replicator_naive :
  ?init:Mixed.profile -> ?dt:float -> rounds:int -> Normal_form.t -> trace
(** Reference implementation of {!replicator}: full per-round re-evaluation
    through {!Mixed.expected_payoff}. Bitwise-identical traces; retained as
    the QCheck oracle. *)

val best_response_iteration :
  ?init:int array -> max_rounds:int -> Normal_form.t -> int array option
(** Iterated pure best response; [Some profile] if it reaches a pure Nash
    equilibrium fixed point within [max_rounds]. *)
