(* Two-player evaluations run on the flat kernel ({!Normal_form.Flat}):
   unboxed loops over the per-player Bigarray tables. Every fast path below
   is bitwise-identical to the [Mixed.expected_payoff] path it replaces —
   same left-to-right support products, 0.0-initialized accumulators and
   [pr > 0.0] skips; [1.0 *. x = x] and [0.0 +. x = x] in IEEE, so the
   point-mass fast path and the support product agree bit-for-bit. The
   Mixed-based generic path is retained for n ≠ 2 and, as
   [max_regret_naive], as the reference oracle for the agreement tests. *)

module Flat = Normal_form.Flat

let eu2 g prof ~player =
  let tab = Flat.table g player in
  let st0 = Normal_form.stride g 0 and st1 = Normal_form.stride g 1 in
  let s0 = prof.(0) and s1 = prof.(1) in
  let acc = ref 0.0 in
  for a = 0 to Array.length s0 - 1 do
    let pa = Array.unsafe_get s0 a in
    if pa > 0.0 then begin
      let base = a * st0 in
      for b = 0 to Array.length s1 - 1 do
        let pb = Array.unsafe_get s1 b in
        if pb > 0.0 then begin
          let pr = pa *. pb in
          if pr > 0.0 then
            acc := !acc +. (pr *. Bigarray.Array1.get tab (base + (b * st1)))
        end
      done
    end
  done;
  !acc

(* EU of [player] deviating to the pure [action] while the other follows
   [prof]: the deviator's point mass contributes a bitwise no-op 1.0 factor
   to each support product. *)
let eu2_dev g prof ~player ~action =
  let tab = Flat.table g player in
  let st0 = Normal_form.stride g 0 and st1 = Normal_form.stride g 1 in
  let other = prof.(1 - player) in
  let acc = ref 0.0 in
  if player = 0 then begin
    let base = action * st0 in
    for b = 0 to Array.length other - 1 do
      let pb = Array.unsafe_get other b in
      if pb > 0.0 then
        acc := !acc +. (pb *. Bigarray.Array1.get tab (base + (b * st1)))
    done
  end
  else begin
    let base = action * st1 in
    for a = 0 to Array.length other - 1 do
      let pa = Array.unsafe_get other a in
      if pa > 0.0 then
        acc := !acc +. (pa *. Bigarray.Array1.get tab ((a * st0) + base))
    done
  end;
  !acc

let dev_value g prof ~player ~action =
  if Normal_form.n_players g = 2 then eu2_dev g prof ~player ~action
  else Mixed.expected_payoff_vs_pure g prof ~player ~action

let own_value g prof ~player =
  if Normal_form.n_players g = 2 then eu2 g prof ~player
  else Mixed.expected_payoff g prof player

let best_response_value g prof ~player =
  let best = ref neg_infinity in
  for a = 0 to Normal_form.num_actions g player - 1 do
    let v = dev_value g prof ~player ~action:a in
    if v > !best then best := v
  done;
  !best

let pure_best_responses g prof ~player =
  let best = best_response_value g prof ~player in
  let acc = ref [] in
  for a = Normal_form.num_actions g player - 1 downto 0 do
    let v = dev_value g prof ~player ~action:a in
    if Float.abs (v -. best) <= 1e-9 then acc := a :: !acc
  done;
  !acc

let regret g prof ~player =
  let br = best_response_value g prof ~player in
  let current = own_value g prof ~player in
  Float.max 0.0 (br -. current)

let max_regret g prof =
  let worst = ref 0.0 in
  for i = 0 to Normal_form.n_players g - 1 do
    let r = regret g prof ~player:i in
    if r > !worst then worst := r
  done;
  !worst

(* Reference oracle: the pre-kernel implementation, all evaluations through
   [Mixed.expected_payoff]. The QCheck agreement suite pins
   [max_regret == max_regret_naive] bitwise. *)
let max_regret_naive g prof =
  let worst = ref 0.0 in
  for player = 0 to Normal_form.n_players g - 1 do
    let br = ref neg_infinity in
    for a = 0 to Normal_form.num_actions g player - 1 do
      let v = Mixed.expected_payoff_vs_pure g prof ~player ~action:a in
      if v > !br then br := v
    done;
    let current = Mixed.expected_payoff g prof player in
    let r = Float.max 0.0 (!br -. current) in
    if r > !worst then worst := r
  done;
  !worst

let is_nash ?(eps = 1e-9) g prof = max_regret g prof <= eps

(* On a fully-pure profile every EU evaluation collapses to
   [0.0 +. table read], so the Nash check is a stride-shifted deviation
   scan on the flat index — no Mixed profiles, no allocation. *)
let is_pure_nash ?(eps = 1e-9) g pure_acts =
  let n = Normal_form.n_players g in
  let idx = Normal_form.index_of g pure_acts in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let player = !i in
    let tab = Flat.table g player in
    let st = Normal_form.stride g player in
    let base = idx - (pure_acts.(player) * st) in
    let best = ref neg_infinity in
    for a = 0 to Normal_form.num_actions g player - 1 do
      let v = 0.0 +. Bigarray.Array1.get tab (base + (a * st)) in
      if v > !best then best := v
    done;
    let current = 0.0 +. Bigarray.Array1.get tab idx in
    if Float.max 0.0 (!best -. current) > eps then ok := false;
    incr i
  done;
  !ok

let pure_equilibria ?eps g =
  let acc = ref [] in
  Normal_form.iter_profiles g (fun p -> if is_pure_nash ?eps g p then acc := Array.copy p :: !acc);
  List.rev !acc

(* Gaussian elimination with partial pivoting on caller-owned scratch —
   the same pivot choice, 1e-12 singularity threshold and back-substitution
   as [Bn_util.Linalg.solve], minus its per-call copies. [m]'s first [nv]
   rows hold the [nv × (nv+1)] augmented system (rows at least [nv+1] wide;
   the rows are permuted in place); the solution lands in [x.(0 .. nv−1)].
   Returns [false] on a (near-)singular system. *)
let solve_scratch m x nv =
  let singular = ref false in
  (try
     for col = 0 to nv - 1 do
       let pivot = ref col in
       for r = col + 1 to nv - 1 do
         if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
       done;
       if Float.abs m.(!pivot).(col) < 1e-12 then begin
         singular := true;
         raise Exit
       end;
       let tmp = m.(col) in
       m.(col) <- m.(!pivot);
       m.(!pivot) <- tmp;
       for r = col + 1 to nv - 1 do
         let factor = m.(r).(col) /. m.(col).(col) in
         for c = col to nv do
           m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
         done
       done
     done
   with Exit -> ());
  if !singular then false
  else begin
    for i = nv - 1 downto 0 do
      let s = ref m.(i).(nv) in
      for j = i + 1 to nv - 1 do
        s := !s -. (m.(i).(j) *. x.(j))
      done;
      x.(i) <- !s /. m.(i).(i)
    done;
    true
  end

(* Support enumeration for 2-player games: for supports (s1, s2) of equal
   size, the row player's mixture must make every column in s2 indifferent,
   and symmetrically. Solving the two linear systems and verifying the
   equilibrium conditions yields every equilibrium of a nondegenerate
   game. *)
let support_enumeration_2p ?(eps = 1e-7) g =
  if Normal_form.n_players g <> 2 then
    invalid_arg "Nash.support_enumeration_2p: two-player games only";
  let m1 = Normal_form.num_actions g 0 and m2 = Normal_form.num_actions g 1 in
  let tab0 = Flat.table g 0 and tab1 = Flat.table g 1 in
  let st0 = Normal_form.stride g 0 and st1 = Normal_form.stride g 1 in
  let u1 i j = Bigarray.Array1.unsafe_get tab0 ((i * st0) + (j * st1)) in
  let u2 i j = Bigarray.Array1.unsafe_get tab1 ((i * st0) + (j * st1)) in
  let results = ref [] in
  let add prof =
    if not (List.exists (fun p -> Mixed.equal ~eps:1e-6 p prof) !results) then
      results := prof :: !results
  in
  (* Shared scratch for every indifference system in the sweep: supports are
     at most max(m1,m2) actions, so systems are at most (mmax+1) square. *)
  let mmax = if m1 > m2 then m1 else m2 in
  let scratch = Array.init (mmax + 1) (fun _ -> Array.make (mmax + 2) 0.0) in
  let xsol = Array.make (mmax + 1) 0.0 in
  (* Solve for the mixture of [mixer] (over support s_mix) that makes
     [other] indifferent across s_other; unknowns: probs + common value.
     One indifference equation per action of [other], plus sum-to-1. *)
  let solve_indifference ~payoff_other (s_mix : int array) (s_other : int array) =
    let k = Array.length s_mix in
    let nv = k + 1 in
    for r = 0 to k - 1 do
      let row = scratch.(r) in
      for c = 0 to k - 1 do
        row.(c) <- payoff_other s_mix.(c) s_other.(r)
      done;
      row.(k) <- -1.0;
      row.(nv) <- 0.0
    done;
    let last = scratch.(k) in
    for c = 0 to k - 1 do
      last.(c) <- 1.0
    done;
    last.(k) <- 0.0;
    last.(nv) <- 1.0;
    if not (solve_scratch scratch xsol nv) then None
    else begin
      let ok = ref true in
      for c = 0 to k - 1 do
        if xsol.(c) < -.eps then ok := false
      done;
      if !ok then Some (Array.sub xsol 0 k) else None
    end
  in
  let expand full (support : int array) probs =
    let s = Array.make full 0.0 in
    Array.iteri (fun idx a -> s.(a) <- Float.max 0.0 probs.(idx)) support;
    let total = Array.fold_left ( +. ) 0.0 s in
    Array.map (fun p -> p /. total) s
  in
  let u1_flipped j i = u1 i j in
  let pure_pair = Array.make 2 0 in
  (* Supports are enumerated with an in-place combination odometer instead
     of materializing [Combin.subsets_up_to] lists: only equal-size pairs
     ever yield a square indifference system, and the visit order — size
     ascending, lexicographic within a size, s1-major — is exactly the
     order the filtered subset×subset product used, so the result list is
     unchanged. [next_comb] advances [c] to the lexicographic successor
     among size-|c| subsets of {0..m-1}. *)
  let next_comb c m =
    let k = Array.length c in
    let i = ref (k - 1) in
    while !i >= 0 && c.(!i) = m - k + !i do
      decr i
    done;
    if !i < 0 then false
    else begin
      c.(!i) <- c.(!i) + 1;
      for j = !i + 1 to k - 1 do
        c.(j) <- c.(j - 1) + 1
      done;
      true
    end
  in
  let kmax = if m1 < m2 then m1 else m2 in
  for k = 1 to kmax do
    let s1 = Array.init k Fun.id in
    let s2 = Array.init k Fun.id in
    let continue1 = ref true in
    while !continue1 do
      for i = 0 to k - 1 do
        s2.(i) <- i
      done;
      let continue2 = ref true in
      while !continue2 do
        (if k = 1 then begin
           (* Singleton supports: the two indifference systems are 2×2
              with determinant 1, always yielding probs = [1], so the
              candidate is exactly the pure pair — and accepting it on
              [max_regret ≤ eps] is the same verdict as the pure-Nash
              deviation scan (every EU involved is a plain table read). *)
           pure_pair.(0) <- s1.(0);
           pure_pair.(1) <- s2.(0);
           if is_pure_nash ~eps g pure_pair then add (Mixed.pure_profile g pure_pair)
         end
         else
           (* Row mixture makes column player indifferent on s2
              (payoff_other must be u2 as a function of (mixer's action,
              other's action)). *)
           match solve_indifference ~payoff_other:u2 s1 s2 with
           | None -> ()
           | Some p1 -> (
             match solve_indifference ~payoff_other:u1_flipped s2 s1 with
             | None -> ()
             | Some p2 ->
               let prof = [| expand m1 s1 p1; expand m2 s2 p2 |] in
               if
                 Mixed.is_valid prof.(0) && Mixed.is_valid prof.(1)
                 && max_regret g prof <= eps
               then add prof));
        continue2 := next_comb s2 m2
      done;
      continue1 := next_comb s1 m1
    done
  done;
  List.iter (fun p -> add (Mixed.pure_profile g p)) (pure_equilibria g);
  List.rev !results

let find_2p ?eps g =
  match support_enumeration_2p ?eps g with [] -> None | p :: _ -> Some p
