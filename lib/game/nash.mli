(** Nash equilibrium: checking and solving.

    The checker works on any finite n-player game; the solvers cover pure
    equilibria (any n) and mixed equilibria of two-player games via support
    enumeration. *)

val best_response_value : Normal_form.t -> Mixed.profile -> player:int -> float
(** Highest expected payoff [player] can get with any (pure, hence any)
    strategy while the others follow the profile. *)

val pure_best_responses : Normal_form.t -> Mixed.profile -> player:int -> int list
(** Pure actions attaining {!best_response_value} (up to 1e-9). *)

val regret : Normal_form.t -> Mixed.profile -> player:int -> float
(** [best_response_value − expected_payoff]; non-negative, 0 iff the
    player's strategy is a best response. *)

val max_regret : Normal_form.t -> Mixed.profile -> float
(** Maximum regret over all players. Two-player games evaluate on the flat
    kernel ({!Normal_form.Flat}); results are bitwise-identical to
    {!max_regret_naive}. *)

val max_regret_naive : Normal_form.t -> Mixed.profile -> float
(** Reference implementation of {!max_regret}: every expected utility
    through {!Mixed.expected_payoff}. Retained as the oracle for the
    kernel-agreement property tests. *)

val is_nash : ?eps:float -> Normal_form.t -> Mixed.profile -> bool
(** Whether no player has a profitable unilateral deviation (within [eps],
    default 1e-9). *)

val is_pure_nash : ?eps:float -> Normal_form.t -> int array -> bool
(** Specialization of {!is_nash} to a pure profile. *)

val pure_equilibria : ?eps:float -> Normal_form.t -> int array list
(** All pure Nash equilibria, by exhaustive profile enumeration. *)

val support_enumeration_2p : ?eps:float -> Normal_form.t -> Mixed.profile list
(** All Nash equilibria of a two-player game found by equal-size support
    enumeration (complete for nondegenerate games), plus all pure
    equilibria. Duplicates are pruned.
    @raise Invalid_argument on games with ≠ 2 players. *)

val find_2p : ?eps:float -> Normal_form.t -> Mixed.profile option
(** First equilibrium from {!support_enumeration_2p}. *)
