type strategy = float array
type profile = strategy array

module Obs = Bn_obs.Obs

(* Expected-payoff evaluations run under Robust's early-exit deviation
   scans, so their execution counts depend on scheduling: Volatile. The
   per-profile work inside one [iter_support] sweep is accumulated
   locally and flushed once, keeping the odometer loop free of atomics. *)
let c_support_iters = Obs.counter ~kind:Obs.Volatile "mixed.support_iters"
let c_support_profiles = Obs.counter ~kind:Obs.Volatile "mixed.support_profiles"
let c_expected_payoffs = Obs.counter ~kind:Obs.Volatile "mixed.expected_payoffs"

let pure ~num_actions a =
  if a < 0 || a >= num_actions then invalid_arg "Mixed.pure: action out of range";
  Array.init num_actions (fun i -> if i = a then 1.0 else 0.0)

let uniform n =
  if n <= 0 then invalid_arg "Mixed.uniform: no actions";
  Array.make n (1.0 /. float_of_int n)

let of_weights w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 || Array.exists (fun x -> x < 0.0) w then
    invalid_arg "Mixed.of_weights: invalid weights";
  Array.map (fun x -> x /. total) w

let is_valid ?(eps = 1e-6) s =
  Array.for_all (fun p -> p >= -.eps) s
  && Float.abs (Array.fold_left ( +. ) 0.0 s -. 1.0) <= eps

let pure_profile g pure_acts =
  Array.init (Normal_form.n_players g) (fun i ->
      pure ~num_actions:(Normal_form.num_actions g i) pure_acts.(i))

let uniform_profile g =
  Array.init (Normal_form.n_players g) (fun i -> uniform (Normal_form.num_actions g i))

let prob_of_profile prof p =
  let acc = ref 1.0 in
  Array.iteri (fun i a -> acc := !acc *. prof.(i).(a)) p;
  !acc

let point_mass s =
  (* [Some a] iff the strategy is exactly the point mass on [a]: one entry
     equal to 1.0, every other exactly 0.0. Exact comparison on purpose —
     only strategies built by [pure] (and friends) take the table-read fast
     path; anything else goes through the support product, which is
     numerically identical to the full scan. *)
  let n = Array.length s in
  let rec go i found =
    if i >= n then found
    else if s.(i) = 0.0 then go (i + 1) found
    else if s.(i) = 1.0 && found = None then go (i + 1) (Some i)
    else None
  in
  go 0 None

let pure_actions prof =
  let n = Array.length prof in
  let p = Array.make n 0 in
  let rec go i =
    if i >= n then Some p
    else
      match point_mass prof.(i) with
      | Some a ->
        p.(i) <- a;
        go (i + 1)
      | None -> None
  in
  go 0

(* Support-product iteration: visit every profile in the product of the
   players' supports, in row-major order, calling [f profile flat_index pr].
   [profile] is reused across calls. Probabilities are accumulated as the
   same left-to-right product the full scan computes ([prob_of_profile]),
   and zero-probability profiles are skipped exactly when the full scan
   skips them, so every consumer below is bit-identical to the O(∏ᵢ aᵢ)
   enumeration it replaces — only ∏ᵢ|supp(σᵢ)| profiles are touched. *)
let iter_support g prof f =
  let n = Array.length prof in
  let supp_acts = Array.make n [||] in
  let supp_probs = Array.make n [||] in
  let empty = ref false in
  for i = 0 to n - 1 do
    let s = prof.(i) in
    let cnt = ref 0 in
    Array.iter (fun p -> if p > 0.0 then incr cnt) s;
    if !cnt = 0 then empty := true
    else begin
      let acts = Array.make !cnt 0 and probs = Array.make !cnt 0.0 in
      let j = ref 0 in
      Array.iteri
        (fun a p ->
          if p > 0.0 then begin
            acts.(!j) <- a;
            probs.(!j) <- p;
            incr j
          end)
        s;
      supp_acts.(i) <- acts;
      supp_probs.(i) <- probs
    end
  done;
  Obs.incr c_support_iters;
  if not !empty then begin
    let visited = ref 0 in
    let pos = Array.make n 0 in
    let cur = Array.make n 0 in
    (* Per-player prefixes of the running product and flat index; bumping
       position [j] only recomputes levels [j … n−1]. *)
    let pref_pr = Array.make n 1.0 in
    let pref_idx = Array.make n 0 in
    let recompute_from j0 =
      for j = j0 to n - 1 do
        let a = supp_acts.(j).(pos.(j)) in
        cur.(j) <- a;
        pref_pr.(j) <- (if j = 0 then 1.0 else pref_pr.(j - 1)) *. supp_probs.(j).(pos.(j));
        pref_idx.(j) <- (if j = 0 then 0 else pref_idx.(j - 1)) + (a * Normal_form.stride g j)
      done
    in
    recompute_from 0;
    let continue = ref true in
    while !continue do
      let pr = pref_pr.(n - 1) in
      if pr > 0.0 then begin
        Stdlib.incr visited;
        f cur pref_idx.(n - 1) pr
      end;
      let rec bump j =
        if j < 0 then false
        else if pos.(j) + 1 < Array.length supp_acts.(j) then begin
          pos.(j) <- pos.(j) + 1;
          recompute_from j;
          true
        end
        else begin
          pos.(j) <- 0;
          bump (j - 1)
        end
      in
      continue := bump (n - 1)
    done;
    Obs.add c_support_profiles !visited
  end

let expected_payoff g prof i =
  Obs.incr c_expected_payoffs;
  match pure_actions prof with
  | Some p -> 0.0 +. Normal_form.payoff g p i
  | None ->
    let acc = ref 0.0 in
    iter_support g prof (fun _ idx pr ->
        acc := !acc +. (pr *. Normal_form.payoff_by_index g idx i));
    !acc

let expected_payoff_naive g prof i =
  let acc = ref 0.0 in
  Normal_form.iter_profiles g (fun p ->
      let pr = prob_of_profile prof p in
      if pr > 0.0 then acc := !acc +. (pr *. Normal_form.payoff g p i));
  !acc

let expected_payoffs g prof =
  let n = Normal_form.n_players g in
  match pure_actions prof with
  | Some p ->
    let idx = Normal_form.index_of g p in
    Array.init n (fun i -> 0.0 +. Normal_form.payoff_by_index g idx i)
  | None ->
    let acc = Array.make n 0.0 in
    iter_support g prof (fun _ idx pr ->
        for i = 0 to n - 1 do
          acc.(i) <- acc.(i) +. (pr *. Normal_form.payoff_by_index g idx i)
        done);
    acc

let expected_payoff_vs_pure g prof ~player ~action =
  let deviated = Array.copy prof in
  deviated.(player) <- pure ~num_actions:(Normal_form.num_actions g player) action;
  expected_payoff g deviated player

let support ?(eps = 1e-9) s =
  let acc = ref [] in
  Array.iteri (fun i p -> if p > eps then acc := i :: !acc) s;
  List.rev !acc

let outcome_dist g prof =
  let pairs = ref [] in
  iter_support g prof (fun p _ pr -> pairs := (Array.copy p, pr) :: !pairs);
  Bn_util.Dist.of_list !pairs

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun sa sb ->
         Array.length sa = Array.length sb
         && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) sa sb)
       a b

let pp_strategy ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") s)))

let pp_profile ppf prof =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_strategy)
    (Array.to_list prof)
