type trace = { profile : Mixed.profile; rounds : int; final_regret : float }

module Obs = Bn_obs.Obs
module Flat = Normal_form.Flat

(* The dynamics are serial loops, so the incremental-EU bookkeeping is a
   pure function of (game, init, rounds): Det, asserted identical across
   [-j] and reruns in test_obs. A "recompute" is one player's deviation-EU
   vector rebuilt because some opponent mixture changed that round; a
   "skip" is the cached vector reused because no opponent coordinate
   changed (bitwise), which makes the reuse exact, not approximate. *)
let c_eu_recomputes = Obs.counter "learning.eu_recomputes"
let c_eu_skips = Obs.counter "learning.eu_skips"

(* Flat EU kernel: support-compressed product iteration over the per-player
   Bigarray payoff tables, with caller-owned scratch. The loops mirror
   [Mixed.iter_support] exactly — supports are the [p > 0.0] coordinates in
   action order, probabilities accumulate as the same left-to-right prefix
   products, and zero-probability profiles are skipped at the same spot —
   so every value below is bitwise-identical to the [Mixed.expected_payoff]
   evaluation it replaces (the deviator's point mass contributes a 1.0
   factor, a bitwise no-op). *)
type kernel = {
  n : int;
  acts : int array;
  strides : int array;
  tabs : Flat.ba array;
  supp_act : int array array;  (* per player: support actions, prefix *)
  supp_prob : float array array;
  supp_len : int array;
  pos : int array;  (* odometer position per level *)
  pref_pr : float array;  (* left-to-right probability prefixes *)
  pref_idx : int array;  (* matching flat-index prefixes *)
  opp : int array;  (* players ≠ i, in player order (fitness scratch) *)
}

let make_kernel g =
  let n = Normal_form.n_players g in
  let acts = Normal_form.actions g in
  {
    n;
    acts;
    strides = Array.init n (Normal_form.stride g);
    tabs = Array.init n (Flat.table g);
    supp_act = Array.map (fun m -> Array.make m 0) acts;
    supp_prob = Array.map (fun m -> Array.make m 0.0) acts;
    supp_len = Array.make n 0;
    pos = Array.make n 0;
    pref_pr = Array.make n 1.0;
    pref_idx = Array.make n 0;
    opp = Array.make (if n > 1 then n - 1 else 1) 0;
  }

let refresh_support k (prof : Mixed.profile) =
  for j = 0 to k.n - 1 do
    let s = prof.(j) in
    let acts = k.supp_act.(j) and probs = k.supp_prob.(j) in
    let len = ref 0 in
    for a = 0 to Array.length s - 1 do
      let p = Array.unsafe_get s a in
      if p > 0.0 then begin
        acts.(!len) <- a;
        probs.(!len) <- p;
        incr len
      end
    done;
    k.supp_len.(j) <- !len
  done

(* Expected payoff of player [i] under the refreshed supports: the full
   row-major support product, as [Mixed.expected_payoff] computes it. *)
let avg_eu k i =
  let n = k.n in
  let empty = ref false in
  for j = 0 to n - 1 do
    if k.supp_len.(j) = 0 then empty := true
  done;
  if !empty then 0.0
  else begin
    let tab = k.tabs.(i) in
    let acc = ref 0.0 in
    Array.fill k.pos 0 n 0;
    let recompute_from j0 =
      for j = j0 to n - 1 do
        let p = k.pos.(j) in
        k.pref_pr.(j) <-
          (if j = 0 then 1.0 else k.pref_pr.(j - 1)) *. k.supp_prob.(j).(p);
        k.pref_idx.(j) <-
          (if j = 0 then 0 else k.pref_idx.(j - 1)) + (k.supp_act.(j).(p) * k.strides.(j))
      done
    in
    recompute_from 0;
    let continue = ref true in
    while !continue do
      let pr = k.pref_pr.(n - 1) in
      if pr > 0.0 then
        acc := !acc +. (pr *. Bigarray.Array1.unsafe_get tab k.pref_idx.(n - 1));
      let rec bump j =
        if j < 0 then false
        else if k.pos.(j) + 1 < k.supp_len.(j) then begin
          k.pos.(j) <- k.pos.(j) + 1;
          recompute_from j;
          true
        end
        else begin
          k.pos.(j) <- 0;
          bump (j - 1)
        end
      in
      continue := bump (n - 1)
    done;
    !acc
  end

(* Deviation EUs of player [i]: [out.(a)] becomes the expected payoff of
   playing pure [a] against the opponents' refreshed supports — every
   action's sum accumulates over opponent combinations in the same
   row-major order [Mixed.iter_support] visits them. [out] must be
   0-filled by the caller. *)
let fitness k i (out : float array) =
  let n = k.n in
  let np = n - 1 in
  let tab = k.tabs.(i) in
  let st = k.strides.(i) in
  let mi = k.acts.(i) in
  if np = 0 then
    for a = 0 to mi - 1 do
      out.(a) <- out.(a) +. (1.0 *. Bigarray.Array1.unsafe_get tab (a * st))
    done
  else begin
    let empty = ref false in
    let w = ref 0 in
    for j = 0 to n - 1 do
      if j <> i then begin
        k.opp.(!w) <- j;
        incr w;
        if k.supp_len.(j) = 0 then empty := true
      end
    done;
    if not !empty then begin
      Array.fill k.pos 0 np 0;
      let recompute_from l0 =
        for l = l0 to np - 1 do
          let j = k.opp.(l) in
          let p = k.pos.(l) in
          k.pref_pr.(l) <-
            (if l = 0 then 1.0 else k.pref_pr.(l - 1)) *. k.supp_prob.(j).(p);
          k.pref_idx.(l) <-
            (if l = 0 then 0 else k.pref_idx.(l - 1)) + (k.supp_act.(j).(p) * k.strides.(j))
        done
      in
      recompute_from 0;
      let continue = ref true in
      while !continue do
        let pr = k.pref_pr.(np - 1) in
        if pr > 0.0 then begin
          let base = k.pref_idx.(np - 1) in
          for a = 0 to mi - 1 do
            out.(a) <- out.(a) +. (pr *. Bigarray.Array1.unsafe_get tab (base + (a * st)))
          done
        end;
        let rec bump l =
          if l < 0 then false
          else if k.pos.(l) + 1 < k.supp_len.(k.opp.(l)) then begin
            k.pos.(l) <- k.pos.(l) + 1;
            recompute_from l;
            true
          end
          else begin
            k.pos.(l) <- 0;
            bump (l - 1)
          end
        in
        continue := bump (np - 1)
      done
    end
  end

let check_profile_arity name g prof =
  let n = Normal_form.n_players g in
  if Array.length prof <> n then invalid_arg (name ^ ": profile arity");
  for i = 0 to n - 1 do
    if Array.length prof.(i) <> Normal_form.num_actions g i then
      invalid_arg (name ^ ": strategy arity")
  done

let fictitious_play ?init ?tol ~rounds g =
  let n = Normal_form.n_players g in
  let counts = Array.init n (fun i -> Array.make (Normal_form.num_actions g i) 0.0) in
  let current =
    match init with
    | Some p -> Array.copy p
    | None -> Array.make n 0
  in
  let k = make_kernel g in
  (* Empirical mixtures double as the kernel's input profile; NaN-seeded so
     every coordinate reads as changed on round 1. *)
  let emp = Array.init n (fun i -> Array.make (Normal_form.num_actions g i) Float.nan) in
  let devs = Array.init n (fun i -> Array.make (Normal_form.num_actions g i) 0.0) in
  let changed = Array.make n true in
  let executed = ref 0 in
  let stop = ref false in
  let round = ref 0 in
  while (not !stop) && !round < rounds do
    incr round;
    Array.iteri (fun i a -> counts.(i).(a) <- counts.(i).(a) +. 1.0) current;
    for i = 0 to n - 1 do
      let c = counts.(i) in
      let total = Array.fold_left ( +. ) 0.0 c in
      let e = emp.(i) in
      let ch = ref false in
      for a = 0 to Array.length c - 1 do
        let v = c.(a) /. total in
        if v <> e.(a) then begin
          ch := true;
          e.(a) <- v
        end
      done;
      changed.(i) <- !ch
    done;
    executed := !round;
    (match tol with
    | Some tol -> if Nash.max_regret g emp < tol then stop := true
    | None -> ());
    if not !stop then begin
      refresh_support k emp;
      for i = 0 to n - 1 do
        let opp_changed = ref false in
        for j = 0 to n - 1 do
          if j <> i && changed.(j) then opp_changed := true
        done;
        let d = devs.(i) in
        (* Round 1 seeds the cache even when there is no opponent to have
           changed (n = 1). *)
        if !opp_changed || !round = 1 then begin
          Obs.incr c_eu_recomputes;
          Array.fill d 0 (Array.length d) 0.0;
          fitness k i d
        end
        else Obs.incr c_eu_skips;
        (* Lowest-index best response within the 1e-9 tie band — the head
           of [Nash.pure_best_responses]. *)
        let best = ref neg_infinity in
        for a = 0 to Array.length d - 1 do
          if d.(a) > !best then best := d.(a)
        done;
        let pick = ref (-1) in
        for a = Array.length d - 1 downto 0 do
          if Float.abs (d.(a) -. !best) <= 1e-9 then pick := a
        done;
        if !pick >= 0 then current.(i) <- !pick
      done
    end
  done;
  let profile = Array.map Mixed.of_weights counts in
  { profile; rounds = !executed; final_regret = Nash.max_regret g profile }

let replicator ?init ?(dt = 0.1) ?tol ~rounds g =
  let n = Normal_form.n_players g in
  let prof =
    match init with
    | Some p ->
      check_profile_arity "Learning.replicator" g p;
      Array.map Array.copy p
    | None -> Array.map Array.copy (Mixed.uniform_profile g)
  in
  let k = make_kernel g in
  let next = Array.init n (fun i -> Array.make (Normal_form.num_actions g i) 0.0) in
  let fit = Array.init n (fun i -> Array.make (Normal_form.num_actions g i) 0.0) in
  let avg = Array.make n 0.0 in
  let changed = Array.make n true in
  let executed = ref 0 in
  let stop = ref false in
  let round = ref 0 in
  while (not !stop) && !round < rounds do
    incr round;
    refresh_support k prof;
    for i = 0 to n - 1 do
      let opp_changed = ref false in
      for j = 0 to n - 1 do
        if j <> i && changed.(j) then opp_changed := true
      done;
      if !opp_changed || !round = 1 then begin
        Obs.incr c_eu_recomputes;
        Array.fill fit.(i) 0 (Array.length fit.(i)) 0.0;
        fitness k i fit.(i)
      end
      else Obs.incr c_eu_skips;
      if !opp_changed || changed.(i) then avg.(i) <- avg_eu k i
    done;
    (* Simultaneous update: every player's new mixture is computed from the
       old profile, then normalized exactly as [Mixed.of_weights] does. *)
    for i = 0 to n - 1 do
      let s = prof.(i) and nx = next.(i) and f = fit.(i) in
      let m = Array.length s in
      for a = 0 to m - 1 do
        nx.(a) <- Float.max 1e-12 (s.(a) *. (1.0 +. (dt *. (f.(a) -. avg.(i)))))
      done;
      let total = Array.fold_left ( +. ) 0.0 nx in
      for a = 0 to m - 1 do
        nx.(a) <- nx.(a) /. total
      done
    done;
    for i = 0 to n - 1 do
      let s = prof.(i) and nx = next.(i) in
      let ch = ref false in
      for a = 0 to Array.length s - 1 do
        if nx.(a) <> s.(a) then ch := true
      done;
      changed.(i) <- !ch;
      prof.(i) <- nx;
      next.(i) <- s
    done;
    executed := !round;
    match tol with
    | Some tol -> if Nash.max_regret g prof < tol then stop := true
    | None -> ()
  done;
  { profile = prof; rounds = !executed; final_regret = Nash.max_regret g prof }

(* Reference implementations: the pre-kernel dynamics, every expected
   utility through [Mixed]. The QCheck agreement suite pins the incremental
   traces against these bitwise. *)

let fictitious_play_naive ?init ~rounds g =
  let n = Normal_form.n_players g in
  let counts = Array.init n (fun i -> Array.make (Normal_form.num_actions g i) 0.0) in
  let current =
    match init with
    | Some p -> Array.copy p
    | None -> Array.make n 0
  in
  for _ = 1 to rounds do
    Array.iteri (fun i a -> counts.(i).(a) <- counts.(i).(a) +. 1.0) current;
    let empirical = Array.map Mixed.of_weights counts in
    for i = 0 to n - 1 do
      match Nash.pure_best_responses g empirical ~player:i with
      | [] -> ()
      | a :: _ -> current.(i) <- a
    done
  done;
  let profile = Array.map Mixed.of_weights counts in
  { profile; rounds; final_regret = Nash.max_regret g profile }

let replicator_naive ?init ?(dt = 0.1) ~rounds g =
  let n = Normal_form.n_players g in
  let prof =
    match init with
    | Some p -> Array.map Array.copy p
    | None -> Array.map Array.copy (Mixed.uniform_profile g)
  in
  for _ = 1 to rounds do
    let updated =
      Array.init n (fun i ->
          let m = Normal_form.num_actions g i in
          let avg = Mixed.expected_payoff g prof i in
          let fitness =
            Array.init m (fun a -> Mixed.expected_payoff_vs_pure g prof ~player:i ~action:a)
          in
          let raw =
            Array.init m (fun a ->
                Float.max 1e-12 (prof.(i).(a) *. (1.0 +. (dt *. (fitness.(a) -. avg)))))
          in
          Mixed.of_weights raw)
    in
    Array.blit updated 0 prof 0 n
  done;
  { profile = prof; rounds; final_regret = Nash.max_regret g prof }

let best_response_iteration ?init ~max_rounds g =
  let n = Normal_form.n_players g in
  let current = match init with Some p -> Array.copy p | None -> Array.make n 0 in
  let rec go round =
    if Nash.is_pure_nash g current then Some (Array.copy current)
    else if round >= max_rounds then None
    else begin
      let moved = ref false in
      for i = 0 to n - 1 do
        if not !moved then begin
          let prof = Mixed.pure_profile g current in
          let best = Nash.best_response_value g prof ~player:i in
          let own = Mixed.expected_payoff g prof i in
          if best -. own > 1e-9 then begin
            (match Nash.pure_best_responses g prof ~player:i with
            | [] -> ()
            | a :: _ -> current.(i) <- a);
            moved := true
          end
        end
      done;
      if !moved then go (round + 1) else Some (Array.copy current)
    end
  in
  go 0
