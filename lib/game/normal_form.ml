(* Payoffs live on flat Bigarray float64 storage: one C-layout array per
   player, indexed row-major by profile. Unboxed reads keep the hot loops
   (deviation scans, support products, learning dynamics) allocation-free;
   [Flat] hands kernels the raw arrays. *)

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  acts : int array;
  player_names : string array;
  action_names : string array array;
  strides : int array;
  size : int;
  tabs : ba array; (* tabs.(i).{profile index} = player i's payoff *)
}

let index_of t profile =
  let idx = ref 0 in
  for i = 0 to t.n - 1 do
    idx := !idx + (profile.(i) * t.strides.(i))
  done;
  !idx

let make_strides acts =
  let n = Array.length acts in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * acts.(i + 1)
  done;
  strides

let create ?player_names ?action_names ~actions:acts u =
  let n = Array.length acts in
  if n = 0 then invalid_arg "Normal_form.create: no players";
  Array.iter (fun a -> if a <= 0 then invalid_arg "Normal_form.create: empty action set") acts;
  let player_names =
    match player_names with
    | Some names ->
      if Array.length names <> n then invalid_arg "Normal_form.create: player_names arity";
      names
    | None -> Array.init n (fun i -> Printf.sprintf "P%d" (i + 1))
  in
  let action_names =
    match action_names with
    | Some names ->
      if Array.length names <> n then invalid_arg "Normal_form.create: action_names arity";
      Array.iteri
        (fun i row ->
          if Array.length row <> acts.(i) then
            invalid_arg "Normal_form.create: action_names row arity")
        names;
      names
    | None -> Array.init n (fun i -> Array.init acts.(i) string_of_int)
  in
  let strides = make_strides acts in
  let size = Array.fold_left ( * ) 1 acts in
  let tabs =
    Array.init n (fun _ -> Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout size)
  in
  let t = { n; acts; player_names; action_names; strides; size; tabs } in
  Bn_util.Combin.iter_profiles acts (fun p ->
      let v = u p in
      if Array.length v <> n then invalid_arg "Normal_form.create: payoff arity";
      let idx = index_of t p in
      for i = 0 to n - 1 do
        Bigarray.Array1.set tabs.(i) idx v.(i)
      done);
  t

let of_bimatrix a b =
  let rows = Array.length a and cols = if Array.length a = 0 then 0 else Array.length a.(0) in
  if rows = 0 || cols = 0 then invalid_arg "Normal_form.of_bimatrix: empty matrix";
  let rectangular m r c =
    Array.length m = r && Array.for_all (fun row -> Array.length row = c) m
  in
  if not (rectangular a rows cols && rectangular b rows cols) then
    invalid_arg "Normal_form.of_bimatrix: shape mismatch";
  create ~actions:[| rows; cols |] (fun p -> [| a.(p.(0)).(p.(1)); b.(p.(0)).(p.(1)) |])

let n_players t = t.n
let num_actions t i = t.acts.(i)
let actions t = Array.copy t.acts
let player_name t i = t.player_names.(i)
let action_name t i a = t.action_names.(i).(a)

let payoff t profile i = Bigarray.Array1.get t.tabs.(i) (index_of t profile)

let payoff_vector t profile =
  let idx = index_of t profile in
  Array.init t.n (fun i -> Bigarray.Array1.get t.tabs.(i) idx)

let table_size t = t.size
let stride t i = t.strides.(i)
let payoff_by_index t idx i = Bigarray.Array1.get t.tabs.(i) idx
let payoff_row t idx = Array.init t.n (fun i -> Bigarray.Array1.get t.tabs.(i) idx)

let shift_index t idx ~player ~from_ ~to_ = idx + ((to_ - from_) * t.strides.(player))

let profile_of_index t idx =
  Array.init t.n (fun i -> idx / t.strides.(i) mod t.acts.(i))

let iter_profiles t f = Bn_util.Combin.iter_profiles t.acts f
let profiles t = Bn_util.Combin.profiles t.acts

let map_payoffs f t =
  create ~player_names:t.player_names ~action_names:t.action_names ~actions:t.acts
    (fun p -> f p (payoff_vector t p))

let is_zero_sum ?(eps = 1e-9) t =
  (* Same accumulation order as summing a payoff row left-to-right. *)
  let rec go idx =
    if idx >= t.size then true
    else begin
      let s = ref 0.0 in
      for i = 0 to t.n - 1 do
        s := !s +. Bigarray.Array1.unsafe_get t.tabs.(i) idx
      done;
      Float.abs !s <= eps && go (idx + 1)
    end
  in
  go 0

let is_symmetric_2p ?(eps = 1e-9) t =
  t.n = 2
  && t.acts.(0) = t.acts.(1)
  &&
  let m = t.acts.(0) in
  let rec go i j =
    if i >= m then true
    else if j >= m then go (i + 1) 0
    else
      Float.abs (payoff t [| i; j |] 0 -. payoff t [| j; i |] 1) <= eps && go i (j + 1)
  in
  go 0 0

module Flat = struct
  type nonrec ba = ba

  let table t i = t.tabs.(i)
end

let pp ppf t =
  if t.n = 2 then begin
    Format.fprintf ppf "@[<v>";
    for i = 0 to t.acts.(0) - 1 do
      for j = 0 to t.acts.(1) - 1 do
        let p = [| i; j |] in
        Format.fprintf ppf "(%s,%s)->(%g,%g)  " (action_name t 0 i) (action_name t 1 j)
          (payoff t p 0) (payoff t p 1)
      done;
      Format.fprintf ppf "@,"
    done;
    Format.fprintf ppf "@]"
  end
  else
    Format.fprintf ppf "<%d-player game, %s actions>" t.n
      (String.concat "x" (Array.to_list (Array.map string_of_int t.acts)))
