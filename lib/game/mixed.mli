(** Mixed strategies and mixed-strategy profiles.

    A mixed strategy for player [i] is a probability vector over
    [0 … num_actions i − 1]; a profile is one strategy per player. Expected
    utilities are computed exactly by summing over the (finite) profile
    space. *)

type strategy = float array
type profile = strategy array

val pure : num_actions:int -> int -> strategy
(** Point mass on one action. *)

val uniform : int -> strategy
(** Uniform over [num_actions] actions. *)

val of_weights : float array -> strategy
(** Normalize non-negative weights with positive total. *)

val is_valid : ?eps:float -> strategy -> bool
(** Non-negative entries summing to 1 (within [eps]). *)

val pure_profile : Normal_form.t -> int array -> profile
(** Degenerate profile playing the given pure profile. *)

val uniform_profile : Normal_form.t -> profile
(** Every player uniform. *)

val point_mass : strategy -> int option
(** [Some a] iff the strategy is {e exactly} the point mass on [a] (one
    entry equal to 1.0, the rest 0.0). Strategies built by {!pure} always
    qualify; numerically-almost-pure strategies never do. *)

val pure_actions : profile -> int array option
(** The pure profile a fully degenerate mixed profile plays, if every
    strategy is a {!point_mass}. This is the guard for the O(1)
    table-lookup fast path in {!expected_payoff} and the robustness
    deviation scanner. *)

val expected_payoff : Normal_form.t -> profile -> int -> float
(** Exact expected payoff of a player under independent mixing.

    Cost: O(1) (one table read) when the profile is fully pure, otherwise
    O(∏ᵢ |supp(σᵢ)|) — the support product, not the full action grid. The
    result is bit-identical to {!expected_payoff_naive}: same products,
    same additions, same order. *)

val expected_payoff_naive : Normal_form.t -> profile -> int -> float
(** Reference implementation: the O(∏ᵢ aᵢ) full scan over every pure
    profile. Kept for agreement testing against {!expected_payoff}; do not
    use in hot paths. *)

val expected_payoffs : Normal_form.t -> profile -> float array
(** Expected payoff of every player. *)

val expected_payoff_vs_pure :
  Normal_form.t -> profile -> player:int -> action:int -> float
(** Expected payoff to [player] of the pure deviation [action] while all
    other players follow the profile. *)

val support : ?eps:float -> strategy -> int list
(** Actions with probability above [eps]. *)

val outcome_dist : Normal_form.t -> profile -> int array Bn_util.Dist.t
(** Distribution over pure action profiles induced by independent mixing.
    Enumerates only the support product, in row-major order. *)

val equal : ?eps:float -> profile -> profile -> bool
(** Pointwise comparison. *)

val pp_strategy : Format.formatter -> strategy -> unit
val pp_profile : Format.formatter -> profile -> unit
