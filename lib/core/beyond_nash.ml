(** Beyond Nash Equilibrium — solution concepts for the 21st century.

    Umbrella module re-exporting the whole library under one namespace.
    The three families of solution concepts from Halpern (PODC 2008):

    - {!Robust}: k-resilient / t-immune / (k,t)-robust equilibria (§2),
      with {!Mediator}, {!Byzantine}, {!Crypto} and {!Dist_sim} as the
      machinery for implementing mediators by cheap talk;
    - {!Machine}, {!Machine_game}, {!Repeated}: computational games (§3);
    - {!Awareness}: games with possibly unaware players and generalized
      Nash equilibrium (§4).

    {!Solution} gives the unified checker API. *)

[@@@lint.allow "H001"
  "umbrella module: the whole body is module aliases, so an .mli would be a line-for-line \
   duplicate reviewed nowhere"]

(* Utilities *)
module Obs = Bn_obs.Obs
module Obsdiff = Bn_obs.Obsdiff
module Prng = Bn_util.Prng
module Pool = Bn_util.Pool
module Out = Bn_util.Out
module Dist = Bn_util.Dist
module Linalg = Bn_util.Linalg
module Combin = Bn_util.Combin
module Stats = Bn_util.Stats
module Tab = Bn_util.Tab
module Tbl = Bn_util.Tbl
module Simplex = Bn_lp.Simplex

(* Game representations and classical solution concepts *)
module Normal_form = Bn_game.Normal_form
module Mixed = Bn_game.Mixed
module Nash = Bn_game.Nash
module Dominance = Bn_game.Dominance
module Zero_sum = Bn_game.Zero_sum
module Correlated = Bn_game.Correlated
module Rationalizable = Bn_game.Rationalizable
module Parse = Bn_game.Parse
module Learning = Bn_game.Learning
module Games = Bn_game.Games
module Bayesian = Bn_bayesian.Bayesian
module Extensive = Bn_extensive.Extensive
module Canned = Bn_extensive.Canned

(* §2: robustness and mediators *)
module Robust = Bn_robust.Robust
module Mediated = Bn_mediator.Mediated
module Feasibility = Bn_mediator.Feasibility
module Cheap_talk = Bn_mediator.Cheap_talk
module Async_cheap_talk = Bn_mediator.Async_cheap_talk
module Sequential = Bn_mediator.Sequential
module Ba_game = Bn_mediator.Ba_game
module Rational_ss = Bn_mediator.Rational_ss
module Sunspot = Bn_mediator.Sunspot
module Sync_net = Bn_dist_sim.Sync_net
module Async_net = Bn_dist_sim.Async_net
module Faults = Bn_dist_sim.Faults
module Explore = Bn_dist_sim.Explore
module Eig = Bn_byzantine.Eig
module Dolev_strong = Bn_byzantine.Dolev_strong
module Phase_king = Bn_byzantine.Phase_king
module Floodset = Bn_byzantine.Floodset
module Field = Bn_crypto.Field
module Poly = Bn_crypto.Poly
module Shamir = Bn_crypto.Shamir
module Hashing = Bn_crypto.Hashing
module Fieldmat = Bn_crypto.Fieldmat
module Coin_flip = Bn_crypto.Coin_flip

(* §3: computation *)
module Machine = Bn_machine.Machine
module Machine_game = Bn_machine.Machine_game
module Primality = Bn_machine.Primality
module Comp_roshambo = Bn_machine.Comp_roshambo
module Automaton = Bn_repeated.Automaton
module Repeated = Bn_repeated.Repeated
module Frpd = Bn_repeated.Frpd
module Tournament = Bn_repeated.Tournament

(* §4: awareness *)
module Awareness = Bn_awareness.Awareness
module Aware_examples = Bn_awareness.Aware_examples

(* §5 applications *)
module Scrip = Bn_scrip.Scrip
module Scrip_soa = Bn_scrip.Scrip_soa
module Steady_state = Bn_scrip.Steady_state
module Gnutella = Bn_p2p.Gnutella
module Gnutella_soa = Bn_p2p.Gnutella_soa
module Soa = Bn_agents.Soa

module Solution = Solution
