(* Sharded batched scrip engine on the SoA store. Parallel phase: each
   shard touches only its own agents' columns and posts cross-shard
   requests to the Exchange; sequential flush after the barrier replays
   them in (src, dst, posting order). Per-(step, shard) Prng.split
   streams make the whole run a pure function of (seed, shards) — the
   domain budget never enters. *)

module Soa = Bn_agents.Soa
module Prng = Bn_util.Prng
module Pool = Bn_util.Pool
module Obs = Bn_obs.Obs

(* Kind encoding in the I8 column. *)
let k_standard = 0
let k_hoarder = 1
let k_altruist = 2

let c_steps = Obs.counter ~kind:Obs.Det "scrip_soa.steps"
let c_requests = Obs.counter ~kind:Obs.Det "scrip_soa.requests"
let c_satisfied = Obs.counter ~kind:Obs.Det "scrip_soa.satisfied"
let c_cross = Obs.counter ~kind:Obs.Det "scrip_soa.cross_shard_events"
let c_flushes = Obs.counter ~kind:Obs.Det "scrip_soa.flushes"

(* The request count per step is seed-determined (hoarder draws skip the
   post), so its distribution is Det; the batch wall time is Volatile. *)
let sk_step_req = Obs.sketch ~kind:Obs.Det "scrip_soa.requests_per_step"
let sk_step_ns = Obs.sketch ~kind:Obs.Volatile "scrip_soa.step_ns"

type t = {
  params : Scrip.params;
  part : Soa.part;
  scrip : Soa.I32.t;
  kind : Soa.I8.t;
  thresh : Soa.I32.t;
  util : Soa.F64.t;
  ex : Soa.Exchange.t;
  base : Prng.t;  (* never advanced: split per (step, shard) *)
  total_scrip : int;
  k_max : int;
  (* Per-shard tallies for the parallel phase, 5 slots per shard:
     requests, satisfied, starved, unserved, cross-shard posts. Each
     shard writes only its own slots. *)
  tallies : int array;
  mutable steps : int;
  mutable requests : int;
  mutable satisfied : int;
  mutable starved : int;
  mutable unserved : int;
  mutable cross_shard : int;
  mutable flushes : int;
}

type soa_stats = {
  n : int;
  shards : int;
  steps : int;
  requests : int;
  satisfied : int;
  starved : int;
  unserved : int;
  cross_shard : int;
  flushes : int;
  total_scrip : int;
  dist : int array;
  mean_balance : float;
  avg_utility : float array;
}

let create ?(shards = 64) ~seed ~params ~kind_of ~money_per_agent () =
  let n = params.Scrip.n in
  if n < 2 then invalid_arg "Scrip_soa.create: need n >= 2";
  let part = Soa.partition ~n ~shards in
  let scrip = Soa.I32.create n in
  let kind = Soa.I8.create n in
  let thresh = Soa.I32.create n in
  let util = Soa.F64.create n in
  let k_max = ref 1 in
  for i = 0 to n - 1 do
    (match kind_of i with
    | Scrip.Standard k ->
      Soa.I8.uset kind i k_standard;
      Soa.I32.uset thresh i k;
      if k > !k_max then k_max := k
    | Scrip.Hoarder -> Soa.I8.uset kind i k_hoarder
    | Scrip.Altruist -> Soa.I8.uset kind i k_altruist)
  done;
  let total_scrip = int_of_float (money_per_agent *. float_of_int n) in
  (* Round-robin deal, closed form (same as Scrip.simulate). *)
  let base_deal = total_scrip / n and extra = total_scrip mod n in
  for i = 0 to n - 1 do
    Soa.I32.uset scrip i (base_deal + if i < extra then 1 else 0)
  done;
  {
    params;
    part;
    scrip;
    kind;
    thresh;
    util;
    ex = Soa.Exchange.create ~shards:(Soa.shards part);
    base = Prng.create seed;
    total_scrip;
    k_max = !k_max;
    tallies = Array.make (Soa.shards part * 5) 0;
    steps = 0;
    requests = 0;
    satisfied = 0;
    starved = 0;
    unserved = 0;
    cross_shard = 0;
    flushes = 0;
  }

let steps_done (t : t) = t.steps

let willing t v =
  if Soa.I8.uget t.kind v = k_standard then
    Soa.I32.uget t.scrip v < Soa.I32.uget t.thresh v
  else true

(* One service: chooser pays benefit's worth, volunteer bears the cost;
   scrip moves unless the volunteer is an altruist. *)
let serve t c v =
  Soa.F64.uset t.util c (Soa.F64.uget t.util c +. t.params.Scrip.benefit);
  Soa.F64.uset t.util v (Soa.F64.uget t.util v -. t.params.Scrip.cost);
  if Soa.I8.uget t.kind v <> k_altruist then begin
    Soa.I32.uset t.scrip c (Soa.I32.uget t.scrip c - 1);
    Soa.I32.uset t.scrip v (Soa.I32.uget t.scrip v + 1)
  end

let step ?(pool = Pool.serial) t =
  Obs.span "scrip_soa.step" (fun () ->
    Obs.timed sk_step_ns @@ fun () ->
    let n = Soa.n t.part and shards = Soa.shards t.part in
    Array.fill t.tallies 0 (Array.length t.tallies) 0;
    let shard_ids = Array.init shards Fun.id in
    (* Parallel phase: request generation only. Each shard draws nloc
       (chooser, probe) pairs from its own split stream and posts them —
       same-shard pairs included, into the (s, s) buffer. Both draws are
       state-independent, so nothing here reads a column another shard
       could write; all state changes happen in the flush below. *)
    Pool.iter_grid pool
      (fun s ->
        let rng = Prng.split t.base ((t.steps * shards) + s) in
        let lo, hi = Soa.bounds t.part s in
        let nloc = hi - lo in
        let off = s * 5 in
        for _ = 1 to nloc do
          (* Chooser uniform over the whole population, not the shard:
             restricting slot i's chooser to shard s makes that slot's
             kernel favour configurations by shard-local wealth, a
             stratification bias the chi-square test detects at n ≥ 10⁵.
             The globally-uniform probe kernel is doubly stochastic, so
             every slot preserves the uniform law exactly. *)
          let c = Prng.int rng n in
          if Soa.I8.uget t.kind c <> k_hoarder then begin
            (* One uniform probe among the n − 1 other agents: served
               volunteers end up uniform among willing agents — the KFH
               conditional law — and the probe pair is independent of
               the evolving balances. *)
            let v = Prng.int rng (n - 1) in
            let v = if v >= c then v + 1 else v in
            let dst = Soa.shard_of t.part v in
            if dst <> s then t.tallies.(off + 4) <- t.tallies.(off + 4) + 1;
            Soa.Exchange.post t.ex ~src:s ~dst c v
          end
        done)
      shard_ids;
    (* Barrier passed: execute every request sequentially in the
       Exchange's fixed (src, dst, posting order) replay, evaluating the
       balance and willingness gates at execution time. This makes the
       batch an exact sequential run of the probe chain — a doubly
       stochastic walk on the fixed-money configuration slab — whose
       stationary law is uniform there, hence the {!Steady_state}
       max-entropy marginal. Applying gates at probe time instead
       (e.g. serving same-shard pairs mid-phase) measurably squeezes the
       stationary histogram toward its middle bins. *)
    let req = ref 0 and sat = ref 0 and sta = ref 0 and uns = ref 0 and crx = ref 0 in
    for s = 0 to shards - 1 do
      crx := !crx + t.tallies.((s * 5) + 4)
    done;
    let _replayed =
      Soa.Exchange.flush t.ex (fun ~src:_ ~dst:_ c v ->
          incr req;
          if Soa.I32.uget t.scrip c < 1 then incr sta
          else if willing t v then begin
            serve t c v;
            incr sat
          end
          else incr uns)
    in
    t.requests <- t.requests + !req;
    t.satisfied <- t.satisfied + !sat;
    t.starved <- t.starved + !sta;
    t.unserved <- t.unserved + !uns;
    t.cross_shard <- t.cross_shard + !crx;
    t.flushes <- t.flushes + 1;
    t.steps <- t.steps + 1;
    Obs.incr c_steps;
    Obs.incr c_flushes;
    Obs.add2 c_requests !req c_satisfied !sat;
    Obs.add c_cross !crx;
    Obs.observe_sk sk_step_req !req)

let stats t =
  let n = Soa.n t.part in
  let dist = Array.make (t.k_max + 2) 0 in
  let kind_sum = [| 0.0; 0.0; 0.0 |] and kind_n = [| 0; 0; 0 |] in
  for i = 0 to n - 1 do
    let bal = Soa.I32.uget t.scrip i in
    let j = if bal > t.k_max then t.k_max + 1 else bal in
    dist.(j) <- dist.(j) + 1;
    let k = Soa.I8.uget t.kind i in
    kind_sum.(k) <- kind_sum.(k) +. Soa.F64.uget t.util i;
    kind_n.(k) <- kind_n.(k) + 1
  done;
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + Soa.I32.uget t.scrip i
  done;
  {
    n;
    shards = Soa.shards t.part;
    steps = t.steps;
    requests = t.requests;
    satisfied = t.satisfied;
    starved = t.starved;
    unserved = t.unserved;
    cross_shard = t.cross_shard;
    flushes = t.flushes;
    total_scrip = !total;
    dist;
    mean_balance = float_of_int !total /. float_of_int n;
    avg_utility =
      Array.init 3 (fun k ->
          if kind_n.(k) = 0 then 0.0
          else kind_sum.(k) /. float_of_int kind_n.(k));
  }

let run ?(jobs = 1) ?shards ~seed ~steps ~params ~kind_of ~money_per_agent () =
  let t = create ?shards ~seed ~params ~kind_of ~money_per_agent () in
  let pool = Pool.create ~domains:jobs () in
  for _ = 1 to steps do
    step ~pool t
  done;
  stats t

let goodness_of_fit st ~threshold ~money_per_agent =
  let analytic = Steady_state.max_entropy ~threshold ~money_per_agent in
  (* Pad with zero-probability cells (hoarder overflow bin and any gap
     between the common threshold and k_max) to match [dist]. *)
  let expected = Array.make (Array.length st.dist) 0.0 in
  Array.blit analytic 0 expected 0
    (min (Array.length analytic) (Array.length expected));
  Steady_state.chi_square ~observed:st.dist ~expected
