(** Million-agent scrip simulator on the sharded struct-of-arrays store.

    {!Scrip.simulate} replays the KFH dynamics one uniformly random
    agent at a time — inherently sequential. This engine targets the
    paper's n → ∞ regime (≥ 10⁶ agents at interactive step rates) with
    {e batched} dynamics: one {!step} gives every shard one service
    opportunity per local agent. Each shard draws (chooser, probe) pairs
    from its own {!Bn_util.Prng.split} stream — both draws independent
    of the evolving balances — and posts them into per-(src, dst)
    buffers ({!Bn_agents.Soa.Exchange}); after the parallel barrier the
    buffers are replayed sequentially in a fixed (src, dst, posting
    order), with the balance and willingness gates evaluated at
    execution time. Output is byte-identical for every [?jobs] at a
    fixed shard count, and {!Bn_obs} Det counters (requests, cross-shard
    events, flushes) are asserted identical across job counts and
    reruns.

    A request by agent [c] probes one uniformly random other agent [v]:
    if [v] is willing (standard below threshold, or hoarder/altruist)
    the service happens and one scrip unit moves [c → v] (unless [v] is
    an altruist); an unwilling probe counts as [unserved]. Conditioned
    on being served, the volunteer is uniform among willing agents —
    the same conditional law as KFH. Because the pairs are
    state-independent and the gates execute in the replay, each batch is
    an exact sequential run of this probe chain, which is doubly
    stochastic on the fixed-money configuration slab: its stationary law
    is uniform there, and the money-holding marginal is the
    {!Steady_state.max_entropy} distribution. That analytic law — not
    {!Scrip.simulate}, whose round structure differs — is the oracle
    this engine is verified against (chi-square / total variation, E17
    and test/test_scrip_p2p.ml). *)

type t
(** Live population state: scrip / kind / threshold / utility columns,
    the shard partition, the exchange buffers, and the step counter. *)

type soa_stats = {
  n : int;
  shards : int;
  steps : int;
  requests : int;
  satisfied : int;
  starved : int;
  unserved : int;  (** [requests = satisfied + starved + unserved]. *)
  cross_shard : int;  (** Requests that crossed a shard boundary. *)
  flushes : int;  (** Batch flushes (one per step). *)
  total_scrip : int;  (** Conserved: equals the initial deal. *)
  dist : int array;
      (** Money histogram: [dist.(j)] agents hold [j] units, for
          [j <= k_max]; the final cell counts balances above [k_max]
          (hoarder accumulation). Length [k_max + 2]. *)
  mean_balance : float;
  avg_utility : float array;
      (** Mean total utility by kind: standard, hoarder, altruist
          (0 where the population has no agents of that kind). *)
}

val create :
  ?shards:int ->
  seed:int ->
  params:Scrip.params ->
  kind_of:(int -> Scrip.kind) ->
  money_per_agent:float ->
  unit ->
  t
(** Build the store: [params.n] agents ([>= 2]), kinds tabulated from
    [kind_of], [floor (money_per_agent · n)] units dealt round-robin.
    [shards] defaults to 64 (clamped to [n]); the shard count is part of
    the sampled process — runs with different shard counts are
    different (equally valid) samples, runs with different [jobs] are
    the same sample. [params.rounds] is ignored; stepping is explicit. *)

val step : ?pool:Bn_util.Pool.t -> t -> unit
(** One batched sweep: every shard posts one request per local agent
    slot (chooser and probe both drawn uniformly over the whole
    population — shard-restricted choosers would bias the stationary
    law), then the buffers are replayed sequentially. Deterministic for
    any pool size. *)

val steps_done : t -> int

val stats : t -> soa_stats
(** Snapshot of tallies and the money histogram. Call between steps. *)

val run :
  ?jobs:int ->
  ?shards:int ->
  seed:int ->
  steps:int ->
  params:Scrip.params ->
  kind_of:(int -> Scrip.kind) ->
  money_per_agent:float ->
  unit ->
  soa_stats
(** [create], [step] × [steps] on a [jobs]-domain pool, [stats]. *)

val goodness_of_fit : soa_stats -> threshold:int -> money_per_agent:float -> Steady_state.gof
(** Chi-square / total-variation fit of the empirical money histogram
    against {!Steady_state.max_entropy} (the analytic distribution is
    padded with a zero-probability overflow cell to match [dist]). Only
    meaningful for all-standard populations with a common threshold. *)
