(* The KFH maximum-entropy steady state and the chi-square / total
   variation machinery used to verify the SoA simulator against it. *)

let mean_of p =
  let m = ref 0.0 in
  Array.iteri (fun j pj -> m := !m +. (float_of_int j *. pj)) p;
  !m

(* Unnormalized weights λ^j for j = 0..k, normalized afterwards. For λ
   far from 1 the powers under/overflow long before k gets large, so
   work with exp(j · log λ − shift) where shift keeps the largest weight
   at 1. *)
let geometric_family ~threshold lambda =
  let k = threshold in
  let log_l = log lambda in
  let shift = if log_l > 0.0 then float_of_int k *. log_l else 0.0 in
  let w = Array.init (k + 1) (fun j -> exp ((float_of_int j *. log_l) -. shift)) in
  let z = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. z) w

let max_entropy ~threshold ~money_per_agent =
  if threshold < 1 then invalid_arg "Steady_state.max_entropy: threshold < 1";
  let k = float_of_int threshold in
  let m = money_per_agent in
  if m <= 0.0 || m >= k then
    invalid_arg "Steady_state.max_entropy: need 0 < money_per_agent < threshold";
  (* mean(λ) is strictly increasing: 0 at λ→0, k at λ→∞, k/2 at λ=1.
     Bisect on log λ. *)
  let mean_at log_l = mean_of (geometric_family ~threshold (exp log_l)) in
  let lo = ref (-60.0) and hi = ref 60.0 in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if mean_at mid < m then lo := mid else hi := mid
  done;
  geometric_family ~threshold (exp (0.5 *. (!lo +. !hi)))

type gof = { stat : float; df : int; critical : float; tv : float; pass : bool }

let total_variation ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Steady_state.total_variation: length mismatch";
  let n = Array.fold_left ( + ) 0 observed in
  if n = 0 then invalid_arg "Steady_state.total_variation: no observations";
  let fn = float_of_int n in
  let z = Array.fold_left ( +. ) 0.0 expected in
  let d = ref 0.0 in
  Array.iteri
    (fun j o -> d := !d +. abs_float ((float_of_int o /. fn) -. (expected.(j) /. z)))
    observed;
  0.5 *. !d

let critical_99 ~df =
  (* Wilson–Hilferty: χ²_α ≈ df · (1 − 2/(9 df) + z_α √(2/(9 df)))³ with
     z_{0.99} = 2.326348. *)
  let d = float_of_int (max 1 df) in
  let t = 2.0 /. (9.0 *. d) in
  let c = 1.0 -. t +. (2.326348 *. sqrt t) in
  d *. c *. c *. c

(* Merge adjacent bins (left to right) until each merged bin's expected
   count is >= 5; a trailing underweight remainder is folded into the
   last merged bin. The classical validity rule for Pearson's X². *)
let merge_bins ~counts ~probs =
  let n = float_of_int (Array.fold_left ( + ) 0 counts) in
  let merged = ref [] in
  let acc_o = ref 0 and acc_e = ref 0.0 in
  Array.iteri
    (fun j o ->
      acc_o := !acc_o + o;
      acc_e := !acc_e +. (probs.(j) *. n);
      if !acc_e >= 5.0 then begin
        merged := (!acc_o, !acc_e) :: !merged;
        acc_o := 0;
        acc_e := 0.0
      end)
    counts;
  (match (!merged, !acc_e > 0.0 || !acc_o > 0) with
  | (o, e) :: rest, true -> merged := (o + !acc_o, e +. !acc_e) :: rest
  | [], true -> merged := [ (!acc_o, !acc_e) ]
  | _, false -> ());
  List.rev !merged

let chi_square ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Steady_state.chi_square: length mismatch";
  let n = Array.fold_left ( + ) 0 observed in
  if n = 0 then invalid_arg "Steady_state.chi_square: no observations";
  let z = Array.fold_left ( +. ) 0.0 expected in
  let probs = Array.map (fun e -> e /. z) expected in
  let bins = merge_bins ~counts:observed ~probs in
  let stat =
    List.fold_left
      (fun acc (o, e) ->
        let d = float_of_int o -. e in
        acc +. (d *. d /. e))
      0.0 bins
  in
  let df = max 1 (List.length bins - 1) in
  let critical = critical_99 ~df in
  {
    stat;
    df;
    critical;
    tv = total_variation ~observed ~expected;
    pass = stat <= critical;
  }
