(** Analytic steady state of a scrip system, and goodness-of-fit tests.

    Kash–Friedman–Halpern (2007) show that when every agent plays the
    threshold strategy [k] and the average money supply is [m] units per
    agent (0 < m < k), the empirical distribution of money holdings
    converges, as n → ∞, to the {e maximum-entropy} distribution over
    [{0, …, k}] with mean [m]:

    {v P(j) ∝ λ^j,  j = 0 … k,  λ chosen so that Σ j·P(j) = m v}

    — a truncated geometric (exponential-family) law; λ = 1 (uniform)
    exactly when m = k/2. This module computes that distribution and
    provides the statistical machinery the million-agent simulator is
    verified against: Pearson's chi-square with small-expected-bin
    merging, an approximate critical value (Wilson–Hilferty), and total
    variation distance. Everything is closed-form or bisection — no
    external statistics dependency. *)

val max_entropy : threshold:int -> money_per_agent:float -> float array
(** The max-entropy distribution over [{0 … threshold}] with mean
    [money_per_agent]: an array of [threshold + 1] probabilities summing
    to 1. λ is found by bisection (the mean is strictly increasing in λ).
    @raise Invalid_argument unless [threshold >= 1] and
    [0 < money_per_agent < threshold]. *)

type gof = {
  stat : float;  (** Pearson's X² after bin merging. *)
  df : int;  (** Merged bins − 1. *)
  critical : float;  (** The α = 0.01 critical value for [df]. *)
  tv : float;  (** Total variation distance (unmerged bins). *)
  pass : bool;  (** [stat <= critical]. *)
}

val chi_square : observed:int array -> expected:float array -> gof
(** Goodness of fit of observed counts against expected probabilities
    (same length; [expected] need not be exactly normalized — it is
    renormalized over the observed support). Adjacent bins are merged
    until every expected count is ≥ 5, the standard validity condition.
    @raise Invalid_argument on length mismatch or empty observations. *)

val total_variation : observed:int array -> expected:float array -> float
(** ½ Σ |observed/N − expected|, without bin merging. *)

val critical_99 : df:int -> float
(** Approximate 99th-percentile of the χ²(df) distribution
    (Wilson–Hilferty cube approximation; within ~1% for df ≥ 3). *)

val mean_of : float array -> float
(** Mean of a distribution over [{0, 1, …}] given as probabilities. *)
