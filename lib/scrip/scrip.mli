(** Scrip systems (Kash–Friedman–Halpern 2007; paper §5).

    [n] agents exchange work for scrip. Each round a uniformly random agent
    wants service (worth [benefit]); if it has at least one unit of scrip,
    a volunteer is picked uniformly among agents willing to work (at
    [cost] < [benefit]) and is paid one unit. Rational agents play
    {e threshold strategies}: volunteer iff their scrip is below a
    threshold k.

    The paper highlights two "standard" irrational behaviours a robust
    solution concept should tolerate: {e hoarders} (work regardless,
    never spend) and {e altruists} (provide service for free — the analogue
    of posting music on Kazaa). *)

type kind =
  | Standard of int  (** Threshold strategy with the given threshold. *)
  | Hoarder  (** Always volunteers, never requests. *)
  | Altruist  (** Always volunteers and does not ask to be paid. *)

type params = {
  n : int;
  rounds : int;
  benefit : float;  (** γ, utility of receiving service. *)
  cost : float;  (** β < γ, cost of providing it. *)
}

val default_params : n:int -> params
(** 100 rounds per agent, γ = 1.0, β = 0.2. *)

type stats = {
  utilities : float array;  (** Total utility per agent. *)
  satisfied : int;  (** Requests served. *)
  requests : int;  (** Requests made (includes unserved). *)
  starved : int;  (** Rounds where the chooser had no scrip to pay. *)
  unserved : int;  (** Rounds with money but no volunteer. *)
  final_scrip : int array;
}

val simulate :
  Bn_util.Prng.t -> params -> kinds:kind array -> money_per_agent:float -> stats
(** Initial scrip: [floor (money_per_agent · n)] units dealt round-robin.

    This is the fast sequential path: agent state in struct-of-arrays
    columns ({!Bn_agents.Soa}) and the willing set in a Fenwick tree, so
    each round costs O(log n) instead of the O(n) willing-list rebuild.
    Bitwise-equal to {!simulate_naive} — identical [stats] record for
    every seed (QCheck-pinned). For n ≳ 10⁵ and the batched sharded step
    loop (deterministic at any [?jobs]), use {!Scrip_soa}; its analytic
    verification layer is {!Steady_state}. *)

val simulate_naive :
  Bn_util.Prng.t -> params -> kinds:kind array -> money_per_agent:float -> stats
(** The original boxed per-agent loop (O(n) per round), retained as the
    bitwise oracle for {!simulate} — the same role [Simplex.solve_dense]
    plays for the revised simplex. *)

val efficiency : params -> stats -> float
(** Realized fraction of the social optimum: served requests ÷ total
    opportunities. *)

val avg_utility : stats -> who:(int -> bool) -> float
(** Mean total utility of the selected agents. *)

val best_threshold :
  Bn_util.Prng.t -> params -> others:int -> money_per_agent:float ->
  candidates:int list -> int * float
(** Empirical best response: all other agents use threshold [others];
    returns the candidate threshold maximizing agent 0's utility (common
    random numbers across candidates) and that utility. A threshold k with
    [best_threshold ~others:k = k] is an (empirical) symmetric equilibrium. *)

val symmetric_equilibrium :
  Bn_util.Prng.t -> params -> money_per_agent:float -> candidates:int list ->
  int option
(** Iterates the empirical best-response map over [candidates] until a
    fixed point: a threshold k with [best_threshold ~others:k = k] — an
    empirical symmetric threshold equilibrium (KFH). [None] if the
    iteration cycles instead of converging. *)
