type kind = Standard of int | Hoarder | Altruist

type params = {
  n : int;
  rounds : int;
  benefit : float;
  cost : float;
}

let default_params ~n = { n; rounds = 100 * n; benefit = 1.0; cost = 0.2 }

type stats = {
  utilities : float array;
  satisfied : int;
  requests : int;
  starved : int;
  unserved : int;
  final_scrip : int array;
}

(* The original boxed per-agent loop: every round rebuilds the willing
   list with an O(n) filter. Retained verbatim as the oracle the
   struct-of-arrays fast path is QCheck-pinned against (bitwise-equal
   stats), like [Simplex.solve_dense] and the [*_naive] learning
   dynamics. *)
let simulate_naive rng params ~kinds ~money_per_agent =
  let { n; rounds; benefit; cost } = params in
  if Array.length kinds <> n then invalid_arg "Scrip.simulate: kinds arity";
  let scrip = Array.make n 0 in
  let total_money = int_of_float (money_per_agent *. float_of_int n) in
  for unit = 0 to total_money - 1 do
    scrip.(unit mod n) <- scrip.(unit mod n) + 1
  done;
  let utilities = Array.make n 0.0 in
  let satisfied = ref 0 and requests = ref 0 and starved = ref 0 and unserved = ref 0 in
  for _ = 1 to rounds do
    let chooser = Bn_util.Prng.int rng n in
    let wants = match kinds.(chooser) with Hoarder -> false | Standard _ | Altruist -> true in
    if wants then begin
      incr requests;
      if scrip.(chooser) < 1 then incr starved
      else begin
        let willing =
          List.filter
            (fun i ->
              i <> chooser
              &&
              match kinds.(i) with
              | Standard k -> scrip.(i) < k
              | Hoarder | Altruist -> true)
            (List.init n Fun.id)
        in
        match willing with
        | [] -> incr unserved
        | _ ->
          let volunteer = List.nth willing (Bn_util.Prng.int rng (List.length willing)) in
          incr satisfied;
          utilities.(chooser) <- utilities.(chooser) +. benefit;
          utilities.(volunteer) <- utilities.(volunteer) -. cost;
          (match kinds.(volunteer) with
          | Altruist -> ()
          | Standard _ | Hoarder ->
            scrip.(chooser) <- scrip.(chooser) - 1;
            scrip.(volunteer) <- scrip.(volunteer) + 1)
      end
    end
  done;
  {
    utilities;
    satisfied = !satisfied;
    requests = !requests;
    starved = !starved;
    unserved = !unserved;
    final_scrip = scrip;
  }

(* {1 The fast sequential path}

   Same dynamics, same PRNG consumption, O(log n) per round: agent state
   lives in struct-of-arrays columns (no per-agent boxing) and the
   willing set is maintained in a Fenwick tree keyed by agent index, so
   "the r-th willing agent in index order" — [List.nth willing r] above
   — is an O(log n) order-statistics query instead of an O(n) filter.
   [simulate] is bitwise-equal to [simulate_naive]: identical stats
   record for every seed (QCheck-pinned in test/test_scrip_p2p.ml). *)

module Fenwick = struct
  (* Standard 1-indexed binary indexed tree over n 0/1 weights. *)
  type t = { tree : int array; mutable total : int; n : int }

  let create n = { tree = Array.make (n + 1) 0; total = 0; n }

  let update t i delta =
    t.total <- t.total + delta;
    let i = ref (i + 1) in
    while !i <= t.n do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* Sum of weights over [0, i) — the rank of agent [i] among set bits. *)
  let prefix t i =
    let s = ref 0 and i = ref i in
    while !i > 0 do
      s := !s + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !s

  (* The 0-indexed agent holding the (r+1)-th set bit: binary descend. *)
  let select t r =
    let pos = ref 0 and rem = ref (r + 1) in
    let bit = ref 1 in
    while !bit * 2 <= t.n do
      bit := !bit * 2
    done;
    while !bit > 0 do
      let next = !pos + !bit in
      if next <= t.n && t.tree.(next) < !rem then begin
        pos := next;
        rem := !rem - t.tree.(next)
      end;
      bit := !bit / 2
    done;
    !pos
end

module Soa = Bn_agents.Soa

let simulate rng params ~kinds ~money_per_agent =
  let { n; rounds; benefit; cost } = params in
  if Array.length kinds <> n then invalid_arg "Scrip.simulate: kinds arity";
  let scrip = Soa.I32.create n in
  let total_money = int_of_float (money_per_agent *. float_of_int n) in
  (* The naive loop deals round-robin; in closed form agent i receives
     base + 1 exactly when i < extra. *)
  let base = total_money / n and extra = total_money mod n in
  for i = 0 to n - 1 do
    Soa.I32.uset scrip i (base + if i < extra then 1 else 0)
  done;
  let utilities = Soa.F64.create n in
  let willing_pred i =
    match kinds.(i) with
    | Standard k -> Soa.I32.uget scrip i < k
    | Hoarder | Altruist -> true
  in
  let willing = Array.init n willing_pred in
  let fen = Fenwick.create n in
  Array.iteri (fun i w -> if w then Fenwick.update fen i 1) willing;
  let refresh i =
    let now = willing_pred i in
    if now <> willing.(i) then begin
      willing.(i) <- now;
      Fenwick.update fen i (if now then 1 else -1)
    end
  in
  let satisfied = ref 0 and requests = ref 0 and starved = ref 0 and unserved = ref 0 in
  for _ = 1 to rounds do
    let chooser = Bn_util.Prng.int rng n in
    let wants = match kinds.(chooser) with Hoarder -> false | Standard _ | Altruist -> true in
    if wants then begin
      incr requests;
      if Soa.I32.uget scrip chooser < 1 then incr starved
      else begin
        let w = fen.Fenwick.total - if willing.(chooser) then 1 else 0 in
        if w = 0 then incr unserved
        else begin
          let r = Bn_util.Prng.int rng w in
          (* Rank r among the willing agents with the chooser excluded:
             skip the chooser's own slot when it sits at or below r. *)
          let r = if willing.(chooser) && Fenwick.prefix fen chooser <= r then r + 1 else r in
          let volunteer = Fenwick.select fen r in
          incr satisfied;
          Soa.F64.uset utilities chooser (Soa.F64.uget utilities chooser +. benefit);
          Soa.F64.uset utilities volunteer (Soa.F64.uget utilities volunteer -. cost);
          match kinds.(volunteer) with
          | Altruist -> ()
          | Standard _ | Hoarder ->
            Soa.I32.uset scrip chooser (Soa.I32.uget scrip chooser - 1);
            Soa.I32.uset scrip volunteer (Soa.I32.uget scrip volunteer + 1);
            refresh chooser;
            refresh volunteer
        end
      end
    end
  done;
  {
    utilities = Soa.F64.to_array utilities;
    satisfied = !satisfied;
    requests = !requests;
    starved = !starved;
    unserved = !unserved;
    final_scrip = Soa.I32.to_array scrip;
  }

let efficiency params stats =
  if params.rounds = 0 then 0.0
  else float_of_int stats.satisfied /. float_of_int params.rounds

let avg_utility stats ~who =
  let selected =
    List.filteri (fun i _ -> who i) (Array.to_list stats.utilities)
  in
  Bn_util.Stats.mean selected

let best_threshold rng params ~others ~money_per_agent ~candidates =
  let seed_base = Bn_util.Prng.int rng 1_000_000 in
  let evaluate candidate =
    (* Common random numbers: same seed for every candidate. *)
    let local = Bn_util.Prng.create (seed_base * 7919) in
    let kinds =
      Array.init params.n (fun i -> if i = 0 then Standard candidate else Standard others)
    in
    let stats = simulate local params ~kinds ~money_per_agent in
    stats.utilities.(0)
  in
  match candidates with
  | [] -> invalid_arg "Scrip.best_threshold: no candidates"
  | c0 :: rest ->
    List.fold_left
      (fun (bc, bu) c ->
        let u = evaluate c in
        if u > bu then (c, u) else (bc, bu))
      (c0, evaluate c0) rest

let symmetric_equilibrium rng params ~money_per_agent ~candidates =
  (* Iterate the empirical best-response map from the middle candidate until
     a fixed point or a short cycle; return the fixed point if found. *)
  let start = List.nth candidates (List.length candidates / 2) in
  let rec go k visited steps =
    if steps > 12 then None
    else begin
      let k', _ = best_threshold rng params ~others:k ~money_per_agent ~candidates in
      if k' = k then Some k
      else if List.mem k' visited then None
      else go k' (k' :: visited) (steps + 1)
    end
  in
  go start [ start ] 0
