(** E2 — bargaining game: resilience vs immunity of all-stay.

    One registered experiment of {!Experiments.all}; everything beyond the
    registry triple (internal helpers, protocol scaffolding) is private. *)

val name : string
val title : string

val run : ?jobs:int -> unit -> unit
(** Regenerate the table(s) through {!Bn_util.Out}; [jobs] bounds the
    domain budget of any internal parallel loops. Output is byte-identical
    for every [jobs]. *)
