(** E14 (extension) — rational secret sharing (Halpern–Teague): why some
    regimes need unbounded (finite-expected) running time.

    The paper's bullets 2-3 state that below n = 3k+3t, implementation
    requires punishment and cannot have bounded running time. Rational
    secret sharing is the canonical mechanism: the randomized-rounds
    protocol is an equilibrium exactly when the real-round probability α is
    at most learn/(learn+exclusivity), and its round count is geometric —
    finite expected, unbounded worst case. *)

module B = Beyond_nash
module R = B.Rational_ss

let name = "E14"
let title = "rational secret sharing: equilibrium region and expected rounds"

let run ?(jobs = 1) () =
  let pool = B.Pool.create ~domains:jobs () in
  let u = R.default_utility in
  let n = 3 in
  let bound = R.honest_equilibrium_alpha u ~n in
  B.Out.printf "utility: learn = %.1f, exclusivity = %.1f, n = %d -> equilibrium iff alpha <= %.4f\n\n"
    u.R.learn u.R.exclusivity n bound;
  let tab =
    B.Tab.create ~title
      [ "alpha"; "deviation gain (closed form)"; "deviation gain (measured)"; "E[rounds]"; "honest eq?" ]
  in
  let rng = B.Prng.create 1624 in
  List.iter
    (fun alpha ->
      let analytic = R.deviation_gain u ~n ~alpha in
      let measured = R.empirical_deviation_gain ~pool rng ~n ~alpha ~utility:u ~trials:3000 in
      B.Tab.add_row tab
        [
          B.Tab.fmt_float alpha;
          B.Tab.fmt_float analytic;
          B.Tab.fmt_float measured;
          B.Tab.fmt_float (R.expected_rounds ~alpha);
          string_of_bool (analytic <= 1e-9);
        ])
    [ 0.1; 0.3; bound; 0.6; 0.8; 0.95 ];
  B.Tab.print tab;
  (* The one-shot (bounded, deterministic) protocol is exactly alpha = 1:
     deviation gain = exclusivity > 0, so it is never an equilibrium. *)
  B.Out.printf
    "alpha = 1 (deterministic one-shot exchange): deviation gain = %s > 0 — the\n\
     Halpern-Teague impossibility; no bounded-round protocol works, matching the paper's\n\
     'nor with bounded running time' in bullet 2.\n\n"
    (B.Tab.fmt_float (R.deviation_gain u ~n ~alpha:1.0));
  (* A sample run's round counts. *)
  let rounds =
    List.init 12 (fun i ->
        let o =
          R.simulate (B.Prng.create (100 + i)) ~n:3 ~alpha:0.4 ~utility:u ~withholder:None
            ~secret:777
        in
        string_of_int o.R.rounds)
  in
  B.Out.printf "sample honest runs at alpha = 0.4 (geometric rounds): %s\n\n"
    (String.concat ", " rounds)
