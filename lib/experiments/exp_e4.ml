(** E4 — §2 Byzantine agreement: the t < n/3 bound, empirically.

    EIG satisfies agreement + validity for n > 3t under crafted and
    randomized adversaries; the lying adversary breaks validity at n = 3t
    (the impossibility that powers the n ≤ 3k+3t lower bound); Dolev–Strong
    with a PKI survives even there (the n > k+t bullet). *)

module B = Beyond_nash
module E = B.Eig
module DS = B.Dolev_strong

let name = "E4"
let title = "Byzantine agreement: EIG (no signatures) vs Dolev-Strong (PKI)"

let eig_row ~n ~t ~values ~adversary label =
  let r = E.run ?adversary ~n ~t ~values ~default:0 () in
  let honest =
    List.filteri
      (fun i _ -> match adversary with None -> true | Some a -> not (List.mem i a.B.Sync_net.corrupted))
      (Array.to_list values)
  in
  [
    Printf.sprintf "EIG n=%d t=%d" n t;
    label;
    string_of_bool (E.agreement r);
    string_of_bool (E.validity ~honest_values:honest r);
    string_of_int r.B.Sync_net.rounds_run;
    string_of_int r.B.Sync_net.messages_sent;
  ]

let run ?(jobs = 1) () =
  let tab =
    B.Tab.create ~title [ "protocol"; "adversary"; "agreement"; "validity"; "rounds"; "msgs" ]
  in
  B.Tab.add_row tab (eig_row ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |] ~adversary:None "none");
  B.Tab.add_row tab
    (eig_row ~n:4 ~t:1 ~values:[| 1; 1; 1; 0 |]
       ~adversary:(Some (E.lying_adversary ~n:4 ~corrupted:[ 3 ] ~claim:0))
       "liar (claims 0)");
  B.Tab.add_row tab
    (eig_row ~n:7 ~t:2 ~values:[| 1; 0; 1; 1; 0; 0; 0 |]
       ~adversary:(Some (E.lying_adversary ~n:7 ~corrupted:[ 5; 6 ] ~claim:1))
       "two liars");
  (* The impossibility regime: n = 3t. *)
  B.Tab.add_row tab
    (eig_row ~n:3 ~t:1 ~values:[| 1; 1; 0 |]
       ~adversary:(Some (E.lying_adversary ~n:3 ~corrupted:[ 2 ] ~claim:0))
       "liar at n=3t  <-- validity FAILS");
  (* Randomized sweep. *)
  let rng = B.Prng.create 2024 in
  let violations n t corrupted trials =
    let count = ref 0 in
    for trial = 1 to trials do
      let adv = E.equivocating_adversary ~n ~corrupted rng in
      let values = Array.init n (fun i -> (i + trial) mod 2) in
      let r = E.run ~adversary:adv ~n ~t ~values ~default:0 () in
      let honest =
        List.filteri (fun i _ -> not (List.mem i corrupted)) (Array.to_list values)
      in
      if not (E.agreement r && E.validity ~honest_values:honest r) then incr count
    done;
    !count
  in
  B.Tab.add_row tab
    [ "EIG n=4 t=1"; "100 random equivocators"; Printf.sprintf "%d violations" (violations 4 1 [ 3 ] 100); ""; ""; "" ];
  B.Tab.add_row tab
    [ "EIG n=7 t=2"; "50 random equivocators"; Printf.sprintf "%d violations" (violations 7 2 [ 5; 6 ] 50); ""; ""; "" ];
  (* Dolev-Strong rows. *)
  let rng2 = B.Prng.create 7 in
  let pki3 = B.Hashing.Pki.create rng2 ~n:3 in
  let ds_row ~pki ~n ~t ~adversary label expected_value =
    let r = DS.run ?adversary ~pki ~n ~t ~sender:0 ~value:1 ~default:9 () in
    [
      Printf.sprintf "DS  n=%d t=%d" n t;
      label;
      string_of_bool (DS.agreement r);
      (match expected_value with
      | Some v -> string_of_bool (DS.validity_sender ~sender_value:v r)
      | None -> "n/a (faulty sender)");
      string_of_int r.B.Sync_net.rounds_run;
      string_of_int r.B.Sync_net.messages_sent;
    ]
  in
  B.Tab.add_row tab (ds_row ~pki:pki3 ~n:3 ~t:1 ~adversary:None "none" (Some 1));
  B.Tab.add_row tab
    (ds_row ~pki:pki3 ~n:3 ~t:1
       ~adversary:(Some (DS.equivocating_sender ~pki:pki3 ~sender:0 ~n:3))
       "equivocating sender at n=3t  <-- PKI saves agreement" None);
  (* Phase King: polynomial messages, t < n/4. *)
  let pk_row ~n ~t ~values ~adversary label =
    let module PK = B.Phase_king in
    let r = PK.run ?adversary ~n ~t ~values () in
    let honest =
      List.filteri
        (fun i _ ->
          match adversary with
          | None -> true
          | Some a -> not (List.mem i a.B.Sync_net.corrupted))
        (Array.to_list values)
    in
    [
      Printf.sprintf "PK  n=%d t=%d" n t;
      label;
      string_of_bool (PK.agreement r);
      string_of_bool (PK.validity ~honest_values:honest r);
      string_of_int r.B.Sync_net.rounds_run;
      string_of_int r.B.Sync_net.messages_sent;
    ]
  in
  B.Tab.add_row tab (pk_row ~n:5 ~t:1 ~values:[| 1; 0; 1; 1; 0 |] ~adversary:None "none");
  B.Tab.add_row tab
    (pk_row ~n:5 ~t:1 ~values:[| 1; 1; 1; 1; 0 |]
       ~adversary:(Some (B.Phase_king.lying_adversary ~corrupted:[ 4 ] ~claim:0))
       "liar (t < n/4)");
  (* FloodSet: crash faults only, f+1 rounds, any f < n. *)
  let module FS = B.Floodset in
  let rngf = B.Prng.create 44 in
  let fs_values = [| 2; 1; 3; 2 |] in
  let fs =
    FS.run
      ~adversary:(FS.crash_after ~rng:rngf ~n:4 ~corrupted:[ 0 ] ~values:fs_values ~round:1)
      ~n:4 ~f:1 ~values:fs_values ()
  in
  B.Tab.add_row tab
    [
      "FS  n=4 f=1";
      "crash mid-broadcast";
      string_of_bool (FS.agreement fs);
      string_of_bool (FS.validity ~all_values:(Array.to_list fs_values) fs);
      string_of_int fs.B.Sync_net.rounds_run;
      string_of_int fs.B.Sync_net.messages_sent;
    ];
  B.Tab.print tab;
  (* Fault sweep: instead of the hand-written adversaries above, explore
     seeded random fault schedules per protocol and shrink any violation
     to a minimal counterexample (deterministic for any [jobs]). *)
  Fault_sweep.render ~jobs ~quick:true ~trials:40 ~seed:42 ();
  B.Out.print_endline
    "shape check: EIG correct iff n > 3t (exponential messages); Phase King trades a stronger\n\
     bound (t < n/4) for polynomial messages; crash faults (FloodSet) need only f+1 rounds for\n\
     any f; with signatures (PKI) agreement survives n = 3t, mirroring n > k+t with PKI.\n\
     The fault sweep rediscovers the n = 3t impossibility mechanically: below threshold no\n\
     schedule breaks agreement/validity; at n = 3t the explorer finds and shrinks one.\n"
