(** E1 — coordination game (0/1): k-resilience of the all-0 profile.

    One registered experiment of {!Experiments.all}; everything beyond the
    registry triple (internal helpers, protocol scaffolding) is private. *)

val name : string
val title : string

val run : ?jobs:int -> unit -> unit
(** Regenerate the table(s) through {!Bn_util.Out}; [jobs] bounds the
    domain budget of any internal parallel loops. Output is byte-identical
    for every [jobs]. *)
