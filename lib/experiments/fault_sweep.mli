(** Fault-schedule sweep: the explorer pointed at the Byzantine protocols.

    Eight configurations pair a protocol instance (EIG, Floodset,
    Phase-King, Dolev–Strong) with a seeded schedule generator, bracketing
    each resilience threshold from both sides: below threshold the
    explorer must find no violation, at/above it the violation must be
    found and shrunk to a minimal replayable counterexample. Rendered by
    E4/E5/E15 and by [bin/main.exe --explore]; verdicts are deterministic
    in (seed, trials). *)

type config = {
  cname : string;
  regime : string;
  expect_violation : bool;
  quick : bool;  (** part of the [--quick] (CI smoke) subset *)
  explore : pool:Beyond_nash.Pool.t -> seed:int -> trials:int -> Beyond_nash.Explore.report;
}

val all : config list
val configs : quick:bool -> config list

(** {1 Systems under test} (exported for the fault/exploration suites) *)

val eig_system :
  n:int -> t:int -> values:int array ->
  int Beyond_nash.Sync_net.result Beyond_nash.Explore.system

val floodset_system :
  n:int -> f:int -> values:int array ->
  int Beyond_nash.Sync_net.result Beyond_nash.Explore.system

val phase_king_system :
  n:int -> t:int -> values:int array ->
  int Beyond_nash.Sync_net.result Beyond_nash.Explore.system

val dolev_strong_system :
  n:int -> t:int -> int Beyond_nash.Sync_net.result Beyond_nash.Explore.system

val explore_eig_n3t1 :
  ?pool:Beyond_nash.Pool.t -> seed:int -> trials:int -> unit -> Beyond_nash.Explore.report
(** The n = 3t EIG exploration (find + shrink) as a single timed kernel —
    the bench harness entry point. *)

(** {1 Rendering} *)

val render : ?jobs:int -> ?quick:bool -> trials:int -> seed:int -> unit -> unit
(** One verdict row per config, then a replayable transcript per violating
    config, through {!Bn_util.Out}. *)

val demo : seed:int -> unit -> unit
(** [--faults] demo: one concrete schedule injected into EIG, next to the
    fault-free run. *)
