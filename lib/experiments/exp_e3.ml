(** E3 — §2: the nine-regime mediator-implementation characterization.

    Regenerates the paper's bullet list as (i) a feasibility matrix over n
    for (k,t) = (1,1) under increasingly strong assumption sets, and (ii)
    one witness row per bullet. *)

module B = Beyond_nash
module F = B.Feasibility

let name = "E3"
let title = "ADGH characterization: when can cheap talk implement a mediator?"

let assumption_sets =
  [
    ("bare", F.no_assumptions);
    ("util+punish", { F.no_assumptions with F.utilities_known = true; punishment = true });
    ("broadcast", { F.no_assumptions with F.broadcast = true });
    ("crypto", { F.no_assumptions with F.crypto = true });
    ("PKI", { F.no_assumptions with F.pki = true });
  ]

let run ?(jobs = 1) () =
  let pool = B.Pool.create ~domains:jobs () in
  let tab = B.Tab.create ~title ("n \\ assumptions (k=1,t=1)" :: List.map fst assumption_sets) in
  (* One grid row per n, classified in parallel; rows are added in sweep
     order so the table never depends on domain scheduling. *)
  List.iter (B.Tab.add_row tab)
    (B.Pool.map pool
       (fun n ->
         string_of_int n
         :: List.map (fun (_, a) -> F.describe (F.classify ~n ~k:1 ~t:1 a)) assumption_sets)
       [ 3; 4; 5; 6; 7; 8 ]);
  B.Tab.print tab;
  let witness = B.Tab.create ~title:"bullet-by-bullet witnesses" [ "bullet"; "statement"; "witness (n,k,t)"; "verdict" ] in
  let rows =
    [
      (1, (7, 1, 1), F.no_assumptions);
      (2, (6, 1, 1), F.no_assumptions);
      (3, (6, 1, 1), { F.no_assumptions with F.utilities_known = true; punishment = true });
      (4, (5, 1, 1), { F.no_assumptions with F.utilities_known = true; punishment = true });
      (5, (5, 1, 1), { F.no_assumptions with F.broadcast = true });
      (6, (4, 1, 1), { F.no_assumptions with F.broadcast = true });
      (7, (5, 1, 1), { F.no_assumptions with F.crypto = true });
      (8, (4, 1, 1), { F.no_assumptions with F.crypto = true; punishment = true });
      (9, (3, 1, 1), { F.no_assumptions with F.pki = true });
    ]
  in
  List.iter
    (fun (bullet, (n, k, t), a) ->
      B.Tab.add_row witness
        [
          string_of_int bullet;
          F.bullet_text bullet;
          Printf.sprintf "(%d,%d,%d)" n k t;
          F.describe (F.classify ~n ~k ~t a);
        ])
    rows;
  B.Tab.print witness
