(** E10 — §2's Gnutella free-riding discussion (Adar–Huberman 2000).

    The analytic game shows free riding is the dominant strategy for
    standard utilities; the population simulation with Zipf-distributed
    "kicks" reproduces the measured shape: ~70% of hosts share nothing and
    the top 1% of hosts serve ~half of all responses. *)

module B = Beyond_nash
module G = B.Gnutella

let name = "E10"
let title = "Gnutella free riding: dominant strategy + population shape"

let run ?jobs:_ () =
  B.Out.printf
    "analytic game (n=4, standard utilities): all-free-ride is the unique outcome of\n\
     iterated strict dominance = %b\n\n"
    (G.free_riding_equilibrium ~n:4 ~cost:1.0 ~download_value:5.0);
  let tab =
    B.Tab.create ~title:"population simulation (Zipf kicks; Adar-Huberman targets: 0.70 / 0.50)"
      [ "users"; "cost"; "free riders"; "top 1% load"; "top 10% load"; "Gini(load)" ]
  in
  let rng = B.Prng.create 1848 in
  List.iter
    (fun (users, cost) ->
      let p = { (G.default_params ~users) with G.cost } in
      let s = G.simulate rng p in
      B.Tab.add_row tab
        [
          string_of_int users;
          B.Tab.fmt_float cost;
          B.Tab.fmt_float s.G.free_rider_fraction;
          B.Tab.fmt_float s.G.top1_response_share;
          B.Tab.fmt_float s.G.top10_response_share;
          B.Tab.fmt_float s.G.gini_load;
        ])
    [ (2000, 1.0); (5000, 1.0); (10000, 1.0); (5000, 0.5); (5000, 2.0) ];
  B.Tab.print tab;
  (* Small analytic game with one enthusiast. *)
  let kicks = [| 2.0; 0.0; 0.0; 0.0 |] in
  let g = G.sharing_game ~n:4 ~cost:1.0 ~kicks ~download_value:5.0 in
  (match B.Dominance.solves_by_dominance g with
  | Some profile ->
    B.Out.printf
      "with one enthusiast (kick 2.0 > cost 1.0): dominance solves to [%s] — the enthusiast\n\
       shares, everyone else free rides (the paper's reading of the sharing hosts)\n\n"
      (String.concat ";"
         (List.map (fun a -> if a = 1 then "share" else "freeride") (Array.to_list profile)))
  | None -> B.Out.print_endline "unexpected: not dominance-solvable\n")
