(** E12 — §3: Axelrod-style FRPD tournament.

    "Tit-for-tat does exceedingly well in FRPD tournaments": round-robin
    over the classic field; reciprocators (TfT/Grim/Pavlov) dominate the
    top of the table while AllD sinks, and cooperation rates tell the
    story. Also the bounded-automaton cooperation point (Neyman): within
    machine spaces that cannot count rounds, mutual cooperation is stable. *)

module B = Beyond_nash
module T = B.Tournament
module A = B.Automaton

let name = "E12"
let title = "Axelrod tournament (classic field, 200 rounds)"

let run ?jobs:_ () =
  let entries = T.round_robin ~stage:B.Repeated.pd_classic ~rounds:200 T.default_field in
  let tab = B.Tab.create ~title [ "rank"; "automaton"; "states"; "score"; "cooperation rate" ] in
  List.iteri
    (fun i e ->
      B.Tab.add_row tab
        [
          string_of_int (i + 1);
          e.T.automaton.A.name;
          string_of_int (A.size e.T.automaton);
          B.Tab.fmt_float e.T.score;
          B.Tab.fmt_float e.T.cooperation;
        ])
    entries;
  B.Tab.print tab;
  (* Horizon sweep: the ranking's shape is stable. *)
  let tab2 = B.Tab.create ~title:"winner and TfT rank vs horizon" [ "rounds"; "winner"; "TfT rank" ] in
  List.iter
    (fun rounds ->
      let es = T.round_robin ~stage:B.Repeated.pd_classic ~rounds T.default_field in
      let tft_rank =
        let rec go i = function
          | [] -> -1
          | e :: rest -> if e.T.automaton.A.name = "TfT" then i else go (i + 1) rest
        in
        go 1 es
      in
      B.Tab.add_row tab2
        [ string_of_int rounds; (T.winner es).A.name; string_of_int tft_rank ])
    [ 10; 50; 100; 200; 500 ];
  B.Tab.print tab2;
  (* Noise: Axelrod's second insight — trembles hurt the unforgiving. *)
  let tabn =
    B.Tab.create ~title:"noisy tournament (100 rounds): rank of each automaton vs noise"
      ("automaton \\ noise" :: List.map string_of_float [ 0.0; 0.02; 0.1 ])
  in
  let rankings =
    List.map
      (fun noise ->
        let rng = B.Prng.create 121 in
        let es =
          if noise = 0.0 then T.round_robin ~stage:B.Repeated.pd_classic ~rounds:100 T.default_field
          else
            T.round_robin ~noise:(rng, noise) ~stage:B.Repeated.pd_classic ~rounds:100
              T.default_field
        in
        List.map (fun e -> e.T.automaton.A.name) es)
      [ 0.0; 0.02; 0.1 ]
  in
  List.iter
    (fun name ->
      let rank_in ranking =
        let rec go i = function
          | [] -> "-"
          | n :: rest -> if n = name then string_of_int i else go (i + 1) rest
        in
        go 1 ranking
      in
      B.Tab.add_row tabn (name :: List.map rank_in rankings))
    (List.map (fun a -> a.A.name) T.default_field);
  B.Tab.print tabn;
  (* Bounded automata cooperate (Neyman's point, via the E7 machinery):
     within the counting-free space at zero memory cost, Grim vs Grim and
     TfT vs TfT sustain full cooperation. *)
  let spec =
    { B.Frpd.stage = B.Repeated.pd_paper; horizon = 20; delta = 0.95; memory_cost = 0.0 }
  in
  let bounded_space = [ A.all_d; A.grim; A.tit_for_tat; A.pavlov ] in
  B.Out.printf
    "bounded-automaton space (no round counters), mu=0: (TfT,TfT) equilibrium = %b,\n\
     (Grim,Grim) equilibrium = %b — cooperation without memory charges, Neyman-style.\n\n"
    (B.Frpd.is_equilibrium ~space:bounded_space spec A.tit_for_tat)
    (B.Frpd.is_equilibrium ~space:bounded_space spec A.grim)
