(** Mediator regime sweep: the (n,k,t) grid classified synchronously (the
    nine bullets), asynchronously ([n > 4(k+t)]), cross-checked by the
    k-resilient sequential-equilibrium checker, and witnessed by Explore
    schedule search — no violation on the possibility side, a shrunk
    locally-minimal counterexample on the impossibility side. Rendered by
    E16 and [bin/main.exe --mediator-sweep]; deterministic in
    (seed, trials) for any [-j]. *)

type cell = {
  n : int;
  k : int;
  t : int;
  gen : Beyond_nash.Prng.t -> Beyond_nash.Faults.schedule;
}

val cells : cell list
(** Six cells bracketing the asynchronous threshold at f = 1 and f = 2:
    (5,1,0) | (4,1,0) | (3,1,0) and (9,1,1) | (8,1,1) | (6,1,1). *)

val cell_name : cell -> string

val explore_cell :
  ?pool:Beyond_nash.Pool.t -> seed:int -> trials:int -> cell -> Beyond_nash.Explore.report
(** Seeded schedule search against the cell's asynchronous protocol. *)

val expected : cell -> Beyond_nash.Feasibility.async_verdict

val verdict : cell -> Beyond_nash.Explore.report -> string
(** "OK (robust)" / "OK (counterexample found)" / the two failure modes. *)

val sequential_rows : cell -> bool * bool * bool * bool
(** [(stall_eq, stall_matches, punish_eq, punish_matches)]: the two canned
    games' sequential verdicts and whether each agrees with its
    classification (async threshold, 2k+2t broadcast threshold). *)

val explore_async_n4k1t0 :
  ?pool:Beyond_nash.Pool.t -> seed:int -> trials:int -> unit -> Beyond_nash.Explore.report
(** The smallest impossibility cell (n = 4, k = 1, t = 0: find + shrink)
    as a single timed kernel — the bench harness entry point. *)

val render : ?jobs:int -> trials:int -> seed:int -> unit -> unit
(** Three tables (regime grid, sequential checks, exploration verdicts)
    plus a replayable transcript per violating cell, through
    {!Bn_util.Out}. *)

val sweep_json : ?jobs:int -> trials:int -> seed:int -> unit -> string
(** The sweep as a JSON artifact (schema ["mediator-sweep/1"]); the CI
    smoke step validates it with [jq]. *)
