let name = "E17"
let title = "million-agent scrip & free riding: SoA engines vs analytic steady state"
let run ?jobs () = Scrip_sweep.render ?jobs ()
