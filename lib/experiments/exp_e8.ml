(** E8 — Example 3.3: computational roshambo has no Nash equilibrium.

    Prints the machine-game payoff matrix, the full nonexistence
    certificate (a profitable deviation for every machine profile), and the
    classical contrast (uniform mixed equilibrium exists when computation
    is free). *)

module B = Beyond_nash
module MG = B.Machine_game

let name = "E8"
let title = "computational roshambo: nonexistence of equilibrium"

let run ?jobs:_ () =
  let g = B.Comp_roshambo.game () in
  let nf = MG.to_normal_form g in
  let names = Array.init 4 (fun m -> B.Normal_form.action_name nf 0 m) in
  let tab =
    B.Tab.create ~title:"machine game payoffs (row player utility = payoff - complexity)"
      ("row \\ col" :: Array.to_list names)
  in
  for i = 0 to 3 do
    B.Tab.add_row tab
      (names.(i)
      :: List.init 4 (fun j -> B.Tab.fmt_float (B.Normal_form.payoff nf [| i; j |] 0)))
  done;
  B.Tab.print tab;
  (match B.Comp_roshambo.certificate g with
  | None -> B.Out.print_endline "UNEXPECTED: an equilibrium exists"
  | Some cert ->
    let tab2 =
      B.Tab.create ~title:"nonexistence certificate: every profile admits a profitable switch"
        [ "profile (row,col)"; "deviator"; "switch to"; "gain" ]
    in
    List.iter
      (fun (choice, player, machine) ->
        let before = MG.expected_utility g ~choice ~player in
        let alt = Array.copy choice in
        alt.(player) <- machine;
        let after = MG.expected_utility g ~choice:alt ~player in
        B.Tab.add_row tab2
          [
            Printf.sprintf "(%s, %s)" names.(choice.(0)) names.(choice.(1));
            (if player = 0 then "row" else "col");
            names.(machine);
            B.Tab.fmt_float (after -. before);
          ])
      cert;
    B.Tab.print tab2);
  let with_extras = B.Comp_roshambo.game ~extra_randomizers:true () in
  B.Out.printf "with biased randomizers added: equilibrium exists = %b (still none)\n"
    (B.Comp_roshambo.has_equilibrium with_extras);
  let classical = B.Comp_roshambo.classical_equilibria () in
  (match classical with
  | [ p ] ->
    B.Out.printf
      "classical roshambo (free computation): unique Nash equilibrium, row mix = [%s]\n\n"
      (String.concat "; " (List.map B.Tab.fmt_float (Array.to_list p.(0))))
  | l -> B.Out.printf "classical roshambo: %d equilibria\n\n" (List.length l))
