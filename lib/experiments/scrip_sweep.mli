(** The computational content of E17: million-agent scrip and Gnutella
    simulations on the SoA store, verified against the analytic steady
    state.

    Four sections, each a deterministic table (byte-identical at any
    [?jobs]):

    + a chi-square / total-variation goodness-of-fit ladder for the
      sharded scrip engine against {!Beyond_nash.Steady_state.max_entropy}
      at n = 10³ … [n_max];
    + a mixed population (standard / hoarder / altruist) showing the
      paper's §5 monetary effects: hoarder accumulation in the overflow
      bin and the induced starvation of standard agents;
    + Gnutella free riding at scale (free-rider fraction, top-1% /
      top-10% response share, Gini) on the sharded engine;
    + the empirical best-response kick cutoff: with payoff
      [κ − cost] per share, the estimator [argmax over a cutoff grid of
      the mean sampled utility] converges to the dominant-strategy
      cutoff [κ* = cost] as the population grows. *)

type gof_row = {
  n : int;
  steps : int;
  gof : Beyond_nash.Steady_state.gof;
  mean_balance : float;
}

val ladder : n_max:int -> int list
(** The population sizes exercised: powers of ten from 10³ to [n_max]. *)

val gof_ladder : ?jobs:int -> ?n_max:int -> seed:int -> unit -> gof_row list
(** One sharded scrip run per ladder size (threshold 5, 2.5 units per
    agent, 64 shards) and its fit against the analytic law. *)

val br_cutoff : seed:int -> n:int -> cost:float -> float * float
(** [(tau_hat, regret)]: the cutoff on an 11-point grid around [cost]
    maximizing the mean empirical share utility over [n] sampled kicks,
    and the closed-form expected utility loss of playing [tau_hat]
    instead of the dominant cutoff [cost] under the Pareto kick law.
    [regret] → 0 and [tau_hat] → [cost] as [n] grows. *)

val render : ?jobs:int -> ?n_max:int -> ?seed:int -> unit -> unit
(** Print all four sections through {!Bn_util.Out}. [n_max] defaults to
    10⁵ (the [dune runtest] budget); [bin/main.exe --e17 --scrip-n
    1000000] raises it to the paper-scale run. *)
