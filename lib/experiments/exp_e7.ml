(** E7 — Example 3.2: finitely repeated prisoner's dilemma with memory
    costs.

    The equilibrium region of (TfT, TfT) over (memory cost, horizon) in the
    paper's machine space, the closed-form threshold 2δ^N / Δstates, and
    the paper's headline claim: any positive memory cost admits a horizon
    beyond which tit-for-tat is an equilibrium. *)

module B = Beyond_nash
module F = B.Frpd

let name = "E7"
let title = "FRPD: when is (TfT, TfT) a computational equilibrium?"

let run ?jobs:_ () =
  let delta = 0.9 in
  let horizons = [ 5; 8; 10; 15; 20 ] in
  let costs = [ 0.005; 0.01; 0.02; 0.05; 0.1 ] in
  let tab =
    B.Tab.create
      ~title:(Printf.sprintf "%s (delta = %.2f; cell = equilibrium?)" title delta)
      ("memory cost \\ N" :: List.map string_of_int horizons)
  in
  List.iter
    (fun mu ->
      B.Tab.add_row tab
        (B.Tab.fmt_float mu
        :: List.map
             (fun n ->
               let spec = { F.stage = B.Repeated.pd_paper; horizon = n; delta; memory_cost = mu } in
               if F.is_equilibrium ~space:(F.paper_space ~horizon:n) spec B.Automaton.tit_for_tat
               then "eq"
               else "-")
             horizons))
    costs;
  B.Tab.print tab;
  let tab2 =
    B.Tab.create ~title:"threshold memory cost 2*delta^N / extra-states vs horizon"
      [ "N"; "threshold"; "best response to TfT at mu=0" ]
  in
  List.iter
    (fun n ->
      let spec = { F.stage = B.Repeated.pd_paper; horizon = n; delta; memory_cost = 0.0 } in
      let br, _ = F.best_response ~space:(F.paper_space ~horizon:n) spec B.Automaton.tit_for_tat in
      B.Tab.add_row tab2
        [ string_of_int n; B.Tab.fmt_float (F.tft_threshold_cost spec); br.B.Automaton.name ])
    horizons;
  B.Tab.print tab2;
  let tab3 =
    B.Tab.create ~title:"any positive cost works for long enough games (min horizon)"
      [ "memory cost"; "delta"; "min N with (TfT,TfT) equilibrium" ]
  in
  List.iter
    (fun (mu, d) ->
      let cell =
        match F.min_horizon_for_equilibrium ~memory_cost:mu ~delta:d () with
        | Some n -> string_of_int n
        | None -> "> 60"
      in
      B.Tab.add_row tab3 [ B.Tab.fmt_float mu; B.Tab.fmt_float d; cell ])
    [ (0.001, 0.6); (0.01, 0.9); (0.05, 0.9); (0.05, 0.8); (0.1, 0.95) ];
  B.Tab.print tab3;
  B.Out.print_endline
    "note: in the full machine space (with AllC), (TfT,TfT) is never exact under per-state\n\
     charges because AllC plays identically against TfT with one state fewer — the artifact\n\
     DESIGN.md documents; the paper's argument quantifies over the counting deviations only.\n"
