(** E1 — §2 coordination game: Nash but not 2-resilient.

    Regenerates the paper's first worked example as a table: for the
    n-player 0/1 game, the all-0 profile is a Nash equilibrium (and hence
    1-resilient), but any pair deviating to 1 profits, so it is not
    2-resilient for any n. *)

module B = Beyond_nash

let name = "E1"
let title = "coordination game (0/1): k-resilience of the all-0 profile"

let run ?(jobs = 1) () =
  let tab =
    B.Tab.create ~title
      [ "n"; "Nash"; "1-resilient"; "2-resilient"; "max k"; "pair deviation (witness)" ]
  in
  (* The coalition enumeration inside each robustness check runs on [jobs]
     domains; Pool.find_first keeps the reported witness serial-identical. *)
  List.iter
    (fun n ->
      let g = B.Games.coordination_01 n in
      let prof = B.Mixed.pure_profile g (Array.make n 0) in
      let witness =
        match B.Robust.check_resilience ~jobs g prof ~k:2 with
        | B.Robust.Holds -> "-"
        | B.Robust.Fails v ->
          Printf.sprintf "C={%s}: %.0f -> %.0f"
            (String.concat "," (List.map string_of_int v.B.Robust.coalition))
            v.B.Robust.before v.B.Robust.after
      in
      B.Tab.add_row tab
        [
          string_of_int n;
          string_of_bool (B.Nash.is_nash g prof);
          string_of_bool (B.Robust.is_k_resilient ~jobs g prof ~k:1);
          string_of_bool (B.Robust.is_k_resilient ~jobs g prof ~k:2);
          string_of_int (B.Robust.max_resilience ~jobs g prof);
          witness;
        ])
    [ 3; 4; 5; 6 ];
  B.Tab.print tab;
  (* Contrast: the "everyone plays 1 with a partner" payoff is not reachable
     as any pure Nash equilibrium of the game for n > 2. *)
  let g = B.Games.coordination_01 5 in
  let pure = B.Nash.pure_equilibria g in
  B.Out.printf "pure Nash equilibria of the n=5 game: %d (the paper's point: all-0 is one of them, yet a pair gains by deviating)\n\n"
    (List.length pure)
