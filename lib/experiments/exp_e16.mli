(** E16 (extension) — asynchronous cheap-talk mediators: the regime sweep
    of {!Mediator_sweep} (grid classification, sequential checks,
    Explore-witnessed boundaries). *)

val name : string
val title : string
val run : ?jobs:int -> unit -> unit
