(** E9 — §4 Figures 1–3: generalized Nash equilibrium with unawareness.

    Sweeps A's belief p that B is unaware of down_B: for p < 1/2 a
    generalized Nash equilibrium has A playing across_A (modeler outcome
    (2,2)); for p > 1/2 every equilibrium has A playing down_A (outcome
    (1,1)). Also checks the canonical-representation equivalence and the
    virtual-move (awareness of unawareness) example. *)

module B = Beyond_nash
module A = B.Awareness
module Ex = B.Aware_examples

let name = "E9"
let title = "games with awareness: the paper's Figures 1-3 example"

let top_move profile pair info =
  match List.assoc_opt pair profile with
  | None -> "?"
  | Some beh -> (
    match List.assoc_opt info beh with
    | Some dist -> fst (List.hd (List.sort (fun (_, a) (_, b) -> compare b a) dist))
    | None -> "?")

let run ?jobs:_ () =
  let tab =
    B.Tab.create ~title
      [ "p (B unaware)"; "#GNE"; "A's moves in Gamma^A"; "best modeler outcome (A,B)" ]
  in
  List.iter
    (fun p ->
      let eqs = Ex.generalized_equilibria ~p in
      let a_moves =
        String.concat "/"
          (List.sort_uniq compare (List.map (fun prof -> top_move prof (0, "gameA") "A.1") eqs))
      in
      let best =
        List.fold_left
          (fun acc prof ->
            let o = Ex.modeler_outcome ~p prof in
            if o.(0) > fst acc then (o.(0), o.(1)) else acc)
          (neg_infinity, neg_infinity) eqs
      in
      B.Tab.add_row tab
        [
          B.Tab.fmt_float p;
          string_of_int (List.length eqs);
          a_moves;
          Printf.sprintf "(%s, %s)" (B.Tab.fmt_float (fst best)) (B.Tab.fmt_float (snd best));
        ])
    [ 0.0; 0.25; 0.4; 0.5; 0.6; 0.75; 1.0 ];
  B.Tab.print tab;
  let nes = Ex.underlying_nash_profiles () in
  B.Out.printf "underlying game's Nash equilibria (awareness ignored): %s\n"
    (String.concat "; " (List.map (fun (a, b) -> a ^ "+" ^ b) nes));
  B.Out.print_endline
    "shape check: Nash of Figure 1 includes (across_A, down_B), but once A assigns p > 1/2\n\
     to B being unaware of down_B, every generalized equilibrium has A playing down_A.\n";
  (* Canonical representation. *)
  let c = A.canonical Ex.underlying in
  let gne = A.pure_generalized_equilibria c in
  B.Out.printf
    "canonical representation of Figure 1: %d pure GNE = %d pure Nash strategy profiles\n"
    (List.length gne)
    (List.length (Ex.underlying_nash_profiles ()));
  (* Virtual moves. *)
  let tab2 =
    B.Tab.create ~title:"awareness of unawareness: virtual-move war game"
      [ "A's estimate of the unknown move"; "A's equilibrium action" ]
  in
  List.iter
    (fun est ->
      let g = Ex.virtual_move_game ~estimate:est in
      let moves =
        List.sort_uniq compare
          (List.map
             (fun prof -> top_move prof (0, "gameA") "A.war")
             (A.pure_generalized_equilibria g))
      in
      B.Tab.add_row tab2 [ B.Tab.fmt_float est; String.concat "/" moves ])
    [ -4.0; -2.0; 0.5; 1.5; 3.0 ];
  B.Tab.print tab2;
  B.Out.print_endline
    "shape check: a low evaluation of the unconceived move encourages peace overtures, as the\n\
     paper suggests for the war-settings discussion.\n"
