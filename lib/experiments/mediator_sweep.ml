(** Mediator regime sweep over the (n,k,t) grid — synchronous bullets,
    asynchronous threshold, sequential-equilibrium checks and
    Explore-witnessed boundaries in one table set.

    Each {!cell} brackets the asynchronous [n > 4(k+t)] threshold from one
    side. On the possibility side the explorer must find no invariant
    violation across every seeded schedule; on the impossibility side it
    must find one and shrink it to the locally minimal witness —
    [n - 3(k+t)] silenced parties, or the empty schedule when [n ≤ 3(k+t)].
    Rendered by E16 and [bin/main.exe --mediator-sweep]; everything is
    deterministic in (seed, trials), independent of [-j]. *)

module B = Beyond_nash

type cell = {
  n : int;
  k : int;
  t : int;
  gen : B.Prng.t -> B.Faults.schedule;
}

(* Sub-Byzantine schedules from at most f = k+t culprits: omission faults
   plus corruption (exercising Berlekamp-Welch on the possibility side).
   Async_cheap_talk.explore sanitizes away dealer-blaming events. *)
let byz ~n ~f rng =
  B.Faults.random_schedule rng
    (B.Faults.byzantine ~n ~rounds:2 ~max_events:((2 * f) + 2) ~max_culprits:f)

let mk (n, k, t) = { n; k; t; gen = byz ~n ~f:(k + t) }

let cells = List.map mk [ (5, 1, 0); (4, 1, 0); (3, 1, 0); (9, 1, 1); (8, 1, 1); (6, 1, 1) ]

let cell_name c = Printf.sprintf "n=%d k=%d t=%d" c.n c.k c.t

let explore_cell ?(pool = B.Pool.serial) ~seed ~trials c =
  B.Async_cheap_talk.explore ~pool ~seed ~trials ~gen:c.gen ~n:c.n ~k:c.k ~t:c.t
    ~general_type:1 ()

let expected c = B.Feasibility.classify_async ~n:c.n ~k:c.k ~t:c.t

let verdict c report =
  let found = report.B.Explore.violations <> [] in
  match (expected c, found) with
  | B.Feasibility.Async_implementable, false -> "OK (robust)"
  | B.Feasibility.Async_implementable, true -> "UNEXPECTED VIOLATION"
  | (B.Feasibility.Async_breaks_under_faults | B.Feasibility.Async_breaks_fault_free), true ->
    "OK (counterexample found)"
  | (B.Feasibility.Async_breaks_under_faults | B.Feasibility.Async_breaks_fault_free), false ->
    "counterexample NOT found"

(* Both canned games' sequential verdicts, next to the classification each
   must reproduce: the stall game flips with classify_async, the
   punishment game with the n > 2k+2t broadcast bullet. *)
let sequential_rows c =
  let seq (game, profile) = B.Sequential.check game profile ~k:c.k = None in
  let stall_eq = seq (B.Sequential.async_stall_game ~n:c.n ~k:c.k ~t:c.t) in
  let punish_eq = seq (B.Sequential.punishment_game ~n:c.n ~k:c.k ~t:c.t) in
  let stall_expected = expected c = B.Feasibility.Async_implementable in
  let punish_expected = c.n > (2 * c.k) + (2 * c.t) in
  (stall_eq, stall_eq = stall_expected, punish_eq, punish_eq = punish_expected)

(* Entry point used by the bench harness: the smallest impossibility cell
   (find + shrink at n = 4(k+t)) as a single timed kernel. *)
let explore_async_n4k1t0 ?(pool = B.Pool.serial) ~seed ~trials () =
  explore_cell ~pool ~seed ~trials (mk (4, 1, 0))

let bool_cell b = if b then "yes" else "NO"

let render ?(jobs = 1) ~trials ~seed () =
  let pool = B.Pool.create ~domains:jobs () in
  let reports = List.map (fun c -> (c, explore_cell ~pool ~seed ~trials c)) cells in
  let grid =
    B.Tab.create ~title:"mediator regimes across the (n,k,t) grid"
      [ "cell"; "sync (bare)"; "sync (broadcast)"; "sync (pki)"; "async" ]
  in
  List.iter
    (fun c ->
      let sync a = B.Feasibility.describe (B.Feasibility.classify ~n:c.n ~k:c.k ~t:c.t a) in
      B.Tab.add_row grid
        [
          cell_name c;
          sync B.Feasibility.no_assumptions;
          sync { B.Feasibility.no_assumptions with B.Feasibility.broadcast = true };
          sync { B.Feasibility.no_assumptions with B.Feasibility.pki = true };
          B.Feasibility.describe_async (expected c);
        ])
    cells;
  B.Tab.print grid;
  let seq =
    B.Tab.create ~title:"k-resilient sequential equilibrium vs. classification"
      [ "cell"; "stall game eq"; "matches async"; "punishment eq"; "matches 2k+2t" ]
  in
  List.iter
    (fun c ->
      let stall_eq, stall_ok, punish_eq, punish_ok = sequential_rows c in
      B.Tab.add_row seq
        [
          cell_name c;
          string_of_bool stall_eq;
          bool_cell stall_ok;
          string_of_bool punish_eq;
          bool_cell punish_ok;
        ])
    cells;
  B.Tab.print seq;
  let tab =
    B.Tab.create
      ~title:
        (Printf.sprintf "async schedule exploration (seed=%d, %d schedules/cell)" seed trials)
      [ "cell"; "expected"; "violations"; "min shrunk"; "predicted witness"; "verdict" ]
  in
  List.iter
    (fun (c, report) ->
      let shrunk = B.Explore.min_shrunk_size report in
      let predicted = B.Async_cheap_talk.stall_witness_size ~n:c.n ~k:c.k ~t:c.t in
      B.Tab.add_row tab
        [
          cell_name c;
          (match expected c with
          | B.Feasibility.Async_implementable -> "no violation"
          | B.Feasibility.Async_breaks_under_faults -> "breaks under faults"
          | B.Feasibility.Async_breaks_fault_free -> "breaks fault-free");
          Printf.sprintf "%d/%d" (List.length report.B.Explore.violations) trials;
          (if shrunk = max_int then "-" else string_of_int shrunk);
          (match expected c with
          | B.Feasibility.Async_implementable -> "-"
          | _ -> Printf.sprintf "%d event%s" predicted (if predicted = 1 then "" else "s"));
          verdict c report;
        ])
    reports;
  B.Tab.print tab;
  List.iter
    (fun (c, report) ->
      if report.B.Explore.violations <> [] then
        B.Out.print_string (B.Explore.transcript ~name:(cell_name c) report))
    reports;
  B.Out.print_string "\n"

(* {1 JSON artifact} *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | ch when Char.code ch < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let sweep_json ?(jobs = 1) ~trials ~seed () =
  let pool = B.Pool.create ~domains:jobs () in
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n";
  p "  \"schema\": \"mediator-sweep/1\",\n";
  p "  \"seed\": %d,\n" seed;
  p "  \"trials\": %d,\n" trials;
  p "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      let report = explore_cell ~pool ~seed ~trials c in
      let shrunk = B.Explore.min_shrunk_size report in
      let stall_eq, stall_ok, punish_eq, punish_ok = sequential_rows c in
      p "    { \"n\": %d, \"k\": %d, \"t\": %d,\n" c.n c.k c.t;
      p "      \"async\": \"%s\",\n" (json_escape (B.Feasibility.describe_async (expected c)));
      p "      \"violations\": %d,\n" (List.length report.B.Explore.violations);
      p "      \"min_shrunk\": %s,\n" (if shrunk = max_int then "null" else string_of_int shrunk);
      p "      \"predicted_witness\": %s,\n"
        (match expected c with
        | B.Feasibility.Async_implementable -> "null"
        | _ -> string_of_int (B.Async_cheap_talk.stall_witness_size ~n:c.n ~k:c.k ~t:c.t));
      p "      \"sequential_stall_eq\": %b, \"sequential_stall_matches\": %b,\n" stall_eq stall_ok;
      p "      \"sequential_punishment_eq\": %b, \"sequential_punishment_matches\": %b,\n"
        punish_eq punish_ok;
      p "      \"verdict\": \"%s\" }%s\n"
        (json_escape (verdict c report))
        (if i = List.length cells - 1 then "" else ","))
    cells;
  p "  ]\n";
  p "}\n";
  Buffer.contents buf
