(** E5 — §2: cheap talk implements the Byzantine-agreement mediator.

    For every general type, the EIG-based cheap-talk protocol induces the
    mediator's action distribution exactly (TV distance 0) in bounded time
    with no knowledge of utilities — the n > 3k+3t bullet's shape. A naive
    echo protocol fails against an equivocating general. The
    share-exchange table traces the n > k+3t decoding threshold used by
    the crypto regimes. *)

module B = Beyond_nash
module CT = B.Cheap_talk
module M = B.Mediated

let name = "E5"
let title = "implementing the BA mediator with cheap talk"

let run ?(jobs = 1) () =
  let tab =
    B.Tab.create ~title
      [ "protocol"; "scenario"; "TV(mediator, cheap talk)"; "rounds"; "msgs" ]
  in
  List.iter
    (fun gt ->
      let o = CT.generals_eig ~n:4 ~t:1 ~general_type:gt () in
      B.Tab.add_row tab
        [
          "EIG";
          Printf.sprintf "honest, type=%d" gt;
          B.Tab.fmt_float (CT.tv_to_mediator ~n:4 ~general_type:gt o);
          string_of_int o.CT.rounds;
          string_of_int o.CT.messages;
        ])
    [ 0; 1 ];
  let corrupt = CT.generals_eig ~corrupted:[ 3 ] ~n:4 ~t:1 ~general_type:1 () in
  B.Tab.add_row tab
    [
      "EIG";
      "corrupt soldier 3";
      B.Tab.fmt_float (CT.tv_to_mediator ~n:4 ~general_type:1 corrupt);
      string_of_int corrupt.CT.rounds;
      string_of_int corrupt.CT.messages;
    ];
  let naive_ok = CT.generals_naive ~n:4 ~general_type:1 () in
  B.Tab.add_row tab
    [
      "naive echo";
      "honest";
      B.Tab.fmt_float (CT.tv_to_mediator ~n:4 ~general_type:1 naive_ok);
      string_of_int naive_ok.CT.rounds;
      string_of_int naive_ok.CT.messages;
    ];
  let naive_bad = CT.generals_naive ~delivered:[| 0; 0; 1; 1 |] ~n:4 ~general_type:1 () in
  B.Tab.add_row tab
    [
      "naive echo";
      "equivocating general  <-- diverges";
      B.Tab.fmt_float (CT.tv_to_mediator ~n:4 ~general_type:1 naive_bad);
      string_of_int naive_bad.CT.rounds;
      string_of_int naive_bad.CT.messages;
    ];
  (* Fault sweep: the cheap-talk implementation must induce the mediator's
     distribution exactly (TV = 0 over surviving players) under every
     <=t crash schedule, not just the hand-picked scenarios above. *)
  let ct_sweep =
    B.Explore.explore
      ~pool:(B.Pool.create ~domains:jobs ())
      ~seed:42 ~trials:40
      ~gen:(fun rng ->
        B.Faults.random_schedule rng (B.Faults.crash_only ~n:4 ~rounds:2 ~max_crashes:1))
      {
        B.Explore.run =
          (fun schedule ->
            CT.generals_eig ~faults:(B.Faults.plan schedule) ~n:4 ~t:1 ~general_type:1 ());
        invariants =
          [ ("tv = 0", fun _ o -> CT.tv_to_mediator ~n:4 ~general_type:1 o = 0.0) ];
      }
  in
  B.Tab.add_row tab
    [
      "EIG";
      "fault sweep: 40 crash schedules, <=t crashes";
      Printf.sprintf "0 in all %d runs: %b" ct_sweep.B.Explore.trials
        (ct_sweep.B.Explore.violations = []);
      "";
      "";
    ];
  B.Tab.print tab;
  (* Mediated-game side: honest utilities and robustness. *)
  let med = B.Ba_game.mediator ~n:4 in
  let u = M.honest_utilities med in
  B.Out.printf
    "mediated game (n=4): honest utilities = %s; truthful equilibrium = %b; 2-resilient = %b\n\n"
    (String.concat ", " (List.map B.Tab.fmt_float (Array.to_list u)))
    (M.is_truthful_equilibrium med)
    (M.check_resilience med ~k:2 = None);
  (* Share-exchange threshold: the decoding bound behind the crypto regimes. *)
  let tab2 =
    B.Tab.create ~title:"robust secret reconstruction: success iff n > k+3t"
      [ "n"; "k"; "t"; "n > k+3t (theory)"; "all honest reconstruct (measured)" ]
  in
  let rng = B.Prng.create 99 in
  let pool = B.Pool.create ~domains:jobs () in
  (* Row i draws from the i-th split stream, so the measured column is the
     same whether the (n,k,t) grid is swept serially or in parallel. *)
  let grid =
    [ (8, 1, 2); (7, 1, 2); (6, 1, 1); (5, 1, 1); (4, 1, 1); (6, 2, 1); (5, 2, 1); (4, 3, 0); (3, 2, 0) ]
  in
  List.iter (B.Tab.add_row tab2)
    (B.Pool.map pool
       (fun (i, (n, k, t)) ->
         let corrupted = List.init t (fun j -> n - 1 - j) in
         let r = CT.share_exchange (B.Prng.split rng i) ~n ~k ~t ~secret:271828 ~corrupted in
         [
           string_of_int n;
           string_of_int k;
           string_of_int t;
           string_of_bool (CT.share_exchange_succeeds_theoretically ~n ~k ~t);
           string_of_bool r.CT.succeeded;
         ])
       (List.mapi (fun i x -> (i, x)) grid));
  B.Tab.print tab2
