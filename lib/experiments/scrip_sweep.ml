module B = Beyond_nash

type gof_row = {
  n : int;
  steps : int;
  gof : B.Steady_state.gof;
  mean_balance : float;
}

let threshold = 5
let money = 2.5
let shards = 64

let ladder ~n_max =
  List.filter (fun n -> n <= n_max) [ 1_000; 10_000; 100_000; 1_000_000 ]

(* Fewer sweeps at larger n: the batch chain is exactly stationary-law
   preserving, so what the steps buy is decorrelation from the
   concentrated initial deal, and the empirical histogram tightens as
   1/√n anyway. *)
let steps_for n = if n >= 1_000_000 then 60 else if n >= 100_000 then 100 else if n >= 10_000 then 200 else 400

let gof_ladder ?(jobs = 1) ?(n_max = 100_000) ~seed () =
  List.map
    (fun n ->
      let params = { (B.Scrip.default_params ~n) with B.Scrip.rounds = 0 } in
      let steps = steps_for n in
      let st =
        B.Scrip_soa.run ~jobs ~shards ~seed ~steps ~params
          ~kind_of:(fun _ -> B.Scrip.Standard threshold)
          ~money_per_agent:money ()
      in
      {
        n;
        steps;
        gof = B.Scrip_soa.goodness_of_fit st ~threshold ~money_per_agent:money;
        mean_balance = st.B.Scrip_soa.mean_balance;
      })
    (ladder ~n_max)

let br_grid ~cost = List.init 11 (fun i -> cost *. (0.5 +. (0.1 *. float_of_int i)))

(* Expected utility loss of the cutoff rule "share iff kick > tau"
   relative to the dominant cutoff tau = cost, in closed form for the
   Pareto kick law P(kick > t) = (scale/t)^e (t >= scale):
   E[kick · 1{a < kick <= b}] = (e/(e-1)) scale^e (a^{1-e} - b^{1-e}). *)
let true_regret ~cost tau =
  let p = B.Gnutella.default_params ~users:10 in
  let s = p.B.Gnutella.kick_scale and e = p.B.Gnutella.zipf_exponent in
  let seg a b =
    (* E[(kick - cost) · 1{a < kick <= b}] for scale <= a <= b. *)
    let ek = e /. (e -. 1.0) *. (s ** e) *. ((a ** (1.0 -. e)) -. (b ** (1.0 -. e))) in
    let pr = ((s /. a) ** e) -. ((s /. b) ** e) in
    ek -. (cost *. pr)
  in
  if tau > cost then seg cost tau
  else if tau < cost then -.seg (Float.max s tau) cost
  else 0.0

let br_cutoff ~seed ~n ~cost =
  (* Empirical best response to the sharing decision: an agent with kick
     κ who shares gets κ − cost (the download term does not depend on
     its own action), so the exact best-response rule is the cutoff
     κ* = cost. The estimator picks the cutoff maximizing the mean
     sampled utility over n kicks — consistent, with O(1/√n)
     fluctuation across the grid. *)
  let p = B.Gnutella.default_params ~users:10 in
  let rng = B.Prng.create seed in
  let grid = br_grid ~cost in
  let sums = Array.make 11 0.0 in
  for _ = 1 to n do
    let kick =
      B.Gnutella.zipf_sample rng ~scale:p.B.Gnutella.kick_scale
        ~exponent:p.B.Gnutella.zipf_exponent
    in
    List.iteri (fun i tau -> if kick > tau then sums.(i) <- sums.(i) +. (kick -. cost)) grid
  done;
  let best = ref 0 in
  Array.iteri (fun i s -> if s > sums.(!best) then best := i) sums;
  (List.nth grid !best, true_regret ~cost (List.nth grid !best))

let render_gof ~jobs ~n_max ~seed =
  let tab =
    B.Tab.create
      ~title:
        (Printf.sprintf
           "scrip SoA engine vs analytic steady state (threshold %d, m = %.1f, %d shards, 1%% chi-square)"
           threshold money shards)
      [ "n"; "steps"; "X^2"; "df"; "critical"; "TV dist"; "mean"; "fit" ]
  in
  List.iter
    (fun r ->
      B.Tab.add_row tab
        [
          string_of_int r.n;
          string_of_int r.steps;
          B.Tab.fmt_float r.gof.B.Steady_state.stat;
          string_of_int r.gof.B.Steady_state.df;
          B.Tab.fmt_float r.gof.B.Steady_state.critical;
          Printf.sprintf "%.4f" r.gof.B.Steady_state.tv;
          B.Tab.fmt_float r.mean_balance;
          (if r.gof.B.Steady_state.pass then "pass" else "REJECT");
        ])
    (gof_ladder ~jobs ~n_max ~seed ());
  B.Tab.print tab

let render_mixed ~jobs ~n_max ~seed =
  let n = min n_max 100_000 in
  let params = { (B.Scrip.default_params ~n) with B.Scrip.rounds = 0 } in
  (* 80% threshold players, 15% hoarders, 5% altruists — the §5 cast. *)
  let kind_of i =
    let r = i mod 20 in
    if r < 16 then B.Scrip.Standard threshold
    else if r < 19 then B.Scrip.Hoarder
    else B.Scrip.Altruist
  in
  let steps = steps_for n in
  let st =
    B.Scrip_soa.run ~jobs ~shards ~seed ~steps ~params ~kind_of ~money_per_agent:money ()
  in
  let all_std =
    B.Scrip_soa.run ~jobs ~shards ~seed ~steps ~params
      ~kind_of:(fun _ -> B.Scrip.Standard threshold)
      ~money_per_agent:money ()
  in
  let pct a b = 100.0 *. float_of_int a /. float_of_int (max 1 b) in
  let tab =
    B.Tab.create
      ~title:
        (Printf.sprintf
           "mixed population, n = %d, %d sweeps: hoarders freeze the money supply" n steps)
      [ "population"; "starved %"; "served %"; "hoarding (> k) %"; "u(std)"; "u(hoard)"; "u(altru)" ]
  in
  let row label (s : B.Scrip_soa.soa_stats) =
    let over = s.B.Scrip_soa.dist.(Array.length s.B.Scrip_soa.dist - 1) in
    B.Tab.add_row tab
      [
        label;
        Printf.sprintf "%.1f" (pct s.B.Scrip_soa.starved s.B.Scrip_soa.requests);
        Printf.sprintf "%.1f" (pct s.B.Scrip_soa.satisfied s.B.Scrip_soa.requests);
        Printf.sprintf "%.2f" (pct over s.B.Scrip_soa.n);
        B.Tab.fmt_float s.B.Scrip_soa.avg_utility.(0);
        B.Tab.fmt_float s.B.Scrip_soa.avg_utility.(1);
        B.Tab.fmt_float s.B.Scrip_soa.avg_utility.(2);
      ]
  in
  row "all standard" all_std;
  row "80/15/5 std/hoard/altru" st;
  B.Tab.print tab;
  B.Out.printf "money conservation: %d units before and after (%.1f per agent)\n\n"
    st.B.Scrip_soa.total_scrip
    (float_of_int st.B.Scrip_soa.total_scrip /. float_of_int n)

let render_gnutella ~jobs ~n_max ~seed =
  let tab =
    B.Tab.create
      ~title:
        (Printf.sprintf
           "gnutella free riding at scale (SoA engine, %d shards, 5 queries/user)" shards)
      [ "users"; "free riders %"; "top 1% share"; "top 10% share"; "gini" ]
  in
  List.iter
    (fun users ->
      let params =
        { (B.Gnutella.default_params ~users) with B.Gnutella.queries = 5 * users }
      in
      let st = B.Gnutella_soa.simulate ~jobs ~shards (B.Prng.create seed) params in
      B.Tab.add_row tab
        [
          string_of_int users;
          Printf.sprintf "%.1f" (100.0 *. st.B.Gnutella.free_rider_fraction);
          Printf.sprintf "%.3f" st.B.Gnutella.top1_response_share;
          Printf.sprintf "%.3f" st.B.Gnutella.top10_response_share;
          Printf.sprintf "%.3f" st.B.Gnutella.gini_load;
        ])
    (ladder ~n_max);
  B.Tab.print tab

let render_br ~n_max ~seed =
  let cost = (B.Gnutella.default_params ~users:10).B.Gnutella.cost in
  let tab =
    B.Tab.create
      ~title:
        (Printf.sprintf
           "empirical best-response kick cutoff (dominant strategy: share iff kick > cost = %.2f)"
           cost)
      [ "n kicks"; "trials"; "hit rate"; "mean |cutoff - cost|"; "mean regret/agent" ]
  in
  (* Small samples too: the heavy Zipf tail makes the estimator land off
     the dominant cutoff at n ≈ 30, and the hit rate climbing to 1 is
     the convergence claim. Trial count shrinks as n grows to bound the
     total draw budget. *)
  let ns = [ 30; 100; 1_000 ] @ List.filter (fun n -> n >= 10_000) (ladder ~n_max) in
  List.iter
    (fun n ->
      let trials = max 20 (min 400 (100_000 / n)) in
      let hits = ref 0 and gap = ref 0.0 and regret = ref 0.0 in
      for trial = 0 to trials - 1 do
        let tau, r = br_cutoff ~seed:(seed + (7919 * trial)) ~n ~cost in
        if Float.abs (tau -. cost) < 1e-9 then incr hits;
        gap := !gap +. Float.abs (tau -. cost);
        regret := !regret +. r
      done;
      let ft = float_of_int trials in
      B.Tab.add_row tab
        [
          string_of_int n;
          string_of_int trials;
          Printf.sprintf "%.2f" (float_of_int !hits /. ft);
          Printf.sprintf "%.3f" (!gap /. ft);
          Printf.sprintf "%.5f" (!regret /. ft);
        ])
    ns;
  B.Tab.print tab

let render ?(jobs = 1) ?(n_max = 100_000) ?(seed = 2008) () =
  render_gof ~jobs ~n_max ~seed;
  render_mixed ~jobs ~n_max ~seed;
  render_gnutella ~jobs ~n_max ~seed;
  render_br ~n_max ~seed
