(** E16 (extension) — asynchronous cheap-talk mediators
    (arXiv:1806.01214, arXiv:2309.14618).

    §2's characterization assumes synchrony; its successors move the story
    to asynchronous networks (implementable iff [n > 4(k+t)]) and to
    sequential rationality. E16 renders the mediator sweep: the (n,k,t)
    grid classified in both settings, the sequential-equilibrium
    cross-checks, and Explore-witnessed boundaries — zero violations on
    the possibility side, shrunk locally-minimal counterexamples (and
    their replay lines) on the impossibility side. *)

let name = "E16"
let title = "asynchronous mediators: explore-witnessed (n,k,t) regime boundaries"

let run ?(jobs = 1) () = Mediator_sweep.render ~jobs ~trials:50 ~seed:16 ()
