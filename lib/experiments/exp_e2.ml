(** E2 — §2 bargaining game: k-resilient for every k, yet not 1-immune.

    Also exhibits the (k+t)-punishment profile that the mediator
    characterization (E3) requires. *)

module B = Beyond_nash

let name = "E2"
let title = "bargaining game: resilience vs immunity of all-stay"

let run ?jobs:_ () =
  let tab =
    B.Tab.create ~title
      [ "n"; "Nash"; "max k (resilience)"; "1-immune"; "max t (immunity)"; "punishment profile" ]
  in
  List.iter
    (fun n ->
      let g = B.Games.bargaining n in
      let stay = B.Mixed.pure_profile g (Array.make n 0) in
      let punishment =
        match B.Robust.find_punishment g ~target:(Array.make n 2.0) ~budget:1 with
        | Some rho ->
          String.concat "" (List.map (fun a -> if a = 1 then "L" else "S") (Array.to_list rho))
        | None -> "none"
      in
      B.Tab.add_row tab
        [
          string_of_int n;
          string_of_bool (B.Nash.is_nash g stay);
          string_of_int (B.Robust.max_resilience g stay);
          string_of_bool (B.Robust.is_t_immune g stay ~t:1);
          string_of_int (B.Robust.max_immunity g stay);
          punishment;
        ])
    [ 3; 4; 5 ];
  B.Tab.print tab;
  let g = B.Games.bargaining 4 in
  let stay = B.Mixed.pure_profile g (Array.make 4 0) in
  (match B.Robust.check_immunity g stay ~t:1 with
  | B.Robust.Fails v ->
    B.Out.printf
      "immunity witness (n=4): player %s leaves; non-deviator %d falls %.0f -> %.0f\n\n"
      (String.concat "," (List.map string_of_int v.B.Robust.traitors))
      v.B.Robust.victim v.B.Robust.before v.B.Robust.after
  | B.Robust.Holds -> ())
