(** E6 — Example 3.1, the primality game.

    Expected utility of each machine as the input bit-length grows, under a
    per-modular-multiplication charge. Classical Nash says "answer
    correctly"; the computational equilibrium switches to "play safe" past
    a crossover bit-length. *)

module B = Beyond_nash
module P = B.Primality

let name = "E6"
let title = "primality game: guess vs safe under computation costs"

let run ?jobs:_ () =
  let cost = 0.05 in
  let rng = B.Prng.create 4242 in
  let tab =
    B.Tab.create
      ~title:(Printf.sprintf "%s (cost/op = %.2f)" title cost)
      [ "bits"; "solve"; "safe"; "guess-prime"; "guess-composite"; "equilibrium" ]
  in
  List.iter
    (fun bits ->
      let spec = P.default_spec ~bits ~cost_per_op:cost in
      let us = P.utilities (B.Prng.split rng (2 * bits)) spec in
      let eq = P.machine_names.(P.equilibrium_choice (B.Prng.split rng (2 * bits + 1)) spec) in
      B.Tab.add_row tab
        (string_of_int bits
        :: List.map (fun name -> B.Tab.fmt_float (List.assoc name us))
             [ "solve"; "safe"; "guess-prime"; "guess-composite" ]
        @ [ eq ]))
    [ 6; 8; 12; 16; 20; 24; 28; 32; 40 ];
  B.Tab.print tab;
  (match P.crossover_bits rng ~cost_per_op:cost with
  | Some b -> B.Out.printf "crossover: safe overtakes solve at %d bits\n" b
  | None -> B.Out.print_endline "no crossover in range");
  (* Cost sweep: the crossover moves with the price of computation. *)
  let tab2 = B.Tab.create ~title:"crossover bit-length vs cost per operation" [ "cost/op"; "crossover bits" ] in
  List.iter
    (fun c ->
      let b =
        match P.crossover_bits rng ~cost_per_op:c with
        | Some b -> string_of_int b
        | None -> "> 48"
      in
      B.Tab.add_row tab2 [ B.Tab.fmt_float c; b ])
    [ 0.01; 0.02; 0.05; 0.1; 0.2 ];
  B.Tab.print tab2
