(** Registry of the paper-reproduction experiments E1–E12 and the extension
    experiments E13–E17 (correlated-equilibrium mediator value, rational
    secret sharing, asynchronous scheduling, the asynchronous-mediator
    regime sweep, and the million-agent SoA scrip/free-riding runs).

    Each entry regenerates one table/claim of Halpern (PODC 2008); the
    mapping to paper sections is in DESIGN.md §4 and the measured outcomes
    are recorded in EXPERIMENTS.md.

    Every experiment takes [?jobs] — the domain budget for its internal
    parallel loops (coalition enumeration, Monte Carlo trials, scenario
    sweeps) — and prints through {!Bn_util.Out}, which is what lets
    {!run_all} render experiments concurrently and still emit the
    byte-exact serial transcript. The contract, pinned down by
    [test/test_determinism.ml]: output is identical for every [jobs]. *)

module Obs = Bn_obs.Obs

let c_rendered = Obs.counter "experiments.rendered"

type entry = string * string * (?jobs:int -> unit -> unit)

let all : entry list =
  [
    (Exp_e1.name, Exp_e1.title, Exp_e1.run);
    (Exp_e2.name, Exp_e2.title, Exp_e2.run);
    (Exp_e3.name, Exp_e3.title, Exp_e3.run);
    (Exp_e4.name, Exp_e4.title, Exp_e4.run);
    (Exp_e5.name, Exp_e5.title, Exp_e5.run);
    (Exp_e6.name, Exp_e6.title, Exp_e6.run);
    (Exp_e7.name, Exp_e7.title, Exp_e7.run);
    (Exp_e8.name, Exp_e8.title, Exp_e8.run);
    (Exp_e9.name, Exp_e9.title, Exp_e9.run);
    (Exp_e10.name, Exp_e10.title, Exp_e10.run);
    (Exp_e11.name, Exp_e11.title, Exp_e11.run);
    (Exp_e12.name, Exp_e12.title, Exp_e12.run);
    (Exp_e13.name, Exp_e13.title, Exp_e13.run);
    (Exp_e14.name, Exp_e14.title, Exp_e14.run);
    (Exp_e15.name, Exp_e15.title, Exp_e15.run);
    (Exp_e16.name, Exp_e16.title, Exp_e16.run);
    (Exp_e17.name, Exp_e17.title, Exp_e17.run);
  ]

let find id = List.find_opt (fun (name, _, _) -> String.lowercase_ascii name = String.lowercase_ascii id) all

let sk_render_ns = Obs.sketch ~kind:Obs.Volatile "exp.render_ns"

let render_entry ~jobs ((name, title, run) : entry) =
  Obs.incr c_rendered;
  let t0 = Obs.now_us () and spans0 = Obs.span_count () in
  let transcript =
    Obs.span ("exp." ^ name) (fun () ->
        Obs.timed sk_render_ns (fun () ->
            Bn_util.Out.with_capture (fun () ->
                Bn_util.Out.printf "######## %s: %s ########\n\n" name title;
                run ~jobs ())))
  in
  (* --progress: one stderr line as each experiment completes, so long
     runs are not silent. stderr only (stdout stays byte-identical);
     the span count is a global delta, approximate when experiments
     render concurrently. *)
  if Obs.progress_enabled () then
    Printf.eprintf "[progress] %-4s done  %8.1f ms  %d spans\n%!" name
      ((Obs.now_us () -. t0) /. 1e3)
      (Obs.span_count () - spans0);
  transcript

let render ?(jobs = 1) id = Option.map (render_entry ~jobs) (find id)

let run_all ?(jobs = 1) () =
  (* Each experiment renders into its own buffer on the pool; printing in
     registry order afterwards keeps the transcript byte-identical to the
     serial run no matter how domains interleave. *)
  let pool = Bn_util.Pool.create ~domains:jobs () in
  List.iter Bn_util.Out.print_string (Bn_util.Pool.map pool (render_entry ~jobs) all)
