(** E9 — games with awareness: the paper's Figures 1-3 example.

    One registered experiment of {!Experiments.all}; everything beyond the
    registry triple (internal helpers, protocol scaffolding) is private. *)

val name : string
val title : string

val run : ?jobs:int -> unit -> unit
(** Regenerate the table(s) through {!Bn_util.Out}; [jobs] bounds the
    domain budget of any internal parallel loops. Output is byte-identical
    for every [jobs]. *)
