(** E17 (extension) — million-agent scrip & free riding on the sharded
    SoA store: the {!Scrip_sweep} goodness-of-fit ladder against the
    analytic steady state, the mixed hoarder/altruist population,
    Gnutella free riding at scale, and the best-response cutoff sweep. *)

val name : string
val title : string
val run : ?jobs:int -> unit -> unit
