(** E11 — §5: scrip systems (Kash–Friedman–Halpern).

    Efficiency as a function of the money supply (including the monetary
    crash once everyone sits at its threshold), the impact of the paper's
    two "standard irrational" behaviours — hoarders and altruists — and the
    empirical best-response structure of threshold strategies. *)

module B = Beyond_nash
module S = B.Scrip

let name = "E11"
let title = "scrip systems: efficiency, crashes, hoarders, altruists"

let run ?jobs:_ () =
  let n = 40 in
  let params = S.default_params ~n in
  let threshold = 5 in
  let tab =
    B.Tab.create ~title:"efficiency vs money supply (all Standard k=5)"
      [ "money/agent"; "efficiency"; "starved"; "no volunteer" ]
  in
  List.iter
    (fun m ->
      let rng = B.Prng.create 11 in
      let st = S.simulate rng params ~kinds:(Array.make n (S.Standard threshold)) ~money_per_agent:m in
      B.Tab.add_row tab
        [
          B.Tab.fmt_float m;
          B.Tab.fmt_float (S.efficiency params st);
          string_of_int st.S.starved;
          string_of_int st.S.unserved;
        ])
    [ 0.5; 1.0; 2.0; 3.0; 4.0; 4.5; 5.0; 6.0 ];
  B.Tab.print tab;
  B.Out.print_endline
    "shape check: efficiency rises with the money supply and crashes once money/agent reaches\n\
     the threshold (nobody volunteers) — the KFH monetary crash.\n";
  (* Hoarders and altruists. *)
  let tab2 =
    B.Tab.create ~title:"standard agents' average utility vs population mix (money/agent = 2)"
      [ "mix"; "avg utility (standard)"; "efficiency" ]
  in
  let run_mix label kinds =
    let rng = B.Prng.create 12 in
    let st = S.simulate rng params ~kinds ~money_per_agent:2.0 in
    let standard i = match kinds.(i) with S.Standard _ -> true | S.Hoarder | S.Altruist -> false in
    B.Tab.add_row tab2
      [
        label;
        B.Tab.fmt_float (S.avg_utility st ~who:standard);
        B.Tab.fmt_float (S.efficiency params st);
      ]
  in
  run_mix "40 standard" (Array.make n (S.Standard threshold));
  run_mix "34 standard + 6 altruists"
    (Array.init n (fun i -> if i < 6 then S.Altruist else S.Standard threshold));
  run_mix "34 standard + 6 hoarders"
    (Array.init n (fun i -> if i < 6 then S.Hoarder else S.Standard threshold));
  B.Tab.print tab2;
  B.Out.print_endline
    "shape check: altruists raise everyone else's welfare (free service, scrip untouched);\n\
     hoarders soak up scrip and leave standard agents starved more often.\n";
  (* Threshold best responses. *)
  let tab3 =
    B.Tab.create ~title:"empirical best response to a common threshold (money/agent = 2)"
      [ "others play k"; "best response k*"; "utility at k*" ]
  in
  let rng = B.Prng.create 13 in
  List.iter
    (fun k ->
      let bt, bu =
        S.best_threshold rng params ~others:k ~money_per_agent:2.0
          ~candidates:[ 1; 2; 3; 5; 8; 12; 20 ]
      in
      B.Tab.add_row tab3 [ string_of_int k; string_of_int bt; B.Tab.fmt_float bu ])
    [ 2; 5; 8; 12 ];
  B.Tab.print tab3;
  B.Out.print_endline
    "shape check: best responses are interior thresholds — the threshold-strategy equilibrium\n\
     structure KFH prove; hoarding (huge k) is a recognizable deviation, not a best reply.\n"
