(** E15 (extension) — asynchrony (paper §5's open direction).

    All of §2's results assume synchrony. Here a minimal flooding consensus
    (decide the minimum after hearing from everyone) runs in an
    asynchronous network that also carries unrelated background traffic (a
    self-ticking process). Under FIFO or random scheduling the background
    noise is harmless; an adversarial scheduler spends its fairness budget
    delivering background messages while starving one participant's value,
    delaying consensus linearly in the budget — and forever, were delivery
    not eventually forced. This is §5's "things are more complicated in
    asynchronous settings", made executable. *)

module B = Beyond_nash
module A = B.Async_net

let name = "E15"
let title = "asynchrony: adversarial scheduling delays consensus at will"

type msg = Value of int | Tick

type st = { seen : (int * int) list; participants : int; ticker : bool }

(* Processes 0..n-1 flood their value and decide the minimum after hearing
   all participants; process n is a ticker that endlessly messages itself —
   the background traffic an adversarial scheduler hides behind. *)
let consensus ~n ~values =
  {
    A.init =
      (fun me ->
        if me = n then ({ seen = []; participants = n; ticker = true }, [ (n, Tick) ])
        else
          ( { seen = [ (me, values.(me)) ]; participants = n; ticker = false },
            List.init n (fun j -> (j, Value values.(me))) ));
    on_message =
      (fun ~me st ~sender m ->
        ignore me;
        match m with
        | Tick -> (st, if st.ticker then [ (sender, Tick) ] else [])
        | Value v ->
          if st.ticker || List.mem_assoc sender st.seen then (st, [])
          else ({ st with seen = (sender, v) :: st.seen }, []));
    decided =
      (fun st ->
        if st.ticker then Some (-1)
        else if List.length st.seen = st.participants then
          Some (List.fold_left (fun acc (_, v) -> min acc v) max_int st.seen)
        else None);
  }

let run ?(jobs = 1) () =
  let n = 6 in
  let values = [| 3; 5; 1; 4; 2; 6 |] in
  let tab =
    B.Tab.create ~title [ "scheduler"; "steps to decision"; "all decided"; "agreement on min" ]
  in
  let describe label result =
    let participants = Array.sub result.A.decisions 0 n in
    let decided = Array.for_all (fun d -> d <> None) participants in
    let agree = Array.for_all (function Some v -> v = 1 | None -> false) participants in
    B.Tab.add_row tab
      [ label; string_of_int result.A.steps; string_of_bool decided; string_of_bool agree ]
  in
  (* The whole scheduler sweep runs as one parallel batch: every scenario
     is an independent simulation with private scheduler state, so the
     table rows match the serial sweep for any [jobs]. *)
  let rng = B.Prng.create 15 in
  let budgets = [ 10; 100; 1000; 5000 ] in
  let scenarios =
    [ ("fifo", fun () -> A.fifo); ("random", fun () -> A.random (B.Prng.copy rng)) ]
    @ List.map
        (fun budget_size ->
          ( Printf.sprintf "delayer(victim=2, budget=%d)" budget_size,
            fun () -> A.delayer ~victim:2 ~budget:(ref budget_size) ))
        budgets
  in
  let pool = B.Pool.create ~domains:jobs () in
  let results =
    A.run_scenarios ~pool ~n:(n + 1) (List.map snd scenarios) (consensus ~n ~values)
  in
  List.iter2 (fun (label, _) result -> describe label result) scenarios results;
  B.Tab.print tab;
  (* Faulty delivery on top of the scheduler: duplication is harmless to
     the flooding protocol (receipt is idempotent), but a single lost
     value message stalls consensus forever — there is no retransmission,
     exactly the "fault-free executions are not enough" point. *)
  let tab2 =
    B.Tab.create ~title:"message-level faults under the random scheduler"
      [ "faults"; "steps"; "dropped"; "all decided" ]
  in
  List.iter
    (fun (label, drop, dup) ->
      let result =
        A.run ~n:(n + 1)
          ~scheduler:(A.random (B.Prng.create 15))
          ~faults:(B.Faults.async_filter (B.Prng.create 16) ~drop ~dup)
          (consensus ~n ~values)
      in
      let participants = Array.sub result.A.decisions 0 n in
      B.Tab.add_row tab2
        [
          label;
          string_of_int result.A.steps;
          string_of_int result.A.dropped;
          string_of_bool (Array.for_all (fun d -> d <> None) participants);
        ])
    [
      ("none", 0.0, 0.0);
      ("duplicate 20%", 0.0, 0.2);
      ("drop 15%  <-- loss stalls consensus", 0.15, 0.0);
    ];
  B.Tab.print tab2;
  B.Out.print_endline
    "shape check: decision time under the adversarial scheduler grows linearly in its\n\
     fairness budget (it hides behind background traffic while starving the victim's value);\n\
     with an unbounded budget consensus would never be reached. The synchronous simulator\n\
     (E4) decides the same task in a fixed number of rounds.\n"
