(** Registry of the paper-reproduction experiments E1–E12 and the extension
    experiments E13–E17.

    Each entry regenerates one table/claim of Halpern (PODC 2008); the
    mapping to paper sections is in DESIGN.md §4 and the measured outcomes
    are recorded in EXPERIMENTS.md.

    Every experiment takes [?jobs] — the domain budget for its internal
    parallel loops — and prints through {!Bn_util.Out}, which is what lets
    {!run_all} render experiments concurrently and still emit the
    byte-exact serial transcript (pinned by [test/test_determinism.ml]). *)

type entry = string * string * (?jobs:int -> unit -> unit)
(** [(name, title, run)]. *)

val all : entry list
(** In registry (paper) order: E1 … E17. *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)

val render : ?jobs:int -> string -> string option
(** [render id] runs the experiment with its output captured into a
    buffer and returns the transcript; [None] on unknown [id]. *)

val run_all : ?jobs:int -> unit -> unit
(** Render every experiment on a [jobs]-domain pool, then print the
    transcripts in registry order — byte-identical to the serial run. *)
