(** Fault-exploration sweep over the Byzantine protocols.

    One {!config} per (protocol, regime): a seeded random-schedule
    generator plus the protocol's agreement/validity invariants checked
    over the non-culprit processes ({!Beyond_nash.Faults.mask}). Regimes
    below the fault threshold must survive every schedule; regimes at or
    above it (EIG at n = 3t, a healing-free partition) must yield a
    violation that the explorer then shrinks to a minimal counterexample.

    Shared by [bin/main.exe --explore]/[--faults], experiment E4's fault
    sweep table, the bench harness, and the test suite. Everything here is
    deterministic in (seed, trials) — independent of [-j]. *)

module B = Beyond_nash

type config = {
  cname : string;
  regime : string;
  expect_violation : bool;
  quick : bool;  (** part of the [--quick] (CI smoke) subset *)
  explore : pool:B.Pool.t -> seed:int -> trials:int -> B.Explore.report;
}

(* Rebuild a Sync_net result with culprit outputs suppressed, so the
   protocols' own agreement/validity checkers judge only the processes the
   schedule cannot blame. *)
let masked schedule (r : 'o B.Sync_net.result) =
  { r with B.Sync_net.outputs = B.Faults.mask schedule r.B.Sync_net.outputs }

let honest_values schedule values =
  let bad = B.Faults.culprits schedule in
  List.filteri (fun i _ -> not (List.mem i bad)) (Array.to_list values)

let eig_system ~n ~t ~values =
  {
    B.Explore.run =
      (fun schedule -> B.Eig.run ~faults:(B.Faults.plan schedule) ~n ~t ~values ~default:0 ());
    invariants =
      [
        ("agreement", fun s r -> B.Eig.agreement (masked s r));
        ( "validity",
          fun s r -> B.Eig.validity ~honest_values:(honest_values s values) (masked s r) );
      ];
  }

let floodset_system ~n ~f ~values =
  {
    B.Explore.run =
      (fun schedule -> B.Floodset.run ~faults:(B.Faults.plan schedule) ~n ~f ~values ());
    invariants =
      [
        ("agreement", fun s r -> B.Floodset.agreement (masked s r));
        ( "validity",
          fun s r -> B.Floodset.validity ~all_values:(Array.to_list values) (masked s r) );
      ];
  }

let phase_king_system ~n ~t ~values =
  {
    B.Explore.run =
      (fun schedule -> B.Phase_king.run ~faults:(B.Faults.plan schedule) ~n ~t ~values ());
    invariants =
      [
        ("agreement", fun s r -> B.Phase_king.agreement (masked s r));
        ( "validity",
          fun s r -> B.Phase_king.validity ~honest_values:(honest_values s values) (masked s r)
        );
      ];
  }

let dolev_strong_system ~n ~t =
  (* Deterministic PKI: same keys for every schedule of every trial. *)
  let pki = B.Hashing.Pki.create (B.Prng.create 7) ~n in
  {
    B.Explore.run =
      (fun schedule ->
        B.Dolev_strong.run ~faults:(B.Faults.plan schedule) ~pki ~n ~t ~sender:0 ~value:1
          ~default:9 ());
    invariants = [ ("agreement", fun s r -> B.Dolev_strong.agreement (masked s r)) ];
  }

let mk cname regime ~expect_violation ~quick gen sys =
  {
    cname;
    regime;
    expect_violation;
    quick;
    explore =
      (fun ~pool ~seed ~trials -> B.Explore.explore ~pool ~seed ~trials ~gen:(fun rng -> gen rng) sys);
  }

let all : config list =
  [
    mk "eig-n4-t1/crash" "below threshold (n > 3t), <=t crash-stops" ~expect_violation:false
      ~quick:true
      (fun rng -> B.Faults.random_schedule rng (B.Faults.crash_only ~n:4 ~rounds:2 ~max_crashes:1))
      (eig_system ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |]);
    mk "eig-n4-t1/omission" "below threshold, <=t culprits drop/delay/dup/crash"
      ~expect_violation:false ~quick:true
      (fun rng ->
        B.Faults.random_schedule rng
          (B.Faults.omission ~n:4 ~rounds:2 ~max_events:4 ~max_culprits:1))
      (eig_system ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |]);
    mk "eig-n3-t1/omission" "AT threshold (n = 3t): must break" ~expect_violation:true
      ~quick:true
      (fun rng ->
        B.Faults.random_schedule rng
          (B.Faults.omission ~n:3 ~rounds:2 ~max_events:4 ~max_culprits:1))
      (eig_system ~n:3 ~t:1 ~values:[| 1; 1; 1 |]);
    mk "eig-n4-t1/partition" "network partition (blames no process): must break"
      ~expect_violation:true ~quick:true
      (fun rng ->
        B.Faults.random_schedule rng
          {
            B.Faults.n = 4;
            rounds = 2;
            max_events = 2;
            kinds = [ B.Faults.KPartition ];
            max_culprits = 1;
          })
      (eig_system ~n:4 ~t:1 ~values:[| 1; 1; 1; 1 |]);
    mk "dolev-strong-n3-t1/crash" "n = 3t but PKI: agreement must survive"
      ~expect_violation:false ~quick:true
      (fun rng -> B.Faults.random_schedule rng (B.Faults.crash_only ~n:3 ~rounds:2 ~max_crashes:1))
      (dolev_strong_system ~n:3 ~t:1);
    mk "floodset-n4-f1/crash" "below threshold (any f < n), <=f crash-stops"
      ~expect_violation:false ~quick:true
      (fun rng -> B.Faults.random_schedule rng (B.Faults.crash_only ~n:4 ~rounds:2 ~max_crashes:1))
      (floodset_system ~n:4 ~f:1 ~values:[| 2; 1; 3; 2 |]);
    mk "phase-king-n5-t1/crash" "below threshold (t < n/4), <=t crash-stops"
      ~expect_violation:false ~quick:true
      (fun rng -> B.Faults.random_schedule rng (B.Faults.crash_only ~n:5 ~rounds:4 ~max_crashes:1))
      (phase_king_system ~n:5 ~t:1 ~values:[| 1; 0; 1; 1; 0 |]);
    mk "eig-n7-t2/omission" "below threshold at scale, <=t culprits" ~expect_violation:false
      ~quick:false
      (fun rng ->
        B.Faults.random_schedule rng
          (B.Faults.omission ~n:7 ~rounds:3 ~max_events:6 ~max_culprits:2))
      (eig_system ~n:7 ~t:2 ~values:[| 1; 1; 1; 1; 1; 1; 1 |]);
  ]

let configs ~quick = if quick then List.filter (fun c -> c.quick) all else all

(* Entry point used by the bench harness: the n = 3t exploration (find +
   shrink) as a single timed kernel. *)
let explore_eig_n3t1 ?(pool = B.Pool.serial) ~seed ~trials () =
  let c = List.find (fun c -> c.cname = "eig-n3-t1/omission") all in
  c.explore ~pool ~seed ~trials

let verdict c report =
  let found = report.B.Explore.violations <> [] in
  match (c.expect_violation, found) with
  | false, false -> "OK (robust)"
  | true, true -> "OK (violation found)"
  | false, true -> "UNEXPECTED VIOLATION"
  | true, false -> "violation NOT found"

(* Render the sweep: one row per config, then a replayable transcript for
   each config that produced violations. Deterministic in (seed, trials);
   [jobs] only changes wall-clock. *)
let render ?(jobs = 1) ?(quick = false) ~trials ~seed () =
  let pool = B.Pool.create ~domains:jobs () in
  let tab =
    B.Tab.create
      ~title:
        (Printf.sprintf "fault-schedule exploration (seed=%d, %d schedules/config)" seed trials)
      [ "config"; "regime"; "violations"; "min shrunk"; "verdict" ]
  in
  let reports =
    List.map (fun c -> (c, c.explore ~pool ~seed ~trials)) (configs ~quick)
  in
  List.iter
    (fun (c, report) ->
      let shrunk = B.Explore.min_shrunk_size report in
      B.Tab.add_row tab
        [
          c.cname;
          c.regime;
          Printf.sprintf "%d/%d" (List.length report.B.Explore.violations) trials;
          (if shrunk = max_int then "-" else string_of_int shrunk);
          verdict c report;
        ])
    reports;
  B.Tab.print tab;
  List.iter
    (fun (c, report) ->
      if report.B.Explore.violations <> [] then
        B.Out.print_string (B.Explore.transcript ~name:c.cname report))
    reports;
  B.Out.print_string "\n"

(* [--faults] demo: inject one concrete schedule into EIG and show the
   effect next to the fault-free run — the single-schedule face of the
   explorer above. *)
let demo ~seed () =
  let n, t = (4, 1) in
  let values = [| 1; 1; 1; 1 |] in
  let schedule =
    B.Faults.random_schedule (B.Prng.create seed)
      (B.Faults.omission ~n ~rounds:(t + 1) ~max_events:3 ~max_culprits:t)
  in
  let tab =
    B.Tab.create
      ~title:(Printf.sprintf "fault injection demo: EIG n=%d t=%d, seed=%d" n t seed)
      [ "run"; "schedule"; "agreement"; "validity"; "msgs"; "dropped" ]
  in
  let row label faults schedule_str =
    let r = B.Eig.run ?faults ~n ~t ~values ~default:0 () in
    let m = match faults with None -> r | Some _ -> masked schedule r in
    B.Tab.add_row tab
      [
        label;
        schedule_str;
        string_of_bool (B.Eig.agreement m);
        string_of_bool (B.Eig.validity ~honest_values:(honest_values schedule values) m);
        string_of_int r.B.Sync_net.messages_sent;
        string_of_int r.B.Sync_net.messages_dropped;
      ]
  in
  row "fault-free" None "[]";
  row "faulty" (Some (B.Faults.plan schedule)) (B.Faults.schedule_to_string schedule);
  B.Tab.print tab
