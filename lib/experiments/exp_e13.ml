(** E13 (extension) — the value of a mediator: correlated equilibria beyond
    the Nash hull.

    §2's mediators are correlation devices. In chicken, the welfare-optimal
    correlated equilibrium strictly beats every Nash equilibrium — the
    quantitative reason implementing mediators by cheap talk (E5) is worth
    the trouble. *)

module B = Beyond_nash

let name = "E13"
let title = "mediator value: correlated equilibrium vs Nash (chicken)"

let run ?(jobs = 1) () =
  let g = B.Games.chicken in
  let tab = B.Tab.create ~title [ "solution"; "distribution"; "welfare (u1+u2)" ] in
  let show_dist d =
    String.concat " "
      (List.map
         (fun (s, p) ->
           Printf.sprintf "%s%s:%.2f"
             (String.sub (B.Normal_form.action_name g 0 s.(0)) 0 1)
             (String.sub (B.Normal_form.action_name g 1 s.(1)) 0 1)
             p)
         (B.Dist.to_list d))
  in
  List.iter
    (fun prof ->
      let welfare =
        B.Mixed.expected_payoff g prof 0 +. B.Mixed.expected_payoff g prof 1
      in
      B.Tab.add_row tab
        [ "Nash"; show_dist (B.Correlated.of_mixed g prof); B.Tab.fmt_float welfare ])
    (B.Nash.support_enumeration_2p g);
  (match B.Correlated.max_welfare g with
  | Some (d, welfare) ->
    B.Tab.add_row tab [ "correlated (max welfare)"; show_dist d; B.Tab.fmt_float welfare ];
    assert (B.Correlated.is_correlated_equilibrium g d)
  | None -> B.Tab.add_row tab [ "correlated"; "LP failed"; "-" ]);
  (match B.Correlated.max_player g ~player:0 with
  | Some (d, v) ->
    B.Tab.add_row tab
      [ "correlated (max player 1)"; show_dist d; Printf.sprintf "u1 = %s" (B.Tab.fmt_float v) ]
  | None -> ());
  B.Tab.print tab;
  (* Sunspots: what two players CAN do with public coins alone. *)
  let sunspot_w = B.Sunspot.best_sunspot_welfare g in
  let gap = B.Sunspot.mediator_gap g in
  B.Out.printf
    "public randomness (commit-reveal sunspots, implementable at n=2): best welfare %s;\n\
     private-mediation gap = %s — exactly what the paper's thresholds say two players\n\
     cannot get by bare cheap talk (n = 2 <= 2k+2t for (k,t) = (1,0)).\n\n"
    (B.Tab.fmt_float sunspot_w) (B.Tab.fmt_float gap);
  let fair =
    B.Sunspot.make
      (List.filteri (fun i _ -> i < 2)
         (List.map (fun p -> (0.5, p)) (B.Nash.support_enumeration_2p g)))
  in
  let rng = B.Prng.create 13 in
  let acts, payoffs = B.Sunspot.sample_and_play rng g fair in
  B.Out.printf
    "sample sunspot run (50/50 over the two pure equilibria): played (%s,%s), payoffs (%s,%s)\n\n"
    (B.Normal_form.action_name g 0 acts.(0))
    (B.Normal_form.action_name g 1 acts.(1))
    (B.Tab.fmt_float payoffs.(0)) (B.Tab.fmt_float payoffs.(1));
  (* Monte Carlo over the sunspot: empirical play frequencies and mean
     welfare. Trial i draws from the i-th split stream and writes slot i,
     so the table is bit-identical at any [jobs]. *)
  let trials = 20_000 in
  let pool = B.Pool.create ~domains:jobs () in
  let played = Array.make trials [||] and welfare = Array.make trials 0.0 in
  B.Pool.iter_grid pool
    (fun i ->
      let a, pay = B.Sunspot.sample_and_play (B.Prng.split rng i) g fair in
      played.(i) <- a;
      welfare.(i) <- pay.(0) +. pay.(1))
    (Array.init trials Fun.id);
  let mc = B.Tab.create ~title:"sunspot Monte Carlo (20k trials)" [ "outcome"; "frequency" ] in
  List.iter
    (fun eq ->
      let hits = Array.fold_left (fun acc a -> if a = eq then acc + 1 else acc) 0 played in
      B.Tab.add_row mc
        [
          Printf.sprintf "(%s,%s)"
            (B.Normal_form.action_name g 0 eq.(0))
            (B.Normal_form.action_name g 1 eq.(1));
          B.Tab.fmt_float (float_of_int hits /. float_of_int trials);
        ])
    (List.sort_uniq compare (Array.to_list played));
  B.Tab.add_row mc
    [ "mean welfare"; B.Tab.fmt_float (Array.fold_left ( +. ) 0.0 welfare /. float_of_int trials) ];
  B.Tab.print mc;
  B.Out.print_endline
    "shape check: the welfare-maximizing correlated equilibrium exceeds every Nash\n\
     equilibrium's welfare — the payoff a mediator (or its cheap-talk implementation)\n\
     unlocks.\n"
