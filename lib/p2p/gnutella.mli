(** Free riding in peer-to-peer file sharing (paper §2's Gnutella
    discussion; Adar–Huberman 2000).

    Whether a user can download depends only on {e others} sharing, and
    sharing has costs (bandwidth, lawsuits), so the dominant strategy of a
    standard-utility user is to share nothing — yet ~30% of Gnutella hosts
    shared, and the top 1% of hosts served ~50% of responses. The paper's
    reading: sharing hosts plausibly have non-standard utilities (a "kick"
    from providing the music).

    Two views are provided: a small analytic normal-form game (free riding
    is dominance-solvable for standard players) and a population simulation
    with heterogeneous, Zipf-distributed kicks calibrated to reproduce the
    Adar–Huberman shape. *)

type params = {
  users : int;
  cost : float;  (** Cost of sharing. *)
  kick_scale : float;  (** Scale of the Zipf-distributed kick. *)
  zipf_exponent : float;  (** Tail exponent (≈ 1.2 reproduces the shape). *)
  queries : int;  (** Queries routed in the simulation. *)
}

val default_params : users:int -> params

type stats = {
  sharers : int;
  free_rider_fraction : float;
  top1_response_share : float;  (** Fraction of responses served by the top 1% of hosts. *)
  top10_response_share : float;
  gini_load : float;  (** Inequality of the serving load. *)
}

val zipf_sample : Bn_util.Prng.t -> scale:float -> exponent:float -> float
(** One heavy-tailed kick: [scale / u^(1/exponent)] for uniform [u].
    Exposed so {!Gnutella_soa} draws bitwise-identical kicks. *)

val stats_of_load : users:int -> sharers:int -> served:int array -> stats
(** Load-concentration statistics (top-1% / top-10% response share, Gini)
    from raw per-host serve counts — the common back end of {!simulate}
    and {!Gnutella_soa.simulate}, kept separate so the two engines
    produce structurally identical [stats] from identical loads. *)

val simulate : Bn_util.Prng.t -> params -> stats
(** User [i] draws kick [k_i]; shares iff [k_i > cost]; sharers hold a
    Zipf-sized library and serve queries with probability proportional to
    library size.

    The boxed loop routes each query with an O(users) linear scan —
    fine up to users ≈ 10³. For large populations use
    {!Gnutella_soa.simulate}: identical stats at [shards = 1]
    (QCheck-pinned), O(log users) routing, and sharded deterministic
    parallelism. *)

val sharing_game :
  n:int -> cost:float -> kicks:float array -> download_value:float ->
  Bn_game.Normal_form.t
(** The analytic n-player game: action 1 = share. Payoff of [i]:
    [download_value · 1{someone else shares} − cost·a_i + kicks.(i)·a_i].
    For a player with [kicks.(i) < cost], not sharing strictly dominates —
    so with homogeneous standard utilities the unique equilibrium is
    nobody-shares, the free-riding paradox. *)

val free_riding_equilibrium : n:int -> cost:float -> download_value:float -> bool
(** Whether all-free-ride is the unique outcome of iterated strict
    dominance for standard (kick = 0) users. *)
