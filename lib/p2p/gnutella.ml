type params = {
  users : int;
  cost : float;
  kick_scale : float;
  zipf_exponent : float;
  queries : int;
}

let default_params ~users =
  { users; cost = 1.0; kick_scale = 0.367; zipf_exponent = 1.2; queries = 50 * users }

type stats = {
  sharers : int;
  free_rider_fraction : float;
  top1_response_share : float;
  top10_response_share : float;
  gini_load : float;
}

(* A Zipf-ish heavy-tailed sample: scale / u^(1/exponent). *)
let zipf_sample rng ~scale ~exponent =
  let u = 1.0 -. Bn_util.Prng.float rng in
  scale /. (u ** (1.0 /. exponent))

(* Load-concentration statistics from the raw serve counts: shared by
   the boxed simulation below and the SoA engine ([Gnutella_soa]), which
   is QCheck-pinned to produce identical stats at shards = 1 — so this
   must stay a pure function of (users, sharers, served). *)
let stats_of_load ~users ~sharers ~served =
  let total_served = Array.fold_left ( + ) 0 served in
  let sorted = Array.copy served in
  Array.sort (fun a b -> compare b a) sorted;
  let top_share pct =
    if total_served = 0 then 0.0
    else begin
      let k = max 1 (users * pct / 100) in
      let top = ref 0 in
      for i = 0 to k - 1 do
        top := !top + sorted.(i)
      done;
      float_of_int !top /. float_of_int total_served
    end
  in
  {
    sharers;
    free_rider_fraction = 1.0 -. (float_of_int sharers /. float_of_int users);
    top1_response_share = top_share 1;
    top10_response_share = top_share 10;
    gini_load = Bn_util.Stats.gini (List.map float_of_int (Array.to_list served));
  }

let simulate rng params =
  let { users; cost; kick_scale; zipf_exponent; queries } = params in
  if users < 10 then invalid_arg "Gnutella.simulate: need at least 10 users";
  let kicks =
    Array.init users (fun _ -> zipf_sample rng ~scale:kick_scale ~exponent:zipf_exponent)
  in
  (* Dominant-strategy sharing decision: share iff the kick beats the cost. *)
  let shares = Array.map (fun k -> k > cost) kicks in
  let library i = if shares.(i) then Float.max 0.0 (kicks.(i) -. cost) else 0.0 in
  let libraries = Array.init users library in
  let total_library = Array.fold_left ( +. ) 0.0 libraries in
  let served = Array.make users 0 in
  if total_library > 0.0 then
    for _ = 1 to queries do
      (* Route the query to a host with probability proportional to its
         shared library. *)
      let x = Bn_util.Prng.float rng *. total_library in
      let rec pick i acc =
        if i >= users - 1 then i
        else begin
          let acc = acc +. libraries.(i) in
          if x < acc then i else pick (i + 1) acc
        end
      in
      let host = pick 0 0.0 in
      served.(host) <- served.(host) + 1
    done;
  let sharers = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 shares in
  stats_of_load ~users ~sharers ~served

let sharing_game ~n ~cost ~kicks ~download_value =
  if Array.length kicks <> n then invalid_arg "Gnutella.sharing_game: kicks arity";
  Bn_game.Normal_form.create
    ~action_names:(Array.make n [| "freeride"; "share" |])
    ~actions:(Array.make n 2)
    (fun p ->
      Array.init n (fun i ->
          let others_share = Array.exists (fun j -> j <> i && p.(j) = 1) (Array.init n Fun.id) in
          let dl = if others_share then download_value else 0.0 in
          dl +. if p.(i) = 1 then kicks.(i) -. cost else 0.0))

let free_riding_equilibrium ~n ~cost ~download_value =
  let game = sharing_game ~n ~cost ~kicks:(Array.make n 0.0) ~download_value in
  match Bn_game.Dominance.solves_by_dominance game with
  | Some profile -> Array.for_all (( = ) 0) profile
  | None -> false
