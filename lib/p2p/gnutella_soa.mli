(** Million-user Gnutella free-riding simulation on the SoA store.

    Same model as {!Gnutella.simulate} — Zipf kicks, share iff the kick
    beats the cost, queries routed with probability proportional to
    shared library size — rebuilt for n → ∞ populations: kicks and
    library prefix sums live in flat {!Bn_agents.Soa.F64} columns, a
    query routes in O(log users) (binary search over per-shard bases,
    then within the owning shard) instead of the boxed loop's O(users)
    scan, and serve counts cross shards through the
    {!Bn_agents.Soa.Exchange}, flushed once per query batch.

    At [shards = 1] the engine consumes the caller's generator in
    exactly the boxed loop's draw order, and the serially-built prefix
    sums make the binary search return the same host as the linear scan
    on every query — so the returned {!Gnutella.stats} record is
    {e identical} (QCheck-pinned in test/test_scrip_p2p.ml). With
    [shards > 1] each shard draws kicks and queries from its own
    {!Bn_util.Prng.split} stream: a different (equally valid) sample of
    the same population model, byte-identical at any [?jobs]. *)

val batch_queries : int
(** Queries routed between exchange flushes (2²⁰): bounds the exchange
    buffer footprint at ~16 MB regardless of [params.queries]. *)

val simulate :
  ?jobs:int -> ?shards:int -> Bn_util.Prng.t -> Gnutella.params -> Gnutella.stats
(** [shards] defaults to 1 (the bitwise-compatible mode); [jobs]
    defaults to 1. Shard and batch boundaries depend only on
    [(users, queries, shards)], never on [jobs]. *)
