(* SoA Gnutella engine. Two regimes share all the machinery:

   - shards = 1: draws come sequentially from the caller's rng in the
     boxed loop's order (kicks first, then one float per query), so the
     stats are bitwise those of [Gnutella.simulate] — the QCheck pin
     that the columns / prefix sums / exchange plumbing is faithful.
   - shards > 1: per-shard split streams (kicks: index s; queries:
     index shards + b·shards + s for batch b), deterministic at any
     [jobs] because the parallel phases only write shard-local column
     ranges and post serve events to the exchange. *)

module Soa = Bn_agents.Soa
module Prng = Bn_util.Prng
module Pool = Bn_util.Pool
module Obs = Bn_obs.Obs

let c_queries = Obs.counter ~kind:Obs.Det "gnutella_soa.queries"
let c_cross = Obs.counter ~kind:Obs.Det "gnutella_soa.cross_shard_events"
let c_flushes = Obs.counter ~kind:Obs.Det "gnutella_soa.flushes"

(* Batch sizing is derived from [queries]/[batch_queries] only, so its
   distribution is Det; the per-batch wall time is Volatile. *)
let sk_batch_q = Obs.sketch ~kind:Obs.Det "gnutella_soa.queries_per_batch"
let sk_batch_ns = Obs.sketch ~kind:Obs.Volatile "gnutella_soa.batch_ns"

let batch_queries = 1 lsl 20

let simulate ?(jobs = 1) ?(shards = 1) rng params =
  let { Gnutella.users; cost; kick_scale; zipf_exponent; queries } = params in
  if users < 10 then invalid_arg "Gnutella_soa.simulate: need at least 10 users";
  let part = Soa.partition ~n:users ~shards in
  let shards = Soa.shards part in
  let pool = Pool.create ~domains:jobs () in
  let shard_ids = Array.init shards Fun.id in
  (* lib.(i) = shared library size; cum.(i) = left-fold prefix
     lib.(lo) + … + lib.(i) within agent i's shard — at shards = 1 this
     is exactly the boxed loop's running accumulator, so the binary
     search below picks the same host as its linear scan. *)
  let lib = Soa.F64.create users in
  let cum = Soa.F64.create users in
  let sharer_tally = Array.make shards 0 in
  Pool.iter_grid pool
    (fun s ->
      let rng = if shards = 1 then rng else Prng.split rng s in
      let lo, hi = Soa.bounds part s in
      let sharers = ref 0 in
      let acc = ref 0.0 in
      for i = lo to hi - 1 do
        let kick = Gnutella.zipf_sample rng ~scale:kick_scale ~exponent:zipf_exponent in
        let l = if kick > cost then Float.max 0.0 (kick -. cost) else 0.0 in
        if kick > cost then incr sharers;
        Soa.F64.uset lib i l;
        acc := !acc +. l;
        Soa.F64.uset cum i !acc
      done;
      sharer_tally.(s) <- !sharers)
    shard_ids;
  let sharers = Array.fold_left ( + ) 0 sharer_tally in
  (* Per-shard library mass, folded in shard order: base.(s) is the mass
     strictly before shard s, base.(shards) the grand total — at
     shards = 1 the same left-fold float as the boxed loop's total. *)
  let base = Array.make (shards + 1) 0.0 in
  for s = 0 to shards - 1 do
    let lo, hi = Soa.bounds part s in
    base.(s + 1) <- base.(s) +. (if hi > lo then Soa.F64.uget cum (hi - 1) else 0.0)
  done;
  let total_library = base.(shards) in
  let served = Soa.I32.create users in
  let ex = Soa.Exchange.create ~shards in
  (* Route x ∈ [0, total): owning shard by scan over the (few) bases,
     then binary search for the first i in the shard with x' < cum.(i);
     clamped to the last host like the boxed loop. *)
  let route x =
    let s = ref 0 in
    while !s < shards - 1 && x >= base.(!s + 1) do
      incr s
    done;
    let lo, hi = Soa.bounds part !s in
    let x' = x -. base.(!s) in
    let l = ref lo and h = ref (hi - 1) in
    while !l < !h do
      let mid = (!l + !h) / 2 in
      if x' < Soa.F64.uget cum mid then h := mid else l := mid + 1
    done;
    (!s, !l)
  in
  let cross = ref 0 and flushes = ref 0 in
  if total_library > 0.0 && queries > 0 then begin
    let batches = Soa.partition ~n:queries ~shards:((queries + batch_queries - 1) / batch_queries) in
    for b = 0 to Soa.shards batches - 1 do
      let bq_lo, bq_hi = Soa.bounds batches b in
      Obs.observe_sk sk_batch_q (bq_hi - bq_lo);
      Obs.timed sk_batch_ns @@ fun () ->
      let qpart = Soa.partition ~n:(bq_hi - bq_lo) ~shards in
      let cross_tally = Array.make shards 0 in
      Pool.iter_grid pool
        (fun s ->
          let rng =
            if shards = 1 then rng
            else Prng.split rng (shards + (b * shards) + s)
          in
          let qlo, qhi = Soa.bounds qpart s in
          for _ = qlo to qhi - 1 do
            let x = Prng.float rng *. total_library in
            let dst, host = route x in
            if dst <> s then cross_tally.(s) <- cross_tally.(s) + 1;
            Soa.Exchange.post ex ~src:s ~dst host 1
          done)
        shard_ids;
      Array.iter (fun c -> cross := !cross + c) cross_tally;
      let _replayed =
        Soa.Exchange.flush ex (fun ~src:_ ~dst:_ host inc ->
            Soa.I32.uset served host (Soa.I32.uget served host + inc))
      in
      incr flushes
    done
  end;
  Obs.add c_queries queries;
  Obs.add c_cross !cross;
  Obs.add c_flushes !flushes;
  Gnutella.stats_of_load ~users ~sharers ~served:(Soa.I32.to_array served)
