(** Scope-aware expression walking, shared by the whole-program analyses.

    {!Callgraph} (edge collection), {!Effects} (seed detection) and
    {!Races} (captured-write detection) all need the same primitive: a
    walk over an expression that knows, at every node, which value names
    were bound {e between the walk's root and that node}. That is what
    separates a closure-local [ref] (fine in a parallel region) from a
    captured one (a race), and a chunk-derived index from a constant
    one. *)

type env
(** The set of value names bound since the walk's root. *)

val empty : env
val mem : string -> env -> bool
val add_pat : env -> Parsetree.pattern -> env

val pat_vars : Parsetree.pattern -> string list
(** All variables bound by a pattern ([Ppat_var] and [Ppat_alias]). *)

val flatten : Longident.t -> string list

val path : Longident.t -> string list
(** {!flatten} with a leading [Stdlib.] stripped, so [Stdlib.Random.int]
    and [Random.int] compare equal. *)

val idents : Parsetree.expression -> string list list
(** Every value-identifier occurrence in the expression, normalized. *)

val mentions : env -> Parsetree.expression -> bool
(** Does the expression mention any unqualified name bound in [env]?
    The "index is derived from the chunk/shard parameter" test. *)

val iter_expr :
  env:env -> (env:env -> Parsetree.expression -> unit) -> Parsetree.expression -> unit
(** Pre-order walk calling the callback on every expression node with
    the bindings accumulated from the root. Handles every binding form
    ([fun], [let], [match]/[try]/[function] cases, [for], [let+]);
    module expressions embedded in expressions are walked for the value
    bindings they contain. *)
