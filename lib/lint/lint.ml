type report = {
  findings : Finding.t list;
  files_scanned : int;
  dune_files : int;
  graph : Callgraph.t;
  effects : Effects.table;
}

exception Invalid_root of string

(* {1 Parsing} *)

let parse_lexbuf ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  lexbuf

type parsed =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Broken of string

let parse_file ~file source =
  match
    if Filename.check_suffix file ".mli" then Intf (Parse.interface (parse_lexbuf ~file source))
    else Impl (Parse.implementation (parse_lexbuf ~file source))
  with
  | parsed -> parsed
  | exception Syntaxerr.Error _ -> Broken "syntax error"
  | exception exn -> Broken (Printexc.to_string exn)

(* Per-file rule findings + the file's allow attributes, not yet applied
   (tree-level findings must be suppressible from the same file). *)
let check_parsed ~file = function
  | Impl str -> (Rules.check_structure ~file str, Allow.scan_structure str)
  | Intf sg -> (Rules.check_signature ~file sg, Allow.scan_signature sg)
  | Broken msg ->
    ([ Finding.v ~rule:"E000" ~file ~line:1 ~col:0 (Printf.sprintf "parse failed: %s" msg) ], [])

let lint_source ~file source =
  let findings, allows = check_parsed ~file (parse_file ~file source) in
  List.sort Finding.compare (Allow.apply ~file allows findings)

(* {1 Tree walking} *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let roots = [ "lib"; "bin"; "bench"; "test" ]

(* All regular files under [root]/{lib,bin,bench,test}, repo-relative with
   '/' separators, sorted — directory enumeration order must never reach
   the report. Skips dot- and _build-style directories. *)
let walk ~root =
  let skip name = name = "" || name.[0] = '.' || name.[0] = '_' in
  let rec go rel acc =
    let abs = Filename.concat root rel in
    if Sys.is_directory abs then
      Array.fold_left
        (fun acc name -> if skip name then acc else go (rel ^ "/" ^ name) acc)
        acc
        (let entries = Sys.readdir abs in
         Array.sort compare entries;
         entries)
    else rel :: acc
  in
  List.rev
    (List.fold_left
       (fun acc dir ->
         if Sys.file_exists (Filename.concat root dir) then go dir acc else acc)
       [] roots)

let find_root ?start () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (match start with Some d -> d | None -> Sys.getcwd ())

let check_root root =
  if not (Sys.file_exists root && Sys.is_directory root) then raise (Invalid_root root)

(* One pass over the tree: read and parse everything exactly once; the
   per-file rules and all whole-program analyses share the ASTs. *)
let load ~root =
  check_root root;
  let files = walk ~root in
  let sources =
    List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli") files
  in
  let dunes = List.filter (fun f -> Filename.basename f = "dune" && Rules.in_dir "lib/" f) files in
  let parsed = List.map (fun f -> (f, parse_file ~file:f (read_file (Filename.concat root f)))) sources in
  let libs =
    List.concat_map
      (fun f -> Layering.libs_of_dune ~file:f (read_file (Filename.concat root f)))
      dunes
  in
  (sources, dunes, parsed, libs)

let mls_of parsed =
  List.filter_map
    (fun (f, p) ->
      match p with Impl str when Filename.check_suffix f ".ml" -> Some (f, str) | _ -> None)
    parsed

let parse_mls ~root =
  let _, _, parsed, libs = load ~root in
  (List.map (fun (l : Layering.lib) -> l.lib_name) libs, mls_of parsed)

let run ~root =
  let sources, dunes, parsed, libs = load ~root in
  (* H001: every lib/ implementation needs an interface. *)
  let missing_mli f =
    if Rules.in_dir "lib/" f && Filename.check_suffix f ".ml" && not (List.mem (f ^ "i") sources)
    then
      Some
        (Finding.v ~rule:"H001" ~file:f ~line:1 ~col:0
           "lib/ module without an .mli: exports are unreviewed")
    else None
  in
  (* Whole-program analyses over the parsed tree. *)
  let mls = mls_of parsed in
  let graph = Callgraph.build ~libs:(List.map (fun (l : Layering.lib) -> l.lib_name) libs) mls in
  let effects, effect_findings = Effects.infer graph in
  let race_findings = Races.check graph effects mls in
  let tree = effect_findings @ race_findings in
  (* Tree-wide findings are merged into their file's batch before the
     file's allows apply, so E/R suppressions live next to the code they
     cover and unused ones trip the A001 audit like any other. *)
  let per_file =
    List.concat_map
      (fun (f, p) ->
        let findings, allows = check_parsed ~file:f p in
        let findings = match missing_mli f with Some h -> findings @ [ h ] | None -> findings in
        let findings = findings @ List.filter (fun (fd : Finding.t) -> fd.file = f) tree in
        Allow.apply ~file:f allows findings)
      parsed
  in
  {
    findings = List.sort Finding.compare (per_file @ Layering.check libs);
    files_scanned = List.length sources;
    dune_files = List.length dunes;
    graph;
    effects;
  }

let unsuppressed r = List.filter (fun (f : Finding.t) -> f.suppressed = None) r.findings

(* {1 Rendering} *)

let render_human r =
  let b = Buffer.create 1024 in
  let bad = unsuppressed r in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    bad;
  let suppressed = List.length r.findings - List.length bad in
  Buffer.add_string b
    (Printf.sprintf "bn-lint: %d finding%s (%d suppressed) in %d files, %d dune files\n"
       (List.length bad)
       (if List.length bad = 1 then "" else "s")
       suppressed r.files_scanned r.dune_files);
  Buffer.contents b

let json_escape = Callgraph.json_escape

let to_json r =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let bad = unsuppressed r in
  let by_rule =
    List.filter_map
      (fun (ri : Finding.rule_info) ->
        match List.length (List.filter (fun (f : Finding.t) -> f.rule = ri.id) bad) with
        | 0 -> None
        | n -> Some (ri.id, n))
      Finding.registry
  in
  p "{\n";
  p "  \"schema\": \"bn-lint/1\",\n";
  p "  \"summary\": {\n";
  p "    \"files\": %d,\n" r.files_scanned;
  p "    \"dune_files\": %d,\n" r.dune_files;
  p "    \"unsuppressed\": %d,\n" (List.length bad);
  p "    \"suppressed\": %d,\n" (List.length r.findings - List.length bad);
  p "    \"by_rule\": {%s}\n"
    (String.concat ", " (List.map (fun (id, n) -> Printf.sprintf "\"%s\": %d" id n) by_rule));
  p "  },\n";
  p "  \"findings\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      p "%s\n    { \"rule\": \"%s\", \"severity\": \"%s\", \"file\": \"%s\", \"line\": %d, \
         \"col\": %d, \"message\": \"%s\", \"allowed\": %b%s }"
        (if i = 0 then "" else ",")
        f.rule
        (Finding.severity_to_string f.severity)
        (json_escape f.file) f.line f.col (json_escape f.message) (f.suppressed <> None)
        (match f.suppressed with
        | None -> ""
        | Some reason -> Printf.sprintf ", \"reason\": \"%s\"" (json_escape reason)))
    r.findings;
  p "\n  ]\n}\n";
  Buffer.contents b

let callgraph_json r = Callgraph.to_json r.graph
let effects_json r = Effects.to_json r.graph r.effects

let rules_table () =
  let b = Buffer.create 512 in
  List.iter
    (fun (ri : Finding.rule_info) ->
      Buffer.add_string b
        (Printf.sprintf "%s  %-7s  %s\n" ri.id
           (Finding.severity_to_string ri.rule_severity)
           ri.summary))
    Finding.registry;
  Buffer.contents b
