open Parsetree

(* {1 Path scoping} *)

let in_dir dir file =
  String.length file > String.length dir && String.sub file 0 (String.length dir) = dir

let is_lib f = in_dir "lib/" f
let is_bench f = in_dir "bench/" f

(* The sanctioned sites, carved out in code rather than via attributes. *)
let prng_site f = f = "lib/util/prng.ml" || f = "lib/util/prng.mli"
let toplevel_state_site f = in_dir "lib/util/" f || in_dir "lib/obs/" f
let domain_site f = f = "lib/util/pool.ml" || f = "lib/obs/obs.ml"
let out_site f = f = "lib/util/out.ml"

(* GC statistics depend on allocation history, heap policy and domain
   count — reading them anywhere but the Obs probe layer smuggles
   nondeterminism past D002. *)
let gc_site f = in_dir "lib/obs/" f

(* The flat numeric kernels: the only modules allowed to touch Bigarray
   storage directly. Everyone else goes through their typed APIs. *)
let bigarray_site f =
  List.mem f
    [ "lib/game/normal_form.ml"; "lib/game/normal_form.mli"; "lib/game/nash.ml";
      "lib/game/learning.ml"; "lib/lp/simplex.ml";
      (* The struct-of-arrays agent store and the simulator kernels built
         directly on its columns (PR 8). *)
      "lib/agents/soa.ml"; "lib/agents/soa.mli"; "lib/scrip/scrip_soa.ml";
      "lib/p2p/gnutella_soa.ml" ]

(* {1 Longident helpers} *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (a, b) -> flatten a @ flatten b

(* [Stdlib.Random.int] and [Random.int] are the same thing. *)
let path lid = match flatten lid with "Stdlib" :: (_ :: _ as rest) -> rest | l -> l

(* Stdlib submodules (plus Unix): opening one shadows pervasive names. *)
let shadowing_modules =
  [ "Stdlib"; "Arg"; "Array"; "ArrayLabels"; "Atomic"; "Bigarray"; "Bool"; "Buffer"; "Bytes";
    "BytesLabels"; "Char"; "Complex"; "Condition"; "Domain"; "Digest"; "Either"; "Filename";
    "Float"; "Format"; "Fun"; "Gc"; "Hashtbl"; "In_channel"; "Int"; "Int32"; "Int64"; "Lazy";
    "Lexing"; "List"; "ListLabels"; "Map"; "Marshal"; "MoreLabels"; "Mutex"; "Nativeint"; "Obj";
    "Option"; "Out_channel"; "Printexc"; "Printf"; "Queue"; "Random"; "Result"; "Scanf"; "Seq";
    "Set"; "Stack"; "StdLabels"; "String"; "StringLabels"; "Sys"; "Uchar"; "Unit"; "Unix"; "Weak" ]

let stdout_printers =
  [ "print_string"; "print_endline"; "print_newline"; "print_int"; "print_float"; "print_char";
    "print_bytes" ]

(* {1 The per-occurrence checks} *)

let loc_finding ~rule ~file (loc : Location.t) msg =
  Finding.v ~rule ~file ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    msg

(* A value identifier occurrence ([Random.int], [print_string], ...). *)
let check_ident ~file lid loc =
  let f rule msg = Some (loc_finding ~rule ~file loc msg) in
  match path lid with
  | "Random" :: _ when not (prng_site file) ->
    f "D001"
      (Printf.sprintf "use of %s: randomness must come from an explicit Bn_util.Prng seed"
         (String.concat "." (flatten lid)))
  | ([ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ]) when not (is_bench file)
    ->
    f "D002"
      (Printf.sprintf "wall-clock read %s outside bench/" (String.concat "." (flatten lid)))
  | [ "Hashtbl"; ("iter" | "fold") ] | [ "MoreLabels"; "Hashtbl"; ("iter" | "fold") ] ->
    f "D003"
      (Printf.sprintf
         "%s traverses in bucket order; use Bn_util.Tbl.sorted_bindings (or keep the result \
          from escaping)"
         (String.concat "." (flatten lid)))
  | "Marshal" :: _ -> f "D004" "Marshal is representation-dependent and banned"
  | [ "Obj"; "magic" ] -> f "D005" "Obj.magic defeats the type system and the determinism audit"
  | "Gc" :: _ when not (gc_site file) ->
    f "P005"
      (Printf.sprintf "%s outside lib/obs: GC stats are nondeterministic; use the Obs GC probes"
         (String.concat "." (flatten lid)))
  | ("Domain" | "Atomic") :: _ when not (domain_site file) ->
    f "P002"
      (Printf.sprintf "%s outside Bn_util.Pool / Bn_obs.Obs — raw parallelism breaks the \
                       deterministic-schedule contract"
         (String.concat "." (flatten lid)))
  | "Bigarray" :: _ when is_lib file && not (bigarray_site file) ->
    f "P004"
      (Printf.sprintf "%s outside the flat numeric kernels — Bigarray storage is confined to \
                       the flat kernels (Normal_form/Nash/Learning/Simplex/Soa and the SoA \
                       simulators)"
         (String.concat "." (flatten lid)))
  | [ p ] when List.mem p stdout_printers && is_lib file && not (out_site file) ->
    f "P003" (Printf.sprintf "direct %s in lib/: render through Bn_util.Out sinks" p)
  | ([ "Printf"; "printf" ] | [ "Format"; ("printf" | "print_string" | "print_newline") ])
    when is_lib file && not (out_site file) ->
    f "P003"
      (Printf.sprintf "direct %s in lib/: render through Bn_util.Out sinks"
         (String.concat "." (flatten lid)))
  | _ -> None

(* A module identifier occurrence: alias, functor argument or open of a
   banned module is as bad as calling into it. *)
let check_module_ident ~file lid loc =
  let f rule msg = Some (loc_finding ~rule ~file loc msg) in
  match path lid with
  | "Random" :: _ when not (prng_site file) ->
    f "D001" "module Random: randomness must come from an explicit Bn_util.Prng seed"
  | "Marshal" :: _ -> f "D004" "Marshal is representation-dependent and banned"
  | "Gc" :: _ when not (gc_site file) ->
    f "P005" "module Gc outside lib/obs: GC stats are nondeterministic; use the Obs GC probes"
  | ("Domain" | "Atomic") :: _ when not (domain_site file) ->
    f "P002" "module Domain/Atomic outside Bn_util.Pool / Bn_obs.Obs"
  | "Bigarray" :: _ when is_lib file && not (bigarray_site file) ->
    f "P004"
      "module Bigarray outside the flat numeric kernels (Normal_form/Nash/Learning/Simplex/Soa \
       and the SoA simulators)"
  | _ -> None

let check_open ~file lid loc =
  match path lid with
  | [ m ] when List.mem m shadowing_modules ->
    Some
      (loc_finding ~rule:"H002" ~file loc
         (Printf.sprintf "open %s shadows Stdlib names; use qualified access" m))
  | _ -> None

(* {1 P001: structure-level mutable state} *)

let mutable_makers =
  [ [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Array"; "make" ]; [ "Array"; "create_float" ];
    [ "Array"; "make_matrix" ]; [ "Bytes"; "create" ]; [ "Bytes"; "make" ]; [ "Buffer"; "create" ];
    [ "Queue"; "create" ]; [ "Stack"; "create" ]; [ "Atomic"; "make" ];
    [ "Domain"; "DLS"; "new_key" ] ]

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_lazy e -> peel e
  | _ -> e

let mutable_maker e =
  match (peel e).pexp_desc with
  | Pexp_apply (head, _) -> (
    match (peel head).pexp_desc with
    | Pexp_ident { txt; _ } when List.mem (path txt) mutable_makers ->
      Some (String.concat "." (flatten txt))
    | _ -> None)
  | _ -> None

(* Structure-level bindings only: a [ref] inside a function body is fine,
   a [ref] bound at module level is shared state. Recurses into
   sub-modules, which are also structure level. *)
let rec toplevel_state ~file acc items =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
        List.fold_left
          (fun acc vb ->
            match mutable_maker vb.pvb_expr with
            | Some maker when not (toplevel_state_site file) ->
              loc_finding ~rule:"P001" ~file vb.pvb_loc
                (Printf.sprintf
                   "top-level mutable state (%s) outside lib/util and lib/obs — thread it or \
                    use an Obs counter"
                   maker)
              :: acc
            | _ -> acc)
          acc bindings
      | Pstr_module { pmb_expr; _ } -> toplevel_state_mod ~file acc pmb_expr
      | Pstr_recmodule mbs ->
        List.fold_left (fun acc mb -> toplevel_state_mod ~file acc mb.pmb_expr) acc mbs
      | Pstr_include { pincl_mod; _ } -> toplevel_state_mod ~file acc pincl_mod
      | _ -> acc)
    acc items

and toplevel_state_mod ~file acc me =
  match me.pmod_desc with
  | Pmod_structure items -> toplevel_state ~file acc items
  | Pmod_functor (_, body) -> toplevel_state_mod ~file acc body
  | Pmod_constraint (me, _) -> toplevel_state_mod ~file acc me
  | _ -> acc

(* {1 Drivers} *)

let iterator ~file acc =
  let super = Ast_iterator.default_iterator in
  let push = function Some f -> acc := f :: !acc | None -> () in
  let expr this e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> push (check_ident ~file txt e.pexp_loc)
    | _ -> ());
    super.expr this e
  in
  let module_expr this me =
    (match me.pmod_desc with
    | Pmod_ident { txt; _ } -> push (check_module_ident ~file txt me.pmod_loc)
    | _ -> ());
    super.module_expr this me
  in
  (* H002 looks at file-level opens only: a local [M.(...)] or
     [let open M in] is scoped tightly enough to read, a structure-level
     open rebinds pervasives for the whole file. *)
  let structure_item this item =
    (match item.pstr_desc with
    | Pstr_open { popen_expr = { pmod_desc = Pmod_ident { txt; _ }; _ }; popen_loc; _ } ->
      push (check_open ~file txt popen_loc)
    | _ -> ());
    super.structure_item this item
  in
  let signature_item this item =
    (match item.psig_desc with
    | Psig_open { popen_expr = { txt; _ }; popen_loc; _ } -> push (check_open ~file txt popen_loc)
    | _ -> ());
    super.signature_item this item
  in
  { super with expr; module_expr; structure_item; signature_item }

let check_structure ~file str =
  let acc = ref [] in
  let it = iterator ~file acc in
  it.structure it str;
  List.rev_append !acc (List.rev (toplevel_state ~file [] str))

let check_signature ~file sg =
  let acc = ref [] in
  let it = iterator ~file acc in
  it.signature it sg;
  List.rev !acc
