open Parsetree

module SMap = Map.Make (String)

(* {1 Definitions}

   A def is a structure-level value binding: [let f …] at the top of a
   file or inside a (possibly nested) named sub-module. Local bindings
   are not defs — the analyses treat them as part of their enclosing
   def's body. *)

type def = {
  id : string;  (* file ^ "#" ^ dotted module-and-value path *)
  file : string;
  path : string list;
  line : int;
  is_fun : bool;
  body : expression;
  scope : string list;  (* enclosing module path within the file *)
}

type edge = { caller : string; callee : string; eline : int; ecol : int }

type t = {
  defs : def list;  (* sorted by id *)
  def_tbl : def SMap.t;
  module_of : string SMap.t;  (* module name -> defining file *)
  aliases : string list SMap.t;  (* file ^ "#" ^ name -> raw target path *)
  wrappers : string list;  (* dune library wrapper modules, e.g. Bn_util *)
  edges : edge list;  (* sorted, deduped *)
  files : int;
}

let dotted path = String.concat "." path
let def_key file path = file ^ "#" ^ dotted path

(* {1 Collecting defs and module aliases} *)

let rec peel_pat p =
  match p.ppat_desc with Ppat_constraint (p, _) -> peel_pat p | _ -> p

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> is_function e
  | _ -> false

let scan_file ~file str =
  let defs = ref [] and aliases = ref [] in
  let rec items mpath is =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match (peel_pat vb.pvb_pat).ppat_desc with
              | Ppat_var { txt; _ } ->
                let path = mpath @ [ txt ] in
                defs :=
                  {
                    id = def_key file path;
                    file;
                    path;
                    line = vb.pvb_loc.loc_start.pos_lnum;
                    is_fun = is_function vb.pvb_expr;
                    body = vb.pvb_expr;
                    scope = mpath;
                  }
                  :: !defs
              | _ -> ())
            vbs
        | Pstr_module mb -> module_binding mpath mb
        | Pstr_recmodule mbs -> List.iter (module_binding mpath) mbs
        | Pstr_include { pincl_mod; _ } -> module_expr mpath pincl_mod
        | _ -> ())
      is
  and module_binding mpath mb =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> (
      match mb.pmb_expr.pmod_desc with
      | Pmod_ident { txt; _ } -> aliases := (name, Scope.path txt) :: !aliases
      | _ -> module_expr (mpath @ [ name ]) mb.pmb_expr)
  and module_expr mpath me =
    match me.pmod_desc with
    | Pmod_structure is -> items mpath is
    | Pmod_constraint (me, _) | Pmod_functor (_, me) -> module_expr mpath me
    | _ -> ()
  in
  items [] str;
  (!defs, !aliases)

(* {1 Resolution}

   Best-effort, purely syntactic: a value path occurring in [file] is
   resolved against (innermost first) the enclosing module scope, the
   file's module aliases ([module Soa = Bn_agents.Soa]), and the
   tree-wide capitalized-basename map. Library wrapper modules
   ([Bn_util.Pool.map]) are stripped using the dune library names, and
   alias chains (the [Beyond_nash] facade) are followed with bounded
   fuel. Unresolvable paths — Stdlib, opam libraries, locally bound
   functions — yield no edge. *)

let strip_wrapper g = function
  | m :: (_ :: _ as rest) when List.mem m g.wrappers -> rest
  | p -> p

let rec resolve_in g file path fuel =
  if fuel = 0 || path = [] then None
  else
    match SMap.find_opt (def_key file path) g.def_tbl with
    | Some d -> Some d
    | None -> (
      match path with
      | seg :: rest -> (
        match SMap.find_opt (file ^ "#" ^ seg) g.aliases with
        | Some target -> (
          let target = strip_wrapper g (target @ rest) in
          match target with
          | m :: sub when SMap.mem m g.module_of ->
            resolve_in g (SMap.find m g.module_of) sub (fuel - 1)
          | _ -> resolve_in g file target (fuel - 1))
        | None -> None)
      | [] -> None)

(* Innermost-scope-first prefixes: scope [A; B] tries [A; B], [A], []. *)
let scope_prefixes scope =
  let rec go acc = function [] -> [] :: acc | _ :: _ as l -> go (l :: acc) (List.rev (List.tl (List.rev l))) in
  List.rev (go [] scope)

let resolve g ~file ~scope ~env segs =
  match segs with
  | [ x ] ->
    if Scope.mem x env then None
    else
      List.find_map (fun prefix -> resolve_in g file (prefix @ [ x ]) 8) (scope_prefixes scope)
  | _ :: _ ->
    let segs = strip_wrapper g segs in
    let same_file =
      List.find_map (fun prefix -> resolve_in g file (prefix @ segs) 8) (scope_prefixes scope)
    in
    (match same_file with
    | Some _ as r -> r
    | None -> (
      match segs with
      | m :: (_ :: _ as rest) when SMap.mem m g.module_of ->
        resolve_in g (SMap.find m g.module_of) rest 8
      | _ -> None))
  | [] -> None

(* {1 Building} *)

let in_dir dir file =
  String.length file > String.length dir && String.sub file 0 (String.length dir) = dir

let module_name_of_file f =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename f))

let build ~libs mls =
  let all = List.concat_map (fun (file, str) -> fst (scan_file ~file str)) mls in
  (* Later bindings shadow earlier ones of the same path (rare); keep the
     last so resolution matches what the compiler links. *)
  let def_tbl = List.fold_left (fun m d -> SMap.add d.id d m) SMap.empty all in
  let defs = List.map snd (SMap.bindings def_tbl) in
  let aliases =
    List.fold_left
      (fun m (file, str) ->
        List.fold_left
          (fun m (name, target) -> SMap.add (file ^ "#" ^ name) target m)
          m
          (snd (scan_file ~file str)))
      SMap.empty mls
  in
  (* Capitalized basename -> file; lib/ wins over bin/bench/test, then
     lexicographic — deterministic for the duplicate basenames (main.ml,
     obsdiff.ml). *)
  let module_of =
    List.fold_left
      (fun m (file, _) ->
        let name = module_name_of_file file in
        match SMap.find_opt name m with
        | None -> SMap.add name file m
        | Some old ->
          let better = (in_dir "lib/" file && not (in_dir "lib/" old)) || ((in_dir "lib/" file = in_dir "lib/" old) && file < old) in
          if better then SMap.add name file m else m)
      SMap.empty mls
  in
  let wrappers = List.map String.capitalize_ascii libs in
  let g0 =
    { defs; def_tbl; module_of; aliases; wrappers; edges = []; files = List.length mls }
  in
  (* Edge collection: every ident occurrence in a def body that resolves
     to another def. *)
  let edges = ref [] in
  List.iter
    (fun d ->
      Scope.iter_expr ~env:Scope.empty
        (fun ~env e ->
          match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
            match resolve g0 ~file:d.file ~scope:d.scope ~env (Scope.path txt) with
            | Some callee when callee.id <> d.id ->
              edges :=
                {
                  caller = d.id;
                  callee = callee.id;
                  eline = e.pexp_loc.loc_start.pos_lnum;
                  ecol = e.pexp_loc.loc_start.pos_cnum - e.pexp_loc.loc_start.pos_bol;
                }
                :: !edges
            | _ -> ())
          | _ -> ())
        d.body)
    defs;
  let edges =
    List.sort_uniq
      (fun a b ->
        Stdlib.compare (a.caller, a.callee, a.eline, a.ecol) (b.caller, b.callee, b.eline, b.ecol))
      !edges
  in
  { g0 with edges }

let defs g = g.defs
let find g id = SMap.find_opt id g.def_tbl
let edges g = g.edges

let calls g =
  List.fold_left
    (fun m e ->
      let cur = Option.value ~default:[] (SMap.find_opt e.caller m) in
      SMap.add e.caller (e.callee :: cur) m)
    SMap.empty g.edges
  |> SMap.map (fun l -> List.sort_uniq Stdlib.compare l)

(* {1 Export} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json g =
  let b = Buffer.create 65536 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let call_map = calls g in
  p "{\n";
  p "  \"schema\": \"bn-callgraph/1\",\n";
  p "  \"summary\": { \"files\": %d, \"functions\": %d, \"edges\": %d },\n" g.files
    (List.length g.defs) (List.length g.edges);
  p "  \"functions\": [";
  List.iteri
    (fun i d ->
      let callees = Option.value ~default:[] (SMap.find_opt d.id call_map) in
      p "%s\n    { \"id\": \"%s\", \"file\": \"%s\", \"line\": %d, \"fun\": %b, \"calls\": [%s] }"
        (if i = 0 then "" else ",")
        (json_escape d.id) (json_escape d.file) d.line d.is_fun
        (String.concat ", " (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) callees)))
    g.defs;
  p "\n  ]\n}\n";
  Buffer.contents b
