(** Whole-program effect inference over the {!Callgraph}.

    Per-def effect signatures are seeded syntactically — the same
    primitives the D/P rules police per file (Stdlib [Random], clock
    reads, [Gc], I/O, [Domain]/[Atomic], writes to structure-level
    mutable state, Bigarray stores) — and propagated transitively along
    call edges to a fixpoint, so an effect smuggled through a helper one
    call layer down is visible at every caller. Calls into [lib/obs]
    are an effect boundary: the instrumentation layer is audited to
    leave program output untouched, so its internal clock/GC/atomic use
    does not poison instrumented callers.

    Rules:
    - E001 — a call from a solver/kernel module ([lib/game], [lib/lp],
      [lib/robust], [lib/byzantine], [lib/agents], [lib/scrip],
      [lib/p2p]) to a function transitively reaching randomness or the
      clock, outside the Prng-threaded entry points.
    - E002 — a Det-counter region (a def bumping an [Obs] counter or
      sketch of kind [Det]) transitively reaching randomness or the
      clock. *)

type table

val infer : Callgraph.t -> table * Finding.t list
(** Effect table plus E001/E002 findings, in deterministic order. *)

val effects_of : table -> string -> string list
(** Effect-kind names of a def id, in canonical order ([rand], [clock],
    [gc], [io], [par], [global_mut], [bigarray_write]); [[]] when the
    def is pure or unknown. *)

val has_global_mut : table -> string -> bool
(** Does the def's transitive signature include [global_mut]? Used by
    {!Races} to flag helpers that smuggle shared-state writes into a
    parallel closure. *)

val to_json : Callgraph.t -> table -> string
(** Schema [bn-effects/1]: a summary block (per-effect def counts) plus
    one record per def with a non-empty signature. Byte-stable. *)
