open Parsetree

module SMap = Map.Make (String)

(* {1 The effect lattice}

   A bitmask over seven primitive effect kinds. The lattice is the
   powerset ordered by inclusion; propagation along call edges is a
   monotone union, so the fixpoint below terminates. *)

let e_rand = 1 (* Stdlib Random — ambient, unseeded randomness *)
let e_clock = 2 (* wall-clock reads *)
let e_gc = 4 (* GC statistics / heap control *)
let e_io = 8 (* channel or console I/O, filesystem, environment *)
let e_par = 16 (* Domain/Atomic — raw parallelism *)
let e_mut = 32 (* writes to structure-level mutable state *)
let e_ba = 64 (* Bigarray stores *)

let kind_names =
  [ (e_rand, "rand"); (e_clock, "clock"); (e_gc, "gc"); (e_io, "io"); (e_par, "par");
    (e_mut, "global_mut"); (e_ba, "bigarray_write") ]

let names_of_mask m = List.filter_map (fun (bit, n) -> if m land bit <> 0 then Some n else None) kind_names

type table = { masks : int SMap.t; det_regions : string list }

let effects_of t id =
  match SMap.find_opt id t.masks with Some m -> names_of_mask m | None -> []

let has_global_mut t id =
  match SMap.find_opt id t.masks with Some m -> m land e_mut <> 0 | None -> false

(* {1 Seeds} *)

let io_printers =
  [ "print_string"; "print_endline"; "print_newline"; "print_int"; "print_float"; "print_char";
    "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline"; "prerr_int"; "prerr_float";
    "prerr_char"; "read_line"; "read_int"; "read_int_opt"; "read_float"; "read_float_opt";
    "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "output_string"; "output_char";
    "output_byte"; "output_bytes"; "input_line"; "input_char"; "input_byte"; "close_in";
    "close_out"; "flush"; "flush_all"; "really_input_string"; "in_channel_length" ]

let seed_of_ident path =
  match path with
  | "Random" :: _ -> e_rand
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] -> e_clock
  | "Gc" :: _ -> e_gc
  | ("Domain" | "Atomic") :: _ -> e_par
  | [ p ] when List.mem p io_printers -> e_io
  | [ "Printf"; ("printf" | "eprintf" | "fprintf") ]
  | [ "Format"; ("printf" | "eprintf" | "fprintf" | "print_string" | "print_newline") ] ->
    e_io
  | ("In_channel" | "Out_channel") :: _ -> e_io
  | [ "Sys"; ("command" | "readdir" | "remove" | "rename" | "getenv" | "getenv_opt" | "file_exists" | "is_directory" | "getcwd" | "argv") ] ->
    e_io
  | "Bigarray" :: rest when
      (match List.rev rest with
      | ("set" | "unsafe_set" | "fill" | "blit") :: _ -> true
      | _ -> false) ->
    e_ba
  | _ -> 0

let mutator_path = function
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ]
  | [ "Array"; ("set" | "unsafe_set" | "fill" | "blit") ]
  | [ "Bytes"; ("set" | "unsafe_set" | "fill" | "blit") ]
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear") ]
  | [ "Stack"; ("push" | "pop" | "clear") ] ->
    true
  | _ -> false

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel e
  | _ -> e

let ident_path e =
  match (peel e).pexp_desc with Pexp_ident { txt; _ } -> Some (Scope.path txt) | _ -> None

(* Does this expression denote structure-level state? An identifier that
   resolves (under the current scope and local bindings) to a def. *)
let resolves_to_def g ~file ~scope ~env e =
  match ident_path e with
  | Some p -> Callgraph.resolve g ~file ~scope ~env p
  | None -> None

(* {1 Det counters}

   [Obs.counter] defaults to [Det]; [Obs.sketch] to [Volatile]. A def
   whose body is such a creation with an (explicit or defaulted) [Det]
   kind is a Det instrument; a def that bumps one is a Det-counter
   region — its value is asserted identical across [-j] and reruns, so
   it must never sit downstream of randomness or the clock. *)

let obs_call last p =
  match List.rev p with
  | l :: rest -> l = last && List.mem "Obs" rest
  | [] -> false

let kind_arg args =
  List.find_map
    (fun (lbl, a) ->
      match lbl with
      | Asttypes.Labelled "kind" -> (
        match ident_path a with
        | Some p -> ( match List.rev p with k :: _ -> Some k | [] -> None)
        | None -> None)
      | _ -> None)
    args

let is_det_creation body =
  match (peel body).pexp_desc with
  | Pexp_apply (head, args) -> (
    match ident_path head with
    | Some p when obs_call "counter" p -> (
      match kind_arg args with None -> true | Some k -> k = "Det")
    | Some p when obs_call "sketch" p -> kind_arg args = Some "Det"
    | _ -> false)
  | _ -> false

let bump_ops = [ "incr"; "add"; "add2"; "observe_sk"; "observe"; "set_gauge"; "max_gauge" ]

(* {1 Inference} *)

let in_dir dir file =
  String.length file > String.length dir && String.sub file 0 (String.length dir) = dir

let obs_boundary file = in_dir "lib/obs/" file

let kernel_dirs =
  [ "lib/game/"; "lib/lp/"; "lib/robust/"; "lib/byzantine/"; "lib/agents/"; "lib/scrip/";
    "lib/p2p/" ]

let kernel_file f = List.exists (fun d -> in_dir d f) kernel_dirs

let prng_file f = f = "lib/util/prng.ml"

let seed_def g det_ids (d : Callgraph.def) =
  let mask = ref 0 and det_bump = ref false in
  Scope.iter_expr ~env:Scope.empty
    (fun ~env e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> mask := !mask lor seed_of_ident (Scope.path txt)
      | Pexp_apply (head, args) -> (
        let arg_exprs = List.map snd args in
        match ident_path head with
        | Some [ (":=" | "incr" | "decr") ] -> (
          match arg_exprs with
          | target :: _
            when resolves_to_def g ~file:d.file ~scope:d.scope ~env target <> None ->
            mask := !mask lor e_mut
          | _ -> ())
        | Some p when mutator_path p -> (
          match arg_exprs with
          | target :: _
            when resolves_to_def g ~file:d.file ~scope:d.scope ~env target <> None ->
            mask := !mask lor e_mut
          | _ -> ())
        | Some p when List.exists (fun op -> obs_call op p) bump_ops ->
          List.iter
            (fun a ->
              match resolves_to_def g ~file:d.file ~scope:d.scope ~env a with
              | Some cdef when List.mem cdef.Callgraph.id det_ids -> det_bump := true
              | _ -> ())
            arg_exprs
        | _ -> ())
      | Pexp_setfield (target, _, _) ->
        if resolves_to_def g ~file:d.file ~scope:d.scope ~env target <> None then
          mask := !mask lor e_mut
      | _ -> ())
    d.body;
  (!mask, !det_bump)

let infer g =
  let defs = Callgraph.defs g in
  let det_ids =
    List.filter_map (fun (d : Callgraph.def) -> if is_det_creation d.body then Some d.id else None) defs
  in
  let seeds_and_bumps =
    List.map (fun (d : Callgraph.def) -> (d.id, seed_def g det_ids d)) defs
  in
  let seeds = List.fold_left (fun m (id, (s, _)) -> SMap.add id s m) SMap.empty seeds_and_bumps in
  let det_regions =
    List.filter_map (fun (id, (_, bump)) -> if bump then Some id else None) seeds_and_bumps
  in
  (* Fixpoint: union callee masks into callers until stable. Calls into
     lib/obs are an effect boundary — the instrumentation layer is
     exactly the code audited to leave program output untouched (one
     [Atomic.get] when off), so its internal clock/GC/atomic use must
     not poison every instrumented caller. *)
  let masks = ref seeds in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Callgraph.edge) ->
        match Callgraph.find g e.callee with
        | Some callee when not (obs_boundary callee.Callgraph.file) ->
          let cm = Option.value ~default:0 (SMap.find_opt e.callee !masks) in
          let m = Option.value ~default:0 (SMap.find_opt e.caller !masks) in
          if m lor cm <> m then begin
            masks := SMap.add e.caller (m lor cm) !masks;
            changed := true
          end
        | _ -> ())
      (Callgraph.edges g)
  done;
  let table = { masks = !masks; det_regions } in
  let mask_of id = Option.value ~default:0 (SMap.find_opt id table.masks) in
  (* E001 — a call from solver/kernel code to a function that
     transitively reaches randomness or the clock. The Prng module is
     the sanctioned entry point (callers thread an explicit seed), and
     lib/obs is the audited instrumentation boundary. *)
  let e001 =
    List.filter_map
      (fun (e : Callgraph.edge) ->
        match Callgraph.find g e.caller with
        | Some caller when kernel_file caller.Callgraph.file -> (
          match Callgraph.find g e.callee with
          | Some callee
            when (not (prng_file callee.Callgraph.file))
                 && (not (obs_boundary callee.Callgraph.file))
                 && mask_of e.callee land (e_rand lor e_clock) <> 0 ->
            let kinds =
              names_of_mask (mask_of e.callee land (e_rand lor e_clock)) |> String.concat "/"
            in
            Some
              (Finding.v ~rule:"E001" ~file:caller.Callgraph.file ~line:e.eline ~col:e.ecol
                 (Printf.sprintf
                    "call to %s, which transitively reaches %s — solver/kernel code must take \
                     randomness via explicit Prng-threaded parameters and never read the clock"
                    callee.Callgraph.id kinds))
          | _ -> None)
        | _ -> None)
      (Callgraph.edges g)
  in
  (* E002 — a Det-counter region (a function bumping a Det counter or
     sketch, whose value CI asserts identical across -j and reruns)
     transitively reaching randomness or the clock. *)
  let e002 =
    List.filter_map
      (fun id ->
        let m = mask_of id land (e_rand lor e_clock) in
        if m = 0 then None
        else
          match Callgraph.find g id with
          | Some d ->
            Some
              (Finding.v ~rule:"E002" ~file:d.Callgraph.file ~line:d.Callgraph.line ~col:0
                 (Printf.sprintf
                    "%s bumps a Det counter but transitively reaches %s — Det counters are \
                     asserted bitwise-identical across -j and reruns"
                    d.Callgraph.id
                    (String.concat "/" (names_of_mask m))))
          | None -> None)
      det_regions
  in
  (table, e001 @ e002)

(* {1 Export} *)

let to_json g t =
  let b = Buffer.create 65536 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let defs = Callgraph.defs g in
  let rows =
    List.filter_map
      (fun (d : Callgraph.def) ->
        match SMap.find_opt d.id t.masks with
        | Some m when m <> 0 -> Some (d, m)
        | _ -> None)
      defs
  in
  let by_effect =
    List.filter_map
      (fun (bit, name) ->
        match List.length (List.filter (fun (_, m) -> m land bit <> 0) rows) with
        | 0 -> None
        | n -> Some (name, n))
      kind_names
  in
  p "{\n";
  p "  \"schema\": \"bn-effects/1\",\n";
  p "  \"summary\": {\n";
  p "    \"functions\": %d,\n" (List.length defs);
  p "    \"effectful\": %d,\n" (List.length rows);
  p "    \"det_regions\": %d,\n" (List.length t.det_regions);
  p "    \"by_effect\": {%s}\n"
    (String.concat ", " (List.map (fun (n, c) -> Printf.sprintf "\"%s\": %d" n c) by_effect));
  p "  },\n";
  p "  \"functions\": [";
  List.iteri
    (fun i ((d : Callgraph.def), m) ->
      p "%s\n    { \"id\": \"%s\", \"file\": \"%s\", \"line\": %d, \"effects\": [%s] }"
        (if i = 0 then "" else ",")
        (Callgraph.json_escape d.id) (Callgraph.json_escape d.file) d.line
        (String.concat ", " (List.map (fun n -> Printf.sprintf "\"%s\"" n) (names_of_mask m))))
    rows;
  p "\n  ]\n}\n";
  Buffer.contents b
