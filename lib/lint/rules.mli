(** The AST rule engine: D- (determinism), P- (purity/layering) and the
    syntactic H- (hygiene) rules, run over one parsed compilation unit.

    Rules are scoped by the file's repo-relative path (['/']-separated):
    the handful of sanctioned sites — [Bn_util.Prng] for randomness,
    [bench/] for wall clocks, [Bn_util.Pool]/[Bn_obs.Obs] for domains and
    atomics, [Bn_util.Out] for stdout, [lib/util]+[lib/obs] for top-level
    state — are carved out here, in code, so they need no suppression
    attributes. Everything else must either be fixed or carry an explicit
    [[@@@lint.allow]] (see {!Allow}).

    Tree-level rules (H001 missing [.mli], H003 dune layering) live in
    {!Lint} and {!Layering}; this module is purely per-file. *)

val in_dir : string -> string -> bool
(** [in_dir "lib/" file] — path-prefix scoping, shared with {!Lint}'s
    tree-level rules. *)

val check_structure : file:string -> Parsetree.structure -> Finding.t list
(** All D/P/H002 findings of an implementation, in source order. *)

val check_signature : file:string -> Parsetree.signature -> Finding.t list
(** Interfaces can only trip the syntactic rules (H002 opens). *)
