open Parsetree

module SSet = Set.Make (String)

type env = SSet.t

let empty = SSet.empty
let mem = SSet.mem

(* {1 Longident helpers} *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (a, b) -> flatten a @ flatten b

(* [Stdlib.Random.int] and [Random.int] are the same path. *)
let path lid = match flatten lid with "Stdlib" :: (_ :: _ as rest) -> rest | l -> l

(* {1 Pattern variables} *)

let pat_vars p =
  let acc = ref [] in
  let pat this (p : pattern) =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.pat this p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.pat it p;
  !acc

let add_pat env p = List.fold_left (fun e v -> SSet.add v e) env (pat_vars p)

(* All value identifiers occurring in [e], as normalized paths. Used for
   "does this index expression mention a closure-local binding". *)
let idents e =
  let acc = ref [] in
  let expr this (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } -> acc := path txt :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.expr this e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !acc

let mentions env e =
  List.exists (function [ x ] -> SSet.mem x env | _ -> false) (idents e)

(* {1 Scoped expression iteration}

   A pre-order walk that calls [f ~env] on every expression node, where
   [env] is the set of value names bound between the walk's root and the
   node — parameters, let/match/for bindings. This is what lets the
   analyses distinguish closure-local state (a [ref] made inside a
   parallel task) from captured state (the data race). *)

let rec iter_expr ~env f e =
  f ~env e;
  let go env' e = iter_expr ~env:env' f e in
  let go_cases env' cases =
    List.iter
      (fun c ->
        let cenv = add_pat env' c.pc_lhs in
        Option.iter (iter_expr ~env:cenv f) c.pc_guard;
        iter_expr ~env:cenv f c.pc_rhs)
      cases
  in
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ | Pexp_new _ | Pexp_unreachable | Pexp_extension _
  | Pexp_object _ ->
    ()
  | Pexp_let (rf, vbs, body) ->
    let env' = List.fold_left (fun acc vb -> add_pat acc vb.pvb_pat) env vbs in
    let rhs_env = match rf with Asttypes.Recursive -> env' | Asttypes.Nonrecursive -> env in
    List.iter (fun vb -> go rhs_env vb.pvb_expr) vbs;
    go env' body
  | Pexp_function cases -> go_cases env cases
  | Pexp_fun (_, default, pat, body) ->
    Option.iter (go env) default;
    go (add_pat env pat) body
  | Pexp_apply (fn, args) ->
    go env fn;
    List.iter (fun (_, a) -> go env a) args
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    go env scrut;
    go_cases env cases
  | Pexp_tuple es | Pexp_array es -> List.iter (go env) es
  | Pexp_construct (_, eo) | Pexp_variant (_, eo) -> Option.iter (go env) eo
  | Pexp_record (fields, base) ->
    List.iter (fun (_, v) -> go env v) fields;
    Option.iter (go env) base
  | Pexp_field (e, _) | Pexp_send (e, _) | Pexp_assert e | Pexp_lazy e
  | Pexp_poly (e, _) | Pexp_newtype (_, e) | Pexp_constraint (e, _)
  | Pexp_coerce (e, _, _) | Pexp_setinstvar (_, e) ->
    go env e
  | Pexp_setfield (a, _, b) | Pexp_sequence (a, b) | Pexp_while (a, b) ->
    go env a;
    go env b
  | Pexp_ifthenelse (c, t, eo) ->
    go env c;
    go env t;
    Option.iter (go env) eo
  | Pexp_for (pat, lo, hi, _, body) ->
    go env lo;
    go env hi;
    go (add_pat env pat) body
  | Pexp_override fields -> List.iter (fun (_, v) -> go env v) fields
  | Pexp_letmodule (_, me, body) ->
    iter_module ~env f me;
    go env body
  | Pexp_letexception (_, body) -> go env body
  | Pexp_pack me -> iter_module ~env f me
  | Pexp_open (od, body) ->
    iter_module ~env f od.popen_expr;
    go env body
  | Pexp_letop { let_; ands; body } ->
    let ops = let_ :: ands in
    List.iter (fun op -> go env op.pbop_exp) ops;
    let env' = List.fold_left (fun acc op -> add_pat acc op.pbop_pat) env ops in
    go env' body

(* Module expressions inside expressions ([let module], first-class
   modules): walk any structures they contain with the same env. *)
and iter_module ~env f me =
  match me.pmod_desc with
  | Pmod_structure items ->
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.iter (fun vb -> iter_expr ~env f vb.pvb_expr) vbs
        | Pstr_eval (e, _) -> iter_expr ~env f e
        | Pstr_module { pmb_expr; _ } -> iter_module ~env f pmb_expr
        | _ -> ())
      items
  | Pmod_functor (_, body) -> iter_module ~env f body
  | Pmod_constraint (me, _) -> iter_module ~env f me
  | Pmod_apply (a, b) ->
    iter_module ~env f a;
    iter_module ~env f b
  | Pmod_apply_unit me -> iter_module ~env f me
  | Pmod_ident _ | Pmod_unpack _ | Pmod_extension _ -> ()
