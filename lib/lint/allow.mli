(** Explicit, auditable suppression: [[@@@lint.allow "D001" "reason"]].

    A floating attribute anywhere in a compilation unit suppresses that
    rule's findings {e in that file only}. Suppression is never silent:
    suppressed findings stay in the report (with the reason), and every
    allow is audited by rule A001 — an allow that is malformed, names an
    unknown rule, lacks a reason, or suppresses nothing is itself a
    finding, so stale suppressions cannot accumulate. *)

type t = {
  rule : string;  (** rule ID the attribute names ([""] when malformed) *)
  reason : string;  (** remaining string arguments, joined — may be [""] *)
  line : int;  (** location of the attribute *)
}

val scan_structure : Parsetree.structure -> t list
(** All top-level [lint.allow] floating attributes of an implementation
    (including those inside sub-structures). *)

val scan_signature : Parsetree.signature -> t list

val apply : file:string -> t list -> Finding.t list -> Finding.t list
(** Mark findings covered by a valid allow as suppressed and append A001
    findings for invalid or unused allows. A001 itself cannot be
    suppressed, and an invalid allow (unknown rule, missing reason)
    suppresses nothing. *)
