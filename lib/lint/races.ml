open Parsetree

(* {1 Parallel-region race detection}

   A parallel region is a closure literal passed to one of the Pool
   entry points (map / map_array / map_array_steal / iter_grid /
   find_first) — the SoA simulator phases are themselves Pool.iter_grid
   calls, so they are covered by the same detection. Inside such a
   closure the Pool contract allows: reads of anything, writes to state
   created inside the closure, indexed writes whose index derives from
   the chunk/shard parameter (the canonical [results.(i) <- …] from the
   task for index [i]), Exchange posts, and Prng streams derived via
   [Prng.split]. Everything else is a schedule-dependent write:

   - R001 — write to captured mutable state (a ref, a mutable field, a
     Hashtbl, an array/Bigarray cell whose index is not derived from
     the chunk parameter), directly or through a call to a function
     whose inferred effects include [global_mut];
   - R002 — drawing from a captured Prng state (the draw order then
     depends on the schedule); [Prng.split base i] is the sanctioned
     derivation;
   - R003 — SoA column write whose index is not derived from the
     shard-local range: cross-shard writes must go through the batched
     Exchange API. *)

let pool_ops = [ "map"; "map_array"; "map_array_steal"; "iter_grid"; "find_first" ]

(* Sanctioned machinery a parallel closure may call even though its
   effect signature says [global_mut]: the pool itself (nested
   parallelism), the Out sinks and the Obs layer are all domain-sharded
   by construction. *)
let sanctioned_callee file =
  file = "lib/util/pool.ml" || file = "lib/util/out.ml"
  || (String.length file >= 8 && String.sub file 0 8 = "lib/obs/")

let rec peel e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel e
  | _ -> e

let ident_path e =
  match (peel e).pexp_desc with Pexp_ident { txt; _ } -> Some (Scope.path txt) | _ -> None

(* Is [Pool.<op>] (or [B.Pool.<op>], [Bn_util.Pool.<op>]) being applied? *)
let pool_entry p =
  let rec go = function
    | "Pool" :: op :: _ when List.mem op pool_ops -> true
    | _ :: rest -> go rest
    | [] -> false
  in
  go p

(* The base of an access path: [t.tallies] -> [t]; used to decide
   whether the written structure is captured. *)
let rec base_expr e =
  match (peel e).pexp_desc with Pexp_field (e, _) -> base_expr e | _ -> peel e

(* Captured means: not bound inside the closure. An unqualified name in
   the closure env is local; everything else (outer locals, parameters
   of the enclosing function, module-level state) is shared with the
   other chunks. *)
let captured ~env e =
  match (base_expr e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match Scope.path txt with [ x ] -> not (Scope.mem x env) | _ -> true)
  | _ -> false

let loc_finding ~rule ~file (loc : Location.t) msg =
  Finding.v ~rule ~file ~line:loc.loc_start.pos_lnum
    ~col:(loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    msg

let soa_col_write p =
  match List.rev p with
  | op :: col :: _ when List.mem col [ "F64"; "I32"; "I8" ] ->
    (match op with "set" | "uset" -> Some `Indexed | "fill" -> Some `Whole | _ -> None)
  | _ -> None

let prng_draws =
  [ "bits64"; "int"; "float"; "bool"; "pick"; "shuffle"; "exponential"; "geometric" ]

let prng_draw p =
  match List.rev p with
  | op :: rest -> List.mem "Prng" rest && List.mem op prng_draws
  | [] -> false

let describe e =
  match ident_path e with Some p -> String.concat "." p | None -> "<expr>"

(* {1 One closure} *)

let check_closure graph eff ~file ~scope closure acc =
  let push f = acc := f :: !acc in
  Scope.iter_expr ~env:Scope.empty
    (fun ~env e ->
      match e.pexp_desc with
      | Pexp_apply (head, args) -> (
        let argv = List.map snd args in
        match ident_path head with
        | Some [ (":=" | "incr" | "decr") as op ] -> (
          match argv with
          | target :: _ when captured ~env target ->
            push
              (loc_finding ~rule:"R001" ~file e.pexp_loc
                 (Printf.sprintf
                    "(%s) on captured ref %s inside a parallel closure — every chunk races on \
                     it; make it chunk-local or write a per-index slot"
                    op (describe target)))
          | _ -> ())
        | Some [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ] -> (
          match argv with
          | target :: _ when captured ~env target ->
            push
              (loc_finding ~rule:"R001" ~file e.pexp_loc
                 (Printf.sprintf
                    "Hashtbl mutation of captured %s inside a parallel closure — hash tables \
                     have no per-chunk write discipline"
                    (describe target)))
          | _ -> ())
        | Some [ ("Array" | "Bytes"); ("set" | "unsafe_set") ] -> (
          match argv with
          | target :: idx :: _ when captured ~env target && not (Scope.mentions env idx) ->
            push
              (loc_finding ~rule:"R001" ~file e.pexp_loc
                 (Printf.sprintf
                    "write to captured %s at an index not derived from the chunk parameter — \
                     chunks may collide on the same slot"
                    (describe target)))
          | _ -> ())
        | Some [ ("Array" | "Bytes"); ("fill" | "blit") ] -> (
          match argv with
          | target :: _ when captured ~env target ->
            push
              (loc_finding ~rule:"R001" ~file e.pexp_loc
                 (Printf.sprintf
                    "bulk write to captured %s inside a parallel closure — overlaps every \
                     other chunk's range"
                    (describe target)))
          | _ -> ())
        | Some ("Bigarray" :: rest)
          when (match List.rev rest with
               | ("set" | "unsafe_set" | "fill" | "blit") :: _ -> true
               | _ -> false) -> (
          match argv with
          | target :: idx :: _ when captured ~env target && not (Scope.mentions env idx) ->
            push
              (loc_finding ~rule:"R001" ~file e.pexp_loc
                 (Printf.sprintf
                    "Bigarray store to captured %s at an index not derived from the chunk \
                     parameter"
                    (describe target)))
          | _ -> ())
        | Some p when soa_col_write p <> None -> (
          match (soa_col_write p, argv) with
          | Some `Whole, target :: _ ->
            push
              (loc_finding ~rule:"R003" ~file e.pexp_loc
                 (Printf.sprintf
                    "whole-column SoA write (%s) inside a parallel closure — it spans every \
                     shard; do it between phases or route per-agent events through \
                     Soa.Exchange"
                    (describe target)))
          | Some `Indexed, target :: idx :: _ when not (Scope.mentions env idx) ->
            push
              (loc_finding ~rule:"R003" ~file e.pexp_loc
                 (Printf.sprintf
                    "SoA column write to %s at an index not derived from the shard-local \
                     range — cross-shard writes must go through the batched Soa.Exchange API"
                    (describe target)))
          | _ -> ())
        | Some p when prng_draw p -> (
          match argv with
          | rng :: _ when captured ~env rng ->
            push
              (loc_finding ~rule:"R002" ~file e.pexp_loc
                 (Printf.sprintf
                    "Prng draw from captured state %s inside a parallel closure — the draw \
                     order becomes schedule-dependent; derive a per-index stream with \
                     Prng.split"
                    (describe rng)))
          | _ -> ())
        | Some p -> (
          (* A helper call that smuggles a shared-state write. *)
          match Callgraph.resolve graph ~file ~scope ~env p with
          | Some callee
            when Effects.has_global_mut eff callee.Callgraph.id
                 && not (sanctioned_callee callee.Callgraph.file) ->
            push
              (loc_finding ~rule:"R001" ~file e.pexp_loc
                 (Printf.sprintf
                    "call to %s, whose inferred effects include global_mut — it writes \
                     structure-level mutable state from inside a parallel closure"
                    callee.Callgraph.id))
          | _ -> ())
        | None -> ())
      | Pexp_setfield (target, fld, _) when captured ~env target ->
        push
          (loc_finding ~rule:"R001" ~file e.pexp_loc
             (Printf.sprintf
                "mutable-field write %s.%s <- … on captured state inside a parallel closure"
                (describe target)
                (String.concat "." (Scope.flatten fld.txt))))
      | _ -> ())
    closure

(* {1 Tree walk} *)

let check graph eff mls =
  let acc = ref [] in
  List.iter
    (fun (file, _str) ->
      if file <> "lib/util/pool.ml" then
        List.iter
          (fun (d : Callgraph.def) ->
            if d.file = file then
              Scope.iter_expr ~env:Scope.empty
                (fun ~env:_ e ->
                  match e.pexp_desc with
                  | Pexp_apply (head, args) when
                      (match ident_path head with
                      | Some p -> pool_entry p
                      | None -> false) ->
                    List.iter
                      (fun (_, a) ->
                        match (peel a).pexp_desc with
                        | Pexp_fun _ | Pexp_function _ ->
                          check_closure graph eff ~file ~scope:d.scope (peel a) acc
                        | _ -> ())
                      args
                  | _ -> ())
                d.body)
          (Callgraph.defs graph))
    mls;
  List.sort Finding.compare !acc
