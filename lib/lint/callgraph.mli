(** Whole-program call graph over the parsed tree.

    Structure-level value bindings (top of a file or inside named
    sub-modules) become {e defs}; every identifier occurrence in a def's
    body that resolves to another def becomes an edge. Resolution is
    best-effort and purely syntactic: enclosing module scope first, then
    the file's [module X = …] aliases (followed through chains such as
    the [Beyond_nash] facade, with bounded fuel), then the tree-wide
    capitalized-basename map; dune library wrapper prefixes
    ([Bn_util.Pool.map]) are stripped using the library names. Paths
    into Stdlib, opam libraries or local bindings resolve to nothing.

    Everything is deterministic: defs are sorted by id, edges by
    (caller, callee, position), and {!to_json} is byte-stable for a
    fixed tree. *)

type def = {
  id : string;  (** [file ^ "#" ^ dotted path], the stable key *)
  file : string;
  path : string list;  (** module path within the file, then the name *)
  line : int;
  is_fun : bool;  (** binds a syntactic function (fun/function) *)
  body : Parsetree.expression;
  scope : string list;  (** enclosing module path within the file *)
}

type edge = { caller : string; callee : string; eline : int; ecol : int }

type t

val build : libs:string list -> (string * Parsetree.structure) list -> t
(** [build ~libs mls] over the parsed [.ml] files ([libs] are the dune
    library names, used to strip wrapper-module prefixes). *)

val defs : t -> def list
(** Sorted by id. *)

val find : t -> string -> def option
val edges : t -> edge list

val resolve :
  t -> file:string -> scope:string list -> env:Scope.env -> string list -> def option
(** Resolve one normalized value path occurring in [file] under the
    given module scope; names bound in [env] shadow everything. *)

val to_json : t -> string
(** Schema [bn-callgraph/1]: a summary block plus one record per def
    with its resolved callee ids. Byte-stable. *)

val json_escape : string -> string
(** JSON string-body escaping shared by the byte-stable exporters. *)
