(** H003 — library layering, checked from [lib/*/dune] files.

    The repo's dependency discipline is: [bn_obs] at the bottom (no
    in-tree dependencies — observability must be linkable from anywhere),
    [bn_util] directly above it (may depend only on [bn_obs]), and every
    other library above those. The in-tree dependency graph must also be
    acyclic. External (opam) dependencies are ignored. *)

type lib = {
  lib_name : string;
  deps : string list;  (** the [(libraries ...)] field, verbatim *)
  dune_file : string;  (** repo-relative path of the defining dune file *)
  line : int;  (** line of the [(name ...)] field *)
}

val libs_of_dune : file:string -> string -> lib list
(** Parse the [library] stanzas out of one dune file's content. Returns
    [[]] on files with no library stanza (or unparsable content — dune
    itself will complain about those). *)

val check : lib list -> Finding.t list
(** H003 findings over the whole in-tree library set. *)
