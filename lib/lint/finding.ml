type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  suppressed : string option;
}

type rule_info = { id : string; rule_severity : severity; summary : string }

let registry =
  [
    { id = "D001"; rule_severity = Error;
      summary = "Random.* outside Bn_util.Prng — randomness must flow from an explicit seed" };
    { id = "D002"; rule_severity = Error;
      summary = "wall-clock reads (Sys.time, Unix.gettimeofday/time) outside bench/" };
    { id = "D003"; rule_severity = Error;
      summary = "Hashtbl.iter/fold — bucket-order traversal; use Bn_util.Tbl.sorted_bindings" };
    { id = "D004"; rule_severity = Error;
      summary = "Marshal — representation-dependent serialization is banned" };
    { id = "D005"; rule_severity = Error;
      summary = "Obj.magic — defeats the type system and the determinism audit" };
    { id = "P001"; rule_severity = Error;
      summary = "top-level mutable state (ref/Hashtbl.create/Array.make/...) outside lib/util, lib/obs" };
    { id = "P002"; rule_severity = Error;
      summary = "Domain/Atomic/DLS outside Bn_util.Pool and Bn_obs.Obs" };
    { id = "P003"; rule_severity = Error;
      summary = "direct stdout printing in lib/ outside Bn_util.Out — rendering must go through Out sinks" };
    { id = "P004"; rule_severity = Error;
      summary = "Bigarray outside the flat numeric kernels (Normal_form, Nash, Learning, Simplex)" };
    { id = "P005"; rule_severity = Error;
      summary = "direct Gc access outside lib/obs — GC stats are nondeterministic; use the Obs GC probes" };
    { id = "H001"; rule_severity = Warning;
      summary = "lib/ module without an .mli interface" };
    { id = "H002"; rule_severity = Warning;
      summary = "open of a Stdlib-shadowing module (open List, open Printf, ...)" };
    { id = "H003"; rule_severity = Error;
      summary = "dune library layering violated (Bn_obs below Bn_util below everything)" };
    { id = "A001"; rule_severity = Error;
      summary = "[@@@lint.allow] audit: malformed, unknown rule ID, missing reason, or unused" };
    { id = "E000"; rule_severity = Error;
      summary = "source file failed to parse" };
    { id = "E001"; rule_severity = Error;
      summary = "solver/kernel call reaching randomness or the clock transitively, outside Prng" };
    { id = "E002"; rule_severity = Error;
      summary = "Det-counter region transitively reaching randomness or the clock" };
    { id = "R001"; rule_severity = Error;
      summary = "write to captured mutable state inside a parallel closure (direct or via a global_mut callee)" };
    { id = "R002"; rule_severity = Error;
      summary = "Prng draw from captured state inside a parallel closure — use Prng.split" };
    { id = "R003"; rule_severity = Error;
      summary = "cross-shard SoA column write inside a parallel closure — use the batched Soa.Exchange" };
  ]

let known_rule id = List.exists (fun r -> r.id = id) registry

let severity_of_rule id =
  match List.find_opt (fun r -> r.id = id) registry with
  | Some r -> r.rule_severity
  | None -> Error

let v ~rule ~file ~line ~col message =
  { rule; severity = severity_of_rule rule; file; line; col; message; suppressed = None }

let compare a b =
  Stdlib.compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string f =
  Printf.sprintf "%s:%d:%d: %s [%s] %s%s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message
    (match f.suppressed with None -> "" | Some reason -> Printf.sprintf " (allowed: %s)" reason)
