open Parsetree

type t = { rule : string; reason : string; line : int }

(* String constants of the payload expression, left to right:
   ["D001" "reason"] parses as an application of one constant to another. *)
let rec strings e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_apply (f, args) -> strings f @ List.concat_map (fun (_, a) -> strings a) args
  | Pexp_tuple es -> List.concat_map strings es
  | Pexp_sequence (a, b) -> strings a @ strings b
  | _ -> []

let of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    let line = attr.attr_loc.loc_start.pos_lnum in
    match attr.attr_payload with
    | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match strings e with
      | [] -> Some { rule = ""; reason = ""; line }
      | rule :: rest -> Some { rule; reason = String.concat " " rest; line })
    | _ -> Some { rule = ""; reason = ""; line }

(* Walk with the default iterator: floating attributes can sit inside
   sub-structures ([module M = struct [@@@lint.allow ...] ... end]). *)
let scan_with iter_root ast =
  let acc = ref [] in
  let attribute _this attr =
    match of_attribute attr with Some a -> acc := a :: !acc | None -> ()
  in
  let iter = { Ast_iterator.default_iterator with attribute } in
  iter_root iter ast;
  List.rev !acc

let scan_structure str = scan_with (fun it s -> it.Ast_iterator.structure it s) str
let scan_signature sg = scan_with (fun it s -> it.Ast_iterator.signature it s) sg

let apply ~file allows findings =
  let valid a = a.rule <> "" && a.reason <> "" && Finding.known_rule a.rule && a.rule <> "A001" in
  let suppress (f : Finding.t) =
    if f.rule = "A001" then f
    else
      match List.find_opt (fun a -> valid a && a.rule = f.rule) allows with
      | Some a -> { f with suppressed = Some a.reason }
      | None -> f
  in
  let findings = List.map suppress findings in
  let audit a =
    let bad msg = Some (Finding.v ~rule:"A001" ~file ~line:a.line ~col:0 msg) in
    if a.rule = "" then bad "malformed [@@@lint.allow]: expected a rule ID and a reason string"
    else if a.rule = "A001" then bad "A001 (the suppression audit) cannot itself be suppressed"
    else if not (Finding.known_rule a.rule) then
      bad (Printf.sprintf "[@@@lint.allow %S]: unknown rule ID" a.rule)
    else if a.reason = "" then
      bad (Printf.sprintf "[@@@lint.allow %S]: missing reason string" a.rule)
    else if not (List.exists (fun (f : Finding.t) -> f.rule = a.rule) findings) then
      bad (Printf.sprintf "[@@@lint.allow %S]: unused — no finding of that rule in this file" a.rule)
    else None
  in
  findings @ List.filter_map audit allows
