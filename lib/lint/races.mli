(** Parallel-region race detection.

    A parallel region is a closure literal passed to a [Pool] entry
    point ([map], [map_array], [map_array_steal], [iter_grid],
    [find_first]); the SoA simulator phases are [Pool.iter_grid] calls
    and are covered by the same detection.

    - R001 — write to captured mutable state (ref, mutable field,
      Hashtbl, array/Bytes/Bigarray cell at an index not derived from
      the chunk parameter), directly or via a call to a function whose
      inferred effects include [global_mut].
    - R002 — Prng draw from captured generator state; [Prng.split] /
      [copy] / [create] are the sanctioned pure derivations.
    - R003 — SoA column write at a non-shard-derived index, or a
      whole-column fill, inside a parallel closure; cross-shard traffic
      must use the batched [Soa.Exchange] API. *)

val check :
  Callgraph.t -> Effects.table -> (string * Parsetree.structure) list -> Finding.t list
(** Findings over every parallel closure in the parsed tree, in
    deterministic {!Finding.compare} order. *)
