(** Bn_lint — the determinism/purity static-analysis pass.

    Parses every [.ml]/[.mli] under [lib/], [bin/], [bench/] and [test/]
    into Parsetree exactly once and runs three layers over the shared
    ASTs: the per-file {!Rules} engine, the tree-level hygiene checks
    (H001 missing interfaces, H003 dune layering), and the whole-program
    analyses — a {!Callgraph}, transitive {!Effects} inference
    (E001/E002) and the {!Races} parallel-region detector (R001–R003).
    Together they turn the byte-identical-at-any[-j] contract into a
    compile-time property instead of one the golden tests discover after
    the fact. Driven by [bin/lint.exe]; [dune runtest] asserts the tree
    itself is lint-clean (see [test/test_lint.ml]).

    Reports are deterministic: findings are sorted by
    (file, line, col, rule), paths are root-relative with ['/']
    separators, and nothing in the output depends on the clock or the
    environment — the [--json], [--callgraph-json] and [--effects]
    reports are byte-stable for a fixed tree. *)

type report = {
  findings : Finding.t list;  (** sorted; suppressed findings included *)
  files_scanned : int;  (** [.ml]/[.mli] files parsed *)
  dune_files : int;  (** dune files checked for layering *)
  graph : Callgraph.t;  (** the tree-wide call graph *)
  effects : Effects.table;  (** inferred transitive effect signatures *)
}

exception Invalid_root of string
(** Raised by {!run} / {!parse_mls} when the root does not exist or is
    not a directory — the driver maps it to a usage error (exit 2)
    rather than reporting a silently empty clean tree. *)

val lint_source : file:string -> string -> Finding.t list
(** Run the per-file rules (with suppression applied) over one unit given
    as a string; [file] is its repo-relative path, which determines rule
    scoping and [.ml]/[.mli] parsing. Unparsable sources yield a single
    E000 finding. The tree-level and whole-program rules (H001/H003,
    E/R) need {!run}. *)

val run : root:string -> report
(** Lint the tree rooted at [root] (the directory holding [lib/] …). *)

val unsuppressed : report -> Finding.t list

val parse_mls : root:string -> string list * (string * Parsetree.structure) list
(** The dune library names and parsed [.ml] files of the tree — the
    input the whole-program analyses run on, exposed so the bench can
    time {!Callgraph.build} + {!Effects.infer} without re-walking. *)

val find_root : ?start:string -> unit -> string option
(** Nearest ancestor of [start] (default: the current directory)
    containing a [dune-project] — how the driver, bench and tests locate
    the tree from wherever dune runs them. *)

(** {1 Rendering} *)

val render_human : report -> string
(** One line per unsuppressed finding plus a summary tail; ends with a
    newline. *)

val to_json : report -> string
(** The machine report: schema [bn-lint/1] with a summary block
    (per-rule unsuppressed counts included) and one record per finding,
    suppressed ones carrying their reason. RFC 8259-valid and
    byte-stable for a fixed tree. *)

val callgraph_json : report -> string
(** {!Callgraph.to_json} of the report's graph (schema
    [bn-callgraph/1]). *)

val effects_json : report -> string
(** {!Effects.to_json} of the report's effect table (schema
    [bn-effects/1]). *)

val rules_table : unit -> string
(** The registry as an aligned [ID severity summary] listing. *)
