(** Bn_lint — the determinism/purity static-analysis pass.

    Parses every [.ml]/[.mli] under [lib/], [bin/], [bench/] and [test/]
    into Parsetree and runs the {!Rules} engine plus the tree-level
    hygiene checks (H001 missing interfaces, H003 dune layering) over the
    whole repo, turning the byte-identical-at-any[-j] contract into a
    compile-time property instead of one the golden tests discover after
    the fact. Driven by [bin/lint.exe]; [dune runtest] asserts the tree
    itself is lint-clean (see [test/test_lint.ml]).

    Reports are deterministic: findings are sorted by
    (file, line, col, rule), paths are root-relative with ['/']
    separators, and nothing in the output depends on the clock or the
    environment — the [--json] report is byte-stable for a fixed tree. *)

type report = {
  findings : Finding.t list;  (** sorted; suppressed findings included *)
  files_scanned : int;  (** [.ml]/[.mli] files parsed *)
  dune_files : int;  (** dune files checked for layering *)
}

val lint_source : file:string -> string -> Finding.t list
(** Run the per-file rules (with suppression applied) over one unit given
    as a string; [file] is its repo-relative path, which determines rule
    scoping and [.ml]/[.mli] parsing. Unparsable sources yield a single
    E000 finding. The tree-level rules (H001/H003) need {!run}. *)

val run : root:string -> report
(** Lint the tree rooted at [root] (the directory holding [lib/] …). *)

val unsuppressed : report -> Finding.t list

val find_root : ?start:string -> unit -> string option
(** Nearest ancestor of [start] (default: the current directory)
    containing a [dune-project] — how the driver, bench and tests locate
    the tree from wherever dune runs them. *)

(** {1 Rendering} *)

val render_human : report -> string
(** One line per unsuppressed finding plus a summary tail; ends with a
    newline. *)

val to_json : report -> string
(** The machine report: schema [bn-lint/1] with a summary block
    (per-rule unsuppressed counts included) and one record per finding,
    suppressed ones carrying their reason. RFC 8259-valid and
    byte-stable for a fixed tree. *)

val rules_table : unit -> string
(** The registry as an aligned [ID severity summary] listing. *)
