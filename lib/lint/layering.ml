type lib = { lib_name : string; deps : string list; dune_file : string; line : int }

(* {1 A minimal s-expression reader — just enough for dune files} *)

type sexp = Atom of string * int (* line *) | List of sexp list

let parse_sexps content =
  let n = String.length content in
  let line = ref 1 in
  let pos = ref 0 in
  let peek () = if !pos < n then Some content.[!pos] else None in
  let advance () =
    (if content.[!pos] = '\n' then incr line);
    incr pos
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while peek () <> None && content.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !pos in
    let ln = !line in
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"') | None -> false
      | Some _ -> true
    do
      advance ()
    done;
    Atom (String.sub content start (!pos - start), ln)
  in
  let quoted () =
    let ln = !line in
    advance () (* opening quote *);
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> ()
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some c ->
          Buffer.add_char b c;
          advance ()
        | None -> ());
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Atom (Buffer.contents b, ln)
  in
  let rec sexp () =
    skip_ws ();
    match peek () with
    | None -> None
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec go () =
        skip_ws ();
        match peek () with
        | None -> ()
        | Some ')' -> advance ()
        | Some _ -> (
          match sexp () with
          | Some s ->
            items := s :: !items;
            go ()
          | None -> ())
      in
      go ();
      Some (List (List.rev !items))
    | Some ')' ->
      advance ();
      sexp ()
    | Some '"' -> Some (quoted ())
    | Some _ -> Some (atom ())
  in
  let rec all acc = match sexp () with Some s -> all (s :: acc) | None -> List.rev acc in
  all []

(* {1 Library stanzas} *)

let field name = function
  | List (Atom (a, _) :: rest) when a = name -> Some rest
  | _ -> None

let atoms items = List.filter_map (function Atom (a, _) -> Some a | List _ -> None) items

let libs_of_dune ~file content =
  List.filter_map
    (function
      | List (Atom ("library", _) :: fields) ->
        let find name = List.find_map (field name) fields in
        (match find "name" with
        | Some (Atom (lib_name, line) :: _) ->
          let deps = match find "libraries" with Some items -> atoms items | None -> [] in
          Some { lib_name; deps; dune_file = file; line }
        | _ -> None)
      | _ -> None)
    (parse_sexps content)

(* {1 The layering checks} *)

let check libs =
  let internal = List.map (fun l -> l.lib_name) libs in
  (* A dep counts as in-tree if it is defined in the scanned tree or just
     follows the repo naming scheme — so a partial tree (test fixtures)
     still layers correctly. *)
  let in_tree d =
    List.mem d internal || d = "beyond_nash"
    || (String.length d > 3 && String.sub d 0 3 = "bn_")
  in
  let internal_deps l = List.filter in_tree l.deps in
  let finding l msg = Finding.v ~rule:"H003" ~file:l.dune_file ~line:l.line ~col:0 msg in
  let bottom =
    List.concat_map
      (fun l ->
        match l.lib_name with
        | "bn_obs" ->
          List.map
            (fun d ->
              finding l
                (Printf.sprintf
                   "bn_obs must sit below every in-tree library but depends on %s" d))
            (internal_deps l)
        | "bn_util" ->
          List.filter_map
            (fun d ->
              if d = "bn_obs" then None
              else
                Some
                  (finding l
                     (Printf.sprintf
                        "bn_util may depend only on bn_obs in-tree but depends on %s" d)))
            (internal_deps l)
        | _ -> [])
      libs
  in
  (* Cycle detection over the in-tree graph: iterative DFS with a path. *)
  let cycles =
    let visited = ref [] in
    let rec dfs path l =
      if List.mem l.lib_name path then
        [ finding l
            (Printf.sprintf "dependency cycle: %s"
               (String.concat " -> " (List.rev (l.lib_name :: path)))) ]
      else if List.mem l.lib_name !visited then []
      else begin
        visited := l.lib_name :: !visited;
        List.concat_map
          (fun d ->
            match List.find_opt (fun l' -> l'.lib_name = d) libs with
            | Some l' -> dfs (l.lib_name :: path) l'
            | None -> [])
          (internal_deps l)
      end
    in
    List.concat_map (dfs []) libs
  in
  bottom @ cycles
