(** Lint findings and the rule registry.

    Every rule has a stable ID ([D…] determinism, [P…] purity/layering,
    [H…] hygiene, [A…] suppression audit, [E…] tool errors), a severity
    and a one-line summary; every finding carries a precise
    [file:line:col] location. The registry is the single source of truth
    for {!Allow} (unknown-ID detection), the [--rules] listing and the
    rule table in DESIGN.md §9. *)

type severity = Error | Warning

type t = {
  rule : string;  (** stable rule ID, e.g. ["D001"] *)
  severity : severity;
  file : string;  (** path relative to the lint root, ['/']-separated *)
  line : int;  (** 1-based; 0 when the finding is about the whole file *)
  col : int;  (** 0-based column *)
  message : string;
  suppressed : string option;
      (** [Some reason] when an in-file [[@@@lint.allow]] covers it *)
}

val v : rule:string -> file:string -> line:int -> col:int -> string -> t
(** Build an unsuppressed finding; severity comes from the registry. *)

val compare : t -> t -> int
(** Order by (file, line, col, rule, message) — the deterministic report
    order. *)

val severity_to_string : severity -> string

val to_string : t -> string
(** [file:line:col: severity [rule] message] — the human report line. *)

(** {1 Registry} *)

type rule_info = {
  id : string;
  rule_severity : severity;
  summary : string;  (** one line, shown by [--rules] *)
}

val registry : rule_info list
(** All rules, in ID order. *)

val known_rule : string -> bool
