(** Struct-of-arrays agent store for million-agent simulations.

    The boxed per-agent loops in [Scrip] and [Gnutella] top out around
    n ≈ 10³; the paper's §5 claims (scrip steady states, Gnutella free
    riding) are about n → ∞ populations. This module is the storage and
    sharding layer that makes n = 10⁶ interactive: each per-agent field
    lives in its own flat [Bigarray] column ({!F64}, {!I32}, {!I8} — no
    per-agent boxing, no GC scanning of agent state), the population is
    partitioned into contiguous {e shards} ({!part}), and cross-shard
    interactions accumulate into per-(src, dst) buffers ({!Exchange})
    that are flushed at batch boundaries in a fixed lexicographic order.

    The determinism contract mirrors {!Bn_util.Pool}: a simulation shard
    may read and write {e its own} agents' columns freely during a
    parallel phase and may post events to any destination shard; all
    cross-shard state changes happen in {!Exchange.flush}, which runs
    after the parallel barrier and replays events in (src, dst, posting
    order) — a schedule-independent order. Combined with per-shard
    {!Bn_util.Prng.split} streams, engine output is byte-identical at
    any [-j] for a fixed shard count.

    Bigarray access is confined by lint rule P004 to the flat numeric
    kernels; this module and the simulator kernels built on it
    ([Scrip_soa], [Gnutella_soa]) are on the allowance list. *)

(** {1 Shard partition} *)

type part
(** A balanced contiguous partition of agents [0 … n−1] into shards:
    shard sizes differ by at most one, and shard boundaries depend only
    on [(n, shards)] — never on the domain budget executing them. *)

val partition : n:int -> shards:int -> part
(** [partition ~n ~shards] clamps [shards] to [1 … max 1 n].
    @raise Invalid_argument if [n < 0] or [shards < 1]. *)

val n : part -> int
val shards : part -> int

val bounds : part -> int -> int * int
(** [bounds p s] is the half-open agent range [(lo, hi)] of shard [s]. *)

val shard_of : part -> int -> int
(** The shard owning agent [i]; O(1), consistent with {!bounds}. *)

(** {1 Columns}

    Fixed-length unboxed columns, one per agent field. Creation
    zero-fills. Reads/writes are bounds-checked ([get]/[set]) or not
    ([uget]/[uset] — for the shard-local hot loops whose indices are
    already confined to [bounds]). *)

module F64 : sig
  type t

  val create : int -> t
  val length : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val uget : t -> int -> float
  val uset : t -> int -> float -> unit
  val fill : t -> float -> unit
  val to_array : t -> float array
end

module I32 : sig
  type t

  val create : int -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val uget : t -> int -> int
  val uset : t -> int -> int -> unit
  val fill : t -> int -> unit
  val to_array : t -> int array
end

module I8 : sig
  type t

  val create : int -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val uget : t -> int -> int
  val uset : t -> int -> int -> unit
  val fill : t -> int -> unit
end

(** {1 Cross-shard event exchange} *)

module Exchange : sig
  type t
  (** [shards²] append-only buffers of [(a, b)] integer event pairs.
      During a parallel phase, the shard that owns [src] is the only
      writer of every [(src, dst)] buffer, so posting needs no locks and
      no atomics; the buffers are drained after the barrier. *)

  val create : shards:int -> t

  val post : t -> src:int -> dst:int -> int -> int -> unit
  (** Append one event to the [(src, dst)] buffer. Safe to call
      concurrently from distinct [src] shards. *)

  val pending : t -> int
  (** Events currently buffered (all pairs). Call only between parallel
      phases. *)

  val flush : t -> (src:int -> dst:int -> int -> int -> unit) -> int
  (** Replay every buffered event — (src, dst) pairs in lexicographic
      order, events within a pair in posting order — then clear all
      buffers and return the number of events replayed. The replay order
      is a pure function of what was posted, never of the schedule that
      posted it. *)
end
