(* Struct-of-arrays agent store: flat Bigarray columns per field, a
   balanced contiguous shard partition, and per-(src,dst) cross-shard
   event buffers flushed in lexicographic order. See soa.mli for the
   determinism contract. *)

(* {1 Shard partition} *)

type part = { n : int; shards : int; quot : int; rem : int }
(* Shard s covers [lo, hi) with the first [rem] shards one agent larger:
   sizes are quot+1 for s < rem and quot otherwise. *)

let partition ~n ~shards =
  if n < 0 then invalid_arg "Soa.partition: n < 0";
  if shards < 1 then invalid_arg "Soa.partition: shards < 1";
  let shards = max 1 (min shards (max 1 n)) in
  { n; shards; quot = n / shards; rem = n mod shards }

let n p = p.n
let shards p = p.shards

let bounds p s =
  if s < 0 || s >= p.shards then invalid_arg "Soa.bounds: shard out of range";
  let lo = (s * p.quot) + min s p.rem in
  let size = if s < p.rem then p.quot + 1 else p.quot in
  (lo, lo + size)

let shard_of p i =
  if i < 0 || i >= p.n then invalid_arg "Soa.shard_of: agent out of range";
  let big = p.rem * (p.quot + 1) in
  if i < big then i / (p.quot + 1) else p.rem + ((i - big) / p.quot)

(* {1 Columns} *)

module F64 = struct
  type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create len =
    let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
    Bigarray.Array1.fill a 0.0;
    a

  let length = Bigarray.Array1.dim
  let get = Bigarray.Array1.get
  let set = Bigarray.Array1.set
  let uget = Bigarray.Array1.unsafe_get
  let uset = Bigarray.Array1.unsafe_set
  let fill = Bigarray.Array1.fill
  let to_array t = Array.init (length t) (get t)
end

module I32 = struct
  type t = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create len =
    let a = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len in
    Bigarray.Array1.fill a 0l;
    a

  let length = Bigarray.Array1.dim
  let get t i = Int32.to_int (Bigarray.Array1.get t i)
  let set t i v = Bigarray.Array1.set t i (Int32.of_int v)
  let uget t i = Int32.to_int (Bigarray.Array1.unsafe_get t i)
  let uset t i v = Bigarray.Array1.unsafe_set t i (Int32.of_int v)
  let fill t v = Bigarray.Array1.fill t (Int32.of_int v)
  let to_array t = Array.init (length t) (get t)
end

module I8 = struct
  type t = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  let create len =
    let a = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout len in
    Bigarray.Array1.fill a 0;
    a

  let length = Bigarray.Array1.dim
  let get = Bigarray.Array1.get
  let set = Bigarray.Array1.set
  let uget = Bigarray.Array1.unsafe_get
  let uset = Bigarray.Array1.unsafe_set
  let fill = Bigarray.Array1.fill
end

(* {1 Cross-shard event exchange} *)

module Exchange = struct
  (* One growable int buffer per (src, dst) pair, storing events as two
     consecutive ints. buffers.(src * shards + dst) is written only by
     the domain running shard [src] during a parallel phase, which is
     what makes [post] lock-free; [flush] runs after the barrier. *)
  type buf = { mutable data : int array; mutable len : int }

  type t = { shards : int; buffers : buf array }

  let create ~shards =
    if shards < 1 then invalid_arg "Soa.Exchange.create: shards < 1";
    {
      shards;
      buffers = Array.init (shards * shards) (fun _ -> { data = [||]; len = 0 });
    }

  let post t ~src ~dst a b =
    let buf = t.buffers.((src * t.shards) + dst) in
    let need = buf.len + 2 in
    if need > Array.length buf.data then begin
      let cap = max 64 (2 * Array.length buf.data) in
      let data = Array.make (max cap need) 0 in
      Array.blit buf.data 0 data 0 buf.len;
      buf.data <- data
    end;
    buf.data.(buf.len) <- a;
    buf.data.(buf.len + 1) <- b;
    buf.len <- buf.len + 2

  let pending t =
    Array.fold_left (fun acc buf -> acc + (buf.len / 2)) 0 t.buffers

  let flush t f =
    let replayed = ref 0 in
    for src = 0 to t.shards - 1 do
      for dst = 0 to t.shards - 1 do
        let buf = t.buffers.((src * t.shards) + dst) in
        let len = buf.len in
        let i = ref 0 in
        while !i < len do
          f ~src ~dst buf.data.(!i) buf.data.(!i + 1);
          i := !i + 2
        done;
        replayed := !replayed + (len / 2);
        buf.len <- 0
      done
    done;
    !replayed
end
