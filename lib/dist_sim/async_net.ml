module Obs = Bn_obs.Obs

(* Scenario sweeps go through Pool.map (no early exit), so these are
   deterministic for any -j. *)
let c_runs = Obs.counter "async_net.runs"
let c_steps = Obs.counter "async_net.steps"
let c_dropped = Obs.counter "async_net.dropped"

type ('s, 'm) process = {
  init : int -> 's * (int * 'm) list;
  on_message : me:int -> 's -> sender:int -> 'm -> 's * (int * 'm) list;
  decided : 's -> int option;
}

type 'm in_flight = { sender : int; dest : int; payload : 'm; seq : int }

type 'm scheduler = 'm in_flight list -> 'm in_flight

let fifo pending =
  List.fold_left (fun best m -> if m.seq < best.seq then m else best) (List.hd pending) pending

let random rng pending = List.nth pending (Bn_util.Prng.int rng (List.length pending))

let delayer ~victim ~budget pending =
  let others = List.filter (fun m -> m.sender <> victim) pending in
  if others <> [] && !budget > 0 then begin
    decr budget;
    fifo others
  end
  else fifo pending

(* Environment faults for the asynchronous network: once the scheduler has
   committed to delivering a message, the filter may still [Drop] it (it
   vanishes — no retransmission), [Duplicate] it (delivered now and
   re-enqueued as a fresh in-flight copy), or [Replace] its payload (the
   asynchronous face of {!Faults.Corrupt}). [step] is the 0-based delivery
   step, so filters driven by a {!Bn_util.Prng} stream are deterministic
   for a fixed seed and scheduler. *)
type 'm fault_verdict = Deliver | Drop | Duplicate | Replace of 'm

type 'm fault_filter = step:int -> 'm in_flight -> 'm fault_verdict

type 'o result = {
  decisions : 'o option array;
  steps : int;
  undelivered : int;
  dropped : int;
}

let run ?(max_steps = 100_000) ?faults ~n ~scheduler process =
  if n <= 0 then invalid_arg "Async_net.run: need processes";
  Obs.incr c_runs;
  Obs.span "async_net.run" ~args:(fun () -> [ ("n", Obs.I n) ])
  @@ fun () ->
  let seq = ref 0 in
  let pending = ref [] in
  let post sender (dest, payload) =
    if dest < 0 || dest >= n then invalid_arg "Async_net.run: destination out of range";
    pending := { sender; dest; payload; seq = !seq } :: !pending;
    incr seq
  in
  let states =
    Array.init n (fun me ->
        let state, outgoing = process.init me in
        List.iter (post me) outgoing;
        state)
  in
  let steps = ref 0 in
  let dropped = ref 0 in
  let all_decided () = Array.for_all (fun s -> process.decided s <> None) states in
  while (not (all_decided ())) && !pending <> [] && !steps < max_steps do
    let m = scheduler !pending in
    pending := List.filter (fun m' -> m'.seq <> m.seq) !pending;
    let verdict =
      match faults with None -> Deliver | Some f -> f ~step:!steps m
    in
    (match verdict with
    | Drop -> incr dropped
    | (Deliver | Duplicate | Replace _) as v ->
      (match v with Duplicate -> post m.sender (m.dest, m.payload) | _ -> ());
      let payload = match v with Replace p -> p | _ -> m.payload in
      let state, outgoing =
        process.on_message ~me:m.dest states.(m.dest) ~sender:m.sender payload
      in
      states.(m.dest) <- state;
      List.iter (post m.dest) outgoing);
    incr steps
  done;
  Obs.add c_steps !steps;
  Obs.add c_dropped !dropped;
  {
    decisions = Array.map process.decided states;
    steps = !steps;
    undelivered = List.length !pending;
    dropped = !dropped;
  }

let run_scenarios ?max_steps ?(pool = Bn_util.Pool.serial) ~n schedulers process =
  (* Each scenario builds its scheduler on its own domain (schedulers may
     carry private mutable state, e.g. [delayer]'s budget), and every run
     is an independent simulation, so results are scenario-order
     deterministic for any pool size. *)
  Bn_util.Pool.map pool (fun mk -> run ?max_steps ~n ~scheduler:(mk ()) process) schedulers
