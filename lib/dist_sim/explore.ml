(** Schedule exploration: run many seeded random fault schedules against a
    system under test, check user-supplied invariants, and shrink any
    violating schedule to a (locally) minimal counterexample.

    Determinism contract: trial [i] of [explore ~seed] draws its schedule
    from [Prng.split (Prng.create seed) i], and trials are mapped over a
    {!Bn_util.Pool} by index ({!Bn_util.Pool.map_array_steal}: stealing
    rebalances which domain runs a trial — violating trials shrink and so
    cost far more than clean ones — but never which slot its result fills),
    so the report — verdicts, violating trials, schedules and shrunk
    counterexamples — is bit-identical for any [-j] and across runs with
    the same seed. Replaying a violation therefore
    needs only [(seed, trial)]; {!transcript} prints exactly that. *)

module Obs = Bn_obs.Obs

(* All trials run (the pool map has no early exit) and shrinking is a
   sequential greedy loop per violation, so every explorer counter is
   deterministic in (seed, trials) — the values are part of the golden
   metrics snapshot in test_obs. *)
let c_schedules = Obs.counter "explore.schedules"
let c_violations = Obs.counter "explore.violations"
let c_shrink_evals = Obs.counter "explore.shrink_evals"

(* Per-violation shrink cost is a pure function of the workload (the
   shrinker is deterministic), so its distribution is a Det sketch; the
   per-trial wall time is scheduling-dependent and Volatile. *)
let sk_shrink_evals = Obs.sketch ~kind:Obs.Det "explore.shrink_evals_per_violation"
let sk_trial_ns = Obs.sketch ~kind:Obs.Volatile "explore.trial_ns"

type 'r system = {
  run : Faults.schedule -> 'r;
      (** Execute the system under one fault schedule. Must be
          deterministic: same schedule, same result. *)
  invariants : (string * (Faults.schedule -> 'r -> bool)) list;
      (** Named predicates; the schedule is passed so checks can
          {!Faults.mask} the culprits' outputs. *)
}

type violation = {
  trial : int;  (** index of the violating trial *)
  schedule : Faults.schedule;  (** schedule as drawn *)
  failed : string list;  (** invariants it breaks *)
  shrunk : Faults.schedule;  (** greedily minimized counterexample *)
  shrunk_failed : string list;  (** invariants the shrunk schedule breaks *)
  shrink_evals : int;
      (** candidate schedules evaluated while shrinking this violation —
          the (previously invisible) cost of minimization *)
}

type report = {
  seed : int;
  trials : int;
  violations : violation list;  (** in trial order *)
}

let failures sys schedule =
  let r = sys.run schedule in
  List.filter_map (fun (name, check) -> if check schedule r then None else Some name) sys.invariants

(* Greedy shrinking: repeatedly delete the first single event — then, at a
   fixpoint, the first pair of events — whose removal preserves {e some}
   invariant violation (not necessarily the original one: any
   counterexample is a counterexample). Terminates because each step
   strictly shrinks the schedule; the pair pass escapes plateaus where two
   events are individually redundant but jointly load-bearing. *)
let shrink sys schedule =
  (* [evals] counts candidate evaluations — the dominant cost of
     shrinking — and is returned alongside the minimized schedule. *)
  let evals = ref 0 in
  let still_violates s =
    incr evals;
    failures sys s <> []
  in
  let without iys s = List.filteri (fun j _ -> not (List.mem j iys)) s in
  let rec go s =
    let k = List.length s in
    let rec try_singles i =
      if i >= k then None
      else
        let candidate = without [ i ] s in
        if still_violates candidate then Some candidate else try_singles (i + 1)
    in
    let try_pairs () =
      let rec outer i =
        if i >= k then None
        else
          let rec inner j =
            if j >= k then outer (i + 1)
            else
              let candidate = without [ i; j ] s in
              if still_violates candidate then Some candidate else inner (j + 1)
          in
          inner (i + 1)
      in
      outer 0
    in
    match try_singles 0 with
    | Some smaller -> go smaller
    | None -> ( match try_pairs () with Some smaller -> go smaller | None -> s)
  in
  let shrunk = go schedule in
  Obs.add c_shrink_evals !evals;
  (shrunk, !evals)

let explore ?(pool = Bn_util.Pool.serial) ~seed ~trials ~gen sys =
  if trials <= 0 then invalid_arg "Explore.explore: need trials > 0";
  let base = Bn_util.Prng.create seed in
  let outcomes =
    Bn_util.Pool.map_array_steal pool
      (fun trial ->
        Obs.incr c_schedules;
        Obs.span "explore.trial" ~args:(fun () -> [ ("trial", Obs.I trial); ("seed", Obs.I seed) ])
        @@ fun () ->
        Obs.timed sk_trial_ns
        @@ fun () ->
        let rng = Bn_util.Prng.split base trial in
        let schedule = gen rng in
        match failures sys schedule with
        | [] -> None
        | failed ->
          Obs.incr c_violations;
          let shrunk, shrink_evals = shrink sys schedule in
          Obs.observe_sk sk_shrink_evals shrink_evals;
          Some
            { trial; schedule; failed; shrunk; shrunk_failed = failures sys shrunk; shrink_evals })
      (Array.init trials Fun.id)
  in
  { seed; trials; violations = List.filter_map Fun.id (Array.to_list outcomes) }

(* {1 Replayable transcripts} *)

let transcript ~name report =
  let b = Buffer.create 256 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "explore %s: seed=%d trials=%d violations=%d\n" name report.seed report.trials
    (List.length report.violations);
  (match report.violations with
  | [] -> p "  every schedule satisfied every invariant\n"
  | v :: _ ->
    p "  first violation: trial=%d failed=[%s]\n" v.trial (String.concat ", " v.failed);
    p "  schedule: %s\n" (Faults.schedule_to_string v.schedule);
    p "  shrunk (%d event%s): %s  failed=[%s]\n"
      (List.length v.shrunk)
      (if List.length v.shrunk = 1 then "" else "s")
      (Faults.schedule_to_string v.shrunk)
      (String.concat ", " v.shrunk_failed);
    p "  replay: --explore %d --seed %d  (trial %d)\n" report.trials report.seed v.trial);
  Buffer.contents b

let min_shrunk_size report =
  List.fold_left
    (fun acc v -> min acc (List.length v.shrunk))
    max_int report.violations
