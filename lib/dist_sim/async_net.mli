(** Asynchronous message-passing with an adversarial scheduler.

    The paper's §5 stresses that all of §2's results assume synchrony and
    that "things are more complicated in asynchronous settings". This
    module makes that concrete: computation is event-driven, and a
    {e scheduler} — possibly adversarial — picks which in-flight message is
    delivered next. Experiment E15 uses it to show an adversarial scheduler
    delaying consensus linearly in its delay budget, while the synchronous
    simulator decides in a fixed number of rounds. *)

type ('s, 'm) process = {
  init : int -> 's * (int * 'm) list;
      (** Initial state and initial messages (destination, payload). *)
  on_message : me:int -> 's -> sender:int -> 'm -> 's * (int * 'm) list;
  decided : 's -> int option;
}

type 'm in_flight = { sender : int; dest : int; payload : 'm; seq : int }
(** A pending message; [seq] is a global sequence number (FIFO order). *)

type 'm scheduler = 'm in_flight list -> 'm in_flight
(** Chooses the next message to deliver from a non-empty pending list. *)

val fifo : 'm scheduler
(** Deliver in global send order (the synchronous-like baseline). *)

val random : Bn_util.Prng.t -> 'm scheduler
(** Uniformly random pending message. *)

val delayer : victim:int -> budget:int ref -> 'm scheduler
(** Adversarial: starves messages {e from} [victim] while any other message
    is pending, spending one unit of [budget] per starvation step; once the
    budget is exhausted it behaves like {!fifo}. (A finite budget models
    the eventual-delivery fairness assumption.) *)

type 'm fault_verdict = Deliver | Drop | Duplicate | Replace of 'm

type 'm fault_filter = step:int -> 'm in_flight -> 'm fault_verdict
(** Applied after the scheduler commits to a message: [Drop] loses it (no
    retransmission), [Duplicate] delivers it and re-enqueues a fresh copy,
    [Replace p] delivers payload [p] instead (a Byzantine link — the
    asynchronous face of {!Bn_dist_sim.Faults.Corrupt}). [step] is the
    0-based delivery step, so a {!Bn_util.Prng}-driven filter is
    deterministic for a fixed seed and scheduler — see
    {!Bn_dist_sim.Faults.async_filter} and
    {!Bn_dist_sim.Faults.async_plan}. *)

type 'o result = {
  decisions : 'o option array;
  steps : int;  (** Scheduler steps taken (including dropped ones). *)
  undelivered : int;  (** Messages still in flight at the end. *)
  dropped : int;  (** Messages lost by the fault filter. *)
}

val run :
  ?max_steps:int ->
  ?faults:'m fault_filter ->
  n:int ->
  scheduler:'m scheduler ->
  ('s, 'm) process ->
  int result
(** Runs until every process has decided, no messages are pending, or
    [max_steps] (default 100_000) deliveries have happened. *)

val run_scenarios :
  ?max_steps:int ->
  ?pool:Bn_util.Pool.t ->
  n:int ->
  (unit -> 'm scheduler) list ->
  ('s, 'm) process ->
  int result list
(** [run_scenarios ~pool ~n makers process] runs one independent simulation
    per scheduler thunk, in parallel on [pool] (default serial), returning
    results in input order. Thunks are invoked on the worker domain so
    stateful schedulers (like {!delayer}) get private state per scenario. *)
