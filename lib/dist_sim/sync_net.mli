(** Synchronous round-based message-passing network simulator.

    Computation proceeds in lockstep rounds: every process emits messages,
    the network delivers them all, every process updates its state. Channels
    are private and authenticated (the receiver learns the true sender), as
    assumed by the cheap-talk results in paper §2. A {e broadcast channel}
    — a primitive that forces a sender to send the same value to everyone —
    is modelled by the [All] destination, which the simulator delivers
    identically to all processes, including for corrupted senders (that is
    exactly the extra power the n > 2k+2t regime assumes).

    Faulty behaviour is injected with an {!adversary}, which fully controls
    the corrupted processes: it sees their inboxes and chooses their
    outgoing messages (equivocation over unicast channels is allowed). *)

type dest = To of int | All

type ('s, 'm, 'o) protocol = {
  init : int -> 's;  (** Initial state from the process id. *)
  send : round:int -> me:int -> 's -> (dest * 'm) list;
      (** Messages to emit at the start of a round. *)
  recv : round:int -> me:int -> 's -> (int * 'm) list -> 's;
      (** State update given the round's inbox as (sender, message). The
          inbox is sorted by sender id; broadcast copies are included. *)
  output : me:int -> 's -> 'o option;  (** Decision, once reached. *)
}

type 'm adversary = {
  corrupted : int list;
  behave :
    round:int -> me:int -> inbox:(int * 'm) list -> (dest * 'm) list;
      (** Outgoing traffic of corrupted process [me] this round. *)
}

val silent : int list -> 'm adversary
(** Crash-from-the-start adversary: corrupted processes never send. *)

type 'm fault_plan = {
  crashed : round:int -> int -> bool;
      (** [crashed ~round p]: has [p] crash-stopped by [round]? Must be
          monotone in [round]. A crashed process sends nothing, stops
          updating its state, and produces no output. *)
  on_link : round:int -> src:int -> dst:int -> 'm -> (int * 'm) list;
      (** Rewrites one attempted delivery into the [(delivery_round,
          payload)] list the network actually performs: [[]] drops it, two
          entries duplicate it, a later round delays it (messages delayed
          past the final round are lost), a changed payload corrupts it.
          The identity is [[(round, m)]]. *)
}
(** Environment faults, orthogonal to the process-level {!adversary}.
    {!Bn_dist_sim.Faults.plan} compiles declarative fault schedules into
    this; honest-protocol code is unaffected. *)

type 'o result = {
  outputs : 'o option array;  (** Per-process decision (index = id). *)
  rounds_run : int;
  messages_sent : int;  (** Unicast count; a broadcast counts n messages. *)
  messages_dropped : int;
      (** Deliveries suppressed by the fault plan (drops, partition
          losses, and delays past the horizon). 0 without [?faults]. *)
}

val run :
  ?adversary:'m adversary ->
  ?faults:'m fault_plan ->
  n:int ->
  rounds:int ->
  ('s, 'm, 'o) protocol ->
  'o result
(** Runs [rounds] synchronous rounds with processes [0 … n−1]. Corrupted
    processes' protocol logic is replaced by the adversary, but their
    inboxes are still computed and exposed to it. The fault plan applies
    to all traffic — honest and adversarial alike — after it is emitted;
    without [?faults] the simulation is byte-identical to previous
    behaviour. *)
