module Obs = Bn_obs.Obs

(* Synchronous runs happen in Pool.map_array sweeps (explorer trials,
   experiment grids) and sequential shrink loops — never under an
   early-exit scan — so all four counters are deterministic: identical
   at any -j and across same-seed reruns (asserted in test_obs). *)
let c_runs = Obs.counter "sync_net.runs"
let c_rounds = Obs.counter "sync_net.rounds"
let c_sent = Obs.counter "sync_net.messages_sent"
let c_dropped = Obs.counter "sync_net.messages_dropped"

type dest = To of int | All

type ('s, 'm, 'o) protocol = {
  init : int -> 's;
  send : round:int -> me:int -> 's -> (dest * 'm) list;
  recv : round:int -> me:int -> 's -> (int * 'm) list -> 's;
  output : me:int -> 's -> 'o option;
}

type 'm adversary = {
  corrupted : int list;
  behave : round:int -> me:int -> inbox:(int * 'm) list -> (dest * 'm) list;
}

let silent corrupted = { corrupted; behave = (fun ~round:_ ~me:_ ~inbox:_ -> []) }

(* Environment faults, orthogonal to the (process-level) adversary above:
   [crashed ~round me] says whether [me] has crash-stopped by [round]
   (must be monotone in [round]); [on_link ~round ~src ~dst m] rewrites one
   attempted delivery into the list of [(delivery_round, payload)] that the
   network actually performs — [[]] drops it, two entries duplicate it, a
   later round delays it, a changed payload corrupts it. Honest-protocol
   code never sees this layer; [Faults.plan] compiles declarative fault
   schedules into it. *)
type 'm fault_plan = {
  crashed : round:int -> int -> bool;
  on_link : round:int -> src:int -> dst:int -> 'm -> (int * 'm) list;
}

type 'o result = {
  outputs : 'o option array;
  rounds_run : int;
  messages_sent : int;
  messages_dropped : int;
}

let run ?adversary ?faults ~n ~rounds protocol =
  if n <= 0 then invalid_arg "Sync_net.run: need processes";
  Obs.incr c_runs;
  Obs.span "sync_net.run" ~args:(fun () -> [ ("n", Obs.I n); ("rounds", Obs.I rounds) ])
  @@ fun () ->
  let corrupted =
    match adversary with None -> [||] | Some a -> Array.of_list a.corrupted
  in
  let is_corrupt i = Array.exists (( = ) i) corrupted in
  let crashed ~round me =
    match faults with None -> false | Some f -> f.crashed ~round me
  in
  let on_link ~round ~src ~dst m =
    match faults with None -> [ (round, m) ] | Some f -> f.on_link ~round ~src ~dst m
  in
  let states = Array.init n protocol.init in
  let inboxes = Array.make n [] in
  let messages = ref 0 in
  let dropped = ref 0 in
  (* future.(r-1): deliveries delayed into round r, in arrival order. *)
  let future = Array.make rounds [] in
  for round = 1 to rounds do
    Obs.span "sync_net.round" ~args:(fun () -> [ ("round", Obs.I round) ]) @@ fun () ->
    let outgoing = Array.make n [] in
    for me = 0 to n - 1 do
      let traffic =
        if crashed ~round me then []
        else if is_corrupt me then
          match adversary with
          | Some a -> a.behave ~round ~me ~inbox:inboxes.(me)
          | None -> []
        else protocol.send ~round ~me states.(me)
      in
      outgoing.(me) <- traffic
    done;
    let next_inboxes = Array.make n [] in
    List.iter
      (fun (dst, entry) -> next_inboxes.(dst) <- entry :: next_inboxes.(dst))
      (List.rev future.(round - 1));
    let deliver sender dst msg =
      let deliveries = on_link ~round ~src:sender ~dst msg in
      if deliveries = [] then incr dropped;
      List.iter
        (fun (r, m) ->
          if r <= round then next_inboxes.(dst) <- (sender, m) :: next_inboxes.(dst)
          else if r > rounds then incr dropped
          else future.(r - 1) <- (dst, (sender, m)) :: future.(r - 1))
        deliveries
    in
    for sender = 0 to n - 1 do
      List.iter
        (fun (dest, msg) ->
          match dest with
          | To j ->
            if j < 0 || j >= n then invalid_arg "Sync_net.run: destination out of range";
            incr messages;
            deliver sender j msg
          | All ->
            messages := !messages + n;
            for j = 0 to n - 1 do
              deliver sender j msg
            done)
        outgoing.(sender)
    done;
    for me = 0 to n - 1 do
      let inbox = List.sort (fun (a, _) (b, _) -> compare a b) next_inboxes.(me) in
      inboxes.(me) <- inbox;
      if not (is_corrupt me || crashed ~round me) then
        states.(me) <- protocol.recv ~round ~me states.(me) inbox
    done
  done;
  let outputs =
    Array.init n (fun me ->
        if is_corrupt me || crashed ~round:rounds me then None
        else protocol.output ~me states.(me))
  in
  Obs.add c_rounds rounds;
  Obs.add c_sent !messages;
  Obs.add c_dropped !dropped;
  { outputs; rounds_run = rounds; messages_sent = !messages; messages_dropped = !dropped }
