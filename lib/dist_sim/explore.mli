(** Schedule exploration: run many seeded random fault schedules against a
    system under test, check user-supplied invariants, and shrink any
    violating schedule to a (locally) minimal counterexample.

    Determinism contract: trial [i] of [explore ~seed] draws its schedule
    from [Prng.split (Prng.create seed) i], and trials are mapped over a
    {!Bn_util.Pool} by index, so the report — verdicts, violating trials,
    schedules and shrunk counterexamples — is bit-identical for any [-j]
    and across runs with the same seed. Replaying a violation therefore
    needs only [(seed, trial)]; {!transcript} prints exactly that. *)

type 'r system = {
  run : Faults.schedule -> 'r;
      (** Execute the system under one fault schedule. Must be
          deterministic: same schedule, same result. *)
  invariants : (string * (Faults.schedule -> 'r -> bool)) list;
      (** Named predicates; the schedule is passed so checks can
          {!Faults.mask} the culprits' outputs. *)
}

type violation = {
  trial : int;  (** index of the violating trial *)
  schedule : Faults.schedule;  (** schedule as drawn *)
  failed : string list;  (** invariants it breaks *)
  shrunk : Faults.schedule;  (** greedily minimized counterexample *)
  shrunk_failed : string list;  (** invariants the shrunk schedule breaks *)
  shrink_evals : int;
      (** candidate schedules evaluated while shrinking this violation —
          the (previously invisible) cost of minimization *)
}

type report = {
  seed : int;
  trials : int;
  violations : violation list;  (** in trial order *)
}

val failures : 'r system -> Faults.schedule -> string list
(** Names of the invariants the schedule breaks (one run of the system). *)

val explore :
  ?pool:Bn_util.Pool.t -> seed:int -> trials:int -> gen:(Bn_util.Prng.t -> Faults.schedule) ->
  'r system -> report
(** Run [trials] seeded schedules, shrink each violation greedily
    (singles, then pairs, to a fixpoint). Raises [Invalid_argument] on
    [trials <= 0]. *)

val transcript : name:string -> report -> string
(** Human summary of the first violation with its replay line. *)

val min_shrunk_size : report -> int
(** Smallest shrunk-counterexample length, [max_int] when no violation. *)
