(** Deterministic fault injection for the distributed simulators.

    A {!schedule} is a declarative list of fault {!event}s — per-link
    message drop / duplicate / delay, network partitions with healing,
    crash-stop at a chosen round, and message-corruption hooks. {!plan}
    compiles a schedule into a {!Sync_net.fault_plan} that composes with
    any protocol and any {!Sync_net.adversary} without touching
    honest-protocol code; {!async_filter} gives the asynchronous analogue
    on top of any {!Async_net.scheduler}. {!random_schedule} draws
    seed-deterministic schedules from an indexed {!Bn_util.Prng} stream —
    the raw material for {!Explore}'s FoundationDB-style schedule
    exploration.

    Fault attribution: every event except a partition can be blamed on one
    process ({!culprits}) — the crashed process, or the sender whose
    outgoing messages are tampered with. A schedule whose culprits number
    at most [t] is a sub-Byzantine behaviour of [t] faulty processes, so a
    protocol correct against [t] Byzantine faults must satisfy its
    guarantees for the remaining processes ({!mask}) under any such
    schedule — the property the exploration suites check mechanically. *)

type event =
  | Drop of { round : int; src : int; dst : int }
      (** Messages from [src] to [dst] sent in [round] are lost. *)
  | Duplicate of { round : int; src : int; dst : int }
      (** ... are delivered twice in the same round. *)
  | Delay of { round : int; src : int; dst : int; by : int }
      (** ... arrive [by] rounds late (lost past the horizon). *)
  | Crash of { proc : int; round : int }
      (** [proc] crash-stops at the start of [round]: sends nothing from
          [round] on and produces no output. *)
  | Partition of { from_round : int; heal_round : int; groups : int list list }
      (** Messages crossing group boundaries are lost for rounds
          [from_round <= r < heal_round] (the partition heals at
          [heal_round]). Processes absent from [groups] are isolated. *)
  | Corrupt of { round : int; src : int; dst : int }
      (** The payload is rewritten by the [?corrupt] hook given to {!plan}
          (delivered unchanged when no hook is supplied). *)

type schedule = event list

val event_to_string : event -> string
val schedule_to_string : schedule -> string

(** {1 Fault attribution} *)

val culprits : schedule -> int list
(** Sorted, deduplicated blameable processes: crash victims and tampered
    senders. Partitions blame nobody. *)

val mask : schedule -> 'a option array -> 'a option array
(** [mask schedule outputs] erases the culprits' slots — correctness
    checks only constrain the processes the schedule did not corrupt. *)

(** {1 Compiling a schedule to a synchronous fault plan} *)

val plan :
  ?corrupt:(round:int -> src:int -> dst:int -> 'm -> 'm) ->
  schedule ->
  'm Sync_net.fault_plan
(** Deterministic for a fixed schedule: matching events are folded over
    each attempted delivery in schedule order. *)

(** {1 Asynchronous faults} *)

val async_filter :
  Bn_util.Prng.t -> drop:float -> dup:float -> 'm Async_net.fault_filter
(** Seeded per-delivery drop/duplicate filter for {!Async_net.run}.
    Raises [Invalid_argument] unless [drop, dup >= 0] and
    [drop +. dup <= 1]. *)

val async_plan :
  ?corrupt:(src:int -> dst:int -> 'm -> 'm) ->
  schedule ->
  'm Async_net.fault_filter
(** The asynchronous reading of a declarative schedule — rounds do not
    exist, so events apply by link: [Crash] silences every message its
    victim sends, [Drop]/[Corrupt] apply to every delivery on their
    (src, dst) link, and [Duplicate] fires once per link (Async_net
    re-enqueues copies as fresh messages, so an unconditional duplicate
    would loop forever). [Delay] and [Partition] are ignored here — give
    the schedule to {!async_scheduler} for their scheduling-pressure
    reading. The filter carries the once-per-link memo, so build a fresh
    plan per {!Async_net.run}. *)

val async_scheduler : schedule -> 'm Async_net.scheduler
(** Starves messages matching the schedule's [Delay] links and
    [Partition] cross-group pairs while any other message is pending, FIFO
    otherwise; once only starved messages remain they are delivered FIFO,
    so every message is still eventually delivered — no-culprit events
    stay harmless on their own, mirroring partition healing in the
    synchronous reading. Deterministic (no randomness, no state). *)

(** {1 Seed-deterministic random schedules} *)

type kind = KDrop | KDuplicate | KDelay | KCrash | KPartition | KCorrupt

type gen = {
  n : int;  (** processes 0..n-1 *)
  rounds : int;  (** fault events target rounds 1..rounds *)
  max_events : int;  (** 1..max_events events per schedule *)
  kinds : kind list;  (** allowed event kinds *)
  max_culprits : int;  (** blameable events confined to this many processes *)
}

val random_schedule : Bn_util.Prng.t -> gen -> schedule
(** Draw one schedule; a pure function of the generator state, so equal
    seeds give equal schedules. Raises [Invalid_argument] on empty
    [kinds] or non-positive [n]/[rounds]/[max_events]. *)

val crash_only : n:int -> rounds:int -> max_crashes:int -> gen
val omission : n:int -> rounds:int -> max_events:int -> max_culprits:int -> gen

val byzantine : n:int -> rounds:int -> max_events:int -> max_culprits:int -> gen
(** Every kind except partitions — omission faults plus message
    corruption, the sub-Byzantine behaviours a (k,t)-robust protocol must
    absorb from at most [max_culprits] processes. *)
