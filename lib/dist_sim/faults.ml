(** Deterministic fault injection for the distributed simulators.

    A {!schedule} is a declarative list of fault {!event}s — per-link
    message drop / duplicate / delay, network partitions with healing,
    crash-stop at a chosen round, and message-corruption hooks. {!plan}
    compiles a schedule into a {!Sync_net.fault_plan} that composes with
    any protocol and any {!Sync_net.adversary} without touching
    honest-protocol code; {!async_filter} gives the asynchronous analogue
    on top of any {!Async_net.scheduler}. {!random_schedule} draws
    seed-deterministic schedules from an indexed {!Bn_util.Prng} stream —
    the raw material for {!Explore}'s FoundationDB-style schedule
    exploration.

    Fault attribution: every event except a partition can be blamed on one
    process ({!culprits}) — the crashed process, or the sender whose
    outgoing messages are tampered with. A schedule whose culprits number
    at most [t] is a sub-Byzantine behaviour of [t] faulty processes, so a
    protocol correct against [t] Byzantine faults must satisfy its
    guarantees for the remaining processes ({!mask}) under any such
    schedule — the property the exploration suites check mechanically. *)

module Obs = Bn_obs.Obs

(* Applied per attempted delivery inside Sync_net rounds: deterministic
   for a fixed schedule, like the sync_net counters. *)
let c_link_events = Obs.counter "faults.link_events_applied"

type event =
  | Drop of { round : int; src : int; dst : int }
      (** Messages from [src] to [dst] sent in [round] are lost. *)
  | Duplicate of { round : int; src : int; dst : int }
      (** ... are delivered twice in the same round. *)
  | Delay of { round : int; src : int; dst : int; by : int }
      (** ... arrive [by] rounds late (lost past the horizon). *)
  | Crash of { proc : int; round : int }
      (** [proc] crash-stops at the start of [round]: sends nothing from
          [round] on and produces no output. *)
  | Partition of { from_round : int; heal_round : int; groups : int list list }
      (** Messages crossing group boundaries are lost for rounds
          [from_round <= r < heal_round] (the partition heals at
          [heal_round]). Processes absent from [groups] are isolated. *)
  | Corrupt of { round : int; src : int; dst : int }
      (** The payload is rewritten by the [?corrupt] hook given to {!plan}
          (delivered unchanged when no hook is supplied). *)

type schedule = event list

let event_to_string = function
  | Drop { round; src; dst } -> Printf.sprintf "drop r%d %d->%d" round src dst
  | Duplicate { round; src; dst } -> Printf.sprintf "dup r%d %d->%d" round src dst
  | Delay { round; src; dst; by } -> Printf.sprintf "delay r%d %d->%d +%d" round src dst by
  | Crash { proc; round } -> Printf.sprintf "crash p%d@r%d" proc round
  | Partition { from_round; heal_round; groups } ->
    Printf.sprintf "partition r%d-r%d [%s]" from_round heal_round
      (String.concat " | "
         (List.map (fun g -> String.concat " " (List.map string_of_int g)) groups))
  | Corrupt { round; src; dst } -> Printf.sprintf "corrupt r%d %d->%d" round src dst

let schedule_to_string schedule =
  Printf.sprintf "[%s]" (String.concat "; " (List.map event_to_string schedule))

(* {1 Fault attribution} *)

let culprits schedule =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Drop { src; _ } | Duplicate { src; _ } | Delay { src; _ } | Corrupt { src; _ } ->
           Some src
         | Crash { proc; _ } -> Some proc
         | Partition _ -> None)
       schedule)

let mask schedule outputs =
  let bad = culprits schedule in
  Array.mapi (fun i o -> if List.mem i bad then None else o) outputs

(* {1 Compiling a schedule to a synchronous fault plan} *)

let same_group groups a b =
  (* Isolated (unlisted) processes are their own singleton group. *)
  match
    ( List.find_opt (List.mem a) groups,
      List.find_opt (List.mem b) groups )
  with
  | Some ga, Some gb -> ga == gb
  | None, None -> a = b
  | _ -> false

let plan ?corrupt schedule =
  let crashed ~round p =
    List.exists (function Crash { proc; round = r0 } -> proc = p && round >= r0 | _ -> false) schedule
  in
  let on_link ~round ~src ~dst m =
    (* Fold the schedule's matching events, in order, over the delivery
       list; start from the intact singleton delivery. Each applied event
       bumps the (deterministic) counter and, when tracing, leaves an
       instant on the trace timeline. *)
    let applied = ref 0 in
    let hit name =
      incr applied;
      Obs.instant name
        ~args:(fun () -> [ ("round", Obs.I round); ("src", Obs.I src); ("dst", Obs.I dst) ])
    in
    let deliveries =
      List.fold_left
        (fun deliveries ev ->
          match ev with
          | Drop { round = r; src = s; dst = d } when r = round && s = src && d = dst ->
            hit "fault.drop";
            []
          | Duplicate { round = r; src = s; dst = d } when r = round && s = src && d = dst ->
            hit "fault.dup";
            List.concat_map (fun x -> [ x; x ]) deliveries
          | Delay { round = r; src = s; dst = d; by } when r = round && s = src && d = dst ->
            hit "fault.delay";
            List.map (fun (r', m') -> (r' + max 0 by, m')) deliveries
          | Partition { from_round; heal_round; groups }
            when round >= from_round && round < heal_round && not (same_group groups src dst) ->
            hit "fault.partition";
            []
          | Corrupt { round = r; src = s; dst = d } when r = round && s = src && d = dst -> (
            hit "fault.corrupt";
            match corrupt with
            | None -> deliveries
            | Some f -> List.map (fun (r', m') -> (r', f ~round ~src ~dst m')) deliveries)
          | Drop _ | Duplicate _ | Delay _ | Crash _ | Partition _ | Corrupt _ -> deliveries)
        [ (round, m) ]
        schedule
    in
    Obs.add c_link_events !applied;
    deliveries
  in
  { Sync_net.crashed; on_link }

(* {1 Asynchronous faults} *)

let async_filter rng ~drop ~dup =
  if drop < 0.0 || dup < 0.0 || drop +. dup > 1.0 then
    invalid_arg "Faults.async_filter: need drop, dup >= 0 and drop + dup <= 1";
  fun ~step:_ (_ : 'm Async_net.in_flight) ->
    let u = Bn_util.Prng.float rng in
    if u < drop then Async_net.Drop
    else if u < drop +. dup then Async_net.Duplicate
    else Async_net.Deliver

(* Asynchronous reading of a declarative schedule. There are no rounds, so
   events apply by link: a crash silences every message the victim sends, a
   drop/corrupt/duplicate applies to every delivery on its (src, dst) link
   regardless of the event's [round] field. Duplicate fires once per link —
   Async_net re-enqueues the copy as a fresh in-flight message, so an
   unconditional Duplicate verdict would re-duplicate its own copies
   forever. The filter's only state is the once-per-link memo, created
   fresh per call, so one plan value must not be shared across runs. *)
let async_plan ?corrupt schedule =
  let dup_used = ref [] in
  let has p = List.exists p schedule in
  fun ~step:_ (m : 'm Async_net.in_flight) ->
    let src = m.Async_net.sender and dst = m.Async_net.dest in
    if has (function Crash { proc; _ } -> proc = src | _ -> false) then begin
      Obs.incr c_link_events;
      Async_net.Drop
    end
    else if has (function Drop { src = s; dst = d; _ } -> s = src && d = dst | _ -> false)
    then begin
      Obs.incr c_link_events;
      Async_net.Drop
    end
    else if has (function Corrupt { src = s; dst = d; _ } -> s = src && d = dst | _ -> false)
    then begin
      Obs.incr c_link_events;
      match corrupt with
      | None -> Async_net.Deliver
      | Some f -> Async_net.Replace (f ~src ~dst m.Async_net.payload)
    end
    else if
      (not (List.mem (src, dst) !dup_used))
      && has (function Duplicate { src = s; dst = d; _ } -> s = src && d = dst | _ -> false)
    then begin
      Obs.incr c_link_events;
      dup_used := (src, dst) :: !dup_used;
      Async_net.Duplicate
    end
    else Async_net.Deliver

(* Delay and Partition have no asynchronous loss semantics: they become
   pure scheduling pressure. Matching messages are starved while any fresh
   message is pending but are still delivered once only starved messages
   remain, so eventual delivery (fairness) is preserved — the no-culprit
   events of {!culprits} stay harmless on their own, exactly as in the
   synchronous reading where partitions heal. *)
let async_scheduler schedule =
  let starved (m : 'm Async_net.in_flight) =
    List.exists
      (function
        | Delay { src; dst; _ } -> src = m.Async_net.sender && dst = m.Async_net.dest
        | Partition { groups; _ } -> not (same_group groups m.Async_net.sender m.Async_net.dest)
        | Drop _ | Duplicate _ | Crash _ | Corrupt _ -> false)
      schedule
  in
  fun pending ->
    match List.filter (fun m -> not (starved m)) pending with
    | [] -> Async_net.fifo pending
    | fresh -> Async_net.fifo fresh

(* {1 Seed-deterministic random schedules} *)

type kind = KDrop | KDuplicate | KDelay | KCrash | KPartition | KCorrupt

type gen = {
  n : int;  (** processes 0..n-1 *)
  rounds : int;  (** fault events target rounds 1..rounds *)
  max_events : int;  (** 1..max_events events per schedule *)
  kinds : kind list;  (** allowed event kinds *)
  max_culprits : int;  (** blameable events confined to this many processes *)
}

let random_schedule rng g =
  if g.n <= 0 || g.rounds <= 0 || g.max_events <= 0 then
    invalid_arg "Faults.random_schedule: need n, rounds, max_events > 0";
  if g.kinds = [] then invalid_arg "Faults.random_schedule: need at least one kind";
  let kinds = Array.of_list g.kinds in
  (* Pre-draw the culprit pool: all blameable events use these processes
     as crash victim / tampered sender, so |culprits| <= max_culprits. *)
  let procs = Array.init g.n Fun.id in
  Bn_util.Prng.shuffle rng procs;
  let pool = Array.sub procs 0 (max 1 (min g.max_culprits g.n)) in
  let events = 1 + Bn_util.Prng.int rng g.max_events in
  List.init events (fun _ ->
      let round = 1 + Bn_util.Prng.int rng g.rounds in
      let src = Bn_util.Prng.pick rng pool in
      let dst = Bn_util.Prng.int rng g.n in
      match Bn_util.Prng.pick rng kinds with
      | KDrop -> Drop { round; src; dst }
      | KDuplicate -> Duplicate { round; src; dst }
      | KDelay -> Delay { round; src; dst; by = 1 + Bn_util.Prng.int rng 2 }
      | KCrash -> Crash { proc = src; round }
      | KPartition ->
        (* Random cut into two camps; heals after 1-2 rounds. *)
        let side = Array.init g.n (fun _ -> Bn_util.Prng.bool rng) in
        let group b = List.filter (fun i -> side.(i) = b) (List.init g.n Fun.id) in
        Partition
          {
            from_round = round;
            heal_round = round + 1 + Bn_util.Prng.int rng 2;
            groups = [ group true; group false ];
          }
      | KCorrupt -> Corrupt { round; src; dst })

let crash_only ~n ~rounds ~max_crashes =
  { n; rounds; max_events = max_crashes; kinds = [ KCrash ]; max_culprits = max_crashes }

let omission ~n ~rounds ~max_events ~max_culprits =
  { n; rounds; max_events; kinds = [ KDrop; KDelay; KDuplicate; KCrash ]; max_culprits }

let byzantine ~n ~rounds ~max_events ~max_culprits =
  { n; rounds; max_events; kinds = [ KDrop; KDelay; KDuplicate; KCrash; KCorrupt ]; max_culprits }
