(* Regression differ for the metrics/bench JSON artifacts, the engine
   behind [bin/obsdiff.exe]. Two modes, auto-detected from the files'
   "schema" member:

   - bench ([beyond-nash-bench/N]): Volatile timing. Microbench
     [ns_per_run] and wallclock [seconds] rows are compared as a
     new/ref ratio against a threshold (default 2x); only slowdowns
     fail, speedups pass. v1 files (no quantile columns) read fine —
     the extra v2 columns are informational.
   - metrics ([beyond-nash-metrics/N]): the determinism contract. Det
     ["counters"] and Det ["sketches"] must be bitwise identical;
     volatile sections, gauges, histograms and gc are informational
     and ignored.

   The verdict renders as a human table or as JSON (schema [obsdiff/1])
   so CI can archive it. No dependencies beyond [Obs.Json]. *)

module J = Obs.Json

type status = Pass | Fail | Missing

type check = {
  cname : string;
  status : status;
  ratio : float option;  (* new/ref, timing rows only *)
  detail : string;
}

type report = {
  kind : string;  (* "bench" | "metrics" *)
  threshold : float;
  checks : check list;
  failures : int;
}

let status_str = function Pass -> "ok" | Fail -> "fail" | Missing -> "missing"
let ok r = r.failures = 0

(* {1 JSON accessors} *)

let num = function J.Num f -> Some f | _ -> None
let str = function J.Str s -> Some s | _ -> None
let mem_num k v = Option.bind (J.member k v) num
let mem_str k v = Option.bind (J.member k v) str
let mem_arr k v = match J.member k v with Some (J.Arr l) -> l | _ -> []

(* {1 Row selection}

   [--rows] specs match by substring, so CI can name a row without the
   ["beyond_nash "] prefix or a wallclock ["[mode]"] suffix. An empty
   spec list selects everything. *)

let contains ~sub s =
  let ls = String.length sub and ln = String.length s in
  let rec scan i = i + ls <= ln && (String.sub s i ls = sub || scan (i + 1)) in
  ls = 0 || scan 0

let selected specs name = specs = [] || List.exists (fun sub -> contains ~sub name) specs

(* {1 Bench mode} *)

(* Every timing row normalized to (key, ns): microbench rows keyed by
   name, wallclock rows by ["name [mode]"] with seconds scaled to ns. *)
let bench_rows v =
  List.filter_map
    (fun r ->
      match (mem_str "name" r, mem_num "ns_per_run" r) with
      | Some n, Some ns -> Some (n, ns)
      | _ -> None)
    (mem_arr "microbench" v)
  @ List.filter_map
      (fun r ->
        match (mem_str "name" r, mem_str "mode" r, mem_num "seconds" r) with
        | Some n, Some m, Some s -> Some (Printf.sprintf "%s [%s]" n m, s *. 1e9)
        | _ -> None)
      (mem_arr "wallclock" v)

let diff_bench ~threshold ~rows ref_v new_v =
  let rref = bench_rows ref_v and rnew = bench_rows new_v in
  let checks = ref [] in
  let push c = checks := c :: !checks in
  List.iter
    (fun (name, vref) ->
      if selected rows name then
        match List.assoc_opt name rnew with
        | None ->
          (* Row sets may drift between releases; a vanished row only
             fails when the caller asked for it by name. *)
          if rows <> [] then
            push { cname = name; status = Missing; ratio = None; detail = "row missing from NEW" }
        | Some vnew ->
          let ratio = if vref > 0.0 then vnew /. vref else if vnew > 0.0 then infinity else 1.0 in
          let detail = Printf.sprintf "%.0f -> %.0f ns (x%.3f)" vref vnew ratio in
          let status = if ratio > threshold then Fail else Pass in
          push { cname = name; status; ratio = Some ratio; detail })
    rref;
  List.iter
    (fun sub ->
      if not (List.exists (fun (n, _) -> contains ~sub n) rref) then
        push { cname = sub; status = Missing; ratio = None; detail = "row missing from REF" })
    rows;
  List.rev !checks

(* {1 Metrics mode} *)

let counters_of v =
  match J.member "counters" v with
  | Some (J.Obj kvs) ->
    List.filter_map (fun (k, x) -> Option.map (fun f -> (k, int_of_float f)) (num x)) kvs
  | _ -> []

(* Det sketches as (name, (count, cells)). [None] when the section is
   absent (a v1 metrics file), which skips the sketch comparison. *)
let sketches_of v =
  match J.member "sketches" v with
  | Some (J.Obj kvs) ->
    Some
      (List.filter_map
         (fun (k, x) ->
           match (mem_num "count" x, J.member "cells" x) with
           | Some n, Some (J.Arr cs) ->
             let cells =
               List.filter_map
                 (function
                   | J.Arr [ J.Num b; J.Num c ] -> Some (int_of_float b, int_of_float c)
                   | _ -> None)
                 cs
             in
             Some (k, (int_of_float n, cells))
           | _ -> None)
         kvs)
  | _ -> None

let diff_metrics ~rows ref_v new_v =
  let checks = ref [] in
  let push c = checks := c :: !checks in
  let names l r = List.sort_uniq compare (List.map fst l @ List.map fst r) in
  let compare_section section eq show lref lnew =
    List.iter
      (fun name ->
        let cname = Printf.sprintf "%s:%s" section name in
        if selected rows name then
          match (List.assoc_opt name lref, List.assoc_opt name lnew) with
          | Some a, Some b when eq a b ->
            push { cname; status = Pass; ratio = None; detail = show a }
          | Some a, Some b ->
            push
              { cname; status = Fail; ratio = None;
                detail = Printf.sprintf "%s -> %s" (show a) (show b) }
          | Some _, None ->
            push { cname; status = Missing; ratio = None; detail = "missing from NEW" }
          | None, Some _ ->
            push { cname; status = Missing; ratio = None; detail = "missing from REF" }
          | None, None -> ())
      (names lref lnew)
  in
  compare_section "counter" ( = ) string_of_int (counters_of ref_v) (counters_of new_v);
  (match (sketches_of ref_v, sketches_of new_v) with
  | Some sref, Some snew ->
    compare_section "sketch" ( = )
      (fun (n, cells) -> Printf.sprintf "n=%d cells=%d" n (List.length cells))
      sref snew
  | _ -> ());
  List.rev !checks

(* {1 Entry point} *)

let kind_of v =
  match mem_str "schema" v with
  | Some s when String.starts_with ~prefix:"beyond-nash-bench" s -> Some "bench"
  | Some s when String.starts_with ~prefix:"beyond-nash-metrics" s -> Some "metrics"
  | _ -> None

let diff ?(threshold = 2.0) ?(rows = []) ref_s new_s =
  match (J.parse ref_s, J.parse new_s) with
  | None, _ -> Error "REF is not valid JSON"
  | _, None -> Error "NEW is not valid JSON"
  | Some ref_v, Some new_v -> (
    match (kind_of ref_v, kind_of new_v) with
    | Some a, Some b when a = b ->
      let checks =
        if a = "bench" then diff_bench ~threshold ~rows ref_v new_v
        else diff_metrics ~rows ref_v new_v
      in
      Ok
        { kind = a; threshold; checks;
          failures = List.length (List.filter (fun c -> c.status <> Pass) checks) }
    | Some a, Some b -> Error (Printf.sprintf "mixed artifact kinds: REF is %s, NEW is %s" a b)
    | None, _ -> Error "REF: unrecognized schema (want beyond-nash-bench/* or beyond-nash-metrics/*)"
    | _, None -> Error "NEW: unrecognized schema (want beyond-nash-bench/* or beyond-nash-metrics/*)")

(* {1 Rendering} *)

let render ~ref_name ~new_name r =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "obsdiff [%s] %s vs %s (threshold x%.2f)\n" r.kind ref_name new_name r.threshold;
  List.iter
    (fun c ->
      if c.status <> Pass then p "  %-7s %-52s %s\n" (status_str c.status) c.cname c.detail)
    r.checks;
  let passes = List.length r.checks - r.failures in
  p "%d checks: %d ok, %d failed -> %s\n" (List.length r.checks) passes r.failures
    (if ok r then "PASS" else "FAIL");
  Buffer.contents buf

let verdict_json ~ref_name ~new_name r =
  let buf = Buffer.create 512 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "{\n  \"schema\": \"obsdiff/1\",\n";
  p "  \"kind\": \"%s\",\n" r.kind;
  p "  \"ref\": \"%s\",\n" (Obs.json_escape ref_name);
  p "  \"new\": \"%s\",\n" (Obs.json_escape new_name);
  p "  \"threshold\": %g,\n" r.threshold;
  p "  \"checks\": [\n";
  List.iteri
    (fun i c ->
      p "    { \"name\": \"%s\", \"status\": \"%s\"%s, \"detail\": \"%s\" }%s\n"
        (Obs.json_escape c.cname) (status_str c.status)
        (match c.ratio with Some x -> Printf.sprintf ", \"ratio\": %.6f" x | None -> "")
        (Obs.json_escape c.detail)
        (if i = List.length r.checks - 1 then "" else ","))
    r.checks;
  p "  ],\n";
  p "  \"failures\": %d,\n" r.failures;
  p "  \"ok\": %b\n}\n" (ok r);
  Buffer.contents buf
