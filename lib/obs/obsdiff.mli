(** Regression differ for the metrics/bench JSON artifacts — the engine
    behind [bin/obsdiff.exe], the standing CI gate for BENCH history.

    Auto-detects the artifact kind from the "schema" member: bench
    files ([beyond-nash-bench/N], v1 and v2) compare timing rows
    against a threshold; metrics files ([beyond-nash-metrics/N])
    assert the deterministic sections (["counters"], ["sketches"])
    bitwise identical. *)

type status = Pass | Fail | Missing

type check = {
  cname : string;  (** row/counter/sketch name, section-prefixed for metrics *)
  status : status;
  ratio : float option;  (** new/ref, timing rows only *)
  detail : string;
}

type report = {
  kind : string;  (** ["bench"] or ["metrics"] *)
  threshold : float;
  checks : check list;
  failures : int;
}

val ok : report -> bool

val diff :
  ?threshold:float -> ?rows:string list -> string -> string -> (report, string) result
(** [diff ref_contents new_contents]. [threshold] (default 2.0) bounds
    the new/ref timing ratio — only slowdowns fail. [rows] restricts
    the comparison to names containing one of the given substrings and
    makes each spec mandatory (no match in either file = a [Missing]
    failure); empty compares everything present in both files.
    [Error] on malformed JSON or mismatched schemas. *)

val render : ref_name:string -> new_name:string -> report -> string
(** Human verdict: one line per non-passing check plus a summary. *)

val verdict_json : ref_name:string -> new_name:string -> report -> string
(** Machine verdict (schema [obsdiff/1]), archived by CI. *)
