(* Deterministic tracing & metrics layer (no dependencies beyond the
   compiler distribution). Sits below Bn_util so every layer — Pool,
   the payoff kernel, the network simulators, the explorer, the
   experiment registry — can instrument itself.

   The determinism contract, asserted by test/test_obs.ml and CI:

   - [Det] counters are pure functions of the workload: their values are
     identical for any [-j] and across reruns with the same seed. They
     may only be bumped on code paths whose execution count is
     schedule-independent (Pool.map_array visits every item; shrinking
     is sequential per violation; ...).
   - [Volatile] counters may depend on scheduling (anything under
     Pool.find_first's early exit, per-chunk work counts). They are
     exported in a separate section and never asserted.
   - Timing (spans) is nondeterministic by nature and export-only:
     nothing in the library reads a timestamp back into computation.

   Recording costs when idle: a counter bump is a plain increment of a
   domain-local cell (no atomics, no locks — counters are sharded per
   domain and summed at read time); a span is a single Atomic.get when
   tracing is off. Span events are collected per-domain through the same
   DLS-sink pattern Bn_util.Out uses, so pool workers never contend on a
   lock on the hot path. Reads are exact whenever the domains that wrote
   have been joined (Pool joins its workers before returning), which is
   the only time the library reads counters back. *)

[@@@lint.allow "D002"
  "span/instant timestamps are Volatile export-only data: nothing reads a clock value back \
   into computation, and the Det counter sections never contain times"]

let now_us () = Unix.gettimeofday () *. 1e6

(* {1 Global switches} *)

let tracing = Atomic.make false
let progress = Atomic.make false

let set_tracing b = Atomic.set tracing b
let tracing_enabled () = Atomic.get tracing
let set_progress b = Atomic.set progress b
let progress_enabled () = Atomic.get progress

(* {1 Counter / gauge / histogram registry} *)

type kind = Det | Volatile

type counter = { cname : string; ckind : kind; cid : int }
type gauge = { gname : string; gcell : int Atomic.t }
type hist = { hname : string; hkind : kind; buckets : int Atomic.t array }

let registry_mu = Mutex.create ()
let counters_reg : counter list ref = ref []
let next_cid = ref 0
let gauges_reg : gauge list ref = ref []
let hists_reg : hist list ref = ref []

let with_registry f = Mutex.protect registry_mu f

(* Counter storage is sharded: each domain owns one growable int array of
   cells indexed by counter id, registered globally on the domain's first
   bump. A bump is a plain read-modify-write of the domain's own cell —
   no atomic, no lock, no false sharing with other domains. [value] sums
   the shards; the registry keeps a shard alive after its domain dies, so
   counts survive pool teardown, and every library read happens after the
   writing domains were joined (a full memory barrier), so sums are
   exact. A read that races a live writer may miss its latest bumps —
   harmless for the mid-run informational reads that are the only case. *)
type shard = { mutable cells : int array }

let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { cells = [||] } in
      Mutex.protect registry_mu (fun () -> shards := s :: !shards);
      s)

(* Registration is idempotent by name so a counter can be declared at
   module-init time in several compilation units without coordination;
   the first declaration fixes the kind. *)
let counter ?(kind = Det) name =
  with_registry (fun () ->
      match List.find_opt (fun c -> c.cname = name) !counters_reg with
      | Some c -> c
      | None ->
        let c = { cname = name; ckind = kind; cid = !next_cid } in
        Stdlib.incr next_cid;
        counters_reg := c :: !counters_reg;
        c)

let[@inline never] grow_and_add s cid n =
  let a = s.cells in
  let b = Array.make (cid + 9) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b.(cid) <- n;
  s.cells <- b

let add c n =
  if n <> 0 then begin
    let s = Domain.DLS.get shard_key in
    let a = s.cells in
    if c.cid < Array.length a then a.(c.cid) <- a.(c.cid) + n
    else grow_and_add s c.cid n
  end

let incr c = add c 1

(* Batched double update for hot paths that bump two counters at once
   (one domain-local lookup instead of two). *)
let add2 c1 n1 c2 n2 =
  let s = Domain.DLS.get shard_key in
  let a = s.cells in
  let hi = if c1.cid > c2.cid then c1.cid else c2.cid in
  if hi < Array.length a then begin
    a.(c1.cid) <- a.(c1.cid) + n1;
    a.(c2.cid) <- a.(c2.cid) + n2
  end
  else begin
    if n1 <> 0 then grow_and_add s c1.cid n1;
    add c2 n2
  end

let value c =
  let ss = with_registry (fun () -> !shards) in
  List.fold_left
    (fun acc s ->
      let a = s.cells in
      acc + if c.cid < Array.length a then a.(c.cid) else 0)
    0 ss

let gauge name =
  with_registry (fun () ->
      match List.find_opt (fun g -> g.gname = name) !gauges_reg with
      | Some g -> g
      | None ->
        let g = { gname = name; gcell = Atomic.make 0 } in
        gauges_reg := g :: !gauges_reg;
        g)

let set_gauge g v = Atomic.set g.gcell v

let rec max_gauge g v =
  let cur = Atomic.get g.gcell in
  if v > cur && not (Atomic.compare_and_set g.gcell cur v) then max_gauge g v

let gauge_value g = Atomic.get g.gcell

(* Power-of-two buckets: bucket [i] counts observations [v] with
   [2^(i-1) <= v < 2^i] (bucket 0 holds v <= 0 and v = 1 shares bucket 1). *)
let hist_buckets = 63

let hist ?(kind = Volatile) name =
  with_registry (fun () ->
      match List.find_opt (fun h -> h.hname = name) !hists_reg with
      | Some h -> h
      | None ->
        let h =
          { hname = name; hkind = kind; buckets = Array.init hist_buckets (fun _ -> Atomic.make 0) }
        in
        hists_reg := h :: !hists_reg;
        h)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      Stdlib.incr b;
      v := !v lsr 1
    done;
    min !b (hist_buckets - 1)
  end

let observe h v = ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1)

let counters_snapshot ?kind () =
  let cs = with_registry (fun () -> !counters_reg) in
  let cs = match kind with None -> cs | Some k -> List.filter (fun c -> c.ckind = k) cs in
  List.sort compare (List.map (fun c -> (c.cname, value c)) cs)

(* {1 Trace events} *)

type arg = I of int | S of string | F of float
type phase = Begin | End | Instant

type event = {
  ename : string;
  ph : phase;
  ts_us : float;
  tid : int;  (** integer id of the recording domain *)
  args : (string * arg) list;
}

type sink = { stid : int; mutable evs : event list (* newest first *) }

let sinks_mu = Mutex.create ()
let sinks : sink list ref = ref []

(* One sink per domain, registered globally on the domain's first event;
   after registration the hot path touches only domain-local state. *)
let sink_key : sink Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { stid = (Domain.self () :> int); evs = [] } in
      Mutex.protect sinks_mu (fun () -> sinks := s :: !sinks);
      s)

let spans_total = Atomic.make 0

let emit ename ph args =
  let s = Domain.DLS.get sink_key in
  s.evs <- { ename; ph; ts_us = now_us (); tid = s.stid; args } :: s.evs

let no_args () = []

let span ?(args = no_args) name f =
  if not (Atomic.get tracing) then f ()
  else begin
    ignore (Atomic.fetch_and_add spans_total 1);
    emit name Begin (args ());
    Fun.protect ~finally:(fun () -> emit name End []) f
  end

let instant ?(args = no_args) name =
  if Atomic.get tracing then emit name Instant (args ())

let span_count () = Atomic.get spans_total

let events () =
  let ss = Mutex.protect sinks_mu (fun () -> !sinks) in
  List.concat_map (fun s -> List.rev s.evs) (List.rev ss)

(* {1 Reset (tests and multi-phase CLI runs)} *)

let reset () =
  with_registry (fun () ->
      List.iter (fun s -> Array.fill s.cells 0 (Array.length s.cells) 0) !shards;
      List.iter (fun g -> Atomic.set g.gcell 0) !gauges_reg;
      List.iter (fun h -> Array.iter (fun b -> Atomic.set b 0) h.buckets) !hists_reg);
  Mutex.protect sinks_mu (fun () -> List.iter (fun s -> s.evs <- []) !sinks);
  Atomic.set spans_total 0

(* {1 JSON writing} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | I n -> string_of_int n
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | F x -> Printf.sprintf "%.6f" x

module Export = struct
  (* Chrome trace-event format (chrome://tracing, Perfetto): a JSON
     object with a "traceEvents" array of B/E/i events. Timestamps are
     microseconds relative to the earliest recorded event. *)
  let chrome_trace () =
    let evs = events () in
    let t0 = List.fold_left (fun acc e -> Float.min acc e.ts_us) infinity evs in
    let t0 = if Float.is_finite t0 then t0 else 0.0 in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[\n";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ",\n";
        let ph = match e.ph with Begin -> "B" | End -> "E" | Instant -> "i" in
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"bn\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
             (json_escape e.ename) ph e.tid (e.ts_us -. t0));
        if e.ph = Instant then Buffer.add_string buf ",\"s\":\"t\"";
        (match e.args with
        | [] -> ()
        | args ->
          Buffer.add_string buf ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) (arg_json v)))
            args;
          Buffer.add_char buf '}');
        Buffer.add_char buf '}')
      evs;
    Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buf

  let kv_section buf label kvs =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {\n" label);
    List.iteri
      (fun i (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": %d%s\n" (json_escape k) v
             (if i = List.length kvs - 1 then "" else ",")))
      kvs;
    Buffer.add_string buf "  }"

  (* Flat metrics snapshot. The "counters" section contains only [Det]
     counters, sorted by name: it is the byte-comparable artifact of the
     determinism contract (CI diffs it between -j1 and -j2 runs).
     Everything else is informational. *)
  let metrics_json () =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"beyond-nash-metrics/1\",\n";
    kv_section buf "counters" (counters_snapshot ~kind:Det ());
    Buffer.add_string buf ",\n";
    kv_section buf "volatile" (counters_snapshot ~kind:Volatile ());
    Buffer.add_string buf ",\n";
    kv_section buf "gauges"
      (List.sort compare
         (List.map (fun g -> (g.gname, Atomic.get g.gcell)) (with_registry (fun () -> !gauges_reg))));
    Buffer.add_string buf ",\n";
    let hists = with_registry (fun () -> !hists_reg) in
    Buffer.add_string buf "  \"histograms\": {\n";
    let hists = List.sort (fun a b -> compare a.hname b.hname) hists in
    List.iteri
      (fun i h ->
        let cells = ref [] in
        Array.iteri
          (fun b c ->
            let c = Atomic.get c in
            if c > 0 then
              cells := Printf.sprintf "[%d, %d]" (if b = 0 then 0 else 1 lsl (b - 1)) c :: !cells)
          h.buckets;
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": [%s]%s\n" (json_escape h.hname)
             (String.concat ", " (List.rev !cells))
             (if i = List.length hists - 1 then "" else ",")))
      hists;
    Buffer.add_string buf "  },\n";
    Buffer.add_string buf (Printf.sprintf "  \"spans\": %d\n}\n" (Atomic.get spans_total));
    Buffer.contents buf
end

(* {1 Human summary} *)

(* Aggregate the recorded spans by path (stack of open span names, per
   domain, capped at depth 3) and render an indented tree with call
   counts and total wall time, followed by the busiest counters. Wall
   times are informational only — see the determinism contract above. *)
let summary ?(max_rows = 48) () =
  let agg : (string list, int ref * float ref) Hashtbl.t = Hashtbl.create 64 in
  let order : string list list ref = ref [] in
  let ss = Mutex.protect sinks_mu (fun () -> !sinks) in
  List.iter
    (fun s ->
      let stack = ref [] in
      List.iter
        (fun e ->
          match e.ph with
          | Begin -> stack := (e.ename, e.ts_us) :: !stack
          | End -> (
            match !stack with
            | (name, t0) :: rest ->
              stack := rest;
              let path = List.rev (name :: List.map fst rest) in
              (* Spans nested deeper than the cap are dropped (not folded
                 into an ancestor row, which would double-count time). *)
              if List.length path <= 3 then begin
              let cnt, tot =
                match Hashtbl.find_opt agg path with
                | Some cell -> cell
                | None ->
                  let cell = (ref 0, ref 0.0) in
                  Hashtbl.add agg path cell;
                  order := path :: !order;
                  cell
              in
              Stdlib.incr cnt;
              tot := !tot +. (e.ts_us -. t0)
              end
            | [] -> ())
          | Instant -> ())
        (List.rev s.evs))
    (List.rev ss);
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "== observability summary ==\n";
  p "span tree (calls, total wall ms; depth <= 3, aggregated over domains):\n";
  let paths = List.sort compare (List.rev !order) in
  let shown = ref 0 in
  List.iter
    (fun path ->
      if !shown < max_rows then begin
        Stdlib.incr shown;
        let cnt, tot = Hashtbl.find agg path in
        let depth = List.length path - 1 in
        let name = List.nth path depth in
        p "  %s%-*s %8d %12.2f\n" (String.make (2 * depth) ' ')
          (max 1 (36 - (2 * depth)))
          name !cnt (!tot /. 1e3)
      end)
    paths;
  if paths = [] then p "  (no spans recorded; enable tracing with --trace/--obs-summary)\n";
  let counters =
    List.filter (fun (_, v) -> v > 0) (counters_snapshot ())
    |> List.sort (fun (na, va) (nb, vb) -> compare (vb, na) (va, nb))
  in
  p "top counters:\n";
  List.iteri (fun i (n, v) -> if i < 16 then p "  %-36s %12d\n" n v) counters;
  if counters = [] then p "  (all counters zero)\n";
  Buffer.contents buf

(* {1 Minimal JSON validator}

   Used by the test suite and CI to check exporter output without
   depending on an external JSON library. Accepts RFC 8259 JSON. *)

module Json = struct
  exception Bad

  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c = match peek () with Some c' when c' = c -> advance () | _ -> raise Bad in
    let literal l =
      String.iter (fun c -> expect c) l
    in
    let string_body () =
      expect '"';
      let fin = ref false in
      while not !fin do
        match peek () with
        | None -> raise Bad
        | Some '"' -> advance (); fin := true
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> raise Bad
            done
          | _ -> raise Bad)
        | Some c when Char.code c < 0x20 -> raise Bad
        | Some _ -> advance ()
      done
    in
    let number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      let digits () =
        let seen = ref false in
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          seen := true;
          advance ()
        done;
        if not !seen then raise Bad
      in
      (* Integer part: a lone 0, or a nonzero digit then any run — JSON
         forbids leading zeros. *)
      (match peek () with
      | Some '0' -> advance ()
      | Some '1' .. '9' -> digits ()
      | _ -> raise Bad);
      (match peek () with
      | Some '.' ->
        advance ();
        digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); fin := true
            | _ -> raise Bad
          done
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); fin := true
            | _ -> raise Bad
          done
        end
      | Some '"' -> string_body ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> raise Bad
    in
    match
      value ();
      skip_ws ();
      if !pos <> n then raise Bad
    with
    | () -> true
    | exception Bad -> false
end
