(* Deterministic tracing & metrics layer (no dependencies beyond the
   compiler distribution). Sits below Bn_util so every layer — Pool,
   the payoff kernel, the network simulators, the explorer, the
   experiment registry — can instrument itself.

   The determinism contract, asserted by test/test_obs.ml and CI:

   - [Det] counters are pure functions of the workload: their values are
     identical for any [-j] and across reruns with the same seed. They
     may only be bumped on code paths whose execution count is
     schedule-independent (Pool.map_array visits every item; shrinking
     is sequential per violation; ...).
   - [Volatile] counters may depend on scheduling (anything under
     Pool.find_first's early exit, per-chunk work counts). They are
     exported in a separate section and never asserted.
   - Timing (spans) is nondeterministic by nature and export-only:
     nothing in the library reads a timestamp back into computation.

   Recording costs when idle: a counter bump is a plain increment of a
   domain-local cell (no atomics, no locks — counters are sharded per
   domain and summed at read time); a span is a single Atomic.get when
   tracing is off. Span events are collected per-domain through the same
   DLS-sink pattern Bn_util.Out uses, so pool workers never contend on a
   lock on the hot path. Reads are exact whenever the domains that wrote
   have been joined (Pool joins its workers before returning), which is
   the only time the library reads counters back. *)

[@@@lint.allow "D002"
  "span/instant timestamps are Volatile export-only data: nothing reads a clock value back \
   into computation, and the Det counter sections never contain times"]

let now_us () = Unix.gettimeofday () *. 1e6

(* {1 Global switches} *)

let tracing = Atomic.make false
let progress = Atomic.make false

(* [timing] gates the wall-clock (Volatile) sketches recorded by {!timed}:
   off by default so uninstrumented runs never read a clock on a hot path.
   [gc_probes] gates the Gc.quick_stat deltas captured at span boundaries;
   it only has an effect while tracing is on (the probes piggyback on
   spans), so the disabled cost is one branch inside the tracing-on path
   and zero when tracing is off. *)
let timing = Atomic.make false
let gc_probes = Atomic.make false

let set_tracing b = Atomic.set tracing b
let tracing_enabled () = Atomic.get tracing
let set_progress b = Atomic.set progress b
let progress_enabled () = Atomic.get progress
let set_timing b = Atomic.set timing b
let timing_enabled () = Atomic.get timing
let set_gc_probes b = Atomic.set gc_probes b
let gc_probes_enabled () = Atomic.get gc_probes

(* {1 Counter / gauge / histogram registry} *)

type kind = Det | Volatile

type counter = { cname : string; ckind : kind; cid : int }
type gauge = { gname : string; gcell : int Atomic.t }
type hist = { hname : string; hkind : kind; buckets : int Atomic.t array }
type sketch = { skname : string; skkind : kind; skid : int }

let registry_mu = Mutex.create ()
let counters_reg : counter list ref = ref []
let next_cid = ref 0
let gauges_reg : gauge list ref = ref []
let hists_reg : hist list ref = ref []
let sketches_reg : sketch list ref = ref []
let next_skid = ref 0

let with_registry f = Mutex.protect registry_mu f

(* Counter storage is sharded: each domain owns one growable int array of
   cells indexed by counter id, registered globally on the domain's first
   bump. A bump is a plain read-modify-write of the domain's own cell —
   no atomic, no lock, no false sharing with other domains. [value] sums
   the shards; the registry keeps a shard alive after its domain dies, so
   counts survive pool teardown, and every library read happens after the
   writing domains were joined (a full memory barrier), so sums are
   exact. A read that races a live writer may miss its latest bumps —
   harmless for the mid-run informational reads that are the only case. *)
(* [sk_rows] holds the domain's sketch buckets, one row per sketch id,
   allocated on the domain's first observation of that sketch. *)
type shard = { mutable cells : int array; mutable sk_rows : int array array }

let shards : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { cells = [||]; sk_rows = [||] } in
      Mutex.protect registry_mu (fun () -> shards := s :: !shards);
      s)

(* Registration is idempotent by name so a counter can be declared at
   module-init time in several compilation units without coordination;
   the first declaration fixes the kind. *)
let counter ?(kind = Det) name =
  with_registry (fun () ->
      match List.find_opt (fun c -> c.cname = name) !counters_reg with
      | Some c -> c
      | None ->
        let c = { cname = name; ckind = kind; cid = !next_cid } in
        Stdlib.incr next_cid;
        counters_reg := c :: !counters_reg;
        c)

let[@inline never] grow_and_add s cid n =
  let a = s.cells in
  let b = Array.make (cid + 9) 0 in
  Array.blit a 0 b 0 (Array.length a);
  b.(cid) <- n;
  s.cells <- b

let add c n =
  if n <> 0 then begin
    let s = Domain.DLS.get shard_key in
    let a = s.cells in
    if c.cid < Array.length a then a.(c.cid) <- a.(c.cid) + n
    else grow_and_add s c.cid n
  end

let incr c = add c 1

(* Batched double update for hot paths that bump two counters at once
   (one domain-local lookup instead of two). *)
let add2 c1 n1 c2 n2 =
  let s = Domain.DLS.get shard_key in
  let a = s.cells in
  let hi = if c1.cid > c2.cid then c1.cid else c2.cid in
  if hi < Array.length a then begin
    a.(c1.cid) <- a.(c1.cid) + n1;
    a.(c2.cid) <- a.(c2.cid) + n2
  end
  else begin
    if n1 <> 0 then grow_and_add s c1.cid n1;
    add c2 n2
  end

let value c =
  let ss = with_registry (fun () -> !shards) in
  List.fold_left
    (fun acc s ->
      let a = s.cells in
      acc + if c.cid < Array.length a then a.(c.cid) else 0)
    0 ss

let gauge name =
  with_registry (fun () ->
      match List.find_opt (fun g -> g.gname = name) !gauges_reg with
      | Some g -> g
      | None ->
        let g = { gname = name; gcell = Atomic.make 0 } in
        gauges_reg := g :: !gauges_reg;
        g)

let set_gauge g v = Atomic.set g.gcell v

let rec max_gauge g v =
  let cur = Atomic.get g.gcell in
  if v > cur && not (Atomic.compare_and_set g.gcell cur v) then max_gauge g v

let gauge_value g = Atomic.get g.gcell

(* Power-of-two buckets: bucket [i] counts observations [v] with
   [2^(i-1) <= v < 2^i] (bucket 0 holds v <= 0 and v = 1 shares bucket 1). *)
let hist_buckets = 63

let hist ?(kind = Volatile) name =
  with_registry (fun () ->
      match List.find_opt (fun h -> h.hname = name) !hists_reg with
      | Some h -> h
      | None ->
        let h =
          { hname = name; hkind = kind; buckets = Array.init hist_buckets (fun _ -> Atomic.make 0) }
        in
        hists_reg := h :: !hists_reg;
        h)

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      Stdlib.incr b;
      v := !v lsr 1
    done;
    min !b (hist_buckets - 1)
  end

let observe h v = ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1)

(* {1 Quantile sketches}

   Log-linear (HDR-style) buckets over nonnegative ints, pure integer
   arithmetic throughout so bucketing is bit-identical on every platform:
   values below [2 * sk_sub] get an exact bucket each; above that, a
   bucket is (octave, top [sk_sub_bits] mantissa bits), i.e. relative
   width 1/[sk_sub]. A quantile query returns the midpoint of the bucket
   holding the nearest-rank element, so the answer is within relative
   error 1/(2*[sk_sub]) of the exact sorted quantile (exact below 64).

   Storage is domain-sharded exactly like counters — an observation is a
   plain increment of the domain's own bucket row, no atomics or locks —
   and a snapshot merges the shards in the registry's fixed order.
   Bucket-count addition is commutative, so a [Det] sketch (observations
   are a pure function of the workload) snapshots byte-identically for
   any [-j] and across reruns. Wall-clock sketches are [Volatile]. *)

let sk_sub_bits = 5
let sk_sub = 1 lsl sk_sub_bits
let sk_buckets = ((62 - sk_sub_bits) * sk_sub) + (2 * sk_sub)

let sk_bucket_of v =
  if v <= 0 then 0
  else if v < 2 * sk_sub then v
  else begin
    let msb = ref 0 and w = ref v in
    while !w > 1 do
      Stdlib.incr msb;
      w := !w lsr 1
    done;
    (((!msb - sk_sub_bits) * sk_sub) + sk_sub) + ((v lsr (!msb - sk_sub_bits)) land (sk_sub - 1))
  end

(* Lower bound of a bucket's value range; inverse of [sk_bucket_of]. *)
let sk_bucket_lo idx =
  if idx < 2 * sk_sub then idx
  else
    let msb = (idx / sk_sub) + sk_sub_bits - 1 in
    (sk_sub + (idx land (sk_sub - 1))) lsl (msb - sk_sub_bits)

(* Midpoint representative: the deterministic answer for any value that
   hashed to this bucket. *)
let sk_bucket_rep idx =
  if idx < 2 * sk_sub then idx
  else
    let msb = (idx / sk_sub) + sk_sub_bits - 1 in
    sk_bucket_lo idx + (1 lsl (msb - sk_sub_bits - 1))

let sketch ?(kind = Volatile) name =
  with_registry (fun () ->
      match List.find_opt (fun s -> s.skname = name) !sketches_reg with
      | Some s -> s
      | None ->
        let s = { skname = name; skkind = kind; skid = !next_skid } in
        Stdlib.incr next_skid;
        sketches_reg := s :: !sketches_reg;
        s)

let[@inline never] sk_grow_row s id =
  let rows = s.sk_rows in
  let rows =
    if id < Array.length rows then rows
    else begin
      let b = Array.make (id + 4) [||] in
      Array.blit rows 0 b 0 (Array.length rows);
      s.sk_rows <- b;
      b
    end
  in
  let row = Array.make sk_buckets 0 in
  rows.(id) <- row;
  row

let observe_sk sk v =
  let s = Domain.DLS.get shard_key in
  let rows = s.sk_rows in
  let row =
    if sk.skid < Array.length rows && Array.length rows.(sk.skid) > 0 then rows.(sk.skid)
    else sk_grow_row s sk.skid
  in
  let b = sk_bucket_of v in
  row.(b) <- row.(b) + 1

(* Time [f] into a (Volatile) sketch in nanoseconds. One atomic load when
   timing is off — instrumented hot paths keep their speed by default. *)
let timed sk f =
  if not (Atomic.get timing) then f ()
  else begin
    let t0 = now_us () in
    let fin () = observe_sk sk (int_of_float ((now_us () -. t0) *. 1e3)) in
    match f () with
    | r ->
      fin ();
      r
    | exception e ->
      fin ();
      raise e
  end

module Sketch = struct
  type snap = { total : int; cells : (int * int) list }

  let empty = { total = 0; cells = [] }

  (* Sum the per-domain rows in the registry's fixed order (commutative
     addition: any order yields the same cells). *)
  let snapshot sk =
    let ss = with_registry (fun () -> List.rev !shards) in
    let acc = Array.make sk_buckets 0 in
    List.iter
      (fun s ->
        if sk.skid < Array.length s.sk_rows then begin
          let row = s.sk_rows.(sk.skid) in
          Array.iteri (fun i c -> acc.(i) <- acc.(i) + c) row
        end)
      ss;
    let total = ref 0 and cells = ref [] in
    for i = sk_buckets - 1 downto 0 do
      if acc.(i) > 0 then begin
        total := !total + acc.(i);
        cells := (i, acc.(i)) :: !cells
      end
    done;
    { total = !total; cells = !cells }

  let of_values vs =
    let acc = Array.make sk_buckets 0 in
    List.iter (fun v -> acc.(sk_bucket_of v) <- acc.(sk_bucket_of v) + 1) vs;
    let cells = ref [] in
    for i = sk_buckets - 1 downto 0 do
      if acc.(i) > 0 then cells := (i, acc.(i)) :: !cells
    done;
    { total = List.length vs; cells = !cells }

  (* Merge is a sorted-assoc-list union with added counts: associative and
     commutative (QCheck-pinned), so sketches merge across shards, runs or
     files without an ordering contract. *)
  let merge a b =
    let rec go xs ys =
      match (xs, ys) with
      | [], rest | rest, [] -> rest
      | (i, ci) :: xs', (j, cj) :: ys' ->
        if i < j then (i, ci) :: go xs' ys
        else if j < i then (j, cj) :: go xs ys'
        else (i, ci + cj) :: go xs' ys'
    in
    { total = a.total + b.total; cells = go a.cells b.cells }

  let count s = s.total

  (* Nearest-rank: the representative of the bucket holding the element of
     rank ceil(q * n) (clamped to [1, n]). *)
  let quantile s q =
    if s.total = 0 then 0
    else begin
      let rank = int_of_float (Float.ceil (q *. float_of_int s.total)) in
      let rank = if rank < 1 then 1 else if rank > s.total then s.total else rank in
      let rec walk cum = function
        | [] -> 0
        | (i, c) :: rest -> if cum + c >= rank then sk_bucket_rep i else walk (cum + c) rest
      in
      walk 0 s.cells
    end

  let quantiles s =
    [ ("p50", quantile s 0.50); ("p90", quantile s 0.90);
      ("p99", quantile s 0.99); ("p999", quantile s 0.999) ]
end

let sketches_snapshot ?kind () =
  let sks = with_registry (fun () -> !sketches_reg) in
  let sks = match kind with None -> sks | Some k -> List.filter (fun s -> s.skkind = k) sks in
  List.sort compare (List.map (fun s -> (s.skname, Sketch.snapshot s)) sks)

let counters_snapshot ?kind () =
  let cs = with_registry (fun () -> !counters_reg) in
  let cs = match kind with None -> cs | Some k -> List.filter (fun c -> c.ckind = k) cs in
  List.sort compare (List.map (fun c -> (c.cname, value c)) cs)

(* {1 Trace events} *)

type arg = I of int | S of string | F of float
type phase = Begin | End | Instant

type event = {
  ename : string;
  ph : phase;
  ts_us : float;
  tid : int;  (** integer id of the recording domain *)
  args : (string * arg) list;
}

type sink = { stid : int; mutable evs : event list (* newest first *) }

let sinks_mu = Mutex.create ()
let sinks : sink list ref = ref []

(* One sink per domain, registered globally on the domain's first event;
   after registration the hot path touches only domain-local state. *)
let sink_key : sink Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { stid = (Domain.self () :> int); evs = [] } in
      Mutex.protect sinks_mu (fun () -> sinks := s :: !sinks);
      s)

let spans_total = Atomic.make 0

let emit ename ph args =
  let s = Domain.DLS.get sink_key in
  s.evs <- { ename; ph; ts_us = now_us (); tid = s.stid; args } :: s.evs

let no_args () = []

(* {1 GC probes}

   [Gc.quick_stat] deltas captured at span boundaries (no heap walk, a
   handful of loads), aggregated per span label in a per-domain table and
   summed at read time. Attribution is inclusive: a nested span's
   allocation also counts toward its ancestors. Only enabled together
   with tracing, behind the single [gc_probes] branch below. *)

type gc_cell = {
  mutable g_alloc_w : float;  (* allocated words: minor + major - promoted *)
  mutable g_major : int;
  mutable g_minor : int;
}

type gc_sink = { mutable g_names : string list; g_tbl : (string, gc_cell) Hashtbl.t }

let gc_sinks_mu = Mutex.create ()
let gc_sinks : gc_sink list ref = ref []

let gc_sink_key : gc_sink Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { g_names = []; g_tbl = Hashtbl.create 16 } in
      Mutex.protect gc_sinks_mu (fun () -> gc_sinks := s :: !gc_sinks);
      s)

let gc_record name (s0 : Gc.stat) (s1 : Gc.stat) =
  let sink = Domain.DLS.get gc_sink_key in
  let cell =
    match Hashtbl.find_opt sink.g_tbl name with
    | Some c -> c
    | None ->
      let c = { g_alloc_w = 0.0; g_major = 0; g_minor = 0 } in
      Hashtbl.add sink.g_tbl name c;
      sink.g_names <- name :: sink.g_names;
      c
  in
  cell.g_alloc_w <-
    cell.g_alloc_w
    +. (s1.Gc.minor_words -. s0.Gc.minor_words)
    +. (s1.Gc.major_words -. s0.Gc.major_words)
    -. (s1.Gc.promoted_words -. s0.Gc.promoted_words);
  cell.g_major <- cell.g_major + (s1.Gc.major_collections - s0.Gc.major_collections);
  cell.g_minor <- cell.g_minor + (s1.Gc.minor_collections - s0.Gc.minor_collections)

(* Aggregated (label, (alloc_words, major_collections, minor_collections))
   rows, sorted by label. Export-only, like every wall-clock artifact. *)
let gc_snapshot () =
  let ss = Mutex.protect gc_sinks_mu (fun () -> !gc_sinks) in
  let agg : (string, gc_cell) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sink ->
      List.iter
        (fun name ->
          match Hashtbl.find_opt sink.g_tbl name with
          | None -> ()
          | Some c ->
            let cell =
              match Hashtbl.find_opt agg name with
              | Some cell -> cell
              | None ->
                let cell = { g_alloc_w = 0.0; g_major = 0; g_minor = 0 } in
                Hashtbl.add agg name cell;
                order := name :: !order;
                cell
            in
            cell.g_alloc_w <- cell.g_alloc_w +. c.g_alloc_w;
            cell.g_major <- cell.g_major + c.g_major;
            cell.g_minor <- cell.g_minor + c.g_minor)
        (List.rev sink.g_names))
    (List.rev ss);
  List.map
    (fun name ->
      let c = Hashtbl.find agg name in
      (name, (int_of_float c.g_alloc_w, c.g_major, c.g_minor)))
    (List.sort_uniq compare !order)

let span ?(args = no_args) name f =
  if not (Atomic.get tracing) then f ()
  else begin
    ignore (Atomic.fetch_and_add spans_total 1);
    emit name Begin (args ());
    if Atomic.get gc_probes then begin
      let s0 = Gc.quick_stat () in
      Fun.protect
        ~finally:(fun () ->
          gc_record name s0 (Gc.quick_stat ());
          emit name End [])
        f
    end
    else Fun.protect ~finally:(fun () -> emit name End []) f
  end

let instant ?(args = no_args) name =
  if Atomic.get tracing then emit name Instant (args ())

let span_count () = Atomic.get spans_total

let events () =
  let ss = Mutex.protect sinks_mu (fun () -> !sinks) in
  List.concat_map (fun s -> List.rev s.evs) (List.rev ss)

(* {1 Reset (tests and multi-phase CLI runs)} *)

let reset () =
  with_registry (fun () ->
      List.iter
        (fun s ->
          Array.fill s.cells 0 (Array.length s.cells) 0;
          Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) s.sk_rows)
        !shards;
      List.iter (fun g -> Atomic.set g.gcell 0) !gauges_reg;
      List.iter (fun h -> Array.iter (fun b -> Atomic.set b 0) h.buckets) !hists_reg);
  Mutex.protect sinks_mu (fun () -> List.iter (fun s -> s.evs <- []) !sinks);
  Mutex.protect gc_sinks_mu (fun () ->
      List.iter
        (fun s ->
          s.g_names <- [];
          Hashtbl.reset s.g_tbl)
        !gc_sinks);
  Atomic.set spans_total 0

(* {1 JSON writing} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | I n -> string_of_int n
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | F x -> Printf.sprintf "%.6f" x

module Export = struct
  (* Chrome trace-event format (chrome://tracing, Perfetto): a JSON
     object with a "traceEvents" array of B/E/i events. Timestamps are
     microseconds relative to the earliest recorded event. *)
  let chrome_trace () =
    let evs = events () in
    let t0 = List.fold_left (fun acc e -> Float.min acc e.ts_us) infinity evs in
    let t0 = if Float.is_finite t0 then t0 else 0.0 in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[\n";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ",\n";
        let ph = match e.ph with Begin -> "B" | End -> "E" | Instant -> "i" in
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"bn\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
             (json_escape e.ename) ph e.tid (e.ts_us -. t0));
        if e.ph = Instant then Buffer.add_string buf ",\"s\":\"t\"";
        (match e.args with
        | [] -> ()
        | args ->
          Buffer.add_string buf ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) (arg_json v)))
            args;
          Buffer.add_char buf '}');
        Buffer.add_char buf '}')
      evs;
    Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buf

  let kv_section buf label kvs =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {\n" label);
    List.iteri
      (fun i (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": %d%s\n" (json_escape k) v
             (if i = List.length kvs - 1 then "" else ",")))
      kvs;
    Buffer.add_string buf "  }"

  (* One sketch as a JSON object: count, the standard quantiles, and the
     raw (bucket, count) cells — enough to re-merge or re-quantile the
     sketch downstream (obsdiff asserts Det sketches cell-equal). *)
  let sketch_json (snap : Sketch.snap) =
    Printf.sprintf "{ \"count\": %d, %s, \"cells\": [%s] }" snap.Sketch.total
      (String.concat ", "
         (List.map (fun (q, v) -> Printf.sprintf "\"%s\": %d" q v) (Sketch.quantiles snap)))
      (String.concat ", " (List.map (fun (b, c) -> Printf.sprintf "[%d, %d]" b c) snap.Sketch.cells))

  let sketch_section buf label sks =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": {\n" label);
    List.iteri
      (fun i (name, snap) ->
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name) (sketch_json snap)
             (if i = List.length sks - 1 then "" else ",")))
      sks;
    Buffer.add_string buf "  }"

  (* Flat metrics snapshot (schema beyond-nash-metrics/2; /1 lacked the
     sketch and gc sections). The "counters" and "sketches" sections
     contain only [Det] instruments, sorted by name: they are the
     byte-comparable artifact of the determinism contract (obsdiff and CI
     compare them between -j1 and -j2 runs and across reruns).
     Everything else is informational. *)
  let metrics_json () =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"beyond-nash-metrics/2\",\n";
    kv_section buf "counters" (counters_snapshot ~kind:Det ());
    Buffer.add_string buf ",\n";
    sketch_section buf "sketches" (sketches_snapshot ~kind:Det ());
    Buffer.add_string buf ",\n";
    kv_section buf "volatile" (counters_snapshot ~kind:Volatile ());
    Buffer.add_string buf ",\n";
    sketch_section buf "sketches_volatile" (sketches_snapshot ~kind:Volatile ());
    Buffer.add_string buf ",\n";
    kv_section buf "gauges"
      (List.sort compare
         (List.map (fun g -> (g.gname, Atomic.get g.gcell)) (with_registry (fun () -> !gauges_reg))));
    Buffer.add_string buf ",\n";
    let hists = with_registry (fun () -> !hists_reg) in
    Buffer.add_string buf "  \"histograms\": {\n";
    let hists = List.sort (fun a b -> compare a.hname b.hname) hists in
    List.iteri
      (fun i h ->
        let cells = ref [] in
        Array.iteri
          (fun b c ->
            let c = Atomic.get c in
            if c > 0 then
              cells := Printf.sprintf "[%d, %d]" (if b = 0 then 0 else 1 lsl (b - 1)) c :: !cells)
          h.buckets;
        Buffer.add_string buf
          (Printf.sprintf "    \"%s\": [%s]%s\n" (json_escape h.hname)
             (String.concat ", " (List.rev !cells))
             (if i = List.length hists - 1 then "" else ",")))
      hists;
    Buffer.add_string buf "  },\n";
    let gc = gc_snapshot () in
    Buffer.add_string buf "  \"gc\": {\n";
    List.iteri
      (fun i (name, (alloc_w, majors, minors)) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    \"%s\": { \"obs.alloc_words\": %d, \"obs.major_collections\": %d, \
              \"obs.minor_collections\": %d }%s\n"
             (json_escape name) alloc_w majors minors
             (if i = List.length gc - 1 then "" else ",")))
      gc;
    Buffer.add_string buf "  },\n";
    Buffer.add_string buf (Printf.sprintf "  \"spans\": %d\n}\n" (Atomic.get spans_total));
    Buffer.contents buf
end

(* {1 Human summary} *)

(* Nearest-rank quantile over a sorted [(value, count)] list — shared by
   the summary renderer for both power-of-2 histograms and sketches. *)
let cells_quantile total cells q =
  if total = 0 then 0
  else begin
    let rank = max 1 (min total (int_of_float (Float.ceil (q *. float_of_int total)))) in
    let rec go seen = function
      | [] -> 0
      | (v, c) :: tl -> if seen + c >= rank then v else go (seen + c) tl
    in
    go 0 cells
  end

(* Aggregate the recorded spans by path (stack of open span names, per
   domain, capped at depth 3) and render an indented tree with call
   counts and total wall time, followed by the busiest counters. Wall
   times are informational only — see the determinism contract above. *)
let summary ?(max_rows = 48) () =
  let agg : (string list, int ref * float ref) Hashtbl.t = Hashtbl.create 64 in
  let order : string list list ref = ref [] in
  let ss = Mutex.protect sinks_mu (fun () -> !sinks) in
  List.iter
    (fun s ->
      let stack = ref [] in
      List.iter
        (fun e ->
          match e.ph with
          | Begin -> stack := (e.ename, e.ts_us) :: !stack
          | End -> (
            match !stack with
            | (name, t0) :: rest ->
              stack := rest;
              let path = List.rev (name :: List.map fst rest) in
              (* Spans nested deeper than the cap are dropped (not folded
                 into an ancestor row, which would double-count time). *)
              if List.length path <= 3 then begin
              let cnt, tot =
                match Hashtbl.find_opt agg path with
                | Some cell -> cell
                | None ->
                  let cell = (ref 0, ref 0.0) in
                  Hashtbl.add agg path cell;
                  order := path :: !order;
                  cell
              in
              Stdlib.incr cnt;
              tot := !tot +. (e.ts_us -. t0)
              end
            | [] -> ())
          | Instant -> ())
        (List.rev s.evs))
    (List.rev ss);
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "== observability summary ==\n";
  p "span tree (calls, total wall ms; depth <= 3, aggregated over domains):\n";
  let paths = List.sort compare (List.rev !order) in
  let shown = ref 0 in
  List.iter
    (fun path ->
      if !shown < max_rows then begin
        Stdlib.incr shown;
        let cnt, tot = Hashtbl.find agg path in
        let depth = List.length path - 1 in
        let name = List.nth path depth in
        p "  %s%-*s %8d %12.2f\n" (String.make (2 * depth) ' ')
          (max 1 (36 - (2 * depth)))
          name !cnt (!tot /. 1e3)
      end)
    paths;
  if paths = [] then p "  (no spans recorded; enable tracing with --trace/--obs-summary)\n";
  let counters =
    List.filter (fun (_, v) -> v > 0) (counters_snapshot ())
    |> List.sort (fun (na, va) (nb, vb) -> compare (vb, na) (va, nb))
  in
  p "top counters:\n";
  List.iteri (fun i (n, v) -> if i < 16 then p "  %-36s %12d\n" n v) counters;
  if counters = [] then p "  (all counters zero)\n";
  (* Quantiles for every non-empty histogram and sketch (nearest-rank,
     bucket representative values). *)
  let qline name total cells =
    p "  %-36s n=%-9d p50=%-9d p90=%-9d p99=%-9d p999=%d\n" name total
      (cells_quantile total cells 0.50)
      (cells_quantile total cells 0.90)
      (cells_quantile total cells 0.99)
      (cells_quantile total cells 0.999)
  in
  let hist_rows =
    List.filter_map
      (fun h ->
        let cells = ref [] and total = ref 0 in
        Array.iteri
          (fun b c ->
            let c = Atomic.get c in
            if c > 0 then begin
              total := !total + c;
              cells := ((if b = 0 then 0 else 1 lsl (b - 1)), c) :: !cells
            end)
          h.buckets;
        if !total = 0 then None else Some (h.hname, !total, List.rev !cells))
      (List.sort (fun a b -> compare a.hname b.hname) (with_registry (fun () -> !hists_reg)))
  in
  let sk_rows =
    List.filter_map
      (fun (n, s) ->
        if s.Sketch.total = 0 then None
        else
          Some (n, s.Sketch.total, List.map (fun (b, c) -> (sk_bucket_rep b, c)) s.Sketch.cells))
      (sketches_snapshot ())
  in
  if hist_rows <> [] || sk_rows <> [] then begin
    p "quantiles (histograms and sketches):\n";
    List.iter (fun (n, total, cells) -> qline n total cells) hist_rows;
    List.iter (fun (n, total, cells) -> qline n total cells) sk_rows
  end;
  Buffer.contents buf

(* {1 Span-tree profiler}

   Walk each domain's recorded event stream with an explicit stack and
   aggregate by full span path: inclusive time is [end - begin];
   exclusive (self) time subtracts the inclusive time of direct
   children. Used by [--profile] (human table) and [--folded]
   (collapsed-stack export for flamegraph.pl / speedscope). *)

module Profile = struct
  type row = { path : string list; calls : int; incl_us : float; excl_us : float }

  let rows () =
    let agg : (string list, int ref * float ref * float ref) Hashtbl.t = Hashtbl.create 64 in
    let order : string list list ref = ref [] in
    let ss = Mutex.protect sinks_mu (fun () -> !sinks) in
    List.iter
      (fun s ->
        (* Stack frames: (name, open timestamp, accumulated child inclusive
           time). Unbalanced ends are dropped, like in [summary]. *)
        let stack = ref [] in
        List.iter
          (fun e ->
            match e.ph with
            | Begin -> stack := (e.ename, e.ts_us, ref 0.0) :: !stack
            | End -> (
              match !stack with
              | (name, t0, kids) :: rest ->
                stack := rest;
                let incl = e.ts_us -. t0 in
                (match rest with (_, _, pk) :: _ -> pk := !pk +. incl | [] -> ());
                let path = List.rev (name :: List.map (fun (n, _, _) -> n) rest) in
                let cnt, i_tot, e_tot =
                  match Hashtbl.find_opt agg path with
                  | Some cell -> cell
                  | None ->
                    let cell = (ref 0, ref 0.0, ref 0.0) in
                    Hashtbl.add agg path cell;
                    order := path :: !order;
                    cell
                in
                Stdlib.incr cnt;
                i_tot := !i_tot +. incl;
                e_tot := !e_tot +. (incl -. !kids)
              | [] -> ())
            | Instant -> ())
          (List.rev s.evs))
      (List.rev ss);
    List.map
      (fun path ->
        let cnt, i_tot, e_tot = Hashtbl.find agg path in
        { path; calls = !cnt; incl_us = !i_tot; excl_us = !e_tot })
      (List.sort compare (List.rev !order))

  let table ?(max_rows = 96) () =
    let rs = rows () in
    let buf = Buffer.create 1024 in
    let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    p "== profile (self time, aggregated over domains) ==\n";
    p "  %-44s %8s %12s %12s\n" "span" "calls" "incl ms" "excl ms";
    let shown = ref 0 in
    List.iter
      (fun r ->
        if !shown < max_rows then begin
          Stdlib.incr shown;
          let depth = List.length r.path - 1 in
          let name = List.nth r.path depth in
          p "  %s%-*s %8d %12.2f %12.2f\n" (String.make (2 * depth) ' ')
            (max 1 (44 - (2 * depth)))
            name r.calls (r.incl_us /. 1e3) (r.excl_us /. 1e3)
        end)
      rs;
    if rs = [] then p "  (no spans recorded; profiling implies tracing)\n";
    let gc = gc_snapshot () in
    if gc <> [] then begin
      p "gc per region (inclusive; alloc words, major / minor collections):\n";
      List.iter
        (fun (name, (aw, majors, minors)) -> p "  %-44s %14d %6d %8d\n" name aw majors minors)
        gc
    end;
    Buffer.contents buf

  (* One line per path, [a;b;c <excl microseconds>] — the collapsed-stack
     format flamegraph.pl consumes directly. Zero-weight rows are
     dropped (flamegraph tools ignore them anyway). *)
  let folded () =
    let buf = Buffer.create 1024 in
    List.iter
      (fun r ->
        let us = int_of_float r.excl_us in
        if us > 0 then
          Buffer.add_string buf (Printf.sprintf "%s %d\n" (String.concat ";" r.path) us))
      (rows ());
    Buffer.contents buf
end

(* {1 Minimal JSON validator}

   Used by the test suite and CI to check exporter output without
   depending on an external JSON library. Accepts RFC 8259 JSON. *)

module Json = struct
  exception Bad

  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c = match peek () with Some c' when c' = c -> advance () | _ -> raise Bad in
    let literal l =
      String.iter (fun c -> expect c) l
    in
    let string_body () =
      expect '"';
      let fin = ref false in
      while not !fin do
        match peek () with
        | None -> raise Bad
        | Some '"' -> advance (); fin := true
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> raise Bad
            done
          | _ -> raise Bad)
        | Some c when Char.code c < 0x20 -> raise Bad
        | Some _ -> advance ()
      done
    in
    let number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      let digits () =
        let seen = ref false in
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          seen := true;
          advance ()
        done;
        if not !seen then raise Bad
      in
      (* Integer part: a lone 0, or a nonzero digit then any run — JSON
         forbids leading zeros. *)
      (match peek () with
      | Some '0' -> advance ()
      | Some '1' .. '9' -> digits ()
      | _ -> raise Bad);
      (match peek () with
      | Some '.' ->
        advance ();
        digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            skip_ws ();
            string_body ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); fin := true
            | _ -> raise Bad
          done
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); fin := true
            | _ -> raise Bad
          done
        end
      | Some '"' -> string_body ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> raise Bad
    in
    match
      value ();
      skip_ws ();
      if !pos <> n then raise Bad
    with
    | () -> true
    | exception Bad -> false

  (* A value-producing parser over the same grammar, for tools (obsdiff)
     that must read the exporter output back. Object members keep file
     order. *)
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c = match peek () with Some c' when c' = c -> advance () | _ -> raise Bad in
    let literal l = String.iter (fun c -> expect c) l in
    let hex4 () =
      let v = ref 0 in
      for _ = 1 to 4 do
        (match peek () with
        | Some ('0' .. '9' as c) -> v := (!v * 16) + (Char.code c - Char.code '0')
        | Some ('a' .. 'f' as c) -> v := (!v * 16) + (Char.code c - Char.code 'a' + 10)
        | Some ('A' .. 'F' as c) -> v := (!v * 16) + (Char.code c - Char.code 'A' + 10)
        | _ -> raise Bad);
        advance ()
      done;
      !v
    in
    let string_body () =
      expect '"';
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        match peek () with
        | None -> raise Bad
        | Some '"' -> advance (); fin := true
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'
          | Some '\\' -> advance (); Buffer.add_char buf '\\'
          | Some '/' -> advance (); Buffer.add_char buf '/'
          | Some 'b' -> advance (); Buffer.add_char buf '\b'
          | Some 'f' -> advance (); Buffer.add_char buf '\012'
          | Some 'n' -> advance (); Buffer.add_char buf '\n'
          | Some 'r' -> advance (); Buffer.add_char buf '\r'
          | Some 't' -> advance (); Buffer.add_char buf '\t'
          | Some 'u' ->
            advance ();
            let cp = hex4 () in
            Buffer.add_utf_8_uchar buf
              (if Uchar.is_valid cp then Uchar.of_int cp else Uchar.rep)
          | _ -> raise Bad)
        | Some c when Char.code c < 0x20 -> raise Bad
        | Some c -> advance (); Buffer.add_char buf c
      done;
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      (match peek () with Some '-' -> advance () | _ -> ());
      let digits () =
        let seen = ref false in
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          seen := true;
          advance ()
        done;
        if not !seen then raise Bad
      in
      (match peek () with
      | Some '0' -> advance ()
      | Some '1' .. '9' -> digits ()
      | _ -> raise Bad);
      (match peek () with
      | Some '.' ->
        advance ();
        digits ()
      | _ -> ());
      (match peek () with
      | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ());
      float_of_string (String.sub s start (!pos - start))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let fin = ref false in
          while not !fin do
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); fin := true
            | _ -> raise Bad
          done;
          Obj (List.rev !members)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let fin = ref false in
          while not !fin do
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); fin := true
            | _ -> raise Bad
          done;
          Arr (List.rev !items)
        end
      | Some '"' -> Str (string_body ())
      | Some 't' -> literal "true"; Bool true
      | Some 'f' -> literal "false"; Bool false
      | Some 'n' -> literal "null"; Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | _ -> raise Bad
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> n then raise Bad;
      v
    with
    | v -> Some v
    | exception Bad -> None

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
end
