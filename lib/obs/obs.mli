(** Deterministic tracing & metrics ([Bn_obs]).

    Three instruments, one contract:

    - {b counters} ({!counter}, {!add}): integers in a global registry,
      sharded per domain — a bump is a plain increment of a
      domain-local cell (no atomics, no locks) and a read sums the
      shards, exact once the writing domains have been joined (which
      Pool does before returning). A {!Det} counter is a pure function
      of the workload — identical at any [-j] and across same-seed
      reruns — and is asserted by tests and CI. A {!Volatile} counter
      may depend on scheduling (early-exit scans, per-chunk work) and
      is exported in a separate section, never asserted.
    - {b spans} ({!span}, {!instant}): nested begin/end events with
      wall-clock timestamps and the recording domain's id, collected
      per-domain through a DLS sink (no locks on the hot path). Timing
      is nondeterministic by nature and {e export-only}: trace data
      never feeds back into computation.
    - {b exporters}: Chrome trace-event JSON ({!Export.chrome_trace}),
      a flat metrics snapshot ({!Export.metrics_json}) whose
      ["counters"] section is the byte-comparable determinism artifact,
      and a human {!summary} table.

    With tracing off (the default) a span costs one atomic load, so
    instrumented code keeps its output and (within noise) its speed. *)

val now_us : unit -> float
(** Wall-clock microseconds ([Unix.gettimeofday] scaled). Export-only. *)

(** {1 Switches} *)

val set_tracing : bool -> unit
(** Enable/disable span recording (counters are always on). *)

val tracing_enabled : unit -> bool

val set_progress : bool -> unit
(** Enable the per-experiment stderr progress line in
    [Experiments.run_all] (read there, not here). *)

val progress_enabled : unit -> bool

val set_timing : bool -> unit
(** Enable wall-clock sketch observations ({!timed}). Off by default so
    uninstrumented runs pay one atomic load per [timed] call site.
    [Det]-kind sketches are always on, like counters. *)

val timing_enabled : unit -> bool

val set_gc_probes : bool -> unit
(** Enable [Gc.quick_stat] deltas at span boundaries (implies a useful
    result only when tracing is also on). Off by default. *)

val gc_probes_enabled : unit -> bool

(** {1 Counters, gauges, histograms} *)

type kind = Det  (** deterministic: asserted across [-j] and reruns *)
          | Volatile  (** schedule-dependent: export-only *)

type counter
type gauge
type hist

val counter : ?kind:kind -> string -> counter
(** Find-or-create by name (idempotent; the first call fixes the kind).
    Declare counters at module-init time, off the hot path. *)

val add : counter -> int -> unit
val incr : counter -> unit

val add2 : counter -> int -> counter -> int -> unit
(** [add2 c1 n1 c2 n2] = [add c1 n1; add c2 n2] with a single
    domain-local lookup — for hot paths that flush two tallies at once. *)

val value : counter -> int
(** Sum of the per-domain shards; exact after the writers are joined. *)

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val max_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val hist : ?kind:kind -> string -> hist
(** Power-of-two bucket histogram (bucket boundaries at 2^i). *)

val observe : hist -> int -> unit

val counters_snapshot : ?kind:kind -> unit -> (string * int) list
(** All (or one kind's) counter values, sorted by name. *)

(** {1 Quantile sketches}

    Mergeable log-bucketed sketches (HDR-style: exact below 64, then 32
    sub-buckets per power of two, relative error <= 1/64 on bucket
    representatives). Observations are plain bumps of a domain-local
    row — no atomics — and a snapshot sums the shards in fixed
    registration order, so a {!Det} sketch is byte-identical at any
    [-j] and across same-seed reruns. Wall-clock sketches must be
    {!Volatile} and are only populated when {!set_timing} is on. *)

type sketch

val sketch : ?kind:kind -> string -> sketch
(** Find-or-create by name (idempotent; the first call fixes the kind). *)

val observe_sk : sketch -> int -> unit
(** Record one non-negative value (negatives clamp to 0). *)

val timed : sketch -> (unit -> 'a) -> 'a
(** [timed sk f] runs [f] and, when {!timing_enabled}, records its
    wall-clock duration in nanoseconds into [sk]. One atomic load when
    timing is off. Exception-safe. *)

module Sketch : sig
  type snap = { total : int; cells : (int * int) list }
  (** Total observation count plus sorted [(bucket index, count)] cells. *)

  val empty : snap
  val of_values : int list -> snap
  val snapshot : sketch -> snap
  val merge : snap -> snap -> snap
  (** Associative and commutative; cells union with counts added. *)

  val count : snap -> int

  val quantile : snap -> float -> int
  (** Nearest-rank quantile (rank [ceil (q*n)] clamped to [1..n]),
      reported as the bucket representative (midpoint). 0 when empty. *)

  val quantiles : snap -> (string * int) list
  (** [p50], [p90], [p99], [p999]. *)
end

val sketches_snapshot : ?kind:kind -> unit -> (string * Sketch.snap) list
(** All (or one kind's) sketches, sorted by name. *)

(** {1 Spans} *)

type arg = I of int | S of string | F of float
type phase = Begin | End | Instant

type event = {
  ename : string;
  ph : phase;
  ts_us : float;
  tid : int;
  args : (string * arg) list;
}

val span : ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording begin/end events around it when
    tracing is enabled ([args] is only evaluated then). Exception-safe:
    the end event is recorded even if [f] raises. *)

val instant : ?args:(unit -> (string * arg) list) -> string -> unit
(** A point event (e.g. a fault injection) on the trace timeline. *)

val span_count : unit -> int
(** Spans recorded since the last {!reset} (0 when tracing is off). *)

val events : unit -> event list
(** Every recorded event, grouped by domain in registration order and
    chronological within each domain. *)

val reset : unit -> unit
(** Zero every counter/gauge/histogram/sketch, drop all recorded events
    and GC probe data. *)

val gc_snapshot : unit -> (string * (int * int * int)) list
(** Per span label, inclusive [(alloc words, major collections, minor
    collections)] deltas captured while {!set_gc_probes} (and tracing)
    were on; sorted by label. *)

(** {1 Exporters} *)

module Export : sig
  val chrome_trace : unit -> string
  (** [chrome://tracing] / Perfetto JSON ("traceEvents" array);
      timestamps in microseconds relative to the earliest event. *)

  val metrics_json : unit -> string
  (** Flat snapshot (schema [beyond-nash-metrics/2]): ["counters"] and
      ["sketches"] (Det, sorted — the byte-comparable sections),
      ["volatile"], ["sketches_volatile"], ["gauges"], ["histograms"],
      ["gc"], ["spans"]. *)
end

val summary : ?max_rows:int -> unit -> string
(** Human-readable table: aggregated span tree (calls, total wall ms),
    the busiest counters, and quantiles for every non-empty histogram
    and sketch. *)

(** {1 Span-tree profiler} *)

module Profile : sig
  type row = { path : string list; calls : int; incl_us : float; excl_us : float }
  (** One aggregated span path: call count, inclusive wall time, and
      exclusive (self) time with direct children subtracted. *)

  val rows : unit -> row list
  (** Aggregated over all domains, sorted by path. *)

  val table : ?max_rows:int -> unit -> string
  (** The [--profile] table: indented span tree with calls / incl ms /
      excl ms, plus per-region GC deltas when probes were on. *)

  val folded : unit -> string
  (** Collapsed-stack export ([a;b;c <excl_us>] per line) for
      flamegraph.pl / speedscope; zero-weight rows dropped. *)
end

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

(** {1 JSON validation} *)

module Json : sig
  val validate : string -> bool
  (** [true] iff the string is one well-formed RFC 8259 JSON value.
      Used by the test suite and CI to validate exporter output without
      an external JSON dependency. *)

  (** Parsed JSON; object members keep file order. *)
  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of value list
    | Obj of (string * value) list

  val parse : string -> value option
  (** Full RFC 8259 parse (escapes decoded, [\uXXXX] as UTF-8);
      [None] on malformed input. *)

  val member : string -> value -> value option
  (** First member of that name when the value is an object. *)
end
