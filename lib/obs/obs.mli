(** Deterministic tracing & metrics ([Bn_obs]).

    Three instruments, one contract:

    - {b counters} ({!counter}, {!add}): integers in a global registry,
      sharded per domain — a bump is a plain increment of a
      domain-local cell (no atomics, no locks) and a read sums the
      shards, exact once the writing domains have been joined (which
      Pool does before returning). A {!Det} counter is a pure function
      of the workload — identical at any [-j] and across same-seed
      reruns — and is asserted by tests and CI. A {!Volatile} counter
      may depend on scheduling (early-exit scans, per-chunk work) and
      is exported in a separate section, never asserted.
    - {b spans} ({!span}, {!instant}): nested begin/end events with
      wall-clock timestamps and the recording domain's id, collected
      per-domain through a DLS sink (no locks on the hot path). Timing
      is nondeterministic by nature and {e export-only}: trace data
      never feeds back into computation.
    - {b exporters}: Chrome trace-event JSON ({!Export.chrome_trace}),
      a flat metrics snapshot ({!Export.metrics_json}) whose
      ["counters"] section is the byte-comparable determinism artifact,
      and a human {!summary} table.

    With tracing off (the default) a span costs one atomic load, so
    instrumented code keeps its output and (within noise) its speed. *)

val now_us : unit -> float
(** Wall-clock microseconds ([Unix.gettimeofday] scaled). Export-only. *)

(** {1 Switches} *)

val set_tracing : bool -> unit
(** Enable/disable span recording (counters are always on). *)

val tracing_enabled : unit -> bool

val set_progress : bool -> unit
(** Enable the per-experiment stderr progress line in
    [Experiments.run_all] (read there, not here). *)

val progress_enabled : unit -> bool

(** {1 Counters, gauges, histograms} *)

type kind = Det  (** deterministic: asserted across [-j] and reruns *)
          | Volatile  (** schedule-dependent: export-only *)

type counter
type gauge
type hist

val counter : ?kind:kind -> string -> counter
(** Find-or-create by name (idempotent; the first call fixes the kind).
    Declare counters at module-init time, off the hot path. *)

val add : counter -> int -> unit
val incr : counter -> unit

val add2 : counter -> int -> counter -> int -> unit
(** [add2 c1 n1 c2 n2] = [add c1 n1; add c2 n2] with a single
    domain-local lookup — for hot paths that flush two tallies at once. *)

val value : counter -> int
(** Sum of the per-domain shards; exact after the writers are joined. *)

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val max_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

val hist : ?kind:kind -> string -> hist
(** Power-of-two bucket histogram (bucket boundaries at 2^i). *)

val observe : hist -> int -> unit

val counters_snapshot : ?kind:kind -> unit -> (string * int) list
(** All (or one kind's) counter values, sorted by name. *)

(** {1 Spans} *)

type arg = I of int | S of string | F of float
type phase = Begin | End | Instant

type event = {
  ename : string;
  ph : phase;
  ts_us : float;
  tid : int;
  args : (string * arg) list;
}

val span : ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording begin/end events around it when
    tracing is enabled ([args] is only evaluated then). Exception-safe:
    the end event is recorded even if [f] raises. *)

val instant : ?args:(unit -> (string * arg) list) -> string -> unit
(** A point event (e.g. a fault injection) on the trace timeline. *)

val span_count : unit -> int
(** Spans recorded since the last {!reset} (0 when tracing is off). *)

val events : unit -> event list
(** Every recorded event, grouped by domain in registration order and
    chronological within each domain. *)

val reset : unit -> unit
(** Zero every counter/gauge/histogram and drop all recorded events. *)

(** {1 Exporters} *)

module Export : sig
  val chrome_trace : unit -> string
  (** [chrome://tracing] / Perfetto JSON ("traceEvents" array);
      timestamps in microseconds relative to the earliest event. *)

  val metrics_json : unit -> string
  (** Flat snapshot: ["counters"] (Det, sorted — the byte-comparable
      section), ["volatile"], ["gauges"], ["histograms"], ["spans"]. *)
end

val summary : ?max_rows:int -> unit -> string
(** Human-readable table: aggregated span tree (calls, total wall ms)
    and the busiest counters. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

(** {1 JSON validation} *)

module Json : sig
  val validate : string -> bool
  (** [true] iff the string is one well-formed RFC 8259 JSON value.
      Used by the test suite and CI to validate exporter output without
      an external JSON dependency. *)
end
