module Obs = Bn_obs.Obs

(* Pool calls happen under Robust's early-exit profile sweeps, and the
   number of chunks depends on the domain budget, so both counters are
   schedule-dependent. *)
let c_calls = Obs.counter ~kind:Obs.Volatile "pool.calls"
let c_chunks = Obs.counter ~kind:Obs.Volatile "pool.chunks"

(* How many items a worker completed outside its own range: pure scheduling
   telemetry, entirely timing-dependent. *)
let c_steals = Obs.counter ~kind:Obs.Volatile "pool.steals"
let g_max_domains = Obs.gauge "pool.max_domains"
let sk_chunk_ns = Obs.sketch ~kind:Obs.Volatile "pool.chunk_ns"

type t = { budget : int }

let default_jobs () = Domain.recommended_domain_count ()

let create ?domains () =
  let d = match domains with Some d -> d | None -> default_jobs () in
  { budget = max 1 d }

let serial = { budget = 1 }

let domains t = t.budget

(* Contiguous chunk [lo, hi) handled by worker [j] of [d] over [n] items.
   Chunk boundaries depend only on (n, d), never on timing. *)
let chunk ~n ~d j = (j * n / d, (j + 1) * n / d)

(* Run [body j] on [d] workers: worker 0 on the calling domain, the rest on
   fresh domains, all joined before returning. Any exception from a worker
   is re-raised (spawned workers first, in worker order). *)
let run_workers ~d body =
  Obs.incr c_calls;
  Obs.add c_chunks d;
  Obs.max_gauge g_max_domains d;
  (* One span per chunk, recorded on the worker's own domain; its wall
     time is the chunk's busy time, also sketched (when timing is on) so
     the chunk-size imbalance shows up as p50-vs-p99 spread. *)
  let body j =
    Obs.span "pool.chunk"
      ~args:(fun () -> [ ("worker", Obs.I j); ("domains", Obs.I d) ])
      (fun () -> Obs.timed sk_chunk_ns (fun () -> body j))
  in
  if d <= 1 then body 0
  else begin
    let spawned = Array.init (d - 1) (fun i -> Domain.spawn (fun () -> body (i + 1))) in
    let mine = try Ok (body 0) with e -> Error e in
    Array.iter Domain.join spawned;
    match mine with Ok () -> () | Error e -> raise e
  end

let effective_domains t n = min t.budget (max 1 n)

let iter_grid t f grid =
  let n = Array.length grid in
  if n > 0 then begin
    let d = effective_domains t n in
    run_workers ~d (fun j ->
        let lo, hi = chunk ~n ~d j in
        for i = lo to hi - 1 do
          f grid.(i)
        done)
  end

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let d = effective_domains t n in
    run_workers ~d (fun j ->
        let lo, hi = chunk ~n ~d j in
        for i = lo to hi - 1 do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some y -> y | None -> assert false) out
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

(* Work-stealing variant of [map_array]: indices are still partitioned into
   the same contiguous ranges, but ownership of an {e index} is decided by a
   per-index CAS claim rather than by the partition, so a worker that
   drains its range keeps going on other ranges instead of idling. Each
   worker walks its own range front-to-back, then victims' ranges
   back-to-front (starting from the next range up), so owner and thief
   approach from opposite ends and contend only on a range's last pending
   items. Every result still lands in the slot of the index it came from —
   which indices were stolen affects timing and the [pool.steals] counter
   only, never the returned array. *)
let map_array_steal t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let d = effective_domains t n in
    if d <= 1 then begin
      let out = ref [||] in
      run_workers ~d:1 (fun _ -> out := Array.map f xs);
      !out
    end
    else begin
      let out = Array.make n None in
      let claimed = Array.init n (fun _ -> Atomic.make false) in
      (* Claim-then-run: the CAS hands each index to exactly one worker. *)
      let attempt i =
        if Atomic.compare_and_set claimed.(i) false true then begin
          out.(i) <- Some (f xs.(i));
          true
        end
        else false
      in
      run_workers ~d (fun j ->
          let lo, hi = chunk ~n ~d j in
          for i = lo to hi - 1 do
            ignore (attempt i)
          done;
          for k = 1 to d - 1 do
            let v = (j + k) mod d in
            let vlo, vhi = chunk ~n ~d v in
            for i = vhi - 1 downto vlo do
              if attempt i then Obs.incr c_steals
            done
          done);
      Array.map (function Some y -> y | None -> assert false) out
    end
  end

let find_first t f xs =
  let n = Array.length xs in
  if n = 0 then None
  else begin
    let d = effective_domains t n in
    (* Lowest index with a hit so far; workers stop once their whole
       remaining range lies above it. Purely an early-exit: the final
       answer is the minimum over per-worker first hits. *)
    let watermark = Atomic.make n in
    let rec lower i =
      let cur = Atomic.get watermark in
      if i < cur && not (Atomic.compare_and_set watermark cur i) then lower i
    in
    let hits = Array.make d None in
    run_workers ~d (fun j ->
        let lo, hi = chunk ~n ~d j in
        let i = ref lo in
        let stop = ref false in
        while (not !stop) && !i < hi && !i < Atomic.get watermark do
          (match f xs.(!i) with
          | Some _ as y ->
            hits.(j) <- Some (!i, y);
            lower !i;
            stop := true
          | None -> ());
          incr i
        done);
    let best = ref None in
    Array.iter
      (function
        | Some (i, y) -> (
          match !best with Some (i0, _) when i0 <= i -> () | _ -> best := Some (i, y))
        | None -> ())
      hits;
    match !best with Some (_, y) -> y | None -> None
  end
