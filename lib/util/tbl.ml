(* The one reviewed site where hash-table bindings are allowed to escape:
   everything is sorted by key before it leaves, so callers never observe
   bucket order. Keep every other Hashtbl.iter/fold out of the tree —
   Bn_lint rule D003 enforces this. *)
[@@@lint.allow "D003" "single reviewed traversal site: bindings are sorted by key before escaping"]

let sorted_bindings tbl =
  List.sort
    (fun (ka, _) (kb, _) -> compare ka kb)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let sorted_keys tbl = List.map fst (sorted_bindings tbl)

let find_first p tbl =
  List.find_opt (fun (k, v) -> p k v) (sorted_bindings tbl)
