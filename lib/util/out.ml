(* The sink is domain-local so that pool workers capturing concurrently
   never see each other's output. [None] means stdout. *)
[@@@lint.allow "P002"
  "the per-domain render sink IS the Out mechanism: DLS keeps concurrent captures from \
   interleaving, and nothing here schedules work"]

let sink : Buffer.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let print_string s =
  match !(Domain.DLS.get sink) with
  | None -> Stdlib.print_string s
  | Some b -> Buffer.add_string b s

let printf fmt = Printf.ksprintf print_string fmt
let print_endline s = print_string s; print_string "\n"
let print_newline () = print_string "\n"

let with_capture f =
  let cell = Domain.DLS.get sink in
  let saved = !cell in
  let buf = Buffer.create 4096 in
  cell := Some buf;
  Fun.protect ~finally:(fun () -> cell := saved) f;
  Buffer.contents buf
