(** Deterministic multicore execution (OCaml 5 domains).

    A [Pool.t] is a chunked, work-stealing-free parallel runner: every
    operation partitions its input into contiguous index ranges, hands one
    range to each domain, and writes each result into the slot of the index
    it came from. Because the mapping from input index to result slot is
    fixed — no queues, no stealing, no completion-order effects — every
    operation is {e bit-identical regardless of the number of domains},
    provided the task functions are pure (or, for {!iter_grid}, touch
    disjoint state per index). Combined with {!Prng.split}'s indexed
    streams, this is the repo-wide contract that lets the experiment
    harness parallelize Monte Carlo loops and coalition enumeration without
    ever perturbing a paper table (verified by [test/test_determinism.ml]).

    Domains are spawned per call and joined before the call returns; a
    pool holds no threads while idle, so pools are cheap to create and
    never leak. *)

type t
(** A parallelism budget: how many domains an operation may use. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the sanctioned way for drivers
    (bin, bench) to pick a default [-j]; [Domain] access is otherwise
    confined to this module and {!Bn_obs.Obs} (lint rule P002). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] builds a pool that runs at most [domains] domains
    at once (including the calling one). Defaults to
    [Domain.recommended_domain_count ()]. [domains < 1] is clamped to 1. *)

val serial : t
(** The single-domain pool: every operation degenerates to a plain loop on
    the calling domain. *)

val domains : t -> int
(** The domain budget of the pool. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs] computed on up to [domains pool]
    domains. Order is preserved; for pure [f] the result is identical to
    the serial map for every pool size. Exceptions raised by [f] are
    re-raised in the caller. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)

val map_array_steal : t -> ('a -> 'b) -> 'a array -> 'b array
(** Work-stealing {!map_array}: same contiguous ranges, but a worker that
    finishes its own range claims pending indices from other ranges
    (back-to-front, via a per-index atomic claim) instead of idling.
    Results are written to the slot of the index they came from, so for
    pure [f] the returned array is byte-identical to {!map_array} — and to
    the serial map — for every pool size; only the wall-clock balance and
    the volatile [pool.steals] counter depend on who ran what. Prefer this
    over {!map_array} when per-item cost is skewed (e.g. explorer trials
    that shrink a counterexample). *)

val iter_grid : t -> ('a -> unit) -> 'a array -> unit
(** [iter_grid pool f grid] applies [f] to every grid point, partitioned
    over domains in contiguous chunks. [f] runs concurrently: calls for
    different indices must touch disjoint mutable state (the canonical use
    writes [results.(i)] from the task for index [i]). *)

val find_first : t -> ('a -> 'b option) -> 'a array -> 'b option
(** [find_first pool f xs] is [Some y] where [y = f xs.(i)] for the {e
    smallest} [i] with [f xs.(i) <> None], or [None]. Equivalent to the
    serial left-to-right search for pure [f] — the parallel scan shares a
    lowest-hit watermark so later chunks stop early, but the winner is
    always the minimal index, keeping counterexample reports (e.g.
    {!Robust} violations) deterministic. *)
