(** Redirectable output for the experiment harness.

    Experiments print through this module instead of [Printf]/[print_*].
    By default everything goes to stdout; {!with_capture} reroutes the
    {e current domain}'s output into a private buffer, which is how
    [Experiments.run_all] renders every experiment on a separate domain
    and still prints the byte-exact serial transcript in registry order.
    The sink is domain-local state, so concurrent captures on different
    domains never interleave. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** [printf fmt ...] — like [Printf.printf], into the current sink. *)

val print_string : string -> unit
val print_endline : string -> unit
val print_newline : unit -> unit

val with_capture : (unit -> unit) -> string
(** [with_capture f] runs [f] with this domain's sink pointing at a fresh
    buffer and returns everything printed. The previous sink is restored
    on exit (also on exceptions); captures nest. *)
