let subsets_of_size n k =
  if k < 0 || k > n then []
  else
    let rec go start k =
      if k = 0 then [ [] ]
      else
        let rec from i acc =
          if i > n - k then List.rev acc
          else
            let extended = List.map (fun rest -> i :: rest) (go (i + 1) (k - 1)) in
            from (i + 1) (List.rev_append extended acc)
        in
        from start []
    in
    go 0 k

let subsets_up_to n k =
  let rec sizes i acc = if i > k || i > n then List.rev acc else sizes (i + 1) (subsets_of_size n i :: acc) in
  List.concat (sizes 1 [])

let iter_profiles dims f =
  let n = Array.length dims in
  if Array.exists (fun d -> d <= 0) dims then ()
  else begin
    let p = Array.make n 0 in
    let rec bump i =
      if i < 0 then false
      else if p.(i) + 1 < dims.(i) then begin
        p.(i) <- p.(i) + 1;
        true
      end
      else begin
        p.(i) <- 0;
        bump (i - 1)
      end
    in
    let continue = ref true in
    while !continue do
      f p;
      continue := n > 0 && bump (n - 1)
    done
  end

let profiles dims =
  let acc = ref [] in
  iter_profiles dims (fun p -> acc := Array.copy p :: !acc);
  List.rev !acc

let iter_joint_assignments members dims f =
  let m = Array.length members in
  if m = 0 then f [||] 0
  else begin
    let acts = Array.make m 0 in
    let continue = ref true in
    let changed = ref 0 in
    while !continue do
      f acts !changed;
      let rec bump j =
        if j < 0 then false
        else if acts.(j) + 1 < dims.(members.(j)) then begin
          acts.(j) <- acts.(j) + 1;
          changed := j;
          true
        end
        else begin
          acts.(j) <- 0;
          bump (j - 1)
        end
      in
      continue := bump (m - 1)
    done
  end

let joint_assignments members dims =
  let rec go = function
    | [] -> [ [] ]
    | i :: rest ->
      let tails = go rest in
      List.concat_map
        (fun a -> List.map (fun tail -> (i, a) :: tail) tails)
        (List.init dims.(i) (fun a -> a))
  in
  go members

let binomial n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    let rec go i acc = if i > k then acc else go (i + 1) (acc * (n - k + i) / i) in
    go 1 1
