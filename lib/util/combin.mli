(** Combinatorial enumeration used by the equilibrium checkers.

    Coalition and deviation checks quantify over subsets of players and
    joint action profiles; these enumerators keep that logic in one place. *)

val subsets_of_size : int -> int -> int list list
(** [subsets_of_size n k] lists all size-[k] subsets of [{0, …, n−1}] in
    lexicographic order, each sorted ascending. *)

val subsets_up_to : int -> int -> int list list
(** [subsets_up_to n k] lists all non-empty subsets of size ≤ [k]. *)

val profiles : int array -> int array list
(** [profiles dims] lists all tuples [p] with [0 ≤ p.(i) < dims.(i)],
    in row-major order. Arrays are fresh. *)

val iter_profiles : int array -> (int array -> unit) -> unit
(** Iteration form of {!profiles}; the callback's array is reused, copy it
    if kept. *)

val joint_assignments : int list -> int array -> (int * int) list list
(** [joint_assignments members dims] lists, for a coalition given by player
    indices [members], every joint assignment of an action in
    [0 … dims.(i)−1] to each member [i], as association lists. *)

val iter_joint_assignments : int array -> int array -> (int array -> int -> unit) -> unit
(** In-place iteration form of {!joint_assignments}: enumerates every joint
    assignment to [members] (an array of player indices) in the same
    row-major order — first member outermost — without materializing any
    list. The callback receives [acts] (the action of [members.(j)] is
    [acts.(j)]; the array is reused, copy if kept) and the lowest position
    [j] whose action changed since the previous call (positions above [j]
    were reset to 0; [0] on the first call), which lets callers maintain
    prefix state — e.g. an incrementally shifted flat payoff index — in
    amortized O(1) per assignment. Empty [members] yields the single empty
    assignment. *)

val binomial : int -> int -> int
(** Binomial coefficient (exact, for small arguments). *)
