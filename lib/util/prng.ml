type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer: xor-shift / multiply avalanche of the counter. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Indexed split: the child's state is a pure avalanche of (state, i), so
   it neither advances the parent nor depends on how many siblings were
   split before it — the property that makes parallel Monte Carlo loops
   bit-identical for any domain count. The double mix (with a xor of a
   second odd constant in between) keeps child streams disjoint from the
   parent's own SplitMix64 counter stream. *)
let split t i =
  let z = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix (Int64.logxor (mix z) 0xA5A5B4E1D3C2F687L) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t =
  (* 53 high-quality bits into the mantissa. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Prng.exponential: lambda must be positive";
  -.log (1.0 -. float t) /. lambda

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = 1.0 -. float t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
