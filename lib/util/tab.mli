(** Plain-text table rendering for the experiment harness.

    Every experiment in [bench/] prints its reproduction of a paper
    table/series through this module, so all output is uniformly formatted
    and greppable. *)

type t
(** A table under construction. *)

val create : title:string -> string list -> t
(** [create ~title headers] starts a table. *)

val add_row : t -> string list -> unit
(** Appends a row; short rows are padded with empty cells. *)

val add_float_row : t -> string -> float list -> unit
(** Row with a string label followed by floats rendered with 4 decimals. *)

val render : t -> string
(** ASCII rendering with a title line, a header rule, and aligned columns. *)

val print : t -> unit
(** [render] followed by output through {!Out} (stdout, or the current
    capture buffer) with a trailing blank line. *)

val fmt_float : float -> string
(** Canonical float formatting used by {!add_float_row}. *)
