(** Deterministic pseudo-random number generator (SplitMix64).

    All randomized components of the library take an explicit [Prng.t] so
    that every simulation, sampled protocol run, and property test is
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds give
    equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child generator from [t]'s current
    state {e without advancing [t]}: it is a pure function of the state
    and [i], so [split t i] called before, after, or concurrently with any
    other split of [t] always yields the same stream. Distinct indices
    give streams that are statistically independent of each other and of
    the remainder of [t]'s own stream. This is the seed-derivation
    contract the parallel {!Pool} relies on for bit-identical results at
    any domain count. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples Exp(lambda). *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli(p) sequence; [p] must be in (0, 1]. *)
