type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4f" x

let add_float_row t label xs = add_row t (label :: List.map fmt_float xs)

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad row = row @ List.init (ncols - List.length row) (fun _ -> "") in
  let all = pad t.headers :: List.map pad rows in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let render_row row =
    let cells = List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "|"
    ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let body =
    match all with
    | header :: data -> render_row header :: rule :: List.map render_row data
    | [] -> []
  in
  String.concat "\n" (("== " ^ t.title ^ " ==") :: body)

let print t =
  Out.print_string (render t);
  Out.print_newline ();
  Out.print_newline ()
