(** Deterministic escape hatch for hash tables.

    [Hashtbl.iter]/[Hashtbl.fold] enumerate buckets in an order that
    depends on hashing and insertion history, so any result built from a
    raw traversal is a determinism hazard — the byte-identical-at-any[-j]
    contract (and lint rule D003) bans them everywhere else in the tree.
    This module is the single reviewed site: every traversal sorts the
    bindings by key (polymorphic [compare]) before they escape, making the
    result a pure function of the table's {e contents}.

    Keys must therefore be safely comparable (no functional values); all
    in-tree uses are ints, strings or lists of those. *)

val sorted_bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, sorted by key. For tables built with [Hashtbl.replace]
    (every in-tree table) keys are distinct, so the order is total and the
    values never need comparing. *)

val sorted_keys : ('a, 'b) Hashtbl.t -> 'a list
(** [List.map fst (sorted_bindings tbl)]. *)

val find_first : ('a -> 'b -> bool) -> ('a, 'b) Hashtbl.t -> ('a * 'b) option
(** First binding in key order satisfying the predicate — the
    deterministic replacement for "[Hashtbl.iter] until a hit". *)
