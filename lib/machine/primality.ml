(* Modular multiplication that is overflow-safe for moduli up to 2^62, by
   Russian-peasant doubling when operands are large. Each call counts as one
   modular multiplication for complexity accounting (the doubling is how a
   fixed-width ALU would implement it; charging per high-level mulmod keeps
   the cost model machine-independent). *)
let mulmod a b m =
  if m < 1 lsl 31 then a * b mod m
  else begin
    let rec go a b acc =
      if b = 0 then acc
      else begin
        let acc = if b land 1 = 1 then (acc + a) mod m else acc in
        go ((a + a) mod m) (b lsr 1) acc
      end
    in
    go (a mod m) b 0
  end

(* The modular-multiplication counter is threaded explicitly (created per
   [counted_is_prime] call) rather than kept as module state, so counts
   stay exact when primality games run on several domains at once. *)
let powmod ~ops base e m =
  let rec go base e acc =
    if e = 0 then acc
    else begin
      incr ops;
      let acc = if e land 1 = 1 then mulmod acc base m else acc in
      go (mulmod base base m) (e lsr 1) acc
    end
  in
  go (base mod m) e 1

(* Deterministic Miller–Rabin bases valid for all inputs < 3.3 * 10^24 ⊇
   63-bit range. *)
let bases = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37 ]

let miller_rabin ~ops n =
  if n < 2 then false
  else if n mod 2 = 0 then n = 2
  else begin
    let rec split d s = if d mod 2 = 0 then split (d / 2) (s + 1) else (d, s) in
    let d, s = split (n - 1) 0 in
    let witness a =
      let a = a mod n in
      if a = 0 then false
      else begin
        let x = powmod ~ops a d n in
        if x = 1 || x = n - 1 then false
        else begin
          let rec loop x i =
            if i = s - 1 then true
            else begin
              incr ops;
              let x = mulmod x x n in
              if x = n - 1 then false else loop x (i + 1)
            end
          in
          loop x 0
        end
      end
    in
    not (List.exists witness bases)
  end

let counted_is_prime n =
  let ops = ref 0 in
  let result = miller_rabin ~ops n in
  (result, !ops)

let is_prime n = fst (counted_is_prime n)

type spec = {
  bits : int;
  cost_per_op : float;
  samples : int;
  reward_correct : float;
  penalty_wrong : float;
  reward_safe : float;
}

let default_spec ~bits ~cost_per_op =
  { bits; cost_per_op; samples = 400; reward_correct = 10.0; penalty_wrong = 10.0; reward_safe = 1.0 }

let machine_names = [| "solve"; "safe"; "guess-prime"; "guess-composite" |]

(* Actions: 0 = declare composite, 1 = declare prime, 2 = abstain.

   The type space is balanced: half primes, half composites, so that
   declaring blindly is a fair bet (expected 0) and the tension is exactly
   the paper's "compute for $10 or take the safe $1". *)
let sample_inputs rng spec =
  if spec.bits < 5 || spec.bits > 62 then invalid_arg "Primality: bits in [5, 62]";
  let base = 1 lsl (spec.bits - 1) in
  let random_odd () =
    let x = base + Bn_util.Prng.int rng base in
    if x mod 2 = 0 then x + 1 else x
  in
  let rec sample_with want_prime =
    let rec scan x tries =
      if tries > 4 * spec.bits * spec.bits then random_odd ()
      else if is_prime x = want_prime then x
      else scan (x + 2) (tries + 1)
    in
    let x = scan (random_odd ()) 0 in
    if is_prime x = want_prime then x else sample_with want_prime
  in
  Array.init spec.samples (fun i -> sample_with (i mod 2 = 0))

let game rng spec =
  let inputs = sample_inputs rng spec in
  let truth = Array.map is_prime inputs in
  let costs = Array.map (fun x -> float_of_int (snd (counted_is_prime x))) inputs in
  let solve =
    {
      Machine.name = "solve";
      act = (fun idx -> Bn_util.Dist.return (if truth.(idx) then 1 else 0));
      complexity = (fun idx -> costs.(idx));
      randomized = false;
    }
  in
  let safe = Machine.constant "safe" ~complexity:(fun _ -> 1.0) 2 in
  let guess_prime = Machine.constant "guess-prime" ~complexity:(fun _ -> 1.0) 1 in
  let guess_composite = Machine.constant "guess-composite" ~complexity:(fun _ -> 1.0) 0 in
  let prior = Bn_util.Dist.uniform (List.init spec.samples (fun i -> [| i |])) in
  Machine_game.create
    ~machines:[| [| solve; safe; guess_prime; guess_composite |] |]
    ~num_types:[| spec.samples |]
    ~prior
    ~utility:(fun ~player:_ ~types ~acts ~complexities ->
      let idx = types.(0) in
      let base =
        match acts.(0) with
        | 2 -> spec.reward_safe
        | a ->
          let correct = (a = 1) = truth.(idx) in
          if correct then spec.reward_correct else -.spec.penalty_wrong
      in
      base -. (spec.cost_per_op *. complexities.(0)))

let utilities rng spec =
  let g = game rng spec in
  List.init 4 (fun m ->
      (machine_names.(m), Machine_game.expected_utility g ~choice:[| m |] ~player:0))

let equilibrium_choice rng spec =
  let us = utilities rng spec in
  let best = ref 0 and best_u = ref neg_infinity in
  List.iteri (fun i (_, u) -> if u > !best_u then begin best := i; best_u := u end) us;
  !best

let crossover_bits ?(lo = 6) ?(hi = 48) rng ~cost_per_op =
  let rec go bits =
    if bits > hi then None
    else begin
      let spec = default_spec ~bits ~cost_per_op in
      let us = utilities (Bn_util.Prng.split rng bits) spec in
      let u_solve = List.assoc "solve" us and u_safe = List.assoc "safe" us in
      if u_safe > u_solve then Some bits else go (bits + 1)
    end
  in
  go lo
