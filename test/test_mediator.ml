module B = Beyond_nash
module F = B.Feasibility
module M = B.Mediated
module CT = B.Cheap_talk

(* {1 Feasibility: the nine bullets} *)

let classify = F.classify

let test_bullet1 () =
  (* n > 3k+3t: implementable with no assumptions. *)
  match classify ~n:7 ~k:1 ~t:1 F.no_assumptions with
  | F.Implementable { exact = true; running_time = F.Bounded; bullet = 1; _ } -> ()
  | v -> Alcotest.failf "expected bullet 1, got %s" (F.describe v)

let test_bullet2 () =
  (* n <= 3k+3t without punishment/utilities: impossible. *)
  match classify ~n:6 ~k:1 ~t:1 F.no_assumptions with
  | F.Impossible { bullet = 2; _ } -> ()
  | v -> Alcotest.failf "expected bullet 2, got %s" (F.describe v)

let test_bullet3 () =
  (* 2k+3t < n <= 3k+3t with punishment + utilities: finite expected. *)
  let a = { F.no_assumptions with F.utilities_known = true; punishment = true } in
  match classify ~n:6 ~k:1 ~t:1 a with
  | F.Implementable { exact = true; running_time = F.Finite_expected; bullet = 3; _ } -> ()
  | v -> Alcotest.failf "expected bullet 3, got %s" (F.describe v)

let test_bullet4 () =
  (* n <= 2k+3t: impossible even with punishment and utilities. *)
  let a = { F.no_assumptions with F.utilities_known = true; punishment = true } in
  match classify ~n:5 ~k:1 ~t:1 a with
  | F.Impossible { bullet = 4; _ } -> ()
  | v -> Alcotest.failf "expected bullet 4, got %s" (F.describe v)

let test_bullet5 () =
  (* 2k+2t < n <= 2k+3t with broadcast: eps-implementable. *)
  let a = { F.no_assumptions with F.broadcast = true } in
  match classify ~n:5 ~k:1 ~t:1 a with
  | F.Implementable { exact = false; running_time = F.Bounded_expected; bullet = 5; _ } -> ()
  | v -> Alcotest.failf "expected bullet 5, got %s" (F.describe v)

let test_bullet6 () =
  (* n <= 2k+2t: impossible even with broadcast. *)
  let a = { F.no_assumptions with F.broadcast = true } in
  match classify ~n:4 ~k:1 ~t:1 a with
  | F.Impossible { bullet = 6; _ } -> ()
  | v -> Alcotest.failf "expected bullet 6, got %s" (F.describe v)

let test_bullet7 () =
  (* k+3t < n with crypto: eps-implementable; time utility-dependent when
     n <= 2k+2t. *)
  let a = { F.no_assumptions with F.crypto = true } in
  (match classify ~n:4 ~k:2 ~t:0 a with
  | F.Implementable { exact = false; bullet = 7; running_time = F.Utility_dependent; _ } -> ()
  | v -> Alcotest.failf "expected bullet 7 utility-dependent, got %s" (F.describe v));
  match classify ~n:5 ~k:1 ~t:1 a with
  | F.Implementable { exact = false; bullet = 7; running_time = F.Bounded_expected; _ } -> ()
  | v -> Alcotest.failf "expected bullet 7 (above 2k+2t), got %s" (F.describe v)

let test_bullet8 () =
  (* n <= k+3t, crypto but no PKI: impossible. *)
  let a = { F.no_assumptions with F.crypto = true; punishment = true } in
  match classify ~n:4 ~k:1 ~t:1 a with
  | F.Impossible { bullet = 8; _ } -> ()
  | v -> Alcotest.failf "expected bullet 8, got %s" (F.describe v)

let test_bullet9 () =
  (* n > k+t with PKI: eps-implementable. *)
  let a = { F.no_assumptions with F.pki = true } in
  match classify ~n:3 ~k:1 ~t:1 a with
  | F.Implementable { exact = false; bullet = 9; _ } -> ()
  | v -> Alcotest.failf "expected bullet 9, got %s" (F.describe v)

let test_below_kt_impossible () =
  let a = F.all_assumptions in
  match classify ~n:2 ~k:1 ~t:1 a with
  | F.Impossible { bullet = 8; _ } -> ()
  | v -> Alcotest.failf "expected impossible below k+t, got %s" (F.describe v)

let test_classify_invalid () =
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Feasibility.classify: need n >= 1, k >= 1, t >= 0") (fun () ->
      ignore (classify ~n:5 ~k:0 ~t:0 F.no_assumptions))

let feasibility_monotone_in_n =
  QCheck.Test.make ~count:100 ~name:"feasibility: larger n never flips implementable -> impossible"
    QCheck.(triple (int_range 2 12) (int_range 1 3) (int_range 0 3))
    (fun (n, k, t) ->
      let a = F.all_assumptions in
      let implementable n =
        match classify ~n ~k ~t a with F.Implementable _ -> true | F.Impossible _ -> false
      in
      (not (implementable n)) || implementable (n + 1))

(* {1 Exhaustiveness of the nine bullets (satellite: property test)} *)

let assumptions_gen =
  (* All 32 assumption combinations, uniformly. *)
  QCheck.Gen.map
    (fun bits ->
      {
        F.utilities_known = bits land 1 <> 0;
        punishment = bits land 2 <> 0;
        broadcast = bits land 4 <> 0;
        crypto = bits land 8 <> 0;
        pki = bits land 16 <> 0;
      })
    (QCheck.Gen.int_range 0 31)

let assumptions_arb =
  QCheck.make assumptions_gen
    ~print:(fun a ->
      Printf.sprintf "{utilities=%b; punishment=%b; broadcast=%b; crypto=%b; pki=%b}"
        a.F.utilities_known a.F.punishment a.F.broadcast a.F.crypto a.F.pki)

let bullet_of = function
  | F.Implementable { bullet; _ } | F.Impossible { bullet; _ } -> bullet

let classify_exhaustive =
  QCheck.Test.make ~count:500
    ~name:"feasibility: every (n,k,t,assumptions) maps to exactly one bullet, odd iff implementable"
    QCheck.(
      pair (triple (int_range 1 15) (int_range 1 3) (int_range 0 3)) assumptions_arb)
    (fun ((n, k, t), a) ->
      let v = classify ~n ~k ~t a in
      let v' = classify ~n ~k ~t a in
      let b = bullet_of v in
      (* total + deterministic, bullet in the paper's 1..9 range, and the
         paper's ordering: implementable bullets are the odd ones. *)
      v = v' && b >= 1 && b <= 9
      && (match v with F.Implementable _ -> b mod 2 = 1 | F.Impossible _ -> b mod 2 = 0))

let classify_monotone_in_assumptions =
  QCheck.Test.make ~count:300
    ~name:"feasibility: adding assumptions never flips implementable -> impossible"
    QCheck.(
      pair (triple (int_range 1 15) (int_range 1 3) (int_range 0 3))
        (pair assumptions_arb assumptions_arb))
    (fun ((n, k, t), (a, b)) ->
      let join =
        {
          F.utilities_known = a.F.utilities_known || b.F.utilities_known;
          punishment = a.F.punishment || b.F.punishment;
          broadcast = a.F.broadcast || b.F.broadcast;
          crypto = a.F.crypto || b.F.crypto;
          pki = a.F.pki || b.F.pki;
        }
      in
      let implementable a =
        match classify ~n ~k ~t a with F.Implementable _ -> true | F.Impossible _ -> false
      in
      (not (implementable a)) || implementable join)

let test_bullet_thresholds_tight () =
  (* Each regime boundary, off-by-one tight: one player above the
     threshold lands on the implementable bullet, the threshold itself on
     the matching impossibility bullet. *)
  let expect name a n k t want =
    let b = bullet_of (classify ~n ~k ~t a) in
    Alcotest.(check int) (Printf.sprintf "%s at n=%d k=%d t=%d" name n k t) want b
  in
  for k = 1 to 3 do
    for t = 0 to 3 do
      (* 3k+3t: bare model (bullets 1/2). *)
      expect "bullet 1" F.no_assumptions ((3 * k) + (3 * t) + 1) k t 1;
      expect "bullet 2" F.no_assumptions ((3 * k) + (3 * t)) k t 2;
      (* 2k+3t: punishment + known utilities (bullets 3/4). At t = 0 the
         threshold coincides with 2k+2t and the cascade reports the
         tighter bullet 6 instead. *)
      let pu = { F.no_assumptions with F.utilities_known = true; punishment = true } in
      expect "bullet 3" pu ((2 * k) + (3 * t) + 1) k t 3;
      expect "bullet 4/6" pu ((2 * k) + (3 * t)) k t (if t > 0 then 4 else 6);
      (* 2k+2t: broadcast (bullets 5/6). *)
      let bc = { F.no_assumptions with F.broadcast = true } in
      expect "bullet 5" bc ((2 * k) + (2 * t) + 1) k t 5;
      expect "bullet 6" bc ((2 * k) + (2 * t)) k t 6;
      (* k+3t: crypto (bullets 7/8). Bullet 8 is the blocker only while
         k+3t <= 2k+2t, i.e. t <= k; past that the cascade blames the
         tighter exact-impossibility bullet 4. *)
      let cr = { F.no_assumptions with F.crypto = true } in
      expect "bullet 7" cr (k + (3 * t) + 1) k t 7;
      if t > 0 then expect "bullet 8/4" cr (k + (3 * t)) k t (if t <= k then 8 else 4);
      (* k+t: pki reaches all the way down to n > k+t (bullet 9 — at t = 0
         that regime is inside bullet 7's n > k+3t); at the bound even
         every assumption together stays impossible. *)
      expect "bullet 9/7" { F.no_assumptions with F.pki = true } (k + t + 1) k t
        (if t > 0 then 9 else 7);
      expect "below k+t" F.all_assumptions (max 1 (k + t)) k t 8
    done
  done

(* {1 Async threshold (n > 4(k+t))} *)

let test_classify_async_boundaries () =
  let check n k t expected =
    Alcotest.(check bool)
      (Printf.sprintf "async verdict at n=%d k=%d t=%d" n k t)
      true
      (F.classify_async ~n ~k ~t = expected)
  in
  check 5 1 0 F.Async_implementable;
  check 4 1 0 F.Async_breaks_under_faults;
  check 3 1 0 F.Async_breaks_fault_free;
  check 9 1 1 F.Async_implementable;
  check 8 1 1 F.Async_breaks_under_faults;
  check 6 1 1 F.Async_breaks_fault_free;
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Feasibility.classify_async: need n >= 1, k >= 1, t >= 0") (fun () ->
      ignore (F.classify_async ~n:5 ~k:0 ~t:0))

let async_needs_more_players_than_sync =
  QCheck.Test.make ~count:200
    ~name:"feasibility: async-implementable implies every sync bullet implementable"
    QCheck.(triple (int_range 1 20) (int_range 1 3) (int_range 0 3))
    (fun (n, k, t) ->
      F.classify_async ~n ~k ~t <> F.Async_implementable
      ||
      match classify ~n ~k ~t F.no_assumptions with
      | F.Implementable { bullet = 1; _ } -> true
      | _ -> false)

(* {1 Mediated games} *)

let med4 = B.Ba_game.mediator ~n:4

let test_honest_utilities () =
  let u = M.honest_utilities med4 in
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "all get 2" 2.0 x) u

let test_truthful_equilibrium () =
  Alcotest.(check bool) "truthful is equilibrium" true (M.is_truthful_equilibrium med4)

let test_resilience_of_mediated () =
  (* No coalition of soldiers can gain: payoffs are already maximal. *)
  Alcotest.(check bool) "2-resilient" true (M.check_resilience med4 ~k:2 = None)

let test_immunity_general_is_pivotal () =
  (* A deviating general can hurt everyone (misreporting flips the
     recommendation); immunity fails through the general... *)
  match M.check_immunity med4 ~t_bound:1 with
  | Some (deviators, _victim, _) ->
    Alcotest.(check (list int)) "the general is the pivotal deviator" [ 0 ] deviators
  | None -> Alcotest.fail "the general's misreport should hurt soldiers"

let test_outcome_for_types () =
  let d = M.outcome_for_types med4 [| 1; 0; 0; 0 |] in
  Alcotest.(check int) "deterministic recommendation" 1 (List.length (B.Dist.support d));
  match B.Dist.support d with
  | [ acts ] -> Alcotest.(check (array int)) "all attack" [| 1; 1; 1; 1 |] acts
  | _ -> Alcotest.fail "point mass expected"

let test_all_deviations_count () =
  (* general: 2 types, 2 actions -> 4 report maps x 16 act maps. *)
  Alcotest.(check int) "general deviations" 64 (List.length (M.all_deviations med4 ~player:0));
  (* soldier: 1 type, 2 actions -> 1 x 4. *)
  Alcotest.(check int) "soldier deviations" 4 (List.length (M.all_deviations med4 ~player:1))

(* {1 Cheap talk} *)

let test_generals_eig_implements_mediator () =
  List.iter
    (fun gt ->
      let o = CT.generals_eig ~n:4 ~t:1 ~general_type:gt () in
      Alcotest.(check (float 1e-9)) "TV distance 0" 0.0 (CT.tv_to_mediator ~n:4 ~general_type:gt o))
    [ 0; 1 ]

let test_generals_eig_bounded_rounds () =
  let o = CT.generals_eig ~n:4 ~t:1 ~general_type:1 () in
  Alcotest.(check int) "t+2 rounds" 3 o.CT.rounds

let test_generals_eig_with_corrupt_soldier () =
  let o = CT.generals_eig ~corrupted:[ 3 ] ~n:4 ~t:1 ~general_type:1 () in
  (* Honest players still match the mediator's distribution. *)
  Alcotest.(check (float 1e-9)) "TV 0 with corruption" 0.0
    (CT.tv_to_mediator ~n:4 ~general_type:1 o)

let test_naive_echo_fails () =
  let o = CT.generals_naive ~delivered:[| 0; 0; 1; 1 |] ~n:4 ~general_type:1 () in
  Alcotest.(check bool) "naive echo diverges from mediator" true
    (CT.tv_to_mediator ~n:4 ~general_type:1 o > 0.5)

let test_share_exchange_threshold () =
  let rng = B.Prng.create 31 in
  List.iter
    (fun (n, k, t) ->
      let corrupted = List.init t (fun i -> n - 1 - i) in
      let r = CT.share_exchange rng ~n ~k ~t ~secret:12345 ~corrupted in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d k=%d t=%d matches theory" n k t)
        (CT.share_exchange_succeeds_theoretically ~n ~k ~t)
        r.CT.succeeded)
    [ (8, 1, 2); (7, 1, 2); (6, 2, 1); (5, 2, 1); (5, 1, 1); (4, 1, 1); (4, 3, 0); (3, 2, 0) ]

let test_share_exchange_no_corruption () =
  let rng = B.Prng.create 32 in
  let r = CT.share_exchange rng ~n:4 ~k:1 ~t:0 ~secret:7 ~corrupted:[] in
  Alcotest.(check bool) "t=0 works with n > k" true r.CT.succeeded

(* Satellite: the exact decoding threshold n = k+3t+1, from both sides —
   at the bound every honest player reconstructs the secret even with t
   actively corrupted shares; one player short, the exchange rejects
   cleanly (reported failure, no bogus reconstruction) rather than
   decoding garbage. *)
let test_share_exchange_exact_boundary () =
  for k = 1 to 3 do
    for t = 0 to 3 do
      let at = k + (3 * t) + 1 in
      let corrupted = List.init t (fun i -> at - 1 - i) in
      let r = CT.share_exchange (B.Prng.create ((k * 17) + t)) ~n:at ~k ~t ~secret:4242 ~corrupted in
      Alcotest.(check int) "threshold reported" at r.CT.threshold_needed;
      Alcotest.(check bool)
        (Printf.sprintf "n=k+3t+1=%d succeeds (k=%d t=%d)" at k t)
        true r.CT.succeeded;
      Array.iteri
        (fun i v ->
          if not (List.mem i corrupted) then
            Alcotest.(check (option int))
              (Printf.sprintf "player %d reconstructs at the bound" i)
              (Some 4242) v)
        r.CT.reconstructions
    done
  done

let test_share_exchange_one_below_rejects_cleanly () =
  for k = 1 to 3 do
    for t = 0 to 3 do
      let below = k + (3 * t) in
      if below >= 2 then begin
        let corrupted = List.init (min t (below - 1)) (fun i -> below - 1 - i) in
        let r =
          CT.share_exchange (B.Prng.create ((k * 19) + t)) ~n:below ~k ~t ~secret:4242 ~corrupted
        in
        Alcotest.(check bool)
          (Printf.sprintf "n=k+3t=%d fails (k=%d t=%d)" below k t)
          false r.CT.succeeded;
        Array.iteri
          (fun i v ->
            if not (List.mem i corrupted) then
              Alcotest.(check (option int))
                (Printf.sprintf "player %d reports failure, not garbage" i)
                None v)
          r.CT.reconstructions
      end
    done
  done

let share_exchange_property =
  QCheck.Test.make ~count:40 ~name:"cheap talk: share exchange succeeds iff n > k+3t"
    QCheck.(triple (int_range 3 9) (int_range 1 2) (int_range 0 2))
    (fun (n, k, t) ->
      let rng = B.Prng.create ((n * 100) + (k * 10) + t) in
      let corrupted = List.init (min t (n - 1)) (fun i -> n - 1 - i) in
      let r = CT.share_exchange rng ~n ~k ~t ~secret:999 ~corrupted in
      r.CT.succeeded = CT.share_exchange_succeeds_theoretically ~n ~k ~t)

let suite =
  [
    Alcotest.test_case "bullet 1" `Quick test_bullet1;
    Alcotest.test_case "bullet 2" `Quick test_bullet2;
    Alcotest.test_case "bullet 3" `Quick test_bullet3;
    Alcotest.test_case "bullet 4" `Quick test_bullet4;
    Alcotest.test_case "bullet 5" `Quick test_bullet5;
    Alcotest.test_case "bullet 6" `Quick test_bullet6;
    Alcotest.test_case "bullet 7" `Quick test_bullet7;
    Alcotest.test_case "bullet 8" `Quick test_bullet8;
    Alcotest.test_case "bullet 9" `Quick test_bullet9;
    Alcotest.test_case "below k+t" `Quick test_below_kt_impossible;
    Alcotest.test_case "classify validation" `Quick test_classify_invalid;
    QCheck_alcotest.to_alcotest feasibility_monotone_in_n;
    QCheck_alcotest.to_alcotest classify_exhaustive;
    QCheck_alcotest.to_alcotest classify_monotone_in_assumptions;
    Alcotest.test_case "bullet thresholds off-by-one tight" `Quick test_bullet_thresholds_tight;
    Alcotest.test_case "classify_async boundaries" `Quick test_classify_async_boundaries;
    QCheck_alcotest.to_alcotest async_needs_more_players_than_sync;
    Alcotest.test_case "mediated: honest utilities" `Quick test_honest_utilities;
    Alcotest.test_case "mediated: truthful equilibrium" `Quick test_truthful_equilibrium;
    Alcotest.test_case "mediated: resilience" `Slow test_resilience_of_mediated;
    Alcotest.test_case "mediated: general pivotal" `Quick test_immunity_general_is_pivotal;
    Alcotest.test_case "mediated: outcome for types" `Quick test_outcome_for_types;
    Alcotest.test_case "mediated: deviation counts" `Quick test_all_deviations_count;
    Alcotest.test_case "cheap talk: EIG implements mediator" `Quick
      test_generals_eig_implements_mediator;
    Alcotest.test_case "cheap talk: bounded rounds" `Quick test_generals_eig_bounded_rounds;
    Alcotest.test_case "cheap talk: corrupt soldier" `Quick test_generals_eig_with_corrupt_soldier;
    Alcotest.test_case "cheap talk: naive echo fails" `Quick test_naive_echo_fails;
    Alcotest.test_case "cheap talk: share exchange thresholds" `Quick
      test_share_exchange_threshold;
    Alcotest.test_case "cheap talk: share exchange t=0" `Quick test_share_exchange_no_corruption;
    Alcotest.test_case "cheap talk: exact threshold n=k+3t+1" `Quick
      test_share_exchange_exact_boundary;
    Alcotest.test_case "cheap talk: one below threshold rejects cleanly" `Quick
      test_share_exchange_one_below_rejects_cleanly;
    QCheck_alcotest.to_alcotest share_exchange_property;
  ]
