(* Obs.Json: the in-tree RFC 8259 validator/parser every exporter is
   checked against. A QCheck print/parse round-trip over generated JSON
   values (so escaping and number formatting are exercised from both
   sides), agreement between [validate] and [parse], and explicit
   rejection of the classic malformed shapes — truncated objects, bad
   escapes, trailing garbage. *)

module J = Bn_obs.Obs.Json

(* {1 Rendering}

   A serializer for parsed values, built on the exporter's own
   [json_escape]. [%.17g] is lossless for finite doubles, so a rendered
   [Num] must parse back to the identical float. *)

let rec render = function
  | J.Null -> "null"
  | J.Bool b -> if b then "true" else "false"
  | J.Num f -> Printf.sprintf "%.17g" f
  | J.Str s -> "\"" ^ Bn_obs.Obs.json_escape s ^ "\""
  | J.Arr l -> "[" ^ String.concat "," (List.map render l) ^ "]"
  | J.Obj l ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ Bn_obs.Obs.json_escape k ^ "\":" ^ render v) l)
    ^ "}"

(* {1 Generator} *)

let gen_string =
  QCheck.Gen.(
    let c =
      frequency
        [
          (20, char_range 'a' 'z');
          (5, char_range 'A' 'Z');
          (5, char_range '0' '9');
          (1, return '"');
          (1, return '\\');
          (1, return '\n');
          (1, return '\t');
          (1, return '\x01');
          (1, return ' ');
        ]
    in
    string_size ~gen:c (0 -- 8))

let gen_num =
  QCheck.Gen.(
    frequency
      [
        (3, map float_of_int (-1000 -- 1000));
        (2, map (fun (a, b) -> float_of_int a /. float_of_int (1 + abs b)) (pair int int));
        (1, map (fun a -> float_of_int a *. 1e15) (-1000 -- 1000));
      ])

let gen_value =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           let leaf =
             frequency
               [
                 (1, return J.Null);
                 (2, map (fun b -> J.Bool b) bool);
                 (3, map (fun f -> J.Num f) gen_num);
                 (3, map (fun s -> J.Str s) gen_string);
               ]
           in
           if n <= 0 then leaf
           else
             frequency
               [
                 (3, leaf);
                 (2, map (fun l -> J.Arr l) (list_size (0 -- 4) (self (n / 2))));
                 ( 2,
                   map
                     (fun l -> J.Obj l)
                     (list_size (0 -- 4) (pair gen_string (self (n / 2)))) );
               ]))

let arb_value =
  (* The printer shows the rendered text: that is the artifact under
     test, and it is what a failing seed needs reproduced. *)
  QCheck.make ~print:render gen_value

(* {1 Properties} *)

let roundtrip =
  QCheck.Test.make ~count:500 ~name:"Json: render |> parse is the identity" arb_value
    (fun v ->
      match J.parse (render v) with
      | Some v' -> v' = v
      | None -> false)

let validate_agrees =
  QCheck.Test.make ~count:500 ~name:"Json: validate accepts exactly what parse does" arb_value
    (fun v ->
      let s = render v in
      J.validate s && J.parse s <> None)

(* {1 Malformed inputs} *)

let malformed =
  [
    ("truncated object", {|{"a": 1|});
    ("truncated array", {|[1, 2|});
    ("truncated string", {|"ab|});
    ("bad escape", {|"\x"|});
    ("truncated unicode escape", {|"\u00g1"|});
    ("trailing garbage", {|{"a": 1} x|});
    ("two values", {|1 2|});
    ("bare key", {|{a: 1}|});
    ("missing colon", {|{"a" 1}|});
    ("trailing comma", {|[1,]|});
    ("leading zero", {|01|});
    ("lone minus", {|-|});
    ("empty input", "");
  ]

let test_malformed_rejected () =
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ ": validate rejects") false (J.validate s);
      Alcotest.(check bool) (name ^ ": parse rejects") true (J.parse s = None))
    malformed

let test_member () =
  let src = {|{"a": 1, "b": [true, null], "a": 2}|} in
  match J.parse src with
  | None -> Alcotest.fail "fixture should parse"
  | Some v ->
    (match J.member "b" v with
    | Some (J.Arr [ J.Bool true; J.Null ]) -> ()
    | _ -> Alcotest.fail "member b wrong");
    (match J.member "a" v with
    | Some (J.Num n) -> Alcotest.(check (float 0.0)) "first duplicate wins" 1.0 n
    | _ -> Alcotest.fail "member a wrong");
    Alcotest.(check bool) "absent member" true (J.member "z" v = None)

let suite =
  [
    QCheck_alcotest.to_alcotest roundtrip;
    QCheck_alcotest.to_alcotest validate_agrees;
    Alcotest.test_case "malformed inputs rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "member lookup" `Quick test_member;
  ]
