module B = Beyond_nash
module S = B.Scrip
module G = B.Gnutella

(* {1 Scrip} *)

let params n = S.default_params ~n

let all_standard n k = Array.make n (S.Standard k)

let test_money_conserved () =
  (* Without altruists, scrip only changes hands. *)
  let rng = B.Prng.create 1 in
  let n = 20 in
  let st = S.simulate rng (params n) ~kinds:(all_standard n 5) ~money_per_agent:2.0 in
  Alcotest.(check int) "total scrip conserved" 40 (Array.fold_left ( + ) 0 st.S.final_scrip)

let test_efficiency_inverted_u () =
  (* Efficiency rises with money, then crashes when everyone is above
     threshold and nobody volunteers (the KFH monetary crash). *)
  let run m =
    let rng = B.Prng.create 2 in
    S.efficiency (params 30) (S.simulate rng (params 30) ~kinds:(all_standard 30 5) ~money_per_agent:m)
  in
  let low = run 0.5 and mid = run 3.0 and crash = run 6.0 in
  Alcotest.(check bool) "more money helps" true (mid > low);
  Alcotest.(check bool) "too much money crashes" true (crash < 0.2)

let test_crash_mechanism () =
  (* At money >= threshold for everyone, no volunteers ever. *)
  let rng = B.Prng.create 3 in
  let st = S.simulate rng (params 10) ~kinds:(all_standard 10 3) ~money_per_agent:3.0 in
  Alcotest.(check int) "nothing served" 0 st.S.satisfied;
  Alcotest.(check bool) "all demand unserved" true (st.S.unserved > 0)

let test_altruists_raise_welfare () =
  let n = 20 in
  let run kinds =
    let rng = B.Prng.create 4 in
    let st = S.simulate rng (params n) ~kinds ~money_per_agent:1.0 in
    S.avg_utility st ~who:(fun i -> match kinds.(i) with S.Standard _ -> true | _ -> false)
  in
  let base = run (all_standard n 5) in
  let with_altruists =
    run (Array.init n (fun i -> if i < 3 then S.Altruist else S.Standard 5))
  in
  Alcotest.(check bool) "altruists help the rest" true (with_altruists > base)

let test_hoarders_drain_money () =
  (* Hoarders accumulate scrip and never spend: the money available to
     standard agents shrinks. *)
  let n = 20 in
  let rng = B.Prng.create 5 in
  let kinds = Array.init n (fun i -> if i < 4 then S.Hoarder else S.Standard 5) in
  let st = S.simulate rng (params n) ~kinds ~money_per_agent:2.0 in
  let hoarder_scrip = Array.fold_left ( + ) 0 (Array.sub st.S.final_scrip 0 4) in
  Alcotest.(check bool) "hoarders hold above initial share" true (hoarder_scrip > 8);
  Alcotest.(check bool) "standard agents starve more" true (st.S.starved > 0)

let test_stats_accounting () =
  let rng = B.Prng.create 6 in
  let st = S.simulate rng (params 10) ~kinds:(all_standard 10 5) ~money_per_agent:2.0 in
  Alcotest.(check int) "requests = satisfied + starved + unserved" st.S.requests
    (st.S.satisfied + st.S.starved + st.S.unserved)

let test_best_threshold_moderate () =
  (* The empirical best response is an interior threshold: not 1, since
     being broke starves you; and bounded. *)
  let rng = B.Prng.create 7 in
  let k, _ = S.best_threshold rng (params 30) ~others:5 ~money_per_agent:2.0
      ~candidates:[ 1; 2; 3; 5; 8; 12; 20 ]
  in
  Alcotest.(check bool) "interior threshold" true (k > 1 && k <= 20)

let scrip_utility_sign_property =
  QCheck.Test.make ~count:20 ~name:"scrip: benefit > cost makes utilities net positive overall"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let n = 10 in
      let rng = B.Prng.create seed in
      let st = S.simulate rng (params n) ~kinds:(all_standard n 4) ~money_per_agent:2.0 in
      (* Every served request adds benefit - cost = 0.8 > 0 to the total. *)
      let total = Array.fold_left ( +. ) 0.0 st.S.utilities in
      total >= 0.0)

(* {1 Scrip: SoA engine vs oracles} *)

let arb_kinds =
  (* Mixed populations over all three kinds, with varied thresholds. *)
  QCheck.(
    list_of_size
      Gen.(int_range 4 40)
      (oneof
         [
           map (fun k -> S.Standard k) (int_range 1 8);
           always S.Hoarder;
           always S.Altruist;
         ]))

let scrip_fast_vs_naive_property =
  QCheck.Test.make ~count:40 ~name:"scrip: Fenwick simulate bitwise-equal to naive oracle"
    QCheck.(pair (int_range 1 1000) arb_kinds)
    (fun (seed, kinds_l) ->
      let kinds = Array.of_list kinds_l in
      let n = Array.length kinds in
      let run sim = sim (B.Prng.create seed) (params n) ~kinds ~money_per_agent:1.5 in
      run S.simulate = run S.simulate_naive)

let soa_conservation_property =
  QCheck.Test.make ~count:15 ~name:"scrip soa: accounting and conservation invariants"
    QCheck.(triple (int_range 1 500) (int_range 20 200) (int_range 1 8))
    (fun (seed, n, shards) ->
      let p = { (params n) with S.rounds = 0 } in
      let st =
        B.Scrip_soa.run ~jobs:2 ~shards ~seed ~steps:20 ~params:p
          ~kind_of:(fun i -> if i mod 7 = 0 then S.Hoarder else S.Standard 5)
          ~money_per_agent:2.0 ()
      in
      let open B.Scrip_soa in
      st.requests = st.satisfied + st.starved + st.unserved
      && st.total_scrip = int_of_float (2.0 *. float_of_int n)
      && Array.fold_left ( + ) 0 st.dist = n
      && st.flushes = 20
      && st.cross_shard <= st.requests)

let soa_jobs_invariant_property =
  QCheck.Test.make ~count:10 ~name:"scrip soa: jobs=1 and jobs=4 give identical stats"
    QCheck.(pair (int_range 1 500) (int_range 50 300))
    (fun (seed, n) ->
      let p = { (params n) with S.rounds = 0 } in
      let run jobs =
        B.Scrip_soa.run ~jobs ~shards:8 ~seed ~steps:25 ~params:p
          ~kind_of:(fun i -> if i mod 11 = 0 then S.Altruist else S.Standard 4)
          ~money_per_agent:1.5 ()
      in
      run 1 = run 4)

let test_soa_altruists_inject_scrip () =
  (* Altruists serve without taking payment, so total scrip is conserved
     while service keeps flowing even when standard agents are broke. *)
  let n = 100 in
  let p = { (params n) with S.rounds = 0 } in
  let st =
    B.Scrip_soa.run ~shards:8 ~seed:5 ~steps:50 ~params:p
      ~kind_of:(fun i -> if i mod 2 = 0 then S.Altruist else S.Standard 5)
      ~money_per_agent:1.0 ()
  in
  Alcotest.(check int) "scrip conserved" 100 st.B.Scrip_soa.total_scrip;
  Alcotest.(check bool) "altruists served" true (st.B.Scrip_soa.satisfied > 0)

(* {1 Gnutella} *)

let test_free_riding_shape () =
  let rng = B.Prng.create 8 in
  let s = G.simulate rng (G.default_params ~users:2000) in
  Alcotest.(check bool) "~70% free riders" true
    (s.G.free_rider_fraction > 0.55 && s.G.free_rider_fraction < 0.85);
  Alcotest.(check bool) "top 1% serves ~half" true
    (s.G.top1_response_share > 0.3 && s.G.top1_response_share < 0.8);
  Alcotest.(check bool) "load is concentrated" true (s.G.gini_load > 0.8)

let test_cost_increases_free_riding () =
  let run cost =
    let rng = B.Prng.create 9 in
    let p = { (G.default_params ~users:2000) with G.cost } in
    (G.simulate rng p).G.free_rider_fraction
  in
  Alcotest.(check bool) "higher cost, more free riding" true (run 2.0 > run 0.5)

let test_sharing_game_dominance () =
  Alcotest.(check bool) "free riding dominant for standard users" true
    (G.free_riding_equilibrium ~n:4 ~cost:1.0 ~download_value:5.0)

let test_sharing_game_with_kicks () =
  (* A user whose kick exceeds the cost shares in equilibrium. *)
  let kicks = [| 2.0; 0.0; 0.0 |] in
  let g = G.sharing_game ~n:3 ~cost:1.0 ~kicks ~download_value:5.0 in
  match B.Dominance.solves_by_dominance g with
  | Some profile ->
    Alcotest.(check int) "kicked user shares" 1 profile.(0);
    Alcotest.(check int) "standard user free rides" 0 profile.(1)
  | None -> Alcotest.fail "dominance-solvable with strict kicks"

let test_sharing_game_is_nash () =
  let kicks = [| 2.0; 0.0; 0.0 |] in
  let g = G.sharing_game ~n:3 ~cost:1.0 ~kicks ~download_value:5.0 in
  Alcotest.(check bool) "share/freeride/freeride is Nash" true
    (B.Nash.is_pure_nash g [| 1; 0; 0 |])

let gnutella_fraction_bounds_property =
  QCheck.Test.make ~count:10 ~name:"gnutella: fractions are probabilities"
    QCheck.(int_range 1 100)
    (fun seed ->
      let rng = B.Prng.create seed in
      let s = G.simulate rng (G.default_params ~users:500) in
      s.G.free_rider_fraction >= 0.0 && s.G.free_rider_fraction <= 1.0
      && s.G.top1_response_share >= 0.0
      && s.G.top1_response_share <= 1.0
      && s.G.top10_response_share >= s.G.top1_response_share -. 1e-9)

(* {1 Gnutella: SoA engine} *)

let gnutella_soa_bitwise_property =
  (* At shards = 1 the SoA engine replays the legacy draw sequence
     exactly: same stats record for every seed and size. *)
  QCheck.Test.make ~count:30 ~name:"gnutella soa: shards=1 bitwise-equal to legacy simulate"
    QCheck.(pair (int_range 1 1000) (int_range 10 800))
    (fun (seed, users) ->
      let p = G.default_params ~users in
      G.simulate (B.Prng.create seed) p
      = B.Gnutella_soa.simulate ~shards:1 (B.Prng.create seed) p)

let gnutella_soa_jobs_invariant_property =
  QCheck.Test.make ~count:10 ~name:"gnutella soa: sharded run identical at jobs=1 and jobs=4"
    QCheck.(pair (int_range 1 500) (int_range 100 2000))
    (fun (seed, users) ->
      let p = G.default_params ~users in
      let run jobs = B.Gnutella_soa.simulate ~jobs ~shards:16 (B.Prng.create seed) p in
      run 1 = run 4)

let test_gnutella_soa_sharded_shape () =
  (* The sharded (split-stream) run samples the same population model:
     the free-riding shape survives resharding. *)
  let p = G.default_params ~users:2000 in
  let s = B.Gnutella_soa.simulate ~jobs:2 ~shards:16 (B.Prng.create 8) p in
  Alcotest.(check bool) "~70% free riders" true
    (s.G.free_rider_fraction > 0.55 && s.G.free_rider_fraction < 0.85);
  Alcotest.(check bool) "load is concentrated" true (s.G.gini_load > 0.8)

let suite =
  [
    Alcotest.test_case "scrip: money conserved" `Quick test_money_conserved;
    Alcotest.test_case "scrip: inverted U" `Slow test_efficiency_inverted_u;
    Alcotest.test_case "scrip: crash mechanism" `Quick test_crash_mechanism;
    Alcotest.test_case "scrip: altruists" `Slow test_altruists_raise_welfare;
    Alcotest.test_case "scrip: hoarders" `Quick test_hoarders_drain_money;
    Alcotest.test_case "scrip: accounting" `Quick test_stats_accounting;
    Alcotest.test_case "scrip: best threshold" `Slow test_best_threshold_moderate;
    QCheck_alcotest.to_alcotest scrip_utility_sign_property;
    QCheck_alcotest.to_alcotest scrip_fast_vs_naive_property;
    QCheck_alcotest.to_alcotest soa_conservation_property;
    QCheck_alcotest.to_alcotest soa_jobs_invariant_property;
    Alcotest.test_case "scrip soa: altruists" `Quick test_soa_altruists_inject_scrip;
    Alcotest.test_case "gnutella: free-riding shape" `Quick test_free_riding_shape;
    Alcotest.test_case "gnutella: cost effect" `Quick test_cost_increases_free_riding;
    Alcotest.test_case "gnutella: dominance" `Quick test_sharing_game_dominance;
    Alcotest.test_case "gnutella: kicks" `Quick test_sharing_game_with_kicks;
    Alcotest.test_case "gnutella: Nash" `Quick test_sharing_game_is_nash;
    QCheck_alcotest.to_alcotest gnutella_fraction_bounds_property;
    QCheck_alcotest.to_alcotest gnutella_soa_bitwise_property;
    QCheck_alcotest.to_alcotest gnutella_soa_jobs_invariant_property;
    Alcotest.test_case "gnutella soa: sharded shape" `Slow test_gnutella_soa_sharded_shape;
  ]
