module S = Beyond_nash.Simplex

let check_float = Alcotest.(check (float 1e-6))

let solve_or_fail problem =
  match S.solve problem with
  | S.Optimal { solution; value } -> (solution, value)
  | S.Infeasible -> Alcotest.fail "unexpected infeasible"
  | S.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_basic_le () =
  (* max 3x + 2y st x + y <= 4, x <= 2 -> x=2, y=2, value 10 *)
  let x, v = solve_or_fail { S.objective = [| 3.0; 2.0 |]; constraints = [ S.le [| 1.0; 1.0 |] 4.0; S.le [| 1.0; 0.0 |] 2.0 ] } in
  check_float "value" 10.0 v;
  check_float "x" 2.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_with_ge () =
  (* max x st x <= 5, x >= 2 *)
  let _, v = solve_or_fail { S.objective = [| 1.0 |]; constraints = [ S.le [| 1.0 |] 5.0; S.ge [| 1.0 |] 2.0 ] } in
  check_float "value" 5.0 v

let test_minimize_via_negation () =
  (* min x st x >= 3  ==  max -x *)
  let x, v = solve_or_fail { S.objective = [| -1.0 |]; constraints = [ S.ge [| 1.0 |] 3.0 ] } in
  check_float "value" (-3.0) v;
  check_float "x" 3.0 x.(0)

let test_equality () =
  (* max x + y st x + y = 3, x <= 1 -> value 3 with x <= 1 *)
  let x, v = solve_or_fail { S.objective = [| 1.0; 1.0 |]; constraints = [ S.eq [| 1.0; 1.0 |] 3.0; S.le [| 1.0; 0.0 |] 1.0 ] } in
  check_float "value" 3.0 v;
  Alcotest.(check bool) "x within bound" true (x.(0) <= 1.0 +. 1e-9)

let test_infeasible () =
  match S.solve { S.objective = [| 1.0 |]; constraints = [ S.le [| 1.0 |] 1.0; S.ge [| 1.0 |] 2.0 ] } with
  | S.Infeasible -> ()
  | S.Optimal _ | S.Unbounded -> Alcotest.fail "should be infeasible"

let test_unbounded () =
  match S.solve { S.objective = [| 1.0 |]; constraints = [ S.ge [| 1.0 |] 0.0 ] } with
  | S.Unbounded -> ()
  | S.Optimal _ | S.Infeasible -> Alcotest.fail "should be unbounded"

let test_negative_rhs_normalization () =
  (* x >= -1 written as -x <= 1; max -x st -x <= 1 -> 1 at x... careful:
     variables are nonneg, so max -x is 0 at x = 0. *)
  let _, v = solve_or_fail { S.objective = [| -1.0 |]; constraints = [ S.le [| -1.0 |] 1.0 ] } in
  check_float "value" 0.0 v

let test_degenerate_no_cycle () =
  (* Classic degenerate LP; Bland's rule must terminate. *)
  let problem =
    {
      S.objective = [| 10.0; -57.0; -9.0; -24.0 |];
      constraints =
        [
          S.le [| 0.5; -5.5; -2.5; 9.0 |] 0.0;
          S.le [| 0.5; -1.5; -0.5; 1.0 |] 0.0;
          S.le [| 1.0; 0.0; 0.0; 0.0 |] 1.0;
        ];
    }
  in
  let _, v = solve_or_fail problem in
  check_float "beale value" 1.0 v

let test_zero_objective () =
  let _, v = solve_or_fail { S.objective = [| 0.0; 0.0 |]; constraints = [ S.le [| 1.0; 1.0 |] 1.0 ] } in
  check_float "value" 0.0 v

let feasibility_property =
  QCheck.Test.make ~count:200 ~name:"simplex: optimal solutions are feasible"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 4)
           (pair (array_of_size (Gen.return 2) (float_range (-5.0) 5.0)) (float_range 0.0 10.0)))
        (array_of_size (Gen.return 2) (float_range (-3.0) 3.0)))
    (fun (rows, objective) ->
      let constraints = List.map (fun (c, b) -> S.le c b) rows in
      match S.solve { S.objective; constraints } with
      | S.Infeasible -> false (* all-le with b >= 0 is feasible at 0 *)
      | S.Unbounded -> true
      | S.Optimal { solution; _ } ->
        Array.for_all (fun x -> x >= -1e-7) solution
        && List.for_all
             (fun (c, b) ->
               let lhs = ref 0.0 in
               Array.iteri (fun i ci -> lhs := !lhs +. (ci *. solution.(i))) c;
               !lhs <= b +. 1e-6)
             rows)

let optimality_property =
  QCheck.Test.make ~count:200 ~name:"simplex: value >= any sampled feasible point"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 3)
           (pair (array_of_size (Gen.return 2) (float_range 0.1 5.0)) (float_range 1.0 10.0)))
        (array_of_size (Gen.return 2) (float_range 0.0 3.0)))
    (fun (rows, objective) ->
      let constraints = List.map (fun (c, b) -> S.le c b) rows in
      match S.solve { S.objective; constraints } with
      | S.Infeasible | S.Unbounded -> false (* positive coeffs: bounded, feasible *)
      | S.Optimal { value; _ } ->
        (* Candidate feasible points on a grid must not beat the optimum. *)
        let ok = ref true in
        for i = 0 to 10 do
          for j = 0 to 10 do
            let x = float_of_int i /. 2.0 and y = float_of_int j /. 2.0 in
            let feasible =
              List.for_all (fun (c, b) -> (c.(0) *. x) +. (c.(1) *. y) <= b) rows
            in
            if feasible && (objective.(0) *. x) +. (objective.(1) *. y) > value +. 1e-6 then
              ok := false
          done
        done;
        !ok)

(* {1 Revised vs dense agreement}

   [solve] is the revised (sparse-column, basis-inverse) method and
   [solve_dense] the original tableau; they follow the same pivoting rules,
   so outcomes must match and optimal values agree to 1e-6. *)

let agreeing problem =
  match (S.solve problem, S.solve_dense problem) with
  | S.Optimal { value = va; _ }, S.Optimal { value = vb; _ } -> Float.abs (va -. vb) <= 1e-6
  | S.Infeasible, S.Infeasible | S.Unbounded, S.Unbounded -> true
  | _ -> false

let revised_dense_agreement_random_lps =
  QCheck.Test.make ~count:200 ~name:"simplex: revised = dense on random mixed-relation LPs"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5)
           (triple
              (array_of_size (Gen.return 3) (float_range (-5.0) 5.0))
              (int_range 0 2) (float_range (-6.0) 6.0)))
        (array_of_size (Gen.return 3) (float_range (-3.0) 3.0)))
    (fun (rows, objective) ->
      let constraints =
        List.map
          (fun (c, rel, b) -> match rel with 0 -> S.le c b | 1 -> S.ge c b | _ -> S.eq c b)
          rows
      in
      agreeing { S.objective; constraints })

let revised_dense_agreement_zero_sum =
  (* The value LP of a random 3×3 zero-sum game (v free as v⁺ − v⁻):
     always feasible and bounded, and heavy on Ge/Eq rows, so both phases
     get exercised on every draw. *)
  QCheck.Test.make ~count:100 ~name:"simplex: revised = dense on random zero-sum value LPs"
    QCheck.(array_of_size (Gen.return 9) (float_range (-5.0) 5.0))
    (fun a ->
      let entry k j = a.((3 * k) + j) in
      let constraints =
        List.init 3 (fun j -> S.ge [| entry 0 j; entry 1 j; entry 2 j; -1.0; 1.0 |] 0.0)
        @ [ S.eq [| 1.0; 1.0; 1.0; 0.0; 0.0 |] 1.0 ]
      in
      let problem = { S.objective = [| 0.0; 0.0; 0.0; 1.0; -1.0 |]; constraints } in
      (match S.solve problem with S.Optimal _ -> true | _ -> false)
      && agreeing problem)

let test_dense_oracle_still_solves () =
  match S.solve_dense { S.objective = [| 3.0; 2.0 |]; constraints = [ S.le [| 1.0; 1.0 |] 4.0; S.le [| 1.0; 0.0 |] 2.0 ] } with
  | S.Optimal { value; _ } -> check_float "dense value" 10.0 value
  | S.Infeasible | S.Unbounded -> Alcotest.fail "dense oracle failed"

let suite =
  [
    Alcotest.test_case "basic <=" `Quick test_basic_le;
    Alcotest.test_case "with >=" `Quick test_with_ge;
    Alcotest.test_case "minimize" `Quick test_minimize_via_negation;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
    Alcotest.test_case "degenerate (Beale)" `Quick test_degenerate_no_cycle;
    Alcotest.test_case "zero objective" `Quick test_zero_objective;
    Alcotest.test_case "dense oracle" `Quick test_dense_oracle_still_solves;
    QCheck_alcotest.to_alcotest feasibility_property;
    QCheck_alcotest.to_alcotest optimality_property;
    QCheck_alcotest.to_alcotest revised_dense_agreement_random_lps;
    QCheck_alcotest.to_alcotest revised_dense_agreement_zero_sum;
  ]
