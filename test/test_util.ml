module B = Beyond_nash

let check_float = Alcotest.(check (float 1e-9))

(* {1 Prng} *)

let test_prng_determinism () =
  let a = B.Prng.create 42 and b = B.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (B.Prng.bits64 a) (B.Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = B.Prng.create 1 and b = B.Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (B.Prng.bits64 a = B.Prng.bits64 b)

let test_prng_split_independent () =
  let a = B.Prng.create 7 in
  let c = B.Prng.split a 0 in
  let d = B.Prng.split a 1 in
  let c0 = B.Prng.bits64 c in
  Alcotest.(check bool) "split differs from parent" false (c0 = B.Prng.bits64 a);
  Alcotest.(check bool) "sibling splits differ" false (c0 = B.Prng.bits64 d);
  (* Pure in (state, index): re-deriving the same child from the same
     parent state gives the same stream. *)
  let c' = B.Prng.split (B.Prng.create 7) 0 in
  Alcotest.(check int64) "split is pure" c0 (B.Prng.bits64 c')

let test_prng_copy () =
  let a = B.Prng.create 3 in
  let _ = B.Prng.bits64 a in
  let b = B.Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (B.Prng.bits64 a) (B.Prng.bits64 b)

let test_prng_float_range () =
  let rng = B.Prng.create 9 in
  for _ = 1 to 1000 do
    let x = B.Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_int_range () =
  let rng = B.Prng.create 10 in
  for _ = 1 to 1000 do
    let x = B.Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_invalid () =
  let rng = B.Prng.create 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (B.Prng.int rng 0))

let test_prng_shuffle_permutation () =
  let rng = B.Prng.create 4 in
  let arr = Array.init 20 Fun.id in
  B.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_prng_uniformity () =
  (* Chi-square-ish sanity: each bucket within 20% of expectation. *)
  let rng = B.Prng.create 123 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let i = B.Prng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true
        (abs (c - (samples / 10)) < samples / 50))
    buckets

(* {1 Dist} *)

let test_dist_normalizes () =
  let d = B.Dist.of_list [ ("a", 2.0); ("b", 6.0) ] in
  check_float "mass a" 0.25 (B.Dist.mass d "a");
  check_float "mass b" 0.75 (B.Dist.mass d "b")

let test_dist_merges_duplicates () =
  let d = B.Dist.of_list [ (1, 1.0); (1, 1.0); (2, 2.0) ] in
  Alcotest.(check int) "support size" 2 (List.length (B.Dist.support d));
  check_float "merged mass" 0.5 (B.Dist.mass d 1)

let test_dist_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.of_list: empty support") (fun () ->
      ignore (B.Dist.of_list ([] : (int * float) list)))

let test_dist_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Dist: negative weight") (fun () ->
      ignore (B.Dist.of_list [ (1, -1.0); (2, 2.0) ]))

let test_dist_expect () =
  let d = B.Dist.of_list [ (1.0, 1.0); (3.0, 1.0) ] in
  check_float "expectation" 2.0 (B.Dist.expect Fun.id d)

let test_dist_bind_total_mass () =
  let d = B.Dist.uniform [ 0; 1; 2 ] in
  let d2 = B.Dist.bind d (fun x -> B.Dist.uniform [ x; x + 10 ]) in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (B.Dist.to_list d2) in
  check_float "mass 1" 1.0 total

let test_dist_product () =
  let d = B.Dist.product (B.Dist.bernoulli 0.5) (B.Dist.bernoulli 0.5) in
  check_float "(t,t) mass" 0.25 (B.Dist.mass d (true, true))

let test_dist_product_list () =
  let d = B.Dist.product_list [ B.Dist.uniform [ 0; 1 ]; B.Dist.uniform [ 0; 1; 2 ] ] in
  Alcotest.(check int) "support" 6 (List.length (B.Dist.support d));
  check_float "each" (1.0 /. 6.0) (B.Dist.mass d [ 1; 2 ])

let test_dist_tv_distance () =
  let a = B.Dist.uniform [ 0; 1 ] and b = B.Dist.return 0 in
  check_float "tv" 0.5 (B.Dist.tv_distance a b);
  check_float "tv self" 0.0 (B.Dist.tv_distance a a)

let test_dist_filter () =
  let d = B.Dist.uniform [ 0; 1; 2; 3 ] in
  (match B.Dist.filter (fun x -> x < 2) d with
  | None -> Alcotest.fail "conditioning should succeed"
  | Some c -> check_float "renormalized" 0.5 (B.Dist.mass c 0));
  Alcotest.(check bool) "zero-probability event" true (B.Dist.filter (fun x -> x > 5) d = None)

let test_dist_sample_support () =
  let rng = B.Prng.create 5 in
  let d = B.Dist.of_list [ (1, 0.3); (2, 0.7) ] in
  for _ = 1 to 200 do
    let x = B.Dist.sample rng d in
    Alcotest.(check bool) "in support" true (x = 1 || x = 2)
  done

let test_dist_sample_frequency () =
  let rng = B.Prng.create 6 in
  let d = B.Dist.of_list [ (1, 0.25); (2, 0.75) ] in
  let count = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if B.Dist.sample rng d = 2 then incr count
  done;
  let freq = float_of_int !count /. float_of_int n in
  Alcotest.(check bool) "frequency ~ 0.75" true (Float.abs (freq -. 0.75) < 0.02)

let test_dist_is_uniform () =
  Alcotest.(check bool) "uniform" true (B.Dist.is_uniform (B.Dist.uniform [ 1; 2; 3 ]));
  Alcotest.(check bool) "not uniform" false
    (B.Dist.is_uniform (B.Dist.of_list [ (1, 0.3); (2, 0.7) ]))

(* {1 Linalg} *)

let test_linalg_solve_2x2 () =
  match B.Linalg.solve [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] [| 5.0; 10.0 |] with
  | None -> Alcotest.fail "solvable system"
  | Some x ->
    check_float "x0" 1.0 x.(0);
    check_float "x1" 3.0 x.(1)

let test_linalg_singular () =
  Alcotest.(check bool) "singular detected" true
    (B.Linalg.solve [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |] = None)

let test_linalg_identity () =
  let id = B.Linalg.identity 3 in
  let v = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (array (float 1e-12))) "Iv = v" v (B.Linalg.mat_vec id v)

let test_linalg_transpose_involution () =
  let m = [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  Alcotest.(check bool) "transpose^2 = id" true (B.Linalg.transpose (B.Linalg.transpose m) = m)

let linalg_solve_property =
  QCheck.Test.make ~count:100 ~name:"linalg: solve returns a solution"
    QCheck.(
      pair
        (array_of_size (Gen.return 3) (array_of_size (Gen.return 3) (float_range (-10.0) 10.0)))
        (array_of_size (Gen.return 3) (float_range (-10.0) 10.0)))
    (fun (a, b) ->
      match B.Linalg.solve a b with
      | None -> true (* singular is a legal answer *)
      | Some x ->
        let b' = B.Linalg.mat_vec a x in
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) b b')

(* {1 Combin} *)

let test_combin_subset_counts () =
  List.iter
    (fun (n, k) ->
      Alcotest.(check int)
        (Printf.sprintf "C(%d,%d)" n k)
        (B.Combin.binomial n k)
        (List.length (B.Combin.subsets_of_size n k)))
    [ (5, 0); (5, 1); (5, 2); (5, 5); (6, 3); (7, 4) ]

let test_combin_subsets_up_to () =
  (* Sum of C(5,1) + C(5,2) = 5 + 10 *)
  Alcotest.(check int) "non-empty subsets <= 2" 15 (List.length (B.Combin.subsets_up_to 5 2))

let test_combin_subsets_sorted_distinct () =
  List.iter
    (fun s ->
      let sorted = List.sort_uniq compare s in
      Alcotest.(check (list int)) "sorted distinct" sorted s)
    (B.Combin.subsets_up_to 6 3)

let test_combin_profiles () =
  Alcotest.(check int) "2x3x2 profiles" 12 (List.length (B.Combin.profiles [| 2; 3; 2 |]));
  Alcotest.(check int) "empty dims" 1 (List.length (B.Combin.profiles [||]))

let test_combin_profiles_distinct () =
  let ps = B.Combin.profiles [| 3; 3 |] in
  Alcotest.(check int) "all distinct" (List.length ps)
    (List.length (List.sort_uniq compare ps))

let test_combin_joint_assignments () =
  let dims = [| 2; 3; 2 |] in
  Alcotest.(check int) "coalition {0,2}" 4
    (List.length (B.Combin.joint_assignments [ 0; 2 ] dims));
  Alcotest.(check int) "coalition {1}" 3 (List.length (B.Combin.joint_assignments [ 1 ] dims))

(* {1 Stats} *)

let test_stats_mean_median () =
  check_float "mean" 2.5 (B.Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median even" 2.5 (B.Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  check_float "median odd" 3.0 (B.Stats.median [ 5.0; 1.0; 3.0 ])

let test_stats_variance () =
  check_float "variance" 2.0 (B.Stats.variance [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  check_float "stddev" (sqrt 2.0) (B.Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let test_stats_percentile () =
  let xs = List.init 101 float_of_int in
  check_float "p50" 50.0 (B.Stats.percentile 50.0 xs);
  check_float "p0" 0.0 (B.Stats.percentile 0.0 xs);
  check_float "p100" 100.0 (B.Stats.percentile 100.0 xs)

let test_stats_gini () =
  check_float "equal distribution" 0.0 (B.Stats.gini [ 1.0; 1.0; 1.0; 1.0 ]);
  let concentrated = B.Stats.gini [ 0.0; 0.0; 0.0; 10.0 ] in
  Alcotest.(check bool) "concentrated high" true (concentrated > 0.7)

let test_stats_histogram () =
  let h = B.Stats.histogram ~bins:2 [ 0.0; 0.1; 0.9; 1.0 ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "total count" 4 (c0 + c1)

(* {1 Tab} *)

let test_tab_render () =
  let t = B.Tab.create ~title:"demo" [ "col1"; "c2" ] in
  B.Tab.add_row t [ "a"; "bbbb" ];
  B.Tab.add_float_row t "row" [ 1.5; 2.0 ];
  let s = B.Tab.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains float" true (contains s "1.5000")

let suite =
  [
    Alcotest.test_case "prng: determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng: seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng: split independent" `Quick test_prng_split_independent;
    Alcotest.test_case "prng: copy" `Quick test_prng_copy;
    Alcotest.test_case "prng: float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng: int range" `Quick test_prng_int_range;
    Alcotest.test_case "prng: invalid bound" `Quick test_prng_int_invalid;
    Alcotest.test_case "prng: shuffle permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng: uniformity" `Slow test_prng_uniformity;
    Alcotest.test_case "dist: normalizes" `Quick test_dist_normalizes;
    Alcotest.test_case "dist: merges duplicates" `Quick test_dist_merges_duplicates;
    Alcotest.test_case "dist: rejects empty" `Quick test_dist_empty_rejected;
    Alcotest.test_case "dist: rejects negative" `Quick test_dist_negative_rejected;
    Alcotest.test_case "dist: expectation" `Quick test_dist_expect;
    Alcotest.test_case "dist: bind mass" `Quick test_dist_bind_total_mass;
    Alcotest.test_case "dist: product" `Quick test_dist_product;
    Alcotest.test_case "dist: product_list" `Quick test_dist_product_list;
    Alcotest.test_case "dist: tv distance" `Quick test_dist_tv_distance;
    Alcotest.test_case "dist: filter" `Quick test_dist_filter;
    Alcotest.test_case "dist: sample support" `Quick test_dist_sample_support;
    Alcotest.test_case "dist: sample frequency" `Slow test_dist_sample_frequency;
    Alcotest.test_case "dist: is_uniform" `Quick test_dist_is_uniform;
    Alcotest.test_case "linalg: 2x2" `Quick test_linalg_solve_2x2;
    Alcotest.test_case "linalg: singular" `Quick test_linalg_singular;
    Alcotest.test_case "linalg: identity" `Quick test_linalg_identity;
    Alcotest.test_case "linalg: transpose involution" `Quick test_linalg_transpose_involution;
    QCheck_alcotest.to_alcotest linalg_solve_property;
    Alcotest.test_case "combin: subset counts" `Quick test_combin_subset_counts;
    Alcotest.test_case "combin: subsets up to" `Quick test_combin_subsets_up_to;
    Alcotest.test_case "combin: sorted distinct" `Quick test_combin_subsets_sorted_distinct;
    Alcotest.test_case "combin: profiles" `Quick test_combin_profiles;
    Alcotest.test_case "combin: profiles distinct" `Quick test_combin_profiles_distinct;
    Alcotest.test_case "combin: joint assignments" `Quick test_combin_joint_assignments;
    Alcotest.test_case "stats: mean/median" `Quick test_stats_mean_median;
    Alcotest.test_case "stats: variance" `Quick test_stats_variance;
    Alcotest.test_case "stats: percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats: gini" `Quick test_stats_gini;
    Alcotest.test_case "stats: histogram" `Quick test_stats_histogram;
    Alcotest.test_case "tab: render" `Quick test_tab_render;
  ]
