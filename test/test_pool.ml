(* Property tests for the deterministic domain pool (Bn_util.Pool) and the
   indexed PRNG splitting (Prng.split) it relies on: parallel execution
   must be observationally identical to the serial loop for any domain
   count, and split streams must be reproducible and non-colliding. *)

module B = Beyond_nash

let pool_map_matches_list_map =
  QCheck.Test.make ~count:50 ~name:"pool: map ~domains:d = List.map for d in 1..8"
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 0 200) small_int))
    (fun (d, xs) ->
      let f x = (x * 7919) lxor (x lsl 3) in
      let pool = B.Pool.create ~domains:d () in
      B.Pool.map pool f xs = List.map f xs)

let pool_map_array_matches =
  QCheck.Test.make ~count:50 ~name:"pool: map_array = Array.map"
    QCheck.(pair (int_range 1 8) (array_of_size (Gen.int_range 0 200) small_int))
    (fun (d, xs) ->
      let f x = x * x in
      let pool = B.Pool.create ~domains:d () in
      B.Pool.map_array pool f xs = Array.map f xs)

let pool_map_array_steal_matches =
  QCheck.Test.make ~count:50 ~name:"pool: map_array_steal = Array.map for d in 1..8"
    QCheck.(pair (int_range 1 8) (array_of_size (Gen.int_range 0 200) small_int))
    (fun (d, xs) ->
      (* Skewed per-item cost so stealing actually happens at d > 1. *)
      let f x =
        let n = if x mod 7 = 0 then 5000 else 5 in
        let acc = ref x in
        for i = 1 to n do
          acc := (!acc * 31) lxor i
        done;
        !acc
      in
      let pool = B.Pool.create ~domains:d () in
      B.Pool.map_array_steal pool f xs = Array.map f xs)

let pool_iter_grid_covers_all_slots =
  QCheck.Test.make ~count:50 ~name:"pool: iter_grid touches each index exactly once"
    QCheck.(pair (int_range 1 8) (int_range 0 300))
    (fun (d, n) ->
      let pool = B.Pool.create ~domains:d () in
      let out = Array.make n 0 in
      B.Pool.iter_grid pool (fun i -> out.(i) <- out.(i) + (2 * i) + 1) (Array.init n Fun.id);
      out = Array.init n (fun i -> (2 * i) + 1))

let pool_find_first_matches_serial =
  QCheck.Test.make ~count:100 ~name:"pool: find_first returns the lowest-index hit"
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 0 100) small_int))
    (fun (d, xs) ->
      let f x = if x mod 3 = 0 then Some (x * 10) else None in
      let arr = Array.of_list xs in
      let pool = B.Pool.create ~domains:d () in
      B.Pool.find_first pool f arr = List.find_map f xs)

let draws rng k = List.init k (fun _ -> B.Prng.bits64 rng)

let split_reproducible =
  QCheck.Test.make ~count:100 ~name:"prng: split is reproducible from the seed"
    QCheck.(pair small_int (int_range 0 1000))
    (fun (seed, i) ->
      let a = B.Prng.split (B.Prng.create seed) i in
      let b = B.Prng.split (B.Prng.create seed) i in
      draws a 50 = draws b 50)

let split_streams_non_colliding =
  (* 10k draws from each of two sibling streams (and the parent) share no
     64-bit value — the birthday bound for honest streams is ~1e-11, so any
     hit means the derivation is broken. *)
  QCheck.Test.make ~count:5 ~name:"prng: split streams pairwise non-colliding on 10k draws"
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, i) ->
      let parent = B.Prng.create seed in
      let a = B.Prng.split parent i and b = B.Prng.split parent (i + 1) in
      let seen = Hashtbl.create (3 * 10_000) in
      let stream_fresh rng =
        let ok = ref true in
        for _ = 1 to 10_000 do
          let v = B.Prng.bits64 rng in
          if Hashtbl.mem seen v then ok := false else Hashtbl.add seen v ()
        done;
        !ok
      in
      stream_fresh a && stream_fresh b && stream_fresh parent)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      pool_map_matches_list_map;
      pool_map_array_matches;
      pool_map_array_steal_matches;
      pool_iter_grid_covers_all_slots;
      pool_find_first_matches_serial;
      split_reproducible;
      split_streams_non_colliding;
    ]
