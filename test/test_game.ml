module B = Beyond_nash

let check_float = Alcotest.(check (float 1e-9))

(* {1 Normal form} *)

let test_create_and_payoffs () =
  let g = B.Games.prisoners_dilemma in
  Alcotest.(check int) "players" 2 (B.Normal_form.n_players g);
  Alcotest.(check int) "actions" 2 (B.Normal_form.num_actions g 0);
  check_float "CC" 3.0 (B.Normal_form.payoff g [| 0; 0 |] 0);
  check_float "CD" (-5.0) (B.Normal_form.payoff g [| 0; 1 |] 0);
  check_float "DC" 5.0 (B.Normal_form.payoff g [| 1; 0 |] 0);
  check_float "DD" (-3.0) (B.Normal_form.payoff g [| 1; 1 |] 1)

let test_create_validation () =
  Alcotest.check_raises "empty action set"
    (Invalid_argument "Normal_form.create: empty action set") (fun () ->
      ignore (B.Normal_form.create ~actions:[| 2; 0 |] (fun _ -> [| 0.0; 0.0 |])));
  Alcotest.check_raises "payoff arity" (Invalid_argument "Normal_form.create: payoff arity")
    (fun () -> ignore (B.Normal_form.create ~actions:[| 2 |] (fun _ -> [| 0.0; 1.0 |])))

let test_bimatrix_roundtrip () =
  let g = B.Normal_form.of_bimatrix [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  check_float "a(1,0)" 3.0 (B.Normal_form.payoff g [| 1; 0 |] 0);
  check_float "b(0,1)" 6.0 (B.Normal_form.payoff g [| 0; 1 |] 1)

let test_profiles_count () =
  let g = B.Games.coordination_01 3 in
  Alcotest.(check int) "profiles" 8 (List.length (B.Normal_form.profiles g))

let test_zero_sum_detection () =
  Alcotest.(check bool) "roshambo zero-sum" true (B.Normal_form.is_zero_sum B.Games.roshambo);
  Alcotest.(check bool) "PD not zero-sum" false (B.Normal_form.is_zero_sum B.Games.prisoners_dilemma)

let test_symmetric_detection () =
  Alcotest.(check bool) "PD symmetric" true (B.Normal_form.is_symmetric_2p B.Games.prisoners_dilemma);
  Alcotest.(check bool) "BoS not symmetric" false (B.Normal_form.is_symmetric_2p B.Games.battle_of_sexes)

let test_map_payoffs () =
  let shifted = B.Normal_form.map_payoffs (fun _ u -> Array.map (fun x -> x +. 10.0) u) B.Games.prisoners_dilemma in
  check_float "shifted CC" 13.0 (B.Normal_form.payoff shifted [| 0; 0 |] 0)

(* Asymmetric action counts so every stride is distinct. *)
let asym_game () =
  B.Normal_form.create ~actions:[| 2; 3; 4 |] (fun p ->
      let x = float_of_int ((p.(0) * 100) + (p.(1) * 10) + p.(2)) in
      [| x; -.x; 2.0 *. x |])

let test_index_roundtrip () =
  let g = asym_game () in
  Alcotest.(check int) "table size" 24 (B.Normal_form.table_size g);
  B.Normal_form.iter_profiles g (fun p ->
      let idx = B.Normal_form.index_of g p in
      Alcotest.(check (array int)) "decode(encode p) = p" (Array.copy p)
        (B.Normal_form.profile_of_index g idx);
      check_float "payoff via index" (B.Normal_form.payoff g p 1)
        (B.Normal_form.payoff_by_index g idx 1))

let test_shift_index () =
  let g = asym_game () in
  let p = [| 0; 2; 1 |] in
  let idx = B.Normal_form.index_of g p in
  (* Re-point player 1 from 2 to 0: same as re-encoding the edited profile. *)
  let shifted = B.Normal_form.shift_index g idx ~player:1 ~from_:2 ~to_:0 in
  Alcotest.(check int) "shift = re-encode" (B.Normal_form.index_of g [| 0; 0; 1 |]) shifted;
  (* Composing m shifts applies an m-coordinate deviation. *)
  let shifted2 = B.Normal_form.shift_index g shifted ~player:0 ~from_:0 ~to_:1 in
  Alcotest.(check int) "two shifts" (B.Normal_form.index_of g [| 1; 0; 1 |]) shifted2

let test_payoff_row () =
  let g = B.Games.prisoners_dilemma in
  let idx = B.Normal_form.index_of g [| 1; 0 |] in
  let row = B.Normal_form.payoff_row g idx in
  check_float "row player" 5.0 row.(0);
  check_float "col player" (-5.0) row.(1)

let test_early_exit_predicates () =
  (* A counterexample in the very first cell must still be caught. *)
  let g =
    B.Normal_form.create ~actions:[| 2; 2 |] (fun p ->
        if p.(0) = 0 && p.(1) = 0 then [| 1.0; 1.0 |] else [| 1.0; -1.0 |])
  in
  Alcotest.(check bool) "not zero-sum (first profile)" false (B.Normal_form.is_zero_sum g);
  Alcotest.(check bool) "roshambo symmetric" true (B.Normal_form.is_symmetric_2p B.Games.roshambo)

(* {1 Mixed} *)

let test_mixed_pure () =
  let s = B.Mixed.pure ~num_actions:3 1 in
  check_float "mass on 1" 1.0 s.(1);
  check_float "mass on 0" 0.0 s.(0)

let test_mixed_validity () =
  Alcotest.(check bool) "uniform valid" true (B.Mixed.is_valid (B.Mixed.uniform 4));
  Alcotest.(check bool) "negative invalid" false (B.Mixed.is_valid [| -0.5; 1.5 |]);
  Alcotest.(check bool) "not summing" false (B.Mixed.is_valid [| 0.3; 0.3 |])

let test_expected_payoff_uniform_mp () =
  let prof = B.Mixed.uniform_profile B.Games.matching_pennies in
  check_float "uniform MP = 0" 0.0 (B.Mixed.expected_payoff B.Games.matching_pennies prof 0)

let test_expected_payoff_matches_pure () =
  let g = B.Games.prisoners_dilemma in
  let prof = B.Mixed.pure_profile g [| 0; 1 |] in
  check_float "pure via mixed" (-5.0) (B.Mixed.expected_payoff g prof 0)

let test_expected_vs_pure_deviation () =
  let g = B.Games.prisoners_dilemma in
  let prof = B.Mixed.pure_profile g [| 0; 0 |] in
  check_float "deviate to D" 5.0 (B.Mixed.expected_payoff_vs_pure g prof ~player:0 ~action:1)

let test_outcome_dist () =
  let g = B.Games.matching_pennies in
  let d = B.Mixed.outcome_dist g (B.Mixed.uniform_profile g) in
  Alcotest.(check int) "4 outcomes" 4 (List.length (B.Dist.support d))

let test_support () =
  Alcotest.(check (list int)) "support" [ 0; 2 ] (B.Mixed.support [| 0.5; 0.0; 0.5 |])

let test_point_mass () =
  Alcotest.(check (option int)) "pure 1" (Some 1) (B.Mixed.point_mass (B.Mixed.pure ~num_actions:3 1));
  Alcotest.(check (option int)) "mixed" None (B.Mixed.point_mass [| 0.5; 0.5 |]);
  Alcotest.(check (option int)) "almost pure" None (B.Mixed.point_mass [| 1e-12; 1.0 -. 1e-12 |]);
  let g = B.Games.prisoners_dilemma in
  Alcotest.(check (option (array int))) "pure profile" (Some [| 1; 0 |])
    (B.Mixed.pure_actions (B.Mixed.pure_profile g [| 1; 0 |]));
  Alcotest.(check (option (array int))) "uniform profile" None
    (B.Mixed.pure_actions (B.Mixed.uniform_profile g))

(* {2 Support-product kernel vs full-scan reference}

   [expected_payoff] must agree with [expected_payoff_naive] {e exactly} —
   the support product performs the same multiplications and additions in
   the same order, so the comparison below is on raw float equality, not an
   epsilon. *)

(* Random 3-player 2×3×2 game plus a mixed profile carved from the same
   draw: entries below the activity threshold are zeroed, exercising sparse
   supports (and occasionally empty ones, where both sides must return 0). *)
let kernel_case_of_draw payoffs =
  let g =
    B.Normal_form.create ~actions:[| 2; 3; 2 |] (fun p ->
        let idx = (p.(0) * 6) + (p.(1) * 2) + p.(2) in
        [| payoffs.(idx); payoffs.((idx + 7) mod 12); payoffs.((idx + 3) mod 12) |])
  in
  let dims = [| 2; 3; 2 |] in
  let prof =
    Array.init 3 (fun i ->
        let s =
          Array.init dims.(i) (fun a ->
              let x = payoffs.(((i * 3) + a + 5) mod 12) in
              if x < 0.0 then 0.0 else x)
        in
        if Array.for_all (( = ) 0.0) s then s.(0) <- 1.0;
        s)
  in
  (g, prof)

let payoff_kernel_agreement_property =
  QCheck.Test.make ~count:200 ~name:"mixed: expected_payoff = expected_payoff_naive (bitwise)"
    QCheck.(array_of_size (Gen.return 12) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g, prof = kernel_case_of_draw payoffs in
      let agree p =
        List.for_all
          (fun i -> B.Mixed.expected_payoff g p i = B.Mixed.expected_payoff_naive g p i)
          [ 0; 1; 2 ]
      in
      (* the random sparse profile, the uniform profile and every pure
         profile (the O(1) fast path) *)
      let ok = ref (agree prof && agree (B.Mixed.uniform_profile g)) in
      B.Normal_form.iter_profiles g (fun p ->
          if not (agree (B.Mixed.pure_profile g p)) then ok := false);
      !ok)

let outcome_dist_support_property =
  QCheck.Test.make ~count:100 ~name:"mixed: outcome_dist enumerates exactly the support product"
    QCheck.(array_of_size (Gen.return 12) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g, prof = kernel_case_of_draw payoffs in
      let expected = ref [] in
      B.Normal_form.iter_profiles g (fun p ->
          let pr = Array.to_list (Array.mapi (fun i a -> prof.(i).(a)) p)
                   |> List.fold_left ( *. ) 1.0 in
          if pr > 0.0 then expected := (Array.copy p, pr) :: !expected);
      let total = List.fold_left (fun acc (_, pr) -> acc +. pr) 0.0 !expected in
      let d = B.Mixed.outcome_dist g prof in
      List.length (B.Dist.support d) = List.length !expected
      && List.for_all
           (fun (p, pr) -> Float.abs (B.Dist.mass d p -. (pr /. total)) <= 1e-12)
           !expected)

(* {2 Flat Bigarray storage}

   The flat tables are the single source of payoff truth, so pin them
   against the {e generating function} (not against [payoff], which reads
   the same tables): every stored entry must be exactly the float the
   creation closure produced. *)

let flat_table_matches_generator_property =
  QCheck.Test.make ~count:100 ~name:"flat: stored tables equal the generating function (bitwise)"
    QCheck.(array_of_size (Gen.return 12) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g, _ = kernel_case_of_draw payoffs in
      let ok = ref true in
      B.Normal_form.iter_profiles g (fun p ->
          let idx = B.Normal_form.index_of g p in
          let i12 = (p.(0) * 6) + (p.(1) * 2) + p.(2) in
          let expected =
            [| payoffs.(i12); payoffs.((i12 + 7) mod 12); payoffs.((i12 + 3) mod 12) |]
          in
          for i = 0 to 2 do
            if Bigarray.Array1.get (B.Normal_form.Flat.table g i) idx <> expected.(i) then
              ok := false
          done);
      !ok)

(* Random 3×3 two-player game plus a sparse non-negative profile from the
   same draw, for the 2-player flat fast paths. *)
let two_player_case_of_draw payoffs =
  let g =
    B.Normal_form.of_bimatrix
      (Array.init 3 (fun i -> Array.init 3 (fun j -> payoffs.(((3 * i) + j) mod 18))))
      (Array.init 3 (fun i -> Array.init 3 (fun j -> payoffs.(((3 * i) + j + 7) mod 18))))
  in
  let prof =
    Array.init 2 (fun i ->
        let s =
          Array.init 3 (fun a ->
              let x = payoffs.(((i * 5) + a + 11) mod 18) in
              if x < 0.0 then 0.0 else x)
        in
        if Array.for_all (( = ) 0.0) s then s.(0) <- 1.0;
        s)
  in
  (g, prof)

(* {1 Nash} *)

let test_pd_unique_pure_nash () =
  Alcotest.(check int) "one pure NE" 1 (List.length (B.Nash.pure_equilibria B.Games.prisoners_dilemma));
  Alcotest.(check bool) "it is DD" true
    (B.Nash.is_pure_nash B.Games.prisoners_dilemma [| 1; 1 |])

let test_bos_equilibria () =
  let eqs = B.Nash.support_enumeration_2p B.Games.battle_of_sexes in
  Alcotest.(check int) "3 equilibria" 3 (List.length eqs);
  List.iter
    (fun p -> Alcotest.(check bool) "all are Nash" true (B.Nash.is_nash B.Games.battle_of_sexes p))
    eqs

let test_mp_unique_mixed () =
  let eqs = B.Nash.support_enumeration_2p B.Games.matching_pennies in
  Alcotest.(check int) "1 equilibrium" 1 (List.length eqs);
  match eqs with
  | [ p ] -> check_float "uniform" 0.5 p.(0).(0)
  | _ -> Alcotest.fail "expected singleton"

let test_roshambo_uniform () =
  let eqs = B.Nash.support_enumeration_2p B.Games.roshambo in
  Alcotest.(check int) "1 equilibrium" 1 (List.length eqs);
  match eqs with
  | [ p ] -> check_float "1/3" (1.0 /. 3.0) p.(0).(0)
  | _ -> Alcotest.fail "expected singleton"

let test_regret () =
  let g = B.Games.prisoners_dilemma in
  let cc = B.Mixed.pure_profile g [| 0; 0 |] in
  check_float "CC regret = 2" 2.0 (B.Nash.regret g cc ~player:0);
  let dd = B.Mixed.pure_profile g [| 1; 1 |] in
  check_float "DD regret = 0" 0.0 (B.Nash.regret g dd ~player:0)

let test_coordination_01_nash () =
  let g = B.Games.coordination_01 4 in
  Alcotest.(check bool) "all-0 is Nash" true (B.Nash.is_pure_nash g (Array.make 4 0))

let test_stag_hunt_equilibria () =
  let eqs = B.Nash.pure_equilibria B.Games.stag_hunt in
  Alcotest.(check int) "two pure NE" 2 (List.length eqs)

let nash_regret_nonneg_property =
  QCheck.Test.make ~count:100 ~name:"nash: regret is non-negative on random 2x2 games"
    QCheck.(array_of_size (Gen.return 8) (float_range (-5.0) 5.0))
    (fun payoffs ->
      let g =
        B.Normal_form.create ~actions:[| 2; 2 |] (fun p ->
            let idx = (p.(0) * 2) + p.(1) in
            [| payoffs.(idx); payoffs.(4 + idx) |])
      in
      let prof = B.Mixed.uniform_profile g in
      B.Nash.regret g prof ~player:0 >= 0.0 && B.Nash.regret g prof ~player:1 >= 0.0)

let support_enum_finds_nash_property =
  QCheck.Test.make ~count:50 ~name:"nash: support enumeration outputs are equilibria"
    QCheck.(array_of_size (Gen.return 8) (float_range (-3.0) 3.0))
    (fun payoffs ->
      let g =
        B.Normal_form.create ~actions:[| 2; 2 |] (fun p ->
            let idx = (p.(0) * 2) + p.(1) in
            [| payoffs.(idx); payoffs.(4 + idx) |])
      in
      List.for_all (fun p -> B.Nash.is_nash ~eps:1e-5 g p) (B.Nash.support_enumeration_2p g))

(* {1 Dominance} *)

let test_pd_dominance () =
  Alcotest.(check bool) "D dominates C" true
    (B.Dominance.dominates B.Games.prisoners_dilemma ~player:0 1 0);
  match B.Dominance.solves_by_dominance B.Games.prisoners_dilemma with
  | Some p -> Alcotest.(check (array int)) "solves to DD" [| 1; 1 |] p
  | None -> Alcotest.fail "PD is dominance-solvable"

let test_weak_dominance () =
  (* A game where weak but not strict dominance applies. *)
  let g = B.Normal_form.of_bimatrix [| [| 1.0; 1.0 |]; [| 1.0; 0.0 |] |] [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  Alcotest.(check bool) "not strict" false (B.Dominance.dominates ~mode:B.Dominance.Strict g ~player:0 0 1);
  Alcotest.(check bool) "weak" true (B.Dominance.dominates ~mode:B.Dominance.Weak g ~player:0 0 1)

let test_iterated_elimination () =
  (* 2x3 game solvable by iterated strict dominance. *)
  let a = [| [| 1.0; 1.0; 10.0 |]; [| 0.0; 0.0; 13.0 |] |] in
  let b = [| [| 3.0; 2.0; 1.0 |]; [| 3.0; 2.0; 1.0 |] |] in
  let g = B.Normal_form.of_bimatrix a b in
  let reduced, surviving = B.Dominance.iterated_elimination g in
  Alcotest.(check int) "column survivor" 1 (List.length surviving.(1));
  Alcotest.(check bool) "reduced is 2x1 or smaller" true (B.Normal_form.num_actions reduced 1 = 1)

let test_roshambo_no_dominance () =
  Alcotest.(check (list int)) "no dominated actions" []
    (B.Dominance.dominated_actions B.Games.roshambo ~player:0)

(* {1 Zero sum} *)

let test_mp_value () =
  match B.Zero_sum.value B.Games.matching_pennies with
  | None -> Alcotest.fail "MP has a value"
  | Some (v, row, col) ->
    check_float "value 0" 0.0 v;
    check_float "row uniform" 0.5 row.(0);
    check_float "col uniform" 0.5 col.(0)

let test_roshambo_value () =
  match B.Zero_sum.value B.Games.roshambo with
  | None -> Alcotest.fail "roshambo has a value"
  | Some (v, row, _) ->
    check_float "value 0" 0.0 v;
    check_float "row 1/3" (1.0 /. 3.0) row.(1)

let test_value_none_for_nonzero_sum () =
  Alcotest.(check bool) "PD has no zero-sum value" true
    (B.Zero_sum.value B.Games.prisoners_dilemma = None)

let test_asymmetric_zero_sum () =
  (* Row player strictly prefers row 0; value = min of row 0 = 1. *)
  let a = [| [| 2.0; 1.0 |]; [| 0.0; 0.5 |] |] in
  let g = B.Normal_form.of_bimatrix a (Array.map (Array.map Float.neg) a) in
  match B.Zero_sum.value g with
  | None -> Alcotest.fail "zero-sum"
  | Some (v, _, _) -> check_float "saddle value" 1.0 v

let test_maxmin_pure () =
  check_float "PD security" (-3.0) (B.Zero_sum.maxmin_pure B.Games.prisoners_dilemma ~player:0);
  check_float "bargaining security" 1.0 (B.Zero_sum.maxmin_pure (B.Games.bargaining 3) ~player:0)

let test_minmax_correlated () =
  let v, s = B.Zero_sum.minmax_correlated (B.Games.bargaining 3) ~player:0 in
  check_float "punishment level" 1.0 v;
  Alcotest.(check bool) "strategy valid" true (B.Mixed.is_valid s)

let zero_sum_value_bounds_property =
  QCheck.Test.make ~count:50 ~name:"zero-sum: value between min and max payoffs"
    QCheck.(array_of_size (Gen.return 9) (float_range (-5.0) 5.0))
    (fun payoffs ->
      let a = Array.init 3 (fun i -> Array.init 3 (fun j -> payoffs.((i * 3) + j))) in
      let g = B.Normal_form.of_bimatrix a (Array.map (Array.map Float.neg) a) in
      match B.Zero_sum.value g with
      | None -> false
      | Some (v, _, _) ->
        let all = Array.to_list (Array.concat (Array.to_list a)) in
        let lo = List.fold_left min infinity all and hi = List.fold_left max neg_infinity all in
        v >= lo -. 1e-6 && v <= hi +. 1e-6)

(* The 2-player regret evaluator runs on the flat kernel; it must agree
   with the all-Mixed reference {e bitwise} — same products, same
   accumulation order — on sparse, uniform and pure profiles alike. *)
let max_regret_kernel_agreement_property =
  QCheck.Test.make ~count:200 ~name:"nash: max_regret = max_regret_naive (bitwise, flat kernel)"
    QCheck.(array_of_size (Gen.return 18) (float_range (-4.0) 4.0))
    (fun payoffs ->
      let g, prof = two_player_case_of_draw payoffs in
      let agree p = B.Nash.max_regret g p = B.Nash.max_regret_naive g p in
      let ok = ref (agree prof && agree (B.Mixed.uniform_profile g)) in
      B.Normal_form.iter_profiles g (fun p ->
          if not (agree (B.Mixed.pure_profile g p)) then ok := false);
      !ok)

(* {1 Learning} *)

let test_fictitious_play_mp () =
  let trace = B.Learning.fictitious_play ~rounds:2000 B.Games.matching_pennies in
  Alcotest.(check bool) "low regret" true (trace.B.Learning.final_regret < 0.05)

let test_replicator_pd () =
  let trace = B.Learning.replicator ~rounds:2000 B.Games.prisoners_dilemma in
  (* Replicator should converge toward defection. *)
  Alcotest.(check bool) "defection takes over" true (trace.B.Learning.profile.(0).(1) > 0.95)

let test_best_response_iteration () =
  match B.Learning.best_response_iteration ~max_rounds:50 B.Games.stag_hunt with
  | None -> Alcotest.fail "should converge"
  | Some p -> Alcotest.(check bool) "is Nash" true (B.Nash.is_pure_nash B.Games.stag_hunt p)

let test_fictitious_play_bos_converges_somewhere () =
  let trace = B.Learning.fictitious_play ~rounds:500 B.Games.battle_of_sexes in
  Alcotest.(check bool) "profile valid" true
    (Array.for_all B.Mixed.is_valid trace.B.Learning.profile)

let trace_eq (a : B.Learning.trace) (b : B.Learning.trace) =
  a.B.Learning.profile = b.B.Learning.profile
  && a.B.Learning.rounds = b.B.Learning.rounds
  && a.B.Learning.final_regret = b.B.Learning.final_regret

(* The incremental dynamics must replay the naive references {e bitwise}:
   cached expected utilities are only reused when the opponent mixtures are
   bitwise-unchanged, so no trace field may drift. Covers the 2-player flat
   fast path and the generic n-player path. *)
let learning_incremental_agreement_property =
  QCheck.Test.make ~count:50 ~name:"learning: incremental = naive references (bitwise traces)"
    QCheck.(array_of_size (Gen.return 18) (float_range (-4.0) 4.0))
    (fun payoffs ->
      let g2, _ = two_player_case_of_draw payoffs in
      let g3, _ = kernel_case_of_draw (Array.sub payoffs 0 12) in
      List.for_all
        (fun g ->
          trace_eq
            (B.Learning.fictitious_play ~rounds:60 g)
            (B.Learning.fictitious_play_naive ~rounds:60 g)
          && trace_eq
               (B.Learning.replicator ~rounds:60 g)
               (B.Learning.replicator_naive ~rounds:60 g))
        [ g2; g3 ])

let test_replicator_tol_early_stop () =
  (* Uniform matching pennies is a replicator fixed point with zero regret:
     with a tolerance the run must stop after the very first round. *)
  let trace = B.Learning.replicator ~tol:1e-9 ~rounds:500 B.Games.matching_pennies in
  Alcotest.(check int) "stops after round 1" 1 trace.B.Learning.rounds;
  Alcotest.(check bool) "regret within tol" true (trace.B.Learning.final_regret <= 1e-9);
  let full = B.Learning.replicator ~rounds:500 B.Games.matching_pennies in
  Alcotest.(check int) "without tol the horizon is exhausted" 500 full.B.Learning.rounds

let test_fictitious_play_tol_early_stop () =
  let trace = B.Learning.fictitious_play ~tol:0.2 ~rounds:5000 B.Games.prisoners_dilemma in
  Alcotest.(check bool) "stopped before the horizon" true (trace.B.Learning.rounds < 5000);
  Alcotest.(check bool) "regret within tol" true (trace.B.Learning.final_regret <= 0.2)

let suite =
  [
    Alcotest.test_case "normal form: payoffs" `Quick test_create_and_payoffs;
    Alcotest.test_case "normal form: validation" `Quick test_create_validation;
    Alcotest.test_case "normal form: bimatrix" `Quick test_bimatrix_roundtrip;
    Alcotest.test_case "normal form: profiles" `Quick test_profiles_count;
    Alcotest.test_case "normal form: zero-sum detect" `Quick test_zero_sum_detection;
    Alcotest.test_case "normal form: symmetric detect" `Quick test_symmetric_detection;
    Alcotest.test_case "normal form: map payoffs" `Quick test_map_payoffs;
    Alcotest.test_case "normal form: index roundtrip" `Quick test_index_roundtrip;
    Alcotest.test_case "normal form: shift index" `Quick test_shift_index;
    Alcotest.test_case "normal form: payoff row" `Quick test_payoff_row;
    Alcotest.test_case "normal form: early-exit predicates" `Quick test_early_exit_predicates;
    Alcotest.test_case "mixed: pure" `Quick test_mixed_pure;
    Alcotest.test_case "mixed: validity" `Quick test_mixed_validity;
    Alcotest.test_case "mixed: uniform MP" `Quick test_expected_payoff_uniform_mp;
    Alcotest.test_case "mixed: pure profile payoff" `Quick test_expected_payoff_matches_pure;
    Alcotest.test_case "mixed: pure deviation" `Quick test_expected_vs_pure_deviation;
    Alcotest.test_case "mixed: outcome dist" `Quick test_outcome_dist;
    Alcotest.test_case "mixed: support" `Quick test_support;
    Alcotest.test_case "mixed: point mass" `Quick test_point_mass;
    QCheck_alcotest.to_alcotest payoff_kernel_agreement_property;
    QCheck_alcotest.to_alcotest outcome_dist_support_property;
    Alcotest.test_case "nash: PD unique" `Quick test_pd_unique_pure_nash;
    Alcotest.test_case "nash: BoS three equilibria" `Quick test_bos_equilibria;
    Alcotest.test_case "nash: MP unique mixed" `Quick test_mp_unique_mixed;
    Alcotest.test_case "nash: roshambo uniform" `Quick test_roshambo_uniform;
    Alcotest.test_case "nash: regret values" `Quick test_regret;
    Alcotest.test_case "nash: coordination all-0" `Quick test_coordination_01_nash;
    Alcotest.test_case "nash: stag hunt" `Quick test_stag_hunt_equilibria;
    QCheck_alcotest.to_alcotest nash_regret_nonneg_property;
    QCheck_alcotest.to_alcotest support_enum_finds_nash_property;
    Alcotest.test_case "dominance: PD" `Quick test_pd_dominance;
    Alcotest.test_case "dominance: weak vs strict" `Quick test_weak_dominance;
    Alcotest.test_case "dominance: iterated" `Quick test_iterated_elimination;
    Alcotest.test_case "dominance: roshambo none" `Quick test_roshambo_no_dominance;
    Alcotest.test_case "zero-sum: MP" `Quick test_mp_value;
    Alcotest.test_case "zero-sum: roshambo" `Quick test_roshambo_value;
    Alcotest.test_case "zero-sum: non-zero-sum" `Quick test_value_none_for_nonzero_sum;
    Alcotest.test_case "zero-sum: saddle" `Quick test_asymmetric_zero_sum;
    Alcotest.test_case "zero-sum: maxmin pure" `Quick test_maxmin_pure;
    Alcotest.test_case "zero-sum: minmax correlated" `Quick test_minmax_correlated;
    QCheck_alcotest.to_alcotest zero_sum_value_bounds_property;
    Alcotest.test_case "learning: fictitious play MP" `Slow test_fictitious_play_mp;
    Alcotest.test_case "learning: replicator PD" `Slow test_replicator_pd;
    Alcotest.test_case "learning: best response iteration" `Quick test_best_response_iteration;
    Alcotest.test_case "learning: fictitious play BoS" `Quick test_fictitious_play_bos_converges_somewhere;
    Alcotest.test_case "learning: replicator ?tol early stop" `Quick test_replicator_tol_early_stop;
    Alcotest.test_case "learning: fictitious play ?tol early stop" `Quick
      test_fictitious_play_tol_early_stop;
    QCheck_alcotest.to_alcotest flat_table_matches_generator_property;
    QCheck_alcotest.to_alcotest max_regret_kernel_agreement_property;
    QCheck_alcotest.to_alcotest learning_incremental_agreement_property;
  ]
